// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablation benches for the design choices
// called out in DESIGN.md §5 and micro-benchmarks of the substrates.
//
// The paper artefacts are regenerated on a shared reduced-scale corpus
// (60 apps x 16 intervals) so `go test -bench=.` completes in minutes;
// cmd/hmd-bench runs the same experiments at full scale. Each benchmark
// logs its rows once, so `go test -bench=. -v` doubles as a results
// printer.
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/hls"
	"repro/internal/micro"
	"repro/internal/mlearn/j48"
	"repro/internal/mlearn/zoo"
	"repro/internal/perf"
	"repro/internal/workload"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
	benchErr  error
)

// benchContext collects the shared benchmark corpus once.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		cfg := collect.Default()
		cfg.Suite.AppsPerFamily = 5
		cfg.Intervals = 16
		benchCtx, benchErr = experiments.NewContext(cfg, 1)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCtx
}

// ---- Paper artefacts ----

// BenchmarkTable1FeatureRanking measures the Correlation Attribute
// Evaluation pass over the 44-event training matrix (Table 1).
func BenchmarkTable1FeatureRanking(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = ctx.Table1(16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.RenderTable1(rows))
}

// BenchmarkFigure3Accuracy regenerates the full accuracy grid: 8
// classifiers x {16,8,4,2} HPCs x {general, AdaBoost, Bagging}.
// The first iteration trains all 96 detectors; later iterations hit
// the context cache, so -benchtime=1x gives the true cost.
func BenchmarkFigure3Accuracy(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var cells []experiments.GridCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = ctx.Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.RenderGrid(cells, "acc"))
}

// BenchmarkTable2AUC regenerates the AUC table from the grid.
func BenchmarkTable2AUC(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = ctx.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.RenderTable2(rows))
}

// BenchmarkFigure4ROC regenerates both ROC panels (4HPC-Bagging
// detectors; 8HPC general vs 2HPC-Boosted).
func BenchmarkFigure4ROC(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var a4, b4 []experiments.NamedROC
	for i := 0; i < b.N; i++ {
		var err error
		a4, err = ctx.Figure4a()
		if err != nil {
			b.Fatal(err)
		}
		b4, err = ctx.Figure4b()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.RenderROCs("Figure 4a", a4) + experiments.RenderROCs("Figure 4b", b4))
}

// BenchmarkFigure5Performance regenerates the ACC*AUC grid.
func BenchmarkFigure5Performance(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var cells []experiments.GridCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = ctx.Figure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.RenderGrid(cells, "perf"))
}

// BenchmarkTable3Hardware compiles the trained detectors to the FPGA
// cost model (8HPC general, 4HPC-Boosted, 2HPC-Boosted per classifier).
func BenchmarkTable3Hardware(b *testing.B) {
	ctx := benchContext(b)
	b.ResetTimer()
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = ctx.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + experiments.RenderTable3(rows))
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationEnsembleSize sweeps AdaBoost iteration counts on the
// 4-HPC REPTree detector.
func BenchmarkAblationEnsembleSize(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		for _, iters := range []int{5, 10, 25, 50} {
			bl, err := core.NewBuilder(ctx.Data, 0.7, 1)
			if err != nil {
				b.Fatal(err)
			}
			bl.Iterations = iters
			det, err := bl.Build("REPTree", zoo.Boosted, 4)
			if err != nil {
				b.Fatal(err)
			}
			res, err := bl.Evaluate(det)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("AdaBoost T=%2d: accuracy %.1f%%, AUC %.3f", iters, res.Accuracy*100, res.AUC)
			}
		}
	}
}

// BenchmarkAblationFeatureRanking compares the correlation ranker
// against variance and random top-4 selections (J48 accuracy).
func BenchmarkAblationFeatureRanking(b *testing.B) {
	ctx := benchContext(b)
	train, test := ctx.Builder.Train(), ctx.Builder.Test()
	for i := 0; i < b.N; i++ {
		corr, err := features.TopK(train, 4)
		if err != nil {
			b.Fatal(err)
		}
		varRanked, err := features.RankVariance(train)
		if err != nil {
			b.Fatal(err)
		}
		vCols := []int{varRanked[0].Index, varRanked[1].Index, varRanked[2].Index, varRanked[3].Index}
		rCols, err := features.RandomK(train, 4, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range []struct {
			name string
			cols []int
		}{{"correlation", corr}, {"variance", vCols}, {"random", rCols}} {
			tr, _ := train.Select(cfg.cols)
			te, _ := test.Select(cfg.cols)
			model, err := zoo.MustNew("J48", 1).Train(tr, nil)
			if err != nil {
				b.Fatal(err)
			}
			acc, err := eval.Accuracy(model, te)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("top-4 by %-12s J48 accuracy %.1f%%", cfg.name, acc*100)
			}
		}
	}
}

// BenchmarkAblationSamplingInterval varies the per-interval cycle
// budget (the 10 ms knob) and reports the resulting detector accuracy.
func BenchmarkAblationSamplingInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, budget := range []uint64{6000, 24000, 96000} {
			cfg := collect.Default()
			cfg.Suite.AppsPerFamily = 3
			cfg.Intervals = 10
			cfg.CycleBudget = budget
			res, err := collect.Collect(cfg)
			if err != nil {
				b.Fatal(err)
			}
			bl, err := core.NewBuilder(res.Data, 0.7, 1)
			if err != nil {
				b.Fatal(err)
			}
			det, err := bl.Build("J48", zoo.General, 4)
			if err != nil {
				b.Fatal(err)
			}
			r, err := bl.Evaluate(det)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("cycle budget %6d: accuracy %.1f%%", budget, r.Accuracy*100)
			}
		}
	}
}

// BenchmarkAblationMultiplexing compares dedicated-batch collection
// (the paper's 11 runs) against single-run PMU multiplexing with
// scaling, measuring the relative estimation error on the instruction
// count.
func BenchmarkAblationMultiplexing(b *testing.B) {
	apps := workload.Suite(workload.SuiteConfig{Seed: 7, AppsPerFamily: 1})
	groups, err := perf.Batches(micro.AllEvents())
	if err != nil {
		b.Fatal(err)
	}
	gInstr, err := perf.NewGroup(micro.EvInstructions, micro.EvBranchInstructions, micro.EvMemLoads, micro.EvCPUCycles)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		var sumErr float64
		n := 0
		for _, app := range apps[:4] {
			run := app.NewRun(0)
			mDed := micro.NewMachine(micro.DefaultConfig(), run.MachineSeed())
			ded := perf.SampleRun(mDed, run, gInstr, 6, 24000)

			run2 := app.NewRun(0)
			mMux := micro.NewMachine(micro.DefaultConfig(), run2.MachineSeed())
			mux := perf.SampleMultiplexed(mMux, run2, groups, 6, 24000)

			for k := range ded {
				d := float64(ded[k].Values[0])
				m := mux[k][int(micro.EvInstructions)]
				if d > 0 {
					e := (m - d) / d
					if e < 0 {
						e = -e
					}
					sumErr += e
					n++
				}
			}
		}
		if i == 0 {
			b.Logf("multiplexing mean |error| on instruction counts: %.1f%%", 100*sumErr/float64(n))
		}
	}
}

// BenchmarkAblationHLSSchedule compares shared vs parallel ensemble
// hardware schedules.
func BenchmarkAblationHLSSchedule(b *testing.B) {
	ctx := benchContext(b)
	det, _, err := ctx.Detector("REPTree", zoo.Boosted, 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		shared, err := hls.CompileScheduled(det.Model, "shared", hls.Shared)
		if err != nil {
			b.Fatal(err)
		}
		par, err := hls.CompileScheduled(det.Model, "parallel", hls.Parallel)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("shared:   %d cycles, %.1f%% area", shared.Latency, shared.AreaPercent())
			b.Logf("parallel: %d cycles, %.1f%% area", par.Latency, par.AreaPercent())
		}
	}
}

// ---- Substrate micro-benchmarks ----

// BenchmarkMachineRun measures raw simulator throughput.
func BenchmarkMachineRun(b *testing.B) {
	app := workload.Suite(workload.SmallSuite())[0]
	run := app.NewRun(0)
	m := micro.NewMachine(micro.DefaultConfig(), 1)
	p := run.IntervalParams(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(&p, 1000)
	}
	b.SetBytes(0)
	b.ReportMetric(float64(1000*b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkCollectSmall measures a full (reduced) collection pass.
func BenchmarkCollectSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := collect.Collect(collect.Small()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainers measures single-model training cost per classifier
// on the shared corpus reduced to 8 features.
func BenchmarkTrainers(b *testing.B) {
	ctx := benchContext(b)
	cols, err := features.TopK(ctx.Builder.Train(), 8)
	if err != nil {
		b.Fatal(err)
	}
	train, err := ctx.Builder.Train().Select(cols)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range zoo.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := zoo.MustNew(name, uint64(i)).Train(train, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetectorInference measures single-sample classification
// latency of the deployed detectors (software path; the hls package
// models the hardware path).
func BenchmarkDetectorInference(b *testing.B) {
	ctx := benchContext(b)
	for _, cfg := range []struct {
		name    string
		variant zoo.Variant
		hpcs    int
	}{
		{"OneR", zoo.General, 2},
		{"J48", zoo.General, 4},
		{"REPTree", zoo.Boosted, 2},
		{"MLP", zoo.General, 8},
	} {
		det, _, err := ctx.Detector(cfg.name, cfg.variant, cfg.hpcs)
		if err != nil {
			b.Fatal(err)
		}
		x := make([]float64, cfg.hpcs)
		for i := range x {
			x[i] = float64(100 * (i + 1))
		}
		b.Run(det.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				det.Classify(x)
			}
		})
	}
}

// BenchmarkMonitorWatch measures the full run-time loop: simulate,
// sample through the PMU, classify, window.
func BenchmarkMonitorWatch(b *testing.B) {
	ctx := benchContext(b)
	det, _, err := ctx.Detector("REPTree", zoo.Boosted, 2)
	if err != nil {
		b.Fatal(err)
	}
	mon, err := core.NewMonitor(det, 5, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	app := workload.Suite(workload.SuiteConfig{Seed: 0xBEEF, AppsPerFamily: 1})[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := app.NewRun(i)
		mach := micro.NewMachine(micro.DefaultConfig(), run.MachineSeed())
		mon.Reset()
		if _, err := mon.Watch(mach, run, 10, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionSpecialized compares monolithic vs per-family
// specialized detectors (the organisation of Khasawneh et al. [11]).
func BenchmarkExtensionSpecialized(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		rows, err := ctx.SpecializedComparison(4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderOrgRows(rows))
		}
	}
}

// BenchmarkExtensionEvasion sweeps mimicry strength against a deployed
// 2HPC boosted detector.
func BenchmarkExtensionEvasion(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		pts, err := ctx.EvasionSweep("REPTree", zoo.Boosted, 2, []float64{0, 0.5, 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderEvasion("2HPC-Boosted-REPTree", pts))
		}
	}
}

// ---- Throughput-engine micro-benchmarks ----
//
// Run with -benchmem: the Inference* benches pin the zero-allocation
// verdict path (allocs/op must read 0 for the chain and batcher), and
// the Train* pair shows the sorted-index split-search win over the
// legacy per-node sort.

// BenchmarkInferenceChainObserve measures the steady-state supervised
// verdict path: one FallbackChain.Observe per sample.
func BenchmarkInferenceChainObserve(b *testing.B) {
	ctx := benchContext(b)
	chain, err := ctx.Builder.BuildChain("BayesNet", zoo.Bagged, []int{4, 2}, core.ChainConfig{})
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]uint64, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint64(1000 + 37*i)
		vals[0], vals[1], vals[2], vals[3] = base, base+101, base+211, base+307
		if _, err := chain.Observe(vals); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferenceBatcher measures single-sample scoring through a
// reusable Batcher (the zero-allocation batch-classification API).
func BenchmarkInferenceBatcher(b *testing.B) {
	ctx := benchContext(b)
	det, _, err := ctx.Detector("REPTree", zoo.Boosted, 4)
	if err != nil {
		b.Fatal(err)
	}
	batch := det.NewBatcher()
	x := []float64{100, 200, 300, 400}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Score(x)
	}
}

// BenchmarkInferenceLegacyScore is the allocating baseline the two
// benches above are compared against: the pre-engine Score path with a
// fresh feature vector per sample.
func BenchmarkInferenceLegacyScore(b *testing.B) {
	ctx := benchContext(b)
	det, _, err := ctx.Detector("REPTree", zoo.Boosted, 4)
	if err != nil {
		b.Fatal(err)
	}
	vals := []uint64{100, 200, 300, 400}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, len(vals))
		for j, v := range vals {
			x[j] = float64(v)
		}
		det.Score(x)
	}
}

// BenchmarkCompiledVsInterpreted pits the compiled inference backend
// (flattened forests, fused linear datapaths, blocked MLP batches) and
// the fixed-point quantized tier against the interpreted models, per
// detector family, on the single-sample hot path. Run with -benchmem:
// every side must report 0 allocs/op; the compiled side is the one the
// fleet shards score through by default. Families without a quantized
// lowering (JRip here) skip the quantized run rather than re-time
// their compiled fallback.
func BenchmarkCompiledVsInterpreted(b *testing.B) {
	ctx := benchContext(b)
	families := []struct {
		name    string
		variant zoo.Variant
	}{
		{"REPTree", zoo.Boosted},
		{"J48", zoo.Bagged},
		{"MLP", zoo.General},
		{"SGD", zoo.General},
		{"BayesNet", zoo.General},
		{"JRip", zoo.General},
	}
	x := []float64{100, 200, 300, 400}
	for _, fam := range families {
		det, _, err := ctx.Detector(fam.name, fam.variant, 4)
		if err != nil {
			b.Fatal(err)
		}
		label := fam.name + "-" + fam.variant.String()
		for _, mode := range []string{"compiled", "quantized", "interpreted"} {
			var batch *core.Batcher
			switch mode {
			case "interpreted":
				batch = det.NewInterpretedBatcher()
			case "quantized":
				batch = det.NewTierBatcher(core.TierQuantized)
				if !batch.Quantized() {
					continue
				}
			default:
				batch = det.NewBatcher()
				if !batch.Compiled() {
					b.Fatalf("%s: detector did not compile", label)
				}
			}
			b.Run(label+"/"+mode, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					batch.Score(x)
				}
			})
		}
	}
}

// BenchmarkBatcherBatchSize sweeps ScoreBatch over batch sizes 1, 16
// and 256 for the blocked-MLP kernel and a flattened boosted forest,
// compiled vs quantized vs interpreted. ns/op divided by the batch
// size gives the per-sample cost; the MLP compiled path amortises
// weight-row loads across the batch, so its per-sample cost should
// fall as the batch grows, and the quantized tier's integer matmul and
// lockstep forest walk should undercut it again.
func BenchmarkBatcherBatchSize(b *testing.B) {
	ctx := benchContext(b)
	for _, fam := range []struct {
		name    string
		variant zoo.Variant
	}{{"MLP", zoo.General}, {"REPTree", zoo.Boosted}} {
		det, _, err := ctx.Detector(fam.name, fam.variant, 4)
		if err != nil {
			b.Fatal(err)
		}
		label := fam.name + "-" + fam.variant.String()
		for _, size := range []int{1, 16, 256} {
			xs := make([][]float64, size)
			for i := range xs {
				xs[i] = []float64{100 + float64(i), 200, 300 - float64(i), 400}
			}
			out := make([]float64, size)
			for _, mode := range []string{"compiled", "quantized", "interpreted"} {
				batch := det.NewBatcher()
				switch mode {
				case "interpreted":
					batch = det.NewInterpretedBatcher()
				case "quantized":
					batch = det.NewTierBatcher(core.TierQuantized)
					if !batch.Quantized() {
						b.Fatalf("%s: no quantized lowering", label)
					}
				}
				b.Run(fmt.Sprintf("%s/%s/batch=%d", label, mode, size), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						batch.ScoreBatch(xs, out)
					}
				})
			}
		}
	}
}

// BenchmarkTrainJ48 compares the sorted-index split search against the
// legacy per-node sort on the shared corpus reduced to 8 features.
func BenchmarkTrainJ48(b *testing.B) {
	ctx := benchContext(b)
	cols, err := features.TopK(ctx.Builder.Train(), 8)
	if err != nil {
		b.Fatal(err)
	}
	train, err := ctx.Builder.Train().Select(cols)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name   string
		legacy bool
	}{{"sorted", false}, {"legacy", true}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := j48.New()
				tr.LegacySplit = cfg.legacy
				if _, err := tr.Train(train, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
