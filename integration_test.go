// Integration tests: end-to-end paths across package boundaries,
// mirroring what the cmd tools and examples do.
package repro_test

import (
	"bytes"
	"testing"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hls"
	"repro/internal/micro"
	"repro/internal/mlearn/describe"
	"repro/internal/mlearn/zoo"
	"repro/internal/workload"
)

// TestEndToEndPipeline drives the complete system: collect under the
// PMU constraint, split, rank, train, evaluate, serialise, lower to
// hardware, and monitor — every subsystem in one flow.
func TestEndToEndPipeline(t *testing.T) {
	// 1. Collect.
	cfg := collect.Small()
	cfg.Suite.AppsPerFamily = 4
	cfg.Intervals = 10
	res, err := collect.Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RunsPerApp != 11 {
		t.Fatalf("PMU constraint broken: %d runs per app", res.RunsPerApp)
	}

	// 2. Split + rank + train.
	b, err := core.NewBuilder(res.Data, 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	det, err := b.Build("REPTree", zoo.Boosted, 2)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Evaluate: must beat chance clearly on unknown applications.
	r, err := b.Evaluate(det)
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy < 0.6 || r.AUC < 0.6 {
		t.Fatalf("end-to-end detector too weak: acc %.3f auc %.3f", r.Accuracy, r.AUC)
	}

	// 4. Serialise and reload; predictions must survive.
	var buf bytes.Buffer
	if err := core.SaveDetector(&buf, det); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// 5. Lower to hardware: the netlist must agree with the software
	//    model on real held-out HPC vectors.
	nl, err := hls.BuildNetlist(loaded.Model, loaded.Name(), loaded.HPCs())
	if err != nil {
		t.Fatal(err)
	}
	cols := make([]string, loaded.HPCs())
	for i, ev := range loaded.Events {
		cols[i] = ev.String()
	}
	testK, err := b.Test().SelectNames(cols)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := range testK.X {
		in := make([]int64, len(testK.X[i]))
		for j, v := range testK.X[i] {
			in[j] = int64(v)
		}
		bit, err := nl.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		if int(bit) == loaded.Classify(testK.X[i]) {
			agree++
		}
	}
	if frac := float64(agree) / float64(testK.NumRows()); frac < 0.97 {
		t.Fatalf("hardware/software agreement %.3f on real HPC vectors", frac)
	}
	if v := nl.Verilog(); len(v) == 0 {
		t.Fatal("empty Verilog")
	}

	// 6. The model is explainable.
	if txt := describe.Model(loaded.Model, cols, dataset.BinaryClassNames()); len(txt) < 40 {
		t.Fatalf("model description suspiciously short: %q", txt)
	}

	// 7. Deploy as a run-time monitor over an unseen app.
	mon, err := core.NewMonitor(loaded, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fam, _ := workload.FamilyByName("script-python")
	app := fam.Instantiate(77, 0xFACE)
	run := app.NewRun(0)
	mach := micro.NewMachine(micro.FastConfig(), run.MachineSeed())
	verdicts, err := mon.Watch(mach, run, 12, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 12 {
		t.Fatalf("got %d verdicts", len(verdicts))
	}
}

// TestCollectTrainViaARFF exercises the hmd-collect -> hmd-train file
// hand-off: a dataset that round-trips through ARFF must train to the
// same detector behaviour.
func TestCollectTrainViaARFF(t *testing.T) {
	cfg := collect.Small()
	cfg.Suite.AppsPerFamily = 3
	cfg.Intervals = 8
	res, err := collect.Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := res.Data.WriteARFF(&buf, "it"); err != nil {
		t.Fatal(err)
	}
	reloaded, err := dataset.ReadARFF(&buf)
	if err != nil {
		t.Fatal(err)
	}

	bDirect, err := core.NewBuilder(res.Data, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	bFile, err := core.NewBuilder(reloaded, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := bDirect.Build("J48", zoo.General, 4)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := bFile.Build("J48", zoo.General, 4)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := bDirect.Evaluate(d1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := bFile.Evaluate(d2)
	if err != nil {
		t.Fatal(err)
	}
	// The ARFF round-trip is lossless and the pipeline deterministic,
	// so the results must be identical.
	if r1 != r2 {
		t.Fatalf("ARFF hand-off changed results: %+v vs %+v", r1, r2)
	}
}
