// Command hmd-bench regenerates every table and figure of the paper's
// evaluation section at full corpus scale and checks the headline
// claims (the shape of the results, not absolute numbers).
//
// Usage:
//
//	hmd-bench [-exp all|table1|figure3|table2|figure4|figure5|table3|robustness|chaos|perf|quant|fleet|ingest|claims]
//	          [-perf-only family[:tier]]
//	          [-apps N] [-intervals N] [-seed N]
//	          [-capacity] [-capacityms N]
//	          [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -capacity extends -exp ingest and -exp cluster with the unpaced
// wire-capacity measurement: clients blast the socket as fast as it
// admits, once over the legacy single-frame protocol and once batched,
// and the reports gain max samples/s, syscalls/sample, p99 verdict
// latency and the batched/unbatched speedup.
//
// -perf-only times a single detector family under one inference tier
// (e.g. -perf-only mlp:quantized) and exits — a seconds-long probe for
// kernel work, against the minutes-long full -exp perf sweep. -exp
// quant runs the quantized tier's statistical-equivalence gate alone.
//
// -cpuprofile and -memprofile write standard pprof profiles of the run
// (inspect with `go tool pprof`); the heap profile is snapshotted after
// a final GC when the selected experiments finish.
//
// With -exp all (the default) the tool prints every artefact in paper
// order followed by the headline-claim checklist. Expect a few minutes
// of runtime at the default scale: the collection pass alone executes
// 120 applications 11 times each under the 4-register PMU constraint,
// and the detector grid trains 96 models.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/collect"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/mlearn/zoo"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, figure3, table2, figure4, figure5, table3, extensions, robustness, chaos, perf, quant, fleet, ingest, cluster, claims")
	perfOnly := flag.String("perf-only", "", "time a single family under one tier (family[:tier], e.g. mlp:quantized) and exit")
	apps := flag.Int("apps", 10, "applications per behaviour family (10 = paper scale, 120 apps)")
	intervals := flag.Int("intervals", 30, "sampling intervals per run")
	seed := flag.Uint64("seed", 1, "split/training seed")
	perfOut := flag.String("perfout", "BENCH_PERF.json", "output path of the -exp perf report")
	fleetOut := flag.String("fleetout", "BENCH_FLEET.json", "output path of the -exp fleet report")
	fleetStreams := flag.String("fleetstreams", "", "comma-separated stream counts for -exp fleet (default 16,64,256,512,1024)")
	fleetIntervals := flag.Int("fleetintervals", 0, "intervals per stream for -exp fleet (default 200)")
	fleetDensity := flag.String("fleetdensity", "", "comma-separated stream counts for the -exp fleet density sweep (default 1024,2048,4096,8192; 'skip' omits it)")
	ingestOut := flag.String("ingestout", "BENCH_INGEST.json", "output path of the -exp ingest report")
	ingestStreams := flag.Int("ingeststreams", 0, "concurrent TCP clients for -exp ingest (default 8)")
	ingestSamples := flag.Int("ingestsamples", 0, "samples per client for -exp ingest (default 200)")
	clusterOut := flag.String("clusterout", "BENCH_CLUSTER.json", "output path of the -exp cluster report")
	clusterNodes := flag.String("clusternodes", "", "comma-separated node counts for -exp cluster (default 2,3,4,6,8)")
	clusterSamples := flag.Int("clustersamples", 0, "samples per stream for -exp cluster (default 150)")
	capacity := flag.Bool("capacity", false, "add the unpaced wire-capacity measurement (batched vs unbatched) to -exp ingest and -exp cluster")
	capacityMillis := flag.Int("capacityms", 0, "blast window per -capacity point in ms (default 600)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit (pprof format)")
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(fmt.Errorf("-cpuprofile: %w", err))
			}
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(fmt.Errorf("-memprofile: %w", err))
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(fmt.Errorf("-memprofile: %w", err))
			}
			fmt.Fprintf(os.Stderr, "heap profile written to %s\n", *memProfile)
		}()
	}
	perfPath = *perfOut
	fleetPath = *fleetOut
	ingestPath = *ingestOut
	clusterPath = *clusterOut
	ingestCfg.Streams = *ingestStreams
	ingestCfg.Samples = *ingestSamples
	ingestCfg.Capacity = *capacity
	ingestCfg.CapacityMillis = *capacityMillis
	clusterCfg.Samples = *clusterSamples
	clusterCfg.Capacity = *capacity
	clusterCfg.CapacityMillis = *capacityMillis
	fleetCfg.Intervals = *fleetIntervals
	if *fleetStreams != "" {
		counts, err := parseCounts(*fleetStreams)
		if err != nil {
			fatal(fmt.Errorf("-fleetstreams: %w", err))
		}
		fleetCfg.StreamCounts = counts
	}
	if *fleetDensity == "skip" {
		fleetCfg.SkipDensity = true
	} else if *fleetDensity != "" {
		counts, err := parseCounts(*fleetDensity)
		if err != nil {
			fatal(fmt.Errorf("-fleetdensity: %w", err))
		}
		fleetCfg.DensityCounts = counts
	}
	if *clusterNodes != "" {
		counts, err := parseCounts(*clusterNodes)
		if err != nil {
			fatal(fmt.Errorf("-clusternodes: %w", err))
		}
		clusterCfg.NodeCounts = counts
	}

	cfg := collect.Default()
	cfg.Suite.AppsPerFamily = *apps
	cfg.Intervals = *intervals

	start := time.Now()
	fmt.Fprintf(os.Stderr, "collecting corpus (%d apps x 11 runs x %d intervals)...\n", 12**apps, *intervals)
	ctx, err := experiments.NewContext(cfg, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "collection done in %v (%d samples x %d events)\n",
		time.Since(start).Round(time.Second), ctx.Data.NumRows(), ctx.Data.NumAttrs())

	run := func(name string, fn func(*experiments.Context) error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(ctx); err != nil {
			fatal(fmt.Errorf("experiment %s: %w", name, err))
		}
	}

	if *perfOnly != "" {
		res, err := ctx.PerfOnly(*perfOnly)
		if err != nil {
			fatal(fmt.Errorf("-perf-only: %w", err))
		}
		fmt.Print(experiments.RenderPerfOnly(res))
		return
	}

	run("table1", table1)
	run("figure3", figure3)
	run("table2", table2)
	run("figure4", figure4)
	run("figure5", figure5)
	run("table3", table3)
	run("extensions", extensions)
	run("robustness", robustness)
	run("chaos", chaos)
	if *exp == "perf" {
		run("perf", perfReport)
	}
	if *exp == "quant" {
		run("quant", quantGate)
	}
	if *exp == "fleet" {
		run("fleet", fleetReport)
	}
	if *exp == "ingest" {
		run("ingest", ingestReport)
	}
	if *exp == "cluster" {
		run("cluster", clusterReport)
	}
	run("claims", claims)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hmd-bench:", err)
	os.Exit(1)
}

func table1(ctx *experiments.Context) error {
	rows, err := ctx.Table1(16)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderTable1(rows))
	fmt.Println()
	return nil
}

func figure3(ctx *experiments.Context) error {
	cells, err := ctx.Figure3()
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderGrid(cells, "acc"))
	fmt.Println()
	return nil
}

func table2(ctx *experiments.Context) error {
	rows, err := ctx.Table2()
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderTable2(rows))
	fmt.Println()
	return nil
}

func figure4(ctx *experiments.Context) error {
	a, err := ctx.Figure4a()
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderROCs("Figure 4a: ROC, 4HPC-Bagging detectors", a))
	b, err := ctx.Figure4b()
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderROCs("Figure 4b: ROC, 8HPC general vs 2HPC-Boosted", b))
	fmt.Println()
	return nil
}

func figure5(ctx *experiments.Context) error {
	cells, err := ctx.Figure5()
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderGrid(cells, "perf"))
	fmt.Println()
	return nil
}

func table3(ctx *experiments.Context) error {
	rows, err := ctx.Table3()
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderTable3(rows))
	fmt.Println()
	return nil
}

// extensions prints the beyond-the-paper studies: specialized
// per-family detectors and the mimicry-evasion sweep.
func extensions(ctx *experiments.Context) error {
	rows, err := ctx.SpecializedComparison(4)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderOrgRows(rows))
	pts, err := ctx.EvasionSweep("REPTree", zoo.Boosted, 2, []float64{0, 0.25, 0.5, 0.75, 1})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderEvasion("2HPC-Boosted-REPTree", pts))
	fmt.Println()
	return nil
}

// robustness prints the fault-rate sweep: accuracy/AUC of general vs
// boosted vs bagged detectors as injected HPC faults intensify,
// extending the paper's reduced-HPC comparison to degraded inputs.
func robustness(ctx *experiments.Context) error {
	rates := []float64{0, 0.1, 0.2, 0.3, 0.5}
	for _, cfg := range []struct {
		name string
		hpcs int
	}{{"REPTree", 2}, {"JRip", 4}} {
		curve, err := ctx.RobustnessSweep(cfg.name, cfg.hpcs, rates, faults.Plan{Seed: 0xF417})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderRobustness(curve))
		fmt.Println()
	}
	return nil
}

// chaos runs the supervised-service drill: crash-safe checkpoint
// recovery plus fault-injected monitoring through the supervised
// pipeline, with the service contracts (gap-free stream, breaker
// trip/recovery, torn-checkpoint quarantine, determinism) asserted.
func chaos(ctx *experiments.Context) error {
	dir, err := os.MkdirTemp("", "hmd-chaos-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	res, err := ctx.Chaos(experiments.ChaosConfig{
		Plan:          faults.Plan{Seed: 0xCA05, Rate: 0.3},
		CheckpointDir: dir,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderChaos(res))
	fmt.Println()
	if !res.Passed() {
		return fmt.Errorf("chaos drill contracts failed")
	}
	return nil
}

// perfPath is where -exp perf writes its JSON report.
var perfPath string

// perfReport runs the throughput-engine benchmark (training-grid wall
// time, CV parallelism, per-sample verdict path) and writes the JSON
// artefact alongside the console summary.
func perfReport(ctx *experiments.Context) error {
	rep, err := ctx.Perf()
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderPerf(rep))
	fmt.Println()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(perfPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "perf report written to %s\n", perfPath)
	return nil
}

// quantGate runs the quantized tier's statistical-equivalence gate at
// corpus scale: zoo-wide pooled verdict parity plus per-model metric
// deltas within the robustness noise band. A failing gate is a
// non-zero exit — the same contract scripts/check.sh enforces via
// TestQuantEquivalence.
func quantGate(ctx *experiments.Context) error {
	rep, err := ctx.QuantEquivalence()
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderQuantEquivalence(rep))
	fmt.Println()
	if !rep.Pass {
		return fmt.Errorf("quantized equivalence gate failed")
	}
	return nil
}

// fleetPath is where -exp fleet writes its JSON report; fleetCfg holds
// the flag overrides (zero values mean experiment defaults).
var (
	fleetPath string
	fleetCfg  experiments.FleetBenchConfig
)

// parseCounts parses a comma-separated list of positive stream counts.
func parseCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad stream count %q", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// fleetReport runs the multi-stream serving benchmark (sharded fleet
// engine vs one pipeline per stream) and writes the JSON artefact
// alongside the console summary.
func fleetReport(ctx *experiments.Context) error {
	rep, err := ctx.Fleet(fleetCfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFleet(rep))
	fmt.Println()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(fleetPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fleet report written to %s\n", fleetPath)
	return nil
}

// ingestPath is where -exp ingest writes its JSON report; ingestCfg
// holds the flag overrides (zero values mean experiment defaults).
var (
	ingestPath  string
	ingestCfg   experiments.IngestBenchConfig
	clusterPath string
	clusterCfg  experiments.ClusterBenchConfig
)

// ingestReport first runs the ingest chaos drill (real loopback TCP
// clients under seeded wire faults, a quota storm and a mid-run
// drain/restart — the network plane's service contracts must all hold),
// then sweeps offered load against the service rate and writes the
// JSON artefact alongside the console summary.
func ingestReport(ctx *experiments.Context) error {
	dir, err := os.MkdirTemp("", "hmd-ingest-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	res, err := ctx.IngestChaos(experiments.IngestChaosConfig{
		Plan:          faults.WirePlan{Seed: 0x16E57, Rate: 0.25},
		CheckpointDir: dir,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderIngestChaos(res))
	fmt.Println()
	if !res.Passed() {
		return fmt.Errorf("ingest chaos drill contracts failed")
	}

	rep, err := ctx.IngestBench(ingestCfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderIngest(rep))
	fmt.Println()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(ingestPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ingest report written to %s\n", ingestPath)
	return nil
}

// clusterReport first runs the cluster chaos drill (multi-node
// coordinator, scripted node crash, coordinator partition, rolling
// upgrade — every control-plane contract must hold and the verdicts
// must stay bit-identical to a single-node reference), then sweeps
// cluster sizes and writes the JSON artefact alongside the console
// summary.
func clusterReport(ctx *experiments.Context) error {
	res, err := ctx.ClusterChaos(experiments.ClusterChaosConfig{Seed: 0xC1A0})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderClusterChaos(res))
	fmt.Println()
	if !res.Passed() {
		return fmt.Errorf("cluster chaos drill contracts failed")
	}

	rep, err := ctx.ClusterBench(clusterCfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderCluster(rep))
	fmt.Println()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(clusterPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cluster report written to %s\n", clusterPath)
	return nil
}

// claims evaluates the paper's headline statements against the measured
// grid and prints a PASS/FAIL checklist. These are shape checks: who
// wins and by roughly what magnitude.
func claims(ctx *experiments.Context) error {
	cells, err := ctx.Grid()
	if err != nil {
		return err
	}
	perf := map[string]float64{}
	acc := map[string]float64{}
	auc := map[string]float64{}
	for _, c := range cells {
		perf[c.Label()] = c.Result.Performance() * 100
		acc[c.Label()] = c.Result.Accuracy * 100
		auc[c.Label()] = c.Result.AUC
	}

	fmt.Println("Headline claims (paper -> measured):")
	check := func(desc string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %s — %s\n", status, desc, detail)
	}

	// Claim 1 (abstract): ensemble with 2 HPCs outperforms standard
	// classifiers with 8 HPCs by up to 17% (ACC*AUC).
	best := 0.0
	bestName := ""
	for _, name := range zoo.Names() {
		gain := perf["2HPC-Boosted-"+name] - perf["8HPC-"+name]
		if gain > best {
			best, bestName = gain, name
		}
	}
	check("2HPC ensemble beats 8HPC general by up to ~17%",
		best >= 5,
		fmt.Sprintf("max gain %.1f points (%s); paper: up to 17%%", best, bestName))

	// Claim 2 (§4.3): SMO 4HPC-Boosted improves ~16% over few-HPC
	// general models.
	gSMO4 := perf["4HPC-Boosted-SMO"] - perf["8HPC-SMO"]
	check("SMO: 4HPC-Boosted >> 8HPC general (paper +16%)",
		gSMO4 >= 8,
		fmt.Sprintf("measured +%.1f points", gSMO4))

	gSMO2 := perf["2HPC-Boosted-SMO"] - perf["8HPC-SMO"]
	check("SMO: 2HPC-Boosted >> 8HPC general (paper +17%)",
		gSMO2 >= 4,
		fmt.Sprintf("measured +%.1f points", gSMO2))

	// Claim 3 (§4.3): REPTree 2HPC-Boosted improves ~11% over the 8HPC
	// general model.
	gRT := perf["2HPC-Boosted-REPTree"] - perf["8HPC-REPTree"]
	check("REPTree: 2HPC-Boosted > 8HPC general (paper +11%)",
		gRT >= 2,
		fmt.Sprintf("measured +%.1f points", gRT))

	// Claim 4 (§4.3): JRip 4HPC-Boosted ~ +10% over 8HPC general.
	gJR := perf["4HPC-Boosted-JRip"] - perf["8HPC-JRip"]
	check("JRip: 4HPC-Boosted > 8HPC general (paper +10%)",
		gJR >= 2,
		fmt.Sprintf("measured +%.1f points", gJR))

	// Claim 5 (§4.1): OneR accuracy is (nearly) flat across HPC
	// budgets.
	spread := 0.0
	for _, k := range []string{"16HPC-OneR", "8HPC-OneR", "4HPC-OneR", "2HPC-OneR"} {
		d := acc[k] - acc["16HPC-OneR"]
		if d < 0 {
			d = -d
		}
		if d > spread {
			spread = d
		}
	}
	check("OneR accuracy flat across HPC budgets",
		spread <= 5,
		fmt.Sprintf("max spread %.1f points", spread))

	// Claim 6 (§4.1): REPTree with 2HPC+AdaBoost approaches its 16HPC
	// accuracy.
	dRT := acc["16HPC-REPTree"] - acc["2HPC-Boosted-REPTree"]
	check("REPTree: 2HPC-Boosted accuracy ~ 16HPC general (paper: equal)",
		dRT <= 8,
		fmt.Sprintf("gap %.1f points", dRT))

	// Claim 7 (§4.2): boosting repairs the AUC of hard-output models
	// with few HPCs (SMO/JRip at 2HPC).
	check("JRip: 2HPC-Boosted AUC > 2HPC general AUC (paper 0.81->0.93)",
		auc["2HPC-Boosted-JRip"] > auc["2HPC-JRip"],
		fmt.Sprintf("%.2f -> %.2f", auc["2HPC-JRip"], auc["2HPC-Boosted-JRip"]))
	check("SMO: 4HPC-Boosted AUC > 4HPC general AUC (paper 0.65->0.88)",
		auc["4HPC-Boosted-SMO"] > auc["4HPC-SMO"],
		fmt.Sprintf("%.2f -> %.2f", auc["4HPC-SMO"], auc["4HPC-Boosted-SMO"]))

	// Claim 8: accuracy degrades from 16 to 2 HPCs for the
	// feature-hungry classifiers (the trade-off motivating the paper).
	deg := 0
	for _, name := range []string{"J48", "JRip", "MLP", "SGD", "SMO", "REPTree"} {
		if acc["16HPC-"+name] > acc["2HPC-"+name] {
			deg++
		}
	}
	check("accuracy degrades 16->2 HPCs for most general classifiers",
		deg >= 4,
		fmt.Sprintf("%d/6 classifiers degrade", deg))

	return nil
}
