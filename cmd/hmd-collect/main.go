// Command hmd-collect runs the paper's data-collection methodology and
// writes the assembled HPC dataset to disk: every application in the
// corpus executes once per 4-event batch (11 runs for the 44-event
// list) inside a fresh, destroyed-after-use container, sampled at fixed
// intervals.
//
// Usage:
//
//	hmd-collect -out dataset.arff [-format arff|csv] [-apps N] [-intervals N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/collect"
	"repro/internal/faults"
)

func main() {
	out := flag.String("out", "hpc-dataset.arff", "output file")
	format := flag.String("format", "arff", "output format: arff or csv")
	apps := flag.Int("apps", 10, "applications per behaviour family (12 families)")
	intervals := flag.Int("intervals", 30, "sampling intervals per run")
	seed := flag.Uint64("seed", 0xDAC2018, "suite generation seed")
	faultRate := flag.Float64("faults", 0, "inject infrastructure faults at this rate (0 = clean pass)")
	faultKinds := flag.String("fault-kinds", "all", "comma-separated fault kinds (drop,stuck,zero,noise,saturate,jitter,crash)")
	flag.Parse()

	cfg := collect.Default()
	cfg.Suite.AppsPerFamily = *apps
	cfg.Suite.Seed = *seed
	cfg.Intervals = *intervals
	if *faultRate > 0 {
		kinds, err := faults.ParseKinds(*faultKinds)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = &faults.Plan{Seed: *seed, Rate: *faultRate, Kinds: kinds}
	}

	start := time.Now()
	res, err := collect.Collect(cfg)
	if err != nil {
		fatal(fmt.Errorf("collecting corpus (%d apps/family, %d intervals): %w", *apps, *intervals, err))
	}
	counts := res.Data.ClassCounts()
	fmt.Fprintf(os.Stderr,
		"collected %d samples (%d benign, %d malware) x %d events in %v\n"+
			"  %d runs per app (4-register PMU), %d containers created+destroyed\n",
		res.Data.NumRows(), counts[0], counts[1], res.Data.NumAttrs(),
		time.Since(start).Round(time.Millisecond), res.RunsPerApp, res.Containers)
	if res.Report.Degraded() {
		fmt.Fprintf(os.Stderr, "  %s\n", res.Report)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(fmt.Errorf("creating %s: %w", *out, err))
	}
	defer f.Close()
	switch *format {
	case "arff":
		err = res.Data.WriteARFF(f, "hpc-malware")
	case "csv":
		err = res.Data.WriteCSV(f)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(fmt.Errorf("writing %s: %w", *out, err))
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hmd-collect:", err)
	os.Exit(1)
}
