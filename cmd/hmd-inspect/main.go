// Command hmd-inspect loads a serialized detector (.hmd, written by
// hmd-export or core.SaveDetector) and prints what it is: its HPC
// events, run-time deployability, hardware cost, and the full trained
// model in human-readable form.
//
// Usage:
//
//	hmd-inspect detector.hmd
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hls"
	"repro/internal/mlearn/describe"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hmd-inspect <detector.hmd>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	det, err := core.LoadDetector(f)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("detector: %s\n", det.Name())
	fmt.Printf("run-time capable: %v\n", det.RunTimeCapable())
	fmt.Printf("HPC events (feature order):\n")
	attrNames := make([]string, len(det.Events))
	for i, ev := range det.Events {
		attrNames[i] = ev.String()
		fmt.Printf("  %d. %s\n", i+1, ev)
	}

	if design, err := hls.Compile(det.Model, det.Name()); err == nil {
		fmt.Printf("hardware: %d cycles @10ns, %.1f%% of OpenSPARC core area\n",
			design.Latency, design.AreaPercent())
	}

	fmt.Println("\nmodel:")
	fmt.Print(describe.Model(det.Model, attrNames, dataset.BinaryClassNames()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hmd-inspect:", err)
	os.Exit(1)
}
