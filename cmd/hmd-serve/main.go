// Command hmd-serve runs the hardware malware detector as a supervised
// long-running service. Startup trains the fallback chain (or reloads
// it from a crash-safe checkpoint, skipping training entirely), then
// the supervised pipeline monitors a rotating schedule of unseen
// applications: collection, feature reduction and ensemble inference
// run as independently restartable stages behind bounded queues, a
// circuit breaker guards the sample source, and the chain's run-time
// state is checkpointed so a killed process resumes its verdict
// timeline instead of restarting it.
//
// Usage:
//
//	hmd-serve [-addr :8642] [-checkpoint DIR] [-faults RATE] [-loops N] ...
//	hmd-serve -streams 256 -shards 8 ...   (fleet mode)
//	hmd-serve -ingest :9642 -addr :8642 ...   (network ingest mode)
//	hmd-serve -coordinator :7642 ...   (cluster control plane)
//	hmd-serve -ingest :9642 -cluster HOST:7642 -node-id n0 ...   (cluster member)
//
// With -streams N > 0 the service runs in fleet mode: instead of one
// supervised pipeline monitoring apps sequentially, the sharded fleet
// engine multiplexes N concurrent monitored streams (each with its own
// chain state, circuit breaker and fault plan) over -shards worker
// shards with cross-stream batched inference, all paced by one timer
// wheel at -stream-interval (the paper's 10 ms by default).
//
// With -ingest ADDR the service opens the network front door instead of
// generating its own streams: remote clients feed HPC feature vectors
// over the length-prefixed binary TCP protocol (internal/ingest), each
// (tenant, stream) pair is admitted into the fleet engine subject to
// per-tenant quotas, and verdicts are echoed back on the same
// connection. The first SIGTERM drains gracefully — admissions are
// refused with DRAIN frames, buffered samples are scored, chain state
// is checkpointed — and a second SIGTERM aborts the drain: the engine
// stops mid-flight, a best-effort final checkpoint is written so the
// next process resumes the surviving timelines, and the streams
// abandoned mid-drain are named on stderr.
//
// With -coordinator ADDR the process serves only the cluster control
// plane (internal/cluster): ingest nodes started with -cluster ADDR
// join it, renew lease heartbeats, and have stream ownership placed by
// consistent hashing. When a member's lease expires its streams fail
// over to the survivors, seeded from the last fanned-in chain state; a
// SIGTERM on a member runs the same orchestrated drain handshake as a
// coordinator-commanded one, so handoffs stay gap-free either way.
// Clients that dial the wrong member are redirected to the owner
// (internal/cluster.Dial follows redirects automatically).
//
// HTTP endpoints (when -addr is set):
//
//	/healthz  liveness: 200 as soon as the process serves HTTP
//	/readyz   readiness: 503 while training/recovering or draining
//	          (body "draining"), 200 once monitoring
//	/stats    JSON snapshot: service phase, collection progress while
//	          training, and the supervised pipeline's counters (restarts,
//	          breaker trips, queue depths, drops, checkpoints). In fleet
//	          mode: aggregate fleet counters and per-shard throughput,
//	          latency percentiles (p50/p99/p999) and the interval-lag
//	          histogram. The per-stream section is off by default (at
//	          density it is the expensive part); /stats?streams=1
//	          pages through it 256 streams at a time, with
//	          &offset=N&limit=M selecting a window in admission order
//	          (limit=-1 returns everything from offset). In ingest mode
//	          additionally the ingest-plane counters
//	/drainz   POST: start a graceful ingest drain (ingest mode only)
//	/ingest/...  debug JSON ingest surface (ingest mode only)
//	/debug/pprof/...  Go profiling endpoints (only with -pprof)
//
// The service is deterministic per seed: faults, crashes, breaker
// behaviour and verdicts reproduce exactly across runs (modulo HTTP
// timing, which observes but never steers the pipeline).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/micro"
	"repro/internal/mlearn/zoo"
	"repro/internal/supervise"
	"repro/internal/workload"
)

func main() {
	name := flag.String("classifier", "REPTree", "base classifier for the fallback chain")
	variantName := flag.String("variant", "general", "general, boosted or bagging")
	countsFlag := flag.String("counts", "4,2", "chain HPC budgets, primary first")
	window := flag.Int("window", 5, "sliding verdict window (samples)")
	apps := flag.Int("apps", 4, "training applications per behaviour family")
	intervals := flag.Int("intervals", 10, "sampling intervals per training run")
	nApps := flag.Int("monitor-apps", 6, "unseen applications per monitoring loop")
	monIntervals := flag.Int("monitor-intervals", 40, "sampling intervals per monitored app")
	loops := flag.Int("loops", 1, "monitoring loops over the schedule (0 = run until signalled)")
	seed := flag.Uint64("seed", 1, "split/training seed")
	trainWorkers := flag.Int("train-workers", 0, "worker goroutines for ensemble training (0 = GOMAXPROCS, 1 = sequential; models are bit-identical either way)")
	faultRate := flag.Float64("faults", 0, "fault-injection rate on the monitored source (0 = clean)")
	faultKinds := flag.String("fault-kinds", "all", "comma-separated fault kinds: drop,stuck,zero,noise,saturate,jitter,crash (or all)")
	addr := flag.String("addr", "", "HTTP listen address for health/stats (empty = no HTTP)")
	ckptDir := flag.String("checkpoint", "", "checkpoint directory (empty = no persistence)")
	ckptEvery := flag.Int("checkpoint-every", 16, "verdicts between chain-state checkpoints")
	queueCap := flag.Int("queue", 8, "bounded stage-queue capacity")
	policy := flag.String("overflow", "block", "queue overflow policy: block (deterministic) or drop-oldest")
	streams := flag.Int("streams", 0, "fleet mode: monitored streams served concurrently (0 = classic single-pipeline mode)")
	shards := flag.Int("shards", 0, "fleet mode: worker shards (0 = GOMAXPROCS)")
	streamInterval := flag.Duration("stream-interval", 10*time.Millisecond, "fleet mode: per-stream sampling interval (0 = unpaced)")
	maxHarvest := flag.Int("max-harvest", 0, "fleet mode: max wheel ticks coalesced into one shard batch (0 = min(8, wheel slots), 1 = batch per tick)")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof on the HTTP mux")
	ingestAddr := flag.String("ingest", "", "ingest mode: TCP listen address for the binary ingest protocol (empty = off)")
	ingestWindow := flag.Int("ingest-window", 0, "ingest mode: per-stream inflight sample window (0 = default 64)")
	ingestMaxConns := flag.Int("ingest-max-conns", 0, "ingest mode: global concurrent connection cap (0 = default 1024)")
	ingestQuotaStreams := flag.Int("ingest-quota-streams", 0, "ingest mode: per-tenant live stream cap (0 = unlimited)")
	ingestQuotaConns := flag.Int("ingest-quota-conns", 0, "ingest mode: per-tenant connection cap (0 = unlimited)")
	ingestQuotaAdmit := flag.Float64("ingest-quota-admit", 0, "ingest mode: per-tenant stream admissions per second (0 = unlimited)")
	ingestQuotaSamples := flag.Float64("ingest-quota-samples", 0, "ingest mode: per-tenant samples per second (0 = unlimited)")
	coordAddr := flag.String("coordinator", "", "coordinator mode: TCP listen address for the cluster control plane (no inference; excludes every other mode)")
	leaseTTL := flag.Duration("lease-ttl", 2*time.Second, "coordinator mode: member lease TTL before failover")
	clusterAddr := flag.String("cluster", "", "cluster mode: coordinator address this ingest node joins (requires -ingest)")
	nodeID := flag.String("node-id", "", "cluster mode: stable member identity (default: the advertise address)")
	advertise := flag.String("advertise", "", "cluster mode: ingest address clients are redirected to (default: the -ingest listener address)")
	nodeWeight := flag.Int("node-weight", 1, "cluster mode: ring share relative to other members")
	heartbeatEvery := flag.Duration("heartbeat", 500*time.Millisecond, "cluster mode: lease renewal cadence (keep well under the coordinator's -lease-ttl)")
	statesEvery := flag.Int("states-every", 4, "cluster mode: ship stream states to the coordinator every Nth heartbeat (<0 disables the fan-in)")
	tierName := flag.String("tier", "compiled", "inference tier: compiled (bit-identical, default), quantized (fixed-point fast tier, statistical equivalence), or interpreted")
	flag.Parse()

	variant := zoo.General
	switch strings.ToLower(*variantName) {
	case "boosted":
		variant = zoo.Boosted
	case "bagging", "bagged":
		variant = zoo.Bagged
	}
	counts, err := parseCounts(*countsFlag)
	if err != nil {
		fatal(err)
	}
	tier, err := core.ParseTier(*tierName)
	if err != nil {
		fatal(err)
	}
	overflow := supervise.Block
	if *policy == "drop-oldest" {
		overflow = supervise.DropOldest
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := newService()
	if *addr != "" {
		shutdown := srv.serveHTTP(*addr, *pprofOn)
		defer shutdown()
	}

	// ---- Coordinator mode: cluster control plane, no inference ----
	if *coordAddr != "" {
		runCoordinator(ctx, srv, *coordAddr, *leaseTTL)
		return
	}

	// ---- Model: recover from checkpoint or train from scratch ----
	var modelStore, stateStore *core.CheckpointStore
	if *ckptDir != "" {
		if modelStore, err = core.NewCheckpointStore(*ckptDir, "model", core.ChainModelVersion); err != nil {
			fatal(err)
		}
		if stateStore, err = core.NewCheckpointStore(*ckptDir, "state", core.ChainStateVersion); err != nil {
			fatal(err)
		}
	}
	chain, err := loadOrTrain(srv, modelStore, *name, variant, counts, *window, *apps, *intervals, *seed, *trainWorkers)
	if err != nil {
		fatal(err)
	}
	chain.SetTier(tier)
	switch tier {
	case core.TierQuantized:
		fmt.Fprintf(os.Stderr, "hmd-serve: inference backend: tier=quantized, %d/%d chain stages quantized (%d compiled)\n",
			chain.QuantizedStages(), chain.Stages(), chain.CompiledStages())
	case core.TierInterpreted:
		fmt.Fprintf(os.Stderr, "hmd-serve: inference backend: tier=interpreted (%d stages)\n", chain.Stages())
	default:
		fmt.Fprintf(os.Stderr, "hmd-serve: inference backend: %d/%d chain stages compiled\n",
			chain.CompiledStages(), chain.Stages())
	}

	var plan *faults.Plan
	if *faultRate > 0 {
		kinds, err := faults.ParseKinds(*faultKinds)
		if err != nil {
			fatal(err)
		}
		plan = &faults.Plan{Seed: *seed, Rate: *faultRate, Kinds: kinds}
	}

	// ---- Ingest mode: network front door into the fleet engine ----
	if *ingestAddr != "" {
		runIngest(ctx, srv, chain, ingestModeConfig{
			addr:     *ingestAddr,
			window:   *ingestWindow,
			maxConns: *ingestMaxConns,
			quotas: ingest.Quotas{
				MaxStreams:    *ingestQuotaStreams,
				MaxConns:      *ingestQuotaConns,
				AdmitPerSec:   *ingestQuotaAdmit,
				SamplesPerSec: *ingestQuotaSamples,
			},
			shards:      *shards,
			interval:    *streamInterval,
			policy:      overflow,
			queueCap:    *queueCap,
			maxHarvest:  *maxHarvest,
			ckptDir:     *ckptDir,
			ckptEvery:   *ckptEvery,
			cluster:     *clusterAddr,
			nodeID:      *nodeID,
			advertise:   *advertise,
			weight:      *nodeWeight,
			heartbeat:   *heartbeatEvery,
			statesEvery: *statesEvery,
			seed:        *seed,
			tier:        tier,
		})
		return
	}

	if *clusterAddr != "" {
		fatal(errors.New("-cluster requires -ingest (only the network ingest plane clusters)"))
	}

	// ---- Fleet mode: N concurrent streams over sharded workers ----
	if *streams > 0 {
		runFleet(ctx, srv, chain, fleetConfig{
			streams:    *streams,
			shards:     *shards,
			interval:   *streamInterval,
			policy:     overflow,
			queueCap:   *queueCap,
			maxHarvest: *maxHarvest,
			ckptDir:    *ckptDir,
			ckptEvery:  *ckptEvery,
			nApps:      *nApps,
			intervals:  *monIntervals,
			loops:      *loops,
			plan:       plan,
			tier:       tier,
		})
		return
	}

	// ---- Supervised pipeline ----
	pipe, err := supervise.New(supervise.Config{
		Chain:           chain,
		QueueCap:        *queueCap,
		Policy:          overflow,
		Checkpoint:      stateStore,
		CheckpointEvery: *ckptEvery,
	})
	if err != nil {
		fatal(err)
	}
	if stateStore != nil {
		gen, quarantined, rerr := pipe.RestoreState()
		switch {
		case rerr == nil:
			fmt.Fprintf(os.Stderr, "hmd-serve: resumed chain state from checkpoint generation %d (interval %d)\n",
				gen, chain.State().Interval)
		case errors.Is(rerr, core.ErrNoCheckpoint):
			// Fresh timeline.
		default:
			fatal(rerr)
		}
		for _, q := range quarantined {
			fmt.Fprintf(os.Stderr, "hmd-serve: quarantined torn state checkpoint: %s\n", q)
		}
	}
	srv.setPipeline(pipe)

	// ---- Monitoring loop over unseen applications ----
	schedule := unseenSchedule(*nApps)
	if len(schedule) == 0 {
		fatal(errors.New("empty monitoring schedule"))
	}
	srv.setReady(true)
	fmt.Fprintf(os.Stderr, "hmd-serve: monitoring %d unseen apps x %d intervals per loop\n",
		len(schedule), *monIntervals)

	for loop := 0; *loops == 0 || loop < *loops; loop++ {
		for _, app := range schedule {
			if ctx.Err() != nil {
				finish(srv, pipe, stateStore)
				return
			}
			srv.setApp(app.Name, loop)
			src, err := supervise.NewMachineSource(supervise.MachineSourceConfig{
				Machine: micro.FastConfig(),
				Run:     app.NewRun(loop),
				Events:  chain.Events(),
				Total:   *monIntervals,
				Plan:    plan,
				Scope:   fmt.Sprintf("%s/l%d", app.Name, loop),
			})
			if err != nil {
				fatal(err)
			}
			verdicts, err := pipe.Run(ctx, src, *monIntervals)
			if err != nil {
				if errors.Is(err, context.Canceled) {
					finish(srv, pipe, stateStore)
					return
				}
				fatal(fmt.Errorf("monitoring %s: %w", app.Name, err))
			}
			logApp(app, verdicts, pipe.Stats())
		}
	}
	finish(srv, pipe, stateStore)
}

// fleetConfig carries the fleet-mode flags.
type fleetConfig struct {
	streams    int
	shards     int
	interval   time.Duration
	policy     supervise.OverflowPolicy
	queueCap   int
	maxHarvest int
	ckptDir    string
	ckptEvery  int
	nApps      int
	intervals  int
	loops      int
	plan       *faults.Plan
	tier       core.Tier
}

// runFleet serves cfg.streams concurrent monitored streams through the
// sharded fleet engine: each stream monitors one app of the unseen
// schedule (round-robin) with its own chain state, breaker and fault
// plan, while the shards batch inference across streams. With -loops 0
// the fleet runs until signalled; otherwise every stream finishes after
// loops x monitor-intervals verdicts and the engine drains.
func runFleet(ctx context.Context, srv *service, chain *core.FallbackChain, cfg fleetConfig) {
	var store *core.CheckpointStore
	var err error
	if cfg.ckptDir != "" {
		if store, err = core.NewCheckpointStore(cfg.ckptDir, "fleet", fleet.StateVersion); err != nil {
			fatal(err)
		}
	}
	eng, err := fleet.New(fleet.Config{
		Chain:           chain,
		Shards:          cfg.shards,
		Interval:        cfg.interval,
		Policy:          cfg.policy,
		PendingBatches:  cfg.queueCap,
		MaxHarvestTicks: cfg.maxHarvest,
		Checkpoint:      store,
		CheckpointEvery: cfg.ckptEvery,
		Tier:            cfg.tier,
	})
	if err != nil {
		fatal(err)
	}
	if store != nil {
		gen, quarantined, rerr := eng.RestoreState()
		switch {
		case rerr == nil:
			fmt.Fprintf(os.Stderr, "hmd-serve: resumed fleet state from checkpoint generation %d\n", gen)
		case errors.Is(rerr, core.ErrNoCheckpoint):
			// Fresh timelines for every stream.
		default:
			fatal(rerr)
		}
		for _, q := range quarantined {
			fmt.Fprintf(os.Stderr, "hmd-serve: quarantined torn fleet checkpoint: %s\n", q)
		}
	}

	schedule := unseenSchedule(cfg.nApps)
	if len(schedule) == 0 {
		fatal(errors.New("empty monitoring schedule"))
	}
	horizon := cfg.intervals * cfg.loops // 0 = stream until signalled
	for i := 0; i < cfg.streams; i++ {
		app := schedule[i%len(schedule)]
		total := horizon
		if total <= 0 {
			total = 1 << 30
		}
		src, err := supervise.NewMachineSource(supervise.MachineSourceConfig{
			Machine: micro.FastConfig(),
			Run:     app.NewRun(i),
			Events:  chain.Events(),
			Total:   total,
			Plan:    cfg.plan,
			Scope:   fmt.Sprintf("%s/s%d", app.Name, i),
		})
		if err != nil {
			fatal(err)
		}
		if err := eng.Add(fleet.StreamConfig{
			ID:        fmt.Sprintf("s%04d-%s", i, app.Name),
			Source:    src,
			Intervals: horizon,
		}); err != nil {
			fatal(err)
		}
	}

	srv.setFleet(eng)
	srv.setReady(true)
	fmt.Fprintf(os.Stderr, "hmd-serve: fleet monitoring %d streams on %d shards (interval %v, horizon %d)\n",
		cfg.streams, eng.Shards(), cfg.interval, horizon)
	err = eng.Run(ctx)
	srv.setReady(false)
	snap := eng.Stats(false)
	fmt.Fprintf(os.Stderr, "hmd-serve: fleet done: %d verdicts (%d prior-held) over %d rotations, shed=%d, checkpoints=%d (%d failed)\n",
		snap.Verdicts, snap.LostVerdicts, snap.Rotations, snap.ShedIntervals,
		snap.CheckpointsWritten, snap.CheckpointErrors)
	if err != nil && !errors.Is(err, context.Canceled) {
		fatal(err)
	}
}

// ingestModeConfig carries the ingest-mode flags.
type ingestModeConfig struct {
	addr       string
	window     int
	maxConns   int
	quotas     ingest.Quotas
	shards     int
	interval   time.Duration
	policy     supervise.OverflowPolicy
	queueCap   int
	maxHarvest int
	ckptDir    string
	ckptEvery  int

	// Cluster membership (empty cluster = standalone ingest node).
	cluster     string
	nodeID      string
	advertise   string
	weight      int
	heartbeat   time.Duration
	statesEvery int
	seed        uint64
	tier        core.Tier
}

// runIngest opens the network front door: remote clients feed samples
// over TCP into the fleet engine, which schedules and scores them like
// any other stream. The first signal starts a graceful drain (refuse
// admissions, score what is buffered, checkpoint); a second signal
// aborts it.
func runIngest(ctx context.Context, srv *service, chain *core.FallbackChain, cfg ingestModeConfig) {
	var store *core.CheckpointStore
	var err error
	if cfg.ckptDir != "" {
		if store, err = core.NewCheckpointStore(cfg.ckptDir, "fleet", fleet.StateVersion); err != nil {
			fatal(err)
		}
	}
	eng, err := fleet.New(fleet.Config{
		Chain:           chain,
		Shards:          cfg.shards,
		Interval:        cfg.interval,
		Policy:          cfg.policy,
		PendingBatches:  cfg.queueCap,
		MaxHarvestTicks: cfg.maxHarvest,
		Checkpoint:      store,
		CheckpointEvery: cfg.ckptEvery,
		Tier:            cfg.tier,
	})
	if err != nil {
		fatal(err)
	}
	if store != nil {
		gen, quarantined, rerr := eng.RestoreState()
		switch {
		case rerr == nil:
			fmt.Fprintf(os.Stderr, "hmd-serve: resumed fleet state from checkpoint generation %d\n", gen)
		case errors.Is(rerr, core.ErrNoCheckpoint):
			// Fresh timelines for every stream.
		default:
			fatal(rerr)
		}
		for _, q := range quarantined {
			fmt.Fprintf(os.Stderr, "hmd-serve: quarantined torn fleet checkpoint: %s\n", q)
		}
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fatal(fmt.Errorf("ingest listen: %w", err))
	}

	// Cluster membership: the agent joins the coordinator, renews its
	// lease, serves the placement hook (clients dialing the wrong node
	// get a REDIRECT to the owner), applies INSTALLed stream states and
	// fans captured states back in.
	var agent *cluster.Agent
	var placement func(key string) (string, bool)
	var isrv *ingest.Server
	engDone := make(chan struct{})
	if cfg.cluster != "" {
		adv := cfg.advertise
		if adv == "" {
			adv = ln.Addr().String()
		}
		id := cfg.nodeID
		if id == "" {
			id = adv
		}
		agent, err = cluster.NewAgent(cluster.AgentConfig{
			NodeID:         id,
			Coordinator:    cfg.cluster,
			Advertise:      adv,
			Weight:         cfg.weight,
			Engine:         eng,
			HeartbeatEvery: cfg.heartbeat,
			StatesEvery:    cfg.statesEvery,
			Stats: func() ingest.NodeStats {
				if isrv == nil {
					return ingest.NodeStats{}
				}
				return isrv.NodeStatsSnapshot()
			},
			OnDrain:    func() { isrv.Drain("cluster drain") },
			EngineDone: engDone,
			Seed:       cfg.seed,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "hmd-serve: "+format+"\n", args...)
			},
		})
		if err != nil {
			fatal(err)
		}
		placement = agent.Placement
	}

	isrv, err = ingest.NewServer(ingest.Config{
		Engine:    eng,
		Width:     len(chain.Events()),
		Window:    cfg.window,
		MaxConns:  cfg.maxConns,
		Quotas:    cfg.quotas,
		Placement: placement,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hmd-serve: ingest: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
	go func() {
		if serr := isrv.Serve(ln); serr != nil && !errors.Is(serr, ingest.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "hmd-serve: ingest serve: %v\n", serr)
		}
	}()

	// The membership loop runs detached from the signal context too: a
	// draining agent must keep heartbeating until the final fan-in.
	var agentErr chan error
	agentCtx, agentCancel := context.WithCancel(context.Background())
	defer agentCancel()
	if agent != nil {
		agentErr = make(chan error, 1)
		go func() { agentErr <- agent.Run(agentCtx) }()
	}

	srv.setFleet(eng)
	srv.setIngest(isrv)
	srv.setAgent(agent)
	srv.setReady(true)
	if agent != nil {
		fmt.Fprintf(os.Stderr, "hmd-serve: ingest plane listening on %s (width %d, window %d, interval %v), joining cluster at %s\n",
			ln.Addr(), len(chain.Events()), cfg.window, cfg.interval, cfg.cluster)
	} else {
		fmt.Fprintf(os.Stderr, "hmd-serve: ingest plane listening on %s (width %d, window %d, interval %v)\n",
			ln.Addr(), len(chain.Events()), cfg.window, cfg.interval)
	}

	// The engine runs detached from the signal context: the first signal
	// must drain, not cancel. Only a second signal cancels outright.
	engCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-ctx.Done():
		case <-engCtx.Done():
			return
		}
		fmt.Fprintln(os.Stderr, "hmd-serve: signal received; draining ingest plane")
		if agent != nil {
			// Same handshake as a coordinator-commanded drain: the
			// lease turns draining and the final states are fanned in
			// before BYE, so the survivors inherit the timelines.
			agent.Drain()
		} else {
			isrv.Drain("signal")
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		select {
		case <-sig:
			fmt.Fprintln(os.Stderr, "hmd-serve: second signal; aborting drain")
			cancel()
		case <-engCtx.Done():
		}
	}()

	err = eng.Run(engCtx)
	close(engDone)
	srv.setReady(false)
	if errors.Is(err, context.Canceled) {
		// Aborted drain: the engine stopped mid-flight. Persist whatever
		// chain state it holds so the next process resumes these
		// timelines instead of restarting them, and name what was
		// abandoned so the operator knows the drain was cut short.
		if store != nil {
			if serr := eng.SaveState(); serr != nil {
				fmt.Fprintf(os.Stderr, "hmd-serve: abort checkpoint failed: %v\n", serr)
			} else {
				fmt.Fprintln(os.Stderr, "hmd-serve: abort checkpoint written; resume with the same -checkpoint dir")
			}
		}
		if left := eng.Unfinished(); len(left) > 0 {
			fmt.Fprintf(os.Stderr, "hmd-serve: %d streams abandoned mid-drain: %s\n",
				len(left), strings.Join(left, ", "))
		}
	}
	if agent != nil {
		// Give a draining agent time to ship its final states and say
		// BYE; an aborted or idle agent is simply cancelled.
		select {
		case aerr := <-agentErr:
			if aerr != nil && !errors.Is(aerr, context.Canceled) {
				fmt.Fprintf(os.Stderr, "hmd-serve: cluster agent: %v\n", aerr)
			}
		case <-time.After(5 * time.Second):
			fmt.Fprintln(os.Stderr, "hmd-serve: cluster agent did not finish its fan-in; cancelling")
		}
		agentCancel()
	}
	snap := eng.Stats(false)
	ist := isrv.StatsSnapshot(false)
	if cerr := isrv.Close(); cerr != nil {
		fmt.Fprintf(os.Stderr, "hmd-serve: ingest close: %v\n", cerr)
	}
	fmt.Fprintf(os.Stderr, "hmd-serve: ingest done: %d samples accepted (%d shed, %d dup), %d verdicts (%d undelivered), %d admissions, %d reattaches, checkpoints=%d (%d failed)\n",
		ist.SamplesAccepted, ist.SamplesShed, ist.SamplesDup, ist.Verdicts, ist.VerdictsUndelivered,
		ist.Admissions, ist.Reattaches, snap.CheckpointsWritten, snap.CheckpointErrors)
	if err != nil && !errors.Is(err, context.Canceled) {
		fatal(err)
	}
}

// runCoordinator serves the cluster control plane: members join and
// renew leases here, stream ownership is placed by consistent hashing,
// silent nodes are expired and their streams failed over. Coordinator
// processes run no inference; /stats exposes membership and handoffs.
func runCoordinator(ctx context.Context, srv *service, addr string, ttl time.Duration) {
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		LeaseTTL: ttl,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hmd-serve: "+format+"\n", args...)
		},
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(fmt.Errorf("coordinator listen: %w", err))
	}
	go func() {
		if serr := coord.Serve(ln); serr != nil {
			fmt.Fprintf(os.Stderr, "hmd-serve: coordinator serve: %v\n", serr)
		}
	}()
	srv.setCoordinator(coord)
	srv.setReady(true)
	fmt.Fprintf(os.Stderr, "hmd-serve: cluster coordinator on %s (lease TTL %v)\n", ln.Addr(), ttl)
	<-ctx.Done()
	srv.setReady(false)
	st := coord.Stats()
	coord.Close()
	fmt.Fprintf(os.Stderr, "hmd-serve: coordinator done: %d joins, %d lease expiries, %d leaves, %d handoffs, %d states stored\n",
		st.Joins, st.LeaseExpiries, st.Leaves, st.Handoffs, st.StatesStored)
}

// finish persists the chain state once more so the next process resumes
// exactly where this one stopped.
func finish(srv *service, pipe *supervise.Pipeline, stateStore *core.CheckpointStore) {
	srv.setReady(false)
	if stateStore != nil {
		if err := pipe.SaveState(); err != nil {
			fmt.Fprintf(os.Stderr, "hmd-serve: final state checkpoint failed: %v\n", err)
		}
	}
	st := pipe.Stats()
	fmt.Fprintf(os.Stderr, "hmd-serve: done: %d verdicts (%d prior-held), %d source failures, breaker trips=%d, restarts=%d, checkpoints=%d\n",
		st.Verdicts, st.LostVerdicts, st.SourceFailures, st.Breaker.Trips,
		st.Collector.Restarts+st.Reducer.Restarts+st.Inferrer.Restarts, st.CheckpointsWritten)
}

// loadOrTrain reloads the trained chain from the model checkpoint, or
// trains it from a fresh collection pass (exposing live collection
// progress through the service) and checkpoints the result.
func loadOrTrain(srv *service, store *core.CheckpointStore, name string, variant zoo.Variant,
	counts []int, window, apps, intervals int, seed uint64, workers int) (*core.FallbackChain, error) {
	if store != nil {
		var chain *core.FallbackChain
		gen, quarantined, err := store.Recover(func(payload []byte) error {
			c, cerr := core.LoadChain(bytes.NewReader(payload))
			if cerr != nil {
				return cerr
			}
			chain = c
			return nil
		})
		for _, q := range quarantined {
			fmt.Fprintf(os.Stderr, "hmd-serve: quarantined torn model checkpoint: %s\n", q)
		}
		if err == nil {
			fmt.Fprintf(os.Stderr, "hmd-serve: loaded trained chain from checkpoint generation %d\n", gen)
			return chain, nil
		}
		if !errors.Is(err, core.ErrNoCheckpoint) {
			return nil, err
		}
	}

	fmt.Fprintln(os.Stderr, "hmd-serve: no model checkpoint; collecting corpus and training...")
	cfg := collect.Default()
	cfg.Suite.AppsPerFamily = apps
	cfg.Intervals = intervals
	cfg.Live = srv.live
	start := time.Now()
	res, err := collect.Collect(cfg)
	if err != nil {
		return nil, fmt.Errorf("collecting corpus: %w", err)
	}
	b, err := core.NewBuilder(res.Data, 0.7, seed)
	if err != nil {
		return nil, fmt.Errorf("splitting corpus: %w", err)
	}
	b.Workers = workers
	chain, err := b.BuildChain(name, variant, counts, core.ChainConfig{Window: window})
	if err != nil {
		return nil, fmt.Errorf("training chain: %w", err)
	}
	fmt.Fprintf(os.Stderr, "hmd-serve: trained %v chain in %v\n", counts, time.Since(start).Round(time.Millisecond))
	if store != nil {
		if err := store.Save(func(w io.Writer) error { return core.SaveChain(w, chain) }); err != nil {
			return nil, fmt.Errorf("checkpointing model: %w", err)
		}
	}
	return chain, nil
}

func unseenSchedule(n int) []workload.App {
	unseen := workload.Suite(workload.SuiteConfig{Seed: 0xBEEF, AppsPerFamily: 1})
	benign, malware := workload.Split(unseen)
	var schedule []workload.App
	for i := 0; i < n; i++ {
		if i%2 == 0 && i/2 < len(benign) {
			schedule = append(schedule, benign[i/2])
		} else if i/2 < len(malware) {
			schedule = append(schedule, malware[i/2])
		}
	}
	return schedule
}

func logApp(app workload.App, verdicts []core.Verdict, st supervise.Snapshot) {
	flags := 0
	for _, v := range verdicts {
		if v.Malware {
			flags++
		}
	}
	verdict := "BENIGN "
	if len(verdicts) > 0 && flags > len(verdicts)/3 {
		verdict = "MALWARE"
	}
	fmt.Printf("%-22s truth=%-8s verdict=%s  intervals=%d held=%d breaker=%s\n",
		app.Name, app.Class, verdict, len(verdicts), st.LostVerdicts, st.Breaker.State)
}

func parseCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -counts entry %q", part)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, errors.New("-counts must list at least one HPC budget")
	}
	return counts, nil
}

// service is the HTTP-observable state of the process. All fields are
// mutex-guarded; the HTTP handlers only ever read snapshots, so scraping
// never perturbs the pipeline.
type service struct {
	mu      sync.Mutex
	ready   bool
	app     string
	loop    int
	pipe    *supervise.Pipeline
	fleet   *fleet.Engine
	ingest  *ingest.Server
	ingestH http.Handler
	coord   *cluster.Coordinator
	agent   *cluster.Agent
	live    *collect.LiveReport
}

func newService() *service {
	return &service{live: &collect.LiveReport{}}
}

func (s *service) setReady(v bool) { s.mu.Lock(); s.ready = v; s.mu.Unlock() }

func (s *service) setApp(name string, loop int) {
	s.mu.Lock()
	s.app, s.loop = name, loop
	s.mu.Unlock()
}

func (s *service) setPipeline(p *supervise.Pipeline) {
	s.mu.Lock()
	s.pipe = p
	s.mu.Unlock()
}

func (s *service) setFleet(e *fleet.Engine) {
	s.mu.Lock()
	s.fleet = e
	s.mu.Unlock()
}

func (s *service) setIngest(is *ingest.Server) {
	s.mu.Lock()
	s.ingest, s.ingestH = is, is.Handler()
	s.mu.Unlock()
}

func (s *service) getIngest() (*ingest.Server, http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingest, s.ingestH
}

func (s *service) setCoordinator(c *cluster.Coordinator) {
	s.mu.Lock()
	s.coord = c
	s.mu.Unlock()
}

func (s *service) setAgent(a *cluster.Agent) {
	s.mu.Lock()
	s.agent = a
	s.mu.Unlock()
}

// statsPayload is the /stats JSON document.
type statsPayload struct {
	Phase string `json:"phase"` // "starting", "training", "serving", "draining"
	App   string `json:"app,omitempty"`
	Loop  int    `json:"loop"`

	// Collection progress (meaningful while training).
	CollectedApps    int             `json:"collected_apps"`
	CollectionReport *collect.Report `json:"collection,omitempty"`

	// Supervised-pipeline counters (present once the pipeline exists).
	Pipeline *supervise.Snapshot `json:"pipeline,omitempty"`

	// Fleet counters (fleet mode): aggregate totals, per-shard
	// throughput/latency, and — unless suppressed — per-stream detail.
	Fleet *fleet.Snapshot `json:"fleet,omitempty"`

	// Ingest-plane counters (ingest mode): admissions, quota
	// rejections, evictions, wire errors, sample/verdict accounting.
	Ingest *ingest.Stats `json:"ingest,omitempty"`

	// Cluster control plane (coordinator mode): lease table, placement
	// and the handoff audit trail.
	Coordinator *coordinatorPayload `json:"coordinator,omitempty"`

	// Cluster membership counters (cluster ingest mode).
	ClusterAgent *cluster.AgentStats `json:"cluster_agent,omitempty"`
}

// coordinatorPayload is the coordinator-mode slice of /stats.
type coordinatorPayload struct {
	Stats    cluster.CoordinatorStats `json:"stats"`
	Members  []cluster.MemberStatus   `json:"members"`
	Handoffs []cluster.Handoff        `json:"handoffs,omitempty"`
}

func (s *service) stats(perStream bool, offset, limit int) statsPayload {
	s.mu.Lock()
	ready, app, loop, pipe, eng, ing := s.ready, s.app, s.loop, s.pipe, s.fleet, s.ingest
	coord, agent := s.coord, s.agent
	s.mu.Unlock()

	rep, apps := s.live.Snapshot()
	payload := statsPayload{
		Phase:         "starting",
		App:           app,
		Loop:          loop,
		CollectedApps: apps,
	}
	if apps > 0 {
		payload.Phase = "training"
		payload.CollectionReport = &rep
	}
	if pipe != nil {
		snap := pipe.Stats()
		payload.Pipeline = &snap
	}
	if eng != nil {
		var snap fleet.Snapshot
		if perStream {
			snap = eng.StatsPage(offset, limit)
		} else {
			snap = eng.Stats(false)
		}
		payload.Fleet = &snap
	}
	if ing != nil {
		snap := ing.StatsSnapshot(perStream)
		payload.Ingest = &snap
	}
	if coord != nil {
		payload.Coordinator = &coordinatorPayload{
			Stats:    coord.Stats(),
			Members:  coord.Members(),
			Handoffs: coord.Handoffs(),
		}
	}
	if agent != nil {
		snap := agent.Stats()
		payload.ClusterAgent = &snap
	}
	if ready {
		payload.Phase = "serving"
	}
	if ing != nil && ing.Draining() {
		payload.Phase = "draining"
	}
	return payload
}

// serveHTTP starts the observation endpoints and returns a shutdown
// function. With pprofOn the Go profiling handlers mount under
// /debug/pprof — off by default, because profiling endpoints on a
// monitoring port are an operational decision, not a given.
func (s *service) serveHTTP(addr string, pprofOn bool) func() {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		ready, ing := s.ready, s.ingest
		s.mu.Unlock()
		// A draining ingest plane is alive but must stop receiving
		// traffic: load balancers read the 503 and route elsewhere while
		// buffered work finishes.
		if ing != nil && ing.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if !ready {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/drainz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		ing, _ := s.getIngest()
		if ing == nil {
			http.Error(w, "no ingest plane", http.StatusNotFound)
			return
		}
		ing.Drain("operator /drainz")
		fmt.Fprintln(w, "draining")
	})
	mux.HandleFunc("/ingest/", func(w http.ResponseWriter, r *http.Request) {
		_, h := s.getIngest()
		if h == nil {
			http.Error(w, "no ingest plane", http.StatusNotFound)
			return
		}
		h.ServeHTTP(w, r)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		// The per-stream section is opt-in and paginated: a fleet at
		// density has thousands of streams, and dumping them all per
		// scrape is exactly the kind of O(streams) control-plane cost
		// the engine keeps off its hot path.
		q := r.URL.Query()
		perStream := q.Get("streams") != "" && q.Get("streams") != "0"
		offset, limit := 0, 256
		if v := q.Get("offset"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "offset must be a non-negative integer", http.StatusBadRequest)
				return
			}
			offset = n
		}
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "limit must be an integer (-1 = all)", http.StatusBadRequest)
				return
			}
			limit = n
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.stats(perStream, offset, limit)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Addr: addr, Handler: mux}
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "hmd-serve: http: %v\n", err)
		}
	}()
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hmd-serve:", err)
	os.Exit(1)
}
