// Command hmd-train trains one malware detector — a base classifier
// (BayesNet, J48, JRip, MLP, OneR, REPTree, SGD, SMO), optionally
// wrapped in AdaBoost or Bagging — on an HPC dataset, evaluates it on
// the held-out application split, and reports the paper's metrics plus
// the hardware implementation cost.
//
// Usage:
//
//	hmd-train [-data dataset.arff] -classifier J48 [-variant general|boosted|bagging] [-hpcs 4]
//
// Without -data, a fresh corpus is collected first.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hls"
	"repro/internal/mlearn/zoo"
)

func main() {
	dataPath := flag.String("data", "", "dataset file (.arff or .csv); empty = collect a fresh corpus")
	name := flag.String("classifier", "J48", "base classifier: "+strings.Join(zoo.Names(), ", "))
	variantName := flag.String("variant", "general", "learning scheme: general, boosted, bagging")
	hpcs := flag.Int("hpcs", 4, "number of HPC features (2, 4, 8 or 16)")
	iterations := flag.Int("iterations", 10, "ensemble iterations")
	seed := flag.Uint64("seed", 1, "split/training seed")
	flag.Parse()

	variant, err := parseVariant(*variantName)
	if err != nil {
		fatal(err)
	}

	data, err := loadData(*dataPath)
	if err != nil {
		fatal(fmt.Errorf("loading dataset: %w", err))
	}

	b, err := core.NewBuilder(data, 0.7, *seed)
	if err != nil {
		fatal(fmt.Errorf("splitting dataset: %w", err))
	}
	b.Iterations = *iterations

	det, err := b.Build(*name, variant, *hpcs)
	if err != nil {
		fatal(fmt.Errorf("training %s/%s with %d HPCs: %w", *name, variant, *hpcs, err))
	}
	res, err := b.Evaluate(det)
	if err != nil {
		fatal(fmt.Errorf("evaluating %s: %w", det.Name(), err))
	}

	fmt.Printf("detector:    %s\n", det.Name())
	fmt.Printf("HPC events:  ")
	for i, ev := range det.Events {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(ev)
	}
	fmt.Println()
	fmt.Printf("run-time capable: %v (PMU has 4 counter registers)\n", det.RunTimeCapable())
	fmt.Printf("accuracy:    %.2f%%\n", res.Accuracy*100)
	fmt.Printf("AUC:         %.3f\n", res.AUC)
	fmt.Printf("ACC*AUC:     %.2f%%\n", res.Performance()*100)

	design, err := hls.Compile(det.Model, det.Name())
	if err != nil {
		fatal(fmt.Errorf("compiling %s to hardware: %w", det.Name(), err))
	}
	fmt.Printf("hardware:    %d cycles @10ns, %.1f%% of OpenSPARC core area\n",
		design.Latency, design.AreaPercent())
}

func parseVariant(s string) (zoo.Variant, error) {
	switch strings.ToLower(s) {
	case "general":
		return zoo.General, nil
	case "boosted", "adaboost":
		return zoo.Boosted, nil
	case "bagging", "bagged":
		return zoo.Bagged, nil
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}

func loadData(path string) (*dataset.Instances, error) {
	if path == "" {
		fmt.Fprintln(os.Stderr, "no -data given; collecting a fresh corpus...")
		res, err := collect.Collect(collect.Default())
		if err != nil {
			return nil, err
		}
		return res.Data, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening %s: %w", path, err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return dataset.ReadCSV(f, dataset.BinaryClassNames())
	}
	return dataset.ReadARFF(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hmd-train:", err)
	os.Exit(1)
}
