// Command hmd-export trains a detector and exports deployment
// artefacts: a serialized detector (.hmd, loadable with
// core.LoadDetector) and — for the model families a combinational
// integer datapath can express — synthesizable Verilog emitted from the
// verified netlist, plus the hardware cost report.
//
// Usage:
//
//	hmd-export -classifier REPTree -variant boosted -hpcs 2 -out detector
//
// writes detector.hmd and detector.v.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hls"
	"repro/internal/mlearn/zoo"
)

func main() {
	dataPath := flag.String("data", "", "dataset file (.arff/.csv); empty = collect a fresh corpus")
	name := flag.String("classifier", "REPTree", "base classifier")
	variantName := flag.String("variant", "boosted", "general, boosted or bagging")
	hpcs := flag.Int("hpcs", 2, "number of HPC features")
	out := flag.String("out", "detector", "output file prefix")
	seed := flag.Uint64("seed", 1, "split/training seed")
	flag.Parse()

	variant := zoo.General
	switch strings.ToLower(*variantName) {
	case "boosted":
		variant = zoo.Boosted
	case "bagging":
		variant = zoo.Bagged
	}

	data, err := loadData(*dataPath)
	if err != nil {
		fatal(fmt.Errorf("loading dataset: %w", err))
	}
	b, err := core.NewBuilder(data, 0.7, *seed)
	if err != nil {
		fatal(fmt.Errorf("splitting dataset: %w", err))
	}
	det, err := b.Build(*name, variant, *hpcs)
	if err != nil {
		fatal(fmt.Errorf("training %s/%s with %d HPCs: %w", *name, variant, *hpcs, err))
	}
	res, err := b.Evaluate(det)
	if err != nil {
		fatal(fmt.Errorf("evaluating %s: %w", det.Name(), err))
	}
	fmt.Printf("trained %s: accuracy %.1f%%, AUC %.3f\n", det.Name(), res.Accuracy*100, res.AUC)

	// 1. Serialized detector.
	gobPath := *out + ".hmd"
	f, err := os.Create(gobPath)
	if err != nil {
		fatal(fmt.Errorf("creating %s: %w", gobPath, err))
	}
	if err := core.SaveDetector(f, det); err != nil {
		fatal(fmt.Errorf("serializing %s to %s: %w", det.Name(), gobPath, err))
	}
	if err := f.Close(); err != nil {
		fatal(fmt.Errorf("closing %s: %w", gobPath, err))
	}
	fmt.Printf("wrote %s (load with core.LoadDetector)\n", gobPath)

	// 2. Hardware cost report.
	design, err := hls.Compile(det.Model, det.Name())
	if err != nil {
		fatal(fmt.Errorf("compiling %s to hardware: %w", det.Name(), err))
	}
	fmt.Printf("hardware: %s\n", design)

	// 3. Verilog, when the model family lowers to a combinational
	//    netlist (trees, rules, OneR, linear models, and their
	//    ensembles).
	nl, err := hls.BuildNetlist(det.Model, det.Name(), det.HPCs())
	if err != nil {
		fmt.Printf("verilog: skipped (%v)\n", err)
		return
	}
	vPath := *out + ".v"
	if err := os.WriteFile(vPath, []byte(nl.Verilog()), 0o644); err != nil {
		fatal(fmt.Errorf("writing %s: %w", vPath, err))
	}
	fmt.Printf("wrote %s (%d netlist nodes; inputs, in order:", vPath, len(nl.Nodes))
	for i, ev := range det.Events {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Printf(" hpc%d=%s", i, ev)
	}
	fmt.Println(")")
}

func loadData(path string) (*dataset.Instances, error) {
	if path == "" {
		fmt.Fprintln(os.Stderr, "no -data given; collecting a fresh corpus...")
		res, err := collect.Collect(collect.Default())
		if err != nil {
			return nil, err
		}
		return res.Data, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening %s: %w", path, err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return dataset.ReadCSV(f, dataset.BinaryClassNames())
	}
	return dataset.ReadARFF(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hmd-export:", err)
	os.Exit(1)
}
