// Command hmd-detect demonstrates run-time detection end to end: it
// trains a detector that fits the 4-register PMU, then monitors a
// schedule of previously unseen applications (drawn from a different
// suite seed than training), printing the per-interval verdict stream
// and a summary of flags per application.
//
// Usage:
//
//	hmd-detect [-classifier REPTree] [-variant boosted] [-hpcs 2] [-window 5] [-apps 6]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/micro"
	"repro/internal/mlearn/zoo"
	"repro/internal/workload"
)

func main() {
	name := flag.String("classifier", "REPTree", "base classifier")
	variantName := flag.String("variant", "boosted", "general, boosted or bagging")
	hpcs := flag.Int("hpcs", 2, "HPC features (must be <= 4 for run-time use)")
	window := flag.Int("window", 5, "sliding verdict window (samples)")
	nApps := flag.Int("apps", 6, "unseen applications to monitor")
	intervals := flag.Int("intervals", 24, "sampling intervals per monitored app")
	seed := flag.Uint64("seed", 1, "training seed")
	flag.Parse()

	variant := zoo.General
	switch strings.ToLower(*variantName) {
	case "boosted":
		variant = zoo.Boosted
	case "bagging":
		variant = zoo.Bagged
	}

	fmt.Fprintln(os.Stderr, "collecting training corpus and fitting the detector...")
	res, err := collect.Collect(collect.Default())
	if err != nil {
		fatal(err)
	}
	b, err := core.NewBuilder(res.Data, 0.7, *seed)
	if err != nil {
		fatal(err)
	}
	det, err := b.Build(*name, variant, *hpcs)
	if err != nil {
		fatal(err)
	}
	ev, err := b.Evaluate(det)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("detector %s: accuracy %.1f%%, AUC %.3f (held-out apps)\n",
		det.Name(), ev.Accuracy*100, ev.AUC)

	mon, err := core.NewMonitor(det, *window, 0.5)
	if err != nil {
		fatal(err)
	}

	// Unseen applications: a different suite seed than the training
	// corpus, alternating benign/malware.
	unseen := workload.Suite(workload.SuiteConfig{Seed: 0xBEEF, AppsPerFamily: 1})
	benign, malware := workload.Split(unseen)
	var schedule []workload.App
	for i := 0; i < *nApps; i++ {
		if i%2 == 0 && i/2 < len(benign) {
			schedule = append(schedule, benign[i/2])
		} else if i/2 < len(malware) {
			schedule = append(schedule, malware[i/2])
		}
	}

	fmt.Printf("\nmonitoring %d unseen applications (%d x 10ms intervals each):\n\n", len(schedule), *intervals)
	correct := 0
	for _, app := range schedule {
		run := app.NewRun(0)
		mach := micro.NewMachine(micro.DefaultConfig(), run.MachineSeed())
		mon.Reset()
		verdicts, err := mon.Watch(mach, run, *intervals, 0)
		if err != nil {
			fatal(err)
		}
		flags := 0
		var timeline strings.Builder
		for _, v := range verdicts {
			if v.Malware {
				flags++
				timeline.WriteByte('!')
			} else {
				timeline.WriteByte('.')
			}
		}
		flagged := flags > len(verdicts)/3
		verdict := "BENIGN "
		if flagged {
			verdict = "MALWARE"
		}
		truth := app.Class.String()
		hit := (flagged && app.Class == workload.Malware) || (!flagged && app.Class == workload.Benign)
		if hit {
			correct++
		}
		fmt.Printf("  %-22s truth=%-8s verdict=%s  [%s]\n", app.Name, truth, verdict, timeline.String())
	}
	fmt.Printf("\n%d/%d applications classified correctly at run time\n", correct, len(schedule))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hmd-detect:", err)
	os.Exit(1)
}
