// Command hmd-detect demonstrates run-time detection end to end: it
// trains a detector that fits the 4-register PMU, then monitors a
// schedule of previously unseen applications (drawn from a different
// suite seed than training), printing the per-interval verdict stream
// and a summary of flags per application.
//
// With -faults > 0 the demo runs degraded: a seeded fault plan injects
// dropped samples, stuck/zeroed counters, multiplexing noise,
// saturation, interval jitter and run crashes into the monitoring
// stream, and detection switches to a graceful-degradation chain
// (4-HPC → 2-HPC → majority-prior) that steps down when counters go
// bad. Timeline legend: '!' malware verdict, '.' benign verdict, '_'
// verdict over a lost sample, '#' run crashed.
//
// Usage:
//
//	hmd-detect [-classifier REPTree] [-variant boosted] [-hpcs 2] [-window 5] [-apps 6]
//	           [-faults 0.2] [-fault-kinds drop,stuck,crash]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/micro"
	"repro/internal/mlearn/zoo"
	"repro/internal/perf"
	"repro/internal/workload"
)

func main() {
	name := flag.String("classifier", "REPTree", "base classifier")
	variantName := flag.String("variant", "boosted", "general, boosted or bagging")
	hpcs := flag.Int("hpcs", 2, "HPC features (must be <= 4 for run-time use)")
	window := flag.Int("window", 5, "sliding verdict window (samples)")
	nApps := flag.Int("apps", 6, "unseen applications to monitor")
	intervals := flag.Int("intervals", 24, "sampling intervals per monitored app")
	seed := flag.Uint64("seed", 1, "training seed")
	faultRate := flag.Float64("faults", 0, "fault-injection rate (0 = clean monitoring)")
	faultKinds := flag.String("fault-kinds", "all", "comma-separated fault kinds: drop,stuck,zero,noise,saturate,jitter,crash (or all)")
	flag.Parse()

	variant := zoo.General
	switch strings.ToLower(*variantName) {
	case "boosted":
		variant = zoo.Boosted
	case "bagging":
		variant = zoo.Bagged
	}

	fmt.Fprintln(os.Stderr, "collecting training corpus and fitting the detector...")
	res, err := collect.Collect(collect.Default())
	if err != nil {
		fatal(fmt.Errorf("collecting training corpus: %w", err))
	}
	b, err := core.NewBuilder(res.Data, 0.7, *seed)
	if err != nil {
		fatal(fmt.Errorf("splitting corpus: %w", err))
	}

	// Unseen applications: a different suite seed than the training
	// corpus, alternating benign/malware.
	unseen := workload.Suite(workload.SuiteConfig{Seed: 0xBEEF, AppsPerFamily: 1})
	benign, malware := workload.Split(unseen)
	var schedule []workload.App
	for i := 0; i < *nApps; i++ {
		if i%2 == 0 && i/2 < len(benign) {
			schedule = append(schedule, benign[i/2])
		} else if i/2 < len(malware) {
			schedule = append(schedule, malware[i/2])
		}
	}

	if *faultRate > 0 {
		kinds, err := faults.ParseKinds(*faultKinds)
		if err != nil {
			fatal(err)
		}
		plan := faults.Plan{Seed: *seed, Rate: *faultRate, Kinds: kinds}
		monitorDegraded(b, *name, variant, *hpcs, *window, *intervals, plan, schedule)
		return
	}

	det, err := b.Build(*name, variant, *hpcs)
	if err != nil {
		fatal(fmt.Errorf("training %s: %w", *name, err))
	}
	ev, err := b.Evaluate(det)
	if err != nil {
		fatal(fmt.Errorf("evaluating %s: %w", det.Name(), err))
	}
	fmt.Printf("detector %s: accuracy %.1f%%, AUC %.3f (held-out apps)\n",
		det.Name(), ev.Accuracy*100, ev.AUC)

	mon, err := core.NewMonitor(det, *window, 0.5)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\nmonitoring %d unseen applications (%d x 10ms intervals each):\n\n", len(schedule), *intervals)
	correct := 0
	for _, app := range schedule {
		run := app.NewRun(0)
		mach := micro.NewMachine(micro.DefaultConfig(), run.MachineSeed())
		mon.Reset()
		verdicts, err := mon.Watch(mach, run, *intervals, 0)
		if err != nil {
			fatal(fmt.Errorf("monitoring %s: %w", app.Name, err))
		}
		var timeline strings.Builder
		flags := 0
		for _, v := range verdicts {
			if v.Malware {
				flags++
				timeline.WriteByte('!')
			} else {
				timeline.WriteByte('.')
			}
		}
		if scoreApp(app, flags, len(verdicts), timeline.String(), "") {
			correct++
		}
	}
	fmt.Printf("\n%d/%d applications classified correctly at run time\n", correct, len(schedule))
}

// monitorDegraded runs the fault-injected demo: sampling goes through
// the injector and verdicts come from a FallbackChain that steps down
// as counters die.
func monitorDegraded(b *core.Builder, name string, variant zoo.Variant, hpcs, window, intervals int, plan faults.Plan, schedule []workload.App) {
	// Chain stages: the requested budget first, stepping down to 2
	// HPCs, with the training prior as the terminal stage.
	counts := []int{hpcs}
	if hpcs > 2 {
		counts = append(counts, 2)
	}
	chain, err := b.BuildChain(name, variant, counts, core.ChainConfig{Window: window})
	if err != nil {
		fatal(fmt.Errorf("building fallback chain: %w", err))
	}
	group, err := perf.NewGroup(chain.Events()...)
	if err != nil {
		fatal(err)
	}
	stageNames := make([]string, 0, chain.Stages()+1)
	for i := 0; i <= chain.Stages(); i++ {
		stageNames = append(stageNames, chain.StageName(i))
	}
	fmt.Printf("degraded-mode monitoring: fault rate %.2f, chain %s\n",
		plan.Rate, strings.Join(stageNames, " -> "))
	fmt.Printf("\nmonitoring %d unseen applications (%d x 10ms intervals each):\n\n", len(schedule), intervals)

	correct := 0
	for _, app := range schedule {
		inj := plan.ForRun(app.Name)
		chain.Reset()

		var timeline strings.Builder
		flags, scored := 0, 0
		if inj.BootFails() {
			timeline.WriteByte('#')
		} else {
			run := app.NewRun(0)
			mach := micro.NewMachine(micro.DefaultConfig(), run.MachineSeed())
			samples, serr := perf.SampleRunInjected(mach, run, group, intervals, 0, inj)
			byInterval := map[int][]uint64{}
			last := -1
			for _, s := range samples {
				byInterval[s.Interval] = s.Values
				if s.Interval > last {
					last = s.Interval
				}
			}
			end := intervals
			if serr != nil {
				end = last + 1 // the run died after its last surviving sample
			}
			for i := 0; i < end; i++ {
				var v core.Verdict
				if vals, ok := byInterval[i]; ok {
					v, err = chain.Observe(vals)
					if err != nil {
						fatal(fmt.Errorf("monitoring %s interval %d: %w", app.Name, i, err))
					}
					if v.Malware {
						timeline.WriteByte('!')
					} else {
						timeline.WriteByte('.')
					}
				} else {
					v = chain.ObserveLost()
					timeline.WriteByte('_')
				}
				scored++
				if v.Malware {
					flags++
				}
			}
			if serr != nil {
				timeline.WriteByte('#')
			}
		}

		note := ""
		if trs := chain.Transitions(); len(trs) > 0 {
			parts := make([]string, len(trs))
			for i, tr := range trs {
				parts[i] = fmt.Sprintf("%s->%s@%d", chain.StageName(tr.From), chain.StageName(tr.To), tr.Interval)
			}
			note = " degraded: " + strings.Join(parts, ", ")
		}
		if scoreApp(app, flags, scored, timeline.String(), note) {
			correct++
		}
	}
	fmt.Printf("\n%d/%d applications classified correctly under fault injection\n", correct, len(schedule))
}

// scoreApp prints one application's verdict line and reports whether
// the windowed decision matched the ground truth. Apps whose run
// produced no verdicts at all (boot crash) count as misses.
func scoreApp(app workload.App, flags, total int, timeline, note string) bool {
	flagged := total > 0 && flags > total/3
	verdict := "BENIGN "
	if flagged {
		verdict = "MALWARE"
	}
	if total == 0 {
		verdict = "NO DATA"
	}
	hit := total > 0 &&
		((flagged && app.Class == workload.Malware) || (!flagged && app.Class == workload.Benign))
	fmt.Printf("  %-22s truth=%-8s verdict=%s  [%s]%s\n", app.Name, app.Class, verdict, timeline, note)
	return hit
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hmd-detect:", err)
	os.Exit(1)
}
