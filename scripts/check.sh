#!/bin/sh
# Tier-1 checks: everything must pass before a change lands.
# The race-detector pass covers the packages with real concurrency
# (parallel collection, the supervised pipeline, chain checkpointing)
# and the fault-injection layer feeding them.
set -ex

go build ./...
go vet ./...
go test ./...
go test -race ./internal/collect ./internal/faults
go test -race ./internal/supervise ./internal/core
go test -race ./internal/eval ./internal/mlearn/ensemble
go test -race ./internal/fleet
go test -run TestChaos -short ./internal/experiments
# Throughput-engine smoke: the Inference benches must report
# 0 allocs/op on the chain and batcher paths (gated hard by the
# ZeroAlloc tests; this prints the numbers for the log).
go test -bench=BenchmarkInference -benchmem -benchtime=10x -run @ .
# Fleet-engine smoke: the scaling sweep at reduced corpus and stream
# counts — exercises the sharded engine, the per-pipeline baseline and
# the lossless-verdict assertion end to end.
go run ./cmd/hmd-bench -exp fleet -apps 2 -intervals 8 \
  -fleetstreams 8,32 -fleetintervals 50 -fleetout /tmp/check-fleet.json
