#!/bin/sh
# Tier-1 checks: everything must pass before a change lands.
# The race-detector pass covers the packages with real concurrency
# (parallel collection, the supervised pipeline, chain checkpointing)
# and the fault-injection layer feeding them.
set -ex

go build ./...
go vet ./...
go test ./...
go test -race ./internal/collect ./internal/faults
go test -race ./internal/supervise ./internal/core
go test -race ./internal/eval ./internal/mlearn/ensemble
go test -race ./internal/fleet
go test -run TestChaos -short ./internal/experiments
# Compiled-equivalence gate: every compiled kernel must produce
# bit-identical verdicts to its interpreted model (unit equivalence in
# compiled, chain/checkpoint/replicator equivalence in core), under the
# race detector so shared-Program scoring is exercised concurrently.
go test -race ./internal/mlearn/compiled ./internal/core
# Throughput-engine smoke: the Inference benches must report
# 0 allocs/op on the chain and batcher paths (gated hard by the
# ZeroAlloc tests; this prints the numbers for the log).
go test -bench=BenchmarkInference -benchmem -benchtime=10x -run @ .
# Fleet-engine smoke: the scaling sweep at reduced corpus and stream
# counts — exercises the sharded engine (compiled shard batchers, the
# default), the per-pipeline baseline and the lossless-verdict
# assertion end to end. The fleet equivalence test above already pins
# compiled-vs-interpreted fleet verdicts bit for bit.
go run ./cmd/hmd-bench -exp fleet -apps 2 -intervals 8 \
  -fleetstreams 8,32 -fleetintervals 50 -fleetout /tmp/check-fleet.json
# Compiled-backend smoke: the CompiledVsInterpreted benches print the
# per-family numbers for the log (equivalence itself is gated by the
# race-mode tests above).
go test -bench=BenchmarkCompiledVsInterpreted -benchmem -benchtime=10x -run @ .
