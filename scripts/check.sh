#!/bin/sh
# Tier-1 checks: everything must pass before a change lands.
# The race-detector pass covers the packages with real concurrency
# (parallel collection) and the fault-injection layer feeding it.
set -ex

go build ./...
go vet ./...
go test ./...
go test -race ./internal/collect ./internal/faults
