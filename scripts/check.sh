#!/bin/sh
# Tier-1 checks: everything must pass before a change lands.
# The race-detector pass covers the packages with real concurrency
# (parallel collection, the supervised pipeline, chain checkpointing)
# and the fault-injection layer feeding them.
set -ex

go build ./...
go vet ./...
go test ./...
go test -race ./internal/collect ./internal/faults
go test -race ./internal/supervise ./internal/core
go test -run TestChaos -short ./internal/experiments
