#!/bin/sh
# Tier-1 checks: everything must pass before a change lands.
# The race-detector pass covers the packages with real concurrency
# (parallel collection, the supervised pipeline, chain checkpointing)
# and the fault-injection layer feeding them.
set -ex

go build ./...
go vet ./...
# staticcheck when available (CI installs it; locally it is optional).
if command -v staticcheck >/dev/null 2>&1; then
  staticcheck ./...
fi
go test ./...
go test -race ./internal/collect ./internal/faults
go test -race ./internal/supervise ./internal/core
go test -race ./internal/eval ./internal/mlearn/ensemble
# The fleet race pass includes the high-stream-count churn workout
# (TestFleetDensityChurn: concurrent add/remove + paginated stats
# readers) and the zero-alloc gates on the SPSC ring and demux path.
go test -race ./internal/fleet
# Ingest plane: framing, admission/quota/eviction, drain and client
# tests under the race detector (connections, streams and shards all
# share state), plus a short fuzz pass over the frame decoder — torn,
# bit-flipped and oversized frames must never panic or over-read.
go test -race ./internal/ingest
go test -fuzz=FuzzFrameDecode -fuzztime=10s -run '^$' ./internal/ingest
go test -run TestChaos -short ./internal/experiments
# Ingest chaos drill: real loopback TCP clients under seeded wire
# faults, client crashes, a quota storm and a mid-run drain/restart;
# gap-free timelines and bit-identical post-recovery verdicts gated
# under the race detector — once over the v1 single-frame wire and
# once over the batched wire (TestIngestChaosBatched).
go test -race -run 'TestIngestChaos|TestIngestChaosBatched' -short ./internal/experiments
# Wire-capacity smoke: the unpaced blast mode in both planes under the
# race detector — checks the structural claims (exact settled
# accounting, batching negotiated only on the batched pass, batch
# frames actually on the wire), not throughput magnitudes.
go test -race -run 'TestIngestCapacitySmoke|TestClusterCapacitySmoke' -short ./internal/experiments
# Compiled-equivalence gate: every compiled kernel must produce
# bit-identical verdicts to its interpreted model (unit equivalence in
# compiled, chain/checkpoint/replicator equivalence in core), under the
# race detector so shared-Program scoring is exercised concurrently.
go test -race ./internal/mlearn/compiled ./internal/core
# Throughput-engine smoke: the Inference benches must report
# 0 allocs/op on the chain and batcher paths (gated hard by the
# ZeroAlloc tests; this prints the numbers for the log).
go test -bench=BenchmarkInference -benchmem -benchtime=10x -run @ .
# Fleet-engine smoke: the scaling sweep at reduced corpus and stream
# counts — exercises the sharded engine (compiled shard batchers, the
# default), the per-pipeline baseline, the lossless-verdict assertion
# and the stream-density sweep (compiled vs quantized MLP chain) end to
# end. The fleet equivalence test above already pins
# compiled-vs-interpreted fleet verdicts bit for bit.
go run ./cmd/hmd-bench -exp fleet -apps 2 -intervals 8 \
  -fleetstreams 8,32 -fleetintervals 50 -fleetdensity 16,64 \
  -fleetout /tmp/check-fleet.json
# Ingest smoke: the chaos drill + overload sweep through the real
# hmd-bench entry point at reduced scale (loopback TCP throughout),
# with the capacity blast enabled so the batched-vs-v1 wire comparison
# runs end to end through the CLI.
go run ./cmd/hmd-bench -exp ingest -apps 2 -intervals 8 \
  -ingeststreams 4 -ingestsamples 60 -capacity -capacityms 150 \
  -ingestout /tmp/check-ingest.json
# Compiled-backend smoke: the CompiledVsInterpreted benches print the
# per-family numbers for the log (equivalence itself is gated by the
# race-mode tests above).
go test -bench=BenchmarkCompiledVsInterpreted -benchmem -benchtime=10x -run @ .
# Quantized-tier gates. The compiled package's race pass above already
# covers the quantized kernels' unit tests and concurrent shared-
# QuantProgram scoring (TestQuantConcurrentEvaluators); here the
# statistical-equivalence gate runs at full test scale — pooled
# verdict parity >= 99.9% across the quantizable zoo plus accuracy/AUC
# deltas (clean and under faults) inside the robustness sweep's own
# seed-to-seed noise band — and the quantized benches print the
# three-tier numbers for the log.
go test -race -run 'TestQuantEquivalence|TestPerfOnly' ./internal/experiments
go test -bench='BenchmarkBatcherBatchSize/.*/quantized' -benchmem -benchtime=10x -run @ .
# Cluster plane: ring determinism, redirect-to-owner, drain handoff and
# lease-expiry failover under the race detector (coordinator, agents
# and ingest connections all share state across goroutines).
go test -race ./internal/cluster
# Cluster chaos drill (3 in-process nodes through a scripted kill, a
# coordinator partition and a rolling upgrade; verdict timelines gated
# bit-identical to a single-node reference) plus the 3-process cluster
# bench smoke, both in short mode under -race.
go test -race -run 'TestClusterChaos|TestClusterBenchSmoke' -short ./internal/experiments
