// Package repro is a full reproduction of "Ensemble Learning for
// Effective Run-Time Hardware-Based Malware Detection: A Comprehensive
// Analysis and Classification" (Sayadi et al., DAC 2018) as a
// self-contained Go library.
//
// The repository builds every system the paper depends on from scratch:
// a trace-driven micro-architecture simulator with 44 perf-style
// hardware event counters (internal/micro), an application behaviour
// corpus standing in for the paper's >100 benign and malware programs
// (internal/workload), a 4-register PMU with batch scheduling and
// fixed-interval sampling (internal/perf), container-isolated
// collection (internal/lxc, internal/collect), WEKA-equivalent
// implementations of the eight studied classifiers plus AdaBoost.M1 and
// Bagging (internal/mlearn/...), correlation-based feature reduction
// (internal/features), ROC/AUC evaluation (internal/eval), an FPGA cost
// model for Table 3 (internal/hls), and the detection framework with a
// run-time monitoring engine (internal/core).
//
// The benchmark suite in this directory regenerates every table and
// figure of the paper's evaluation; cmd/hmd-bench does the same at full
// corpus scale with a headline-claim checklist. See README.md,
// DESIGN.md and EXPERIMENTS.md.
package repro
