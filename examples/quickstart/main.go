// Quickstart: the end-to-end pipeline in ~40 lines — collect an HPC
// dataset under the 4-register PMU constraint, split it at application
// level, reduce to the 4 most important counters, train a boosted
// detector and evaluate it on unseen applications.
package main

import (
	"fmt"
	"log"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/mlearn/zoo"
)

func main() {
	// 1. Collect: every app runs once per 4-event batch (11 runs for
	//    44 events), each in a fresh container, sampled every interval.
	cfg := collect.Default()
	cfg.Suite.AppsPerFamily = 5 // 60 apps: quick but representative
	cfg.Intervals = 20
	res, err := collect.Collect(cfg)
	if err != nil {
		log.Fatal(err)
	}
	counts := res.Data.ClassCounts()
	fmt.Printf("dataset: %d samples (%d benign / %d malware), %d events, %d runs per app\n",
		res.Data.NumRows(), counts[0], counts[1], res.Data.NumAttrs(), res.RunsPerApp)

	// 2. Split 70/30 at application level (the paper's known/unknown
	//    protocol) and rank features by correlation on the train side.
	b, err := core.NewBuilder(res.Data, 0.7, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train a 4-HPC AdaBoost(J48) detector — it fits the PMU, so a
	//    single execution suffices at run time.
	det, err := b.Build("J48", zoo.Boosted, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector: %s, events:", det.Name())
	for _, ev := range det.Events {
		fmt.Printf(" %s", ev)
	}
	fmt.Printf("\nrun-time capable: %v\n", det.RunTimeCapable())

	// 4. Evaluate on unseen applications.
	r, err := b.Evaluate(det)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy %.1f%%  AUC %.3f  ACC*AUC %.1f%%\n",
		r.Accuracy*100, r.AUC, r.Performance()*100)
}
