// Hardware cost: the paper's §4.4 study as a library walk-through.
// Trained detectors are compiled to the FPGA cost model and compared on
// latency (cycles @10 ns) and area (% of an OpenSPARC-class core),
// including the shared-vs-parallel ensemble scheduling ablation.
package main

import (
	"fmt"
	"log"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/hls"
	"repro/internal/mlearn/zoo"
)

func main() {
	cfg := collect.Default()
	cfg.Suite.AppsPerFamily = 5
	cfg.Intervals = 16
	res, err := collect.Collect(cfg)
	if err != nil {
		log.Fatal(err)
	}
	b, err := core.NewBuilder(res.Data, 0.7, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Hardware cost of 8-HPC general detectors (Table 3, first column):")
	for _, name := range zoo.Names() {
		det, err := b.Build(name, zoo.General, 8)
		if err != nil {
			log.Fatal(err)
		}
		d, err := hls.Compile(det.Model, det.Name())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", d)
	}

	// The trade the paper highlights: a 2-HPC boosted MLP can be
	// *smaller* than the 8-HPC general MLP while performing comparably.
	fmt.Println("\nMLP: 8HPC general vs 2HPC boosted:")
	gen, err := b.Build("MLP", zoo.General, 8)
	if err != nil {
		log.Fatal(err)
	}
	dGen, _ := hls.Compile(gen.Model, gen.Name())
	bst, err := b.Build("MLP", zoo.Boosted, 2)
	if err != nil {
		log.Fatal(err)
	}
	dBst, _ := hls.Compile(bst.Model, bst.Name())
	fmt.Printf("  %s\n  %s\n", dGen, dBst)

	// Ensemble scheduling ablation: shared engine (the paper's
	// implementation) vs fully parallel members.
	fmt.Println("\nEnsemble schedule ablation (Boosted-REPTree, 4 HPCs):")
	det, err := b.Build("REPTree", zoo.Boosted, 4)
	if err != nil {
		log.Fatal(err)
	}
	shared, err := hls.CompileScheduled(det.Model, det.Name()+"/shared", hls.Shared)
	if err != nil {
		log.Fatal(err)
	}
	par, err := hls.CompileScheduled(det.Model, det.Name()+"/parallel", hls.Parallel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n  %s\n", shared, par)
	fmt.Printf("\n  parallel is %.1fx faster but %.1fx larger\n",
		float64(shared.Latency)/float64(par.Latency),
		par.Res.LUTEquivalent()/shared.Res.LUTEquivalent())
}
