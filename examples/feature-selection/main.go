// Feature selection: walks the paper's feature-reduction stage. All 44
// perf events are collected, scored by Correlation Attribute
// Evaluation, and reduced to the top 16/8/4/2 — and the example shows
// what each budget costs in detection accuracy, plus how the
// correlation ranking compares to a class-blind variance ranking.
package main

import (
	"fmt"
	"log"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/mlearn/zoo"
)

func main() {
	cfg := collect.Default()
	cfg.Suite.AppsPerFamily = 6
	cfg.Intervals = 16
	res, err := collect.Collect(cfg)
	if err != nil {
		log.Fatal(err)
	}
	b, err := core.NewBuilder(res.Data, 0.7, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Rank all 44 events on the training split (never on test data —
	// that would leak labels).
	ranked, err := features.RankCorrelation(b.Train())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Top 16 hardware performance counters (Correlation Attribute Evaluation):")
	for i := 0; i < 16; i++ {
		fmt.Printf("  %2d. %-28s |r| = %.4f\n", i+1, ranked[i].Name, ranked[i].Score)
	}

	// Accuracy as a function of the HPC budget, for one classifier.
	fmt.Println("\nJ48 accuracy vs number of HPCs (general / boosted):")
	for _, k := range []int{16, 8, 4, 2} {
		gen, err := b.Build("J48", zoo.General, k)
		if err != nil {
			log.Fatal(err)
		}
		rg, _ := b.Evaluate(gen)
		bst, err := b.Build("J48", zoo.Boosted, k)
		if err != nil {
			log.Fatal(err)
		}
		rb, _ := b.Evaluate(bst)
		fmt.Printf("  %2d HPCs: %.1f%% / %.1f%%\n", k, rg.Accuracy*100, rb.Accuracy*100)
	}

	// Compare rankers: correlation vs variance vs random.
	fmt.Println("\nRanker comparison (top-4 features, J48 accuracy):")
	corr4, _ := features.TopK(b.Train(), 4)
	varRank, _ := features.RankVariance(b.Train())
	var var4 []int
	for i := 0; i < 4; i++ {
		var4 = append(var4, varRank[i].Index)
	}
	rand4, _ := features.RandomK(b.Train(), 4, 42)
	for _, c := range []struct {
		name string
		cols []int
	}{{"correlation", corr4}, {"variance", var4}, {"random", rand4}} {
		train, _ := b.Train().Select(c.cols)
		test, _ := b.Test().Select(c.cols)
		model, err := zoo.MustNew("J48", 1).Train(train, nil)
		if err != nil {
			log.Fatal(err)
		}
		correct := 0
		for i := range test.X {
			if p := model.Distribution(test.X[i]); (p[1] > p[0]) == (test.Y[i] == 1) {
				correct++
			}
		}
		fmt.Printf("  %-12s %.1f%%\n", c.name, 100*float64(correct)/float64(test.NumRows()))
	}
}
