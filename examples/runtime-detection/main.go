// Runtime detection: the paper's motivating scenario. A 2-HPC boosted
// detector — small enough for the PMU, so it never needs a second run
// of the program — watches a live stream of 10 ms samples from
// applications it has never seen and raises verdicts through a sliding
// window. Contrast with a 16-HPC detector, which the monitor refuses to
// deploy because it cannot be fed from 4 counter registers.
package main

import (
	"fmt"
	"log"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/micro"
	"repro/internal/mlearn/zoo"
	"repro/internal/workload"
)

func main() {
	// Train on one corpus seed...
	res, err := collect.Collect(collect.Default())
	if err != nil {
		log.Fatal(err)
	}
	b, err := core.NewBuilder(res.Data, 0.7, 1)
	if err != nil {
		log.Fatal(err)
	}

	// A 16-HPC detector is more accurate offline, but is NOT run-time
	// deployable: the monitor rejects it.
	wide, err := b.Build("REPTree", zoo.General, 16)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := core.NewMonitor(wide, 5, 0.5); err != nil {
		fmt.Printf("16-HPC detector rejected for run-time use:\n  %v\n\n", err)
	}

	// The paper's answer: few HPCs + ensemble learning.
	det, err := b.Build("REPTree", zoo.Boosted, 2)
	if err != nil {
		log.Fatal(err)
	}
	r, _ := b.Evaluate(det)
	fmt.Printf("deploying %s (offline accuracy %.1f%%, AUC %.3f)\n\n",
		det.Name(), r.Accuracy*100, r.AUC)

	mon, err := core.NewMonitor(det, 5, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	// ...monitor applications from an entirely different suite seed.
	unseen := workload.Suite(workload.SuiteConfig{Seed: 0xC0FFEE, AppsPerFamily: 1})
	for _, app := range unseen {
		run := app.NewRun(0)
		mach := micro.NewMachine(micro.DefaultConfig(), run.MachineSeed())
		mon.Reset()
		verdicts, err := mon.Watch(mach, run, 24, 0)
		if err != nil {
			log.Fatal(err)
		}
		flags := 0
		for _, v := range verdicts {
			if v.Malware {
				flags++
			}
		}
		marker := " "
		if flags > len(verdicts)/3 {
			marker = "⚠"
		}
		fmt.Printf("%s %-22s (%s): flagged %2d/%d intervals\n",
			marker, app.Name, app.Class, flags, len(verdicts))
	}
}
