package ingest

// Peer frames extend the ingest framing to the cluster control plane:
// the node-role messages a fleet process exchanges with the cluster
// coordinator (JOIN/LEASE/STATE and their replies) and the REDIRECT
// frame a node answers a client with when a stream's placement says
// another node owns it. They ride the exact same [type|len|body|CRC]
// framing as the data plane, so one decoder, one fuzz target and one
// fault-injection layer cover both planes.
//
// Direction convention is unchanged: node-to-coordinator types have the
// high bit clear, coordinator-to-node (and server-to-client) types have
// it set.

import (
	"encoding/binary"
	"fmt"
)

// Cluster control-plane frame types.
const (
	// FrameJoin introduces a node to the coordinator: its ID, advertised
	// ingest address and placement weight. Must be the first frame on a
	// control connection.
	FrameJoin byte = 0x10
	// FrameLease is a heartbeat: it renews the node's lease and carries
	// an aggregate stats sample for the coordinator's fan-in view.
	FrameLease byte = 0x11
	// FrameState ships one stream's portable chain state to the
	// coordinator — the periodic fan-in that makes lease-expiry failover
	// possible, and the final ship at the end of a drain.
	FrameState byte = 0x12

	// FrameJoinOK admits a node: its lease epoch, the lease TTL and the
	// current placement ring.
	FrameJoinOK byte = 0x90
	// FrameLeaseOK renews a lease and carries the current ring plus any
	// pending command (drain).
	FrameLeaseOK byte = 0x91
	// FrameInstall pushes one stream's portable chain state down to the
	// node that now owns it (same body layout as FrameState).
	FrameInstall byte = 0x92
	// FrameRedirect answers a client HELLO for a stream another node
	// owns: the client should reconnect to the carried address.
	FrameRedirect byte = 0x93
)

// Member is one placement-ring entry: a node's identity, advertised
// ingest address, relative placement weight and lease epoch.
type Member struct {
	ID     string
	Addr   string
	Weight int
	Epoch  uint64
}

// RingUpdate is the coordinator's placement view pushed to nodes with
// every JOIN_OK and LEASE_OK: rings are a handful of members, so
// shipping the whole thing beats delta bookkeeping.
type RingUpdate struct {
	Version uint64
	Members []Member
}

// Join is the node-side handshake.
type Join struct {
	Version byte
	// Weight scales the node's share of the ring (<=0 means 1).
	Weight int
	NodeID string
	Addr   string
}

// AppendJoin appends a JOIN frame.
func AppendJoin(dst []byte, j Join) []byte {
	body := make([]byte, 0, 8+len(j.NodeID)+len(j.Addr))
	body = append(body, j.Version)
	body = binary.BigEndian.AppendUint16(body, uint16(max(j.Weight, 1)))
	body = appendString(body, j.NodeID)
	body = appendString(body, j.Addr)
	return AppendFrame(dst, FrameJoin, body)
}

// ParseJoin decodes a JOIN body.
func ParseJoin(body []byte) (Join, error) {
	var j Join
	if len(body) < 5 {
		return j, fmt.Errorf("%w: join body %d bytes", ErrBadFrame, len(body))
	}
	j.Version = body[0]
	if j.Version < ProtoVersionMin || j.Version > ProtoVersion {
		return j, fmt.Errorf("%w: %d", ErrBadVersion, j.Version)
	}
	j.Weight = int(binary.BigEndian.Uint16(body[1:3]))
	rest := body[3:]
	var err error
	if j.NodeID, rest, err = parseString(rest); err != nil {
		return j, fmt.Errorf("%w: join node ID", ErrBadFrame)
	}
	if j.Addr, rest, err = parseString(rest); err != nil {
		return j, fmt.Errorf("%w: join addr", ErrBadFrame)
	}
	if len(rest) != 0 {
		return j, fmt.Errorf("%w: %d trailing join bytes", ErrBadFrame, len(rest))
	}
	if j.NodeID == "" || j.Addr == "" {
		return j, fmt.Errorf("%w: empty join node ID or addr", ErrBadFrame)
	}
	if j.Weight < 1 {
		return j, fmt.Errorf("%w: join weight %d", ErrBadFrame, j.Weight)
	}
	return j, nil
}

// JoinOK is the coordinator's admission reply.
type JoinOK struct {
	// Epoch fences the node's lease: it increments every time the node
	// (re)joins, so state shipped under a stale epoch is refused.
	Epoch uint64
	// LeaseMillis is the lease TTL the node must renew within.
	LeaseMillis uint32
	Ring        RingUpdate
}

// AppendJoinOK appends a JOIN_OK frame.
func AppendJoinOK(dst []byte, ok JoinOK) []byte {
	body := make([]byte, 0, 16+24*len(ok.Ring.Members))
	body = binary.BigEndian.AppendUint64(body, ok.Epoch)
	body = binary.BigEndian.AppendUint32(body, ok.LeaseMillis)
	body = appendRing(body, ok.Ring)
	return AppendFrame(dst, FrameJoinOK, body)
}

// ParseJoinOK decodes a JOIN_OK body.
func ParseJoinOK(body []byte) (JoinOK, error) {
	if len(body) < 12 {
		return JoinOK{}, fmt.Errorf("%w: join-ok body %d bytes", ErrBadFrame, len(body))
	}
	ok := JoinOK{
		Epoch:       binary.BigEndian.Uint64(body[0:8]),
		LeaseMillis: binary.BigEndian.Uint32(body[8:12]),
	}
	ring, rest, err := parseRing(body[12:])
	if err != nil {
		return JoinOK{}, err
	}
	if len(rest) != 0 {
		return JoinOK{}, fmt.Errorf("%w: %d trailing join-ok bytes", ErrBadFrame, len(rest))
	}
	ok.Ring = ring
	return ok, nil
}

// NodeStats is the compact per-node aggregate riding every heartbeat —
// the coordinator's fleet-wide stats fan-in.
type NodeStats struct {
	Streams    uint64 // streams ever admitted by the node's ingest server
	Accepted   uint64 // samples admitted into stream rings
	Shed       uint64 // samples dropped by inflight windows
	Verdicts   uint64 // engine verdict-timeline length
	Attributed uint64 // verdicts paired with a client sample
	Held       uint64 // hold-last repair verdicts
}

// Lease is a heartbeat.
type Lease struct {
	// Epoch must match the node's JOIN_OK epoch; a mismatch means the
	// coordinator has moved on and the node must rejoin.
	Epoch uint64
	// RingVersion acknowledges the newest ring the node has applied.
	RingVersion uint64
	// Draining reports that the node is finishing streams after a drain
	// command (the lease must stay alive while it does).
	Draining bool
	Stats    NodeStats
}

// AppendLease appends a LEASE frame.
func AppendLease(dst []byte, l Lease) []byte {
	body := make([]byte, 0, 65)
	body = binary.BigEndian.AppendUint64(body, l.Epoch)
	body = binary.BigEndian.AppendUint64(body, l.RingVersion)
	var flags byte
	if l.Draining {
		flags |= 1
	}
	body = append(body, flags)
	for _, v := range [...]uint64{l.Stats.Streams, l.Stats.Accepted, l.Stats.Shed,
		l.Stats.Verdicts, l.Stats.Attributed, l.Stats.Held} {
		body = binary.BigEndian.AppendUint64(body, v)
	}
	return AppendFrame(dst, FrameLease, body)
}

// ParseLease decodes a LEASE body.
func ParseLease(body []byte) (Lease, error) {
	if len(body) != 65 {
		return Lease{}, fmt.Errorf("%w: lease body %d bytes", ErrBadFrame, len(body))
	}
	l := Lease{
		Epoch:       binary.BigEndian.Uint64(body[0:8]),
		RingVersion: binary.BigEndian.Uint64(body[8:16]),
		Draining:    body[16]&1 != 0,
	}
	s := body[17:]
	l.Stats = NodeStats{
		Streams:    binary.BigEndian.Uint64(s[0:8]),
		Accepted:   binary.BigEndian.Uint64(s[8:16]),
		Shed:       binary.BigEndian.Uint64(s[16:24]),
		Verdicts:   binary.BigEndian.Uint64(s[24:32]),
		Attributed: binary.BigEndian.Uint64(s[32:40]),
		Held:       binary.BigEndian.Uint64(s[40:48]),
	}
	return l, nil
}

// LeaseOK renews a lease.
type LeaseOK struct {
	Epoch uint64
	// Drain commands the node to drain: refuse new streams, finish
	// buffered work, ship final states and leave.
	Drain bool
	Ring  RingUpdate
}

// AppendLeaseOK appends a LEASE_OK frame.
func AppendLeaseOK(dst []byte, ok LeaseOK) []byte {
	body := make([]byte, 0, 16+24*len(ok.Ring.Members))
	body = binary.BigEndian.AppendUint64(body, ok.Epoch)
	var flags byte
	if ok.Drain {
		flags |= 1
	}
	body = append(body, flags)
	body = appendRing(body, ok.Ring)
	return AppendFrame(dst, FrameLeaseOK, body)
}

// ParseLeaseOK decodes a LEASE_OK body.
func ParseLeaseOK(body []byte) (LeaseOK, error) {
	if len(body) < 9 {
		return LeaseOK{}, fmt.Errorf("%w: lease-ok body %d bytes", ErrBadFrame, len(body))
	}
	ok := LeaseOK{
		Epoch: binary.BigEndian.Uint64(body[0:8]),
		Drain: body[8]&1 != 0,
	}
	ring, rest, err := parseRing(body[9:])
	if err != nil {
		return LeaseOK{}, err
	}
	if len(rest) != 0 {
		return LeaseOK{}, fmt.Errorf("%w: %d trailing lease-ok bytes", ErrBadFrame, len(rest))
	}
	ok.Ring = ring
	return ok, nil
}

// StreamState is one stream's portable chain state: the payload of both
// STATE (node ships to coordinator) and INSTALL (coordinator pushes to
// the new owner). Blob is an opaque serialized chain state (the cluster
// layer gob-encodes core.ChainState); Interval is carried alongside so
// staleness ordering never requires decoding the blob.
type StreamState struct {
	Key      string
	Interval uint32
	Blob     []byte
}

// AppendStreamState appends a STATE or INSTALL frame (typ selects).
func AppendStreamState(dst []byte, typ byte, st StreamState) []byte {
	body := make([]byte, 0, 6+len(st.Key)+len(st.Blob))
	body = binary.BigEndian.AppendUint32(body, st.Interval)
	body = appendString(body, st.Key)
	body = append(body, st.Blob...)
	return AppendFrame(dst, typ, body)
}

// ParseStreamState decodes a STATE/INSTALL body. The returned Blob
// aliases body.
func ParseStreamState(body []byte) (StreamState, error) {
	if len(body) < 5 {
		return StreamState{}, fmt.Errorf("%w: state body %d bytes", ErrBadFrame, len(body))
	}
	st := StreamState{Interval: binary.BigEndian.Uint32(body[0:4])}
	key, rest, err := parseString(body[4:])
	if err != nil {
		return StreamState{}, fmt.Errorf("%w: state key", ErrBadFrame)
	}
	if key == "" {
		return StreamState{}, fmt.Errorf("%w: empty state key", ErrBadFrame)
	}
	st.Key, st.Blob = key, rest
	return st, nil
}

// Redirect tells a client which node owns its stream.
type Redirect struct {
	Addr   string
	Reason string
}

// AppendRedirect appends a REDIRECT frame.
func AppendRedirect(dst []byte, r Redirect) []byte {
	body := appendString(nil, r.Addr)
	body = appendString(body, r.Reason)
	return AppendFrame(dst, FrameRedirect, body)
}

// ParseRedirect decodes a REDIRECT body.
func ParseRedirect(body []byte) (Redirect, error) {
	addr, rest, err := parseString(body)
	if err != nil {
		return Redirect{}, fmt.Errorf("%w: redirect addr", ErrBadFrame)
	}
	reason, rest, err := parseString(rest)
	if err != nil || len(rest) != 0 {
		return Redirect{}, fmt.Errorf("%w: redirect reason", ErrBadFrame)
	}
	if addr == "" {
		return Redirect{}, fmt.Errorf("%w: empty redirect addr", ErrBadFrame)
	}
	return Redirect{Addr: addr, Reason: reason}, nil
}

// appendRing appends a RingUpdate: version, member count, members.
func appendRing(dst []byte, r RingUpdate) []byte {
	dst = binary.BigEndian.AppendUint64(dst, r.Version)
	dst = append(dst, byte(len(r.Members)))
	for _, m := range r.Members {
		dst = binary.BigEndian.AppendUint64(dst, m.Epoch)
		dst = binary.BigEndian.AppendUint16(dst, uint16(max(m.Weight, 1)))
		dst = appendString(dst, m.ID)
		dst = appendString(dst, m.Addr)
	}
	return dst
}

// parseRing decodes a RingUpdate, returning the remaining bytes.
func parseRing(b []byte) (RingUpdate, []byte, error) {
	if len(b) < 9 {
		return RingUpdate{}, b, fmt.Errorf("%w: ring of %d bytes", ErrBadFrame, len(b))
	}
	r := RingUpdate{Version: binary.BigEndian.Uint64(b[0:8])}
	n := int(b[8])
	rest := b[9:]
	for i := 0; i < n; i++ {
		if len(rest) < 10 {
			return RingUpdate{}, rest, fmt.Errorf("%w: ring member %d truncated", ErrBadFrame, i)
		}
		m := Member{
			Epoch:  binary.BigEndian.Uint64(rest[0:8]),
			Weight: int(binary.BigEndian.Uint16(rest[8:10])),
		}
		var err error
		if m.ID, rest, err = parseString(rest[10:]); err != nil {
			return RingUpdate{}, rest, fmt.Errorf("%w: ring member %d ID", ErrBadFrame, i)
		}
		if m.Addr, rest, err = parseString(rest); err != nil {
			return RingUpdate{}, rest, fmt.Errorf("%w: ring member %d addr", ErrBadFrame, i)
		}
		if m.ID == "" {
			return RingUpdate{}, rest, fmt.Errorf("%w: ring member %d empty ID", ErrBadFrame, i)
		}
		r.Members = append(r.Members, m)
	}
	return r, rest, nil
}
