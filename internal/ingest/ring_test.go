package ingest

import "testing"

func TestSampleRingFIFO(t *testing.T) {
	r := newSampleRing(4, 2)
	for i := uint32(0); i < 4; i++ {
		if _, dropped := r.push(i, []uint64{uint64(i), uint64(i) * 10}); dropped {
			t.Fatalf("push %d dropped with room left", i)
		}
	}
	if r.Pending() != 4 {
		t.Fatalf("pending %d", r.Pending())
	}
	buf := make([]uint64, 2)
	for i := uint32(0); i < 4; i++ {
		seq, ok := r.pop(buf)
		if !ok || seq != i || buf[0] != uint64(i) || buf[1] != uint64(i)*10 {
			t.Fatalf("pop %d: seq %d ok %v vals %v", i, seq, ok, buf)
		}
	}
	if _, ok := r.pop(buf); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	if r.Pending() != 0 {
		t.Fatalf("pending %d after drain", r.Pending())
	}
}

func TestSampleRingDropOldest(t *testing.T) {
	r := newSampleRing(3, 1)
	for i := uint32(0); i < 3; i++ {
		r.push(i, []uint64{uint64(i)})
	}
	dropSeq, dropped := r.push(3, []uint64{3})
	if !dropped || dropSeq != 0 {
		t.Fatalf("overflow should drop the OLDEST (seq 0), got dropped=%v seq=%d", dropped, dropSeq)
	}
	if r.Dropped() != 1 || r.Pending() != 3 {
		t.Fatalf("dropped %d pending %d", r.Dropped(), r.Pending())
	}
	buf := make([]uint64, 1)
	want := []uint32{1, 2, 3}
	for _, w := range want {
		seq, ok := r.pop(buf)
		if !ok || seq != w {
			t.Fatalf("after shed: got seq %d, want %d", seq, w)
		}
	}
}

func TestSampleRingWraparound(t *testing.T) {
	r := newSampleRing(3, 1)
	buf := make([]uint64, 1)
	// Keep two samples in flight while head walks around the slab edge
	// many times: every pop must still come back in order, undamaged.
	r.push(0, []uint64{0})
	r.push(1, []uint64{1})
	for seq := uint32(2); seq < 50; seq++ {
		if _, dropped := r.push(seq, []uint64{uint64(seq)}); dropped {
			t.Fatalf("seq %d: dropped with occupancy %d", seq, r.Pending())
		}
		want := seq - 2
		got, ok := r.pop(buf)
		if !ok || got != want || buf[0] != uint64(want) {
			t.Fatalf("seq %d: got %d vals %v, want %d", seq, got, buf, want)
		}
	}
}

func TestSampleRingClose(t *testing.T) {
	r := newSampleRing(2, 1)
	if r.Closed() {
		t.Fatal("fresh ring reports closed")
	}
	r.push(0, []uint64{9})
	r.Close()
	if !r.Closed() {
		t.Fatal("Close did not mark the ring")
	}
	// Buffered samples still drain after close.
	if seq, ok := r.pop(make([]uint64, 1)); !ok || seq != 0 {
		t.Fatalf("post-close pop: seq %d ok %v", seq, ok)
	}
}
