package ingest

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestPeerFrameRoundTrips(t *testing.T) {
	ring := RingUpdate{
		Version: 7,
		Members: []Member{
			{ID: "n0", Addr: "127.0.0.1:9001", Weight: 1, Epoch: 1},
			{ID: "n1", Addr: "127.0.0.1:9002", Weight: 4, Epoch: 3},
		},
	}
	t.Run("join", func(t *testing.T) {
		in := Join{Version: ProtoVersion, Weight: 2, NodeID: "n0", Addr: "127.0.0.1:9001"}
		typ, body := readOne(t, AppendJoin(nil, in))
		if typ != FrameJoin {
			t.Fatalf("type %#x", typ)
		}
		got, err := ParseJoin(body)
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("join-ok", func(t *testing.T) {
		in := JoinOK{Epoch: 5, LeaseMillis: 1500, Ring: ring}
		typ, body := readOne(t, AppendJoinOK(nil, in))
		if typ != FrameJoinOK {
			t.Fatalf("type %#x", typ)
		}
		got, err := ParseJoinOK(body)
		if err != nil || !reflect.DeepEqual(got, in) {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("lease", func(t *testing.T) {
		in := Lease{
			Epoch: 5, RingVersion: 7, Draining: true,
			Stats: NodeStats{Streams: 3, Accepted: 100, Shed: 2, Verdicts: 99, Attributed: 97, Held: 2},
		}
		typ, body := readOne(t, AppendLease(nil, in))
		if typ != FrameLease {
			t.Fatalf("type %#x", typ)
		}
		got, err := ParseLease(body)
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("lease-ok", func(t *testing.T) {
		in := LeaseOK{Epoch: 5, Drain: true, Ring: ring}
		typ, body := readOne(t, AppendLeaseOK(nil, in))
		if typ != FrameLeaseOK {
			t.Fatalf("type %#x", typ)
		}
		got, err := ParseLeaseOK(body)
		if err != nil || !reflect.DeepEqual(got, in) {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("state-install", func(t *testing.T) {
		in := StreamState{Key: "acme/s0", Interval: 42, Blob: []byte{9, 8, 7, 0, 1}}
		for _, typ := range []byte{FrameState, FrameInstall} {
			gotTyp, body := readOne(t, AppendStreamState(nil, typ, in))
			if gotTyp != typ {
				t.Fatalf("type %#x want %#x", gotTyp, typ)
			}
			got, err := ParseStreamState(body)
			if err != nil || got.Key != in.Key || got.Interval != in.Interval ||
				!reflect.DeepEqual(got.Blob, in.Blob) {
				t.Fatalf("got %+v err %v", got, err)
			}
		}
	})
	t.Run("redirect", func(t *testing.T) {
		in := Redirect{Addr: "127.0.0.1:9002", Reason: "stream placement"}
		typ, body := readOne(t, AppendRedirect(nil, in))
		if typ != FrameRedirect {
			t.Fatalf("type %#x", typ)
		}
		got, err := ParseRedirect(body)
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
}

func TestPeerFrameRejects(t *testing.T) {
	if _, err := ParseJoin(appendJoinBody(Join{Version: 99, Weight: 1, NodeID: "n", Addr: "a"})); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad join version: %v", err)
	}
	if _, err := ParseJoin(appendJoinBody(Join{Version: ProtoVersion, Weight: 1, NodeID: "", Addr: "a"})); err == nil {
		t.Fatal("empty node ID accepted")
	}
	if _, err := ParseRedirect(appendString(appendString(nil, ""), "r")); err == nil {
		t.Fatal("empty redirect addr accepted")
	}
	if _, err := ParseStreamState([]byte{0, 0}); !errors.Is(err, ErrBadFrame) {
		t.Fatal("truncated state accepted")
	}
	if _, err := ParseLease(make([]byte, 10)); !errors.Is(err, ErrBadFrame) {
		t.Fatal("short lease accepted")
	}
	// A ring whose member list is cut short must error, not over-read.
	ok := AppendJoinOK(nil, JoinOK{Epoch: 1, LeaseMillis: 100, Ring: RingUpdate{
		Version: 1, Members: []Member{{ID: "n0", Addr: "a", Weight: 1}},
	}})
	_, body := readOne(t, ok)
	if _, err := ParseJoinOK(body[:len(body)-6]); err == nil {
		t.Fatal("truncated ring accepted")
	}
}

// appendJoinBody builds a raw JOIN body (bypassing AppendJoin's weight
// clamp) for reject tests.
func appendJoinBody(j Join) []byte {
	body := []byte{j.Version, byte(j.Weight >> 8), byte(j.Weight)}
	body = appendString(body, j.NodeID)
	return appendString(body, j.Addr)
}

func TestBackoffJitterIsSeededAndBounded(t *testing.T) {
	hint := Retry{AfterMillis: 200, Reason: "tenant admission rate"}
	// Deterministic: same (seed, scope, attempt) → same wait.
	a := Backoff(hint, 42, "t/s0", 1)
	b := Backoff(hint, 42, "t/s0", 1)
	if a != b {
		t.Fatalf("same inputs gave %v and %v", a, b)
	}
	// Jittered: distinct scopes must not retry in lockstep. With 32
	// streams a shared schedule would collide everywhere; require that
	// at least half the draws are unique.
	seen := map[time.Duration]int{}
	for i := 0; i < 32; i++ {
		seen[Backoff(hint, 42, "t/s"+string(rune('a'+i)), 0)]++
	}
	if len(seen) < 16 {
		t.Fatalf("32 scopes produced only %d distinct waits", len(seen))
	}
	// Bounded: attempt n draws from [base/2, base] with base = hint<<n.
	for attempt := 0; attempt < 6; attempt++ {
		base := 200 * time.Millisecond << attempt
		w := Backoff(hint, 7, "t/s0", attempt)
		if w < base/2 || w > base {
			t.Fatalf("attempt %d: wait %v outside [%v, %v]", attempt, w, base/2, base)
		}
	}
	// Capped growth and a floor for hint-less RETRYs.
	if w := Backoff(Retry{}, 1, "s", 40); w > MaxBackoff {
		t.Fatalf("uncapped backoff %v", w)
	}
	if w := Backoff(Retry{}, 1, "s", 0); w < DefaultRetryMillis*time.Millisecond/2 {
		t.Fatalf("zero-hint backoff %v below floor", w)
	}
}
