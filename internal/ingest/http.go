package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/fleet"
)

// httpSample is the JSON body of POST /ingest/sample — the debug
// counterpart of a HELLO(+SAMPLE) pair: the first sample for a
// (tenant, stream) admits the stream with Width = len(values).
type httpSample struct {
	Tenant string   `json:"tenant"`
	Stream string   `json:"stream"`
	Seq    uint32   `json:"seq"`
	Values []uint64 `json:"values"`
	// Horizon bounds the stream on first admission (0 = unbounded).
	Horizon int `json:"horizon,omitempty"`
	// Bye, when true, closes the stream after this sample (values may
	// be empty for a pure BYE).
	Bye bool `json:"bye,omitempty"`
}

type httpReply struct {
	Accepted bool   `json:"accepted"`
	Dup      bool   `json:"dup,omitempty"`
	Shed     bool   `json:"shed,omitempty"`
	NextSeq  uint32 `json:"next_seq"`
	Error    string `json:"error,omitempty"`
}

// Handler returns the debug HTTP/JSON surface:
//
//	POST /ingest/sample    one sample (admits the stream on first use)
//	GET  /ingest/verdicts  recent verdicts ?tenant=&stream=
//	GET  /ingest/stats     ingest-plane snapshot (?streams=1 for detail)
//
// It speaks the same admission, quota and drain machinery as the TCP
// plane — it is a debugging convenience, not a second code path. There
// is no verdict push over HTTP; poll /ingest/verdicts.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest/sample", s.handleSample)
	mux.HandleFunc("/ingest/verdicts", s.handleVerdicts)
	mux.HandleFunc("/ingest/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.StatsSnapshot(r.URL.Query().Get("streams") == "1"))
	})
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(httpReply{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req httpSample
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxFrameBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if req.Tenant == "" || req.Stream == "" {
		httpError(w, http.StatusBadRequest, "tenant and stream are required")
		return
	}
	ns := s.stream(req.Tenant, req.Stream)
	if ns == nil {
		if s.draining.Load() {
			s.drainRejects.Add(1)
			httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		if len(req.Values) != s.cfg.Width {
			s.widthRejects.Add(1)
			httpError(w, http.StatusBadRequest, "width %d, serving chain wants %d", len(req.Values), s.cfg.Width)
			return
		}
		var err error
		if ns, err = s.admitHTTPStream(req); err != nil {
			switch {
			case errors.Is(err, fleet.ErrDraining):
				httpError(w, http.StatusServiceUnavailable, "draining")
			case errors.Is(err, errOverQuota):
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusTooManyRequests, "%v", err)
			default:
				httpError(w, http.StatusConflict, "%v", err)
			}
			return
		}
	}
	if ns.finished.Load() {
		httpError(w, http.StatusGone, "stream finished")
		return
	}
	rep := httpReply{}
	if len(req.Values) > 0 {
		if len(req.Values) != s.cfg.Width {
			httpError(w, http.StatusBadRequest, "width %d, serving chain wants %d", len(req.Values), s.cfg.Width)
			return
		}
		s.mu.Lock()
		t := s.tenants[req.Tenant]
		s.mu.Unlock()
		if t != nil && !t.admitSample() {
			ns.throttled.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "tenant sample rate")
			return
		}
		res := ns.admit(req.Seq, req.Values)
		rep.Accepted = !res.dup
		rep.Dup = res.dup
		rep.Shed = res.shed
	}
	if req.Bye {
		ns.ring.Close()
	}
	ns.mu.Lock()
	rep.NextSeq = ns.nextSeq
	ns.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rep)
}

// errOverQuota classifies HTTP admission rejections caused by tenant
// quotas (mapped to 429, everything else to 409).
var errOverQuota = errors.New("ingest: tenant over quota")

// admitHTTPStream mirrors the TCP handshake's new-stream path.
func (s *Server) admitHTTPStream(req httpSample) (*netStream, error) {
	s.mu.Lock()
	t := s.tenants[req.Tenant]
	if t == nil {
		t = newTenant(req.Tenant, s.quotaOf(req.Tenant), s.now)
		s.tenants[req.Tenant] = t
	}
	s.mu.Unlock()
	ok, overRate := t.admitStream()
	if !ok {
		if overRate {
			return nil, fmt.Errorf("%w: admission rate", errOverQuota)
		}
		return nil, fmt.Errorf("%w: stream limit", errOverQuota)
	}
	key := req.Tenant + "/" + req.Stream
	ns := newNetStream(s, req.Tenant, req.Stream, s.cfg.Width, s.cfg.window())
	if iv, restored := s.eng.RestoredInterval(key); restored {
		ns.nextSeq = uint32(iv)
	}
	err := s.eng.Add(fleet.StreamConfig{
		ID:        key,
		Source:    ns,
		Intervals: req.Horizon,
		OnVerdict: ns.onVerdict,
		OnFinish:  ns.onFinish,
	})
	if err != nil {
		t.releaseStream()
		return nil, err
	}
	s.mu.Lock()
	// Two racing first-samples: the one that lost the Add already
	// errored out (duplicate stream ID), so this write is unique.
	s.streams[key] = ns
	s.mu.Unlock()
	s.admissions.Add(1)
	return ns, nil
}

func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	ns := s.stream(r.URL.Query().Get("tenant"), r.URL.Query().Get("stream"))
	if ns == nil {
		httpError(w, http.StatusNotFound, "no such stream")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Stream   StreamStats `json:"stream"`
		Verdicts []Verdict   `json:"verdicts"`
	}{ns.stats(), ns.Recent()})
}
