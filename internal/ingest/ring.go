package ingest

import (
	"sync"
	"sync/atomic"
)

// sampleRing is the bounded inflight window between a connection's
// reader goroutine (push) and the stream's owning fleet shard (pop).
// Storage is one flat capacity×width slab allocated up front, so the
// steady-state sample path moves counter vectors with two copies and
// zero allocations. When the window is full, push drops the OLDEST
// buffered sample — the same drop-oldest discipline the fleet's shard
// queues use: under overload verdicts stay current rather than late,
// and the drop is reported explicitly so the client sees a SHED frame,
// never silent loss.
type sampleRing struct {
	mu    sync.Mutex
	vals  []uint64 // capacity×width slab
	seqs  []uint32
	width int
	size  int
	head  int // index of oldest buffered sample
	n     int

	// pending mirrors n for the engine's wheel, which polls Pending
	// every rotation under its own lock and must not take ours.
	pending atomic.Int64
	closed  atomic.Bool
	dropped atomic.Int64
}

func newSampleRing(capacity, width int) *sampleRing {
	return &sampleRing{
		vals:  make([]uint64, capacity*width),
		seqs:  make([]uint32, capacity),
		width: width,
		size:  capacity,
	}
}

// push buffers one sample. When the ring is full it evicts the oldest
// sample and reports its sequence number so the caller can emit shed
// accounting.
func (r *sampleRing) push(seq uint32, vals []uint64) (droppedSeq uint32, dropped bool) {
	r.mu.Lock()
	if r.n == r.size {
		droppedSeq = r.seqs[r.head]
		dropped = true
		r.head = (r.head + 1) % r.size
		r.n--
		r.dropped.Add(1)
	}
	slot := (r.head + r.n) % r.size
	copy(r.vals[slot*r.width:(slot+1)*r.width], vals)
	r.seqs[slot] = seq
	r.n++
	r.pending.Store(int64(r.n))
	r.mu.Unlock()
	return droppedSeq, dropped
}

// pop removes the oldest sample into dst (len >= width).
func (r *sampleRing) pop(dst []uint64) (seq uint32, ok bool) {
	r.mu.Lock()
	if r.n == 0 {
		r.mu.Unlock()
		return 0, false
	}
	seq = r.seqs[r.head]
	copy(dst, r.vals[r.head*r.width:(r.head+1)*r.width])
	r.head = (r.head + 1) % r.size
	r.n--
	r.pending.Store(int64(r.n))
	r.mu.Unlock()
	return seq, true
}

// Pending reports buffered samples (wheel-poll safe: single atomic).
func (r *sampleRing) Pending() int { return int(r.pending.Load()) }

// Close marks the producer done; buffered samples still drain.
func (r *sampleRing) Close() { r.closed.Store(true) }

// Closed reports whether the producer hung up for good.
func (r *sampleRing) Closed() bool { return r.closed.Load() }

// Dropped reports how many samples drop-oldest evicted.
func (r *sampleRing) Dropped() int64 { return r.dropped.Load() }
