package ingest

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
)

// ErrServerClosed reports that Serve returned because Close was called
// — the ingest counterpart of net/http's sentinel, matched with
// errors.Is.
var ErrServerClosed = errors.New("ingest: server closed")

// Config parameterises an ingest server.
type Config struct {
	// Engine is the fleet engine streams are fed into. Required.
	Engine *fleet.Engine
	// Width is the serving chain's counter vector width; every HELLO
	// must declare it exactly. Required.
	Width int
	// Window is the per-stream inflight cap — the sample ring depth
	// between a connection and the stream's shard (<=0 means 64).
	Window int

	// HelloTimeout bounds how long a fresh connection may take to
	// produce a complete HELLO (<=0 means 2s).
	HelloTimeout time.Duration
	// ReadTimeout is the per-frame read deadline after the handshake: a
	// connection that cannot deliver a complete frame within it — the
	// slowloris shape, bytes trickling forever — is evicted (<=0 means
	// 10s).
	ReadTimeout time.Duration
	// WriteTimeout bounds each outbound frame write (<=0 means 5s).
	WriteTimeout time.Duration
	// OutboxDepth is the per-connection outbound frame queue (<=0 means
	// 128). A client that cannot keep up with its own verdict echo is
	// evicted when the queue fills.
	OutboxDepth int

	// MaxConns caps concurrent connections across all tenants (<=0
	// means 1024).
	MaxConns int
	// RetryMillis is the back-off hint carried in RETRY frames (<=0
	// means 1000).
	RetryMillis int
	// Quotas is the default per-tenant quota set; TenantQuotas
	// overrides it for named tenants.
	Quotas       Quotas
	TenantQuotas map[string]Quotas

	// Placement, when set, is consulted for every HELLO naming a stream
	// not already live on this server: it returns the owning node's
	// advertised ingest address and whether this server is that owner.
	// A non-local stream is answered with a REDIRECT frame carrying the
	// owner's address and the connection closes — clients follow the
	// cluster's placement instead of growing streams on the wrong node.
	// Streams already live here are served regardless (ownership moves
	// only through drain or failover, never under an attached client).
	// Nil means every stream is local (standalone server).
	Placement func(key string) (addr string, local bool)

	// Clock overrides time.Now for the quota buckets (tests).
	Clock func() time.Time
	// Logf, when set, receives one line per eviction/rejection.
	Logf func(format string, args ...any)
}

func (c Config) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 64
}

func (c Config) helloTimeout() time.Duration {
	if c.HelloTimeout > 0 {
		return c.HelloTimeout
	}
	return 2 * time.Second
}

func (c Config) readTimeout() time.Duration {
	if c.ReadTimeout > 0 {
		return c.ReadTimeout
	}
	return 10 * time.Second
}

func (c Config) writeTimeout() time.Duration {
	if c.WriteTimeout > 0 {
		return c.WriteTimeout
	}
	return 5 * time.Second
}

func (c Config) outboxDepth() int {
	if c.OutboxDepth > 0 {
		return c.OutboxDepth
	}
	return 128
}

func (c Config) maxConns() int {
	if c.MaxConns > 0 {
		return c.MaxConns
	}
	return 1024
}

func (c Config) retryMillis() uint32 {
	if c.RetryMillis > 0 {
		return uint32(c.RetryMillis)
	}
	return 1000
}

// Server is the TCP front door: it admits client streams subject to
// per-tenant quotas, bridges their samples into the fleet engine, and
// echoes verdicts back. One Server serves many listeners; streams
// outlive connections.
type Server struct {
	cfg     Config
	eng     *fleet.Engine
	quotaOf func(tenant string) Quotas
	now     func() time.Time

	bufPool sync.Pool // outbound frame buffers

	mu      sync.Mutex
	lns     map[net.Listener]struct{}
	conns   map[*conn]struct{}
	streams map[string]*netStream
	tenants map[string]*tenant
	closed  bool

	draining  atomic.Bool
	connCount atomic.Int64
	wg        sync.WaitGroup

	connsAccepted atomic.Int64
	connsEvicted  atomic.Int64
	slowloris     atomic.Int64
	slowReaders   atomic.Int64
	wireErrors    atomic.Int64
	protoErrors   atomic.Int64
	admissions    atomic.Int64
	reattaches    atomic.Int64
	drainRejects  atomic.Int64
	widthRejects  atomic.Int64
	capRejects    atomic.Int64
	redirects     atomic.Int64

	writeCalls     atomic.Int64 // socket Write invocations (syscall proxy)
	sampleBatches  atomic.Int64 // SAMPLE_BATCH frames decoded
	verdictBatches atomic.Int64 // VERDICT_BATCH frames emitted
}

// NewServer validates cfg and builds a server. The engine is borrowed,
// not owned: the caller runs and stops it.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("ingest: config needs a fleet engine")
	}
	if cfg.Width < 1 || cfg.Width > MaxWidth {
		return nil, fmt.Errorf("ingest: invalid vector width %d", cfg.Width)
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	s := &Server{
		cfg:     cfg,
		eng:     cfg.Engine,
		now:     now,
		lns:     make(map[net.Listener]struct{}),
		conns:   make(map[*conn]struct{}),
		streams: make(map[string]*netStream),
		tenants: make(map[string]*tenant),
	}
	s.quotaOf = func(name string) Quotas {
		if q, ok := cfg.TenantQuotas[name]; ok {
			return q
		}
		return cfg.Quotas
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on ln until the listener fails or Close is
// called (then it returns ErrServerClosed). A draining server still
// accepts — rejecting with an explicit DRAIN frame beats a silent
// connection refusal.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.lns, ln)
		s.mu.Unlock()
	}()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return ErrServerClosed
			}
			return fmt.Errorf("ingest: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(nc)
		}()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Drain moves the server (and its engine) into drain mode: new
// admissions are refused with DRAIN frames, attached clients are told
// to stop, and the engine finishes every stream's buffered work so the
// final checkpoint captures a complete, gap-free timeline per stream.
func (s *Server) Drain(reason string) {
	if !s.draining.CompareAndSwap(false, true) {
		return
	}
	s.eng.Drain()
	frame := AppendDrain(nil, reason)
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.trySend(append([]byte(nil), frame...))
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the listeners and hard-closes every connection. Streams
// and the engine are left to the caller (use Drain for the graceful
// path).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lns := make([]net.Listener, 0, len(s.lns))
	for ln := range s.lns {
		lns = append(lns, ln)
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.close(true)
	}
	s.wg.Wait()
	return nil
}

func (s *Server) getBuf() []byte {
	if v := s.bufPool.Get(); v != nil {
		return v.([]byte)
	}
	return make([]byte, 0, 128)
}

func (s *Server) putBuf(b []byte) {
	if cap(b) <= MaxFrameBytes {
		s.bufPool.Put(b[:0]) //nolint:staticcheck // []byte values are fine here
	}
}

// deliverVerdict echoes one attributed verdict to the stream's attached
// connection (shard goroutine). No connection means the client is
// between attaches; the verdict is counted, not queued — the
// authoritative timeline lives server-side.
func (s *Server) deliverVerdict(ns *netStream, v Verdict) {
	c := ns.attachedConn()
	if c == nil {
		ns.undelivered.Add(1)
		return
	}
	c.sendVerdict(v)
}

// streamFinished reacts to the engine finishing a stream: the tenant's
// stream slot frees, and the attached client (if any) gets a DRAIN
// notice and a flush-then-close. May run under the engine's internal
// lock — everything here is non-blocking.
func (s *Server) streamFinished(ns *netStream) {
	s.mu.Lock()
	t := s.tenants[ns.tenant]
	s.mu.Unlock()
	if t != nil {
		t.releaseStream()
	}
	if c := ns.attachedConn(); c != nil {
		c.trySend(AppendDrain(s.getBuf(), "finished"))
		c.close(false)
	}
}

// slowEvict drops a connection whose outbox filled: it cannot keep up
// with its own verdict stream, and an unbounded queue would let one
// slow reader hold server memory hostage.
func (s *Server) slowEvict(c *conn) {
	if c.evicted.CompareAndSwap(false, true) {
		s.slowReaders.Add(1)
		s.connsEvicted.Add(1)
		s.logf("ingest: evicting %s: slow reader (outbox full)", c.name())
		c.close(true)
	}
}

// conn is one TCP connection's state: the reader loop runs in
// handleConn, a writer goroutine coalesces and flushes everything
// outbound, and done coordinates shutdown without ever closing out
// (senders race detach).
//
// Outbound traffic splits into two bounded queues the writer drains
// per wakeup: verdicts land in vq as structs (the writer encodes them,
// batched when negotiated) and control frames (SHED, RETRY, DRAIN,
// ERROR) ride out pre-framed. Either queue filling means the client
// cannot keep up with its own verdict stream — vq-full evicts exactly
// like the old outbox-full path.
type conn struct {
	srv  *Server
	nc   net.Conn
	ns   *netStream
	ten  *tenant
	out  chan []byte
	wake chan struct{}
	done chan struct{}

	// batch is the HELLO-negotiated capability: this client parses
	// SAMPLE_BATCH/VERDICT_BATCH frames (protocol v2+).
	batch bool

	vmu         sync.Mutex
	vq          []Verdict // verdict ring buffer, capacity == OutboxDepth
	vqHead, vqN int
	vscratch    []Verdict // writer-owned drain scratch, capacity == len(vq)

	closeOnce sync.Once
	evicted   atomic.Bool
}

func (c *conn) name() string {
	if c.ns != nil {
		return c.ns.key
	}
	return c.nc.RemoteAddr().String()
}

// close shuts the connection down. hard closes the socket immediately
// (evictions); soft lets the writer flush queued frames first (the
// DRAIN-on-finish path), after which it closes the socket itself.
func (c *conn) close(hard bool) {
	c.closeOnce.Do(func() { close(c.done) })
	if hard {
		c.nc.Close()
	}
}

// sendVerdict queues one verdict for the writer to encode, evicting
// the connection when the verdict queue is full (slow verdict reader —
// the same bound the pre-batching outbox enforced).
func (c *conn) sendVerdict(v Verdict) bool {
	c.vmu.Lock()
	if c.vqN == len(c.vq) {
		c.vmu.Unlock()
		c.srv.slowEvict(c)
		return false
	}
	c.vq[(c.vqHead+c.vqN)%len(c.vq)] = v
	c.vqN++
	c.vmu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	return true
}

// takeVerdicts drains the verdict queue into the writer's scratch
// slice (writer goroutine only; scratch capacity equals the queue's,
// so one call empties it).
func (c *conn) takeVerdicts() []Verdict {
	c.vmu.Lock()
	vs := c.vscratch[:0]
	for c.vqN > 0 {
		vs = append(vs, c.vq[c.vqHead])
		c.vqHead = (c.vqHead + 1) % len(c.vq)
		c.vqN--
	}
	c.vmu.Unlock()
	return vs
}

// trySend queues a control frame best-effort: dropped (not evicting)
// when the outbox is full, so shed/retry notices under storm conditions
// cannot amplify into eviction churn.
func (c *conn) trySend(f []byte) bool {
	select {
	case c.out <- f:
		select {
		case c.wake <- struct{}{}:
		default:
		}
		return true
	case <-c.done:
		c.srv.putBuf(f)
		return false
	default:
		c.srv.putBuf(f)
		return false
	}
}

// writeNow writes one frame synchronously — handshake replies, before
// the writer goroutine exists.
func (c *conn) writeNow(f []byte) error {
	defer c.srv.putBuf(f)
	if err := c.nc.SetWriteDeadline(c.srv.now().Add(c.srv.cfg.writeTimeout())); err != nil {
		return err
	}
	c.srv.writeCalls.Add(1)
	_, err := c.nc.Write(f)
	return err
}

// appendVerdicts encodes drained verdicts into buf: one VERDICT_BATCH
// per VerdictBatchLimit records on batching connections with more than
// one pending, single VERDICT frames otherwise (the only shape
// protocol-v1 clients parse).
func (c *conn) appendVerdicts(buf []byte, vs []Verdict) []byte {
	for len(vs) > 0 {
		if c.batch && len(vs) > 1 {
			n := len(vs)
			if n > VerdictBatchLimit {
				n = VerdictBatchLimit
			}
			buf = AppendVerdictBatch(buf, vs[:n])
			c.srv.verdictBatches.Add(1)
			vs = vs[n:]
			continue
		}
		buf = AppendVerdict(buf, vs[0])
		vs = vs[1:]
	}
	return buf
}

// gather coalesces everything currently outbound into buf: queued
// verdicts first (encoded, batched when negotiated), then every
// control frame waiting in the outbox. Verdicts-first matters — a
// DRAIN("finished") queued after a stream's last verdict must never
// overtake it onto the wire.
func (c *conn) gather(buf []byte) []byte {
	buf = c.appendVerdicts(buf, c.takeVerdicts())
	for {
		select {
		case f := <-c.out:
			buf = append(buf, f...)
			c.srv.putBuf(f)
		default:
			return buf
		}
	}
}

// flush writes the coalesced buffer with one deadline and one Write
// call. A deadline or write failure closes the socket and reports
// false (the writer exits).
func (c *conn) flush(buf []byte) bool {
	if err := c.nc.SetWriteDeadline(c.srv.now().Add(c.srv.cfg.writeTimeout())); err != nil {
		c.nc.Close()
		return false
	}
	c.srv.writeCalls.Add(1)
	if _, err := c.nc.Write(buf); err != nil {
		c.nc.Close()
		return false
	}
	return true
}

// writer coalesces outbound traffic: each wakeup greedily drains the
// verdict queue and the control outbox into one buffer and flushes it
// with a single SetWriteDeadline + Write — wire cost O(flush), not
// O(frame). On done it flushes whatever is queued (soft close: a
// partially coalesced buffer still reaches the client), then closes
// the socket.
func (c *conn) writer() {
	wbuf := make([]byte, 0, 4096)
	for {
		select {
		case <-c.wake:
		case f := <-c.out:
			// Verdicts queued before this control frame must hit the
			// wire first (see gather).
			wbuf = c.appendVerdicts(wbuf[:0], c.takeVerdicts())
			wbuf = append(wbuf, f...)
			c.srv.putBuf(f)
			wbuf = c.gather(wbuf)
			if !c.flush(wbuf) {
				return
			}
			continue
		case <-c.done:
			for {
				wbuf = c.gather(wbuf[:0])
				if len(wbuf) == 0 {
					c.nc.Close()
					return
				}
				if !c.flush(wbuf) {
					return
				}
			}
		}
		wbuf = c.gather(wbuf[:0])
		if len(wbuf) == 0 {
			continue
		}
		if !c.flush(wbuf) {
			return
		}
	}
}

// handleConn owns one connection end to end: handshake, admission,
// read loop, cleanup.
func (s *Server) handleConn(nc net.Conn) {
	s.connsAccepted.Add(1)
	depth := s.cfg.outboxDepth()
	c := &conn{
		srv:      s,
		nc:       nc,
		out:      make(chan []byte, depth),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		vq:       make([]Verdict, depth),
		vscratch: make([]Verdict, 0, depth),
	}

	if n := s.connCount.Add(1); n > int64(s.cfg.maxConns()) {
		s.connCount.Add(-1)
		s.capRejects.Add(1)
		c.writeNow(AppendRetry(s.getBuf(), Retry{AfterMillis: s.cfg.retryMillis(), Reason: "server connection limit"}))
		nc.Close()
		return
	}
	defer s.connCount.Add(-1)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	admitted := false
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		if c.ns != nil {
			c.ns.detach(c)
		}
		if c.ten != nil {
			c.ten.releaseConn()
		}
		// Soft close: the writer flushes queued frames (an ERROR notice
		// racing an eviction must still reach the client) and then
		// closes the socket itself. With no writer started yet, close
		// directly.
		c.close(false)
		if !admitted {
			nc.Close()
		}
	}()

	br := bufio.NewReaderSize(nc, 4096)
	if !s.handshake(c, br) {
		return
	}

	admitted = true
	go c.writer()
	s.readLoop(c, br)
}

// handshake reads and answers the HELLO, performing every admission
// check. It reports whether the connection was admitted (reader loop
// should start).
func (s *Server) handshake(c *conn, br *bufio.Reader) bool {
	nc := c.nc
	nc.SetReadDeadline(s.now().Add(s.cfg.helloTimeout()))
	typ, body, _, err := ReadFrame(br, MaxFrameBytes, nil)
	if err != nil {
		s.wireErrors.Add(1)
		s.logf("ingest: %s: handshake read: %v", nc.RemoteAddr(), err)
		return false
	}
	if typ != FrameHello {
		s.protoErrors.Add(1)
		c.writeNow(AppendError(s.getBuf(), "expected HELLO"))
		return false
	}
	h, err := ParseHello(body)
	if err != nil {
		s.protoErrors.Add(1)
		c.writeNow(AppendError(s.getBuf(), err.Error()))
		return false
	}
	// Negotiate batch framing: protocol v2+ clients parse (and may
	// send) batch frames; v1 clients get the legacy single-frame wire
	// format end to end.
	c.batch = h.Version >= 2

	if s.draining.Load() {
		s.drainRejects.Add(1)
		c.writeNow(AppendDrain(s.getBuf(), "draining"))
		return false
	}
	if h.Width != s.cfg.Width {
		s.widthRejects.Add(1)
		c.writeNow(AppendError(s.getBuf(), fmt.Sprintf("width %d, serving chain wants %d", h.Width, s.cfg.Width)))
		return false
	}

	s.mu.Lock()
	t := s.tenants[h.Tenant]
	if t == nil {
		t = newTenant(h.Tenant, s.quotaOf(h.Tenant), s.now)
		s.tenants[h.Tenant] = t
	}
	s.mu.Unlock()
	if !t.admitConn() {
		c.writeNow(AppendRetry(s.getBuf(), Retry{AfterMillis: s.cfg.retryMillis(), Reason: "tenant connection limit"}))
		return false
	}
	c.ten = t

	key := h.Tenant + "/" + h.Stream
	s.mu.Lock()
	ns := s.streams[key]
	s.mu.Unlock()

	if ns != nil {
		// Re-attach: the stream survived a disconnect (or another
		// connection claims it — latest wins). Not charged against the
		// admission bucket.
		if ns.finished.Load() {
			c.writeNow(AppendError(s.getBuf(), "stream finished (IDs are not reusable)"))
			return false
		}
		resume, old := ns.attach(c)
		if old != nil {
			old.evicted.Store(true)
			s.connsEvicted.Add(1)
			old.close(true)
		}
		c.ns = ns
		s.reattaches.Add(1)
		if err := c.writeNow(AppendHelloOK(s.getBuf(), HelloOK{Resume: int(resume), Window: s.cfg.window(), Width: s.cfg.Width, Batching: c.batch})); err != nil {
			return false
		}
		return true
	}

	// New stream: honour cluster placement before charging any quota.
	// Re-attaches above bypass this on purpose — a live local stream is
	// served until the cluster drains or fails this node over.
	if s.cfg.Placement != nil {
		if addr, local := s.cfg.Placement(key); !local {
			s.redirects.Add(1)
			c.writeNow(AppendRedirect(s.getBuf(), Redirect{Addr: addr, Reason: "stream placement"}))
			return false
		}
	}

	ok, overRate := t.admitStream()
	if !ok {
		reason := "tenant stream limit"
		if overRate {
			reason = "tenant admission rate"
		}
		c.writeNow(AppendRetry(s.getBuf(), Retry{AfterMillis: s.cfg.retryMillis(), Reason: reason}))
		return false
	}

	ns = newNetStream(s, h.Tenant, h.Stream, s.cfg.Width, s.cfg.window())
	// A checkpointed chain state waiting under this ID fixes the resume
	// position: the client continues the verdict timeline where the
	// previous process left it.
	if iv, restored := s.eng.RestoredInterval(key); restored {
		ns.nextSeq = uint32(iv)
	}
	err = s.eng.Add(fleet.StreamConfig{
		ID:        key,
		Source:    ns,
		Intervals: h.Horizon,
		OnVerdict: ns.onVerdict,
		OnFinish:  ns.onFinish,
	})
	if err != nil {
		t.releaseStream()
		switch {
		case errors.Is(err, fleet.ErrDraining):
			s.drainRejects.Add(1)
			c.writeNow(AppendDrain(s.getBuf(), "draining"))
		default:
			s.protoErrors.Add(1)
			c.writeNow(AppendError(s.getBuf(), err.Error()))
		}
		return false
	}
	resume, _ := ns.attach(c)
	c.ns = ns
	s.mu.Lock()
	s.streams[key] = ns
	s.mu.Unlock()
	s.admissions.Add(1)
	if err := c.writeNow(AppendHelloOK(s.getBuf(), HelloOK{Resume: int(resume), Window: s.cfg.window(), Width: s.cfg.Width, Batching: c.batch})); err != nil {
		return false
	}
	return true
}

// readLoop pumps frames until disconnect or eviction. Every frame must
// arrive whole within ReadTimeout; wire damage of any kind evicts the
// connection (the framing layer cannot be trusted after a desync) but
// never the stream.
func (s *Server) readLoop(c *conn, br *bufio.Reader) {
	ns := c.ns
	t := c.ten
	var (
		rbuf []byte
		vbuf = make([]uint64, s.cfg.Width)
	)
	for {
		c.nc.SetReadDeadline(s.now().Add(s.cfg.readTimeout()))
		typ, body, nbuf, err := ReadFrame(br, MaxFrameBytes, rbuf)
		rbuf = nbuf
		if err != nil {
			var ne net.Error
			switch {
			case errors.As(err, &ne) && ne.Timeout():
				s.slowloris.Add(1)
				s.connsEvicted.Add(1)
				s.logf("ingest: evicting %s: no complete frame within %v", c.name(), s.cfg.readTimeout())
			case errors.Is(err, ErrChecksum), errors.Is(err, ErrBadFrame), errors.Is(err, ErrFrameTooBig):
				s.wireErrors.Add(1)
				s.connsEvicted.Add(1)
				c.trySend(AppendError(s.getBuf(), err.Error()))
				s.logf("ingest: evicting %s: %v", c.name(), err)
			default:
				// EOF / reset / torn frame: plain disconnect. The stream
				// stays; the client may re-attach.
				if !errors.Is(err, net.ErrClosed) {
					s.logf("ingest: %s disconnected: %v", c.name(), err)
				}
			}
			c.close(false)
			return
		}
		switch typ {
		case FrameSample:
			seq, vals, perr := ParseSampleInto(body, s.cfg.Width, vbuf)
			if perr != nil {
				s.wireErrors.Add(1)
				s.connsEvicted.Add(1)
				c.trySend(AppendError(s.getBuf(), perr.Error()))
				c.close(false)
				return
			}
			if !t.admitSample() {
				ns.throttled.Add(1)
				c.trySend(AppendRetry(s.getBuf(), Retry{AfterMillis: s.cfg.retryMillis(), Reason: "tenant sample rate"}))
				continue
			}
			if res := ns.admit(seq, vals); res.shed {
				c.trySend(AppendShed(s.getBuf(), Shed{Count: 1, LastSeq: res.shedSeq}))
			}
		case FrameSampleBatch:
			if !c.batch {
				s.protoErrors.Add(1)
				c.trySend(AppendError(s.getBuf(), "batch framing not negotiated (HELLO version < 2)"))
				c.close(false)
				return
			}
			it, perr := ParseSampleBatch(body, s.cfg.Width)
			if perr != nil {
				s.wireErrors.Add(1)
				s.connsEvicted.Add(1)
				c.trySend(AppendError(s.getBuf(), perr.Error()))
				c.close(false)
				return
			}
			s.sampleBatches.Add(1)
			// Per-record admission matches the single-frame path exactly;
			// shed and throttle notices aggregate to one frame per batch
			// so notice traffic stays O(batch) too.
			var (
				shed      Shed
				throttled int
			)
			for {
				seq, vals, ok := it.Next(vbuf)
				if !ok {
					break
				}
				if !t.admitSample() {
					ns.throttled.Add(1)
					throttled++
					continue
				}
				if res := ns.admit(seq, vals); res.shed {
					shed.Count++
					shed.LastSeq = res.shedSeq
				}
			}
			if throttled > 0 {
				c.trySend(AppendRetry(s.getBuf(), Retry{AfterMillis: s.cfg.retryMillis(), Reason: "tenant sample rate"}))
			}
			if shed.Count > 0 {
				c.trySend(AppendShed(s.getBuf(), shed))
			}
		case FrameBye:
			// Clean end of stream: buffered samples still score; the
			// engine's finish path sends DRAIN("finished") and closes.
			ns.ring.Close()
		case FrameHello:
			s.protoErrors.Add(1)
			c.trySend(AppendError(s.getBuf(), "duplicate HELLO"))
			c.close(false)
			return
		default:
			s.protoErrors.Add(1)
			c.trySend(AppendError(s.getBuf(), fmt.Sprintf("unexpected frame type 0x%02x", typ)))
			c.close(false)
			return
		}
	}
}

// Stats is a point-in-time snapshot of the ingest plane.
type Stats struct {
	Draining bool
	// Conns is the current connection count; Streams how many streams
	// the server has ever admitted (finished ones included).
	Conns   int
	Streams int

	ConnsAccepted       int64
	ConnsEvicted        int64
	SlowlorisEvictions  int64
	SlowReaderEvictions int64
	WireErrors          int64
	ProtoErrors         int64

	Admissions   int64
	Reattaches   int64
	DrainRejects int64
	WidthRejects int64
	CapRejects   int64
	Redirects    int64

	SamplesAccepted  int64
	SamplesDup       int64
	SamplesThrottled int64
	SamplesShed      int64

	Verdicts            int64
	VerdictsAttributed  int64
	VerdictsHeld        int64
	VerdictsUndelivered int64

	// WriteSyscalls counts socket Write invocations (coalesced flushes
	// and handshake replies); with batch framing it amortizes to a
	// small fraction of a call per sample. SampleBatches/VerdictBatches
	// count batch frames decoded/emitted.
	WriteSyscalls  int64
	SampleBatches  int64
	VerdictBatches int64

	Tenants   []TenantStats
	PerStream []StreamStats `json:",omitempty"`
}

// StatsSnapshot builds the snapshot; includeStreams adds the O(streams)
// per-stream breakdown.
func (s *Server) StatsSnapshot(includeStreams bool) Stats {
	st := Stats{
		Draining:            s.draining.Load(),
		Conns:               int(s.connCount.Load()),
		ConnsAccepted:       s.connsAccepted.Load(),
		ConnsEvicted:        s.connsEvicted.Load(),
		SlowlorisEvictions:  s.slowloris.Load(),
		SlowReaderEvictions: s.slowReaders.Load(),
		WireErrors:          s.wireErrors.Load(),
		ProtoErrors:         s.protoErrors.Load(),
		Admissions:          s.admissions.Load(),
		Reattaches:          s.reattaches.Load(),
		DrainRejects:        s.drainRejects.Load(),
		WidthRejects:        s.widthRejects.Load(),
		CapRejects:          s.capRejects.Load(),
		Redirects:           s.redirects.Load(),
		WriteSyscalls:       s.writeCalls.Load(),
		SampleBatches:       s.sampleBatches.Load(),
		VerdictBatches:      s.verdictBatches.Load(),
	}
	s.mu.Lock()
	st.Streams = len(s.streams)
	streams := make([]*netStream, 0, len(s.streams))
	for _, ns := range s.streams {
		streams = append(streams, ns)
	}
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()
	for _, ns := range streams {
		ss := ns.stats()
		st.SamplesAccepted += ss.Accepted
		st.SamplesDup += ss.Dups
		st.SamplesThrottled += ss.Throttled
		st.SamplesShed += ss.RingShed
		st.Verdicts += ss.Verdicts
		st.VerdictsAttributed += ss.Attributed
		st.VerdictsHeld += ss.Held
		st.VerdictsUndelivered += ss.Undelivered
		if includeStreams {
			st.PerStream = append(st.PerStream, ss)
		}
	}
	for _, t := range tenants {
		st.Tenants = append(st.Tenants, t.stats())
	}
	return st
}

// NodeStatsSnapshot condenses the server's counters into the compact
// per-node aggregate that cluster heartbeats carry.
func (s *Server) NodeStatsSnapshot() NodeStats {
	st := s.StatsSnapshot(false)
	return NodeStats{
		Streams:    uint64(st.Streams),
		Accepted:   uint64(st.SamplesAccepted),
		Shed:       uint64(st.SamplesShed),
		Verdicts:   uint64(st.Verdicts),
		Attributed: uint64(st.VerdictsAttributed),
		Held:       uint64(st.VerdictsHeld),
	}
}

// Stream returns the netStream for tenant/name, if admitted.
func (s *Server) stream(tenant, name string) *netStream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[tenant+"/"+name]
}
