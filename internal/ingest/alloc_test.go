package ingest

import (
	"testing"
)

// TestBatchPathZeroAlloc gates the steady-state wire path at zero
// allocations per sample, batch framing included: encoding into a
// recycled buffer and decoding through the record iterators must never
// touch the heap once buffers are warm. This is the ingest counterpart
// of the fleet/core AllocsPerRun gates.
func TestBatchPathZeroAlloc(t *testing.T) {
	const width = 4
	const n = 32
	seqs := make([]uint32, n)
	vals := make([]uint64, n*width)
	for i := range seqs {
		seqs[i] = uint32(i)
	}
	for i := range vals {
		vals[i] = uint64(i) * 3
	}
	verdicts := make([]Verdict, n)
	for i := range verdicts {
		verdicts[i] = Verdict{Seq: uint32(i), Interval: uint32(i), Score: 0.5}
	}

	wbuf := make([]byte, 0, MaxFrameBytes)
	vbuf := make([]uint64, width)

	if a := testing.AllocsPerRun(100, func() {
		wbuf = AppendSample(wbuf[:0], 7, vals[:width])
	}); a != 0 {
		t.Errorf("AppendSample: %.1f allocs/op, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		wbuf = AppendSampleBatch(wbuf[:0], seqs, vals, width)
	}); a != 0 {
		t.Errorf("AppendSampleBatch: %.1f allocs/op, want 0", a)
	}

	wbuf = AppendSampleBatch(wbuf[:0], seqs, vals, width)
	body := wbuf[headerSize : len(wbuf)-crcSize]
	if a := testing.AllocsPerRun(100, func() {
		it, err := ParseSampleBatch(body, width)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, _, ok := it.Next(vbuf); !ok {
				break
			}
		}
	}); a != 0 {
		t.Errorf("sample batch decode: %.1f allocs/op, want 0", a)
	}

	if a := testing.AllocsPerRun(100, func() {
		wbuf = AppendVerdictBatch(wbuf[:0], verdicts)
	}); a != 0 {
		t.Errorf("AppendVerdictBatch: %.1f allocs/op, want 0", a)
	}
	wbuf = AppendVerdictBatch(wbuf[:0], verdicts)
	body = wbuf[headerSize : len(wbuf)-crcSize]
	if a := testing.AllocsPerRun(100, func() {
		it, err := ParseVerdictBatch(body)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	}); a != 0 {
		t.Errorf("verdict batch decode: %.1f allocs/op, want 0", a)
	}
}
