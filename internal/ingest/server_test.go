package ingest

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/micro"
	"repro/internal/supervise"
)

// stubModel is a fixed-score classifier (mirrors the fleet tests):
// enough to exercise the serving path without training anything.
type stubModel struct{ score float64 }

func (m stubModel) Distribution(x []float64) []float64 {
	return []float64{1 - m.score, m.score}
}

func (m stubModel) DistributionInto(x []float64, out []float64) {
	out[0], out[1] = 1-m.score, m.score
}

func stubChainFactory() func() (*core.FallbackChain, error) {
	return func() (*core.FallbackChain, error) {
		evs := micro.AllEvents()
		d4 := &core.Detector{BaseName: "Stub", Events: evs[:4], Model: stubModel{score: 0.8}}
		d2 := &core.Detector{BaseName: "Stub", Events: evs[:2], Model: stubModel{score: 0.6}}
		return core.NewFallbackChain([]*core.Detector{d4, d2},
			core.ChainConfig{Window: 3, PriorScore: 0.3})
	}
}

const testWidth = 4

// harness wires a stub fleet engine to a loopback ingest server.
type harness struct {
	t    *testing.T
	eng  *fleet.Engine
	srv  *Server
	addr string
	stop context.CancelFunc
	run  chan error
}

func startHarness(t *testing.T, mut func(*fleet.Config, *Config)) *harness {
	t.Helper()
	fcfg := fleet.Config{
		NewChain:   stubChainFactory(),
		Shards:     2,
		WheelSlots: 4,
		Interval:   2 * time.Millisecond,
		Policy:     supervise.Block,
	}
	scfg := Config{
		Width:        testWidth,
		HelloTimeout: 2 * time.Second,
		ReadTimeout:  2 * time.Second,
	}
	if mut != nil {
		mut(&fcfg, &scfg)
	}
	eng, err := fleet.New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg.Engine = eng
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	ctx, cancel := context.WithCancel(context.Background())
	h := &harness{t: t, eng: eng, srv: srv, addr: ln.Addr().String(), stop: cancel, run: make(chan error, 1)}
	go func() { h.run <- eng.Run(ctx) }()
	t.Cleanup(func() {
		srv.Close()
		cancel()
		<-h.run
	})
	return h
}

func sampleVals(seq uint32) []uint64 {
	return []uint64{uint64(seq)*4 + 1, uint64(seq)*4 + 2, uint64(seq)*4 + 3, uint64(seq)*4 + 4}
}

func dialStream(t *testing.T, addr, tenant, stream string, horizon int) *Client {
	t.Helper()
	c, err := Dial(ClientConfig{
		Addr:  addr,
		Hello: Hello{Width: testWidth, Horizon: horizon, Tenant: tenant, Stream: stream},
	})
	if err != nil {
		t.Fatalf("dial %s/%s: %v", tenant, stream, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// collectVerdicts reads events until n verdicts arrived (tolerating
// interleaved shed/retry notices) or the client times out.
func collectVerdicts(t *testing.T, c *Client, n int) []Verdict {
	t.Helper()
	var out []Verdict
	for len(out) < n {
		ev, err := c.Next()
		if err != nil {
			t.Fatalf("after %d/%d verdicts: %v", len(out), n, err)
		}
		if ev.Type == FrameVerdict {
			out = append(out, ev.Verdict)
		}
	}
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestIngestRoundTrip(t *testing.T) {
	h := startHarness(t, nil)
	const n = 10
	c := dialStream(t, h.addr, "acme", "s0", n)
	if c.Admitted.Resume != 0 || c.Admitted.Width != testWidth {
		t.Fatalf("admitted %+v", c.Admitted)
	}
	for seq := uint32(0); seq < n; seq++ {
		if err := c.Send(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	vs := collectVerdicts(t, c, n)
	for i, v := range vs {
		if v.Seq != uint32(i) || v.Interval != uint32(i) {
			t.Fatalf("verdict %d: seq %d interval %d", i, v.Seq, v.Interval)
		}
	}
	// Horizon reached: the server announces the finished stream.
	waitForDrain(t, c, "finished")

	st := h.srv.StatsSnapshot(true)
	if st.SamplesAccepted != n || st.VerdictsAttributed != n || st.SamplesShed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func waitForDrain(t *testing.T, c *Client, want string) {
	t.Helper()
	for {
		ev, err := c.Next()
		if err != nil {
			t.Fatalf("waiting for DRAIN %q: %v", want, err)
		}
		if ev.Type == FrameDrain && ev.Reason == want {
			return
		}
	}
}

func TestIngestByeFlushesThenFinishes(t *testing.T) {
	h := startHarness(t, nil)
	c := dialStream(t, h.addr, "acme", "s0", 0)
	for seq := uint32(0); seq < 5; seq++ {
		if err := c.Send(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Bye(); err != nil {
		t.Fatal(err)
	}
	// Every buffered sample still scores before the finish notice.
	vs := collectVerdicts(t, c, 5)
	if vs[4].Seq != 4 {
		t.Fatalf("last verdict %+v", vs[4])
	}
	waitForDrain(t, c, "finished")
	waitFor(t, "stream finished", func() bool {
		return h.srv.stream("acme", "s0").finished.Load()
	})
}

func TestIngestReattachResumes(t *testing.T) {
	h := startHarness(t, nil)
	c1 := dialStream(t, h.addr, "acme", "s0", 0)
	for seq := uint32(0); seq < 5; seq++ {
		if err := c1.Send(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	collectVerdicts(t, c1, 5)
	c1.Close() // crash, no BYE

	c2 := dialStream(t, h.addr, "acme", "s0", 0)
	if c2.Admitted.Resume != 5 {
		t.Fatalf("resume %d, want 5 (server's authoritative position)", c2.Admitted.Resume)
	}
	for seq := uint32(5); seq < 10; seq++ {
		if err := c2.Send(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	vs := collectVerdicts(t, c2, 5)
	for i, v := range vs {
		if v.Seq != uint32(5+i) || v.Interval != uint32(5+i) {
			t.Fatalf("post-reattach verdict %d: %+v", i, v)
		}
	}
	if st := h.srv.StatsSnapshot(false); st.Reattaches != 1 {
		t.Fatalf("reattaches %d", st.Reattaches)
	}
}

func TestIngestTornFrameThenReconnect(t *testing.T) {
	h := startHarness(t, nil)
	c1 := dialStream(t, h.addr, "acme", "s0", 0)
	if err := c1.Send(0, sampleVals(0)); err != nil {
		t.Fatal(err)
	}
	collectVerdicts(t, c1, 1)

	// Arm a truncate-everything injector: the next send tears the frame
	// mid-write and hangs up, like a client crash.
	c1.cfg.Injector = faults.WirePlan{Seed: 7, Rate: 1, Kinds: []faults.WireKind{faults.TruncateFrame}}.ForConn("t/s0/c1")
	if err := c1.Send(1, sampleVals(1)); !errors.Is(err, ErrConnDropped) {
		t.Fatalf("torn send: %v", err)
	}

	// The stream survived; the torn sample was never admitted, so the
	// server tells the reconnecting client to resend from 1.
	c2 := dialStream(t, h.addr, "acme", "s0", 0)
	if c2.Admitted.Resume != 1 {
		t.Fatalf("resume %d, want 1", c2.Admitted.Resume)
	}
	if err := c2.Send(1, sampleVals(1)); err != nil {
		t.Fatal(err)
	}
	vs := collectVerdicts(t, c2, 1)
	if vs[0].Seq != 1 || vs[0].Interval != 1 {
		t.Fatalf("verdict after reconnect: %+v", vs[0])
	}
}

func TestIngestCorruptFrameEvictsConnNotStream(t *testing.T) {
	h := startHarness(t, nil)
	c1 := dialStream(t, h.addr, "acme", "s0", 0)
	if err := c1.Send(0, sampleVals(0)); err != nil {
		t.Fatal(err)
	}
	collectVerdicts(t, c1, 1)

	// Hand-craft a frame whose CRC is stomped (payload damage only, so
	// the framing stays parseable and the checksum is what catches it).
	bad := AppendSample(nil, 1, sampleVals(1))
	bad[len(bad)-6] ^= 0x01
	if _, err := c1.nc.Write(bad); err != nil {
		t.Fatal(err)
	}
	// The server answers with ERROR and evicts the connection.
	sawError := false
	for {
		ev, err := c1.Next()
		if err != nil {
			break
		}
		if ev.Type == FrameError {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("no ERROR frame before eviction")
	}
	waitFor(t, "wire error accounted", func() bool {
		return h.srv.StatsSnapshot(false).WireErrors >= 1
	})

	c2 := dialStream(t, h.addr, "acme", "s0", 0)
	if c2.Admitted.Resume != 1 {
		t.Fatalf("resume %d, want 1 (corrupt sample must not be admitted)", c2.Admitted.Resume)
	}
}

func TestIngestSlowlorisEviction(t *testing.T) {
	h := startHarness(t, func(fc *fleet.Config, sc *Config) {
		sc.ReadTimeout = 100 * time.Millisecond
	})
	c := dialStream(t, h.addr, "acme", "s0", 0)
	// Trickle half a frame and stall. A server without per-frame read
	// deadlines would pin this connection forever.
	frame := AppendSample(nil, 0, sampleVals(0))
	if _, err := c.nc.Write(frame[:5]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "slowloris eviction", func() bool {
		return h.srv.StatsSnapshot(false).SlowlorisEvictions >= 1
	})
	// The eviction closed the socket under the client.
	c.nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := bufio.NewReader(c.nc).ReadByte(); err == nil {
		t.Fatal("connection still open after slowloris eviction")
	}
}

func TestIngestQuotas(t *testing.T) {
	h := startHarness(t, func(fc *fleet.Config, sc *Config) {
		sc.TenantQuotas = map[string]Quotas{
			"caps":  {MaxStreams: 1},
			"small": {MaxStreams: 2, MaxConns: 2},
		}
	})

	// Stream cap: a second stream for the tenant is told to back off.
	dialStream(t, h.addr, "caps", "s0", 0)
	_, err := Dial(ClientConfig{Addr: h.addr, Hello: Hello{Width: testWidth, Tenant: "caps", Stream: "s1"}})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Event.Type != FrameRetry {
		t.Fatalf("second stream: %v", err)
	}
	if rej.Event.Retry.AfterMillis == 0 || rej.Event.Retry.Reason != "tenant stream limit" {
		t.Fatalf("retry frame %+v", rej.Event.Retry)
	}

	// Other tenants are unaffected by caps's quota.
	dialStream(t, h.addr, "big", "s0", 0)

	// Conn cap: with both of small's slots held, a third concurrent
	// connection is refused before any stream logic runs.
	dialStream(t, h.addr, "small", "s0", 0)
	dialStream(t, h.addr, "small", "s1", 0)
	_, err = Dial(ClientConfig{Addr: h.addr, Hello: Hello{Width: testWidth, Tenant: "small", Stream: "s2"}})
	if !errors.As(err, &rej) || rej.Event.Type != FrameRetry || rej.Event.Retry.Reason != "tenant connection limit" {
		t.Fatalf("conn cap: %v", err)
	}
}

func TestIngestAdmissionRateQuota(t *testing.T) {
	h := startHarness(t, func(fc *fleet.Config, sc *Config) {
		sc.Quotas = Quotas{AdmitPerSec: 0.0001, AdmitBurst: 2}
	})
	dialStream(t, h.addr, "t", "s0", 0)
	dialStream(t, h.addr, "t", "s1", 0)
	_, err := Dial(ClientConfig{Addr: h.addr, Hello: Hello{Width: testWidth, Tenant: "t", Stream: "s2"}})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Event.Retry.Reason != "tenant admission rate" {
		t.Fatalf("admission storm: %v", err)
	}
	// Re-attaching an admitted stream is never charged against the
	// admission bucket: a reconnecting client must not be locked out.
	c, err := Dial(ClientConfig{Addr: h.addr, Hello: Hello{Width: testWidth, Tenant: "t", Stream: "s0"}})
	if err != nil {
		t.Fatalf("re-attach during admission storm: %v", err)
	}
	c.Close()
}

func TestIngestSampleThrottle(t *testing.T) {
	h := startHarness(t, func(fc *fleet.Config, sc *Config) {
		sc.Quotas = Quotas{SamplesPerSec: 0.0001, SampleBurst: 3}
	})
	c := dialStream(t, h.addr, "t", "s0", 0)
	for seq := uint32(0); seq < 10; seq++ {
		if err := c.Send(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Exactly the burst's worth of samples scores; the rest answered
	// with RETRY, not silently dropped.
	verdicts, retries := 0, 0
	for verdicts < 3 || retries == 0 {
		ev, err := c.Next()
		if err != nil {
			t.Fatalf("after %d verdicts, %d retries: %v", verdicts, retries, err)
		}
		switch {
		case ev.Type == FrameVerdict:
			verdicts++
		case ev.Type == FrameRetry && ev.Retry.Reason == "tenant sample rate":
			retries++
		}
	}
	waitFor(t, "throttle accounting", func() bool {
		st := h.srv.StatsSnapshot(false)
		return st.SamplesThrottled == 7 && st.SamplesAccepted == 3
	})
}

func TestIngestShedIsExplicit(t *testing.T) {
	h := startHarness(t, func(fc *fleet.Config, sc *Config) {
		fc.Interval = 50 * time.Millisecond // slow wheel: the window fills
		sc.Window = 2
	})
	c := dialStream(t, h.addr, "t", "s0", 0)
	if c.Admitted.Window != 2 {
		t.Fatalf("window %d", c.Admitted.Window)
	}
	const n = 10
	for seq := uint32(0); seq < n; seq++ {
		if err := c.Send(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Overload must surface as SHED frames with exact drop accounting.
	var shed uint32
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := h.srv.stream("t", "s0").stats()
		if st.Pending == 0 && st.Accepted == n && st.Attributed+st.RingShed == n {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := h.srv.stream("t", "s0").stats()
	if st.RingShed == 0 {
		t.Fatal("no shed despite window overload")
	}
	if st.Attributed+st.RingShed != st.Accepted {
		t.Fatalf("accounting leak: attributed %d + shed %d != accepted %d", st.Attributed, st.RingShed, st.Accepted)
	}
	for {
		ev, err := c.Next()
		if err != nil {
			break
		}
		if ev.Type == FrameShed {
			shed += ev.Shed.Count
		}
		if int64(shed) == st.RingShed {
			break
		}
	}
	if int64(shed) != st.RingShed {
		t.Fatalf("client saw %d shed, server dropped %d", shed, st.RingShed)
	}
}

func TestIngestWidthMismatchRejected(t *testing.T) {
	h := startHarness(t, nil)
	_, err := Dial(ClientConfig{Addr: h.addr, Hello: Hello{Width: 2, Tenant: "t", Stream: "s0"}})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Event.Type != FrameError {
		t.Fatalf("width mismatch: %v", err)
	}
}

func TestIngestDrainRefusesAndFinishes(t *testing.T) {
	dir := t.TempDir()
	store, err := core.NewCheckpointStore(dir, "fleet", fleet.StateVersion)
	if err != nil {
		t.Fatal(err)
	}
	h := startHarness(t, func(fc *fleet.Config, sc *Config) {
		fc.Checkpoint = store
	})
	c := dialStream(t, h.addr, "t", "s0", 0)
	const n = 5
	for seq := uint32(0); seq < n; seq++ {
		if err := c.Send(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	collectVerdicts(t, c, n)

	h.srv.Drain("maintenance")
	// Attached clients are told; new admissions are refused with DRAIN.
	waitForDrain(t, c, "maintenance")
	_, err = Dial(ClientConfig{Addr: h.addr, Hello: Hello{Width: testWidth, Tenant: "t", Stream: "s1"}})
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Event.Type != FrameDrain {
		t.Fatalf("admission while draining: %v", err)
	}

	// The engine finishes every stream and Run returns nil — the
	// graceful exit that writes the final checkpoint.
	select {
	case rerr := <-h.run:
		if rerr != nil {
			t.Fatalf("drained Run: %v", rerr)
		}
		h.run <- nil // keep Cleanup's receive happy
	case <-time.After(5 * time.Second):
		t.Fatal("engine did not drain")
	}

	// A restarted process resumes the stream where the timeline ended.
	eng2, err := fleet.New(fleet.Config{
		NewChain:   stubChainFactory(),
		Shards:     2,
		WheelSlots: 4,
		Interval:   2 * time.Millisecond,
		Policy:     supervise.Block,
		Checkpoint: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng2.RestoreState(); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(Config{Engine: eng2, Width: testWidth})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln2)
	ctx2, cancel2 := context.WithCancel(context.Background())
	run2 := make(chan error, 1)
	go func() { run2 <- eng2.Run(ctx2) }()
	t.Cleanup(func() {
		srv2.Close()
		cancel2()
		<-run2
	})

	c2 := dialStream(t, ln2.Addr().String(), "t", "s0", 0)
	if c2.Admitted.Resume != n {
		t.Fatalf("post-restart resume %d, want %d", c2.Admitted.Resume, n)
	}
	for seq := uint32(n); seq < 2*n; seq++ {
		if err := c2.Send(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	vs := collectVerdicts(t, c2, n)

	// Bit-identity: the two-process timeline must match one unbroken
	// reference chain fed the same samples.
	ref, err := stubChainFactory()()
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint32(0); seq < 2*n; seq++ {
		v, err := ref.Observe(sampleVals(seq))
		if err != nil {
			t.Fatal(err)
		}
		if seq >= n {
			got := vs[seq-n]
			if got.Interval != uint32(v.Interval) || got.Score != v.Score || got.Malware != v.Malware {
				t.Fatalf("seq %d: got %+v, reference %+v", seq, got, v)
			}
		}
	}

	// IDs stay unique across the restart's engine, but the ingest plane
	// still refuses a finished stream's ID on the ORIGINAL server.
	if fmt.Sprint(rej) == "" {
		t.Fatal("unreachable")
	}
}
