package ingest

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func readOne(t *testing.T, wire []byte) (byte, []byte) {
	t.Helper()
	typ, body, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(wire)), 0, nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return typ, body
}

func TestFrameRoundTrips(t *testing.T) {
	t.Run("hello", func(t *testing.T) {
		in := Hello{Version: ProtoVersion, Width: 4, Horizon: 1000, Tenant: "acme", Stream: "web-7"}
		typ, body := readOne(t, AppendHello(nil, in))
		if typ != FrameHello {
			t.Fatalf("type %#x", typ)
		}
		got, err := ParseHello(body)
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("hello-ok", func(t *testing.T) {
		in := HelloOK{Resume: 12345, Window: 64, Width: 4}
		typ, body := readOne(t, AppendHelloOK(nil, in))
		if typ != FrameHelloOK {
			t.Fatalf("type %#x", typ)
		}
		got, err := ParseHelloOK(body)
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("sample", func(t *testing.T) {
		vals := []uint64{1, 1 << 40, math.MaxUint64, 0}
		typ, body := readOne(t, AppendSample(nil, 77, vals))
		if typ != FrameSample {
			t.Fatalf("type %#x", typ)
		}
		buf := make([]uint64, 4)
		seq, got, err := ParseSampleInto(body, 4, buf)
		if err != nil || seq != 77 {
			t.Fatalf("seq %d err %v", seq, err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("val %d: %d != %d", i, got[i], vals[i])
			}
		}
		if _, _, err := ParseSampleInto(body, 5, make([]uint64, 5)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("width mismatch must be ErrBadFrame, got %v", err)
		}
	})
	t.Run("verdict", func(t *testing.T) {
		in := Verdict{Seq: 9, Interval: 11, Score: 0.875, Malware: true}
		typ, body := readOne(t, AppendVerdict(nil, in))
		if typ != FrameVerdict {
			t.Fatalf("type %#x", typ)
		}
		got, err := ParseVerdict(body)
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("shed", func(t *testing.T) {
		in := Shed{Count: 3, LastSeq: 41}
		_, body := readOne(t, AppendShed(nil, in))
		got, err := ParseShed(body)
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("retry", func(t *testing.T) {
		in := Retry{AfterMillis: 1500, Reason: "tenant stream limit"}
		_, body := readOne(t, AppendRetry(nil, in))
		got, err := ParseRetry(body)
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("drain-error", func(t *testing.T) {
		_, body := readOne(t, AppendDrain(nil, "maintenance"))
		if r, err := ParseDrain(body); err != nil || r != "maintenance" {
			t.Fatalf("drain %q err %v", r, err)
		}
		_, body = readOne(t, AppendError(nil, "bad width"))
		if m, err := ParseError(body); err != nil || m != "bad width" {
			t.Fatalf("error %q err %v", m, err)
		}
	})
}

func TestBatchFrameRoundTrips(t *testing.T) {
	t.Run("sample-batch", func(t *testing.T) {
		const width = 4
		seqs := []uint32{10, 11, 12}
		vals := make([]uint64, len(seqs)*width)
		for i := range vals {
			vals[i] = uint64(i)*7 + 1
		}
		typ, body := readOne(t, AppendSampleBatch(nil, seqs, vals, width))
		if typ != FrameSampleBatch {
			t.Fatalf("type %#x", typ)
		}
		it, err := ParseSampleBatch(body, width)
		if err != nil {
			t.Fatal(err)
		}
		if it.Len() != len(seqs) {
			t.Fatalf("len %d, want %d", it.Len(), len(seqs))
		}
		buf := make([]uint64, width)
		for i, want := range seqs {
			seq, got, ok := it.Next(buf)
			if !ok || seq != want {
				t.Fatalf("record %d: seq %d ok %v, want %d", i, seq, ok, want)
			}
			for j := range got {
				if got[j] != vals[i*width+j] {
					t.Fatalf("record %d val %d: %d != %d", i, j, got[j], vals[i*width+j])
				}
			}
		}
		if _, _, ok := it.Next(buf); ok {
			t.Fatal("iterator yielded past its count")
		}
	})
	t.Run("verdict-batch", func(t *testing.T) {
		in := []Verdict{
			{Seq: 1, Interval: 1, Score: 0.25},
			{Seq: 2, Interval: 2, Score: 0.75, Malware: true},
			{Seq: 3, Interval: 5, Score: math.Inf(1)},
		}
		typ, body := readOne(t, AppendVerdictBatch(nil, in))
		if typ != FrameVerdictBatch {
			t.Fatalf("type %#x", typ)
		}
		it, err := ParseVerdictBatch(body)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range in {
			got, ok := it.Next()
			if !ok || got != want {
				t.Fatalf("record %d: %+v ok %v, want %+v", i, got, ok, want)
			}
		}
		if _, ok := it.Next(); ok {
			t.Fatal("iterator yielded past its count")
		}
	})
	t.Run("empty", func(t *testing.T) {
		_, body := readOne(t, AppendSampleBatch(nil, nil, nil, 4))
		if it, err := ParseSampleBatch(body, 4); err != nil || it.Len() != 0 {
			t.Fatalf("empty sample batch: len %d err %v", it.Len(), err)
		}
		_, body = readOne(t, AppendVerdictBatch(nil, nil))
		if it, err := ParseVerdictBatch(body); err != nil || it.Len() != 0 {
			t.Fatalf("empty verdict batch: len %d err %v", it.Len(), err)
		}
	})
}

func TestBatchParseRejects(t *testing.T) {
	// A count field promising more records than the body carries must
	// be rejected even though the frame CRC holds.
	overlong := []byte{0, 10, 0, 0, 0, 1}
	if _, err := ParseSampleBatch(overlong, 4); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("overlong sample count: got %v", err)
	}
	if _, err := ParseVerdictBatch(overlong); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("overlong verdict count: got %v", err)
	}
	// A body torn mid-record.
	full := AppendSampleBatch(nil, []uint32{1, 2}, []uint64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	body := full[headerSize : len(full)-crcSize]
	if _, err := ParseSampleBatch(body[:len(body)-5], 4); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("torn sample record: got %v", err)
	}
	// Width mismatch shifts every record boundary.
	if _, err := ParseSampleBatch(body, 5); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("width mismatch: got %v", err)
	}
	// A count beyond MaxBatchRecords, body sized to match.
	count := MaxBatchRecords + 1
	big := make([]byte, 2+count*12)
	big[0] = byte(count >> 8)
	big[1] = byte(count)
	if _, err := ParseSampleBatch(big, 1); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("count beyond MaxBatchRecords: got %v", err)
	}
}

func TestHelloOKBatchingFlag(t *testing.T) {
	// Legacy form: no flags byte, parses with Batching false.
	plain := AppendHelloOK(nil, HelloOK{Resume: 5, Window: 32, Width: 4})
	_, body := readOne(t, plain)
	if len(body) != 8 {
		t.Fatalf("non-batching HELLO_OK body %d bytes, want legacy 8", len(body))
	}
	got, err := ParseHelloOK(body)
	if err != nil || got.Batching {
		t.Fatalf("legacy parse: %+v err %v", got, err)
	}
	// Flagged form round-trips.
	in := HelloOK{Resume: 5, Window: 32, Width: 4, Batching: true}
	_, body = readOne(t, AppendHelloOK(nil, in))
	if len(body) != 9 {
		t.Fatalf("batching HELLO_OK body %d bytes, want 9", len(body))
	}
	if got, err = ParseHelloOK(body); err != nil || got != in {
		t.Fatalf("flagged parse: %+v err %v", got, err)
	}
}

func TestParseHelloVersions(t *testing.T) {
	for v := byte(ProtoVersionMin); v <= ProtoVersion; v++ {
		_, body := readOne(t, AppendHello(nil, Hello{Version: v, Width: 4, Tenant: "t", Stream: "s"}))
		if h, err := ParseHello(body); err != nil || h.Version != v {
			t.Fatalf("version %d: %+v err %v", v, h, err)
		}
	}
	_, body := readOne(t, AppendHello(nil, Hello{Version: ProtoVersion + 1, Width: 4, Tenant: "t", Stream: "s"}))
	if _, err := ParseHello(body); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("future version: got %v", err)
	}
}

func TestSampleBatchLimit(t *testing.T) {
	if got := SampleBatchLimit(4); got != MaxBatchRecords {
		t.Fatalf("width 4 limit %d, want %d", got, MaxBatchRecords)
	}
	// Very wide vectors shrink the limit to what fits one frame.
	limit := SampleBatchLimit(MaxWidth)
	if limit < 1 || limit*(4+8*MaxWidth)+2+crcSize > MaxFrameBytes {
		t.Fatalf("width %d limit %d does not fit a frame", MaxWidth, limit)
	}
}

func TestFrameChecksumRejectsDamage(t *testing.T) {
	wires := [][]byte{
		AppendSample(nil, 5, []uint64{1, 2, 3, 4}),
		// One CRC covers every record of a batch: damage anywhere in
		// the frame is detected exactly like single-frame damage.
		AppendSampleBatch(nil, []uint32{5, 6}, []uint64{1, 2, 3, 4, 5, 6, 7, 8}, 4),
		AppendVerdictBatch(nil, []Verdict{{Seq: 1, Interval: 1, Score: 0.5}, {Seq: 2, Interval: 2, Score: 1}}),
	}
	for wi, wire := range wires {
		for pos := 0; pos < len(wire); pos++ {
			bad := append([]byte(nil), wire...)
			bad[pos] ^= 0x40
			_, _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(bad)), 0, nil)
			if err == nil {
				t.Fatalf("wire %d: bit flip at byte %d went undetected", wi, pos)
			}
		}
	}
}

func TestFrameTornAndOversized(t *testing.T) {
	wire := AppendSample(nil, 5, []uint64{1, 2, 3, 4})
	for cut := 1; cut < len(wire); cut++ {
		_, _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(wire[:cut])), 0, nil)
		if err == nil {
			t.Fatalf("torn frame at %d/%d bytes went undetected", cut, len(wire))
		}
		if cut >= headerSize && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("torn payload should surface the underlying read error, got %v", err)
		}
	}

	huge := []byte{FrameSample, 0xFF, 0xFF, 0xFF}
	_, _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(huge)), 0, nil)
	if !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized length prefix: got %v", err)
	}

	runt := []byte{FrameBye, 0, 0, 2, 0, 0}
	_, _, _, err = ReadFrame(bufio.NewReader(bytes.NewReader(runt)), 0, nil)
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("sub-CRC payload: got %v", err)
	}
}

func TestParseHelloRejects(t *testing.T) {
	cases := map[string]Hello{
		"bad version":  {Version: 99, Width: 4, Tenant: "t", Stream: "s"},
		"zero width":   {Version: ProtoVersion, Width: 0, Tenant: "t", Stream: "s"},
		"empty tenant": {Version: ProtoVersion, Width: 4, Stream: "s"},
		"empty stream": {Version: ProtoVersion, Width: 4, Tenant: "t"},
	}
	for name, h := range cases {
		_, body := readOne(t, AppendHello(nil, h))
		if _, err := ParseHello(body); err == nil {
			t.Fatalf("%s: ParseHello accepted %+v", name, h)
		}
	}
	// Oversized width is rejected even though it fits the u16.
	_, body := readOne(t, AppendHello(nil, Hello{Version: ProtoVersion, Width: MaxWidth + 1, Tenant: "t", Stream: "s"}))
	if _, err := ParseHello(body); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("width beyond MaxWidth: got %v", err)
	}
}

func TestReadFrameBufferReuse(t *testing.T) {
	var wire []byte
	wire = AppendSample(wire, 1, []uint64{1, 2, 3, 4})
	wire = AppendSample(wire, 2, []uint64{5, 6, 7, 8})
	br := bufio.NewReader(bytes.NewReader(wire))
	_, _, buf, err := ReadFrame(br, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, body, buf2, err := ReadFrame(br, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &buf[0] != &buf2[0] {
		t.Fatal("equal-size frames should reuse the recycled buffer")
	}
	seq, _, err := ParseSampleInto(body, 4, make([]uint64, 4))
	if err != nil || seq != 2 {
		t.Fatalf("second frame: seq %d err %v", seq, err)
	}
}
