package ingest

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func readOne(t *testing.T, wire []byte) (byte, []byte) {
	t.Helper()
	typ, body, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(wire)), 0, nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return typ, body
}

func TestFrameRoundTrips(t *testing.T) {
	t.Run("hello", func(t *testing.T) {
		in := Hello{Version: ProtoVersion, Width: 4, Horizon: 1000, Tenant: "acme", Stream: "web-7"}
		typ, body := readOne(t, AppendHello(nil, in))
		if typ != FrameHello {
			t.Fatalf("type %#x", typ)
		}
		got, err := ParseHello(body)
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("hello-ok", func(t *testing.T) {
		in := HelloOK{Resume: 12345, Window: 64, Width: 4}
		typ, body := readOne(t, AppendHelloOK(nil, in))
		if typ != FrameHelloOK {
			t.Fatalf("type %#x", typ)
		}
		got, err := ParseHelloOK(body)
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("sample", func(t *testing.T) {
		vals := []uint64{1, 1 << 40, math.MaxUint64, 0}
		typ, body := readOne(t, AppendSample(nil, 77, vals))
		if typ != FrameSample {
			t.Fatalf("type %#x", typ)
		}
		buf := make([]uint64, 4)
		seq, got, err := ParseSampleInto(body, 4, buf)
		if err != nil || seq != 77 {
			t.Fatalf("seq %d err %v", seq, err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("val %d: %d != %d", i, got[i], vals[i])
			}
		}
		if _, _, err := ParseSampleInto(body, 5, make([]uint64, 5)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("width mismatch must be ErrBadFrame, got %v", err)
		}
	})
	t.Run("verdict", func(t *testing.T) {
		in := Verdict{Seq: 9, Interval: 11, Score: 0.875, Malware: true}
		typ, body := readOne(t, AppendVerdict(nil, in))
		if typ != FrameVerdict {
			t.Fatalf("type %#x", typ)
		}
		got, err := ParseVerdict(body)
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("shed", func(t *testing.T) {
		in := Shed{Count: 3, LastSeq: 41}
		_, body := readOne(t, AppendShed(nil, in))
		got, err := ParseShed(body)
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("retry", func(t *testing.T) {
		in := Retry{AfterMillis: 1500, Reason: "tenant stream limit"}
		_, body := readOne(t, AppendRetry(nil, in))
		got, err := ParseRetry(body)
		if err != nil || got != in {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("drain-error", func(t *testing.T) {
		_, body := readOne(t, AppendDrain(nil, "maintenance"))
		if r, err := ParseDrain(body); err != nil || r != "maintenance" {
			t.Fatalf("drain %q err %v", r, err)
		}
		_, body = readOne(t, AppendError(nil, "bad width"))
		if m, err := ParseError(body); err != nil || m != "bad width" {
			t.Fatalf("error %q err %v", m, err)
		}
	})
}

func TestFrameChecksumRejectsDamage(t *testing.T) {
	wire := AppendSample(nil, 5, []uint64{1, 2, 3, 4})
	for pos := 0; pos < len(wire); pos++ {
		bad := append([]byte(nil), wire...)
		bad[pos] ^= 0x40
		_, _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(bad)), 0, nil)
		if err == nil {
			t.Fatalf("bit flip at byte %d went undetected", pos)
		}
	}
}

func TestFrameTornAndOversized(t *testing.T) {
	wire := AppendSample(nil, 5, []uint64{1, 2, 3, 4})
	for cut := 1; cut < len(wire); cut++ {
		_, _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(wire[:cut])), 0, nil)
		if err == nil {
			t.Fatalf("torn frame at %d/%d bytes went undetected", cut, len(wire))
		}
		if cut >= headerSize && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("torn payload should surface the underlying read error, got %v", err)
		}
	}

	huge := []byte{FrameSample, 0xFF, 0xFF, 0xFF}
	_, _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(huge)), 0, nil)
	if !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized length prefix: got %v", err)
	}

	runt := []byte{FrameBye, 0, 0, 2, 0, 0}
	_, _, _, err = ReadFrame(bufio.NewReader(bytes.NewReader(runt)), 0, nil)
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("sub-CRC payload: got %v", err)
	}
}

func TestParseHelloRejects(t *testing.T) {
	cases := map[string]Hello{
		"bad version":  {Version: 99, Width: 4, Tenant: "t", Stream: "s"},
		"zero width":   {Version: ProtoVersion, Width: 0, Tenant: "t", Stream: "s"},
		"empty tenant": {Version: ProtoVersion, Width: 4, Stream: "s"},
		"empty stream": {Version: ProtoVersion, Width: 4, Tenant: "t"},
	}
	for name, h := range cases {
		_, body := readOne(t, AppendHello(nil, h))
		if _, err := ParseHello(body); err == nil {
			t.Fatalf("%s: ParseHello accepted %+v", name, h)
		}
	}
	// Oversized width is rejected even though it fits the u16.
	_, body := readOne(t, AppendHello(nil, Hello{Version: ProtoVersion, Width: MaxWidth + 1, Tenant: "t", Stream: "s"}))
	if _, err := ParseHello(body); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("width beyond MaxWidth: got %v", err)
	}
}

func TestReadFrameBufferReuse(t *testing.T) {
	var wire []byte
	wire = AppendSample(wire, 1, []uint64{1, 2, 3, 4})
	wire = AppendSample(wire, 2, []uint64{5, 6, 7, 8})
	br := bufio.NewReader(bytes.NewReader(wire))
	_, _, buf, err := ReadFrame(br, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, body, buf2, err := ReadFrame(br, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &buf[0] != &buf2[0] {
		t.Fatal("equal-size frames should reuse the recycled buffer")
	}
	seq, _, err := ParseSampleInto(body, 4, make([]uint64, 4))
	if err != nil || seq != 2 {
		t.Fatalf("second frame: seq %d err %v", seq, err)
	}
}
