package ingest

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzFrameDecode drives the whole decode surface — framing, checksum,
// and every per-type parser — with arbitrary bytes. The decoder guards
// the process against whatever a hostile or broken client can put on a
// socket, so the bar is: never panic, never over-read, and never accept
// a frame whose checksum does not hold.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendHello(nil, Hello{Version: ProtoVersion, Width: 4, Horizon: 100, Tenant: "acme", Stream: "s0"}))
	f.Add(AppendSample(nil, 3, []uint64{1, 2, 3, 4}))
	f.Add(AppendHelloOK(nil, HelloOK{Resume: 7, Window: 64, Width: 4}))
	f.Add(AppendVerdict(nil, Verdict{Seq: 1, Interval: 1, Score: 0.5, Malware: true}))
	f.Add(AppendShed(nil, Shed{Count: 2, LastSeq: 9}))
	f.Add(AppendRetry(nil, Retry{AfterMillis: 100, Reason: "quota"}))
	f.Add(AppendDrain(nil, "draining"))
	f.Add(AppendError(nil, "boom"))
	f.Add(AppendFrame(nil, FrameBye, nil))
	// Two valid frames back to back: stream decoding must resync on
	// frame boundaries, not just handle single frames.
	f.Add(AppendSample(AppendSample(nil, 1, []uint64{5, 6, 7, 8}), 2, []uint64{9, 10, 11, 12}))
	// A frame whose CRC was stomped.
	bad := AppendSample(nil, 3, []uint64{1, 2, 3, 4})
	bad[len(bad)-1] ^= 0xFF
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for {
			typ, body, nbuf, err := ReadFrame(br, 0, buf)
			buf = nbuf
			if err != nil {
				break
			}
			// A frame that passed its CRC gets handed to the typed
			// parsers; none may panic, whatever the type byte claims.
			switch typ {
			case FrameHello:
				if h, err := ParseHello(body); err == nil {
					// Anything the parser accepts must re-encode to a
					// frame the parser accepts identically.
					_, rt := mustReadOne(t, AppendHello(nil, h))
					h2, err := ParseHello(rt)
					if err != nil || h2 != h {
						t.Fatalf("hello round-trip diverged: %+v -> %+v (%v)", h, h2, err)
					}
				}
			case FrameHelloOK:
				ParseHelloOK(body)
			case FrameSample:
				for w := 0; w <= 8; w++ {
					ParseSampleInto(body, w, make([]uint64, w))
				}
			case FrameVerdict:
				ParseVerdict(body)
			case FrameShed:
				ParseShed(body)
			case FrameRetry:
				ParseRetry(body)
			case FrameDrain:
				ParseDrain(body)
			case FrameError:
				ParseError(body)
			}
		}
	})
}

func mustReadOne(t *testing.T, wire []byte) (byte, []byte) {
	t.Helper()
	typ, body, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(wire)), 0, nil)
	if err != nil {
		t.Fatalf("re-encoded frame failed to decode: %v", err)
	}
	return typ, body
}
