package ingest

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzFrameDecode drives the whole decode surface — framing, checksum,
// and every per-type parser — with arbitrary bytes. The decoder guards
// the process against whatever a hostile or broken client can put on a
// socket, so the bar is: never panic, never over-read, and never accept
// a frame whose checksum does not hold.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendHello(nil, Hello{Version: ProtoVersion, Width: 4, Horizon: 100, Tenant: "acme", Stream: "s0"}))
	f.Add(AppendSample(nil, 3, []uint64{1, 2, 3, 4}))
	f.Add(AppendHelloOK(nil, HelloOK{Resume: 7, Window: 64, Width: 4}))
	f.Add(AppendVerdict(nil, Verdict{Seq: 1, Interval: 1, Score: 0.5, Malware: true}))
	f.Add(AppendShed(nil, Shed{Count: 2, LastSeq: 9}))
	f.Add(AppendRetry(nil, Retry{AfterMillis: 100, Reason: "quota"}))
	f.Add(AppendDrain(nil, "draining"))
	f.Add(AppendError(nil, "boom"))
	f.Add(AppendFrame(nil, FrameBye, nil))
	// Two valid frames back to back: stream decoding must resync on
	// frame boundaries, not just handle single frames.
	f.Add(AppendSample(AppendSample(nil, 1, []uint64{5, 6, 7, 8}), 2, []uint64{9, 10, 11, 12}))
	// A frame whose CRC was stomped.
	bad := AppendSample(nil, 3, []uint64{1, 2, 3, 4})
	bad[len(bad)-1] ^= 0xFF
	f.Add(bad)

	// Batch frames (protocol v2): empty, small, and max-count batches.
	f.Add(AppendSampleBatch(nil, nil, nil, 4))
	f.Add(AppendSampleBatch(nil, []uint32{1, 2}, []uint64{1, 2, 3, 4, 5, 6, 7, 8}, 4))
	maxSeqs := make([]uint32, MaxBatchRecords)
	maxVals := make([]uint64, MaxBatchRecords)
	for i := range maxSeqs {
		maxSeqs[i] = uint32(i)
		maxVals[i] = uint64(i) * 3
	}
	f.Add(AppendSampleBatch(nil, maxSeqs, maxVals, 1))
	f.Add(AppendVerdictBatch(nil, nil))
	f.Add(AppendVerdictBatch(nil, []Verdict{{Seq: 1, Interval: 1, Score: 0.25}, {Seq: 2, Interval: 2, Score: 0.75, Malware: true}}))
	f.Add(AppendHelloOK(nil, HelloOK{Resume: 7, Window: 64, Width: 4, Batching: true}))
	// CRC-valid batch frames whose bodies lie: a count promising more
	// records than the body carries, and a body torn mid-record. The
	// framing layer accepts them; the batch parsers must not.
	overlong := []byte{0, 10, 0, 0, 0, 1} // count=10, one truncated record
	f.Add(AppendFrame(nil, FrameSampleBatch, overlong))
	f.Add(AppendFrame(nil, FrameVerdictBatch, overlong))
	torn := AppendSampleBatch(nil, []uint32{1, 2}, []uint64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	tornBody := torn[headerSize : len(torn)-crcSize]
	f.Add(AppendFrame(nil, FrameSampleBatch, tornBody[:len(tornBody)-5]))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for {
			typ, body, nbuf, err := ReadFrame(br, 0, buf)
			buf = nbuf
			if err != nil {
				break
			}
			// A frame that passed its CRC gets handed to the typed
			// parsers; none may panic, whatever the type byte claims.
			switch typ {
			case FrameHello:
				if h, err := ParseHello(body); err == nil {
					// Anything the parser accepts must re-encode to a
					// frame the parser accepts identically.
					_, rt := mustReadOne(t, AppendHello(nil, h))
					h2, err := ParseHello(rt)
					if err != nil || h2 != h {
						t.Fatalf("hello round-trip diverged: %+v -> %+v (%v)", h, h2, err)
					}
				}
			case FrameHelloOK:
				ParseHelloOK(body)
			case FrameSample:
				for w := 0; w <= 8; w++ {
					ParseSampleInto(body, w, make([]uint64, w))
				}
			case FrameVerdict:
				ParseVerdict(body)
			case FrameSampleBatch:
				for w := 1; w <= 8; w++ {
					if it, err := ParseSampleBatch(body, w); err == nil {
						drainSampleBatch(t, &it, w)
					}
				}
			case FrameVerdictBatch:
				if it, err := ParseVerdictBatch(body); err == nil {
					drainVerdictBatch(t, &it)
				}
			case FrameShed:
				ParseShed(body)
			case FrameRetry:
				ParseRetry(body)
			case FrameDrain:
				ParseDrain(body)
			case FrameError:
				ParseError(body)
			}
		}
	})
}

// drainSampleBatch iterates a validated batch to exhaustion, checking
// the iterator honours its declared count exactly.
func drainSampleBatch(t *testing.T, it *SampleBatch, w int) {
	t.Helper()
	want := it.Len()
	buf := make([]uint64, w)
	got := 0
	for {
		_, vals, ok := it.Next(buf)
		if !ok {
			break
		}
		if len(vals) != w {
			t.Fatalf("sample batch record width %d, want %d", len(vals), w)
		}
		got++
	}
	if got != want {
		t.Fatalf("sample batch yielded %d records, declared %d", got, want)
	}
}

func drainVerdictBatch(t *testing.T, it *VerdictBatch) {
	t.Helper()
	want := it.Len()
	got := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		got++
	}
	if got != want {
		t.Fatalf("verdict batch yielded %d records, declared %d", got, want)
	}
}

// FuzzBatchIterators feeds raw bodies (no framing) straight to the
// batch record iterators — the surface the read loop trusts after CRC
// — so structural lies (overlong counts, mid-record truncation) can
// never panic or over-read regardless of how the bytes arrived.
func FuzzBatchIterators(f *testing.F) {
	f.Add([]byte{}, 4)
	f.Add([]byte{0, 0}, 4)
	f.Add([]byte{0, 10, 0, 0, 0, 1}, 4)
	full := AppendSampleBatch(nil, []uint32{1, 2}, []uint64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	f.Add(append([]byte(nil), full[headerSize:len(full)-crcSize]...), 4)
	vb := AppendVerdictBatch(nil, []Verdict{{Seq: 9, Interval: 9, Score: 1}})
	f.Add(append([]byte(nil), vb[headerSize:len(vb)-crcSize]...), 1)
	f.Fuzz(func(t *testing.T, body []byte, width int) {
		if width < 1 || width > MaxWidth {
			width = 1 + (width&0x7fffffff)%8
		}
		if it, err := ParseSampleBatch(body, width); err == nil {
			drainSampleBatch(t, &it, width)
		}
		if it, err := ParseVerdictBatch(body); err == nil {
			drainVerdictBatch(t, &it)
		}
	})
}

func mustReadOne(t *testing.T, wire []byte) (byte, []byte) {
	t.Helper()
	typ, body, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(wire)), 0, nil)
	if err != nil {
		t.Fatalf("re-encoded frame failed to decode: %v", err)
	}
	return typ, body
}
