package ingest

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/supervise"
)

// TestIngestResumeReplayAcrossRestart drives the idempotent-drop
// contract through a full process restart: a client that replays
// SAMPLEs below the HELLO_OK resume position — interleaved with new
// ones, across several crash-reconnect cycles — must see every replay
// dropped as a dup with exact accounting, while the new samples extend
// the restored verdict timeline bit-identically to an unbroken
// single-process reference. This is the client shape cluster failover
// produces on purpose: resume from a checkpoint means re-sending.
func TestIngestResumeReplayAcrossRestart(t *testing.T) {
	store, err := core.NewCheckpointStore(t.TempDir(), "fleet", fleet.StateVersion)
	if err != nil {
		t.Fatal(err)
	}
	h := startHarness(t, func(fc *fleet.Config, sc *Config) {
		fc.Checkpoint = store
	})

	const ckptAt = 8 // timeline position the restart resumes from
	c := dialStream(t, h.addr, "t", "s0", 0)
	for seq := uint32(0); seq < ckptAt; seq++ {
		if err := c.Send(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	collectVerdicts(t, c, ckptAt)

	// Drain: the engine finishes the stream and the final checkpoint
	// pins the timeline at ckptAt.
	h.srv.Drain("restart")
	select {
	case rerr := <-h.run:
		if rerr != nil {
			t.Fatalf("drained Run: %v", rerr)
		}
		h.run <- nil
	case <-time.After(5 * time.Second):
		t.Fatal("engine did not drain")
	}

	// Restarted process.
	eng2, err := fleet.New(fleet.Config{
		NewChain:   stubChainFactory(),
		Shards:     2,
		WheelSlots: 4,
		Interval:   2 * time.Millisecond,
		Policy:     supervise.Block,
		Checkpoint: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng2.RestoreState(); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(Config{Engine: eng2, Width: testWidth})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln2)
	ctx2, cancel2 := context.WithCancel(context.Background())
	run2 := make(chan error, 1)
	go func() { run2 <- eng2.Run(ctx2) }()
	t.Cleanup(func() {
		srv2.Close()
		cancel2()
		<-run2
	})

	// Reconnect churn: each round crashes the connection (no BYE),
	// reconnects, replays stale sequence numbers below the advertised
	// resume position interleaved with exactly one new sample.
	const rounds = 3
	var got []Verdict
	for k := uint32(0); k < rounds; k++ {
		resume := ckptAt + k
		ck := dialStream(t, ln2.Addr().String(), "t", "s0", 0)
		if ck.Admitted.Resume != int(resume) {
			t.Fatalf("round %d: resume %d, want %d", k, ck.Admitted.Resume, resume)
		}
		// Replay from the very start of the timeline, then the new
		// sample, then another stale replay just under the resume point.
		if err := ck.Send(k, sampleVals(k)); err != nil {
			t.Fatal(err)
		}
		if err := ck.Send(resume, sampleVals(resume)); err != nil {
			t.Fatal(err)
		}
		if err := ck.Send(resume-1, sampleVals(resume-1)); err != nil {
			t.Fatal(err)
		}
		vs := collectVerdicts(t, ck, 1)
		if vs[0].Seq != resume || vs[0].Interval != resume {
			t.Fatalf("round %d: verdict %+v, want seq/interval %d", k, vs[0], resume)
		}
		got = append(got, vs[0])
		ck.Close() // crash, no BYE
	}

	// Exact accounting: every replay was dropped idempotently, every
	// new sample was scored and attributed, nothing leaked.
	waitFor(t, "stream settled", func() bool {
		ss := srv2.stream("t", "s0").stats()
		return ss.Attributed == rounds && ss.Pending == 0
	})
	ss := srv2.stream("t", "s0").stats()
	if ss.Accepted != rounds || ss.Dups != 2*rounds {
		t.Fatalf("accepted %d dups %d, want %d and %d", ss.Accepted, ss.Dups, rounds, 2*rounds)
	}
	if ss.Accepted != ss.Attributed+ss.RingShed {
		t.Fatalf("accounting leak: accepted %d != attributed %d + shed %d",
			ss.Accepted, ss.Attributed, ss.RingShed)
	}
	if ss.NextSeq != ckptAt+rounds {
		t.Fatalf("next seq %d, want %d", ss.NextSeq, ckptAt+rounds)
	}
	st := srv2.StatsSnapshot(false)
	// Server-wide reattaches count every re-HELLO of a live stream.
	// (The per-stream counter only counts displacements — whether the
	// crashed conn's EOF lands before the redial is a timing race.)
	if st.Reattaches != rounds-1 {
		t.Fatalf("reattaches %d, want %d", st.Reattaches, rounds-1)
	}
	if st.SamplesDup != 2*rounds {
		t.Fatalf("server-wide dups %d, want %d", st.SamplesDup, 2*rounds)
	}

	// Bit-identity: the restarted timeline's tail must match one
	// unbroken reference chain fed the same samples, dups and all.
	ref, err := stubChainFactory()()
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint32(0); seq < ckptAt+rounds; seq++ {
		v, err := ref.Observe(sampleVals(seq))
		if err != nil {
			t.Fatal(err)
		}
		if seq >= ckptAt {
			g := got[seq-ckptAt]
			if g.Interval != uint32(v.Interval) || g.Score != v.Score || g.Malware != v.Malware {
				t.Fatalf("seq %d: got %+v, reference %+v", seq, g, v)
			}
		}
	}
}
