// Package ingest is the network front door of the detection fleet: it
// accepts HPC feature vectors from remote clients — a compact
// length-prefixed binary framing over TCP, plus a debug HTTP/JSON
// endpoint — and feeds them to the fleet engine through the unified
// source.Source interface, so a network stream rides the exact same
// zero-alloc scoring path as a simulated or replayed one.
//
// Robustness is the design centre, because the front door is where
// hostile run-time conditions arrive first:
//
//   - Admission control: per-tenant token-bucket quotas on stream
//     admission and sample throughput, connection caps, and explicit
//     RETRY_AFTER frames — an over-quota client is told to back off,
//     never silently ignored.
//   - Deadline-aware reads: every frame must arrive within a read
//     deadline, so a slowloris client (bytes trickled forever) is
//     evicted instead of pinning a connection.
//   - Bounded inflight: each stream buffers at most a window of
//     samples; overload maps onto the fleet's drop-oldest shed
//     machinery and clients see SHED frames with exact counts.
//   - Wire fault tolerance: every frame carries a CRC32-C; torn or
//     corrupted frames evict the connection (the framing layer cannot
//     be trusted after a desync) but never the stream — a reconnecting
//     client re-attaches and resumes from the server's authoritative
//     position.
//   - Graceful drain: DRAIN frames tell clients to go away, the fleet
//     engine finishes buffered work, and chain states are checkpointed
//     so a restarted process resumes every verdict timeline.
package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// ProtoVersion is the newest framing protocol version this code
// speaks; HELLO carries the client's version and the server serves any
// version down to ProtoVersionMin. Version 2 adds batch framing
// (SAMPLE_BATCH / VERDICT_BATCH): a v2 client is answered with a
// flagged HELLO_OK and both sides may pack many records behind one
// header + CRC; a v1 client gets the legacy 8-byte HELLO_OK and only
// ever sees single-record frames.
const (
	ProtoVersion    = 2
	ProtoVersionMin = 1
)

// Frame types. Client-to-server types have the high bit clear,
// server-to-client types have it set.
const (
	// FrameHello opens a stream: tenant, stream ID, vector width,
	// optional horizon. Must be the first frame on a connection.
	FrameHello byte = 0x01
	// FrameSample carries one interval's counter vector.
	FrameSample byte = 0x02
	// FrameBye announces a clean end of stream: buffered samples are
	// still scored, then the stream finishes.
	FrameBye byte = 0x03
	// FrameSampleBatch carries N contiguous sample records behind one
	// header and one CRC — the amortized wire path (protocol v2+).
	FrameSampleBatch byte = 0x04

	// FrameHelloOK admits the stream and tells the client where to
	// resume and how many samples it may keep in flight.
	FrameHelloOK byte = 0x81
	// FrameVerdict returns one scored sample's verdict.
	FrameVerdict byte = 0x82
	// FrameShed reports samples dropped by the inflight window —
	// explicit shed accounting, never silent loss.
	FrameShed byte = 0x83
	// FrameRetry rejects admission or throttles samples, with a
	// back-off hint in milliseconds.
	FrameRetry byte = 0x84
	// FrameDrain announces the server is draining (or the stream
	// finished): stop sending and reconnect elsewhere/later.
	FrameDrain byte = 0x85
	// FrameError reports a protocol violation; the connection closes
	// after it.
	FrameError byte = 0x86
	// FrameVerdictBatch carries N contiguous verdict records behind one
	// header and one CRC (protocol v2+, sent only to batching clients).
	FrameVerdictBatch byte = 0x87
)

// Framing limits.
const (
	headerSize = 4
	crcSize    = 4
	// MaxFrameBytes is the hard cap on a frame's payload (body + CRC):
	// wide enough for any sane vector width, narrow enough that a
	// hostile length prefix cannot balloon server memory.
	MaxFrameBytes = 1 << 16
	// MaxStringLen caps tenant/stream/reason strings.
	MaxStringLen = 255
	// MaxWidth caps the declared vector width.
	MaxWidth = 1024
	// MaxBatchRecords caps the record count in one batch frame — deep
	// enough to amortize the per-frame syscall and CRC to noise, small
	// enough that one torn batch loses at most a window's worth of
	// samples (resume replays them like any single-frame loss).
	MaxBatchRecords = 256
)

// Framing sentinels. Decoders wrap these with %w so transport code can
// classify failures with errors.Is.
var (
	// ErrBadFrame marks any structurally malformed frame.
	ErrBadFrame = errors.New("ingest: malformed frame")
	// ErrFrameTooBig marks a length prefix beyond MaxFrameBytes.
	ErrFrameTooBig = errors.New("ingest: frame exceeds size limit")
	// ErrChecksum marks a frame whose CRC32-C failed: bytes were
	// damaged in flight, the framing layer can no longer be trusted.
	ErrChecksum = errors.New("ingest: frame checksum mismatch")
	// ErrBadVersion marks a HELLO with an unsupported protocol version.
	ErrBadVersion = errors.New("ingest: unsupported protocol version")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one framed message (header, body, CRC32-C
// trailer) to dst and returns the extended slice. The CRC covers the
// type byte and the body, so a frame whose header was bit-flipped into
// another type also fails verification.
func AppendFrame(dst []byte, typ byte, body []byte) []byte {
	n := len(body) + crcSize
	dst = append(dst, typ, byte(n>>16), byte(n>>8), byte(n))
	dst = append(dst, body...)
	crc := crc32.Update(crc32.Checksum([]byte{typ}, crcTable), crcTable, body)
	return binary.BigEndian.AppendUint32(dst, crc)
}

// ReadFrame reads one frame from br, verifies its checksum and returns
// the type and body. buf is recycled storage for the payload (grown as
// needed); the returned body aliases it and is valid until the next
// call. max caps the payload length (0 means MaxFrameBytes). Errors
// wrap ErrFrameTooBig, ErrChecksum or the underlying I/O error; any
// error other than a clean io.EOF before the first header byte means
// the connection is desynced and must be closed.
func ReadFrame(br *bufio.Reader, max int, buf []byte) (typ byte, body, bufOut []byte, err error) {
	if max <= 0 {
		max = MaxFrameBytes
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	typ = hdr[0]
	n := int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n > max {
		return typ, nil, buf, fmt.Errorf("%w: %d bytes (max %d)", ErrFrameTooBig, n, max)
	}
	if n < crcSize {
		return typ, nil, buf, fmt.Errorf("%w: payload %d bytes, below CRC size", ErrBadFrame, n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			// A header with no payload is still a torn frame, not a
			// clean end of stream.
			err = io.ErrUnexpectedEOF
		}
		return typ, nil, buf, fmt.Errorf("ingest: torn frame: %w", err)
	}
	body = buf[:n-crcSize]
	want := binary.BigEndian.Uint32(buf[n-crcSize:])
	got := crc32.Update(crc32.Checksum([]byte{typ}, crcTable), crcTable, body)
	if got != want {
		return typ, nil, buf, fmt.Errorf("%w: got %08x want %08x", ErrChecksum, got, want)
	}
	return typ, body, buf, nil
}

// Hello is the stream-opening handshake.
type Hello struct {
	Version byte
	// Width is the counter vector width every SAMPLE must carry; it
	// must match the serving chain's event width.
	Width int
	// Horizon, when positive, bounds the stream to that many samples.
	Horizon int
	// Tenant is the quota-accounting principal; Stream names the stream
	// within the tenant. Both are required, at most MaxStringLen bytes.
	Tenant string
	Stream string
}

// AppendHello appends a HELLO frame.
func AppendHello(dst []byte, h Hello) []byte {
	body := make([]byte, 0, 16+len(h.Tenant)+len(h.Stream))
	body = append(body, h.Version)
	body = binary.BigEndian.AppendUint16(body, uint16(h.Width))
	body = binary.BigEndian.AppendUint32(body, uint32(h.Horizon))
	body = appendString(body, h.Tenant)
	body = appendString(body, h.Stream)
	return AppendFrame(dst, FrameHello, body)
}

// ParseHello decodes a HELLO body.
func ParseHello(body []byte) (Hello, error) {
	var h Hello
	if len(body) < 7 {
		return h, fmt.Errorf("%w: hello body %d bytes", ErrBadFrame, len(body))
	}
	h.Version = body[0]
	if h.Version < ProtoVersionMin || h.Version > ProtoVersion {
		return h, fmt.Errorf("%w: %d", ErrBadVersion, h.Version)
	}
	h.Width = int(binary.BigEndian.Uint16(body[1:3]))
	h.Horizon = int(binary.BigEndian.Uint32(body[3:7]))
	rest := body[7:]
	var err error
	if h.Tenant, rest, err = parseString(rest); err != nil {
		return h, fmt.Errorf("%w: hello tenant", errors.Unwrap(err))
	}
	if h.Stream, rest, err = parseString(rest); err != nil {
		return h, fmt.Errorf("%w: hello stream", errors.Unwrap(err))
	}
	if len(rest) != 0 {
		return h, fmt.Errorf("%w: %d trailing hello bytes", ErrBadFrame, len(rest))
	}
	if h.Tenant == "" || h.Stream == "" {
		return h, fmt.Errorf("%w: empty tenant or stream", ErrBadFrame)
	}
	if h.Width < 1 || h.Width > MaxWidth {
		return h, fmt.Errorf("%w: width %d", ErrBadFrame, h.Width)
	}
	return h, nil
}

// HelloOK is the admission reply.
type HelloOK struct {
	// Resume is the next sample index the server expects: 0 for a fresh
	// stream, the checkpointed verdict-timeline position after a
	// drain/restart, or one past the last admitted sample on re-attach.
	Resume int
	// Window is the per-stream inflight cap: samples the client may
	// have outstanding (sent but not yet verdict-ed) without risking
	// shed.
	Window int
	// Width echoes the serving chain's vector width.
	Width int
	// Batching reports that the server negotiated batch framing (the
	// client sent HELLO version >= 2): both sides may now emit
	// SAMPLE_BATCH / VERDICT_BATCH frames. Carried as a trailing flags
	// byte that v1 replies omit, so legacy 8-byte decoders stay valid.
	Batching bool
}

// helloOKBatchFlag is bit 0 of the optional HELLO_OK flags byte.
const helloOKBatchFlag = 0x01

// AppendHelloOK appends a HELLO_OK frame. Replies without batching use
// the legacy 8-byte body so protocol-v1 clients parse them unchanged;
// batching replies append the flags byte v2 clients look for.
func AppendHelloOK(dst []byte, ok HelloOK) []byte {
	var body [9]byte
	binary.BigEndian.PutUint32(body[0:4], uint32(ok.Resume))
	binary.BigEndian.PutUint16(body[4:6], uint16(ok.Window))
	binary.BigEndian.PutUint16(body[6:8], uint16(ok.Width))
	if !ok.Batching {
		return AppendFrame(dst, FrameHelloOK, body[:8])
	}
	body[8] = helloOKBatchFlag
	return AppendFrame(dst, FrameHelloOK, body[:9])
}

// ParseHelloOK decodes a HELLO_OK body (legacy 8-byte or flagged
// 9-byte form).
func ParseHelloOK(body []byte) (HelloOK, error) {
	if len(body) != 8 && len(body) != 9 {
		return HelloOK{}, fmt.Errorf("%w: hello-ok body %d bytes", ErrBadFrame, len(body))
	}
	ok := HelloOK{
		Resume: int(binary.BigEndian.Uint32(body[0:4])),
		Window: int(binary.BigEndian.Uint16(body[4:6])),
		Width:  int(binary.BigEndian.Uint16(body[6:8])),
	}
	if len(body) == 9 {
		ok.Batching = body[8]&helloOKBatchFlag != 0
	}
	return ok, nil
}

// AppendSample appends a SAMPLE frame: the client's sequence number and
// the counter vector. dst is typically a recycled buffer, so the
// steady-state send path allocates nothing.
func AppendSample(dst []byte, seq uint32, vals []uint64) []byte {
	start := len(dst)
	dst = append(dst, FrameSample, 0, 0, 0)
	dst = binary.BigEndian.AppendUint32(dst, seq)
	for _, v := range vals {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return finishFrame(dst, start)
}

// ParseSampleInto decodes a SAMPLE body: the vector lands in buf
// (which must have capacity >= width) with no allocation. The body
// must carry exactly width values.
func ParseSampleInto(body []byte, width int, buf []uint64) (seq uint32, vals []uint64, err error) {
	if len(body) != 4+8*width {
		return 0, nil, fmt.Errorf("%w: sample body %d bytes, want %d for width %d",
			ErrBadFrame, len(body), 4+8*width, width)
	}
	seq = binary.BigEndian.Uint32(body[:4])
	if cap(buf) < width {
		buf = make([]uint64, width)
	}
	vals = buf[:width]
	for i := range vals {
		vals[i] = binary.BigEndian.Uint64(body[4+8*i:])
	}
	return seq, vals, nil
}

// finishFrame closes a frame whose header placeholder and body were
// appended in place at dst[start:] — it patches the length prefix and
// appends the CRC32-C over type + body. Building the body directly in
// dst is what keeps the batch encoders allocation-free.
func finishFrame(dst []byte, start int) []byte {
	n := len(dst) - start - headerSize + crcSize
	dst[start+1], dst[start+2], dst[start+3] = byte(n>>16), byte(n>>8), byte(n)
	crc := crc32.Update(crc32.Checksum(dst[start:start+1], crcTable), crcTable, dst[start+headerSize:])
	return binary.BigEndian.AppendUint32(dst, crc)
}

// SampleBatchLimit is the most sample records one SAMPLE_BATCH frame
// can carry at the given vector width: MaxBatchRecords, shrunk when
// wide vectors would overflow the frame size cap.
func SampleBatchLimit(width int) int {
	limit := (MaxFrameBytes - crcSize - 2) / (4 + 8*width)
	if limit > MaxBatchRecords {
		limit = MaxBatchRecords
	}
	if limit < 1 {
		limit = 1
	}
	return limit
}

// VerdictBatchLimit is the most verdict records one VERDICT_BATCH
// frame can carry.
const VerdictBatchLimit = MaxBatchRecords

// AppendSampleBatch appends one SAMPLE_BATCH frame: a u16 record count
// followed by len(seqs) contiguous sample records (seq u32 + width
// values), all behind a single header and CRC. vals holds the vectors
// back to back (len(seqs)*width values). The caller bounds len(seqs)
// by SampleBatchLimit(width); the body is built in place so a recycled
// dst makes the encode allocation-free.
func AppendSampleBatch(dst []byte, seqs []uint32, vals []uint64, width int) []byte {
	start := len(dst)
	dst = append(dst, FrameSampleBatch, 0, 0, 0)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(seqs)))
	for i, seq := range seqs {
		dst = binary.BigEndian.AppendUint32(dst, seq)
		for _, v := range vals[i*width : (i+1)*width] {
			dst = binary.BigEndian.AppendUint64(dst, v)
		}
	}
	return finishFrame(dst, start)
}

// SampleBatch iterates the records of a SAMPLE_BATCH body without
// allocating; it remains valid only as long as the body's backing
// buffer (typically until the next ReadFrame).
type SampleBatch struct {
	body  []byte
	width int
	n     int
}

// ParseSampleBatch validates a SAMPLE_BATCH body for the given width
// and returns its record iterator. The declared count must match the
// body length exactly: a CRC-valid frame whose count field promises
// more records than it carries (or that ends mid-record) is malformed.
func ParseSampleBatch(body []byte, width int) (SampleBatch, error) {
	if len(body) < 2 {
		return SampleBatch{}, fmt.Errorf("%w: sample batch body %d bytes", ErrBadFrame, len(body))
	}
	n := int(binary.BigEndian.Uint16(body[:2]))
	if n > MaxBatchRecords {
		return SampleBatch{}, fmt.Errorf("%w: sample batch count %d (max %d)", ErrBadFrame, n, MaxBatchRecords)
	}
	rec := 4 + 8*width
	if len(body)-2 != n*rec {
		return SampleBatch{}, fmt.Errorf("%w: sample batch %d bytes, want %d for %d records of width %d",
			ErrBadFrame, len(body)-2, n*rec, n, width)
	}
	return SampleBatch{body: body[2:], width: width, n: n}, nil
}

// Len returns how many records remain.
func (b *SampleBatch) Len() int { return b.n }

// Next decodes the next record into buf (capacity >= width, no
// allocation) and reports whether one was available.
func (b *SampleBatch) Next(buf []uint64) (seq uint32, vals []uint64, ok bool) {
	if b.n == 0 {
		return 0, nil, false
	}
	seq = binary.BigEndian.Uint32(b.body[:4])
	if cap(buf) < b.width {
		buf = make([]uint64, b.width)
	}
	vals = buf[:b.width]
	for i := range vals {
		vals[i] = binary.BigEndian.Uint64(b.body[4+8*i:])
	}
	b.body = b.body[4+8*b.width:]
	b.n--
	return seq, vals, true
}

// Verdict is one scored sample's result, echoed to the client.
type Verdict struct {
	// Seq is the client's sequence number for the scored sample.
	Seq uint32
	// Interval is the engine-side verdict-timeline position. Under
	// lossless operation Seq == Interval; after shed they diverge.
	Interval uint32
	// Score is the windowed malware score; Malware the thresholded
	// decision.
	Score   float64
	Malware bool
}

// AppendVerdict appends a VERDICT frame.
func AppendVerdict(dst []byte, v Verdict) []byte {
	start := len(dst)
	dst = append(dst, FrameVerdict, 0, 0, 0)
	dst = appendVerdictRecord(dst, v)
	return finishFrame(dst, start)
}

// ParseVerdict decodes a VERDICT body.
func ParseVerdict(body []byte) (Verdict, error) {
	if len(body) != 17 {
		return Verdict{}, fmt.Errorf("%w: verdict body %d bytes", ErrBadFrame, len(body))
	}
	return Verdict{
		Seq:      binary.BigEndian.Uint32(body[0:4]),
		Interval: binary.BigEndian.Uint32(body[4:8]),
		Score:    math.Float64frombits(binary.BigEndian.Uint64(body[8:16])),
		Malware:  body[16]&1 != 0,
	}, nil
}

// appendVerdictRecord appends the fixed 17-byte verdict record shared
// by VERDICT and VERDICT_BATCH.
func appendVerdictRecord(dst []byte, v Verdict) []byte {
	dst = binary.BigEndian.AppendUint32(dst, v.Seq)
	dst = binary.BigEndian.AppendUint32(dst, v.Interval)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.Score))
	if v.Malware {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendVerdictBatch appends one VERDICT_BATCH frame: a u16 record
// count followed by len(vs) contiguous 17-byte verdict records behind
// a single header and CRC. The caller bounds len(vs) by
// VerdictBatchLimit; the body is built in place (allocation-free with
// a recycled dst).
func AppendVerdictBatch(dst []byte, vs []Verdict) []byte {
	start := len(dst)
	dst = append(dst, FrameVerdictBatch, 0, 0, 0)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(vs)))
	for _, v := range vs {
		dst = appendVerdictRecord(dst, v)
	}
	return finishFrame(dst, start)
}

// VerdictBatch iterates the records of a VERDICT_BATCH body without
// allocating; valid only while the body's backing buffer is.
type VerdictBatch struct {
	body []byte
	n    int
}

// ParseVerdictBatch validates a VERDICT_BATCH body and returns its
// record iterator; the declared count must match the body length
// exactly.
func ParseVerdictBatch(body []byte) (VerdictBatch, error) {
	if len(body) < 2 {
		return VerdictBatch{}, fmt.Errorf("%w: verdict batch body %d bytes", ErrBadFrame, len(body))
	}
	n := int(binary.BigEndian.Uint16(body[:2]))
	if n > MaxBatchRecords {
		return VerdictBatch{}, fmt.Errorf("%w: verdict batch count %d (max %d)", ErrBadFrame, n, MaxBatchRecords)
	}
	if len(body)-2 != n*17 {
		return VerdictBatch{}, fmt.Errorf("%w: verdict batch %d bytes, want %d for %d records",
			ErrBadFrame, len(body)-2, n*17, n)
	}
	return VerdictBatch{body: body[2:], n: n}, nil
}

// Len returns how many records remain.
func (b *VerdictBatch) Len() int { return b.n }

// Next decodes the next verdict record and reports whether one was
// available.
func (b *VerdictBatch) Next() (Verdict, bool) {
	if b.n == 0 {
		return Verdict{}, false
	}
	v := Verdict{
		Seq:      binary.BigEndian.Uint32(b.body[0:4]),
		Interval: binary.BigEndian.Uint32(b.body[4:8]),
		Score:    math.Float64frombits(binary.BigEndian.Uint64(b.body[8:16])),
		Malware:  b.body[16]&1 != 0,
	}
	b.body = b.body[17:]
	b.n--
	return v, true
}

// Shed reports inflight-window drops since the last notice.
type Shed struct {
	// Count is how many samples were dropped; LastSeq the sequence
	// number of the most recently dropped one.
	Count   uint32
	LastSeq uint32
}

// AppendShed appends a SHED frame.
func AppendShed(dst []byte, s Shed) []byte {
	var body [8]byte
	binary.BigEndian.PutUint32(body[0:4], s.Count)
	binary.BigEndian.PutUint32(body[4:8], s.LastSeq)
	return AppendFrame(dst, FrameShed, body[:])
}

// ParseShed decodes a SHED body.
func ParseShed(body []byte) (Shed, error) {
	if len(body) != 8 {
		return Shed{}, fmt.Errorf("%w: shed body %d bytes", ErrBadFrame, len(body))
	}
	return Shed{
		Count:   binary.BigEndian.Uint32(body[0:4]),
		LastSeq: binary.BigEndian.Uint32(body[4:8]),
	}, nil
}

// Retry is an admission rejection or throttle notice.
type Retry struct {
	// AfterMillis is the back-off hint.
	AfterMillis uint32
	Reason      string
}

// AppendRetry appends a RETRY frame.
func AppendRetry(dst []byte, r Retry) []byte {
	body := make([]byte, 0, 5+len(r.Reason))
	body = binary.BigEndian.AppendUint32(body, r.AfterMillis)
	body = appendString(body, r.Reason)
	return AppendFrame(dst, FrameRetry, body)
}

// ParseRetry decodes a RETRY body.
func ParseRetry(body []byte) (Retry, error) {
	if len(body) < 5 {
		return Retry{}, fmt.Errorf("%w: retry body %d bytes", ErrBadFrame, len(body))
	}
	reason, rest, err := parseString(body[4:])
	if err != nil || len(rest) != 0 {
		return Retry{}, fmt.Errorf("%w: retry reason", ErrBadFrame)
	}
	return Retry{AfterMillis: binary.BigEndian.Uint32(body[:4]), Reason: reason}, nil
}

// AppendDrain appends a DRAIN frame with the given reason.
func AppendDrain(dst []byte, reason string) []byte {
	return AppendFrame(dst, FrameDrain, appendString(nil, reason))
}

// ParseDrain decodes a DRAIN body.
func ParseDrain(body []byte) (string, error) {
	reason, rest, err := parseString(body)
	if err != nil || len(rest) != 0 {
		return "", fmt.Errorf("%w: drain reason", ErrBadFrame)
	}
	return reason, nil
}

// AppendError appends an ERROR frame with the given message.
func AppendError(dst []byte, msg string) []byte {
	if len(msg) > MaxStringLen {
		msg = msg[:MaxStringLen]
	}
	return AppendFrame(dst, FrameError, appendString(nil, msg))
}

// ParseError decodes an ERROR body.
func ParseError(body []byte) (string, error) {
	msg, rest, err := parseString(body)
	if err != nil || len(rest) != 0 {
		return "", fmt.Errorf("%w: error message", ErrBadFrame)
	}
	return msg, nil
}

// appendString appends a length-prefixed string (u8 length).
func appendString(dst []byte, s string) []byte {
	if len(s) > MaxStringLen {
		s = s[:MaxStringLen]
	}
	dst = append(dst, byte(len(s)))
	return append(dst, s...)
}

// parseString decodes a length-prefixed string, returning the rest.
func parseString(b []byte) (s string, rest []byte, err error) {
	if len(b) < 1 {
		return "", b, fmt.Errorf("%w: missing string length", ErrBadFrame)
	}
	n := int(b[0])
	if len(b) < 1+n {
		return "", b, fmt.Errorf("%w: string of %d bytes in %d", ErrBadFrame, n, len(b)-1)
	}
	return string(b[1 : 1+n]), b[1+n:], nil
}
