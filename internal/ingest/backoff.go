package ingest

import (
	"time"

	"repro/internal/micro"
)

// Backoff bounds for Backoff below.
const (
	// DefaultRetryMillis substitutes for a RETRY frame with no back-off
	// hint (a zero AfterMillis).
	DefaultRetryMillis = 100
	// MaxBackoff caps the exponentially grown wait.
	MaxBackoff = 30 * time.Second
)

// Backoff turns a server back-off hint into the wait before retry
// attempt n (0-based), with seeded jitter. The server's hint is
// honored as a scale, never verbatim: a quota storm rejects a whole
// fleet of clients with the same retryMillis in the same instant, and
// clients that sleep exactly that long stampede back in lockstep —
// the thundering herd the jitter is here to break up.
//
// The base doubles per attempt (hint << n, capped at MaxBackoff) and
// the wait is drawn uniformly from [base/2, base]. The draw is a pure
// function of (seed, scope, attempt) — the faults-package discipline —
// so a retry schedule reproduces exactly across runs while distinct
// streams (distinct scopes) spread out.
func Backoff(hint Retry, seed uint64, scope string, attempt int) time.Duration {
	ms := int64(hint.AfterMillis)
	if ms <= 0 {
		ms = DefaultRetryMillis
	}
	base := time.Duration(ms) * time.Millisecond
	for i := 0; i < attempt && base < MaxBackoff; i++ {
		base *= 2
	}
	if base > MaxBackoff {
		base = MaxBackoff
	}
	rng := micro.NewRNG(seed ^ hashScope(scope) ^ (uint64(attempt)+1)*0x9E3779B97F4A7C15)
	half := int64(base / 2)
	return time.Duration(half + int64(rng.Uint64()%(uint64(half)+1)))
}

// hashScope is FNV-1a over the scope string (the faults package keeps
// its own copy; the ingest client must not depend on faults for this).
func hashScope(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
