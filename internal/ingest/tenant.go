package ingest

import (
	"sync"
	"sync/atomic"
	"time"
)

// Quotas bounds one tenant's footprint on the ingest plane. Zero
// fields mean unlimited — the zero value admits everything, so quotas
// are strictly opt-in pressure valves.
type Quotas struct {
	// MaxConns caps the tenant's concurrent connections.
	MaxConns int
	// MaxStreams caps the tenant's concurrent live (unfinished)
	// streams.
	MaxStreams int
	// AdmitPerSec rate-limits new stream admissions (token bucket;
	// AdmitBurst tokens of headroom, default 1× the rate, min 1).
	// Re-attaches to an existing stream are NOT charged — a
	// reconnecting client must never be locked out of its own stream by
	// an admission storm.
	AdmitPerSec float64
	AdmitBurst  int
	// SamplesPerSec rate-limits the tenant's aggregate sample
	// throughput across all its streams (SampleBurst headroom, default
	// 1× the rate, min 1). Over-quota samples are rejected with a RETRY
	// frame and counted; the connection survives.
	SamplesPerSec float64
	SampleBurst   int
}

// bucket is a monotonic-clock token bucket. rate<=0 disables it
// (take always succeeds).
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newBucket(rate float64, burst int, now func() time.Time) *bucket {
	b := float64(burst)
	if b <= 0 {
		b = rate
	}
	if b < 1 {
		b = 1
	}
	return &bucket{rate: rate, burst: b, tokens: b, now: now}
}

// take spends one token, refilling by elapsed wall time first.
func (b *bucket) take() bool {
	if b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// tenant is the server's per-tenant admission state: quota buckets and
// live resource counters.
type tenant struct {
	name    string
	q       Quotas
	admit   *bucket
	samples *bucket

	conns   atomic.Int64
	streams atomic.Int64

	connRejects   atomic.Int64
	streamRejects atomic.Int64
	admitRejects  atomic.Int64
	throttled     atomic.Int64
}

func newTenant(name string, q Quotas, now func() time.Time) *tenant {
	return &tenant{
		name:    name,
		q:       q,
		admit:   newBucket(q.AdmitPerSec, q.AdmitBurst, now),
		samples: newBucket(q.SamplesPerSec, q.SampleBurst, now),
	}
}

// admitConn reserves a connection slot; the caller must releaseConn on
// any path that took one.
func (t *tenant) admitConn() bool {
	n := t.conns.Add(1)
	if t.q.MaxConns > 0 && n > int64(t.q.MaxConns) {
		t.conns.Add(-1)
		t.connRejects.Add(1)
		return false
	}
	return true
}

func (t *tenant) releaseConn() { t.conns.Add(-1) }

// admitStream charges the admission bucket and reserves a stream slot
// for a brand-new stream.
func (t *tenant) admitStream() (ok bool, overRate bool) {
	if !t.admit.take() {
		t.admitRejects.Add(1)
		return false, true
	}
	n := t.streams.Add(1)
	if t.q.MaxStreams > 0 && n > int64(t.q.MaxStreams) {
		t.streams.Add(-1)
		t.streamRejects.Add(1)
		return false, false
	}
	return true, false
}

func (t *tenant) releaseStream() { t.streams.Add(-1) }

// admitSample charges the tenant-wide sample bucket.
func (t *tenant) admitSample() bool {
	if t.samples.take() {
		return true
	}
	t.throttled.Add(1)
	return false
}

// TenantStats is one tenant's externally visible admission state.
type TenantStats struct {
	Name    string
	Conns   int64
	Streams int64
	// Rejections by cause: connection cap, stream cap, admission rate,
	// sample rate.
	ConnRejects   int64
	StreamRejects int64
	AdmitRejects  int64
	Throttled     int64
}

func (t *tenant) stats() TenantStats {
	return TenantStats{
		Name:          t.name,
		Conns:         t.conns.Load(),
		Streams:       t.streams.Load(),
		ConnRejects:   t.connRejects.Load(),
		StreamRejects: t.streamRejects.Load(),
		AdmitRejects:  t.admitRejects.Load(),
		Throttled:     t.throttled.Load(),
	}
}
