package ingest

import (
	"bufio"
	"net"
	"testing"
	"time"

	"repro/internal/fleet"
)

// TestIngestBatchedRoundTrip drives the negotiated v2 path end to end:
// Queue/Flush packs many samples behind one header + CRC, the server
// decodes the batch, and every verdict comes back in order — with the
// client spending far fewer Write calls than samples.
func TestIngestBatchedRoundTrip(t *testing.T) {
	h := startHarness(t, nil)
	c := dialStream(t, h.addr, "t", "s0", 0)
	if !c.Batching() {
		t.Fatal("default dial did not negotiate batching")
	}
	const n = 48
	for seq := uint32(0); seq < n; seq++ {
		if err := c.Queue(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
		if seq%16 == 15 {
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	vs := collectVerdicts(t, c, n)
	for i, v := range vs {
		if v.Seq != uint32(i) || v.Interval != uint32(i) {
			t.Fatalf("verdict %d out of order: %+v", i, v)
		}
	}
	st := h.srv.StatsSnapshot(false)
	if st.SampleBatches == 0 {
		t.Fatal("no SAMPLE_BATCH frames decoded despite batched client")
	}
	if w := c.WriteCalls(); w >= n {
		t.Fatalf("client spent %d writes for %d samples — batching bought nothing", w, n)
	}
	if st.WriteSyscalls == 0 {
		t.Fatal("server write syscall counter never moved")
	}
}

// TestIngestVersionNegotiation pins the interop contract: a protocol-v1
// client gets a legacy 8-byte HELLO_OK (Batching false), its single
// SAMPLE frames still score, and the server never emits a batch frame
// at it.
func TestIngestVersionNegotiation(t *testing.T) {
	h := startHarness(t, nil)
	c, err := Dial(ClientConfig{
		Addr:  h.addr,
		Hello: Hello{Version: 1, Width: testWidth, Tenant: "t", Stream: "s0"},
	})
	if err != nil {
		t.Fatalf("v1 dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	if c.Batching() {
		t.Fatal("v1 client was offered batching")
	}
	const n = 8
	for seq := uint32(0); seq < n; seq++ {
		if err := c.Send(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	vs := collectVerdicts(t, c, n)
	for i, v := range vs {
		if v.Seq != uint32(i) {
			t.Fatalf("verdict %d out of order: %+v", i, v)
		}
	}
	st := h.srv.StatsSnapshot(false)
	if st.SampleBatches != 0 || st.VerdictBatches != 0 {
		t.Fatalf("batch frames on a v1 connection: %d in, %d out", st.SampleBatches, st.VerdictBatches)
	}

	// Queue/Flush on an unbatched client must fall back to single
	// frames — still coalesced into one Write.
	w0 := c.WriteCalls()
	for seq := uint32(n); seq < 2*n; seq++ {
		if err := c.Queue(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if w := c.WriteCalls() - w0; w != 1 {
		t.Fatalf("legacy flush took %d writes, want 1", w)
	}
	collectVerdicts(t, c, n)
}

// TestIngestBatchNotNegotiatedRejected: a SAMPLE_BATCH from a
// connection that handshook v1 is a protocol violation, answered with
// ERROR and a close — not silently decoded.
func TestIngestBatchNotNegotiatedRejected(t *testing.T) {
	h := startHarness(t, nil)
	nc, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	hello := AppendHello(nil, Hello{Version: 1, Width: testWidth, Tenant: "t", Stream: "s0"})
	if _, err := nc.Write(hello); err != nil {
		t.Fatal(err)
	}
	typ, _, _, err := ReadFrame(br, 0, nil)
	if err != nil || typ != FrameHelloOK {
		t.Fatalf("handshake: type %#x err %v", typ, err)
	}
	batch := AppendSampleBatch(nil, []uint32{0, 1},
		append(sampleVals(0), sampleVals(1)...), testWidth)
	if _, err := nc.Write(batch); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	sawError := false
	for {
		typ, body, _, err := ReadFrame(br, 0, nil)
		if err != nil {
			break // server closed the conn after the ERROR
		}
		if typ == FrameError {
			if msg, perr := ParseError(body); perr == nil && msg != "" {
				sawError = true
			}
		}
	}
	if !sawError {
		t.Fatal("un-negotiated batch frame drew no ERROR")
	}
	waitFor(t, "proto error accounting", func() bool {
		return h.srv.StatsSnapshot(false).ProtoErrors > 0
	})
}

// TestIngestBatchedShedAccounting mirrors TestIngestShedIsExplicit on
// the batch path: overload under SAMPLE_BATCH ingestion still surfaces
// as SHED frames whose counts reconcile exactly with the server's drop
// ledger — batching changes framing, never accounting.
func TestIngestBatchedShedAccounting(t *testing.T) {
	h := startHarness(t, func(fc *fleet.Config, sc *Config) {
		fc.Interval = 50 * time.Millisecond // slow wheel: the window fills
		sc.Window = 2
	})
	c := dialStream(t, h.addr, "t", "s0", 0)
	const n = 10
	for seq := uint32(0); seq < n; seq++ {
		if err := c.Queue(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := h.srv.stream("t", "s0").stats()
		if st.Pending == 0 && st.Accepted == n && st.Attributed+st.RingShed == n {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := h.srv.stream("t", "s0").stats()
	if st.RingShed == 0 {
		t.Fatal("no shed despite window overload")
	}
	if st.Attributed+st.RingShed != st.Accepted {
		t.Fatalf("accounting leak: attributed %d + shed %d != accepted %d", st.Attributed, st.RingShed, st.Accepted)
	}
	var shed uint32
	for {
		ev, err := c.Next()
		if err != nil {
			break
		}
		if ev.Type == FrameShed {
			shed += ev.Shed.Count
		}
		if int64(shed) == st.RingShed {
			break
		}
	}
	if int64(shed) != st.RingShed {
		t.Fatalf("client saw %d shed, server dropped %d", shed, st.RingShed)
	}
}

// TestIngestBatchedByeFlushes: BYE after queued-but-unflushed samples
// must flush them first, and the server's soft close must deliver every
// verdict before the DRAIN("finished") notice.
func TestIngestBatchedByeFlushes(t *testing.T) {
	h := startHarness(t, nil)
	c := dialStream(t, h.addr, "t", "s0", 3)
	for seq := uint32(0); seq < 3; seq++ {
		if err := c.Queue(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// No explicit Flush: Bye is responsible for the stragglers.
	if err := c.Bye(); err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		ev, err := c.Next()
		if err != nil {
			t.Fatalf("after %d verdicts: %v", got, err)
		}
		if ev.Type == FrameVerdict {
			got++
			continue
		}
		if ev.Type == FrameDrain {
			if ev.Reason != "finished" {
				t.Fatalf("drain reason %q", ev.Reason)
			}
			break
		}
	}
	if got != 3 {
		t.Fatalf("DRAIN overtook verdicts: saw %d of 3", got)
	}
}

// --- writer coalescing unit tests ------------------------------------
//
// These drive conn's writer directly over a net.Pipe (synchronous, no
// kernel buffer), where flush timing is deterministic: a Write blocks
// until the test reads, so "mid-coalesce" states can be pinned exactly.

func newPipeConn(s *Server, nc net.Conn, batch bool, depth int) *conn {
	return &conn{
		srv:      s,
		nc:       nc,
		out:      make(chan []byte, depth),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		batch:    batch,
		vq:       make([]Verdict, depth),
		vscratch: make([]Verdict, 0, depth),
	}
}

func pipeServer() *Server {
	return &Server{cfg: Config{WriteTimeout: 5 * time.Second}, now: time.Now}
}

// readFrames reads frames off the pipe until wantEOF or n frames.
func readFrames(t *testing.T, nc net.Conn, n int) [][2][]byte {
	t.Helper()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReader(nc)
	var out [][2][]byte
	for len(out) < n {
		typ, body, _, err := ReadFrame(br, 0, nil)
		if err != nil {
			t.Fatalf("after %d frames: %v", len(out), err)
		}
		out = append(out, [2][]byte{{typ}, append([]byte(nil), body...)})
	}
	return out
}

// TestWriterCoalescesVerdictBatch: verdicts queued before the writer's
// wakeup leave as ONE VERDICT_BATCH frame in ONE Write.
func TestWriterCoalescesVerdictBatch(t *testing.T) {
	s := pipeServer()
	sp, cp := net.Pipe()
	defer cp.Close()
	c := newPipeConn(s, sp, true, 8)
	for i := 0; i < 5; i++ {
		if !c.sendVerdict(Verdict{Seq: uint32(i), Interval: uint32(i), Score: 0.5}) {
			t.Fatalf("sendVerdict %d refused", i)
		}
	}
	go c.writer()
	fs := readFrames(t, cp, 1)
	if fs[0][0][0] != FrameVerdictBatch {
		t.Fatalf("frame type %#x, want VERDICT_BATCH", fs[0][0][0])
	}
	it, err := ParseVerdictBatch(fs[0][1])
	if err != nil {
		t.Fatal(err)
	}
	if it.Len() != 5 {
		t.Fatalf("batch carried %d verdicts, want 5", it.Len())
	}
	for i := 0; ; i++ {
		v, ok := it.Next()
		if !ok {
			break
		}
		if v.Seq != uint32(i) {
			t.Fatalf("verdict %d reordered: %+v", i, v)
		}
	}
	if got := s.writeCalls.Load(); got != 1 {
		t.Fatalf("coalesced flush took %d writes, want 1", got)
	}
	if s.verdictBatches.Load() != 1 {
		t.Fatalf("verdictBatches %d, want 1", s.verdictBatches.Load())
	}
	c.close(true)
}

// TestWriterLegacyCoalescesSingles: an unbatched conn still coalesces
// the flush — N single VERDICT frames, one Write.
func TestWriterLegacyCoalescesSingles(t *testing.T) {
	s := pipeServer()
	sp, cp := net.Pipe()
	defer cp.Close()
	c := newPipeConn(s, sp, false, 8)
	for i := 0; i < 3; i++ {
		c.sendVerdict(Verdict{Seq: uint32(i), Interval: uint32(i)})
	}
	go c.writer()
	fs := readFrames(t, cp, 3)
	for i, f := range fs {
		if f[0][0] != FrameVerdict {
			t.Fatalf("frame %d type %#x, want VERDICT", i, f[0][0])
		}
		v, err := ParseVerdict(f[1])
		if err != nil || v.Seq != uint32(i) {
			t.Fatalf("frame %d: %+v %v", i, v, err)
		}
	}
	if got := s.writeCalls.Load(); got != 1 {
		t.Fatalf("legacy flush took %d writes, want 1", got)
	}
	if s.verdictBatches.Load() != 0 {
		t.Fatal("batch frame emitted to a v1 conn")
	}
	c.close(true)
}

// TestWriterSoftCloseFlushesPartialCoalesce: a soft close with both a
// half-built verdict batch and a queued control frame still flushes
// everything — verdicts first, then the control frame — before the
// socket closes.
func TestWriterSoftCloseFlushesPartialCoalesce(t *testing.T) {
	s := pipeServer()
	sp, cp := net.Pipe()
	defer cp.Close()
	c := newPipeConn(s, sp, true, 8)
	for i := 0; i < 3; i++ {
		c.sendVerdict(Verdict{Seq: uint32(i), Interval: uint32(i)})
	}
	if !c.trySend(AppendDrain(s.getBuf(), "finished")) {
		t.Fatal("trySend refused with room in the outbox")
	}
	c.close(false) // soft: the writer must drain, then close
	go c.writer()
	fs := readFrames(t, cp, 2)
	if fs[0][0][0] != FrameVerdictBatch {
		t.Fatalf("first frame %#x, want VERDICT_BATCH (DRAIN overtook verdicts)", fs[0][0][0])
	}
	if it, err := ParseVerdictBatch(fs[0][1]); err != nil || it.Len() != 3 {
		t.Fatalf("batch: %v len %d", err, it.Len())
	}
	if fs[1][0][0] != FrameDrain {
		t.Fatalf("second frame %#x, want DRAIN", fs[1][0][0])
	}
	if reason, err := ParseDrain(fs[1][1]); err != nil || reason != "finished" {
		t.Fatalf("drain: %q %v", reason, err)
	}
	// After the drain flush the writer closes the socket itself.
	cp.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := bufio.NewReader(cp).ReadByte(); err == nil {
		t.Fatal("socket stayed open after soft-close drain")
	}
}

// blockingConn wraps a net.Conn and announces each Write entry, so a
// test can know the writer is wedged inside flush before poking at the
// queues — the "mid-coalesce" window made deterministic.
type blockingConn struct {
	net.Conn
	entered chan struct{}
}

func (b *blockingConn) Write(p []byte) (int, error) {
	select {
	case b.entered <- struct{}{}:
	default:
	}
	return b.Conn.Write(p)
}

// TestWriterSlowEvictMidCoalesce: the verdict queue filling while the
// writer is blocked inside a flush must evict the connection exactly
// like the old outbox-full path — the bound survives coalescing.
func TestWriterSlowEvictMidCoalesce(t *testing.T) {
	s := pipeServer()
	sp, cp := net.Pipe()
	defer cp.Close()
	const depth = 2
	bc := &blockingConn{Conn: sp, entered: make(chan struct{}, 1)}
	c := newPipeConn(s, bc, true, depth)
	go c.writer()
	c.sendVerdict(Verdict{Seq: 0})
	select {
	case <-bc.entered: // writer is now blocked in Write: nobody reads cp
	case <-time.After(5 * time.Second):
		t.Fatal("writer never reached Write")
	}
	for i := 0; i < depth; i++ {
		if !c.sendVerdict(Verdict{Seq: uint32(i + 1)}) {
			t.Fatalf("fill %d refused before the queue was full", i)
		}
	}
	if c.sendVerdict(Verdict{Seq: 99}) {
		t.Fatal("send into a full verdict queue succeeded")
	}
	if !c.evicted.Load() {
		t.Fatal("queue overflow did not evict")
	}
	if got := s.slowReaders.Load(); got != 1 {
		t.Fatalf("slowReaders %d, want 1", got)
	}
	// Eviction hard-closes the socket, which unblocks the wedged Write
	// and terminates the writer; further sends stay refused.
	if c.sendVerdict(Verdict{Seq: 100}) {
		t.Fatal("send after eviction succeeded")
	}
}
