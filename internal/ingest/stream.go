package ingest

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/source"
)

// recentVerdicts is the per-stream debug ring depth (HTTP polling).
const recentVerdicts = 32

// netStream adapts one remote client's sample feed to the fleet
// engine's unified source contract. It implements source.BufferedSource
// (the shard reads buffered samples allocation-free) and source.Queued
// (the wheel only harvests it when a sample is pending, so a
// client-paced stream never fabricates readings and finishes once its
// producer hangs up and the buffer drains).
//
// The stream outlives any single connection: a disconnect — clean,
// crashed, or evicted for wire damage — leaves the stream and its chain
// state intact, and a reconnecting client re-attaches and resumes from
// the server's authoritative next sequence number. That separation is
// what makes mid-stream disconnects and torn frames survivable without
// perturbing the verdict timeline.
//
// Verdict attribution: the owning shard strictly alternates, per
// stream, between reading a sample (ReadInto) and emitting its verdict
// (onVerdict) on one goroutine, so a tiny FIFO of sequence stamps —
// pushed on pop, consumed on verdict — pairs each wire verdict with the
// exact sample that produced it. A verdict arriving with no stamp is a
// hold-last repair (breaker open, shed harvest, no sample read); those
// are counted, not echoed, since they answer no client sample.
type netStream struct {
	key    string // tenant/stream, the engine stream ID
	tenant string
	name   string
	width  int
	srv    *Server
	ring   *sampleRing

	// Stamp FIFO, owned by the shard goroutine (see type comment).
	stamps []uint32
	sHead  int
	sN     int

	mu      sync.Mutex
	cur     *conn  // attached connection, nil while detached
	nextSeq uint32 // next sample sequence the server accepts

	finished atomic.Bool

	accepted    atomic.Int64 // samples admitted into the ring
	dups        atomic.Int64 // samples rejected as replays (seq < next)
	throttled   atomic.Int64 // samples rejected by the tenant rate quota
	scored      atomic.Int64 // verdicts emitted by the engine
	attributed  atomic.Int64 // verdicts paired with a client sample
	held        atomic.Int64 // hold-last verdicts (no sample consumed)
	undelivered atomic.Int64 // attributed verdicts with no conn to echo to
	reattaches  atomic.Int64

	vmu   sync.Mutex
	vring [recentVerdicts]Verdict
	vn    int64
}

func newNetStream(srv *Server, tenant, name string, width, window int) *netStream {
	return &netStream{
		key:    tenant + "/" + name,
		tenant: tenant,
		name:   name,
		width:  width,
		srv:    srv,
		ring:   newSampleRing(window, width),
		stamps: make([]uint32, window+1),
	}
}

// --- source contract (shard + wheel side) ---

// Read implements source.Source (allocating fallback path).
func (ns *netStream) Read(ctx context.Context, interval int) ([]uint64, error) {
	return ns.ReadInto(ctx, interval, make([]uint64, ns.width))
}

// ReadInto implements source.BufferedSource: it pops the oldest
// buffered sample into buf and stamps its sequence number for verdict
// attribution. Called only from the owning shard's goroutine.
func (ns *netStream) ReadInto(ctx context.Context, interval int, buf []uint64) ([]uint64, error) {
	if cap(buf) < ns.width {
		buf = make([]uint64, ns.width)
	}
	buf = buf[:ns.width]
	seq, ok := ns.ring.pop(buf)
	if !ok {
		// Harvested with nothing buffered (a shed window raced the
		// client): repair the interval, keep the timeline gap-free.
		return nil, source.ErrSampleLost
	}
	ns.pushStamp(seq)
	return buf, nil
}

// Pending implements source.Queued (wheel-poll, engine-lock hot).
func (ns *netStream) Pending() int { return ns.ring.Pending() }

// Closed implements source.Queued: true once the client said BYE (or
// the server force-closed the stream); buffered samples still score.
func (ns *netStream) Closed() bool { return ns.ring.Closed() }

func (ns *netStream) pushStamp(seq uint32) {
	if ns.sN == len(ns.stamps) {
		// Cannot happen in steady state (reads and verdicts alternate);
		// guard against overwrite anyway by dropping the oldest stamp.
		ns.sHead = (ns.sHead + 1) % len(ns.stamps)
		ns.sN--
	}
	ns.stamps[(ns.sHead+ns.sN)%len(ns.stamps)] = seq
	ns.sN++
}

func (ns *netStream) popStamp() uint32 {
	seq := ns.stamps[ns.sHead]
	ns.sHead = (ns.sHead + 1) % len(ns.stamps)
	ns.sN--
	return seq
}

// onVerdict is the engine's per-verdict callback (shard goroutine).
func (ns *netStream) onVerdict(v core.Verdict) {
	ns.scored.Add(1)
	if ns.sN == 0 {
		ns.held.Add(1)
		return
	}
	wire := Verdict{
		Seq:      ns.popStamp(),
		Interval: uint32(v.Interval),
		Score:    v.Score,
		Malware:  v.Malware,
	}
	ns.attributed.Add(1)
	ns.record(wire)
	ns.srv.deliverVerdict(ns, wire)
}

// onFinish is the engine's stream-finished callback. It may run under
// the engine's internal lock, so it only flips local state and pokes
// the attached connection's (non-blocking) outbox.
func (ns *netStream) onFinish() {
	ns.finished.Store(true)
	ns.srv.streamFinished(ns)
}

// record keeps the last few attributed verdicts for HTTP debugging.
func (ns *netStream) record(v Verdict) {
	ns.vmu.Lock()
	ns.vring[ns.vn%recentVerdicts] = v
	ns.vn++
	ns.vmu.Unlock()
}

// Recent returns the retained verdicts, oldest first.
func (ns *netStream) Recent() []Verdict {
	ns.vmu.Lock()
	defer ns.vmu.Unlock()
	n := ns.vn
	if n > recentVerdicts {
		n = recentVerdicts
	}
	out := make([]Verdict, 0, n)
	for i := ns.vn - n; i < ns.vn; i++ {
		out = append(out, ns.vring[i%recentVerdicts])
	}
	return out
}

// --- connection side ---

// attach makes c the stream's delivery target, returning the resume
// position for HELLO_OK and any previously attached connection (which
// the caller evicts: latest attach wins).
func (ns *netStream) attach(c *conn) (resume uint32, old *conn) {
	ns.mu.Lock()
	old = ns.cur
	ns.cur = c
	resume = ns.nextSeq
	ns.mu.Unlock()
	if old != nil {
		ns.reattaches.Add(1)
	}
	return resume, old
}

// detach clears the delivery target if c still owns it.
func (ns *netStream) detach(c *conn) {
	ns.mu.Lock()
	if ns.cur == c {
		ns.cur = nil
	}
	ns.mu.Unlock()
}

// attachedConn returns the current delivery target.
func (ns *netStream) attachedConn() *conn {
	ns.mu.Lock()
	c := ns.cur
	ns.mu.Unlock()
	return c
}

// admitResult classifies one sample's admission.
type admitResult struct {
	dup     bool
	shed    bool
	shedSeq uint32
}

// admit validates and buffers one sample from the wire. Replays of
// already-admitted sequence numbers (a client's naive retry layer, or a
// duplicated frame injected on the wire) are dropped idempotently. The
// ring push happens under the stream lock so two connections racing a
// re-attach cannot interleave samples out of order.
func (ns *netStream) admit(seq uint32, vals []uint64) admitResult {
	ns.mu.Lock()
	if seq < ns.nextSeq {
		ns.mu.Unlock()
		ns.dups.Add(1)
		return admitResult{dup: true}
	}
	ns.nextSeq = seq + 1
	dropSeq, dropped := ns.ring.push(seq, vals)
	ns.mu.Unlock()
	ns.accepted.Add(1)
	return admitResult{shed: dropped, shedSeq: dropSeq}
}

// StreamStats is the externally visible state of one ingest stream.
type StreamStats struct {
	Key      string
	Tenant   string
	Width    int
	Attached bool
	Finished bool
	// NextSeq is the authoritative resume position; Pending the buffered
	// inflight depth.
	NextSeq uint32
	Pending int
	// Accepted samples entered the ring; Dups/Throttled were rejected at
	// admission; RingShed were evicted by the inflight window.
	Accepted  int64
	Dups      int64
	Throttled int64
	RingShed  int64
	// Verdicts is the engine timeline length; Attributed of those were
	// paired with a client sample (and echoed), Held were hold-last
	// repairs, Undelivered had no connection to echo to.
	Verdicts    int64
	Attributed  int64
	Held        int64
	Undelivered int64
	Reattaches  int64
}

func (ns *netStream) stats() StreamStats {
	ns.mu.Lock()
	next := ns.nextSeq
	attached := ns.cur != nil
	ns.mu.Unlock()
	return StreamStats{
		Key:         ns.key,
		Tenant:      ns.tenant,
		Width:       ns.width,
		Attached:    attached,
		Finished:    ns.finished.Load(),
		NextSeq:     next,
		Pending:     ns.ring.Pending(),
		Accepted:    ns.accepted.Load(),
		Dups:        ns.dups.Load(),
		Throttled:   ns.throttled.Load(),
		RingShed:    ns.ring.Dropped(),
		Verdicts:    ns.scored.Load(),
		Attributed:  ns.attributed.Load(),
		Held:        ns.held.Load(),
		Undelivered: ns.undelivered.Load(),
		Reattaches:  ns.reattaches.Load(),
	}
}
