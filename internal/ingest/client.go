package ingest

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/faults"
)

// ErrConnDropped reports that a wire fault closed the client's
// connection mid-send (the injected client-crash shape). The caller
// reconnects and resumes from the server's HELLO_OK position.
var ErrConnDropped = errors.New("ingest: connection dropped by fault injection")

// ClientConfig parameterises Dial.
type ClientConfig struct {
	// Addr is the server's TCP address.
	Addr string
	// Hello is the handshake to send (Version defaults to
	// ProtoVersion).
	Hello Hello
	// Timeout bounds dial, the handshake round-trip and each Next read
	// (<=0 means 5s).
	Timeout time.Duration
	// Injector, when set, mangles outgoing frames — the chaos drills'
	// misbehaving-client mode. Truncation faults close the connection
	// after the torn bytes, like a real crash mid-write.
	Injector *faults.WireInjector
}

func (c ClientConfig) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 5 * time.Second
}

// Client is a minimal ingest protocol client: good enough for drills,
// benchmarks and as the README's reference implementation. Not safe for
// concurrent use of the same method, but the send side (Send, Queue,
// Flush, Bye) and the read side (Next) may run on two goroutines.
type Client struct {
	cfg   ClientConfig
	nc    net.Conn
	br    *bufio.Reader
	wbuf  []byte
	rbuf  []byte
	width int

	// Batch queue (send side): sequence numbers plus the vectors back
	// to back, encoded into one SAMPLE_BATCH frame on Flush.
	pendSeqs []uint32
	pendVals []uint64

	// Decoded VERDICT_BATCH records awaiting delivery (read side):
	// Next pops these before touching the socket, so batch frames
	// surface as ordinary per-verdict events.
	pendV     []Verdict
	pendVHead int

	writes atomic.Int64

	// Admitted is the server's HELLO_OK reply (valid after Dial).
	Admitted HelloOK
}

// Event is one server-to-client frame, decoded.
type Event struct {
	Type     byte
	HelloOK  HelloOK  // FrameHelloOK
	Verdict  Verdict  // FrameVerdict
	Shed     Shed     // FrameShed
	Retry    Retry    // FrameRetry
	Redirect Redirect // FrameRedirect
	Reason   string   // FrameDrain / FrameError
}

// Dial connects, performs the handshake and returns an admitted
// client. A server rejection (RETRY, DRAIN, ERROR) is returned as a
// *RejectedError so callers can branch on the frame type.
func Dial(cfg ClientConfig) (*Client, error) {
	h := cfg.Hello
	if h.Version == 0 {
		h.Version = ProtoVersion
	}
	nc, err := net.DialTimeout("tcp", cfg.Addr, cfg.timeout())
	if err != nil {
		return nil, fmt.Errorf("ingest: dial %s: %w", cfg.Addr, err)
	}
	c := &Client{cfg: cfg, nc: nc, br: bufio.NewReaderSize(nc, 4096), width: h.Width}
	if err := c.writeFrames(AppendHello(c.wbuf[:0], h)); err != nil {
		nc.Close()
		return nil, err
	}
	ev, err := c.Next()
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("ingest: handshake: %w", err)
	}
	if ev.Type != FrameHelloOK {
		nc.Close()
		return nil, &RejectedError{Event: ev}
	}
	c.Admitted = ev.HelloOK
	return c, nil
}

// RejectedError is a handshake answered with something other than
// HELLO_OK.
type RejectedError struct{ Event Event }

func (e *RejectedError) Error() string {
	switch e.Event.Type {
	case FrameRetry:
		return fmt.Sprintf("ingest: rejected: retry after %dms (%s)", e.Event.Retry.AfterMillis, e.Event.Retry.Reason)
	case FrameDrain:
		return fmt.Sprintf("ingest: rejected: draining (%s)", e.Event.Reason)
	case FrameRedirect:
		return fmt.Sprintf("ingest: rejected: stream owned by %s (%s)", e.Event.Redirect.Addr, e.Event.Redirect.Reason)
	case FrameError:
		return fmt.Sprintf("ingest: rejected: %s", e.Event.Reason)
	}
	return fmt.Sprintf("ingest: rejected with frame 0x%02x", e.Event.Type)
}

// SetInjector arms (or disarms, with nil) wire fault injection on
// subsequent sends. Drills use it to handshake cleanly and then turn a
// well-behaved client into a misbehaving one.
func (c *Client) SetInjector(in *faults.WireInjector) { c.cfg.Injector = in }

// Send transmits one sample. With an injector configured the frame may
// be corrupted, delayed, duplicated, or torn — in the torn case the
// connection closes and ErrConnDropped comes back.
func (c *Client) Send(seq uint32, vals []uint64) error {
	c.wbuf = AppendSample(c.wbuf[:0], seq, vals)
	return c.writeFrames(c.wbuf)
}

// Batching reports whether the server negotiated batch framing.
func (c *Client) Batching() bool { return c.Admitted.Batching }

// WriteCalls returns how many socket Write invocations the client has
// made — the syscall-amortization counter the capacity benchmarks
// report.
func (c *Client) WriteCalls() int64 { return c.writes.Load() }

// Queue buffers one sample for a batched send; the queue auto-flushes
// at the frame's record limit. Callers finish with Flush (Bye flushes
// implicitly). On a connection without negotiated batching the queued
// samples go out as contiguous single-record frames in one write, so
// the wire stays valid for old servers while syscalls still amortize.
func (c *Client) Queue(seq uint32, vals []uint64) error {
	c.pendSeqs = append(c.pendSeqs, seq)
	c.pendVals = append(c.pendVals, vals...)
	if len(c.pendSeqs) >= SampleBatchLimit(c.width) {
		return c.Flush()
	}
	return nil
}

// Flush sends every queued sample: one SAMPLE_BATCH when batching is
// negotiated and more than one sample is pending, single-record frames
// otherwise — either way coalesced into one Write.
func (c *Client) Flush() error {
	n := len(c.pendSeqs)
	if n == 0 {
		return nil
	}
	if c.Admitted.Batching && n > 1 {
		c.wbuf = AppendSampleBatch(c.wbuf[:0], c.pendSeqs, c.pendVals, c.width)
	} else {
		c.wbuf = c.wbuf[:0]
		for i, seq := range c.pendSeqs {
			c.wbuf = AppendSample(c.wbuf, seq, c.pendVals[i*c.width:(i+1)*c.width])
		}
	}
	c.pendSeqs = c.pendSeqs[:0]
	c.pendVals = c.pendVals[:0]
	return c.writeFrames(c.wbuf)
}

// Bye announces a clean end of stream (flushing queued samples first).
func (c *Client) Bye() error {
	if err := c.Flush(); err != nil {
		return err
	}
	return c.writeFrames(AppendFrame(c.wbuf[:0], FrameBye, nil))
}

func (c *Client) writeFrames(frame []byte) error {
	out := [][]byte{frame}
	closeAfter := false
	if c.cfg.Injector != nil {
		f := c.cfg.Injector.Apply(frame)
		out = f.Frames
		closeAfter = f.CloseAfter
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
	}
	if err := c.nc.SetWriteDeadline(time.Now().Add(c.cfg.timeout())); err != nil {
		return fmt.Errorf("ingest: send: %w", err)
	}
	for _, fr := range out {
		c.writes.Add(1)
		if _, err := c.nc.Write(fr); err != nil {
			return fmt.Errorf("ingest: send: %w", err)
		}
	}
	if closeAfter {
		c.nc.Close()
		return ErrConnDropped
	}
	return nil
}

// Next reads one server frame, blocking up to the configured timeout.
// VERDICT_BATCH frames are unpacked transparently: each record comes
// back as an ordinary FrameVerdict event.
func (c *Client) Next() (Event, error) {
	if c.pendVHead < len(c.pendV) {
		v := c.pendV[c.pendVHead]
		c.pendVHead++
		return Event{Type: FrameVerdict, Verdict: v}, nil
	}
	c.nc.SetReadDeadline(time.Now().Add(c.cfg.timeout()))
	typ, body, nbuf, err := ReadFrame(c.br, MaxFrameBytes, c.rbuf)
	c.rbuf = nbuf
	if err != nil {
		return Event{}, err
	}
	ev := Event{Type: typ}
	switch typ {
	case FrameVerdict:
		ev.Verdict, err = ParseVerdict(body)
	case FrameVerdictBatch:
		vb, perr := ParseVerdictBatch(body)
		if perr != nil {
			return Event{}, perr
		}
		if vb.Len() == 0 {
			// Tolerated but pointless; read the next frame.
			return c.Next()
		}
		c.pendV = c.pendV[:0]
		for {
			v, ok := vb.Next()
			if !ok {
				break
			}
			c.pendV = append(c.pendV, v)
		}
		c.pendVHead = 1
		return Event{Type: FrameVerdict, Verdict: c.pendV[0]}, nil
	case FrameShed:
		ev.Shed, err = ParseShed(body)
	case FrameRetry:
		ev.Retry, err = ParseRetry(body)
	case FrameRedirect:
		ev.Redirect, err = ParseRedirect(body)
	case FrameDrain:
		ev.Reason, err = ParseDrain(body)
	case FrameError:
		ev.Reason, err = ParseError(body)
	case FrameHelloOK:
		ev.HelloOK, err = ParseHelloOK(body)
	default:
		err = fmt.Errorf("%w: unexpected server frame 0x%02x", ErrBadFrame, typ)
	}
	return ev, err
}

// Close hangs up without BYE (the crash shape, when done deliberately).
func (c *Client) Close() error { return c.nc.Close() }
