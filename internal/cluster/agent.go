package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/ingest"
)

// ErrKilled reports that the node's fault schedule killed it: the
// agent stops dead — no BYE, no final state fan-in — and the harness
// is expected to hard-stop the rest of the process.
var ErrKilled = errors.New("cluster: node killed by fault injection")

// AgentConfig parameterises a node's membership agent.
type AgentConfig struct {
	// NodeID is this member's stable identity; placement hashes it.
	NodeID string
	// Coordinator is the coordinator's TCP address.
	Coordinator string
	// Advertise is the address clients should be redirected to — this
	// node's ingest listener.
	Advertise string
	// Weight scales this node's share of the ring (default 1).
	Weight int
	// Engine receives INSTALLed stream states and supplies captures
	// for the periodic fan-in. Required.
	Engine *fleet.Engine
	// HeartbeatEvery is the lease renewal cadence (default 500ms).
	// Must be comfortably under the coordinator's lease TTL.
	HeartbeatEvery time.Duration
	// StatesEvery ships a full state capture every Nth heartbeat
	// (default 4; <0 disables the periodic fan-in).
	StatesEvery int
	// VNodes must match the coordinator's (default DefaultVNodes).
	VNodes int
	// Stats supplies the node's serving counters for lease heartbeats;
	// nil reports zeros.
	Stats func() ingest.NodeStats
	// OnDrain runs once when the coordinator commands a drain —
	// typically server.Drain plus engine.Drain. The agent keeps
	// heartbeating (flagged draining) until EngineDone closes, then
	// ships the final states and says BYE.
	OnDrain func()
	// EngineDone is closed when the engine's Run has returned; it
	// gates the final fan-in. Required when OnDrain is set.
	EngineDone <-chan struct{}
	// Injector, when set, applies the node's fault schedule per
	// heartbeat (kill windows, partitions, slow heartbeats).
	Injector *faults.NodeInjector
	// Seed drives reconnect backoff jitter.
	Seed uint64
	// DialTimeout bounds coordinator dials (default 2s).
	DialTimeout time.Duration
	// Logf receives agent events; nil means silent.
	Logf func(format string, args ...any)
}

func (c AgentConfig) heartbeat() time.Duration {
	if c.HeartbeatEvery > 0 {
		return c.HeartbeatEvery
	}
	return 500 * time.Millisecond
}

func (c AgentConfig) statesEvery() int {
	if c.StatesEvery > 0 {
		return c.StatesEvery
	}
	if c.StatesEvery < 0 {
		return 0
	}
	return 4
}

func (c AgentConfig) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 2 * time.Second
}

// AgentStats snapshots the agent's counters.
type AgentStats struct {
	Epoch         uint64
	RingVersion   uint64 // placement view the node is routing by
	Joins         int64  // successful JOINs (rejoins included)
	Beats         int64  // leases acknowledged
	Installs      int64  // stream states installed from the coordinator
	StatesShipped int64  // stream states fanned in to the coordinator
	Draining      bool
}

// Agent is one node's cluster membership loop: it joins, renews its
// lease, applies pushed stream states, fans captured states back in,
// serves the placement hook from its latest ring view, and runs the
// drain handshake. Run owns a single goroutine; Placement and Stats
// are safe from any.
type Agent struct {
	cfg AgentConfig

	ring     atomic.Pointer[Ring]
	epoch    atomic.Uint64
	draining atomic.Bool

	joins    atomic.Int64
	beats    atomic.Int64
	installs atomic.Int64
	shipped  atomic.Int64

	drainOnce sync.Once
}

// NewAgent validates the config and builds an idle agent.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.NodeID == "" || cfg.Coordinator == "" || cfg.Advertise == "" {
		return nil, errors.New("cluster: agent needs NodeID, Coordinator and Advertise")
	}
	if cfg.Engine == nil {
		return nil, errors.New("cluster: agent needs an engine")
	}
	if cfg.OnDrain != nil && cfg.EngineDone == nil {
		return nil, errors.New("cluster: OnDrain without EngineDone")
	}
	if cfg.Weight < 1 {
		cfg.Weight = 1
	}
	return &Agent{cfg: cfg}, nil
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// Placement implements ingest.Config.Placement from the latest ring
// view: before any ring arrives, everything is local (standalone
// behaviour); afterwards a key is local iff this node owns it.
func (a *Agent) Placement(key string) (addr string, local bool) {
	r := a.ring.Load()
	if r == nil {
		return "", true
	}
	m, ok := r.Owner(key)
	if !ok || m.ID == a.cfg.NodeID {
		return "", true
	}
	return m.Addr, false
}

// Stats snapshots the agent's counters.
func (a *Agent) Stats() AgentStats {
	return AgentStats{
		Epoch:         a.epoch.Load(),
		RingVersion:   a.ringVersion(),
		Joins:         a.joins.Load(),
		Beats:         a.beats.Load(),
		Installs:      a.installs.Load(),
		StatesShipped: a.shipped.Load(),
		Draining:      a.draining.Load(),
	}
}

// Draining reports whether the coordinator has commanded a drain.
func (a *Agent) Draining() bool { return a.draining.Load() }

// Drain starts the drain handshake locally — an operator signal rather
// than a coordinator command. Same path either way: the OnDrain hook
// runs, subsequent leases carry the draining flag, and once the engine
// finishes the agent ships its final states and says BYE.
func (a *Agent) Drain() { a.startDrain() }

// agentSess is one live control connection.
type agentSess struct {
	nc   net.Conn
	br   *bufio.Reader
	rbuf []byte
	wbuf []byte
}

func (s *agentSess) write(frame []byte) error {
	if err := s.nc.SetWriteDeadline(time.Now().Add(2 * time.Second)); err != nil {
		return err
	}
	_, err := s.nc.Write(frame)
	return err
}

// Run drives the membership loop until ctx cancels (returns ctx.Err()),
// the fault schedule kills the node (ErrKilled), or a commanded drain
// completes (nil, after the final fan-in and BYE).
func (a *Agent) Run(ctx context.Context) error {
	hb := 0      // heartbeat index: the fault schedule's clock
	attempt := 0 // consecutive failed joins, for backoff
	var sess *agentSess
	defer func() {
		if sess != nil {
			sess.nc.Close()
		}
	}()
	ticker := time.NewTicker(a.cfg.heartbeat())
	defer ticker.Stop()

	for {
		// The drain completion channel is only armed while draining —
		// a nil channel never fires.
		var engDone <-chan struct{}
		if a.draining.Load() {
			engDone = a.cfg.EngineDone
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-engDone:
			return a.finishDrain(sess)
		case <-ticker.C:
		}

		n := hb
		hb++
		if in := a.cfg.Injector; in != nil {
			f := in.Heartbeat(n)
			if f.Kill {
				a.logf("cluster: %s: fault schedule kills at heartbeat %d", a.cfg.NodeID, n)
				return ErrKilled
			}
			if f.Drop {
				// Partitioned: no heartbeat, no re-dial. An open
				// connection goes silent rather than closing — the
				// asymmetric failure the lease TTL exists for.
				continue
			}
			if f.Delay > 0 {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(f.Delay):
				}
			}
		}

		if sess == nil {
			s, err := a.join()
			if err != nil {
				attempt++
				a.logf("cluster: %s: join: %v", a.cfg.NodeID, err)
				wait := ingest.Backoff(ingest.Retry{AfterMillis: uint32(a.cfg.heartbeat() / time.Millisecond)},
					a.cfg.Seed, "agent/"+a.cfg.NodeID, attempt-1)
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(wait):
				}
				continue
			}
			sess = s
			attempt = 0
		}

		if err := a.beat(sess, n); err != nil {
			a.logf("cluster: %s: heartbeat: %v", a.cfg.NodeID, err)
			sess.nc.Close()
			sess = nil
		}
	}
}

// join dials the coordinator and performs the JOIN handshake.
func (a *Agent) join() (*agentSess, error) {
	nc, err := net.DialTimeout("tcp", a.cfg.Coordinator, a.cfg.dialTimeout())
	if err != nil {
		return nil, err
	}
	s := &agentSess{nc: nc, br: bufio.NewReaderSize(nc, 1<<15)}
	s.wbuf = ingest.AppendJoin(s.wbuf[:0], ingest.Join{
		Version: ingest.ProtoVersion,
		Weight:  a.cfg.Weight,
		NodeID:  a.cfg.NodeID,
		Addr:    a.cfg.Advertise,
	})
	if err := s.write(s.wbuf); err != nil {
		nc.Close()
		return nil, err
	}
	body, err := a.readUntil(s, ingest.FrameJoinOK)
	if err != nil {
		nc.Close()
		return nil, err
	}
	jok, err := ingest.ParseJoinOK(body)
	if err != nil {
		nc.Close()
		return nil, err
	}
	a.epoch.Store(jok.Epoch)
	a.installRing(jok.Ring)
	a.joins.Add(1)
	a.logf("cluster: %s joined as epoch %d (ring v%d, %d members)",
		a.cfg.NodeID, jok.Epoch, jok.Ring.Version, len(jok.Ring.Members))
	return s, nil
}

// beat renews the lease and processes whatever the coordinator pushed.
func (a *Agent) beat(s *agentSess, n int) error {
	var stats ingest.NodeStats
	if a.cfg.Stats != nil {
		stats = a.cfg.Stats()
	}
	s.wbuf = ingest.AppendLease(s.wbuf[:0], ingest.Lease{
		Epoch:       a.epoch.Load(),
		RingVersion: a.ringVersion(),
		Draining:    a.draining.Load(),
		Stats:       stats,
	})
	if err := s.write(s.wbuf); err != nil {
		return err
	}
	body, err := a.readUntil(s, ingest.FrameLeaseOK)
	if err != nil {
		return err
	}
	lok, err := ingest.ParseLeaseOK(body)
	if err != nil {
		return err
	}
	if lok.Epoch != a.epoch.Load() {
		return fmt.Errorf("lease epoch %d, ours %d", lok.Epoch, a.epoch.Load())
	}
	a.beats.Add(1)
	a.installRing(lok.Ring)
	if lok.Drain {
		a.startDrain()
	}
	if se := a.cfg.statesEvery(); se > 0 && n%se == se-1 {
		if err := a.shipStates(s, false); err != nil {
			a.logf("cluster: %s: state fan-in: %v", a.cfg.NodeID, err)
		}
	}
	return nil
}

func (a *Agent) startDrain() {
	a.drainOnce.Do(func() {
		a.draining.Store(true)
		a.logf("cluster: %s: drain commanded", a.cfg.NodeID)
		if a.cfg.OnDrain != nil {
			a.cfg.OnDrain()
		}
	})
}

// finishDrain ships the final post-Run state capture and says BYE. A
// lost session is re-joined once — the states are the whole point of
// the orchestrated path.
func (a *Agent) finishDrain(sess *agentSess) error {
	if sess == nil {
		s, err := a.join()
		if err != nil {
			return fmt.Errorf("cluster: drain fan-in: %w", err)
		}
		sess = s
		defer sess.nc.Close()
	}
	if err := a.shipStates(sess, true); err != nil {
		return fmt.Errorf("cluster: drain fan-in: %w", err)
	}
	err := sess.write(ingest.AppendFrame(sess.wbuf[:0], ingest.FrameBye, nil))
	a.logf("cluster: %s: drained, leaving", a.cfg.NodeID)
	return err
}

// shipStates captures the engine's stream states and sends them as
// STATE frames. final=true captures after Run returned (direct read,
// finished streams included); otherwise the capture rides the shard
// queues with a bounded wait.
func (a *Agent) shipStates(s *agentSess, final bool) error {
	ctx := context.Background()
	if !final {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, 2*a.cfg.heartbeat())
		defer cancel()
	}
	states, err := a.cfg.Engine.CaptureStates(ctx, nil)
	if err != nil {
		return err
	}
	// Coalesce the whole fan-in into one buffer and one write: a
	// STATE frame per stream but a single deadline + syscall per
	// shipment, so heartbeat cost stays O(flush) as fleets grow.
	var buf bytes.Buffer
	shipped := int64(0)
	s.wbuf = s.wbuf[:0]
	for key, st := range states {
		buf.Reset()
		if err := gob.NewEncoder(&buf).Encode(st); err != nil {
			return err
		}
		if buf.Len()+len(key)+16 > ingest.MaxFrameBytes {
			a.logf("cluster: %s: state for %s too large to ship (%d bytes)", a.cfg.NodeID, key, buf.Len())
			continue
		}
		s.wbuf = ingest.AppendStreamState(s.wbuf, ingest.FrameState, ingest.StreamState{
			Key:      key,
			Interval: uint32(st.Interval),
			Blob:     buf.Bytes(),
		})
		shipped++
	}
	if len(s.wbuf) == 0 {
		return nil
	}
	if err := s.write(s.wbuf); err != nil {
		return err
	}
	a.shipped.Add(shipped)
	return nil
}

// readUntil reads control frames until the wanted type arrives,
// applying INSTALLs inline.
func (a *Agent) readUntil(s *agentSess, want byte) ([]byte, error) {
	deadline := time.Now().Add(2 * a.cfg.dialTimeout())
	for {
		s.nc.SetReadDeadline(deadline)
		typ, body, nbuf, err := ingest.ReadFrame(s.br, ingest.MaxFrameBytes, s.rbuf)
		s.rbuf = nbuf
		if err != nil {
			return nil, err
		}
		switch typ {
		case want:
			return body, nil
		case ingest.FrameInstall:
			a.applyInstall(body)
		default:
			return nil, fmt.Errorf("cluster: unexpected frame 0x%02x", typ)
		}
	}
}

func (a *Agent) applyInstall(body []byte) {
	st, err := ingest.ParseStreamState(body)
	if err != nil {
		a.logf("cluster: %s: bad INSTALL: %v", a.cfg.NodeID, err)
		return
	}
	var cs core.ChainState
	if err := gob.NewDecoder(bytes.NewReader(st.Blob)).Decode(&cs); err != nil {
		a.logf("cluster: %s: INSTALL %s: %v", a.cfg.NodeID, st.Key, err)
		return
	}
	n := a.cfg.Engine.SeedRestored(map[string]core.ChainState{st.Key: cs})
	a.installs.Add(int64(n))
	if n > 0 {
		a.logf("cluster: %s: installed %s at interval %d", a.cfg.NodeID, st.Key, cs.Interval)
	}
}

func (a *Agent) ringVersion() uint64 {
	if r := a.ring.Load(); r != nil {
		return r.Version()
	}
	return 0
}

func (a *Agent) installRing(ru ingest.RingUpdate) {
	cur := a.ring.Load()
	if cur != nil && cur.Version() >= ru.Version {
		return
	}
	a.ring.Store(BuildRing(ru.Version, ru.Members, a.cfg.VNodes))
}
