package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/ingest"
)

// CoordinatorConfig parameterises a coordinator.
type CoordinatorConfig struct {
	// LeaseTTL is how long a member survives without a heartbeat
	// before its lease expires and its streams fail over (default 2s).
	// Agents heartbeat at a fraction of this; the expiry scanner runs
	// at TTL/4.
	LeaseTTL time.Duration
	// VNodes is the ring points per unit of member weight (default
	// DefaultVNodes). Every node must agree on it.
	VNodes int
	// Logf receives membership events; nil means silent.
	Logf func(format string, args ...any)
}

func (c CoordinatorConfig) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 2 * time.Second
}

// Handoff records one stream's ownership move: the audit trail a drill
// checks to prove every migration was observed and attributed.
type Handoff struct {
	Stream   string
	From, To string
	// Interval is the stored state's interval at handoff time — how
	// much of the timeline the new owner starts with (0 means the new
	// owner starts cold and the client replays from the beginning).
	Interval uint32
	// Reason is "drain" (orchestrated), "failover" (lease expiry) or
	// "leave" (voluntary BYE outside a drain).
	Reason string
}

// MemberStatus is one member's externally visible state.
type MemberStatus struct {
	ID       string
	Addr     string
	Epoch    uint64
	Weight   int
	Alive    bool // control connection currently attached
	Draining bool
	LastBeat time.Time
	Stats    ingest.NodeStats
}

// CoordinatorStats aggregates the control plane's counters.
type CoordinatorStats struct {
	RingVersion   uint64
	Members       int // known members (includes disconnected, not yet expired)
	Placed        int // members currently in the ring
	Draining      int
	Joins         int64
	LeaseExpiries int64
	Leaves        int64
	StatesStored  int64
	Installs      int64
	Handoffs      int
	// Fleet is the sum of every member's last reported stats.
	Fleet ingest.NodeStats
}

type member struct {
	info     ingest.Member
	conn     *coordConn
	lastBeat time.Time
	drainReq bool // coordinator commanded a drain
	draining bool // node acknowledged it is draining
	stats    ingest.NodeStats
}

type storedState struct {
	interval uint32
	blob     []byte
}

// coordConn serialises writes to one control connection: the handler
// goroutine replies to leases while membership changes push installs
// from other goroutines.
type coordConn struct {
	nc       net.Conn
	memberID string // set once the JOIN lands

	mu sync.Mutex
}

func (cc *coordConn) send(frame []byte) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
	_, err := cc.nc.Write(frame)
	return err
}

// pendingSend is a frame to deliver after the coordinator lock drops —
// conn writes block on deadlines and must never stall the lease table.
type pendingSend struct {
	cc    *coordConn
	frame []byte
}

// Coordinator owns the cluster's lease table: it admits members,
// places streams by consistent hashing, expires silent nodes, and
// shuttles captured stream states to whichever node owns them now. It
// is deliberately not replicated — a single process, like the paper's
// single detection host, with crash recovery left to the nodes' own
// checkpoints (see DESIGN.md for the failure matrix).
type Coordinator struct {
	cfg CoordinatorConfig

	mu          sync.Mutex
	members     map[string]*member
	ring        *Ring
	ringVersion uint64
	nextEpoch   uint64
	states      map[string]*storedState
	handoffs    []Handoff
	handoffSeen map[string]struct{}
	conns       map[*coordConn]struct{}
	ln          net.Listener
	closed      bool

	joins    int64
	expiries int64
	leaves   int64
	stored   int64
	installs int64

	scanStop chan struct{}
	wg       sync.WaitGroup
}

// NewCoordinator builds an idle coordinator; Serve starts it.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	return &Coordinator{
		cfg:         cfg,
		members:     make(map[string]*member),
		ring:        BuildRing(0, nil, cfg.VNodes),
		states:      make(map[string]*storedState),
		handoffSeen: make(map[string]struct{}),
		conns:       make(map[*coordConn]struct{}),
		scanStop:    make(chan struct{}),
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Serve accepts control connections on ln until Close. The lease
// expiry scanner runs for the duration.
func (c *Coordinator) Serve(ln net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("cluster: coordinator closed")
	}
	c.ln = ln
	c.mu.Unlock()

	c.wg.Add(1)
	go c.scanLeases()

	for {
		nc, err := ln.Accept()
		if err != nil {
			if c.isClosed() {
				return nil
			}
			return err
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleConn(nc)
		}()
	}
}

func (c *Coordinator) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Close stops the listener, the scanner, and every control connection.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ln := c.ln
	for cc := range c.conns {
		cc.nc.Close()
	}
	c.mu.Unlock()
	close(c.scanStop)
	if ln != nil {
		ln.Close()
	}
	c.wg.Wait()
	return nil
}

// scanLeases expires members whose lease ran out: the node-death
// detector. A member with no control connection still gets its full
// TTL — transient TCP loss must not trigger failover; only silence
// does.
func (c *Coordinator) scanLeases() {
	defer c.wg.Done()
	ttl := c.cfg.leaseTTL()
	t := time.NewTicker(ttl / 4)
	defer t.Stop()
	for {
		select {
		case <-c.scanStop:
			return
		case now := <-t.C:
			var sends []pendingSend
			c.mu.Lock()
			for id, m := range c.members {
				if now.Sub(m.lastBeat) <= ttl {
					continue
				}
				c.expiries++
				c.logf("cluster: lease expired for %s (last beat %v ago)", id, now.Sub(m.lastBeat).Round(time.Millisecond))
				sends = append(sends, c.removeMemberLocked(m, "failover")...)
			}
			c.mu.Unlock()
			c.deliver(sends)
		}
	}
}

func (c *Coordinator) deliver(sends []pendingSend) {
	for _, s := range sends {
		if err := s.cc.send(s.frame); err != nil {
			c.logf("cluster: push to %s: %v", s.cc.memberID, err)
		}
	}
}

// rebuildLocked recomputes the ring from the current placeable
// membership (everyone not commanded to drain), bumping the version.
func (c *Coordinator) rebuildLocked() {
	c.ringVersion++
	infos := make([]ingest.Member, 0, len(c.members))
	for _, m := range c.members {
		if m.drainReq {
			continue
		}
		infos = append(infos, m.info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	c.ring = BuildRing(c.ringVersion, infos, c.cfg.VNodes)
}

func (c *Coordinator) ringUpdateLocked() ingest.RingUpdate {
	return ingest.RingUpdate{Version: c.ring.Version(), Members: c.ring.Members()}
}

// installLocked queues an INSTALL of state st to the member owning key
// now, if it is connected.
func (c *Coordinator) installLocked(key string, st *storedState, sends []pendingSend) []pendingSend {
	owner, ok := c.ring.Owner(key)
	if !ok {
		return sends
	}
	m := c.members[owner.ID]
	if m == nil || m.conn == nil {
		return sends
	}
	c.installs++
	frame := ingest.AppendStreamState(nil, ingest.FrameInstall,
		ingest.StreamState{Key: key, Interval: st.interval, Blob: st.blob})
	return append(sends, pendingSend{m.conn, frame})
}

// recordHandoffLocked appends to the audit trail, deduplicated per
// (stream, from-incarnation, reason): a drained member's streams show
// up both when the drain is commanded (states already stored) and when
// its final capture arrives (states shipped late) — one move, one
// record.
func (c *Coordinator) recordHandoffLocked(h Handoff, fromEpoch uint64) {
	key := fmt.Sprintf("%s|%s|%s|%d", h.Stream, h.From, h.Reason, fromEpoch)
	if _, dup := c.handoffSeen[key]; dup {
		return
	}
	c.handoffSeen[key] = struct{}{}
	c.handoffs = append(c.handoffs, h)
}

// removeMemberLocked drops a member entirely — lease expiry or BYE —
// records the handoffs for every stream it owned, and queues installs
// to the new owners. Returns the queued sends.
func (c *Coordinator) removeMemberLocked(m *member, reason string) []pendingSend {
	old := c.ring
	delete(c.members, m.info.ID)
	if m.conn != nil {
		m.conn.nc.Close()
		m.conn = nil
	}
	c.rebuildLocked()
	var sends []pendingSend
	for key, st := range c.states {
		if o, ok := old.Owner(key); !ok || o.ID != m.info.ID {
			continue
		}
		h := Handoff{Stream: key, From: m.info.ID, Interval: st.interval, Reason: reason}
		if no, ok := c.ring.Owner(key); ok {
			h.To = no.ID
			sends = c.installLocked(key, st, sends)
		}
		c.recordHandoffLocked(h, m.info.Epoch)
	}
	return sends
}

func (c *Coordinator) handleConn(nc net.Conn) {
	cc := &coordConn{nc: nc}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		nc.Close()
		return
	}
	c.conns[cc] = struct{}{}
	c.mu.Unlock()
	defer func() {
		nc.Close()
		c.mu.Lock()
		delete(c.conns, cc)
		// Detach, never expire: losing TCP is not losing the lease.
		if m := c.members[cc.memberID]; m != nil && m.conn == cc {
			m.conn = nil
		}
		c.mu.Unlock()
	}()

	br := bufio.NewReaderSize(nc, 1<<15)
	var rbuf []byte
	readDeadline := 2 * c.cfg.leaseTTL()
	joined := false
	for {
		nc.SetReadDeadline(time.Now().Add(readDeadline))
		typ, body, nbuf, err := ingest.ReadFrame(br, ingest.MaxFrameBytes, rbuf)
		rbuf = nbuf
		if err != nil {
			return
		}
		switch {
		case !joined && typ == ingest.FrameJoin:
			if !c.handleJoin(cc, body) {
				return
			}
			joined = true
		case !joined:
			c.logf("cluster: %s: frame 0x%02x before JOIN", nc.RemoteAddr(), typ)
			return
		case typ == ingest.FrameLease:
			if !c.handleLease(cc, body) {
				return
			}
		case typ == ingest.FrameState:
			if !c.handleState(cc, body) {
				return
			}
		case typ == ingest.FrameBye:
			c.handleBye(cc)
			return
		default:
			c.logf("cluster: %s: unexpected frame 0x%02x", cc.memberID, typ)
			return
		}
	}
}

func (c *Coordinator) handleJoin(cc *coordConn, body []byte) bool {
	j, err := ingest.ParseJoin(body)
	if err != nil {
		c.logf("cluster: bad JOIN from %s: %v", cc.nc.RemoteAddr(), err)
		return false
	}
	var sends []pendingSend
	c.mu.Lock()
	m := c.members[j.NodeID]
	var evict *coordConn
	if m == nil {
		m = &member{}
		c.members[j.NodeID] = m
	} else if m.conn != nil && m.conn != cc {
		// Latest wins: a rejoin fences the previous incarnation.
		evict = m.conn
	}
	c.nextEpoch++
	m.info = ingest.Member{ID: j.NodeID, Addr: j.Addr, Weight: j.Weight, Epoch: c.nextEpoch}
	m.conn = cc
	m.lastBeat = time.Now()
	m.drainReq, m.draining = false, false
	cc.memberID = j.NodeID
	c.joins++
	c.rebuildLocked()
	ok := ingest.AppendJoinOK(nil, ingest.JoinOK{
		Epoch:       m.info.Epoch,
		LeaseMillis: uint32(c.cfg.leaseTTL() / time.Millisecond),
		Ring:        c.ringUpdateLocked(),
	})
	sends = append(sends, pendingSend{cc, ok})
	// Everything the joiner now owns gets pushed so a reconnecting
	// client resumes from the freshest captured position.
	for key, st := range c.states {
		if o, okk := c.ring.Owner(key); okk && o.ID == j.NodeID {
			sends = c.installLocked(key, st, sends)
		}
	}
	c.logf("cluster: %s joined (epoch %d, addr %s, ring v%d)", j.NodeID, m.info.Epoch, j.Addr, c.ringVersion)
	c.mu.Unlock()
	if evict != nil {
		evict.nc.Close()
	}
	c.deliver(sends)
	return true
}

func (c *Coordinator) handleLease(cc *coordConn, body []byte) bool {
	l, err := ingest.ParseLease(body)
	if err != nil {
		return false
	}
	c.mu.Lock()
	m := c.members[cc.memberID]
	if m == nil || m.conn != cc || l.Epoch != m.info.Epoch {
		// A zombie incarnation: fenced, not renewed.
		c.mu.Unlock()
		c.logf("cluster: fencing stale lease from %s (epoch %d)", cc.memberID, l.Epoch)
		return false
	}
	m.lastBeat = time.Now()
	m.stats = l.Stats
	if l.Draining {
		m.draining = true
	}
	reply := ingest.AppendLeaseOK(nil, ingest.LeaseOK{
		Epoch: m.info.Epoch,
		Drain: m.drainReq,
		Ring:  c.ringUpdateLocked(),
	})
	c.mu.Unlock()
	return cc.send(reply) == nil
}

func (c *Coordinator) handleState(cc *coordConn, body []byte) bool {
	st, err := ingest.ParseStreamState(body)
	if err != nil {
		return false
	}
	var sends []pendingSend
	c.mu.Lock()
	m := c.members[cc.memberID]
	if m == nil || m.conn != cc {
		c.mu.Unlock()
		return false
	}
	cur := c.states[st.Key]
	if cur == nil || st.Interval > cur.interval {
		// The blob aliases the read buffer; the table owns a copy.
		cur = &storedState{interval: st.Interval, blob: append([]byte(nil), st.Blob...)}
		c.states[st.Key] = cur
		c.stored++
	}
	// A state arriving from a non-owner (a draining node shipping its
	// final capture) is forwarded to the owner straight away — and for
	// a draining sender that IS the handoff, recorded as such.
	if o, ok := c.ring.Owner(st.Key); ok && o.ID != cc.memberID {
		sends = c.installLocked(st.Key, cur, sends)
		if m.drainReq || m.draining {
			c.recordHandoffLocked(Handoff{
				Stream: st.Key, From: cc.memberID, To: o.ID,
				Interval: cur.interval, Reason: "drain",
			}, m.info.Epoch)
		}
	}
	c.mu.Unlock()
	c.deliver(sends)
	return true
}

func (c *Coordinator) handleBye(cc *coordConn) {
	var sends []pendingSend
	c.mu.Lock()
	m := c.members[cc.memberID]
	if m == nil || m.conn != cc {
		c.mu.Unlock()
		return
	}
	reason := "leave"
	if m.drainReq || m.draining {
		reason = "drain"
	}
	c.leaves++
	c.logf("cluster: %s left (%s)", cc.memberID, reason)
	sends = c.removeMemberLocked(m, reason)
	c.mu.Unlock()
	c.deliver(sends)
}

// DrainNode commands an orchestrated handoff: the member leaves the
// ring immediately — new placements and stored states move to the
// survivors — and its next lease reply carries the drain flag, upon
// which the node drains its server and engine, ships every final
// stream state, and says BYE.
func (c *Coordinator) DrainNode(id string) error {
	var sends []pendingSend
	c.mu.Lock()
	m := c.members[id]
	if m == nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no member %q", id)
	}
	if !m.drainReq {
		m.drainReq = true
		old := c.ring
		c.rebuildLocked()
		for key, st := range c.states {
			if o, ok := old.Owner(key); !ok || o.ID != id {
				continue
			}
			h := Handoff{Stream: key, From: id, Interval: st.interval, Reason: "drain"}
			if no, ok := c.ring.Owner(key); ok {
				h.To = no.ID
				sends = c.installLocked(key, st, sends)
			}
			c.recordHandoffLocked(h, m.info.Epoch)
		}
		c.logf("cluster: draining %s (ring v%d)", id, c.ringVersion)
	}
	c.mu.Unlock()
	c.deliver(sends)
	return nil
}

// OwnerOf reports the member currently placed for a stream key.
func (c *Coordinator) OwnerOf(key string) (ingest.Member, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Owner(key)
}

// Members returns every known member's status, sorted by ID.
func (c *Coordinator) Members() []MemberStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]MemberStatus, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, MemberStatus{
			ID:       m.info.ID,
			Addr:     m.info.Addr,
			Epoch:    m.info.Epoch,
			Weight:   m.info.Weight,
			Alive:    m.conn != nil,
			Draining: m.drainReq || m.draining,
			LastBeat: m.lastBeat,
			Stats:    m.stats,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Handoffs returns the ownership-move audit trail.
func (c *Coordinator) Handoffs() []Handoff {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Handoff(nil), c.handoffs...)
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() CoordinatorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CoordinatorStats{
		RingVersion:   c.ring.Version(),
		Members:       len(c.members),
		Placed:        len(c.ring.Members()),
		Joins:         c.joins,
		LeaseExpiries: c.expiries,
		Leaves:        c.leaves,
		StatesStored:  c.stored,
		Installs:      c.installs,
		Handoffs:      len(c.handoffs),
	}
	for _, m := range c.members {
		if m.drainReq || m.draining {
			st.Draining++
		}
		st.Fleet.Streams += m.stats.Streams
		st.Fleet.Accepted += m.stats.Accepted
		st.Fleet.Shed += m.stats.Shed
		st.Fleet.Verdicts += m.stats.Verdicts
		st.Fleet.Attributed += m.stats.Attributed
		st.Fleet.Held += m.stats.Held
	}
	return st
}
