package cluster

import (
	"fmt"
	"testing"

	"repro/internal/ingest"
)

func ringMembers(ids ...string) []ingest.Member {
	out := make([]ingest.Member, len(ids))
	for i, id := range ids {
		out[i] = ingest.Member{ID: id, Addr: "addr-" + id, Weight: 1}
	}
	return out
}

// TestRingPlacementIsDeterministic: the ring is a pure function of the
// membership set — join order, process, and run must not matter,
// because the coordinator and every node build their own copies.
func TestRingPlacementIsDeterministic(t *testing.T) {
	a := BuildRing(3, ringMembers("n0", "n1", "n2"), 0)
	b := BuildRing(3, ringMembers("n2", "n0", "n1"), 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("tenant/stream%d", i)
		ma, oka := a.Owner(key)
		mb, okb := b.Owner(key)
		if !oka || !okb || ma.ID != mb.ID {
			t.Fatalf("key %s: %v/%v vs %v/%v", key, ma.ID, oka, mb.ID, okb)
		}
	}
	if _, ok := BuildRing(1, nil, 0).Owner("x"); ok {
		t.Fatal("empty ring claimed an owner")
	}
}

// TestRingRemovalOnlyMovesVictimKeys is the consistent-hashing
// property the whole handoff design leans on: removing one member
// must only reassign the keys that member owned.
func TestRingRemovalOnlyMovesVictimKeys(t *testing.T) {
	full := BuildRing(1, ringMembers("n0", "n1", "n2", "n3"), 0)
	without := BuildRing(2, ringMembers("n0", "n1", "n3"), 0)
	moved, kept := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("t/s%d", i)
		before, _ := full.Owner(key)
		after, _ := without.Owner(key)
		if before.ID == "n2" {
			if after.ID == "n2" {
				t.Fatalf("key %s still on removed member", key)
			}
			moved++
			continue
		}
		if before.ID != after.ID {
			t.Fatalf("key %s moved from %s to %s though %s survived", key, before.ID, after.ID, before.ID)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
	// Every member of a 4-node ring should own a meaningful share.
	counts := map[string]int{}
	for i := 0; i < 500; i++ {
		m, _ := full.Owner(fmt.Sprintf("t/s%d", i))
		counts[m.ID]++
	}
	for id, n := range counts {
		if n < 25 {
			t.Fatalf("member %s owns only %d/500 keys: %v", id, n, counts)
		}
	}
}

// TestRingWeights: a weight-4 member should own several times the keys
// of a weight-1 member.
func TestRingWeights(t *testing.T) {
	members := ringMembers("light", "heavy")
	members[1].Weight = 4
	r := BuildRing(1, members, 0)
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		m, _ := r.Owner(fmt.Sprintf("t/s%d", i))
		counts[m.ID]++
	}
	if counts["heavy"] < 2*counts["light"] {
		t.Fatalf("weight ignored: %v", counts)
	}
}
