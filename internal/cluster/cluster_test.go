package cluster

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/micro"
	"repro/internal/supervise"
)

// stubModel mirrors the fleet tests' fixed-score classifier.
type stubModel struct{ score float64 }

func (m stubModel) Distribution(x []float64) []float64 {
	return []float64{1 - m.score, m.score}
}

func (m stubModel) DistributionInto(x []float64, out []float64) {
	out[0], out[1] = 1-m.score, m.score
}

func stubChainFactory() func() (*core.FallbackChain, error) {
	return func() (*core.FallbackChain, error) {
		evs := micro.AllEvents()
		d4 := &core.Detector{BaseName: "Stub", Events: evs[:4], Model: stubModel{score: 0.8}}
		d2 := &core.Detector{BaseName: "Stub", Events: evs[:2], Model: stubModel{score: 0.6}}
		return core.NewFallbackChain([]*core.Detector{d4, d2},
			core.ChainConfig{Window: 3, PriorScore: 0.3})
	}
}

func testFleetConfig() fleet.Config {
	return fleet.Config{
		NewChain:   stubChainFactory(),
		Shards:     2,
		WheelSlots: 4,
		Interval:   2 * time.Millisecond,
		Policy:     supervise.Block,
	}
}

func sampleVals(seq uint32) []uint64 {
	return []uint64{uint64(seq)*4 + 1, uint64(seq)*4 + 2, uint64(seq)*4 + 3, uint64(seq)*4 + 4}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// testCluster stands up a coordinator plus n nodes and tears
// everything down with the test.
type testCluster struct {
	t         *testing.T
	coord     *Coordinator
	coordAddr string
	nodes     []*Node
}

func startCluster(t *testing.T, n int, ttl time.Duration) *testCluster {
	t.Helper()
	coord := NewCoordinator(CoordinatorConfig{LeaseTTL: ttl, Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	tc := &testCluster{t: t, coord: coord, coordAddr: ln.Addr().String()}
	t.Cleanup(func() {
		for _, nd := range tc.nodes {
			if nd != nil {
				nd.Close()
			}
		}
		coord.Close()
	})
	for i := 0; i < n; i++ {
		tc.nodes = append(tc.nodes, tc.startNode(fmt.Sprintf("n%d", i)))
	}
	waitUntil(t, "members joined", func() bool {
		return coord.Stats().Placed == n
	})
	// A node routes (and redirects) by the ring view it last received;
	// the first joiner's JOIN_OK ring holds only itself, so wait for
	// every agent to catch up to the full membership before handing the
	// cluster to a test that depends on placement.
	waitUntil(t, "ring views converged", func() bool {
		v := coord.Stats().RingVersion
		for _, nd := range tc.nodes {
			if nd.Agent().Stats().RingVersion != v {
				return false
			}
		}
		return true
	})
	return tc
}

func (tc *testCluster) startNode(id string) *Node {
	tc.t.Helper()
	nd, err := StartNode(NodeConfig{
		ID:             id,
		Coordinator:    tc.coordAddr,
		Fleet:          testFleetConfig(),
		Width:          4,
		HeartbeatEvery: 50 * time.Millisecond,
		StatesEvery:    2,
		Seed:           7,
		Logf:           tc.t.Logf,
	})
	if err != nil {
		tc.t.Fatal(err)
	}
	return nd
}

func (tc *testCluster) bootstrap() []string {
	var out []string
	for _, nd := range tc.nodes {
		if nd != nil && !nd.Killed() {
			out = append(out, nd.Addr())
		}
	}
	return out
}

func (tc *testCluster) dial(stream string) (*ingest.Client, DialStats) {
	tc.t.Helper()
	c, st, err := Dial(DialConfig{
		Bootstrap: tc.bootstrap,
		Hello:     ingest.Hello{Width: 4, Tenant: "t", Stream: stream},
		Timeout:   2 * time.Second,
		Seed:      11,
	})
	if err != nil {
		tc.t.Fatalf("cluster dial %s: %v", stream, err)
	}
	return c, st
}

func collect(t *testing.T, c *ingest.Client, n int) []ingest.Verdict {
	t.Helper()
	var out []ingest.Verdict
	for len(out) < n {
		ev, err := c.Next()
		if err != nil {
			t.Fatalf("after %d verdicts: %v", len(out), err)
		}
		if ev.Type == ingest.FrameVerdict {
			out = append(out, ev.Verdict)
		}
	}
	return out
}

// requireReference replays the full sample sequence through one
// unbroken reference chain and asserts every collected verdict —
// whatever node scored it — matches bit-for-bit.
func requireReference(t *testing.T, got []ingest.Verdict, total int) {
	t.Helper()
	byInterval := map[uint32]ingest.Verdict{}
	for _, v := range got {
		byInterval[v.Interval] = v
	}
	ref, err := stubChainFactory()()
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < total; seq++ {
		want, err := ref.Observe(sampleVals(uint32(seq)))
		if err != nil {
			t.Fatal(err)
		}
		g, ok := byInterval[uint32(seq)]
		if !ok {
			continue
		}
		if g.Score != want.Score || g.Malware != want.Malware {
			t.Fatalf("interval %d: cluster %+v != reference %+v", seq, g, want)
		}
	}
}

// TestClusterRedirectToOwner: a client that dials the wrong node is
// steered to the stream's owner, and the redirect is counted on both
// sides.
func TestClusterRedirectToOwner(t *testing.T) {
	tc := startCluster(t, 2, time.Second)
	const key = "t/s-redirect"
	owner, ok := tc.coord.OwnerOf(key)
	if !ok {
		t.Fatal("no owner")
	}
	var wrong *Node
	for _, nd := range tc.nodes {
		if nd.Addr() != owner.Addr {
			wrong = nd
		}
	}
	// Nodes only redirect once their ring view arrives; joined members
	// have one from JOIN_OK already.
	c, st, err := Dial(DialConfig{
		Bootstrap: func() []string { return []string{wrong.Addr()} },
		Hello:     ingest.Hello{Width: 4, Tenant: "t", Stream: "s-redirect"},
		Timeout:   2 * time.Second,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if st.Redirects < 1 {
		t.Fatalf("dial stats %+v, want a redirect", st)
	}
	for seq := uint32(0); seq < 3; seq++ {
		if err := c.Send(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, c, 3)
	requireReference(t, got, 3)
	if wrong.Server().StatsSnapshot(false).Redirects < 1 {
		t.Fatal("non-owner did not count the redirect")
	}
}

// TestClusterDrainHandsOffStream: an orchestrated drain moves a live
// stream to the survivor with its state, and the client resumes from
// the server-authoritative position with a bit-identical timeline.
func TestClusterDrainHandsOffStream(t *testing.T) {
	tc := startCluster(t, 2, time.Second)
	const stream, key = "s-drain", "t/s-drain"
	const firstLeg, total = 5, 10

	c, _ := tc.dial(stream)
	for seq := uint32(0); seq < firstLeg; seq++ {
		if err := c.Send(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, c, firstLeg)

	owner, _ := tc.coord.OwnerOf(key)
	var victim, survivor *Node
	for _, nd := range tc.nodes {
		if nd.Addr() == owner.Addr {
			victim = nd
		} else {
			survivor = nd
		}
	}
	if err := tc.coord.DrainNode(victim.cfg.ID); err != nil {
		t.Fatal(err)
	}
	if err := victim.Wait(10 * time.Second); err != nil {
		t.Fatalf("drained node exited with %v", err)
	}
	c.Close()
	waitUntil(t, "drained member left", func() bool {
		s := tc.coord.Stats()
		return s.Members == 1 && s.Placed == 1
	})
	// The INSTALL rides the survivor's next heartbeat read; wait for
	// the state to land before expecting an exact resume position.
	waitUntil(t, "state installed on survivor", func() bool {
		iv, ok := survivor.Engine().RestoredInterval(key)
		return ok && iv == firstLeg
	})

	// The survivor owns the stream now and was handed its state: the
	// handshake resumes exactly where the drained node stopped.
	c2, _ := tc.dial(stream)
	defer c2.Close()
	if c2.Admitted.Resume != firstLeg {
		t.Fatalf("resume %d, want %d", c2.Admitted.Resume, firstLeg)
	}
	for seq := uint32(firstLeg); seq < total; seq++ {
		if err := c2.Send(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	got = append(got, collect(t, c2, total-firstLeg)...)
	requireReference(t, got, total)

	hs := tc.coord.Handoffs()
	found := false
	for _, h := range hs {
		if h.Stream == key && h.Reason == "drain" && h.From == victim.cfg.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("no drain handoff recorded for %s: %+v", key, hs)
	}
}

// TestClusterLeaseExpiryFailover: a killed node is detected by lease
// expiry, its stream fails over to the survivor, and the client
// replays from the last fanned-in state — the timeline stays
// bit-identical to the unbroken reference.
func TestClusterLeaseExpiryFailover(t *testing.T) {
	tc := startCluster(t, 2, 400*time.Millisecond)
	const stream, key = "s-kill", "t/s-kill"
	const firstLeg, total = 6, 12

	c, _ := tc.dial(stream)
	for seq := uint32(0); seq < firstLeg; seq++ {
		if err := c.Send(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, c, firstLeg)
	// Wait for at least one state fan-in covering the stream so the
	// failover has something to install.
	waitUntil(t, "state fan-in", func() bool {
		return tc.coord.Stats().StatesStored > 0
	})

	owner, _ := tc.coord.OwnerOf(key)
	var victim *Node
	for _, nd := range tc.nodes {
		if nd.Addr() == owner.Addr {
			victim = nd
		}
	}
	victim.Kill()
	c.Close()
	waitUntil(t, "lease expiry failover", func() bool {
		s := tc.coord.Stats()
		return s.LeaseExpiries >= 1 && s.Placed == 1
	})
	if no, ok := tc.coord.OwnerOf(key); !ok || no.ID == victim.cfg.ID {
		t.Fatalf("stream still owned by dead node (%v %v)", no, ok)
	}

	// Failover resume: server-authoritative, from whatever state made
	// it into the coordinator — the client replays the rest.
	c2, _ := tc.dial(stream)
	defer c2.Close()
	resume := c2.Admitted.Resume
	if resume < 0 || resume > firstLeg {
		t.Fatalf("resume %d outside [0, %d]", resume, firstLeg)
	}
	for seq := uint32(resume); seq < total; seq++ {
		if err := c2.Send(seq, sampleVals(seq)); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, c2, total-resume)
	requireReference(t, got, total)

	hs := tc.coord.Handoffs()
	found := false
	for _, h := range hs {
		if h.Stream == key && h.Reason == "failover" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no failover handoff recorded: %+v", hs)
	}
}
