// Package cluster is the multi-node control plane: a coordinator that
// places streams across a fleet of serving processes by consistent
// hashing, tracks node health through heartbeat leases, and migrates
// stream state between nodes so a drain or a crash never tears a
// verdict timeline. The data plane stays exactly the single-node
// ingest protocol — clients are steered to the right node with
// REDIRECT frames and resume from the server-authoritative position,
// so a cluster run is bit-identical to an unbroken single-node one.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/ingest"
)

// DefaultVNodes is how many ring points one unit of member weight
// contributes. More points smooth the key distribution; the drills'
// few-node rings stay well balanced at 64.
const DefaultVNodes = 64

// hash64 is FNV-1a with an avalanche finalizer. Raw FNV of short,
// similar strings ("n0#1", "n0#2", ...) clusters in the high bits and
// would let one member's arc capture the whole ring; the mix spreads
// the points. Stable across processes and runs, which is what lets a
// drill precompute placement from member IDs alone and lets every node
// derive the identical ring from a membership list.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	h *= 0xC4CEB9FE1A85EC53
	h ^= h >> 33
	return h
}

// Ring is an immutable consistent-hash ring over a membership set.
// Placement depends only on the member IDs and weights — not on join
// order or timing — so the coordinator and every node agree on owners
// the moment they agree on membership.
type Ring struct {
	version uint64
	members []ingest.Member
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// BuildRing assembles the ring for one membership snapshot. vnodes <= 0
// means DefaultVNodes; member weights multiply their point count.
func BuildRing(version uint64, members []ingest.Member, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{version: version, members: append([]ingest.Member(nil), members...)}
	for mi, m := range r.members {
		w := m.Weight
		if w < 1 {
			w = 1
		}
		for i := 0; i < w*vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(fmt.Sprintf("%s#%d", m.ID, i)),
				member: mi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Ties broken by member ID so the ring is a pure function of
		// the membership set.
		return r.members[a.member].ID < r.members[b.member].ID
	})
	return r
}

// Version returns the membership version the ring was built from.
func (r *Ring) Version() uint64 { return r.version }

// Members returns the membership snapshot (not a copy; do not mutate).
func (r *Ring) Members() []ingest.Member { return r.members }

// Owner maps a stream key to its owning member. ok is false only for
// an empty ring.
func (r *Ring) Owner(key string) (ingest.Member, bool) {
	if len(r.points) == 0 {
		return ingest.Member{}, false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member], true
}
