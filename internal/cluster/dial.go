package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ingest"
)

// DialConfig parameterises a cluster-aware client dial.
type DialConfig struct {
	// Bootstrap supplies the current node addresses to try. A func —
	// not a static list — because rolling restarts move listeners; the
	// dialer re-consults it whenever it rotates.
	Bootstrap func() []string
	// Hello is the stream handshake (as ingest.ClientConfig.Hello).
	Hello ingest.Hello
	// Timeout bounds each dial and read (default ingest's 5s).
	Timeout time.Duration
	// Seed drives backoff jitter; the scope is tenant/stream so
	// concurrent streams never retry in lockstep.
	Seed uint64
	// MaxHops bounds REDIRECT chains per attempt (default 4).
	MaxHops int
	// MaxAttempts bounds the whole dial (default 32). An attempt is a
	// dial that ended in RETRY, DRAIN or a transport error.
	MaxAttempts int
}

func (c DialConfig) maxHops() int {
	if c.MaxHops > 0 {
		return c.MaxHops
	}
	return 4
}

func (c DialConfig) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 32
}

// DialStats counts what it took to get admitted.
type DialStats struct {
	Redirects int // REDIRECT frames followed
	Retries   int // RETRY frames backed off from
	Rotations int // bootstrap rotations after DRAIN/transport errors
	// Batching reports the admitting node negotiated batch framing
	// (HELLO v2+): Queue/Flush on the returned client pack many
	// samples behind one header + CRC.
	Batching bool
}

// Dial connects a stream to whichever node owns it: it follows
// REDIRECTs to the owner, backs off (seeded jitter) on RETRY, rotates
// to another bootstrap node on DRAIN or a dead listener, and returns
// the admitted client plus what the journey cost.
func Dial(cfg DialConfig) (*ingest.Client, DialStats, error) {
	var st DialStats
	if cfg.Bootstrap == nil {
		return nil, st, errors.New("cluster: dial needs a bootstrap source")
	}
	scope := cfg.Hello.Tenant + "/" + cfg.Hello.Stream
	next := 0 // rotating bootstrap cursor
	target := ""
	hops := 0
	var lastErr error
	// attempt only advances on RETRY, DRAIN and transport errors —
	// redirect hops are free (bounded separately by MaxHops).
	for attempt := 0; attempt < cfg.maxAttempts(); {
		if target == "" {
			addrs := cfg.Bootstrap()
			if len(addrs) == 0 {
				return nil, st, errors.New("cluster: no bootstrap addresses")
			}
			target = addrs[next%len(addrs)]
			next++
			hops = 0
		}
		c, err := ingest.Dial(ingest.ClientConfig{Addr: target, Hello: cfg.Hello, Timeout: cfg.Timeout})
		if err == nil {
			st.Batching = c.Batching()
			return c, st, nil
		}
		lastErr = err
		var rej *ingest.RejectedError
		if errors.As(err, &rej) {
			switch rej.Event.Type {
			case ingest.FrameRedirect:
				st.Redirects++
				hops++
				if hops > cfg.maxHops() {
					// A stale ring can point in circles; fall back to
					// rotating until the views converge.
					target = ""
					st.Rotations++
					attempt++
					sleepBackoff(ingest.Retry{}, cfg, scope, attempt)
					continue
				}
				target = rej.Event.Redirect.Addr
				continue
			case ingest.FrameRetry:
				st.Retries++
				attempt++
				sleepBackoff(rej.Event.Retry, cfg, scope, attempt)
				continue // same target: admission pressure passes
			case ingest.FrameDrain:
				st.Rotations++
				target = ""
				attempt++
				sleepBackoff(ingest.Retry{}, cfg, scope, attempt)
				continue
			default:
				return nil, st, err
			}
		}
		// Transport error: the node may be dead; try another.
		st.Rotations++
		target = ""
		attempt++
		sleepBackoff(ingest.Retry{}, cfg, scope, attempt)
	}
	return nil, st, fmt.Errorf("cluster: dial %s: attempts exhausted: %w", scope, lastErr)
}

func sleepBackoff(hint ingest.Retry, cfg DialConfig, scope string, attempt int) {
	// Cluster dials want snappier retries than the client default —
	// drills churn nodes in hundreds of milliseconds.
	if hint.AfterMillis == 0 {
		hint.AfterMillis = 25
	}
	time.Sleep(ingest.Backoff(hint, cfg.Seed, scope, attempt))
}
