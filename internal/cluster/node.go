package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/ingest"
)

// NodeConfig parameterises one self-contained serving node: engine,
// ingest listener and membership agent wired together the way
// hmd-serve wires them, but embeddable in a single test process so a
// drill can run a whole cluster and kill members at will.
type NodeConfig struct {
	// ID is the member identity; Coordinator its control address.
	ID          string
	Coordinator string
	// Weight scales the node's ring share (default 1).
	Weight int
	// Fleet configures the node's engine (NewChain required).
	Fleet fleet.Config
	// Width is the ingest sample width.
	Width int
	// HeartbeatEvery / StatesEvery / VNodes tune the agent (see
	// AgentConfig).
	HeartbeatEvery time.Duration
	StatesEvery    int
	VNodes         int
	// Plan, when active, derives the node's fault schedule.
	Plan faults.NodePlan
	// Seed drives the agent's backoff jitter.
	Seed uint64
	// Logf receives node events; nil means silent.
	Logf func(format string, args ...any)
}

// Node is one running cluster member. A node whose fault schedule says
// kill hard-stops itself: listener and connections closed, engine
// context cancelled, no BYE — exactly what the coordinator's lease
// expiry exists to detect.
type Node struct {
	cfg    NodeConfig
	eng    *fleet.Engine
	srv    *ingest.Server
	agent  *Agent
	ln     net.Listener
	cancel context.CancelFunc

	engRun   chan error
	agentRun chan error
	killed   atomic.Bool
}

// StartNode builds and starts a node: engine running, listener
// serving, agent joining the coordinator.
func StartNode(cfg NodeConfig) (*Node, error) {
	eng, err := fleet.New(cfg.Fleet)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	n := &Node{cfg: cfg, eng: eng, ln: ln}

	engDone := make(chan struct{})
	var injector *faults.NodeInjector
	if cfg.Plan.Active() {
		injector = cfg.Plan.ForNode(cfg.ID)
	}
	agent, err := NewAgent(AgentConfig{
		NodeID:         cfg.ID,
		Coordinator:    cfg.Coordinator,
		Advertise:      ln.Addr().String(),
		Weight:         cfg.Weight,
		Engine:         eng,
		HeartbeatEvery: cfg.HeartbeatEvery,
		StatesEvery:    cfg.StatesEvery,
		VNodes:         cfg.VNodes,
		Stats:          func() ingest.NodeStats { return n.srv.NodeStatsSnapshot() },
		OnDrain: func() {
			n.srv.Drain("cluster drain")
			n.eng.Drain()
		},
		EngineDone: engDone,
		Injector:   injector,
		Seed:       cfg.Seed,
		Logf:       cfg.Logf,
	})
	if err != nil {
		ln.Close()
		return nil, err
	}
	n.agent = agent
	srv, err := ingest.NewServer(ingest.Config{
		Engine:    eng,
		Width:     cfg.Width,
		Placement: agent.Placement,
		Logf:      cfg.Logf,
	})
	if err != nil {
		ln.Close()
		return nil, err
	}
	n.srv = srv

	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	n.engRun = make(chan error, 1)
	n.agentRun = make(chan error, 1)
	go func() {
		err := eng.Run(ctx)
		close(engDone)
		n.engRun <- err
	}()
	go srv.Serve(ln)
	go func() {
		err := agent.Run(ctx)
		n.agentRun <- err
		if errors.Is(err, ErrKilled) {
			n.Kill()
		}
	}()
	return n, nil
}

// Addr is the node's ingest listener address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Engine exposes the node's fleet engine.
func (n *Node) Engine() *fleet.Engine { return n.eng }

// Server exposes the node's ingest server.
func (n *Node) Server() *ingest.Server { return n.srv }

// Agent exposes the node's membership agent.
func (n *Node) Agent() *Agent { return n.agent }

// Kill hard-stops the node: the crash shape. Safe to call twice.
func (n *Node) Kill() {
	if !n.killed.CompareAndSwap(false, true) {
		return
	}
	n.srv.Close()
	n.cancel()
}

// Killed reports whether the node was hard-stopped.
func (n *Node) Killed() bool { return n.killed.Load() }

// Wait blocks until both the agent and the engine have exited and
// returns the agent's verdict: nil for a completed drain, ErrKilled
// for a scheduled kill, the context error for a hard stop.
func (n *Node) Wait(timeout time.Duration) error {
	deadline := time.After(timeout)
	var agentErr error
	select {
	case agentErr = <-n.agentRun:
		n.agentRun <- agentErr
	case <-deadline:
		return fmt.Errorf("cluster: node %s: agent did not exit", n.cfg.ID)
	}
	// A gracefully drained node still owns a running listener and a
	// parked engine context; release both.
	n.srv.Close()
	n.cancel()
	select {
	case err := <-n.engRun:
		n.engRun <- err
	case <-deadline:
		return fmt.Errorf("cluster: node %s: engine did not exit", n.cfg.ID)
	}
	return agentErr
}

// Close hard-stops the node and waits for its goroutines.
func (n *Node) Close() {
	n.Kill()
	n.Wait(10 * time.Second)
}
