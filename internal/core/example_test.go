package core_test

import (
	"fmt"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/micro"
	"repro/internal/mlearn/zoo"
	"repro/internal/workload"
)

// Example shows the complete pipeline: collect a corpus under the
// 4-register PMU constraint, train a run-time-capable boosted detector
// on the 2 most important counters, and monitor an unseen program.
func Example() {
	// Collect a small corpus (tests use reduced scale; see
	// collect.Default for paper scale).
	cfg := collect.Small()
	cfg.Suite.AppsPerFamily = 4
	res, err := collect.Collect(cfg)
	if err != nil {
		panic(err)
	}

	// 70/30 split at application level, correlation feature ranking.
	b, err := core.NewBuilder(res.Data, 0.7, 1)
	if err != nil {
		panic(err)
	}

	// A 2-HPC AdaBoost detector fits the PMU.
	det, err := b.Build("REPTree", zoo.Boosted, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("detector:", det.Name())
	fmt.Println("run-time capable:", det.RunTimeCapable())

	// Monitor an unseen malware sample.
	fam, _ := workload.FamilyByName("elf-spinprobe")
	app := fam.Instantiate(123, 0xABC)
	run := app.NewRun(0)
	mach := micro.NewMachine(micro.FastConfig(), run.MachineSeed())
	mon, err := core.NewMonitor(det, 5, 0.5)
	if err != nil {
		panic(err)
	}
	verdicts, err := mon.Watch(mach, run, 16, 8000)
	if err != nil {
		panic(err)
	}
	fmt.Println("monitored intervals:", len(verdicts))

	// Output:
	// detector: 2HPC-Boosted-REPTree
	// run-time capable: true
	// monitored intervals: 16
}

// ExampleNewMonitor_rejectsWideDetectors demonstrates the run-time
// constraint: a 16-HPC detector cannot be deployed on a 4-register PMU.
func ExampleNewMonitor_rejectsWideDetectors() {
	cfg := collect.Small()
	cfg.Suite.AppsPerFamily = 3
	res, err := collect.Collect(cfg)
	if err != nil {
		panic(err)
	}
	b, err := core.NewBuilder(res.Data, 0.7, 1)
	if err != nil {
		panic(err)
	}
	wide, err := b.Build("J48", zoo.General, 16)
	if err != nil {
		panic(err)
	}
	_, err = core.NewMonitor(wide, 5, 0.5)
	fmt.Println(err != nil)
	// Output:
	// true
}

// ExampleDetectionDelay computes how quickly a verdict stream sustains
// a detection.
func ExampleDetectionDelay() {
	verdicts := []core.Verdict{
		{Interval: 0, Malware: false},
		{Interval: 1, Malware: true},
		{Interval: 2, Malware: true},
		{Interval: 3, Malware: true},
	}
	fmt.Println(core.DetectionDelay(verdicts, 3))
	// Output:
	// 1
}
