package core

import (
	"testing"

	"repro/internal/mlearn/zoo"
)

func TestFamilyOf(t *testing.T) {
	cases := map[string]string{
		"elf-spinprobe-03":  "elf-spinprobe",
		"mibench-kernel-11": "mibench-kernel",
		"solo":              "solo",
	}
	for in, want := range cases {
		if got := FamilyOf(in); got != want {
			t.Errorf("FamilyOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBuildSpecialized(t *testing.T) {
	b := newBuilder(t)
	det, err := b.BuildSpecialized("J48", zoo.General, 4)
	if err != nil {
		t.Fatal(err)
	}
	if det.HPCs() != 4 || !det.RunTimeCapable() {
		t.Error("specialized ensemble should keep the same HPC budget")
	}
	ens, ok := det.Model.(*SpecializedEnsemble)
	if !ok {
		t.Fatalf("model type = %T", det.Model)
	}
	// The small training suite contains all five malware families.
	if len(ens.Families) < 3 {
		t.Errorf("only %d specialists trained", len(ens.Families))
	}
	if len(ens.Families) != len(ens.Models) {
		t.Fatal("families/models misaligned")
	}
	// It must evaluate sanely on held-out data.
	res, err := b.Evaluate(det)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.5 {
		t.Errorf("specialized accuracy = %.3f", res.Accuracy)
	}

	// Identify returns one of the trained family names.
	fam, score := ens.Identify(b.Test().X[0][:4])
	if fam == "" || score < 0 || score > 1 {
		t.Errorf("Identify returned (%q, %v)", fam, score)
	}
}

func TestSpecializedDistributionValid(t *testing.T) {
	b := newBuilder(t)
	det, err := b.BuildSpecialized("OneR", zoo.General, 2)
	if err != nil {
		t.Fatal(err)
	}
	cols2 := b.ranked[:2]
	testK, err := b.Test().Select(cols2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range testK.X {
		dist := det.Model.Distribution(testK.X[i])
		if len(dist) != 2 {
			t.Fatal("binary distribution expected")
		}
		if dist[0]+dist[1] < 0.999 || dist[0]+dist[1] > 1.001 {
			t.Fatalf("distribution sums to %v", dist[0]+dist[1])
		}
	}
}

func TestEvaluatePerFamily(t *testing.T) {
	b := newBuilder(t)
	det, err := b.Build("J48", zoo.General, 8)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := b.EvaluatePerFamily(det)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rates["benign"]; !ok {
		t.Fatal("missing benign FPR entry")
	}
	malFams := 0
	for fam, rate := range rates {
		if rate < 0 || rate > 1 {
			t.Errorf("%s: rate %v out of range", fam, rate)
		}
		if fam != "benign" {
			malFams++
		}
	}
	if malFams == 0 {
		t.Fatal("no malware families in per-family evaluation")
	}
}

func TestCompareOrganisations(t *testing.T) {
	b := newBuilder(t)
	mono, spec, err := b.CompareOrganisations("REPTree", zoo.General, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"mono accuracy", mono.Accuracy}, {"mono AUC", mono.AUC},
		{"spec accuracy", spec.Accuracy}, {"spec AUC", spec.AUC},
	} {
		if r.v <= 0.4 || r.v > 1 {
			t.Errorf("%s = %v out of plausible range", r.name, r.v)
		}
	}
}
