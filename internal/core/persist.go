package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/micro"
	"repro/internal/mlearn/persist"
	"repro/internal/mlearn/zoo"
)

// detectorHeader is the serialised metadata preceding the model blob.
type detectorHeader struct {
	BaseName string
	Variant  int
	Events   []micro.EventID
}

// SaveDetector serialises a trained detector — metadata (base
// classifier, variant, HPC events) followed by the model — so a
// detector trained offline can be shipped to a monitoring process or
// to the hardware flow.
func SaveDetector(w io.Writer, d *Detector) error {
	if d == nil || d.Model == nil {
		return fmt.Errorf("core: nil detector")
	}
	enc := gob.NewEncoder(w)
	hdr := detectorHeader{BaseName: d.BaseName, Variant: int(d.Variant), Events: d.Events}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("core: encoding detector header: %w", err)
	}
	return persist.SaveInto(enc, d.Model)
}

// LoadDetector reads a detector previously written by SaveDetector.
func LoadDetector(r io.Reader) (*Detector, error) {
	dec := gob.NewDecoder(r)
	var hdr detectorHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("core: decoding detector header: %w", err)
	}
	for _, ev := range hdr.Events {
		if !ev.Valid() {
			return nil, fmt.Errorf("core: detector file references unknown event %d", ev)
		}
	}
	model, err := persist.LoadFrom(dec)
	if err != nil {
		return nil, err
	}
	return &Detector{
		BaseName: hdr.BaseName,
		Variant:  zoo.Variant(hdr.Variant),
		Events:   hdr.Events,
		Model:    model,
	}, nil
}
