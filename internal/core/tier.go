package core

import "fmt"

// Tier selects which inference lowering scores a detector's samples.
// The default is the compiled tier — bit-identical to the interpreted
// models — with quantized as the opt-in fast tier and interpreted as
// the baseline. Whatever the requested tier, a model the lowering
// cannot express falls back one tier at a time (quantized → compiled →
// interpreted), so a chain can always score every stage.
type Tier uint8

const (
	// TierCompiled scores through compiled.Program evaluators:
	// flattened, cache-contiguous float kernels, bit-identical to the
	// interpreted models. The default.
	TierCompiled Tier = iota
	// TierQuantized scores through compiled.QuantProgram evaluators:
	// fixed-point forests, integer dot products, lookup-table sigmoids.
	// Verdicts are statistically — not bit — equivalent, gated by
	// experiments.QuantEquivalence. Models without a quantized lowering
	// (OneR, JRip, KNN) fall back per model to compiled/interpreted.
	TierQuantized
	// TierInterpreted pins the interpreted models — the baseline side
	// of equivalence tests and perf comparisons.
	TierInterpreted
)

func (t Tier) String() string {
	switch t {
	case TierQuantized:
		return "quantized"
	case TierInterpreted:
		return "interpreted"
	}
	return "compiled"
}

// ParseTier parses a tier name as used by hmd-serve's and hmd-bench's
// -tier flags.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "compiled", "":
		return TierCompiled, nil
	case "quantized":
		return TierQuantized, nil
	case "interpreted":
		return TierInterpreted, nil
	}
	return TierCompiled, fmt.Errorf("core: unknown tier %q (compiled, quantized, interpreted)", s)
}
