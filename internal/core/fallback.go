package core

import (
	"errors"
	"fmt"

	"repro/internal/micro"
	"repro/internal/mlearn"
	"repro/internal/mlearn/compiled"
	"repro/internal/mlearn/zoo"
	"repro/internal/perf"
)

// This file implements graceful degradation for the run-time monitor: a
// FallbackChain watches the health of every counter the primary
// detector consumes and, when counters go bad (stuck or dead — exactly
// the corruptions the faults package injects and real PMUs exhibit),
// steps the detection down through progressively narrower detectors —
// e.g. 4-HPC → 2-HPC → majority-prior — instead of emitting garbage
// verdicts or crashing. The sliding verdict window is shared across
// stage transitions, so a stepdown never drops a verdict interval and
// the windowed score degrades smoothly (hysteresis) rather than
// snapping.

// ChainConfig parameterises a FallbackChain.
type ChainConfig struct {
	// Window is the sliding verdict window in samples (<=0 means 5).
	Window int
	// Threshold flags the window as malware when the mean score
	// reaches it (<=0 means 0.5).
	Threshold float64
	// BadAfter is how many consecutive suspect readings (stuck at the
	// same delta, or zero) mark a counter bad (<=0 means 3).
	BadAfter int
	// GoodAfter is how many consecutive healthy readings a bad counter
	// needs to be trusted again (<=0 means 2*BadAfter). Asymmetric
	// thresholds are the hysteresis that stops the chain flapping
	// between stages on a marginal counter.
	GoodAfter int
	// PriorScore is the malware score emitted by the terminal
	// majority-prior stage, when every detector's counters are bad.
	// Use Builder.PriorScore for the training-set prior.
	PriorScore float64
}

func (c ChainConfig) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 5
}

func (c ChainConfig) threshold() float64 {
	if c.Threshold > 0 {
		return c.Threshold
	}
	return 0.5
}

func (c ChainConfig) badAfter() int {
	if c.BadAfter > 0 {
		return c.BadAfter
	}
	return 3
}

func (c ChainConfig) goodAfter() int {
	if c.GoodAfter > 0 {
		return c.GoodAfter
	}
	return 2 * c.badAfter()
}

// counterHealth tracks one counter register's run-time health.
type counterHealth struct {
	last       uint64 // previous raw delta
	seen       bool   // last is valid
	suspectRun int    // consecutive suspect readings
	healthyRun int    // consecutive healthy readings while bad
	bad        bool
}

// observe folds in one reading. A reading is suspect when it exactly
// repeats the previous delta (stuck register) or reads zero (dead /
// descheduled event); healthy counters in a live machine essentially
// never do either.
func (h *counterHealth) observe(v uint64) {
	suspect := v == 0 || (h.seen && v == h.last)
	h.last, h.seen = v, true
	if suspect {
		h.suspectRun++
		h.healthyRun = 0
	} else {
		h.healthyRun++
		h.suspectRun = 0
	}
}

// step applies the hysteresis thresholds and returns whether the
// counter is currently bad.
func (h *counterHealth) step(badAfter, goodAfter int) bool {
	if !h.bad && h.suspectRun >= badAfter {
		h.bad = true
	} else if h.bad && h.healthyRun >= goodAfter {
		h.bad = false
	}
	return h.bad
}

// Transition records one stage change of the chain.
type Transition struct {
	Interval int
	From, To int // stage indices; To == Stages() means the prior stage
}

// FallbackChain is a degradation-aware run-time detector. Stage 0 is
// the primary detector; each later stage consumes a subset of stage 0's
// events; past the last stage sits the implicit majority-prior stage.
type FallbackChain struct {
	stages []*Detector
	cfg    ChainConfig
	// idx[s][j] is the position, within stage 0's event list, of stage
	// s's j-th feature.
	idx    [][]int
	health []counterHealth

	// ring is the fixed sliding verdict window (head = next write slot,
	// filled = valid entries); xbuf/dist/bad are Observe's scratch
	// buffers. Together they keep steady-state observation
	// allocation-free.
	ring   []float64
	head   int
	filled int
	xbuf   []float64
	dist   []float64
	bad    []bool

	// threshold/badAfter/goodAfter are cfg's resolved values, hoisted at
	// construction: Observe runs per stream per 10 ms interval, and
	// re-deriving defaults there is measurable fleet-wide.
	threshold float64
	badAfter  int
	goodAfter int

	// evals[s] is stage s's compiled evaluator (nil for uncompilable
	// models), built lazily on the first scored interval so sibling
	// chains that never score themselves — fleet streams, whose shards
	// score via Batchers — carry no evaluator scratch. The compiled
	// Programs behind the evaluators are shared, read-only artifacts
	// cached on the stage Detectors. Under TierQuantized, qevals[s]
	// carries the stage's quantized evaluator and takes precedence;
	// stages with no quantized lowering keep scoring through evals[s].
	evals     []*compiled.Evaluator
	qevals    []*compiled.QuantEvaluator
	evalsInit bool
	tier      Tier

	interval    int
	active      int
	transitions []Transition
}

// NewFallbackChain validates and assembles a chain. Stage 0 must fit
// the PMU, and every later stage's events must be a subset of stage 0's
// (they are read from the same programmed registers).
func NewFallbackChain(stages []*Detector, cfg ChainConfig) (*FallbackChain, error) {
	if len(stages) == 0 {
		return nil, errors.New("core: fallback chain needs at least one stage")
	}
	primary := stages[0]
	if !primary.RunTimeCapable() {
		return nil, fmt.Errorf("core: primary detector %s needs %d HPCs but the PMU has %d registers",
			primary.Name(), primary.HPCs(), perf.NumCounters)
	}
	pos := map[micro.EventID]int{}
	for i, ev := range primary.Events {
		pos[ev] = i
	}
	idx := make([][]int, len(stages))
	for s, d := range stages {
		if s > 0 && d.HPCs() >= stages[s-1].HPCs() {
			return nil, fmt.Errorf("core: stage %d (%s) must need fewer HPCs than stage %d (%s)",
				s, d.Name(), s-1, stages[s-1].Name())
		}
		idx[s] = make([]int, len(d.Events))
		for j, ev := range d.Events {
			p, ok := pos[ev]
			if !ok {
				return nil, fmt.Errorf("core: stage %d (%s) needs event %v outside the primary's register set",
					s, d.Name(), ev)
			}
			idx[s][j] = p
		}
	}
	distLen := 0
	for _, d := range stages {
		if k := mlearn.NumClasses(d.Model, d.HPCs()); k > distLen {
			distLen = k
		}
	}
	return &FallbackChain{
		stages:    stages,
		cfg:       cfg,
		idx:       idx,
		health:    make([]counterHealth, primary.HPCs()),
		ring:      make([]float64, cfg.window()),
		xbuf:      make([]float64, primary.HPCs()),
		dist:      make([]float64, distLen),
		bad:       make([]bool, primary.HPCs()),
		threshold: cfg.threshold(),
		badAfter:  cfg.badAfter(),
		goodAfter: cfg.goodAfter(),
	}, nil
}

// Events returns the events the chain programs onto the PMU (the
// primary detector's).
func (fc *FallbackChain) Events() []micro.EventID {
	return append([]micro.EventID(nil), fc.stages[0].Events...)
}

// Stages returns the number of trained stages; ActiveStage == Stages()
// means the chain has degraded all the way to the majority prior.
func (fc *FallbackChain) Stages() int { return len(fc.stages) }

// Detectors returns the chain's trained stage detectors, primary first.
// The detectors (and their models) are shared, not copied: a caller
// building sibling chains from them — one run-time state per monitored
// stream over one set of models — must keep all scoring on a single
// goroutine, because streaming models reuse internal scratch.
func (fc *FallbackChain) Detectors() []*Detector {
	return append([]*Detector(nil), fc.stages...)
}

// Config returns the chain's configuration (window, thresholds,
// hysteresis, prior).
func (fc *FallbackChain) Config() ChainConfig { return fc.cfg }

// NewSibling builds a fresh chain over the same trained stages,
// configuration and event indexing, with cold run-time state — the
// one-run-time-state-per-stream arrangement the fleet engine uses.
// Scratch buffers are sized from the template's, so unlike
// NewFallbackChain it never evaluates the stage models (no class-count
// probe; models reuse internal scratch and must only be touched by
// their owning goroutine): assembling a sibling is safe while another
// goroutine scores through the shared models.
func (fc *FallbackChain) NewSibling() *FallbackChain {
	return &FallbackChain{
		stages:    fc.stages,
		cfg:       fc.cfg,
		idx:       fc.idx,
		tier:      fc.tier,
		health:    make([]counterHealth, len(fc.health)),
		ring:      make([]float64, len(fc.ring)),
		xbuf:      make([]float64, len(fc.xbuf)),
		dist:      make([]float64, len(fc.dist)),
		bad:       make([]bool, len(fc.bad)),
		threshold: fc.threshold,
		badAfter:  fc.badAfter,
		goodAfter: fc.goodAfter,
	}
}

// Tier returns the inference tier the chain scores through.
func (fc *FallbackChain) Tier() Tier { return fc.tier }

// SetTier selects the inference tier for this chain's own scoring
// (siblings inherit it at NewSibling time). Changing the tier discards
// the lazily built evaluators so the next scored interval rebuilds them
// for the new tier. Call before streaming; it is not synchronised with
// concurrent Observes.
func (fc *FallbackChain) SetTier(t Tier) {
	if t == fc.tier {
		return
	}
	fc.tier = t
	fc.evals = nil
	fc.qevals = nil
	fc.evalsInit = false
}

// ActiveStage returns the stage currently producing scores.
func (fc *FallbackChain) ActiveStage() int { return fc.active }

// StageName names stage i ("4HPC-Boosted-REPTree", ... , "prior").
func (fc *FallbackChain) StageName(i int) string {
	if i >= len(fc.stages) {
		return "prior"
	}
	return fc.stages[i].Name()
}

// Transitions returns every stage change observed so far.
func (fc *FallbackChain) Transitions() []Transition {
	return append([]Transition(nil), fc.transitions...)
}

// Reset clears the window, health state and transition log (e.g. when
// the monitored process changes).
func (fc *FallbackChain) Reset() {
	fc.head = 0
	fc.filled = 0
	fc.interval = 0
	fc.active = 0
	fc.transitions = nil
	for i := range fc.health {
		fc.health[i] = counterHealth{}
	}
}

// selectStage picks the first stage all of whose counters are healthy,
// or Stages() for the prior.
func (fc *FallbackChain) selectStage(bad []bool) int {
	for s := range fc.stages {
		ok := true
		for _, p := range fc.idx[s] {
			if bad[p] {
				ok = false
				break
			}
		}
		if ok {
			return s
		}
	}
	return len(fc.stages)
}

// verdict folds score s into the shared window and emits the interval's
// decision.
func (fc *FallbackChain) verdict(s float64) Verdict {
	w := len(fc.ring)
	fc.ring[fc.head] = s
	fc.head++
	if fc.head == w {
		fc.head = 0
	}
	if fc.filled < w {
		fc.filled++
	}
	// Sum oldest-to-newest so the float accumulation order matches the
	// historical append/trim implementation bit for bit. The wrapped
	// window is two contiguous runs, summed without per-element modulo
	// — same element order, same float accumulation, no division chain.
	mean := 0.0
	start := fc.head - fc.filled
	if start < 0 {
		start += w
	}
	n1 := fc.filled
	if start+n1 > w {
		n1 = w - start
	}
	for _, v := range fc.ring[start : start+n1] {
		mean += v
	}
	for _, v := range fc.ring[:fc.filled-n1] {
		mean += v
	}
	mean /= float64(fc.filled)
	v := Verdict{Interval: fc.interval, Score: mean, Malware: mean >= fc.threshold}
	fc.interval++
	return v
}

// Observe consumes one interval's raw readings of the primary
// detector's events, updates counter health, steps the active stage
// down (or back up) as needed, and returns the windowed verdict. Every
// call yields a verdict: degradation changes which model scores the
// interval, never whether the interval is scored.
func (fc *FallbackChain) Observe(values []uint64) (Verdict, error) {
	s, x, err := fc.BeginObserve(values)
	if err != nil {
		return Verdict{}, err
	}
	if s >= len(fc.stages) {
		return fc.CommitScore(fc.cfg.PriorScore), nil
	}
	return fc.CommitScore(fc.scoreStage(s, x)), nil
}

// scoreStage scores x with stage s's model: through its quantized
// program when the chain runs TierQuantized and the stage has one,
// through its compiled program when one exists (bit-identical to the
// interpreted model), and through mlearn.ScoreWith otherwise.
func (fc *FallbackChain) scoreStage(s int, x []float64) float64 {
	if !fc.evalsInit {
		fc.initEvals()
	}
	if qe := fc.qevals[s]; qe != nil {
		return qe.Score(x)
	}
	if ev := fc.evals[s]; ev != nil {
		return ev.Score(x)
	}
	return mlearn.ScoreWith(fc.stages[s].Model, x, fc.dist)
}

// initEvals builds one evaluator per lowerable stage, honouring the
// chain's tier. Lowering is cached on the shared Detectors, so across
// siblings and replicas each template model compiles (and quantizes)
// exactly once.
func (fc *FallbackChain) initEvals() {
	fc.evals = make([]*compiled.Evaluator, len(fc.stages))
	fc.qevals = make([]*compiled.QuantEvaluator, len(fc.stages))
	for s, d := range fc.stages {
		if fc.tier == TierInterpreted {
			continue
		}
		if fc.tier == TierQuantized {
			if qp := d.Quantized(); qp != nil {
				fc.qevals[s] = qp.NewEvaluator()
				continue
			}
		}
		if p := d.Compiled(); p != nil {
			fc.evals[s] = p.NewEvaluator()
		}
	}
	fc.evalsInit = true
}

// CompiledStages reports how many of the chain's stages score through
// compiled programs — observability for service /stats endpoints.
func (fc *FallbackChain) CompiledStages() int {
	n := 0
	for _, d := range fc.stages {
		if d.Compiled() != nil {
			n++
		}
	}
	return n
}

// QuantizedStages reports how many of the chain's stages have a
// quantized lowering — under TierQuantized, the stages actually scoring
// fixed-point (the rest fall back to compiled/interpreted per model).
func (fc *FallbackChain) QuantizedStages() int {
	if fc.tier != TierQuantized {
		return 0
	}
	n := 0
	for _, d := range fc.stages {
		if d.Quantized() != nil {
			n++
		}
	}
	return n
}

// BeginObserve is the first half of Observe, split out so an external
// engine (the fleet's shard workers) can batch the scoring across many
// chains sharing one model replica: it folds the reading into the
// counter-health trackers, steps the active stage, and gathers the
// active stage's feature vector into the chain's scratch buffer. The
// returned x aliases chain-owned scratch — consume (or copy) it before
// the next BeginObserve. A stage equal to Stages() means the chain has
// degraded to the prior; x is nil and the caller commits Prior().
//
// Every BeginObserve must be completed by exactly one CommitScore with
// the score of the returned stage's model on x (or Prior()); the pair
// is then bit-identical to one Observe call.
func (fc *FallbackChain) BeginObserve(values []uint64) (stage int, x []float64, err error) {
	if len(values) != fc.stages[0].HPCs() {
		return 0, nil, fmt.Errorf("core: sample width %d does not match primary detector's %d events",
			len(values), fc.stages[0].HPCs())
	}
	bad := fc.bad
	for c := range fc.health {
		fc.health[c].observe(values[c])
		bad[c] = fc.health[c].step(fc.badAfter, fc.goodAfter)
	}
	if s := fc.selectStage(bad); s != fc.active {
		fc.transitions = append(fc.transitions, Transition{Interval: fc.interval, From: fc.active, To: s})
		fc.active = s
	}
	s := fc.active
	if s >= len(fc.stages) {
		return s, nil, nil
	}
	x = fc.xbuf[:len(fc.idx[s])]
	for j, p := range fc.idx[s] {
		x[j] = float64(values[p])
	}
	return s, x, nil
}

// CommitScore completes a BeginObserve: it folds the externally
// computed stage score into the shared window and emits the interval's
// verdict.
func (fc *FallbackChain) CommitScore(score float64) Verdict {
	return fc.verdict(score)
}

// Prior returns the terminal majority-prior stage's score — what a
// CommitScore caller passes when BeginObserve selected stage Stages().
func (fc *FallbackChain) Prior() float64 { return fc.cfg.PriorScore }

// ObserveLost accounts for an interval whose reading was lost entirely
// (a dropped sample): the chain holds its current windowed score so the
// verdict stream stays gap-free.
func (fc *FallbackChain) ObserveLost() Verdict {
	last := fc.cfg.PriorScore
	if fc.filled > 0 {
		last = fc.ring[(fc.head-1+len(fc.ring))%len(fc.ring)]
	}
	return fc.verdict(last)
}

// CounterHealthState is the serialisable state of one counter's health
// tracker.
type CounterHealthState struct {
	Last       uint64
	Seen       bool
	SuspectRun int
	HealthyRun int
	Bad        bool
}

// ChainState is the serialisable run-time state of a FallbackChain:
// everything Observe mutates, and nothing about the trained models. A
// supervised monitor checkpoints it periodically so a process restart
// resumes the verdict stream with the same window, stage and health
// trackers instead of cold-starting at stage 0.
type ChainState struct {
	Window      []float64
	Interval    int
	Active      int
	Health      []CounterHealthState
	Transitions []Transition
}

// State snapshots the chain's current run-time state. The window
// serialises oldest-to-newest, the same layout the pre-ring
// implementation checkpointed, so snapshots stay interchangeable.
func (fc *FallbackChain) State() ChainState {
	window := make([]float64, fc.filled)
	start := fc.head - fc.filled
	if start < 0 {
		start += len(fc.ring)
	}
	for i := 0; i < fc.filled; i++ {
		window[i] = fc.ring[(start+i)%len(fc.ring)]
	}
	st := ChainState{
		Window:      window,
		Interval:    fc.interval,
		Active:      fc.active,
		Health:      make([]CounterHealthState, len(fc.health)),
		Transitions: append([]Transition(nil), fc.transitions...),
	}
	for i, h := range fc.health {
		st.Health[i] = CounterHealthState{
			Last: h.last, Seen: h.seen,
			SuspectRun: h.suspectRun, HealthyRun: h.healthyRun, Bad: h.bad,
		}
	}
	return st
}

// SetState restores a snapshot taken by State on a chain with the same
// shape (same primary width and stage count).
func (fc *FallbackChain) SetState(st ChainState) error {
	if len(st.Health) != len(fc.health) {
		return fmt.Errorf("core: chain state has %d counters, chain has %d", len(st.Health), len(fc.health))
	}
	if st.Active < 0 || st.Active > len(fc.stages) {
		return fmt.Errorf("core: chain state active stage %d out of range 0..%d", st.Active, len(fc.stages))
	}
	if st.Interval < 0 {
		return fmt.Errorf("core: chain state interval %d is negative", st.Interval)
	}
	// Load the last window-full of scores oldest-to-newest; anything
	// older would have been trimmed on the next verdict anyway.
	win := st.Window
	if w := len(fc.ring); len(win) > w {
		win = win[len(win)-w:]
	}
	fc.head = 0
	fc.filled = 0
	for _, s := range win {
		fc.ring[fc.head] = s
		fc.head = (fc.head + 1) % len(fc.ring)
		fc.filled++
	}
	fc.interval = st.Interval
	fc.active = st.Active
	fc.transitions = append([]Transition(nil), st.Transitions...)
	for i, h := range st.Health {
		fc.health[i] = counterHealth{
			last: h.Last, seen: h.Seen,
			suspectRun: h.SuspectRun, healthyRun: h.HealthyRun, bad: h.Bad,
		}
	}
	return nil
}

// PriorScore returns the malware prior of the training split — the
// score of the chain's terminal stage: with no usable counters the best
// guess is the base rate.
func (b *Builder) PriorScore() float64 {
	total := b.train.NumRows()
	if total == 0 {
		return 0.5
	}
	malware := 0
	for _, y := range b.train.Y {
		if y == 1 {
			malware++
		}
	}
	return float64(malware) / float64(total)
}

// BuildChain trains one detector per HPC budget in counts (descending,
// e.g. [4, 2]) and assembles them into a FallbackChain whose terminal
// prior is the training-set base rate. Because the builder ranks
// features once, each narrower detector's events are automatically a
// prefix — hence a subset — of the wider one's.
func (b *Builder) BuildChain(baseName string, variant zoo.Variant, counts []int, cfg ChainConfig) (*FallbackChain, error) {
	if len(counts) == 0 {
		return nil, errors.New("core: BuildChain needs at least one HPC budget")
	}
	stages := make([]*Detector, len(counts))
	for i, k := range counts {
		d, err := b.Build(baseName, variant, k)
		if err != nil {
			return nil, fmt.Errorf("core: chain stage %d (%d HPCs): %w", i, k, err)
		}
		stages[i] = d
	}
	cfg.PriorScore = b.PriorScore()
	return NewFallbackChain(stages, cfg)
}
