// Package core is the hardware-based malware detection (HMD) framework
// — the paper's primary contribution assembled from the substrates: it
// builds detectors (feature-reduced ML classifiers, general or
// ensemble) from collected HPC datasets, evaluates them, and runs them
// as run-time monitors that consume a stream of 10 ms HPC samples
// through the 4-register PMU.
//
// The central constraint is enforced at the type level: a Detector
// carries the exact HPC events it needs, and NewMonitor refuses to
// build a run-time monitor for a detector that needs more events than
// the PMU has counter registers — such a detector would require
// multiple executions of the same program, which is not a run-time
// solution (the paper's core argument).
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/micro"
	"repro/internal/mlearn"
	"repro/internal/mlearn/compiled"
	"repro/internal/mlearn/zoo"
	"repro/internal/perf"
)

// Detector is a trained, feature-reduced malware detector.
type Detector struct {
	// BaseName is the underlying classifier ("J48", "OneR", ...).
	BaseName string
	// Variant is General, Boosted or Bagged.
	Variant zoo.Variant
	// Events are the HPC events the detector consumes, in feature
	// order. len(Events) is the detector's "number of HPCs".
	Events []micro.EventID
	// Model is the trained classifier; its input vector order matches
	// Events.
	Model mlearn.Classifier

	// compiledMu guards the one-time lowering of Model into a shared
	// compiled.Program, and the further lowering of that program into a
	// shared quantized twin. Detectors are always handled by pointer, so
	// the caches (like the model's own scratch) travel with the detector
	// and are never copied.
	compiledMu   sync.Mutex
	compiledSet  bool
	compiledProg *compiled.Program
	quantSet     bool
	quantProg    *compiled.QuantProgram
}

// Compiled returns the detector's compiled inference program, lowering
// the model on first call and caching the result. It returns nil when
// the model cannot be compiled (e.g. KNN) — callers then stay on the
// interpreted path. Compilation only reads the trained structure (it
// never evaluates the model), so this is safe to call while another
// goroutine scores through the shared model; the returned Program is
// immutable and shared by every caller.
func (d *Detector) Compiled() *compiled.Program {
	d.compiledMu.Lock()
	defer d.compiledMu.Unlock()
	if !d.compiledSet {
		d.compiledProg, _ = compiled.Compile(d.Model)
		d.compiledSet = true
	}
	return d.compiledProg
}

// setCompiled seeds the compiled cache with an already-lowered program:
// chain replicas stamped from one template share the template's
// read-only artifacts instead of recompiling per replica (gob copies
// every float bit-exactly, so the template's program is the replica's).
func (d *Detector) setCompiled(p *compiled.Program) {
	d.compiledMu.Lock()
	d.compiledProg = p
	d.compiledSet = true
	d.compiledMu.Unlock()
}

// Quantized returns the detector's fixed-point inference program,
// lowering the compiled program on first call and caching the result.
// It returns nil when no quantized lowering exists (OneR, JRip, KNN, or
// any model that does not compile) — callers then fall back to the
// compiled or interpreted tier per model. Like Compiled, this only
// reads trained structure and the returned program is immutable and
// shared.
func (d *Detector) Quantized() *compiled.QuantProgram {
	d.compiledMu.Lock()
	defer d.compiledMu.Unlock()
	if !d.quantSet {
		if !d.compiledSet {
			d.compiledProg, _ = compiled.Compile(d.Model)
			d.compiledSet = true
		}
		if d.compiledProg != nil {
			d.quantProg, _ = d.compiledProg.Quantize()
		}
		d.quantSet = true
	}
	return d.quantProg
}

// setQuantized seeds the quantized cache alongside setCompiled, so
// chain replicas stamped from a quantized template share its
// fixed-point artifacts instead of re-quantizing per replica.
func (d *Detector) setQuantized(p *compiled.QuantProgram) {
	d.compiledMu.Lock()
	d.quantProg = p
	d.quantSet = true
	d.compiledMu.Unlock()
}

// quantizedCached peeks at the quantized cache without triggering a
// lowering — nil either when the model has no quantized form or when
// nobody asked for one yet. Replicators use it to propagate exactly the
// artifacts the template actually built.
func (d *Detector) quantizedCached() *compiled.QuantProgram {
	d.compiledMu.Lock()
	defer d.compiledMu.Unlock()
	return d.quantProg
}

// Name returns a paper-style label like "4HPC-Boosted-JRip".
func (d *Detector) Name() string {
	if d.Variant == zoo.General {
		return fmt.Sprintf("%dHPC-%s", len(d.Events), d.BaseName)
	}
	return fmt.Sprintf("%dHPC-%s-%s", len(d.Events), d.Variant, d.BaseName)
}

// HPCs returns the number of hardware counters the detector needs.
func (d *Detector) HPCs() int { return len(d.Events) }

// Classify returns the predicted class (0 benign, 1 malware) for one
// sample vector ordered like Events.
func (d *Detector) Classify(x []float64) int { return mlearn.Predict(d.Model, x) }

// Score returns P(malware) for one sample vector.
func (d *Detector) Score(x []float64) float64 { return mlearn.Score(d.Model, x) }

// RunTimeCapable reports whether the detector can run with a single
// pass of the PMU — the paper's practicality criterion.
func (d *Detector) RunTimeCapable() bool { return len(d.Events) <= perf.NumCounters }

// Builder trains detectors from a labelled dataset whose attributes are
// named after HPC events (as produced by the collect package). Feature
// ranking is computed once, on the training split only.
type Builder struct {
	train *dataset.Instances
	test  *dataset.Instances
	// ranked column indices into the training dataset, best first.
	ranked []int
	// Seed drives all stochastic elements of training.
	Seed uint64
	// Iterations for ensemble variants (0 = WEKA default 10).
	Iterations int
	// Workers bounds concurrent bag training in Bagged variants (0 =
	// GOMAXPROCS, 1 = sequential); models are identical either way.
	Workers int
	// LegacySplit selects the pre-sorted-index tree split search — the
	// baseline mode of the perf experiment.
	LegacySplit bool
}

// NewBuilder splits data at application level (trainFrac per class,
// the paper's 70/30 protocol) and computes the correlation feature
// ranking on the training side.
func NewBuilder(data *dataset.Instances, trainFrac float64, seed uint64) (*Builder, error) {
	train, test, err := data.SplitByGroup(trainFrac, seed)
	if err != nil {
		return nil, err
	}
	ranked, err := features.TopK(train, train.NumAttrs())
	if err != nil {
		return nil, err
	}
	return &Builder{train: train, test: test, ranked: ranked, Seed: seed}, nil
}

// Train returns the training split (for inspection and custom
// experiments).
func (b *Builder) Train() *dataset.Instances { return b.train }

// Test returns the held-out split of unknown applications.
func (b *Builder) Test() *dataset.Instances { return b.test }

// TopEvents returns the k best events by correlation ranking.
func (b *Builder) TopEvents(k int) ([]micro.EventID, error) {
	if k <= 0 || k > len(b.ranked) {
		return nil, fmt.Errorf("core: k=%d out of range (1..%d)", k, len(b.ranked))
	}
	evs := make([]micro.EventID, k)
	for i := 0; i < k; i++ {
		name := b.train.Attributes[b.ranked[i]].Name
		ev, ok := micro.EventByName(name)
		if !ok {
			return nil, fmt.Errorf("core: attribute %q is not a known HPC event", name)
		}
		evs[i] = ev
	}
	return evs, nil
}

// Build trains a detector on the top-k HPC features.
func (b *Builder) Build(baseName string, variant zoo.Variant, k int) (*Detector, error) {
	evs, err := b.TopEvents(k)
	if err != nil {
		return nil, err
	}
	cols := b.ranked[:k]
	trainK, err := b.train.Select(cols)
	if err != nil {
		return nil, err
	}
	trainer, err := zoo.NewVariantOpts(baseName, variant, zoo.Options{
		Iterations:  b.Iterations,
		Seed:        b.Seed,
		Workers:     b.Workers,
		LegacySplit: b.LegacySplit,
	})
	if err != nil {
		return nil, err
	}
	model, err := trainer.Train(trainK, nil)
	if err != nil {
		return nil, fmt.Errorf("core: training %s: %w", baseName, err)
	}
	return &Detector{BaseName: baseName, Variant: variant, Events: evs, Model: model}, nil
}

// Evaluate measures a detector on the held-out split, returning the
// paper's metrics (accuracy, AUC, ACC*AUC via Result.Performance).
func (b *Builder) Evaluate(d *Detector) (eval.Result, error) {
	testK, err := b.TestFor(d)
	if err != nil {
		return eval.Result{}, err
	}
	return eval.Measure(d.Model, testK)
}

// TestFor returns the held-out split restricted to the detector's
// features, in the detector's input order — the dataset Evaluate
// measures on. Callers can perturb a copy of it (e.g. with
// faults.Plan.CorruptDataset) to evaluate the detector on degraded
// inputs.
func (b *Builder) TestFor(d *Detector) (*dataset.Instances, error) {
	cols := b.ranked[:len(d.Events)]
	return b.test.Select(cols)
}

// ROC builds the detector's ROC curve on the held-out split.
func (b *Builder) ROC(d *Detector) (*eval.ROC, error) {
	cols := b.ranked[:len(d.Events)]
	testK, err := b.test.Select(cols)
	if err != nil {
		return nil, err
	}
	return eval.BuildROC(d.Model, testK)
}

// OperatingPoint is a calibrated decision threshold with its measured
// rates on the held-out split.
type OperatingPoint struct {
	Threshold float64 // score >= Threshold flags malware
	TPR       float64 // true-positive rate at that threshold
	FPR       float64 // false-positive rate at that threshold
}

// CalibrateThreshold selects the detector's operating point for a
// deployment false-positive budget: the threshold maximising TPR
// subject to FPR <= targetFPR on the held-out applications. Security
// operators reason in FPR budgets (alarms per hour), not accuracy; the
// returned threshold feeds NewMonitor.
func (b *Builder) CalibrateThreshold(d *Detector, targetFPR float64) (OperatingPoint, error) {
	if targetFPR < 0 || targetFPR > 1 {
		return OperatingPoint{}, errors.New("core: targetFPR must be in [0,1]")
	}
	roc, err := b.ROC(d)
	if err != nil {
		return OperatingPoint{}, err
	}
	best := OperatingPoint{Threshold: math.Inf(1), TPR: 0, FPR: 0}
	for _, p := range roc.Points {
		if p.FPR <= targetFPR && p.TPR > best.TPR {
			best = OperatingPoint{Threshold: p.Threshold, TPR: p.TPR, FPR: p.FPR}
		}
	}
	return best, nil
}

// Verdict is one monitoring decision.
type Verdict struct {
	Interval int
	// Score is the windowed malware score in [0,1].
	Score float64
	// Malware is the thresholded decision over the window.
	Malware bool
}

// Monitor is the run-time detection engine: it owns a PMU programming
// for the detector's events and classifies each sampling interval,
// smoothing decisions over a sliding window of recent samples (flagging
// a program on a single noisy 10 ms interval would be jumpy; the
// window is the detection-delay/stability knob).
type Monitor struct {
	det       *Detector
	group     perf.Group
	window    int
	threshold float64
	// ring is the fixed-size sliding window of recent scores: head is
	// the next write slot, filled the number of valid entries. A ring
	// instead of an append/trim slice keeps the steady-state Observe
	// loop allocation-free.
	ring     []float64
	head     int
	filled   int
	interval int
	// x and dist are the per-Observe scratch buffers (sample vector and
	// class distribution).
	x    []float64
	dist []float64
}

// NewMonitor builds a run-time monitor. The detector must fit the PMU
// (at most perf.NumCounters events); window is the number of recent
// samples averaged (<=0 means 5); threshold is the mean score above
// which the window is flagged (<=0 means 0.5).
func NewMonitor(d *Detector, window int, threshold float64) (*Monitor, error) {
	if !d.RunTimeCapable() {
		return nil, fmt.Errorf("core: detector %s needs %d HPCs but the PMU has %d registers; not run-time capable",
			d.Name(), d.HPCs(), perf.NumCounters)
	}
	g, err := perf.NewGroup(d.Events...)
	if err != nil {
		return nil, err
	}
	if window <= 0 {
		window = 5
	}
	if threshold <= 0 {
		threshold = 0.5
	}
	return &Monitor{
		det:       d,
		group:     g,
		window:    window,
		threshold: threshold,
		ring:      make([]float64, window),
		x:         make([]float64, len(d.Events)),
		dist:      make([]float64, mlearn.NumClasses(d.Model, len(d.Events))),
	}, nil
}

// Detector returns the monitored detector.
func (m *Monitor) Detector() *Detector { return m.det }

// Observe consumes one interval's raw HPC readings (ordered like the
// detector's events) and returns the windowed verdict.
func (m *Monitor) Observe(values []uint64) (Verdict, error) {
	if len(values) != len(m.det.Events) {
		return Verdict{}, errors.New("core: sample width does not match detector events")
	}
	for i, v := range values {
		m.x[i] = float64(v)
	}
	s := mlearn.ScoreWith(m.det.Model, m.x, m.dist)
	m.ring[m.head] = s
	m.head = (m.head + 1) % m.window
	if m.filled < m.window {
		m.filled++
	}
	// Sum oldest-to-newest so the float accumulation order matches the
	// historical append/trim implementation bit for bit.
	mean := 0.0
	start := m.head - m.filled
	if start < 0 {
		start += m.window
	}
	for i := 0; i < m.filled; i++ {
		mean += m.ring[(start+i)%m.window]
	}
	mean /= float64(m.filled)
	v := Verdict{Interval: m.interval, Score: mean, Malware: mean >= m.threshold}
	m.interval++
	return v, nil
}

// Reset clears the sliding window (e.g. when the monitored process
// changes).
func (m *Monitor) Reset() {
	m.head = 0
	m.filled = 0
	m.interval = 0
}

// DetectionDelay returns the index of the first interval at which the
// monitor sustained `sustain` consecutive malware verdicts (the
// paper's detection-delay concern: a hardware detector is only useful
// if it flags malware within a few sampling periods). Returns -1 when
// the stream never sustains a detection.
func DetectionDelay(verdicts []Verdict, sustain int) int {
	if sustain <= 0 {
		sustain = 1
	}
	run := 0
	for i, v := range verdicts {
		if v.Malware {
			run++
			if run >= sustain {
				return i - sustain + 1
			}
		} else {
			run = 0
		}
	}
	return -1
}

// Watch runs prog on machine mach for n intervals, sampling the
// detector's events each interval and returning the verdict stream —
// the complete run-time detection loop of Figure 2 in one call.
func (m *Monitor) Watch(mach *micro.Machine, prog perf.Program, n int, cycleBudget uint64) ([]Verdict, error) {
	samples := perf.SampleRun(mach, prog, m.group, n, cycleBudget)
	verdicts := make([]Verdict, 0, len(samples))
	for _, s := range samples {
		v, err := m.Observe(s.Values)
		if err != nil {
			return nil, err
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, nil
}
