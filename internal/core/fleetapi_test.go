package core

import (
	"testing"

	"repro/internal/micro"
	"repro/internal/mlearn/zoo"
)

// TestBeginCommitMatchesObserve is the batching invariant the fleet
// engine rests on: splitting an observation into BeginObserve + an
// external model evaluation + CommitScore must be bit-identical to one
// Observe call, through health decay, stepdowns and recovery.
func TestBeginCommitMatchesObserve(t *testing.T) {
	cfg := ChainConfig{Window: 3, BadAfter: 3}
	ref := newChain(t, cfg)
	split := newChain(t, cfg)

	// One batcher per trained stage — the shard-side scoring path.
	dets := split.Detectors()
	if len(dets) != split.Stages() {
		t.Fatalf("Detectors() returned %d stages, want %d", len(dets), split.Stages())
	}
	batchers := make([]*Batcher, len(dets))
	for i, d := range dets {
		batchers[i] = d.NewBatcher()
	}

	const total = 60
	for i := 0; i < total; i++ {
		vals := liveValues(i)
		switch {
		case i >= 10 && i < 25:
			vals[3] = 4242 // wedge counter 3: step down to 2HPC
		case i >= 30 && i < 45:
			// All counters dead: degrade to the prior stage.
			vals[0], vals[1], vals[2], vals[3] = 0, 0, 0, 0
		}

		want, err := ref.Observe(vals)
		if err != nil {
			t.Fatalf("interval %d: observe: %v", i, err)
		}

		stage, x, err := split.BeginObserve(vals)
		if err != nil {
			t.Fatalf("interval %d: begin: %v", i, err)
		}
		score := split.Prior()
		if stage < split.Stages() {
			score = batchers[stage].Score(x)
		}
		got := split.CommitScore(score)

		if got != want {
			t.Fatalf("interval %d: split path %+v != observe %+v (stage %d)", i, got, want, stage)
		}
	}
	if ref.ActiveStage() != split.ActiveStage() {
		t.Fatalf("active stages diverged: %d vs %d", ref.ActiveStage(), split.ActiveStage())
	}
	trA, trB := ref.Transitions(), split.Transitions()
	if len(trA) != len(trB) {
		t.Fatalf("transition logs diverged: %v vs %v", trA, trB)
	}
	for i := range trA {
		if trA[i] != trB[i] {
			t.Fatalf("transition %d diverged: %v vs %v", i, trA[i], trB[i])
		}
	}
}

// TestBeginObserveWidthCheck: a malformed reading is rejected before it
// can touch health state.
func TestBeginObserveWidthCheck(t *testing.T) {
	chain := newChain(t, ChainConfig{Window: 3})
	if _, _, err := chain.BeginObserve([]uint64{1, 2}); err == nil {
		t.Fatal("narrow sample accepted")
	}
}

// TestChainReplicator: replicas share trained parameters (identical
// scores) but nothing else — scoring through one replica must not
// disturb another, and each replica carries its own run-time state.
func TestChainReplicator(t *testing.T) {
	b := newBuilder(t)
	chain, err := b.BuildChain("REPTree", zoo.Boosted, []int{4, 2}, ChainConfig{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	replicate, err := NewChainReplicator(chain)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := replicate()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := replicate()
	if err != nil {
		t.Fatal(err)
	}
	if ra == rb || ra.Detectors()[0].Model == rb.Detectors()[0].Model {
		t.Fatal("replicas share structure")
	}
	if ra.Config() != chain.Config() {
		t.Fatalf("replica config %+v != template %+v", ra.Config(), chain.Config())
	}
	for i := 0; i < 20; i++ {
		va, err := ra.Observe(liveValues(i))
		if err != nil {
			t.Fatal(err)
		}
		vb, err := rb.Observe(liveValues(i))
		if err != nil {
			t.Fatal(err)
		}
		vc, err := chain.Observe(liveValues(i))
		if err != nil {
			t.Fatal(err)
		}
		if va != vb || va != vc {
			t.Fatalf("interval %d: replica verdicts diverge: %+v %+v %+v", i, va, vb, vc)
		}
	}
}

// TestSiblingChainsShareModels: chains assembled from a replica's
// Detectors() — the fleet's one-state-per-stream arrangement — score
// identically to the replica itself.
func TestSiblingChainsShareModels(t *testing.T) {
	chain := newChain(t, ChainConfig{Window: 3})
	sibling, err := NewFallbackChain(chain.Detectors(), chain.Config())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		va, err := chain.Observe(liveValues(i))
		if err != nil {
			t.Fatal(err)
		}
		vb, err := sibling.Observe(liveValues(i))
		if err != nil {
			t.Fatal(err)
		}
		if va != vb {
			t.Fatalf("interval %d: sibling diverges: %+v vs %+v", i, va, vb)
		}
	}
}

// TestNewSiblingMatchesChain: a sibling built from a template chain
// carries the template's models and configuration with fresh run-time
// state, so it scores identically to the template from interval 0.
func TestNewSiblingMatchesChain(t *testing.T) {
	chain := newChain(t, ChainConfig{Window: 3})
	sibling := chain.NewSibling()
	if sibling == chain {
		t.Fatal("NewSibling returned the template itself")
	}
	for i := 0; i < 15; i++ {
		va, err := chain.Observe(liveValues(i))
		if err != nil {
			t.Fatal(err)
		}
		vb, err := sibling.Observe(liveValues(i))
		if err != nil {
			t.Fatal(err)
		}
		if va != vb {
			t.Fatalf("interval %d: sibling diverges: %+v vs %+v", i, va, vb)
		}
	}
}

// armedModel is a classifier that panics when evaluated after arming —
// proof that a code path never touches the model.
type armedModel struct{ armed *bool }

func (m armedModel) Distribution(x []float64) []float64 {
	if *m.armed {
		panic("core: model evaluated")
	}
	return []float64{0.5, 0.5}
}

func (m armedModel) DistributionInto(x []float64, out []float64) {
	if *m.armed {
		panic("core: model evaluated")
	}
	out[0], out[1] = 0.5, 0.5
}

// TestNewSiblingDoesNotEvaluateModels is the concurrency contract the
// fleet's mid-Run Add relies on: stage models reuse internal scratch
// and belong to the owning shard's goroutine, so assembling a sibling
// chain must size every buffer from the template instead of re-probing
// the live models the way NewFallbackChain's class-count probe does.
func TestNewSiblingDoesNotEvaluateModels(t *testing.T) {
	armed := false
	evs := micro.AllEvents()
	d4 := &Detector{BaseName: "Armed", Events: evs[:4], Model: armedModel{&armed}}
	d2 := &Detector{BaseName: "Armed", Events: evs[:2], Model: armedModel{&armed}}
	chain, err := NewFallbackChain([]*Detector{d4, d2}, ChainConfig{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	armed = true
	sibling := chain.NewSibling()
	armed = false
	if got, want := len(sibling.dist), len(chain.dist); got != want {
		t.Fatalf("sibling dist buffer has %d entries, want %d", got, want)
	}
	if got, want := len(sibling.ring), len(chain.ring); got != want {
		t.Fatalf("sibling window has %d slots, want %d", got, want)
	}
}

// TestBeginCommitZeroAlloc gates the fleet's per-interval chain work —
// BeginObserve + CommitScore — at zero heap allocations.
func TestBeginCommitZeroAlloc(t *testing.T) {
	chain := newChain(t, ChainConfig{Window: 5})
	dets := chain.Detectors()
	batchers := make([]*Batcher, len(dets))
	for i, d := range dets {
		batchers[i] = d.NewBatcher()
	}
	vals := liveValues(0)
	i := 0
	step := func() {
		copy(vals, liveValues(i))
		stage, x, err := chain.BeginObserve(vals)
		if err != nil {
			t.Fatal(err)
		}
		score := chain.Prior()
		if stage < chain.Stages() {
			score = batchers[stage].Score(x)
		}
		chain.CommitScore(score)
		i++
	}
	step()
	if allocs := testing.AllocsPerRun(500, step); allocs != 0 {
		t.Fatalf("BeginObserve+CommitScore allocates %.1f times per interval, want 0", allocs)
	}
}
