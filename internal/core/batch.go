package core

import (
	"errors"

	"repro/internal/mlearn"
	"repro/internal/mlearn/compiled"
)

// Batcher classifies streams of samples through a detector with
// reusable scratch buffers: after construction, Classify/Score and the
// batch calls perform zero heap allocations per sample for streaming
// models. Each Batcher owns its scratch (and, transitively, the
// model's), so use one Batcher per goroutine.
//
// When the detector's model compiles (Detector.Compiled), the Batcher
// scores through a compiled evaluator — flattened forests, fused linear
// datapaths, blocked MLP batches — with bit-identical results;
// otherwise it scores through the interpreted model. Use
// NewInterpretedBatcher to force the interpreted path (baselines,
// equivalence tests).
type Batcher struct {
	det  *Detector
	x    []float64
	dist []float64
	eval *compiled.Evaluator
	// qeval, when set, takes precedence over eval: the Batcher scores
	// through the quantized fixed-point kernels (statistical — not bit —
	// equivalence to the interpreted model).
	qeval *compiled.QuantEvaluator
}

// NewBatcher builds a reusable classification context for the detector,
// preferring the compiled fast path when the model supports it.
func (d *Detector) NewBatcher() *Batcher {
	return d.NewTierBatcher(TierCompiled)
}

// NewTierBatcher builds a Batcher for an explicit inference tier.
// Requesting TierQuantized on a model with no quantized lowering falls
// back to the compiled tier (and from there to interpreted) — the
// per-model fallback that lets a mixed fleet run `-tier quantized`
// end-to-end.
func (d *Detector) NewTierBatcher(t Tier) *Batcher {
	if t == TierQuantized {
		if qp := d.Quantized(); qp != nil {
			return &Batcher{
				det:   d,
				x:     make([]float64, len(d.Events)),
				dist:  make([]float64, qp.NumClasses()),
				qeval: qp.NewEvaluator(),
			}
		}
		t = TierCompiled
	}
	if t == TierCompiled {
		if p := d.Compiled(); p != nil {
			return &Batcher{
				det:  d,
				x:    make([]float64, len(d.Events)),
				dist: make([]float64, p.NumClasses()),
				eval: p.NewEvaluator(),
			}
		}
	}
	return d.NewInterpretedBatcher()
}

// NewInterpretedBatcher builds a Batcher pinned to the interpreted
// model even when a compiled program exists — the baseline side of
// compiled-vs-interpreted comparisons. Note this probes the model to
// size scratch (NumClasses), like NewBatcher always did.
func (d *Detector) NewInterpretedBatcher() *Batcher {
	return &Batcher{
		det:  d,
		x:    make([]float64, len(d.Events)),
		dist: make([]float64, mlearn.NumClasses(d.Model, len(d.Events))),
	}
}

// Detector returns the wrapped detector.
func (b *Batcher) Detector() *Detector { return b.det }

// Compiled reports whether this Batcher scores through one of the
// lowered fast paths (compiled or quantized).
func (b *Batcher) Compiled() bool { return b.eval != nil || b.qeval != nil }

// Quantized reports whether this Batcher scores through the quantized
// fixed-point kernels.
func (b *Batcher) Quantized() bool { return b.qeval != nil }

// Backend returns the tier this Batcher actually scores through — after
// any per-model fallback, so a quantized fleet's OneR shard honestly
// reports "compiled".
func (b *Batcher) Backend() Tier {
	switch {
	case b.qeval != nil:
		return TierQuantized
	case b.eval != nil:
		return TierCompiled
	}
	return TierInterpreted
}

// Classify returns the predicted class for one sample vector ordered
// like the detector's events.
func (b *Batcher) Classify(x []float64) int {
	if b.qeval != nil {
		return b.qeval.Predict(x)
	}
	if b.eval != nil {
		return b.eval.Predict(x)
	}
	return mlearn.PredictWith(b.det.Model, x, b.dist)
}

// Score returns P(malware) for one sample vector.
func (b *Batcher) Score(x []float64) float64 {
	if b.qeval != nil {
		return b.qeval.Score(x)
	}
	if b.eval != nil {
		return b.eval.Score(x)
	}
	return mlearn.ScoreWith(b.det.Model, x, b.dist)
}

// ScoreValues is Score on raw counter readings (as delivered by the
// PMU), converting them in the Batcher's scratch vector.
func (b *Batcher) ScoreValues(values []uint64) (float64, error) {
	if len(values) != len(b.det.Events) {
		return 0, errors.New("core: sample width does not match detector events")
	}
	for i, v := range values {
		b.x[i] = float64(v)
	}
	return b.Score(b.x), nil
}

// ScoreBatch scores every row of xs into out (len(out) == len(xs)) and
// returns out, allocating it only when nil. On the compiled path this
// is the batched hot path proper: MLPs evaluate in blocked
// matrix-matrix tiles, everything else streams through its flattened
// program.
func (b *Batcher) ScoreBatch(xs [][]float64, out []float64) []float64 {
	if b.qeval != nil {
		return b.qeval.ScoreBatch(xs, out)
	}
	if b.eval != nil {
		return b.eval.ScoreBatch(xs, out)
	}
	if out == nil {
		out = make([]float64, len(xs))
	}
	for i, x := range xs {
		out[i] = b.Score(x)
	}
	return out
}

// ClassifyBatch predicts every row of xs into out (len(out) ==
// len(xs)) and returns out, allocating it only when nil.
func (b *Batcher) ClassifyBatch(xs [][]float64, out []int) []int {
	if out == nil {
		out = make([]int, len(xs))
	}
	for i, x := range xs {
		out[i] = b.Classify(x)
	}
	return out
}
