package core

import (
	"errors"

	"repro/internal/mlearn"
)

// Batcher classifies streams of samples through a detector with
// reusable scratch buffers: after construction, Classify/Score and the
// batch calls perform zero heap allocations per sample for streaming
// models. Each Batcher owns its scratch (and, transitively, the
// model's), so use one Batcher per goroutine.
type Batcher struct {
	det  *Detector
	x    []float64
	dist []float64
}

// NewBatcher builds a reusable classification context for the detector.
func (d *Detector) NewBatcher() *Batcher {
	return &Batcher{
		det:  d,
		x:    make([]float64, len(d.Events)),
		dist: make([]float64, mlearn.NumClasses(d.Model, len(d.Events))),
	}
}

// Detector returns the wrapped detector.
func (b *Batcher) Detector() *Detector { return b.det }

// Classify returns the predicted class for one sample vector ordered
// like the detector's events.
func (b *Batcher) Classify(x []float64) int {
	return mlearn.PredictWith(b.det.Model, x, b.dist)
}

// Score returns P(malware) for one sample vector.
func (b *Batcher) Score(x []float64) float64 {
	return mlearn.ScoreWith(b.det.Model, x, b.dist)
}

// ScoreValues is Score on raw counter readings (as delivered by the
// PMU), converting them in the Batcher's scratch vector.
func (b *Batcher) ScoreValues(values []uint64) (float64, error) {
	if len(values) != len(b.det.Events) {
		return 0, errors.New("core: sample width does not match detector events")
	}
	for i, v := range values {
		b.x[i] = float64(v)
	}
	return b.Score(b.x), nil
}

// ScoreBatch scores every row of xs into out (len(out) == len(xs)) and
// returns out, allocating it only when nil.
func (b *Batcher) ScoreBatch(xs [][]float64, out []float64) []float64 {
	if out == nil {
		out = make([]float64, len(xs))
	}
	for i, x := range xs {
		out[i] = b.Score(x)
	}
	return out
}

// ClassifyBatch predicts every row of xs into out (len(out) ==
// len(xs)) and returns out, allocating it only when nil.
func (b *Batcher) ClassifyBatch(xs [][]float64, out []int) []int {
	if out == nil {
		out = make([]int, len(xs))
	}
	for i, x := range xs {
		out[i] = b.Classify(x)
	}
	return out
}
