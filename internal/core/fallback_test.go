package core

import (
	"testing"

	"repro/internal/mlearn/zoo"
)

func newChain(t *testing.T, cfg ChainConfig) *FallbackChain {
	t.Helper()
	b := newBuilder(t)
	chain, err := b.BuildChain("REPTree", zoo.General, []int{4, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return chain
}

// liveValues returns a plausible healthy 4-counter reading for interval
// i: every delta distinct from the previous interval's and non-zero.
func liveValues(i int) []uint64 {
	base := uint64(1000 + 37*i)
	return []uint64{base, base + 101, base + 211, base + 307}
}

// TestFallbackStepsDownOnDeadCounter is the acceptance test for
// graceful degradation: a counter dies (sticks) mid-stream and the
// 2-HPC fallback must take over — without a panic and without a single
// dropped verdict interval.
func TestFallbackStepsDownOnDeadCounter(t *testing.T) {
	cfg := ChainConfig{Window: 3, BadAfter: 3}
	chain := newChain(t, cfg)
	if chain.Stages() != 2 {
		t.Fatalf("stages = %d, want 2", chain.Stages())
	}

	const total = 30
	const killAt = 10
	verdicts := 0
	for i := 0; i < total; i++ {
		vals := liveValues(i)
		if i >= killAt {
			// Counter 3 wedges: it repeats the same delta forever. The
			// 2-HPC stage uses the top-2 ranked events (positions 0 and
			// 1), so it remains fully served.
			vals[3] = 4242
		}
		v, err := chain.Observe(vals)
		if err != nil {
			t.Fatalf("interval %d: %v", i, err)
		}
		if v.Interval != i {
			t.Fatalf("verdict interval %d, want %d (no interval may be dropped)", v.Interval, i)
		}
		verdicts++

		// The first wedged reading is indistinguishable from a live
		// one (the delta differs from the previous interval's), so the
		// stuck run is only detectable from killAt+1 onwards.
		if i < killAt+cfg.BadAfter {
			if chain.ActiveStage() != 0 {
				t.Fatalf("interval %d: stepped down too early (stage %d)", i, chain.ActiveStage())
			}
		}
	}
	if verdicts != total {
		t.Fatalf("got %d verdicts for %d intervals", verdicts, total)
	}
	if chain.ActiveStage() != 1 {
		t.Fatalf("active stage = %s, want the 2-HPC fallback", chain.StageName(chain.ActiveStage()))
	}
	trs := chain.Transitions()
	if len(trs) != 1 {
		t.Fatalf("transitions = %v, want exactly one stepdown", trs)
	}
	if trs[0].From != 0 || trs[0].To != 1 {
		t.Fatalf("transition %v, want 0 -> 1", trs[0])
	}
	// The stepdown must occur exactly when the stuck counter crosses
	// BadAfter consecutive identical deltas.
	if want := killAt + cfg.BadAfter; trs[0].Interval != want {
		t.Errorf("stepdown at interval %d, want %d", trs[0].Interval, want)
	}
}

// TestFallbackDegradesToPriorAndRecovers drives every counter dead
// (reaching the majority-prior stage) and then revives them, checking
// the hysteresis brings the chain back up to the primary.
func TestFallbackDegradesToPriorAndRecovers(t *testing.T) {
	cfg := ChainConfig{Window: 3, BadAfter: 2, GoodAfter: 4}
	chain := newChain(t, cfg)

	// Healthy warm-up.
	for i := 0; i < 5; i++ {
		if _, err := chain.Observe(liveValues(i)); err != nil {
			t.Fatal(err)
		}
	}
	if chain.ActiveStage() != 0 {
		t.Fatal("healthy stream should stay on the primary")
	}

	// All four counters read zero: nothing is usable.
	for i := 5; i < 10; i++ {
		if _, err := chain.Observe([]uint64{0, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if chain.ActiveStage() != chain.Stages() {
		t.Fatalf("active stage = %s, want prior", chain.StageName(chain.ActiveStage()))
	}

	// Counters revive; GoodAfter healthy readings restore the primary.
	for i := 10; i < 10+cfg.GoodAfter+1; i++ {
		if _, err := chain.Observe(liveValues(i)); err != nil {
			t.Fatal(err)
		}
	}
	if chain.ActiveStage() != 0 {
		t.Fatalf("active stage = %s after recovery, want primary", chain.StageName(chain.ActiveStage()))
	}

	// The transition log must show down-and-back.
	trs := chain.Transitions()
	if len(trs) < 2 {
		t.Fatalf("transitions = %v, want a stepdown and a recovery", trs)
	}
	last := trs[len(trs)-1]
	if last.To != 0 {
		t.Fatalf("last transition %v, want recovery to stage 0", last)
	}
}

// TestFallbackHysteresisHoldsWindow checks the sliding verdict window
// survives a stepdown: the windowed score right after the transition
// still blends pre-transition scores (no snap).
func TestFallbackHysteresisHoldsWindow(t *testing.T) {
	cfg := ChainConfig{Window: 5, BadAfter: 2}
	chain := newChain(t, cfg)

	var before Verdict
	for i := 0; i < 8; i++ {
		v, err := chain.Observe(liveValues(i))
		if err != nil {
			t.Fatal(err)
		}
		before = v
	}
	// Counters 2 and 3 go dead (zero reads are suspect immediately);
	// the 2-HPC stage takes over after BadAfter intervals.
	var after Verdict
	for i := 8; i < 10; i++ {
		vals := liveValues(i)
		vals[2], vals[3] = 0, 0
		v, err := chain.Observe(vals)
		if err != nil {
			t.Fatal(err)
		}
		after = v
	}
	if chain.ActiveStage() != 1 {
		t.Fatalf("stage = %d, want 1", chain.ActiveStage())
	}
	// Window carries 5 samples; at most 2 are post-transition, so the
	// score cannot have moved by more than 2/5 of the score range.
	diff := after.Score - before.Score
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.4+1e-9 {
		t.Fatalf("windowed score snapped across stepdown: %.3f -> %.3f", before.Score, after.Score)
	}
}

// TestObserveLostKeepsStreamGapFree covers dropped samples: the chain
// emits a verdict for lost intervals too.
func TestObserveLostKeepsStreamGapFree(t *testing.T) {
	chain := newChain(t, ChainConfig{Window: 4})
	for i := 0; i < 4; i++ {
		if _, err := chain.Observe(liveValues(i)); err != nil {
			t.Fatal(err)
		}
	}
	v := chain.ObserveLost()
	if v.Interval != 4 {
		t.Fatalf("lost interval verdict at %d, want 4", v.Interval)
	}
	v2, err := chain.Observe(liveValues(5))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Interval != 5 {
		t.Fatalf("stream not contiguous after loss: %d", v2.Interval)
	}
}

func TestChainValidation(t *testing.T) {
	b := newBuilder(t)
	d4, err := b.Build("REPTree", zoo.General, 4)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := b.Build("REPTree", zoo.General, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFallbackChain(nil, ChainConfig{}); err == nil {
		t.Error("empty chain should fail")
	}
	if _, err := NewFallbackChain([]*Detector{d8}, ChainConfig{}); err == nil {
		t.Error("8-HPC primary cannot fit the 4-register PMU")
	}
	if _, err := NewFallbackChain([]*Detector{d4, d4}, ChainConfig{}); err == nil {
		t.Error("non-decreasing stage widths should fail")
	}
	// Sample width mismatch must error, not panic.
	chain, err := NewFallbackChain([]*Detector{d4}, ChainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Observe([]uint64{1, 2}); err == nil {
		t.Error("short sample should fail")
	}
}

func TestBuilderPriorScore(t *testing.T) {
	b := newBuilder(t)
	p := b.PriorScore()
	if p <= 0 || p >= 1 {
		t.Fatalf("prior %.3f outside (0,1) for a mixed corpus", p)
	}
}

// TestFallbackRecoveryExactlyAtBoundary pins the hysteresis edge: after
// a dead episode, the chain must stay degraded through the first
// GoodAfter-1 healthy readings and step back up on exactly the
// GoodAfter-th — one interval earlier is flapping, one later is a
// missed recovery.
func TestFallbackRecoveryExactlyAtBoundary(t *testing.T) {
	cfg := ChainConfig{Window: 3, BadAfter: 2, GoodAfter: 3}
	chain := newChain(t, cfg)

	// Warm-up, then kill everything with zero reads until the chain sits
	// on the prior stage.
	i := 0
	for ; i < 4; i++ {
		if _, err := chain.Observe(liveValues(i)); err != nil {
			t.Fatal(err)
		}
	}
	for ; i < 8; i++ {
		if _, err := chain.Observe([]uint64{0, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if chain.ActiveStage() != chain.Stages() {
		t.Fatalf("setup failed: stage %d, want prior (%d)", chain.ActiveStage(), chain.Stages())
	}

	// GoodAfter-1 healthy readings: still degraded.
	for k := 0; k < cfg.GoodAfter-1; k++ {
		if _, err := chain.Observe(liveValues(i)); err != nil {
			t.Fatal(err)
		}
		i++
		if chain.ActiveStage() != chain.Stages() {
			t.Fatalf("recovered after %d healthy readings, hysteresis demands %d", k+1, cfg.GoodAfter)
		}
	}

	// The GoodAfter-th healthy reading recovers the primary.
	recoveryInterval := i
	if _, err := chain.Observe(liveValues(i)); err != nil {
		t.Fatal(err)
	}
	if chain.ActiveStage() != 0 {
		t.Fatalf("stage %d after %d healthy readings, want primary", chain.ActiveStage(), cfg.GoodAfter)
	}
	trs := chain.Transitions()
	last := trs[len(trs)-1]
	if last.To != 0 || last.Interval != recoveryInterval {
		t.Fatalf("recovery transition %+v, want To=0 at interval %d", last, recoveryInterval)
	}
}

// TestAllCountersDeadPriorOnlyGoldenStream drives a chain whose every
// counter is dead from the first interval: the verdict stream must stay
// gap-free, settle on the training-prior score exactly once the window
// has flushed, and reproduce bit-identically across chains — the
// golden behaviour hmd-serve relies on when a source is fully dark.
func TestAllCountersDeadPriorOnlyGoldenStream(t *testing.T) {
	b := newBuilder(t)
	cfg := ChainConfig{Window: 3, BadAfter: 2}
	build := func() *FallbackChain {
		chain, err := b.BuildChain("REPTree", zoo.General, []int{4, 2}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return chain
	}
	prior := b.PriorScore()

	const total = 20
	run := func(chain *FallbackChain) []Verdict {
		out := make([]Verdict, 0, total)
		for i := 0; i < total; i++ {
			v, err := chain.Observe([]uint64{0, 0, 0, 0})
			if err != nil {
				t.Fatalf("interval %d: %v", i, err)
			}
			out = append(out, v)
		}
		return out
	}

	c1 := build()
	verdicts := run(c1)
	for i, v := range verdicts {
		if v.Interval != i {
			t.Fatalf("gap at interval %d (got %d)", i, v.Interval)
		}
	}
	if c1.ActiveStage() != c1.Stages() {
		t.Fatalf("stage %d, want prior", c1.ActiveStage())
	}
	// Once the chain is on the prior stage AND the window holds only
	// prior-scored samples, every verdict is exactly the training prior.
	settled := cfg.BadAfter + cfg.Window
	for i := settled; i < total; i++ {
		// The window averages identical prior scores, so the verdict can
		// differ from the prior only by floating-point rounding.
		if d := verdicts[i].Score - prior; d > 1e-12 || d < -1e-12 {
			t.Fatalf("interval %d: score %.17g, want the prior %.17g", i, verdicts[i].Score, prior)
		}
		if verdicts[i].Malware != (prior >= 0.5) {
			t.Fatalf("interval %d: verdict %v inconsistent with prior %.3f", i, verdicts[i].Malware, prior)
		}
	}

	// Golden reproducibility: a second identical chain emits the
	// bit-identical stream.
	again := run(build())
	for i := range verdicts {
		if verdicts[i] != again[i] {
			t.Fatalf("interval %d: %+v != %+v across identical chains", i, verdicts[i], again[i])
		}
	}
}
