package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/mlearn/zoo"
)

func testStore(t *testing.T, version uint32) *CheckpointStore {
	t.Helper()
	s, err := NewCheckpointStore(t.TempDir(), "model", version)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func saveString(t *testing.T, s *CheckpointStore, payload string) {
	t.Helper()
	if err := s.Save(func(w io.Writer) error {
		_, err := io.WriteString(w, payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func recoverString(t *testing.T, s *CheckpointStore) (string, int, []string) {
	t.Helper()
	var got string
	gen, quarantined, err := s.Recover(func(p []byte) error {
		got = string(p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, gen, quarantined
}

func TestCheckpointStoreRotation(t *testing.T) {
	s := testStore(t, 1)
	saveString(t, s, "first")
	saveString(t, s, "second")
	saveString(t, s, "third")

	got, gen, q := recoverString(t, s)
	if got != "third" || gen != 0 || len(q) != 0 {
		t.Fatalf("got %q gen %d quarantined %v", got, gen, q)
	}
	// The previous generation must hold the second write.
	if raw, err := os.ReadFile(s.Path(1)); err != nil || !strings.HasSuffix(string(raw), "second") {
		t.Fatalf("previous generation: %q, %v", raw, err)
	}
}

// TestCheckpointStoreTornNewestFallsBack is the kill -9 scenario: the
// newest generation is torn (a writer that bypassed the atomic path, or
// a filesystem that lost the tail), and recovery must quarantine it and
// load the previous good generation — the torn file is never decoded.
func TestCheckpointStoreTornNewestFallsBack(t *testing.T) {
	s := testStore(t, 1)
	saveString(t, s, "good-old")
	saveString(t, s, "good-new")

	// Tear the newest generation in place.
	raw, err := os.ReadFile(s.Path(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path(0), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	got, gen, q := recoverString(t, s)
	if got != "good-old" {
		t.Fatalf("recovered %q, want the previous good generation", got)
	}
	if gen != 1 {
		t.Fatalf("recovered generation %d, want 1", gen)
	}
	if len(q) != 1 || !strings.Contains(q[0], ".corrupt-") {
		t.Fatalf("torn file not quarantined: %v", q)
	}
	if _, err := os.Stat(s.Path(0)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("torn newest generation still present under its live name")
	}
}

func TestCheckpointStoreAllTorn(t *testing.T) {
	s := testStore(t, 1)
	saveString(t, s, "a")
	saveString(t, s, "b")
	for gen := 0; gen <= 1; gen++ {
		if err := os.WriteFile(s.Path(gen), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, q, err := s.Recover(func([]byte) error { return nil })
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
	if len(q) != 2 {
		t.Fatalf("want both generations quarantined, got %v", q)
	}
}

func TestCheckpointStoreEmpty(t *testing.T) {
	s := testStore(t, 1)
	_, q, err := s.Recover(func([]byte) error { return nil })
	if !errors.Is(err, ErrNoCheckpoint) || len(q) != 0 {
		t.Fatalf("empty store: err=%v quarantined=%v", err, q)
	}
}

func TestCheckpointStoreUndecodablePayloadQuarantined(t *testing.T) {
	s := testStore(t, 1)
	saveString(t, s, "good")
	saveString(t, s, "not-a-gob-stream")
	var got string
	gen, q, err := s.Recover(func(p []byte) error {
		if string(p) == "not-a-gob-stream" {
			return errors.New("decode failure")
		}
		got = string(p)
		return nil
	})
	if err != nil || got != "good" || gen != 1 {
		t.Fatalf("err=%v got=%q gen=%d", err, got, gen)
	}
	if len(q) != 1 {
		t.Fatalf("undecodable newest not quarantined: %v", q)
	}
}

func TestSaveLoadChainRoundTrip(t *testing.T) {
	b := newBuilder(t)
	chain, err := b.BuildChain("REPTree", zoo.General, []int{4, 2}, ChainConfig{Window: 5})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveChain(&buf, chain); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadChain(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stages() != chain.Stages() {
		t.Fatalf("stage count %d != %d", loaded.Stages(), chain.Stages())
	}
	for i := 0; i <= chain.Stages(); i++ {
		if loaded.StageName(i) != chain.StageName(i) {
			t.Fatalf("stage %d: %q != %q", i, loaded.StageName(i), chain.StageName(i))
		}
	}

	// The reloaded chain must score identically: same verdict stream on
	// the same readings.
	for i := 0; i < 20; i++ {
		want, err := chain.Observe(liveValues(i))
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Observe(liveValues(i))
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("interval %d: verdict %+v != %+v", i, got, want)
		}
	}
}

func TestChainStateRoundTrip(t *testing.T) {
	chain := newChain(t, ChainConfig{Window: 4})
	// Drive the chain into a degraded, mid-window state: healthy
	// readings, then a dead counter.
	for i := 0; i < 6; i++ {
		if _, err := chain.Observe(liveValues(i)); err != nil {
			t.Fatal(err)
		}
	}
	dead := []uint64{0, 2000, 3000, 4000}
	for i := 0; i < 4; i++ {
		dead[1], dead[2], dead[3] = dead[1]+17, dead[2]+29, dead[3]+31
		if _, err := chain.Observe(dead); err != nil {
			t.Fatal(err)
		}
	}
	st := chain.State()

	// Serialise through gob as the supervised checkpointer does.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	var decoded ChainState
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}

	restored := newChain(t, ChainConfig{Window: 4})
	if err := restored.SetState(decoded); err != nil {
		t.Fatal(err)
	}
	if restored.ActiveStage() != chain.ActiveStage() {
		t.Fatalf("active stage %d != %d", restored.ActiveStage(), chain.ActiveStage())
	}
	// Both chains must continue bit-identically.
	for i := 0; i < 10; i++ {
		v := liveValues(100 + i)
		want, err := chain.Observe(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Observe(append([]uint64(nil), v...))
		if err != nil {
			t.Fatal(err)
		}
		if want != got {
			t.Fatalf("interval %d after restore: %+v != %+v", i, got, want)
		}
	}
}

func TestChainSetStateValidates(t *testing.T) {
	chain := newChain(t, ChainConfig{})
	if err := chain.SetState(ChainState{Health: make([]CounterHealthState, 1)}); err == nil {
		t.Fatal("wrong health width accepted")
	}
	if err := chain.SetState(ChainState{Health: make([]CounterHealthState, 4), Active: 99}); err == nil {
		t.Fatal("out-of-range active stage accepted")
	}
	if err := chain.SetState(ChainState{Health: make([]CounterHealthState, 4), Interval: -1}); err == nil {
		t.Fatal("negative interval accepted")
	}
}

func TestCheckpointStoreRejectsEmptyName(t *testing.T) {
	if _, err := NewCheckpointStore(t.TempDir(), "", 1); err == nil {
		t.Fatal("empty name accepted")
	}
}
