package core

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"repro/internal/mlearn"
	"repro/internal/mlearn/compiled"
	"repro/internal/mlearn/zoo"
)

// faultyValues replays the fault pattern of TestBeginCommitMatchesObserve:
// healthy readings with a wedged counter during [10,25) and all counters
// dead during [30,45), driving stepdown, prior and recovery.
func faultyValues(i int) []uint64 {
	vals := liveValues(i)
	if i >= 10 && i < 25 {
		vals[3] = 4242 // wedged: repeats the same delta every interval
	}
	if i >= 30 && i < 45 {
		for c := range vals {
			vals[c] = 0
		}
	}
	return vals
}

func sameVerdict(a, b Verdict) bool {
	return a.Interval == b.Interval &&
		math.Float64bits(a.Score) == math.Float64bits(b.Score) &&
		a.Malware == b.Malware
}

// TestChainCompiledMatchesInterpreted drives three scoring paths over
// the same faulty stream — Observe (compiled stage evaluators), the
// split path with compiled Batchers, and the split path with
// interpreted Batchers — and requires bit-identical verdicts and
// transitions from all three: the compiled engine under faults +
// stepdowns is indistinguishable from the interpreted one.
func TestChainCompiledMatchesInterpreted(t *testing.T) {
	for _, base := range []string{"REPTree", "MLP"} {
		t.Run(base, func(t *testing.T) {
			cfg := ChainConfig{Window: 3, BadAfter: 3}
			b := newBuilder(t)
			ref, err := b.BuildChain(base, zoo.General, []int{4, 2}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			splitC := ref.NewSibling()
			splitI := ref.NewSibling()
			dets := ref.Detectors()
			bcomp := make([]*Batcher, len(dets))
			bint := make([]*Batcher, len(dets))
			for i, d := range dets {
				bcomp[i] = d.NewBatcher()
				bint[i] = d.NewInterpretedBatcher()
				if !bcomp[i].Compiled() {
					t.Fatalf("stage %d (%s): expected compiled batcher", i, d.Name())
				}
				if bint[i].Compiled() {
					t.Fatalf("stage %d: interpreted batcher reports compiled", i)
				}
			}
			split := func(fc *FallbackChain, bs []*Batcher, vals []uint64) Verdict {
				s, x, err := fc.BeginObserve(vals)
				if err != nil {
					t.Fatal(err)
				}
				if s >= len(bs) {
					return fc.CommitScore(fc.Prior())
				}
				return fc.CommitScore(bs[s].Score(x))
			}
			for i := 0; i < 60; i++ {
				vals := faultyValues(i)
				want, err := ref.Observe(vals)
				if err != nil {
					t.Fatal(err)
				}
				gotC := split(splitC, bcomp, faultyValues(i))
				gotI := split(splitI, bint, faultyValues(i))
				if !sameVerdict(want, gotC) {
					t.Fatalf("interval %d: Observe %+v != compiled split %+v", i, want, gotC)
				}
				if !sameVerdict(want, gotI) {
					t.Fatalf("interval %d: compiled %+v != interpreted %+v", i, want, gotI)
				}
			}
			if rt, ct := len(ref.Transitions()), len(splitI.Transitions()); rt != ct {
				t.Fatalf("transition counts diverged: %d vs %d", rt, ct)
			}
			if rt := len(ref.Transitions()); rt == 0 {
				t.Fatal("fault pattern exercised no stage transitions")
			}
		})
	}
}

// TestBatcherCompiledMatchesInterpreted compares the two Batcher paths
// head-to-head per detector family on raw score/classify/batch calls.
func TestBatcherCompiledMatchesInterpreted(t *testing.T) {
	b := newBuilder(t)
	kinds := []struct {
		name    string
		variant zoo.Variant
	}{
		{"REPTree", zoo.Boosted},
		{"J48", zoo.Bagged},
		{"BayesNet", zoo.General},
		{"SGD", zoo.General},
		{"MLP", zoo.General},
	}
	for _, kind := range kinds {
		d, err := b.Build(kind.name, kind.variant, 4)
		if err != nil {
			t.Fatal(err)
		}
		comp := d.NewBatcher()
		interp := d.NewInterpretedBatcher()
		if !comp.Compiled() {
			t.Fatalf("%s: expected compiled batcher", d.Name())
		}
		xs := make([][]float64, 64)
		for i := range xs {
			row := make([]float64, 4)
			for j := range row {
				row[j] = float64(1000+37*i) + float64(j*101) - float64(i%7)*250
			}
			xs[i] = row
		}
		co := comp.ScoreBatch(xs, nil)
		io := interp.ScoreBatch(xs, nil)
		for i := range xs {
			if math.Float64bits(co[i]) != math.Float64bits(io[i]) {
				t.Fatalf("%s row %d: compiled %v != interpreted %v", d.Name(), i, co[i], io[i])
			}
			if cc, ic := comp.Classify(xs[i]), interp.Classify(xs[i]); cc != ic {
				t.Fatalf("%s row %d: classify %d != %d", d.Name(), i, cc, ic)
			}
		}
	}
}

// TestBatcherFallsBackForUnsupportedModels pins the interpreted
// fallback: a KNN detector (stored corpus, uncompilable) still scores
// through NewBatcher.
func TestBatcherFallsBackForUnsupportedModels(t *testing.T) {
	b := newBuilder(t)
	d, err := b.Build("KNN", zoo.General, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Compiled() != nil {
		t.Fatal("KNN unexpectedly compiled")
	}
	bt := d.NewBatcher()
	if bt.Compiled() {
		t.Fatal("KNN batcher claims compiled path")
	}
	if s := bt.Score([]float64{1, 2}); math.IsNaN(s) {
		t.Fatal("interpreted fallback produced NaN")
	}
}

// TestCheckpointRoundTripCompiled saves a chain through the unchanged
// gob format, reloads it, and requires the reloaded chain — which
// recompiles lazily from the decoded models — to emit bit-identical
// verdicts to the original over a faulty stream.
func TestCheckpointRoundTripCompiled(t *testing.T) {
	cfg := ChainConfig{Window: 3, BadAfter: 3}
	ref := newChain(t, cfg)
	var blob bytes.Buffer
	if err := SaveChain(&blob, ref); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadChain(bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.CompiledStages(), loaded.Stages(); got != want {
		t.Fatalf("loaded chain compiles %d/%d stages", got, want)
	}
	for i := 0; i < 60; i++ {
		want, err := ref.Observe(faultyValues(i))
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Observe(faultyValues(i))
		if err != nil {
			t.Fatal(err)
		}
		if !sameVerdict(want, got) {
			t.Fatalf("interval %d: original %+v != reloaded %+v", i, want, got)
		}
	}
}

// TestReplicatorSharesCompiledArtifacts is the compile-once guarantee:
// stamping out replicas and siblings must not recompile anything — the
// template's lowering (one Compile per stage) is the only one, and all
// replicas score concurrently through the same immutable programs
// (run under -race, this also pins that sharing is data-race free).
func TestReplicatorSharesCompiledArtifacts(t *testing.T) {
	chain := newChain(t, ChainConfig{Window: 3})
	before := compiled.CompileCount()
	rep, err := NewChainReplicator(chain)
	if err != nil {
		t.Fatal(err)
	}
	afterTemplate := compiled.CompileCount()
	if got := afterTemplate - before; got != int64(chain.Stages()) {
		t.Fatalf("replicator compiled %d programs, want one per stage (%d)", got, chain.Stages())
	}

	tmplProgs := make([]*compiled.Program, 0, chain.Stages())
	for _, d := range chain.Detectors() {
		tmplProgs = append(tmplProgs, d.Compiled())
	}

	const replicas = 4
	rows := make([][]float64, 32)
	for i := range rows {
		row := make([]float64, 4)
		for j := range row {
			row[j] = float64(1000 + 37*i + j*101)
		}
		rows[i] = row
	}
	want := chain.Detectors()[0].NewBatcher().ScoreBatch(rows, nil)

	var wg sync.WaitGroup
	for r := 0; r < replicas; r++ {
		fc, err := rep()
		if err != nil {
			t.Fatal(err)
		}
		for s, d := range fc.Detectors() {
			if d.Compiled() != tmplProgs[s] {
				t.Fatalf("replica %d stage %d does not alias the template's program", r, s)
			}
		}
		sib := fc.NewSibling()
		for s, d := range sib.Detectors() {
			if d.Compiled() != tmplProgs[s] {
				t.Fatalf("replica %d sibling stage %d does not alias the template's program", r, s)
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := fc.Detectors()[0].NewBatcher().ScoreBatch(rows, nil)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Errorf("replica diverged from template at row %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := compiled.CompileCount(); got != afterTemplate {
		t.Fatalf("replicas/siblings triggered %d extra compilations", got-afterTemplate)
	}
}

// TestChainObserveZeroAllocCompiled extends the steady-state allocation
// gate to the compiled Observe path: after the first scored interval
// (which lazily builds the stage evaluators), observing allocates
// nothing.
func TestChainObserveZeroAllocCompiled(t *testing.T) {
	chain := newChain(t, ChainConfig{Window: 5})
	if _, err := chain.Observe(liveValues(0)); err != nil {
		t.Fatal(err)
	}
	i := 1
	if n := testing.AllocsPerRun(500, func() {
		if _, err := chain.Observe(liveValues(i)); err != nil {
			t.Fatal(err)
		}
		i++
	}); n != 0 {
		t.Fatalf("compiled Observe allocates %.1f/op", n)
	}
}

// mlearnScoreStageBaseline guards against scoreStage drifting from the
// documented interpreted fallback: a chain whose models do not compile
// must still produce Observe verdicts equal to mlearn.ScoreWith.
func TestScoreStageInterpretedFallback(t *testing.T) {
	b := newBuilder(t)
	chain, err := b.BuildChain("KNN", zoo.General, []int{2}, ChainConfig{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := chain.CompiledStages(); got != 0 {
		t.Fatalf("KNN chain reports %d compiled stages", got)
	}
	sib := chain.NewSibling()
	dist := make([]float64, len(chain.dist))
	for i := 0; i < 20; i++ {
		want, err := chain.Observe(liveValues(i)[:2])
		if err != nil {
			t.Fatal(err)
		}
		s, x, err := sib.BeginObserve(liveValues(i)[:2])
		if err != nil {
			t.Fatal(err)
		}
		var got Verdict
		if s >= sib.Stages() {
			got = sib.CommitScore(sib.Prior())
		} else {
			got = sib.CommitScore(mlearn.ScoreWith(sib.Detectors()[s].Model, x, dist))
		}
		if !sameVerdict(want, got) {
			t.Fatalf("interval %d: %+v != %+v", i, want, got)
		}
	}
}
