package core

import (
	"testing"

	"repro/internal/mlearn/zoo"
)

// The steady-state verdict path must not allocate: these gates pin the
// zero-allocation contract of the throughput engine with
// testing.AllocsPerRun, so a regression (a fresh slice sneaking back
// into a Distribution call, a window that appends instead of rotating)
// fails loudly rather than showing up as GC pressure in production.

func TestMonitorObserveZeroAlloc(t *testing.T) {
	b := newBuilder(t)
	det, err := b.Build("REPTree", zoo.Bagged, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(det, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, 4)
	n := 0
	observe := func() {
		n++
		base := uint64(1000 + 37*n)
		vals[0], vals[1], vals[2], vals[3] = base, base+101, base+211, base+307
		if _, err := m.Observe(vals); err != nil {
			t.Fatal(err)
		}
	}
	observe() // warm model scratch
	if allocs := testing.AllocsPerRun(500, observe); allocs != 0 {
		t.Fatalf("Monitor.Observe allocates %.1f times per sample, want 0", allocs)
	}
}

func TestFallbackChainObserveZeroAlloc(t *testing.T) {
	b := newBuilder(t)
	chain, err := b.BuildChain("REPTree", zoo.Bagged, []int{4, 2}, ChainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, 4)
	n := 0
	observe := func() {
		n++
		base := uint64(1000 + 37*n)
		vals[0], vals[1], vals[2], vals[3] = base, base+101, base+211, base+307
		if _, err := chain.Observe(vals); err != nil {
			t.Fatal(err)
		}
	}
	observe()
	if allocs := testing.AllocsPerRun(500, observe); allocs != 0 {
		t.Fatalf("FallbackChain.Observe allocates %.1f times per sample, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		chain.ObserveLost()
	}); allocs != 0 {
		t.Fatalf("FallbackChain.ObserveLost allocates %.1f times per sample, want 0", allocs)
	}
}

func TestBatcherZeroAlloc(t *testing.T) {
	b := newBuilder(t)
	det, err := b.Build("BayesNet", zoo.Boosted, 4)
	if err != nil {
		t.Fatal(err)
	}
	batch := det.NewBatcher()
	vals := make([]uint64, 4)
	x := []float64{100, 200, 300, 400}
	score := func() {
		if _, err := batch.ScoreValues(vals); err != nil {
			t.Fatal(err)
		}
		batch.Score(x)
		batch.Classify(x)
	}
	score()
	if allocs := testing.AllocsPerRun(500, score); allocs != 0 {
		t.Fatalf("Batcher scoring allocates %.1f times per sample, want 0", allocs)
	}
}
