package core

// Sibling arenas: slab allocation for fleet-scale chain state.
//
// A fleet shard owns the run-time chain state of thousands of streams,
// and every 10 ms interval walks a swath of them — counter health,
// verdict ring, feature scratch. Individually allocated siblings
// scatter that state across the heap, so the per-interval walk is a
// pointer chase with one cache miss per stream. A SiblingArena instead
// carves every sibling's backing arrays out of large contiguous slabs,
// chunked so that growing the arena never moves state already handed
// out: streams admitted together land next to each other in memory, in
// admission (and therefore harvest) order.

// arenaChunkStreams is how many siblings one arena chunk provisions.
const arenaChunkStreams = 256

// arenaChunk is one contiguous allocation block. Slices handed to
// siblings are full-capacity sub-slices (three-index expressions), so a
// misbehaving append on one sibling can never bleed into its
// neighbour's state.
type arenaChunk struct {
	chains []FallbackChain
	health []counterHealth
	floats []float64
	bools  []bool
}

// SiblingArena allocates sibling chains of one template with all
// run-time state laid out in contiguous slabs. Build one with
// FallbackChain.NewSiblingArena; NewSibling is then a drop-in for
// FallbackChain.NewSibling with the same safety contract (no model
// evaluation, safe while another goroutine scores through the shared
// models). An arena is not safe for concurrent use; callers serialise
// NewSibling (the fleet engine admits streams under its own lock).
// Sibling state is never reclaimed before the arena itself is
// unreachable — the fleet's streams live for the engine's lifetime, so
// nothing is ever handed back.
type SiblingArena struct {
	tmpl  *FallbackChain
	chunk *arenaChunk
	used  int
}

// NewSiblingArena returns an arena producing siblings of fc.
func (fc *FallbackChain) NewSiblingArena() *SiblingArena {
	return &SiblingArena{tmpl: fc}
}

// grow provisions a fresh chunk. Old chunks keep serving the siblings
// already carved from them; only the arena's carve position moves.
func (a *SiblingArena) grow() {
	t := a.tmpl
	perFloat := len(t.ring) + len(t.xbuf) + len(t.dist)
	a.chunk = &arenaChunk{
		chains: make([]FallbackChain, arenaChunkStreams),
		health: make([]counterHealth, arenaChunkStreams*len(t.health)),
		floats: make([]float64, arenaChunkStreams*perFloat),
		bools:  make([]bool, arenaChunkStreams*len(t.bad)),
	}
	a.used = 0
}

// NewSibling carves the next sibling from the current chunk.
func (a *SiblingArena) NewSibling() *FallbackChain {
	if a.chunk == nil || a.used == arenaChunkStreams {
		a.grow()
	}
	t := a.tmpl
	c := a.chunk
	i := a.used
	a.used++

	nh, nr, nx, nd, nb := len(t.health), len(t.ring), len(t.xbuf), len(t.dist), len(t.bad)
	fo := i * (nr + nx + nd)
	fc := &c.chains[i]
	*fc = FallbackChain{
		stages:    t.stages,
		cfg:       t.cfg,
		idx:       t.idx,
		tier:      t.tier,
		health:    c.health[i*nh : (i+1)*nh : (i+1)*nh],
		ring:      c.floats[fo : fo+nr : fo+nr],
		xbuf:      c.floats[fo+nr : fo+nr+nx : fo+nr+nx],
		dist:      c.floats[fo+nr+nx : fo+nr+nx+nd : fo+nr+nx+nd],
		bad:       c.bools[i*nb : (i+1)*nb : (i+1)*nb],
		threshold: t.threshold,
		badAfter:  t.badAfter,
		goodAfter: t.goodAfter,
	}
	return fc
}
