package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/collect"
	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/mlearn/zoo"
	"repro/internal/perf"
	"repro/internal/workload"
)

var (
	testDataOnce sync.Once
	testData     *dataset.Instances
)

// testDataset collects a small corpus once for all core tests.
func testDataset(t *testing.T) *dataset.Instances {
	t.Helper()
	testDataOnce.Do(func() {
		cfg := collect.Small()
		cfg.Suite.AppsPerFamily = 4
		cfg.Intervals = 10
		res, err := collect.Collect(cfg)
		if err != nil {
			t.Fatal(err)
		}
		testData = res.Data
	})
	return testData
}

func newBuilder(t *testing.T) *Builder {
	t.Helper()
	b, err := NewBuilder(testDataset(t), 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuilderSplitIsAppLevel(t *testing.T) {
	b := newBuilder(t)
	trainApps := map[string]bool{}
	for _, g := range b.Train().Groups {
		trainApps[g] = true
	}
	for _, g := range b.Test().Groups {
		if trainApps[g] {
			t.Fatalf("app %q leaked into both splits", g)
		}
	}
	if b.Train().NumRows() == 0 || b.Test().NumRows() == 0 {
		t.Fatal("empty split")
	}
}

func TestTopEventsNested(t *testing.T) {
	b := newBuilder(t)
	e4, err := b.TopEvents(4)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := b.TopEvents(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range e2 {
		if e2[i] != e4[i] {
			t.Fatal("HPC budgets must be nested prefixes of one ranking")
		}
	}
	if _, err := b.TopEvents(0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := b.TopEvents(999); err == nil {
		t.Error("k too large should fail")
	}
}

func TestBuildAndEvaluateDetector(t *testing.T) {
	b := newBuilder(t)
	d, err := b.Build("J48", zoo.General, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.HPCs() != 4 || !d.RunTimeCapable() {
		t.Error("4-HPC detector should be run-time capable")
	}
	if !strings.Contains(d.Name(), "4HPC-J48") {
		t.Errorf("name = %q", d.Name())
	}
	res, err := b.Evaluate(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.6 {
		t.Errorf("accuracy = %.3f on the small corpus, want > 0.6", res.Accuracy)
	}
	if res.AUC < 0.5 {
		t.Errorf("AUC = %.3f, want > 0.5", res.AUC)
	}
	roc, err := b.ROC(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(roc.Points) < 2 {
		t.Error("degenerate ROC")
	}
}

func TestDetectorNames(t *testing.T) {
	b := newBuilder(t)
	boosted, err := b.Build("OneR", zoo.Boosted, 2)
	if err != nil {
		t.Fatal(err)
	}
	if boosted.Name() != "2HPC-Boosted-OneR" {
		t.Errorf("name = %q, want 2HPC-Boosted-OneR", boosted.Name())
	}
	bagged, err := b.Build("OneR", zoo.Bagged, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bagged.Name() != "2HPC-Bagging-OneR" {
		t.Errorf("name = %q, want 2HPC-Bagging-OneR", bagged.Name())
	}
}

func TestMonitorRejectsWideDetectors(t *testing.T) {
	b := newBuilder(t)
	wide, err := b.Build("J48", zoo.General, 8)
	if err != nil {
		t.Fatal(err)
	}
	if wide.RunTimeCapable() {
		t.Fatal("8-HPC detector must not be run-time capable on a 4-register PMU")
	}
	if _, err := NewMonitor(wide, 5, 0.5); err == nil {
		t.Fatal("NewMonitor must reject detectors wider than the PMU")
	}
}

func TestMonitorWatchFlagsMalware(t *testing.T) {
	b := newBuilder(t)
	det, err := b.Build("J48", zoo.General, 4)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(det, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	// Watch one malware app and one benign app from *outside* the
	// training suite seed, counting windowed flags.
	mal, _ := workload.FamilyByName("elf-spinprobe")
	ben, _ := workload.FamilyByName("mibench-kernel")
	malApp := mal.Instantiate(99, 0xFEED)
	benApp := ben.Instantiate(99, 0xFEED)

	flagRate := func(app workload.App) float64 {
		run := app.NewRun(0)
		mach := micro.NewMachine(micro.FastConfig(), run.MachineSeed())
		mon.Reset()
		verdicts, err := mon.Watch(mach, run, 20, 8000)
		if err != nil {
			t.Fatal(err)
		}
		if len(verdicts) != 20 {
			t.Fatalf("got %d verdicts", len(verdicts))
		}
		flags := 0
		for _, v := range verdicts[5:] { // skip window warm-up
			if v.Malware {
				flags++
			}
		}
		return float64(flags) / float64(len(verdicts)-5)
	}

	malRate := flagRate(malApp)
	benRate := flagRate(benApp)
	if malRate <= benRate {
		t.Errorf("malware flag rate (%.2f) should exceed benign (%.2f)", malRate, benRate)
	}
}

func TestMonitorObserveValidation(t *testing.T) {
	b := newBuilder(t)
	det, err := b.Build("OneR", zoo.General, 2)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(det, 0, 0) // defaults
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Observe([]uint64{1, 2, 3}); err == nil {
		t.Error("wrong-width sample should fail")
	}
	v, err := mon.Observe([]uint64{100, 50})
	if err != nil {
		t.Fatal(err)
	}
	if v.Interval != 0 {
		t.Error("first interval should be 0")
	}
	v2, _ := mon.Observe([]uint64{100, 50})
	if v2.Interval != 1 {
		t.Error("interval should advance")
	}
	mon.Reset()
	v3, _ := mon.Observe([]uint64{100, 50})
	if v3.Interval != 0 {
		t.Error("reset should rewind intervals")
	}
}

func TestMonitorEventsFitPMU(t *testing.T) {
	b := newBuilder(t)
	det, err := b.Build("REPTree", zoo.Boosted, perf.NumCounters)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(det, 3, 0.5)
	if err != nil {
		t.Fatalf("max-width detector should fit the PMU: %v", err)
	}
	if mon.Detector() != det {
		t.Error("Detector() accessor wrong")
	}
}

func TestBuildErrors(t *testing.T) {
	b := newBuilder(t)
	if _, err := b.Build("NotReal", zoo.General, 2); err == nil {
		t.Error("unknown classifier should fail")
	}
	if _, err := b.Build("J48", zoo.General, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewBuilder(testDataset(t), 1.5, 1); err == nil {
		t.Error("bad trainFrac should fail")
	}
}

func TestDetectionDelay(t *testing.T) {
	mk := func(bits ...int) []Verdict {
		vs := make([]Verdict, len(bits))
		for i, b := range bits {
			vs[i] = Verdict{Interval: i, Malware: b == 1}
		}
		return vs
	}
	if d := DetectionDelay(mk(0, 0, 1, 1, 1, 0), 3); d != 2 {
		t.Errorf("delay = %d, want 2", d)
	}
	if d := DetectionDelay(mk(1, 0, 1, 0, 1), 2); d != -1 {
		t.Errorf("unsustained flags: delay = %d, want -1", d)
	}
	if d := DetectionDelay(mk(1, 1), 1); d != 0 {
		t.Errorf("immediate: delay = %d, want 0", d)
	}
	if d := DetectionDelay(nil, 3); d != -1 {
		t.Errorf("empty: delay = %d, want -1", d)
	}
	// sustain <= 0 behaves as 1.
	if d := DetectionDelay(mk(0, 1), 0); d != 1 {
		t.Errorf("sustain=0: delay = %d, want 1", d)
	}
}

func TestEvasionDegradesDetection(t *testing.T) {
	// Train a detector on the standard corpus, then measure its flag
	// rate on plain vs heavily evasive malware. Evasion must reduce
	// detection — the robustness result the extension exists for.
	b := newBuilder(t)
	det, err := b.Build("J48", zoo.General, 4)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(det, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	flagRate := func(apps []workload.App) float64 {
		flagged, total := 0, 0
		for _, app := range apps {
			run := app.NewRun(0)
			mach := micro.NewMachine(micro.FastConfig(), run.MachineSeed())
			mon.Reset()
			verdicts, err := mon.Watch(mach, run, 12, 8000)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range verdicts[3:] {
				total++
				if v.Malware {
					flagged++
				}
			}
		}
		return float64(flagged) / float64(total)
	}
	plain := flagRate(workload.EvasiveSuite(0, 3, 0x77))
	evasive := flagRate(workload.EvasiveSuite(0.9, 3, 0x77))
	if evasive >= plain {
		t.Errorf("evasion should reduce detection: plain %.2f vs evasive %.2f", plain, evasive)
	}
}

func TestDetectorSaveLoadRoundTrip(t *testing.T) {
	b := newBuilder(t)
	det, err := b.Build("REPTree", zoo.Boosted, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveDetector(&buf, det); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != det.Name() {
		t.Errorf("name %q != %q after round-trip", loaded.Name(), det.Name())
	}
	if len(loaded.Events) != len(det.Events) {
		t.Fatal("events lost")
	}
	for i := range det.Events {
		if loaded.Events[i] != det.Events[i] {
			t.Fatal("event order changed")
		}
	}
	// Identical predictions on the held-out data.
	cols4 := b.ranked[:4]
	testK, _ := b.Test().Select(cols4)
	for i := range testK.X {
		if det.Classify(testK.X[i]) != loaded.Classify(testK.X[i]) {
			t.Fatal("loaded detector disagrees with the original")
		}
	}

	if err := SaveDetector(&buf, nil); err == nil {
		t.Error("nil detector should fail")
	}
	if _, err := LoadDetector(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage should fail")
	}
}

func TestCalibrateThreshold(t *testing.T) {
	b := newBuilder(t)
	det, err := b.Build("BayesNet", zoo.General, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A loose budget admits more detections than a tight one.
	loose, err := b.CalibrateThreshold(det, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := b.CalibrateThreshold(det, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if loose.FPR > 0.3+1e-9 || tight.FPR > 0.02+1e-9 {
		t.Errorf("budgets violated: loose FPR %.3f, tight FPR %.3f", loose.FPR, tight.FPR)
	}
	if loose.TPR < tight.TPR {
		t.Errorf("loose budget should not reduce TPR: %.3f vs %.3f", loose.TPR, tight.TPR)
	}
	if _, err := b.CalibrateThreshold(det, -0.1); err == nil {
		t.Error("negative budget should fail")
	}

	// The calibrated threshold must actually achieve the measured FPR
	// when applied directly to the held-out scores.
	cols4 := b.ranked[:4]
	testK, _ := b.Test().Select(cols4)
	fp, neg := 0, 0
	for i := range testK.X {
		if testK.Y[i] == 0 {
			neg++
			if det.Score(testK.X[i]) >= tight.Threshold {
				fp++
			}
		}
	}
	measured := float64(fp) / float64(neg)
	if measured > tight.FPR+1e-9 {
		t.Errorf("re-applied threshold gives FPR %.4f, calibrated %.4f", measured, tight.FPR)
	}
}
