package core

// Crash-safe detector and chain persistence for the supervised runtime.
// A CheckpointStore keeps a small rotation of checkpoint generations
// (name.ckpt is the newest, name.ckpt.1 the previous one) written
// through persist's atomic temp-file + fsync + rename path. Recovery
// walks the generations newest-first, quarantines any file that fails
// validation — a torn write from a killed process must never be loaded
// — and decodes the first good one.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/mlearn/compiled"
	"repro/internal/mlearn/persist"
	"repro/internal/mlearn/zoo"
)

// Checkpoint payload versions. Each independent payload format gets its
// own version so a store can reject payloads it cannot decode.
const (
	// ChainModelVersion versions the trained-chain checkpoint payload
	// (SaveChain/LoadChain).
	ChainModelVersion = 1
	// ChainStateVersion versions the run-time chain-state payload
	// (ChainState via gob).
	ChainStateVersion = 1
)

// ErrNoCheckpoint is returned by Recover when no usable generation
// exists — the caller should fall back to training from scratch.
var ErrNoCheckpoint = errors.New("core: no usable checkpoint")

// CheckpointStore manages the rotated generations of one named
// checkpoint inside a directory. It is safe for concurrent use.
type CheckpointStore struct {
	mu      sync.Mutex
	dir     string
	name    string
	version uint32
	keep    int // previous generations kept besides the newest
}

// NewCheckpointStore creates (if needed) dir and returns a store for
// checkpoints named name with the given payload version. One previous
// generation is kept as the fallback for a torn newest write.
func NewCheckpointStore(dir, name string, version uint32) (*CheckpointStore, error) {
	if name == "" {
		return nil, errors.New("core: checkpoint name must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating checkpoint dir: %w", err)
	}
	return &CheckpointStore{dir: dir, name: name, version: version, keep: 1}, nil
}

// Path returns the file path of generation gen (0 = newest).
func (s *CheckpointStore) Path(gen int) string {
	base := filepath.Join(s.dir, s.name+".ckpt")
	if gen == 0 {
		return base
	}
	return fmt.Sprintf("%s.%d", base, gen)
}

// Save writes a new newest generation with the payload produced by fn,
// first rotating the current newest (if any) into the .1 slot. The
// write itself is atomic, so a crash at any point leaves either the old
// rotation or the completed new one — never a torn file under a live
// generation name.
func (s *CheckpointStore) Save(fn func(io.Writer) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	newest := s.Path(0)
	if _, err := os.Stat(newest); err == nil {
		if err := os.Rename(newest, s.Path(1)); err != nil {
			return fmt.Errorf("core: rotating checkpoint: %w", err)
		}
	}
	if err := persist.WriteCheckpoint(newest, s.version, fn); err != nil {
		return fmt.Errorf("core: writing checkpoint %s: %w", s.name, err)
	}
	return nil
}

// Recover finds the newest generation that validates and decodes,
// hands its payload to decode, and reports which generation was used.
// Generations that fail validation (torn by a crashed writer, wrong
// version) or whose payload fails to decode are quarantined — renamed
// aside with a .corrupt suffix so they are never considered again — and
// recovery falls through to the next older generation. With no usable
// generation the error wraps ErrNoCheckpoint.
func (s *CheckpointStore) Recover(decode func(payload []byte) error) (gen int, quarantined []string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var lastErr error
	for g := 0; g <= s.keep; g++ {
		path := s.Path(g)
		payload, rerr := persist.ReadCheckpoint(path, s.version)
		if rerr != nil {
			if errors.Is(rerr, os.ErrNotExist) {
				continue
			}
			lastErr = rerr
			quarantined = append(quarantined, s.quarantine(path))
			continue
		}
		if derr := decode(payload); derr != nil {
			// The container validated but the payload does not decode:
			// same treatment, the file is unusable.
			lastErr = derr
			quarantined = append(quarantined, s.quarantine(path))
			continue
		}
		return g, quarantined, nil
	}
	if lastErr != nil {
		return -1, quarantined, fmt.Errorf("%w (last failure: %v)", ErrNoCheckpoint, lastErr)
	}
	return -1, quarantined, ErrNoCheckpoint
}

// quarantine moves a corrupt checkpoint aside, picking a fresh
// .corrupt-N name so successive quarantines never clobber evidence.
// The original path is returned if even the rename fails (nothing more
// can be done; the file will fail validation again next time).
func (s *CheckpointStore) quarantine(path string) string {
	for n := 0; ; n++ {
		dst := fmt.Sprintf("%s.corrupt-%d", path, n)
		if _, err := os.Stat(dst); err == nil {
			continue
		}
		if err := os.Rename(path, dst); err != nil {
			return path
		}
		return dst
	}
}

// chainHeader precedes the per-stage detectors in a chain checkpoint.
type chainHeader struct {
	Stages int
	Cfg    ChainConfig
}

// SaveChain serialises a trained fallback chain — configuration plus
// every stage's detector — so a monitoring process can reload it
// without retraining.
func SaveChain(w io.Writer, fc *FallbackChain) error {
	if fc == nil || len(fc.stages) == 0 {
		return errors.New("core: nil or empty chain")
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(chainHeader{Stages: len(fc.stages), Cfg: fc.cfg}); err != nil {
		return fmt.Errorf("core: encoding chain header: %w", err)
	}
	for i, d := range fc.stages {
		hdr := detectorHeader{BaseName: d.BaseName, Variant: int(d.Variant), Events: d.Events}
		if err := enc.Encode(hdr); err != nil {
			return fmt.Errorf("core: encoding stage %d header: %w", i, err)
		}
		if err := persist.SaveInto(enc, d.Model); err != nil {
			return fmt.Errorf("core: encoding stage %d model: %w", i, err)
		}
	}
	return nil
}

// NewChainReplicator serialises a trained chain once and returns a
// factory stamping out independent copies: same trained parameters,
// fresh model scratch. The fleet engine gives each shard its own
// replica so shard workers can score concurrently — streaming models
// reuse internal scratch buffers, which makes a single chain unsafe to
// share across goroutines.
//
// The template's stages are compiled once up front and every replica's
// detectors are seeded with the same immutable programs: gob preserves
// every trained float bit-exactly, so the template's lowering is the
// replica's, and N shards share one set of read-only compiled artifacts
// instead of compiling N times.
func NewChainReplicator(fc *FallbackChain) (func() (*FallbackChain, error), error) {
	var buf bytes.Buffer
	if err := SaveChain(&buf, fc); err != nil {
		return nil, fmt.Errorf("core: replicating chain: %w", err)
	}
	blob := buf.Bytes()
	progs := make([]*compiled.Program, len(fc.stages))
	qprogs := make([]*compiled.QuantProgram, len(fc.stages))
	for i, d := range fc.stages {
		progs[i] = d.Compiled()
		// Propagate quantized artifacts only if the template built them
		// (peek, don't lower): a compiled-tier fleet should not pay for
		// quantization it will never use.
		qprogs[i] = d.quantizedCached()
	}
	tier := fc.tier
	return func() (*FallbackChain, error) {
		replica, err := LoadChain(bytes.NewReader(blob))
		if err != nil {
			return nil, err
		}
		replica.tier = tier
		for i, d := range replica.stages {
			d.setCompiled(progs[i])
			if qprogs[i] != nil {
				d.setQuantized(qprogs[i])
			}
		}
		return replica, nil
	}, nil
}

// LoadChain reads a chain previously written by SaveChain and
// revalidates it through NewFallbackChain (stage shrinking, event
// subsets, PMU fit).
func LoadChain(r io.Reader) (*FallbackChain, error) {
	dec := gob.NewDecoder(r)
	var hdr chainHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("core: decoding chain header: %w", err)
	}
	if hdr.Stages <= 0 || hdr.Stages > 16 {
		return nil, fmt.Errorf("core: chain checkpoint declares %d stages", hdr.Stages)
	}
	stages := make([]*Detector, hdr.Stages)
	for i := range stages {
		var dh detectorHeader
		if err := dec.Decode(&dh); err != nil {
			return nil, fmt.Errorf("core: decoding stage %d header: %w", i, err)
		}
		for _, ev := range dh.Events {
			if !ev.Valid() {
				return nil, fmt.Errorf("core: stage %d references unknown event %d", i, ev)
			}
		}
		model, err := persist.LoadFrom(dec)
		if err != nil {
			return nil, fmt.Errorf("core: decoding stage %d model: %w", i, err)
		}
		stages[i] = &Detector{
			BaseName: dh.BaseName,
			Variant:  zoo.Variant(dh.Variant),
			Events:   dh.Events,
			Model:    model,
		}
	}
	return NewFallbackChain(stages, hdr.Cfg)
}
