package micro

// RNG is a small, fast, deterministic pseudo-random number generator
// (SplitMix64 core with an xorshift* output stage). The simulator never
// uses math/rand so that identical seeds produce identical event streams
// across Go releases, which the dataset-collection and test layers rely
// on for reproducibility.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to
// a fixed non-zero constant so the zero value is still usable.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	r.state = seed
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("micro: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns an approximately standard-normal value using the sum of
// twelve uniforms (Irwin–Hall), which is plenty for behavioural jitter
// and avoids any dependence on math.Log/Sin rounding.
func (r *RNG) Norm() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6.0
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Fork derives an independent generator from the current one. Streams
// produced by the parent and the fork are statistically independent,
// letting one logical seed fan out to per-component generators.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}
