package micro

import (
	"testing"
	"testing/quick"
)

// TestPropertyCacheHitAfterAccess: immediately re-accessing any address
// always hits (the line was just filled or touched).
func TestPropertyCacheHitAfterAccess(t *testing.T) {
	f := func(addrs []uint64) bool {
		c := NewCache(1024, 64, 2)
		for _, a := range addrs {
			c.Access(a)
			if !c.Probe(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCacheMissesBounded: misses never exceed accesses, and a
// working set within capacity eventually stops missing.
func TestPropertyCacheMissesBounded(t *testing.T) {
	f := func(seed uint64, setSize uint8) bool {
		c := NewCache(4096, 64, 4) // 16 sets x 4 ways
		n := int(setSize%16) + 1   // <= 16 consecutive lines: one per set
		rng := NewRNG(seed | 1)
		base := uint64(rng.Intn(1<<16)) * 4096 // random page-aligned base
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = base + uint64(i)*64 // consecutive lines -> distinct sets
		}
		for round := 0; round < 8; round++ {
			for _, a := range addrs {
				c.Access(a)
			}
		}
		if c.Misses > c.Accesses {
			return false
		}
		// After warm-up, a final sweep over a small resident set should
		// hit: count misses of the last round only.
		before := c.Misses
		for _, a := range addrs {
			c.Access(a)
		}
		return c.Misses == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTLBHitAfterAccess mirrors the cache property for pages.
func TestPropertyTLBHitAfterAccess(t *testing.T) {
	f := func(addrs []uint64) bool {
		tlb := NewTLB(8, 4096)
		for _, a := range addrs {
			tlb.Access(a)
			miss := tlb.Misses
			tlb.Access(a) // same page immediately after: must hit
			if tlb.Misses != miss {
				return false
			}
		}
		return tlb.Misses <= tlb.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMachineCounterInvariants: for arbitrary (valid) stream
// parameters, structural counter relations always hold.
func TestPropertyMachineCounterInvariants(t *testing.T) {
	f := func(seed uint64, mixPick, sizePick uint8) bool {
		load := 0.1 + float64(mixPick%5)*0.05
		branch := 0.05 + float64(mixPick%7)*0.03
		p := StreamParams{
			LoadFrac: load, StoreFrac: 0.1, BranchFrac: branch,
			CodeBytes: 4096 << (sizePick % 4), HotCodeBytes: 1024,
			HotCodeFrac: 0.8,
			DataBytes:   32768 << (sizePick % 4), HotDataBytes: 8192,
			HotDataFrac: 0.8, StrideFrac: 0.4,
			TakenFrac: 0.6, BranchBias: 0.9,
			RemoteFrac: 0.1, BaseIPC: 2, UopsPerInstr: 1.2,
		}
		m := NewMachine(FastConfig(), seed|1)
		m.Run(&p, 5000)
		c := m.Counters()
		checks := []bool{
			c[EvInstructions] == 5000,
			c[EvL1DcacheLoadMisses] <= c[EvL1DcacheLoads],
			c[EvL1DcacheStoreMisses] <= c[EvL1DcacheStores],
			c[EvL1IcacheLoadMisses] <= c[EvL1IcacheLoads],
			c[EvDTLBLoadMisses] <= c[EvDTLBLoads],
			c[EvDTLBStoreMisses] <= c[EvDTLBStores],
			c[EvITLBLoadMisses] <= c[EvITLBLoads],
			c[EvBranchMisses] <= c[EvBranchInstructions],
			c[EvBranchLoadMisses] <= c[EvBranchLoads],
			c[EvLLCLoadMisses] <= c[EvLLCLoads],
			c[EvLLCStoreMisses] <= c[EvLLCStores],
			c[EvCacheMisses] <= c[EvCacheReferences],
			c[EvMemLoads] == c[EvDTLBLoads],
			c[EvMemStores] == c[EvDTLBStores],
			c[EvCPUCycles] >= c[EvStalledCyclesFrontend],
			c[EvBusCycles] <= c[EvCPUCycles],
		}
		for _, ok := range checks {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
