package micro

// StreamParams describe the synthetic instruction stream one application
// phase generates. The workload package derives these from higher-level
// behaviour profiles; the machine executes them. All fractions are in
// [0,1] and the instruction mix fractions must sum to at most 1 (the
// remainder is plain ALU work).
type StreamParams struct {
	// Instruction mix.
	LoadFrac   float64 // fraction of instructions that are loads
	StoreFrac  float64 // fraction that are stores
	BranchFrac float64 // fraction that are branches

	// Code behaviour.
	CodeBytes    int     // total code footprint in bytes
	HotCodeBytes int     // hot loop body size in bytes
	HotCodeFrac  float64 // probability a branch target stays in the hot region

	// Data behaviour.
	DataBytes    int     // total data footprint in bytes
	HotDataBytes int     // hot working-set size in bytes
	HotDataFrac  float64 // probability an access goes to the hot set
	StrideFrac   float64 // probability an access is sequential (next element)

	// Branch behaviour.
	TakenFrac  float64 // fraction of branches that are taken
	BranchBias float64 // per-static-branch outcome bias (0.5 random .. 1 fixed)

	// Memory system behaviour.
	RemoteFrac float64 // fraction of memory placed on the remote NUMA node

	// Timing.
	BaseIPC      float64 // issue rate in uops/cycle absent stalls
	UopsPerInstr float64 // micro-op expansion factor
}

// Validate reports a descriptive panic when parameters are out of range;
// callers construct params programmatically, so a malformed value is a
// programming error rather than user input.
func (p *StreamParams) Validate() {
	sum := p.LoadFrac + p.StoreFrac + p.BranchFrac
	switch {
	case p.LoadFrac < 0 || p.StoreFrac < 0 || p.BranchFrac < 0 || sum > 1.0001:
		panic("micro: instruction mix fractions invalid")
	case p.CodeBytes <= 0 || p.HotCodeBytes <= 0 || p.HotCodeBytes > p.CodeBytes:
		panic("micro: code footprint invalid")
	case p.DataBytes <= 0 || p.HotDataBytes <= 0 || p.HotDataBytes > p.DataBytes:
		panic("micro: data footprint invalid")
	case p.TakenFrac < 0 || p.TakenFrac > 1 || p.BranchBias < 0.5 || p.BranchBias > 1:
		panic("micro: branch behaviour invalid")
	case p.RemoteFrac < 0 || p.RemoteFrac > 1:
		panic("micro: remote fraction invalid")
	case p.BaseIPC <= 0 || p.UopsPerInstr <= 0:
		panic("micro: timing parameters invalid")
	}
}

// MachineConfig fixes the simulated micro-architecture geometry. The
// default mirrors a Nehalem-class core (Xeon X5550): 32 KiB 8-way L1
// caches, an 8 MiB 16-way LLC standing in for L2+L3, 64-entry TLBs and a
// 4K-entry gshare predictor with a 1K-entry BTB.
type MachineConfig struct {
	L1ISize, L1IWays int
	L1DSize, L1DWays int
	LLCSize, LLCWays int
	LineBytes        int
	ITLBEntries      int
	DTLBEntries      int
	PageBytes        int
	HistoryBits      uint
	BTBEntries       int
}

// DefaultConfig returns the Nehalem-class geometry described above.
func DefaultConfig() MachineConfig {
	return MachineConfig{
		L1ISize: 32 << 10, L1IWays: 8,
		L1DSize: 32 << 10, L1DWays: 8,
		LLCSize: 8 << 20, LLCWays: 16,
		LineBytes:   64,
		ITLBEntries: 64,
		DTLBEntries: 64,
		PageBytes:   4096,
		HistoryBits: 12,
		BTBEntries:  1024,
	}
}

// FastConfig returns a scaled-down geometry for unit tests: the same
// structure with smaller capacities so locality effects appear within a
// few thousand simulated instructions.
func FastConfig() MachineConfig {
	return MachineConfig{
		L1ISize: 4 << 10, L1IWays: 4,
		L1DSize: 4 << 10, L1DWays: 4,
		LLCSize: 64 << 10, LLCWays: 8,
		LineBytes:   64,
		ITLBEntries: 16,
		DTLBEntries: 16,
		PageBytes:   4096,
		HistoryBits: 10,
		BTBEntries:  256,
	}
}
