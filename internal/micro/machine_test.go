package micro

import (
	"testing"
	"testing/quick"
)

// testParams returns a plausible benign-ish stream for machine tests.
func testParams() StreamParams {
	return StreamParams{
		LoadFrac: 0.25, StoreFrac: 0.10, BranchFrac: 0.15,
		CodeBytes: 32 << 10, HotCodeBytes: 2 << 10, HotCodeFrac: 0.9,
		DataBytes: 256 << 10, HotDataBytes: 8 << 10, HotDataFrac: 0.9,
		StrideFrac: 0.5, TakenFrac: 0.6, BranchBias: 0.95,
		RemoteFrac: 0.05, BaseIPC: 2.0, UopsPerInstr: 1.2,
	}
}

func TestMachineDeterminism(t *testing.T) {
	p := testParams()
	m1 := NewMachine(FastConfig(), 42)
	m2 := NewMachine(FastConfig(), 42)
	m1.Run(&p, 5000)
	m2.Run(&p, 5000)
	if m1.Counters() != m2.Counters() {
		t.Fatal("identical seeds must produce identical counter blocks")
	}
	m3 := NewMachine(FastConfig(), 43)
	m3.Run(&p, 5000)
	if m1.Counters() == m3.Counters() {
		t.Fatal("different seeds should produce different counter blocks")
	}
}

func TestMachineResetReproduces(t *testing.T) {
	p := testParams()
	m := NewMachine(FastConfig(), 42)
	m.Run(&p, 3000)
	first := m.Counters()
	m.Reset(42)
	m.Run(&p, 3000)
	if m.Counters() != first {
		t.Fatal("Reset with the same seed must reproduce the identical run")
	}
}

func TestMachineBasicInvariants(t *testing.T) {
	p := testParams()
	m := NewMachine(FastConfig(), 1)
	n := 20000
	m.Run(&p, n)
	c := m.Counters()

	if got := c[EvInstructions]; got != uint64(n) {
		t.Errorf("instructions = %d, want %d", got, n)
	}
	if c[EvCPUCycles] < c[EvInstructions]/4 {
		t.Error("cycle count implausibly low")
	}
	if c[EvL1DcacheLoadMisses] > c[EvL1DcacheLoads] {
		t.Error("L1D load misses exceed loads")
	}
	if c[EvL1IcacheLoadMisses] > c[EvL1IcacheLoads] {
		t.Error("L1I misses exceed accesses")
	}
	if c[EvDTLBLoadMisses] > c[EvDTLBLoads] {
		t.Error("dTLB load misses exceed accesses")
	}
	if c[EvBranchMisses] > c[EvBranchInstructions] {
		t.Error("branch misses exceed branches")
	}
	if c[EvLLCLoadMisses] > c[EvLLCLoads] {
		t.Error("LLC load misses exceed LLC loads")
	}
	if c[EvCacheMisses] > c[EvCacheReferences] {
		t.Error("cache misses exceed cache references")
	}
	// Mix fractions should be roughly honoured.
	loads := float64(c[EvMemLoads]) / float64(n)
	if loads < 0.20 || loads > 0.30 {
		t.Errorf("load fraction = %.3f, want approx 0.25", loads)
	}
	branches := float64(c[EvBranchInstructions]) / float64(n)
	if branches < 0.10 || branches > 0.20 {
		t.Errorf("branch fraction = %.3f, want approx 0.15", branches)
	}
}

func TestMachineWorkingSetSensitivity(t *testing.T) {
	// A working set far beyond L1D must miss much more than one that
	// fits. FastConfig L1D is 4 KiB.
	small := testParams()
	small.HotDataBytes = 1 << 10
	small.HotDataFrac = 1.0
	small.StrideFrac = 0

	big := small
	big.HotDataBytes = 128 << 10
	big.DataBytes = 256 << 10

	ms := NewMachine(FastConfig(), 9)
	ms.Run(&small, 30000)
	mb := NewMachine(FastConfig(), 9)
	mb.Run(&big, 30000)

	smallRate := missRate(ms.Counters())
	bigRate := missRate(mb.Counters())
	if bigRate < 4*smallRate {
		t.Errorf("big working set miss rate %.4f not clearly above small %.4f", bigRate, smallRate)
	}
}

func missRate(c CounterBlock) float64 {
	if c[EvL1DcacheLoads] == 0 {
		return 0
	}
	return float64(c[EvL1DcacheLoadMisses]) / float64(c[EvL1DcacheLoads])
}

func TestMachineBranchBiasSensitivity(t *testing.T) {
	predictable := testParams()
	predictable.BranchBias = 1.0
	chaotic := testParams()
	chaotic.BranchBias = 0.5

	mp := NewMachine(FastConfig(), 3)
	mp.Run(&predictable, 30000)
	mc := NewMachine(FastConfig(), 3)
	mc.Run(&chaotic, 30000)

	rp := float64(mp.Counters()[EvBranchMisses]) / float64(mp.Counters()[EvBranchInstructions])
	rc := float64(mc.Counters()[EvBranchMisses]) / float64(mc.Counters()[EvBranchInstructions])
	if rc < rp+0.1 {
		t.Errorf("chaotic branches (%.3f) should mispredict far more than biased (%.3f)", rc, rp)
	}
}

func TestMachineRemoteTraffic(t *testing.T) {
	local := testParams()
	local.RemoteFrac = 0
	remote := testParams()
	remote.RemoteFrac = 0.8
	remote.HotDataFrac = 0 // force span accesses that miss

	ml := NewMachine(FastConfig(), 5)
	ml.Run(&local, 30000)
	mr := NewMachine(FastConfig(), 5)
	mr.Run(&remote, 30000)

	if ml.Counters()[EvNodeLoadMisses] != 0 {
		// Code fills are always local, so local runs must have zero
		// remote load traffic.
		t.Errorf("local run produced %d remote loads", ml.Counters()[EvNodeLoadMisses])
	}
	if mr.Counters()[EvNodeLoadMisses] == 0 {
		t.Error("remote-heavy run produced no remote load traffic")
	}
}

func TestMachineValidateRejectsBadParams(t *testing.T) {
	bad := testParams()
	bad.LoadFrac = 0.9
	bad.StoreFrac = 0.9
	m := NewMachine(FastConfig(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Run with invalid mix should panic")
		}
	}()
	m.Run(&bad, 10)
}

func TestEventNamesRoundTrip(t *testing.T) {
	if NumEvents != 44 {
		t.Fatalf("NumEvents = %d, want 44 (the paper's perf event count)", NumEvents)
	}
	seen := map[string]bool{}
	for _, ev := range AllEvents() {
		name := ev.String()
		if name == "" || name == "unknown_event" {
			t.Fatalf("event %d has no name", ev)
		}
		if seen[name] {
			t.Fatalf("duplicate event name %q", name)
		}
		seen[name] = true
		back, ok := EventByName(name)
		if !ok || back != ev {
			t.Fatalf("EventByName(%q) = %v, %v", name, back, ok)
		}
	}
	if _, ok := EventByName("bogus"); ok {
		t.Error("EventByName should reject unknown names")
	}
	if EventID(-1).Valid() || EventID(NumEvents).Valid() {
		t.Error("Valid() should reject out-of-range IDs")
	}
}

func TestCounterBlockArithmetic(t *testing.T) {
	var a, b CounterBlock
	a[EvInstructions] = 100
	b[EvInstructions] = 40
	b[EvCPUCycles] = 7
	a.Add(&b)
	if a[EvInstructions] != 140 || a[EvCPUCycles] != 7 {
		t.Error("Add did not accumulate")
	}
	d := a.Sub(&b)
	if d[EvInstructions] != 100 || d[EvCPUCycles] != 0 {
		t.Error("Sub did not compute delta")
	}
	a.Reset()
	if a != (CounterBlock{}) {
		t.Error("Reset did not zero")
	}
}

func TestRNGProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r1, r2 := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 16; i++ {
			if r1.Uint64() != r2.Uint64() {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}

	// Float64 in [0,1); Intn in [0,n).
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %v", v)
		}
	}

	// Norm should be roughly centred with unit-ish variance.
	sum, sumSq := 0.0, 0.0
	n := 20000
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Errorf("Norm mean = %.4f, want approx 0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("Norm variance = %.4f, want approx 1", variance)
	}

	// Fork must diverge from parent.
	p := NewRNG(5)
	f := p.Fork()
	same := 0
	for i := 0; i < 10; i++ {
		if p.Uint64() == f.Uint64() {
			same++
		}
	}
	if same == 10 {
		t.Error("forked stream identical to parent")
	}
}
