// Package micro implements a trace-driven micro-architecture simulator.
//
// The simulator stands in for the Intel Xeon X5550 (Nehalem) testbed used
// by the paper: a synthetic instruction stream, generated from a workload
// behaviour profile, is executed against models of the cache hierarchy
// (L1I/L1D/LLC), the instruction and data TLBs, a two-level branch
// predictor, and a two-node NUMA memory system. Execution increments the
// 44 hardware event counters that the perf layer (internal/perf) exposes
// through a 4-register PMU, exactly mirroring the event vocabulary the
// paper extracts with the Linux perf tool.
package micro

// EventID identifies one of the hardware events the simulated machine
// counts. The numbering is stable; serialized datasets index events by
// this value.
type EventID int

// The full 44-event vocabulary. The first sixteen entries are the
// paper's Table 1 features (the sixteen most important counters after
// feature reduction); the remainder are the additional perf "generalized
// hardware" and cache events captured during the 11-batch collection.
const (
	EvBranchInstructions EventID = iota // retired branch instructions
	EvBranchLoads                       // branch-unit load operations (BPU lookups)
	EvITLBLoadMisses                    // instruction TLB misses
	EvDTLBLoadMisses                    // data TLB load misses
	EvDTLBStoreMisses                   // data TLB store misses
	EvL1DcacheStores                    // L1 data cache store accesses
	EvCacheMisses                       // last-level cache misses (perf cache-misses)
	EvNodeLoads                         // local NUMA node load accesses
	EvDTLBStores                        // data TLB store accesses
	EvITLBLoads                         // instruction TLB load accesses
	EvL1IcacheLoadMisses                // L1 instruction cache misses
	EvBranchLoadMisses                  // BPU load misses
	EvBranchMisses                      // mispredicted branches
	EvLLCStoreMisses                    // LLC store misses
	EvNodeStores                        // local NUMA node store accesses
	EvL1DcacheLoadMisses                // L1 data cache load misses

	EvInstructions          // retired instructions
	EvCPUCycles             // core clock cycles
	EvRefCycles             // reference (unhalted TSC) cycles
	EvBusCycles             // bus cycles
	EvCacheReferences       // LLC references (perf cache-references)
	EvL1DcacheLoads         // L1 data cache load accesses
	EvL1DcacheStoreMisses   // L1 data cache store misses
	EvL1DcachePrefetches    // L1 data prefetcher requests
	EvL1DcachePrefMisses    // L1 data prefetch misses
	EvL1IcacheLoads         // L1 instruction cache accesses
	EvLLCLoads              // LLC load accesses
	EvLLCLoadMisses         // LLC load misses
	EvLLCStores             // LLC store accesses
	EvLLCPrefetches         // LLC prefetch requests
	EvLLCPrefMisses         // LLC prefetch misses
	EvDTLBLoads             // data TLB load accesses
	EvNodeLoadMisses        // remote-node load accesses
	EvNodeStoreMisses       // remote-node store accesses
	EvNodePrefetches        // NUMA node prefetches
	EvNodePrefMisses        // NUMA node prefetch misses
	EvStalledCyclesFrontend // cycles with no uops issued (front-end stall)
	EvStalledCyclesBackend  // cycles with no uops executed (back-end stall)
	EvMemLoads              // retired memory load uops
	EvMemStores             // retired memory store uops
	EvBranchStores          // BTB update stores
	EvBranchStoreMisses     // BTB update misses
	EvUopsIssued            // micro-ops issued
	EvUopsRetired           // micro-ops retired

	NumEvents // total number of hardware events (44)
)

var eventNames = [NumEvents]string{
	EvBranchInstructions:    "branch_instructions",
	EvBranchLoads:           "branch_loads",
	EvITLBLoadMisses:        "iTLB_load_misses",
	EvDTLBLoadMisses:        "dTLB_load_misses",
	EvDTLBStoreMisses:       "dTLB_store_misses",
	EvL1DcacheStores:        "L1_dcache_stores",
	EvCacheMisses:           "cache_misses",
	EvNodeLoads:             "node_loads",
	EvDTLBStores:            "dTLB_stores",
	EvITLBLoads:             "iTLB_loads",
	EvL1IcacheLoadMisses:    "L1_icache_load_misses",
	EvBranchLoadMisses:      "branch_load_misses",
	EvBranchMisses:          "branch_misses",
	EvLLCStoreMisses:        "LLC_store_misses",
	EvNodeStores:            "node_stores",
	EvL1DcacheLoadMisses:    "L1_dcache_load_misses",
	EvInstructions:          "instructions",
	EvCPUCycles:             "cpu_cycles",
	EvRefCycles:             "ref_cycles",
	EvBusCycles:             "bus_cycles",
	EvCacheReferences:       "cache_references",
	EvL1DcacheLoads:         "L1_dcache_loads",
	EvL1DcacheStoreMisses:   "L1_dcache_store_misses",
	EvL1DcachePrefetches:    "L1_dcache_prefetches",
	EvL1DcachePrefMisses:    "L1_dcache_prefetch_misses",
	EvL1IcacheLoads:         "L1_icache_loads",
	EvLLCLoads:              "LLC_loads",
	EvLLCLoadMisses:         "LLC_load_misses",
	EvLLCStores:             "LLC_stores",
	EvLLCPrefetches:         "LLC_prefetches",
	EvLLCPrefMisses:         "LLC_prefetch_misses",
	EvDTLBLoads:             "dTLB_loads",
	EvNodeLoadMisses:        "node_load_misses",
	EvNodeStoreMisses:       "node_store_misses",
	EvNodePrefetches:        "node_prefetches",
	EvNodePrefMisses:        "node_prefetch_misses",
	EvStalledCyclesFrontend: "stalled_cycles_frontend",
	EvStalledCyclesBackend:  "stalled_cycles_backend",
	EvMemLoads:              "mem_loads",
	EvMemStores:             "mem_stores",
	EvBranchStores:          "branch_stores",
	EvBranchStoreMisses:     "branch_store_misses",
	EvUopsIssued:            "uops_issued",
	EvUopsRetired:           "uops_retired",
}

// String returns the perf-style name of the event.
func (e EventID) String() string {
	if e < 0 || e >= NumEvents {
		return "unknown_event"
	}
	return eventNames[e]
}

// Valid reports whether e is one of the defined hardware events.
func (e EventID) Valid() bool { return e >= 0 && e < NumEvents }

// EventByName returns the EventID with the given perf-style name.
func EventByName(name string) (EventID, bool) {
	for i := EventID(0); i < NumEvents; i++ {
		if eventNames[i] == name {
			return i, true
		}
	}
	return -1, false
}

// AllEvents returns the full event vocabulary in ID order.
func AllEvents() []EventID {
	evs := make([]EventID, NumEvents)
	for i := range evs {
		evs[i] = EventID(i)
	}
	return evs
}

// CounterBlock holds one count per hardware event. It is the raw
// substrate the PMU samples from; the perf layer restricts visibility to
// the four counter registers programmed for the current batch.
type CounterBlock [NumEvents]uint64

// Add accumulates other into c.
func (c *CounterBlock) Add(other *CounterBlock) {
	for i := range c {
		c[i] += other[i]
	}
}

// Sub returns c - other element-wise (counts since a snapshot).
func (c *CounterBlock) Sub(other *CounterBlock) CounterBlock {
	var d CounterBlock
	for i := range c {
		d[i] = c[i] - other[i]
	}
	return d
}

// Reset zeroes every counter.
func (c *CounterBlock) Reset() {
	for i := range c {
		c[i] = 0
	}
}
