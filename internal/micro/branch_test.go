package micro

import "testing"

func TestBranchPredictorLearnsBias(t *testing.T) {
	bp := NewBranchPredictor(10, 256)
	// Always-taken branch at one site: after warm-up the predictor
	// should be nearly perfect.
	for i := 0; i < 64; i++ {
		bp.Predict(0x400000, true)
	}
	before := bp.Mispredicts
	for i := 0; i < 1000; i++ {
		bp.Predict(0x400000, true)
	}
	if d := bp.Mispredicts - before; d != 0 {
		t.Errorf("steady always-taken branch mispredicted %d times after warm-up", d)
	}
}

func TestBranchPredictorRandomIsHard(t *testing.T) {
	bp := NewBranchPredictor(10, 256)
	rng := NewRNG(7)
	n := 20000
	for i := 0; i < n; i++ {
		bp.Predict(0x400000, rng.Bernoulli(0.5))
	}
	rate := float64(bp.Mispredicts) / float64(n)
	if rate < 0.35 {
		t.Errorf("random branch misprediction rate = %.3f, want >= 0.35", rate)
	}
}

func TestBranchPredictorBiasedSites(t *testing.T) {
	// Many sites, each with a fixed direction: a bimodal table learns
	// each after two visits, so steady-state accuracy is near perfect.
	bp := NewBranchPredictor(10, 1024)
	sites := 64
	dir := func(s int) bool { return s%3 != 0 }
	for round := 0; round < 4; round++ {
		for s := 0; s < sites; s++ {
			bp.Predict(uint64(0x1000+s*4), dir(s))
		}
	}
	before := bp.Mispredicts
	for round := 0; round < 50; round++ {
		for s := 0; s < sites; s++ {
			bp.Predict(uint64(0x1000+s*4), dir(s))
		}
	}
	rate := float64(bp.Mispredicts-before) / float64(50*sites)
	if rate > 0.01 {
		t.Errorf("fixed-direction sites misprediction rate = %.3f, want <= 0.01", rate)
	}
}

func TestBranchPredictorAlternatingIsHardForBimodal(t *testing.T) {
	// A strictly alternating branch defeats a 2-bit bimodal counter;
	// this pins down the modelled predictor class.
	bp := NewBranchPredictor(10, 256)
	for i := 0; i < 2000; i++ {
		bp.Predict(0x400000, i%2 == 0)
	}
	rate := float64(bp.Mispredicts) / 2000
	if rate < 0.4 {
		t.Errorf("alternating pattern misprediction rate = %.3f, want >= 0.4 for bimodal", rate)
	}
}

func TestBranchBTBCounting(t *testing.T) {
	bp := NewBranchPredictor(10, 16)
	// First taken branch at a fresh site: BTB lookup misses, allocates.
	bp.Predict(0x1000, true)
	if bp.Lookups != 1 || bp.BTBMisses != 1 || bp.BTBAllocs != 1 {
		t.Fatalf("fresh taken branch: lookups=%d misses=%d allocs=%d, want 1,1,1",
			bp.Lookups, bp.BTBMisses, bp.BTBAllocs)
	}
	// Repeat: BTB hit, no new alloc.
	bp.Predict(0x1000, true)
	if bp.BTBMisses != 1 || bp.BTBAllocs != 1 {
		t.Fatalf("repeat branch should hit BTB: misses=%d allocs=%d", bp.BTBMisses, bp.BTBAllocs)
	}
	// Not-taken branch at a new site misses but does not allocate.
	bp.Predict(0x2000, false)
	if bp.BTBMisses != 2 || bp.BTBAllocs != 1 {
		t.Fatalf("not-taken miss should not allocate: misses=%d allocs=%d", bp.BTBMisses, bp.BTBAllocs)
	}
}

func TestBranchBTBConflictEviction(t *testing.T) {
	bp := NewBranchPredictor(10, 4)
	// Five distinct taken sites in a 4-entry direct-mapped BTB must
	// displace at least one live entry.
	for pc := uint64(0); pc < 5; pc++ {
		bp.Predict(0x1000+(pc<<2), true)
	}
	if bp.BTBAllocMiss == 0 {
		t.Error("expected at least one displaced BTB entry")
	}
}

func TestBranchFlush(t *testing.T) {
	bp := NewBranchPredictor(8, 16)
	for i := 0; i < 100; i++ {
		bp.Predict(uint64(0x1000+i*4), i%3 == 0)
	}
	bp.Flush()
	if bp.Lookups != 0 || bp.Mispredicts != 0 || bp.BranchesSeen != 0 {
		t.Error("flush should clear all statistics")
	}
}

func TestBranchConstructorValidation(t *testing.T) {
	for _, tc := range []struct {
		bits uint
		btb  int
	}{{0, 16}, {30, 16}, {10, 0}, {10, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBranchPredictor(%d,%d) did not panic", tc.bits, tc.btb)
				}
			}()
			NewBranchPredictor(tc.bits, tc.btb)
		}()
	}
}
