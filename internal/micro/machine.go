package micro

// Machine is the simulated core. It executes synthetic instruction
// streams described by StreamParams against the cache/TLB/predictor
// models and accumulates the 44 hardware event counters.
//
// Address map: code lives at codeBase, local data at dataBase, and
// remote-node data at dataBase with the remote bit set. The NUMA model
// classifies memory traffic by that bit.
type Machine struct {
	cfg MachineConfig

	icache *Cache
	dcache *Cache
	llc    *Cache
	itlb   *TLB
	dtlb   *TLB
	bp     *BranchPredictor

	counters CounterBlock
	rng      *RNG
	salt     uint64 // per-run salt for static branch directions

	pc        uint64 // current fetch address
	lastFetch uint64 // last fetched icache line (fetch block dedup)
	lastLoad  uint64 // previous load address (stride model)
	lastStore uint64 // previous store address

	cycleCarry float64 // fractional cycles carried between instructions
	frontCarry float64 // fractional front-end stall cycles
	backCarry  float64 // fractional back-end stall cycles
}

const (
	codeBase  = 0x0000_0040_0000
	dataBase  = 0x0000_2000_0000
	remoteBit = 1 << 40 // addresses with this bit live on the remote node
)

// Miss/redirect penalties in core cycles, Nehalem-flavoured raw
// latencies. An out-of-order core hides most of this latency behind
// independent work (memory-level parallelism, speculative issue), which
// stallOverlap models: only that fraction of the raw penalty surfaces
// as lost cycles. Without it, stall-heavy applications would retire an
// order of magnitude fewer instructions per fixed-time interval than
// lean ones — far beyond what real hardware shows — and every
// rate-based HPC signal would drown in instruction-count dispersion.
const (
	penaltyL1I      = 8.0
	penaltyL1D      = 10.0
	penaltyLLC      = 42.0
	penaltyLocalMem = 140.0
	penaltyRemote   = 220.0
	penaltyTLB      = 26.0
	penaltyBranch   = 16.0
	penaltyBTB      = 6.0
	stallOverlap    = 0.12 // fraction of raw stall cycles actually exposed
	storeOverlap    = 0.25 // stores hide most of their miss latency in the buffer
)

// NewMachine builds a machine with the given geometry and a deterministic
// RNG seed. Two machines built with equal config and seed produce
// identical event streams for identical Run calls.
func NewMachine(cfg MachineConfig, seed uint64) *Machine {
	m := &Machine{
		cfg:    cfg,
		icache: NewCache(cfg.L1ISize, cfg.LineBytes, cfg.L1IWays),
		dcache: NewCache(cfg.L1DSize, cfg.LineBytes, cfg.L1DWays),
		llc:    NewCache(cfg.LLCSize, cfg.LineBytes, cfg.LLCWays),
		itlb:   NewTLB(cfg.ITLBEntries, cfg.PageBytes),
		dtlb:   NewTLB(cfg.DTLBEntries, cfg.PageBytes),
		bp:     NewBranchPredictor(cfg.HistoryBits, cfg.BTBEntries),
		rng:    NewRNG(seed),
		salt:   seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		pc:     codeBase,
	}
	return m
}

// siteHash maps a branch site to a deterministic value in [0,1) used to
// assign the site's natural direction.
func siteHash(site, salt uint64) float64 {
	z := site ^ salt
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Counters returns a copy of the accumulated event counts.
func (m *Machine) Counters() CounterBlock { return m.counters }

// Reset flushes all micro-architectural state and zeroes the counters,
// modelling a freshly created execution environment.
func (m *Machine) Reset(seed uint64) {
	m.icache.Flush()
	m.dcache.Flush()
	m.llc.Flush()
	m.itlb.Flush()
	m.dtlb.Flush()
	m.bp.Flush()
	m.counters.Reset()
	m.rng.Seed(seed)
	m.salt = seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	m.pc = codeBase
	m.lastFetch = 0
	m.lastLoad = 0
	m.lastStore = 0
	m.cycleCarry = 0
	m.frontCarry = 0
	m.backCarry = 0
}

// Run executes n synthetic instructions drawn from p, accumulating event
// counters. It may be called repeatedly; micro-architectural state
// (cache contents, history) persists across calls within one Reset
// epoch, which is what gives consecutive sampling intervals of the same
// application their phase correlation.
func (m *Machine) Run(p *StreamParams, n int) {
	p.Validate()
	c := &m.counters
	rng := m.rng

	loadCut := p.LoadFrac
	storeCut := loadCut + p.StoreFrac
	branchCut := storeCut + p.BranchFrac

	for i := 0; i < n; i++ {
		cycles := p.UopsPerInstr / p.BaseIPC
		frontStall, backStall := 0.0, 0.0

		// ---- Fetch ----
		m.pc += 4
		if m.pc >= codeBase+uint64(p.CodeBytes) {
			m.pc = codeBase
		}
		fetchLine := m.pc &^ uint64(m.cfg.LineBytes-1)
		if fetchLine != m.lastFetch {
			m.lastFetch = fetchLine
			c[EvL1IcacheLoads]++
			c[EvITLBLoads]++
			if !m.itlb.Access(m.pc) {
				c[EvITLBLoadMisses]++
				frontStall += penaltyTLB
			}
			if !m.icache.Access(m.pc) {
				c[EvL1IcacheLoadMisses]++
				frontStall += penaltyL1I
				// Instruction miss goes to the LLC.
				c[EvCacheReferences]++
				c[EvLLCLoads]++
				if !m.llc.Access(m.pc) {
					c[EvCacheMisses]++
					c[EvLLCLoadMisses]++
					c[EvNodeLoads]++ // code pages are local
					frontStall += penaltyLLC + penaltyLocalMem
				} else {
					frontStall += penaltyLLC
				}
			}
		}

		// ---- Execute ----
		r := rng.Float64()
		switch {
		case r < loadCut:
			addr := m.dataAddress(p, rng, m.lastLoad)
			m.lastLoad = addr
			backStall += m.load(p, addr, rng)
		case r < storeCut:
			addr := m.dataAddress(p, rng, m.lastStore)
			m.lastStore = addr
			backStall += m.store(p, addr, rng)
		case r < branchCut:
			frontStall += m.branch(p, rng)
		default:
			// Plain ALU instruction: no memory traffic.
		}

		// ---- Retire & timing ----
		c[EvInstructions]++
		uops := p.UopsPerInstr
		c[EvUopsRetired] += uint64(uops)
		// Issued uops include wrong-path work proportional to stall churn.
		c[EvUopsIssued] += uint64(uops) + uint64(frontStall/8)

		effFront := frontStall * stallOverlap
		effBack := backStall * stallOverlap
		cycles += effFront + effBack
		m.cycleCarry += cycles
		whole := uint64(m.cycleCarry)
		m.cycleCarry -= float64(whole)
		c[EvCPUCycles] += whole
		c[EvRefCycles] += whole
		c[EvBusCycles] += whole / 4
		// Stall counters carry fractions across instructions so
		// sub-cycle effective stalls are not truncated away.
		m.frontCarry += effFront
		wf := uint64(m.frontCarry)
		m.frontCarry -= float64(wf)
		c[EvStalledCyclesFrontend] += wf
		m.backCarry += effBack
		wb := uint64(m.backCarry)
		m.backCarry -= float64(wb)
		c[EvStalledCyclesBackend] += wb
	}
}

// RunCycles executes instructions from p until at least budget core
// cycles have elapsed, returning the number of instructions executed.
// This models a fixed wall-clock sampling interval (the paper samples
// HPCs every 10 ms): slow, stall-heavy code retires fewer instructions
// per interval than efficient code, exactly as on real hardware.
func (m *Machine) RunCycles(p *StreamParams, budget uint64) int {
	p.Validate()
	start := m.counters[EvCPUCycles]
	executed := 0
	const chunk = 256
	for m.counters[EvCPUCycles]-start < budget {
		m.Run(p, chunk)
		executed += chunk
	}
	return executed
}

// dataAddress picks the next data address under the locality model:
// with StrideFrac probability the access continues sequentially from
// prev; otherwise it lands uniformly in the hot working set (with
// HotDataFrac probability) or in the full data span. A RemoteFrac slice
// of the span is tagged as remote-node memory.
func (m *Machine) dataAddress(p *StreamParams, rng *RNG, prev uint64) uint64 {
	if prev != 0 && rng.Bernoulli(p.StrideFrac) {
		next := prev + 8
		limit := uint64(p.DataBytes)
		if (next&^remoteBit)-dataBase >= limit {
			next = dataBase | (next & remoteBit)
		}
		return next
	}
	var off uint64
	if rng.Bernoulli(p.HotDataFrac) {
		off = uint64(rng.Intn(p.HotDataBytes)) &^ 7
	} else {
		off = uint64(rng.Intn(p.DataBytes)) &^ 7
	}
	addr := dataBase + off
	if rng.Bernoulli(p.RemoteFrac) {
		addr |= remoteBit
	}
	return addr
}

// load simulates one load uop and returns its back-end stall cycles.
func (m *Machine) load(p *StreamParams, addr uint64, rng *RNG) float64 {
	c := &m.counters
	c[EvMemLoads]++
	c[EvDTLBLoads]++
	c[EvL1DcacheLoads]++

	stall := 0.0
	if !m.dtlb.Access(addr) {
		c[EvDTLBLoadMisses]++
		stall += penaltyTLB
	}
	if m.dcache.Access(addr) {
		return stall
	}
	c[EvL1DcacheLoadMisses]++
	stall += penaltyL1D
	c[EvCacheReferences]++
	c[EvLLCLoads]++
	if m.llc.Access(addr) {
		stall += penaltyLLC
	} else {
		c[EvCacheMisses]++
		c[EvLLCLoadMisses]++
		if addr&remoteBit != 0 {
			c[EvNodeLoadMisses]++
			stall += penaltyLLC + penaltyRemote
		} else {
			c[EvNodeLoads]++
			stall += penaltyLLC + penaltyLocalMem
		}
	}
	m.prefetch(p, addr, rng)
	return stall
}

// store simulates one store uop and returns its back-end stall cycles.
// Stores mostly drain through the store buffer, so their effective
// penalty is scaled by storeOverlap.
func (m *Machine) store(p *StreamParams, addr uint64, rng *RNG) float64 {
	c := &m.counters
	c[EvMemStores]++
	c[EvDTLBStores]++
	c[EvL1DcacheStores]++

	stall := 0.0
	if !m.dtlb.Access(addr) {
		c[EvDTLBStoreMisses]++
		stall += penaltyTLB * storeOverlap
	}
	if m.dcache.Access(addr) {
		return stall
	}
	c[EvL1DcacheStoreMisses]++
	stall += penaltyL1D * storeOverlap
	c[EvCacheReferences]++
	c[EvLLCStores]++
	if m.llc.Access(addr) {
		stall += penaltyLLC * storeOverlap
	} else {
		c[EvCacheMisses]++
		c[EvLLCStoreMisses]++
		if addr&remoteBit != 0 {
			c[EvNodeStoreMisses]++
			stall += (penaltyLLC + penaltyRemote) * storeOverlap
		} else {
			c[EvNodeStores]++
			stall += (penaltyLLC + penaltyLocalMem) * storeOverlap
		}
	}
	return stall
}

// prefetch models a next-line L1D prefetcher triggered by stride-pattern
// misses: after a demand miss, the following line is brought in.
func (m *Machine) prefetch(p *StreamParams, addr uint64, rng *RNG) {
	if !rng.Bernoulli(p.StrideFrac) {
		return
	}
	c := &m.counters
	next := addr + uint64(m.cfg.LineBytes)
	c[EvL1DcachePrefetches]++
	if m.dcache.Probe(next) {
		return
	}
	c[EvL1DcachePrefMisses]++
	c[EvLLCPrefetches]++
	if !m.llc.Probe(next) {
		c[EvLLCPrefMisses]++
		c[EvNodePrefetches]++
		if next&remoteBit != 0 {
			c[EvNodePrefMisses]++
		}
		m.llc.Insert(next)
	}
	m.dcache.Insert(next)
}

// branch simulates one branch instruction and returns its front-end
// stall cycles.
func (m *Machine) branch(p *StreamParams, rng *RNG) float64 {
	c := &m.counters

	// Static branch site: the current pc, so loop bodies re-execute the
	// same sites. Each site has a deterministic "natural" direction
	// chosen so that a TakenFrac share of sites are taken-biased; the
	// dynamic outcome follows the natural direction with probability
	// BranchBias. BranchBias=1 gives fully consistent (learnable)
	// branches, 0.5 gives coin flips.
	site := m.pc
	natural := siteHash(site, m.salt) < p.TakenFrac
	taken := natural
	if !rng.Bernoulli(p.BranchBias) {
		taken = !taken
	}

	btbMissBefore := m.bp.BTBMisses
	mispred := m.bp.Predict(site, taken)
	btbMissed := m.bp.BTBMisses != btbMissBefore

	c[EvBranchInstructions]++
	c[EvBranchLoads] = m.bp.Lookups
	c[EvBranchLoadMisses] = m.bp.BTBMisses
	c[EvBranchStores] = m.bp.BTBAllocs
	c[EvBranchStoreMisses] = m.bp.BTBAllocMiss
	c[EvBranchMisses] = m.bp.Mispredicts

	if taken {
		// Redirect the fetch stream to a branch target: usually the hot
		// loop head, sometimes a cold region (function call / scan).
		var target uint64
		if rng.Bernoulli(p.HotCodeFrac) {
			target = codeBase + uint64(rng.Intn(p.HotCodeBytes))&^3
		} else {
			target = codeBase + uint64(rng.Intn(p.CodeBytes))&^3
		}
		m.pc = target
	}
	stall := 0.0
	if mispred {
		stall += penaltyBranch
	}
	if taken && btbMissed {
		stall += penaltyBTB
	}
	return stall
}
