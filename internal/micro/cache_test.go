package micro

import "testing"

func TestCacheGeometry(t *testing.T) {
	c := NewCache(32<<10, 64, 8)
	if got := c.Sets(); got != 64 {
		t.Errorf("Sets() = %d, want 64", got)
	}
	if got := c.Ways(); got != 8 {
		t.Errorf("Ways() = %d, want 8", got)
	}
	if got := c.LineBytes(); got != 64 {
		t.Errorf("LineBytes() = %d, want 64", got)
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	cases := []struct {
		name              string
		size, line, wayss int
	}{
		{"zero size", 0, 64, 8},
		{"non-divisible", 1000, 64, 8},
		{"non-power-of-two sets", 3 * 64 * 2, 64, 2},
		{"zero ways", 1024, 64, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewCache(%d,%d,%d) did not panic", tc.size, tc.line, tc.wayss)
				}
			}()
			NewCache(tc.size, tc.line, tc.wayss)
		})
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(1024, 64, 2)
	if c.Access(0x1000) {
		t.Fatal("first access should miss")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access to same line should hit")
	}
	if !c.Access(0x1004) {
		t.Fatal("same-line different-offset access should hit")
	}
	if c.Accesses != 3 || c.Misses != 1 {
		t.Errorf("stats = (%d accesses, %d misses), want (3, 1)", c.Accesses, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct construction: 2-way cache with a single set (size=line*ways).
	c := NewCache(128, 64, 2)
	a, b, d := uint64(0x0000), uint64(0x1000), uint64(0x2000)
	c.Access(a) // miss, fill
	c.Access(b) // miss, fill; set now [b, a]
	c.Access(a) // hit; set now [a, b]
	c.Access(d) // miss, evicts LRU=b; set now [d, a]
	if !c.Probe(a) {
		t.Error("a should still be resident (was MRU before d filled)")
	}
	if c.Probe(b) {
		t.Error("b should have been evicted as LRU")
	}
	if !c.Probe(d) {
		t.Error("d should be resident")
	}
}

func TestCacheProbeDoesNotDisturb(t *testing.T) {
	c := NewCache(128, 64, 2)
	c.Access(0x0000)
	acc, miss := c.Accesses, c.Misses
	c.Probe(0x0000)
	c.Probe(0x9000)
	if c.Accesses != acc || c.Misses != miss {
		t.Error("Probe must not change statistics")
	}
}

func TestCacheInsertActsAsFill(t *testing.T) {
	c := NewCache(128, 64, 2)
	c.Insert(0x4000)
	if !c.Probe(0x4000) {
		t.Fatal("inserted line should be resident")
	}
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("Insert must not count as a demand access")
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(1024, 64, 2)
	for i := 0; i < 16; i++ {
		c.Access(uint64(i * 64))
	}
	c.Flush()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("flush should clear statistics")
	}
	if c.Probe(0) {
		t.Error("flush should empty contents")
	}
}

func TestCacheThrashing(t *testing.T) {
	// Working set of 4 lines mapping to one set of a 2-way cache ->
	// every access misses under LRU with a cyclic pattern.
	c := NewCache(2*64*4, 64, 2) // 4 sets, 2 ways
	setStride := uint64(4 * 64)  // same set, different tags
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 4; i++ {
			c.Access(i * setStride)
		}
	}
	if c.Misses != c.Accesses {
		t.Errorf("cyclic over-capacity pattern should always miss: %d misses of %d", c.Misses, c.Accesses)
	}
}

func TestTLBBasic(t *testing.T) {
	tlb := NewTLB(4, 4096)
	if tlb.Access(0x1000) {
		t.Fatal("cold TLB should miss")
	}
	if !tlb.Access(0x1abc) {
		t.Fatal("same-page access should hit")
	}
	if tlb.Access(0x2000) {
		t.Fatal("new page should miss")
	}
	if tlb.Accesses != 3 || tlb.Misses != 2 {
		t.Errorf("stats = (%d, %d), want (3, 2)", tlb.Accesses, tlb.Misses)
	}
}

func TestTLBLRU(t *testing.T) {
	tlb := NewTLB(2, 4096)
	tlb.Access(0x1000)
	tlb.Access(0x2000)
	tlb.Access(0x1000) // promote page 1
	tlb.Access(0x3000) // evict page 2
	miss := tlb.Misses
	tlb.Access(0x1000)
	if tlb.Misses != miss {
		t.Error("page 1 should have survived (MRU before eviction)")
	}
	tlb.Access(0x2000)
	if tlb.Misses != miss+1 {
		t.Error("page 2 should have been evicted")
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(4, 4096)
	tlb.Access(0x1000)
	tlb.Flush()
	if tlb.Accesses != 0 || tlb.Misses != 0 {
		t.Error("flush should clear stats")
	}
	if tlb.Access(0x1000) {
		t.Error("flushed TLB should miss")
	}
	if tlb.Entries() != 4 {
		t.Errorf("Entries() = %d, want 4", tlb.Entries())
	}
}
