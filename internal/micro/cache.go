package micro

// Cache models a set-associative cache with true-LRU replacement. It is
// address-tagged only (no data payload): the simulator needs hit/miss
// behaviour, not contents. Line size, set count and associativity are
// configurable so the same type models L1I, L1D and the shared LLC.
type Cache struct {
	lineShift uint   // log2(line size)
	setMask   uint64 // sets-1 (sets must be a power of two)
	ways      int
	sets      []cacheSet

	// Statistics maintained by the cache itself (the machine maps these
	// onto event counters).
	Accesses uint64
	Misses   uint64
}

type cacheSet struct {
	tags []uint64 // tags[0] is MRU, tags[len-1] is LRU
	used []bool
}

// NewCache builds a cache with the given geometry. sizeBytes must equal
// lineBytes*sets*ways with sets a power of two; the constructor derives
// sets from the other three parameters.
func NewCache(sizeBytes, lineBytes, ways int) *Cache {
	if sizeBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		panic("micro: cache geometry must be positive")
	}
	if sizeBytes%(lineBytes*ways) != 0 {
		panic("micro: cache size not divisible by line*ways")
	}
	sets := sizeBytes / (lineBytes * ways)
	if sets&(sets-1) != 0 {
		panic("micro: cache set count must be a power of two")
	}
	c := &Cache{
		lineShift: log2(uint64(lineBytes)),
		setMask:   uint64(sets - 1),
		ways:      ways,
		sets:      make([]cacheSet, sets),
	}
	for i := range c.sets {
		c.sets[i] = cacheSet{tags: make([]uint64, ways), used: make([]bool, ways)}
	}
	return c
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		if v&1 != 0 {
			panic("micro: value is not a power of two")
		}
		v >>= 1
		n++
	}
	return n
}

// Access looks addr up, fills on miss, and reports whether the access
// hit. LRU state is updated on both paths.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	line := addr >> c.lineShift
	set := &c.sets[line&c.setMask]
	tag := line >> log2OfSets(c.setMask)

	for i, t := range set.tags {
		if set.used[i] && t == tag {
			promote(set, i)
			return true
		}
	}
	c.Misses++
	// Fill: evict LRU (last slot), insert at MRU.
	copy(set.tags[1:], set.tags[:len(set.tags)-1])
	copy(set.used[1:], set.used[:len(set.used)-1])
	set.tags[0] = tag
	set.used[0] = true
	return false
}

// Probe reports whether addr is resident without updating statistics or
// replacement state. Used by prefetchers to avoid redundant fills.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineShift
	set := &c.sets[line&c.setMask]
	tag := line >> log2OfSets(c.setMask)
	for i, t := range set.tags {
		if set.used[i] && t == tag {
			return true
		}
	}
	return false
}

// Insert fills addr without counting an access (prefetch fill path).
func (c *Cache) Insert(addr uint64) {
	line := addr >> c.lineShift
	set := &c.sets[line&c.setMask]
	tag := line >> log2OfSets(c.setMask)
	for i, t := range set.tags {
		if set.used[i] && t == tag {
			promote(set, i)
			return
		}
	}
	copy(set.tags[1:], set.tags[:len(set.tags)-1])
	copy(set.used[1:], set.used[:len(set.used)-1])
	set.tags[0] = tag
	set.used[0] = true
}

// Flush empties the cache and clears statistics, modelling a fresh
// container environment (the paper destroys the LXC container between
// runs to avoid contamination).
func (c *Cache) Flush() {
	for i := range c.sets {
		for j := range c.sets[i].used {
			c.sets[i].used[j] = false
		}
	}
	c.Accesses = 0
	c.Misses = 0
}

// LineBytes returns the cache line size in bytes.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func promote(set *cacheSet, i int) {
	tag := set.tags[i]
	copy(set.tags[1:i+1], set.tags[:i])
	copy(set.used[1:i+1], set.used[:i])
	set.tags[0] = tag
	set.used[0] = true
}

func log2OfSets(mask uint64) uint {
	var n uint
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}
