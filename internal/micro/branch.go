package micro

// BranchPredictor models a bimodal direction predictor (a PC-indexed
// table of 2-bit saturating counters) combined with a direct-mapped
// branch target buffer. BTB lookups correspond to the perf branch_loads
// event, BTB misses to branch_load_misses, BTB allocations to
// branch_stores and direction mispredictions to branch_misses.
//
// A bimodal table is the right fidelity here: the synthetic instruction
// streams have per-site direction bias but no inter-branch history
// correlation, so a history-based (gshare) predictor would see
// effectively random history bits and predict no better than chance.
type BranchPredictor struct {
	histBits uint    // log2 of the counter-table size
	counters []uint8 // 2-bit saturating counters

	btbMask uint64
	btbTags []uint64
	btbOK   []bool

	Lookups       uint64 // BTB lookups (branch_loads)
	BTBMisses     uint64 // branch_load_misses
	BTBAllocs     uint64 // branch_stores
	BTBAllocMiss  uint64 // branch_store_misses (alloc displaced a live entry)
	Mispredicts   uint64 // branch_misses
	BranchesSeen  uint64 // branch_instructions
	TakenBranches uint64
}

// NewBranchPredictor builds a predictor with a 2^histBits-entry
// counter table and btbEntries BTB slots (power of two).
func NewBranchPredictor(histBits uint, btbEntries int) *BranchPredictor {
	if histBits == 0 || histBits > 24 {
		panic("micro: history bits out of range")
	}
	if btbEntries <= 0 || btbEntries&(btbEntries-1) != 0 {
		panic("micro: BTB entries must be a positive power of two")
	}
	return &BranchPredictor{
		histBits: histBits,
		counters: make([]uint8, 1<<histBits),
		btbMask:  uint64(btbEntries - 1),
		btbTags:  make([]uint64, btbEntries),
		btbOK:    make([]bool, btbEntries),
	}
}

// Predict consumes one dynamic branch at pc with actual outcome taken,
// updating all predictor state, and reports whether the direction was
// mispredicted.
func (b *BranchPredictor) Predict(pc uint64, taken bool) bool {
	b.BranchesSeen++
	if taken {
		b.TakenBranches++
	}

	// BTB lookup: every branch performs one.
	b.Lookups++
	idx := (pc >> 2) & b.btbMask
	tag := pc >> 2
	btbHit := b.btbOK[idx] && b.btbTags[idx] == tag
	if !btbHit {
		b.BTBMisses++
		// Allocate on taken branches only (fall-through needs no target).
		if taken {
			b.BTBAllocs++
			if b.btbOK[idx] {
				b.BTBAllocMiss++
			}
			b.btbTags[idx] = tag
			b.btbOK[idx] = true
		}
	}

	// Direction prediction from the PC-indexed counter.
	mask := uint64(1)<<b.histBits - 1
	ci := (pc >> 2) & mask
	pred := b.counters[ci] >= 2
	if taken {
		if b.counters[ci] < 3 {
			b.counters[ci]++
		}
	} else if b.counters[ci] > 0 {
		b.counters[ci]--
	}

	// branch_misses counts direction mispredictions only; a taken branch
	// whose target is absent from the BTB costs a fetch bubble but is
	// accounted separately (BTBMisses).
	mispred := pred != taken
	if mispred {
		b.Mispredicts++
	}
	return mispred
}

// Flush clears all predictor state and statistics.
func (b *BranchPredictor) Flush() {
	for i := range b.counters {
		b.counters[i] = 0
	}
	for i := range b.btbOK {
		b.btbOK[i] = false
	}
	b.Lookups = 0
	b.BTBMisses = 0
	b.BTBAllocs = 0
	b.BTBAllocMiss = 0
	b.Mispredicts = 0
	b.BranchesSeen = 0
	b.TakenBranches = 0
}
