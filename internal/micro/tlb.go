package micro

// TLB models a fully-associative translation lookaside buffer with LRU
// replacement over 4 KiB pages. Instruction and data TLBs are separate
// instances, as on Nehalem.
type TLB struct {
	pageShift uint
	entries   []uint64 // entries[0] is MRU
	valid     []bool

	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB with the given number of entries and page size.
func NewTLB(entries int, pageBytes int) *TLB {
	if entries <= 0 || pageBytes <= 0 {
		panic("micro: TLB geometry must be positive")
	}
	return &TLB{
		pageShift: log2(uint64(pageBytes)),
		entries:   make([]uint64, entries),
		valid:     make([]bool, entries),
	}
}

// Access translates addr, filling on miss, and reports whether the
// translation hit.
func (t *TLB) Access(addr uint64) bool {
	t.Accesses++
	page := addr >> t.pageShift
	for i, p := range t.entries {
		if t.valid[i] && p == page {
			// Promote to MRU.
			copy(t.entries[1:i+1], t.entries[:i])
			copy(t.valid[1:i+1], t.valid[:i])
			t.entries[0] = page
			t.valid[0] = true
			return true
		}
	}
	t.Misses++
	copy(t.entries[1:], t.entries[:len(t.entries)-1])
	copy(t.valid[1:], t.valid[:len(t.valid)-1])
	t.entries[0] = page
	t.valid[0] = true
	return false
}

// Flush empties the TLB and clears statistics.
func (t *TLB) Flush() {
	for i := range t.valid {
		t.valid[i] = false
	}
	t.Accesses = 0
	t.Misses = 0
}

// Entries returns the TLB capacity.
func (t *TLB) Entries() int { return len(t.entries) }
