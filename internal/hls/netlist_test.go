package hls

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/mlearn"
	"repro/internal/mlearn/zoo"
)

// intBlobs builds a dataset of integer "HPC count" vectors (the real
// domain: counter deltas are integral).
func intBlobs(n, attrs int, seed uint64) *dataset.Instances {
	names := make([]string, attrs)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	d := dataset.New(names, dataset.BinaryClassNames())
	rng := micro.NewRNG(seed)
	for i := 0; i < n; i++ {
		y := i % 2
		x := make([]float64, attrs)
		for j := range x {
			base := 1000 + 600*y*(j%2+1)
			x[j] = float64(base + rng.Intn(800))
		}
		g := "b"
		if y == 1 {
			g = "m"
		}
		_ = d.Add(x, y, g)
	}
	return d
}

// agreement measures how often the netlist decision equals the software
// model's prediction over the dataset.
func agreement(t *testing.T, c mlearn.Classifier, nl *Netlist, d *dataset.Instances) float64 {
	t.Helper()
	match := 0
	for i := range d.X {
		in := make([]int64, len(d.X[i]))
		for j, v := range d.X[i] {
			in[j] = int64(v)
		}
		bit, err := nl.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		if int(bit) == mlearn.Predict(c, d.X[i]) {
			match++
		}
	}
	return float64(match) / float64(d.NumRows())
}

func TestNetlistEquivalence(t *testing.T) {
	train := intBlobs(300, 4, 1)
	probe := intBlobs(400, 4, 2)

	cases := []struct {
		name    string
		variant zoo.Variant
		minAgr  float64
	}{
		// Integer-threshold models must agree bit-exactly.
		{"OneR", zoo.General, 1.0},
		{"J48", zoo.General, 1.0},
		{"REPTree", zoo.General, 1.0},
		{"JRip", zoo.General, 1.0},
		// Linear models quantise weights to Q12: near-boundary points
		// may flip.
		{"SGD", zoo.General, 0.98},
		{"SMO", zoo.General, 0.98},
		{"Logistic", zoo.General, 0.98},
		// Committees: integer alpha scaling.
		{"J48", zoo.Boosted, 0.97},
		{"OneR", zoo.Boosted, 0.97},
		// Bagging averages graded distributions in software but
		// majority-votes in hardware.
		{"REPTree", zoo.Bagged, 0.9},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name+"-"+tc.variant.String(), func(t *testing.T) {
			tr, err := zoo.NewVariant(tc.name, tc.variant, 10, 3)
			if err != nil {
				t.Fatal(err)
			}
			model, err := tr.Train(train, nil)
			if err != nil {
				t.Fatal(err)
			}
			nl, err := BuildNetlist(model, tc.name, train.NumAttrs())
			if err != nil {
				t.Fatal(err)
			}
			if agr := agreement(t, model, nl, probe); agr < tc.minAgr {
				t.Errorf("hardware/software agreement = %.3f, want >= %.2f", agr, tc.minAgr)
			}
		})
	}
}

func TestNetlistRejectsUnsupported(t *testing.T) {
	train := intBlobs(100, 2, 5)
	for _, name := range []string{"MLP", "BayesNet"} {
		model, err := zoo.MustNew(name, 1).Train(train, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := BuildNetlist(model, name, 2); err == nil {
			t.Errorf("%s should not lower to a combinational netlist", name)
		}
	}
}

func TestNetlistEvalValidation(t *testing.T) {
	train := intBlobs(100, 3, 7)
	model, _ := zoo.MustNew("OneR", 1).Train(train, nil)
	nl, err := BuildNetlist(model, "x", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.Eval([]int64{1}); err == nil {
		t.Error("wrong input width should fail")
	}
}

func TestVerilogStructure(t *testing.T) {
	train := intBlobs(200, 4, 9)
	model, err := zoo.MustNew("J48", 1).Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := BuildNetlist(model, "4HPC-J48", 4)
	if err != nil {
		t.Fatal(err)
	}
	v := nl.Verilog()

	for _, want := range []string{
		"module m4HPC_J48", "endmodule",
		"input  signed [63:0] hpc0", "input  signed [63:0] hpc3",
		"output malware", "assign malware",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog missing %q", want)
		}
	}
	// One wire declaration per netlist node.
	if got := strings.Count(v, "wire signed"); got != len(nl.Nodes) {
		t.Errorf("%d wire declarations for %d nodes", got, len(nl.Nodes))
	}
	// No dangling references: every nK used must be declared.
	for i := range nl.Nodes {
		decl := "n" + itoa(i) + " ="
		if !strings.Contains(v, decl) {
			t.Errorf("node %d has no declaration", i)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestVerilogGoldenOneR(t *testing.T) {
	// Train OneR on a trivially separable 1-feature set so the model
	// has a single midpoint threshold at 10.
	d := dataset.New([]string{"v"}, dataset.BinaryClassNames())
	for i := 0; i < 20; i++ {
		y := i % 2
		_ = d.Add([]float64{float64(5 + 10*y)}, y, map[int]string{0: "b", 1: "m"}[y])
	}
	model, err := zoo.MustNew("OneR", 1).Train(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := BuildNetlist(model, "golden", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Decision flips exactly at the midpoint (10).
	low, _ := nl.Eval([]int64{5})
	high, _ := nl.Eval([]int64{15})
	if low != 0 || high != 1 {
		t.Errorf("golden OneR netlist: Eval(5)=%d Eval(15)=%d, want 0/1", low, high)
	}
	v := nl.Verilog()
	if !strings.Contains(v, "module golden") {
		t.Error("module name not sanitised as expected")
	}
}

func TestSanitizeIdent(t *testing.T) {
	cases := map[string]string{
		"4HPC-Boosted-J48": "m4HPC_Boosted_J48",
		"plain":            "plain",
		"":                 "detector",
		"a b":              "a_b",
	}
	for in, want := range cases {
		if got := sanitizeIdent(in); got != want {
			t.Errorf("sanitizeIdent(%q) = %q, want %q", in, got, want)
		}
	}
}
