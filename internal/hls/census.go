package hls

// Operator census: an independent inventory of the structural operators
// a trained model needs, computed by walking the pointer-linked trained
// structures directly. The compiled package computes the same counts
// from its flattened arrays (compiled.Program.Census); a cross-check
// test asserts the two agree for every zoo model, so a lowering bug
// that drops or duplicates work in either backend shows up as a count
// mismatch even when scores happen to agree on the probed inputs.

import (
	"fmt"

	"repro/internal/mlearn"
	"repro/internal/mlearn/bayesnet"
	"repro/internal/mlearn/ensemble"
	"repro/internal/mlearn/j48"
	"repro/internal/mlearn/jrip"
	"repro/internal/mlearn/logistic"
	"repro/internal/mlearn/mlp"
	"repro/internal/mlearn/oner"
	"repro/internal/mlearn/reptree"
	"repro/internal/mlearn/sgd"
	"repro/internal/mlearn/smo"
)

// OpCounts mirrors compiled.Census field-for-field (kept as a separate
// type so neither package depends on the other; the cross-check test
// bridges them).
type OpCounts struct {
	Comparators int
	Leaves      int
	MACs        int
	Sigmoids    int
	TableWords  int
	Submodels   int
}

func (c *OpCounts) add(other OpCounts) {
	c.Comparators += other.Comparators
	c.Leaves += other.Leaves
	c.MACs += other.MACs
	c.Sigmoids += other.Sigmoids
	c.TableWords += other.TableWords
	c.Submodels += other.Submodels
}

// CensusOf counts the structural operators of a trained model. Models
// the hardware backend cannot lower (KNN's stored corpus) return an
// error, matching the compiled backend's ErrUnsupported surface.
func CensusOf(c mlearn.Classifier) (OpCounts, error) {
	switch m := c.(type) {
	case *j48.Model:
		return treeCensus(m.Root), nil
	case *reptree.Model:
		return treeCensus(m.Root), nil
	case *oner.Model:
		return OpCounts{Comparators: len(m.Thresholds), Submodels: 1}, nil
	case *jrip.Model:
		conds := 0
		for i := range m.Rules {
			conds += len(m.Rules[i].Conds)
		}
		return OpCounts{Comparators: conds, TableWords: m.NumClasses, Submodels: 1}, nil
	case *bayesnet.Model:
		cmp, words := 0, len(m.Prior)
		for j := range m.Disc.Cuts {
			cmp += len(m.Disc.Cuts[j])
		}
		for j := range m.CPT {
			for c := range m.CPT[j] {
				words += len(m.CPT[j][c])
			}
		}
		return OpCounts{Comparators: cmp, TableWords: words, Submodels: 1}, nil
	case *sgd.Model:
		return OpCounts{MACs: len(m.Weights), Submodels: 1}, nil
	case *smo.Model:
		return OpCounts{MACs: len(m.Weights), Submodels: 1}, nil
	case *logistic.Model:
		return OpCounts{MACs: len(m.Weights), Sigmoids: 1, Submodels: 1}, nil
	case *mlp.Model:
		in, hid, out := 0, len(m.W1), len(m.W2)
		if hid > 0 {
			in = len(m.W1[0])
		}
		return OpCounts{MACs: in*hid + hid*out, Sigmoids: hid + out, Submodels: 1}, nil
	case *ensemble.BoostedModel:
		return ensembleCensus(m.Models)
	case *ensemble.BaggedModel:
		return ensembleCensus(m.Models)
	default:
		return OpCounts{}, fmt.Errorf("hls: no operator census for model of type %T", c)
	}
}

func treeCensus(root *mlearn.TreeNode) OpCounts {
	if root == nil {
		return OpCounts{Submodels: 1}
	}
	internal, leaves := root.Count()
	return OpCounts{Comparators: internal, Leaves: leaves, Submodels: 1}
}

func ensembleCensus(models []mlearn.Classifier) (OpCounts, error) {
	total := OpCounts{Submodels: len(models)}
	for i, m := range models {
		c, err := CensusOf(m)
		if err != nil {
			return OpCounts{}, fmt.Errorf("hls: ensemble member %d: %w", i, err)
		}
		c.Submodels = 0 // members count once, via len(models)
		total.add(c)
	}
	return total, nil
}
