package hls

import (
	"strings"
	"testing"

	"repro/internal/mlearn"
	"repro/internal/mlearn/mltest"
	"repro/internal/mlearn/zoo"
)

func trainAll(t *testing.T) map[string]mlearn.Classifier {
	t.Helper()
	train := mltest.Blobs(300, 4, 1)
	out := map[string]mlearn.Classifier{}
	for _, name := range zoo.Names() {
		c, err := zoo.MustNew(name, 3).Train(train, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = c
	}
	return out
}

func TestCompileAllModels(t *testing.T) {
	for name, c := range trainAll(t) {
		d, err := Compile(c, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Latency <= 0 {
			t.Errorf("%s: non-positive latency", name)
		}
		if d.Res.LUTs <= 0 {
			t.Errorf("%s: no logic at all", name)
		}
		if d.AreaPercent() <= 0 || d.AreaPercent() > 100 {
			t.Errorf("%s: area %.1f%% out of plausible range", name, d.AreaPercent())
		}
		if !strings.Contains(d.String(), name) {
			t.Errorf("%s: String() missing name", name)
		}
	}
}

func TestMLPDominatesCost(t *testing.T) {
	// Table 3's headline: the MLP is the most expensive design in both
	// latency and area by a wide margin.
	models := trainAll(t)
	dMLP, err := Compile(models["MLP"], "MLP")
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []string{"OneR", "J48", "JRip", "REPTree", "BayesNet"} {
		d, err := Compile(models[other], other)
		if err != nil {
			t.Fatal(err)
		}
		if d.Latency >= dMLP.Latency {
			t.Errorf("%s latency %d >= MLP %d", other, d.Latency, dMLP.Latency)
		}
		if d.AreaPercent() >= dMLP.AreaPercent() {
			t.Errorf("%s area %.1f%% >= MLP %.1f%%", other, d.AreaPercent(), dMLP.AreaPercent())
		}
	}
}

func TestOneRIsCheapest(t *testing.T) {
	// The paper reports OneR at 1 cycle: a parallel comparator bank.
	models := trainAll(t)
	d, err := Compile(models["OneR"], "OneR")
	if err != nil {
		t.Fatal(err)
	}
	// Control overhead adds a couple of cycles on top of the 1-cycle
	// datapath; the total must stay tiny.
	if d.Latency > 4 {
		t.Errorf("OneR latency = %d, want <= 4", d.Latency)
	}
	for _, other := range []string{"MLP", "SGD", "SMO", "BayesNet"} {
		od, _ := Compile(models[other], other)
		if od.Latency < d.Latency {
			t.Errorf("%s (%d) beat OneR (%d) on latency", other, od.Latency, d.Latency)
		}
	}
}

func TestLinearLatencyScalesWithFeatures(t *testing.T) {
	d8 := datapath32.compileLinear(8)
	d2 := datapath32.compileLinear(2)
	if d8.Latency <= d2.Latency {
		t.Error("more features must cost more MAC cycles")
	}
	// Sequential MAC: 8 features ~ 4x the 2-feature latency.
	ratio := float64(d8.Latency) / float64(d2.Latency)
	if ratio < 2 || ratio > 5 {
		t.Errorf("8/2 feature latency ratio = %.2f, want ~4", ratio)
	}
}

func TestEnsembleSharedSchedule(t *testing.T) {
	train := mltest.Blobs(300, 4, 5)
	boost, err := zoo.NewVariant("OneR", zoo.Boosted, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := boost.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	single, _ := zoo.MustNew("OneR", 7).Train(train, nil)

	dBoost, err := Compile(c, "Boosted-OneR")
	if err != nil {
		t.Fatal(err)
	}
	dSingle, err := Compile(single, "OneR")
	if err != nil {
		t.Fatal(err)
	}
	if dBoost.Submodels < 2 {
		t.Skipf("boosting collapsed to %d model(s)", dBoost.Submodels)
	}
	// Shared schedule: latency multiplies with member count, area
	// grows but far less than proportionally.
	if dBoost.Latency <= dSingle.Latency {
		t.Error("boosted shared-schedule latency should exceed the single model")
	}
	// The paper's claim: ensemble area overhead stays under ~3% of the
	// core budget thanks to compute sharing.
	if over := dBoost.AreaPercent() - dSingle.AreaPercent(); over > 3.0 {
		t.Errorf("shared-schedule area overhead = %.1f%%, want < 3%%", over)
	}
}

func TestEnsembleParallelSchedule(t *testing.T) {
	train := mltest.Blobs(300, 4, 9)
	bag, err := zoo.NewVariant("REPTree", zoo.Bagged, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := bag.Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := CompileScheduled(c, "Bagged-REPTree", Shared)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CompileScheduled(c, "Bagged-REPTree", Parallel)
	if err != nil {
		t.Fatal(err)
	}
	if par.Latency >= shared.Latency {
		t.Error("parallel schedule should be faster than shared")
	}
	if par.Res.LUTEquivalent() <= shared.Res.LUTEquivalent() {
		t.Error("parallel schedule should be bigger than shared")
	}
}

func TestNarrowDatapathNeverCostsMore(t *testing.T) {
	// The quantized tier's cost question: does dropping the datapath to
	// 16 bits pay on hardware? Every model must cost no more at W16
	// than at W32 in both latency and area, and the datapath-heavy
	// families (MLP, linear) must show a real area win. Structure is
	// width-invariant, so submodel counts agree.
	for name, c := range trainAll(t) {
		d32, err := CompileWidth(c, name, Shared, W32)
		if err != nil {
			t.Fatalf("%s w32: %v", name, err)
		}
		d16, err := CompileWidth(c, name, Shared, W16)
		if err != nil {
			t.Fatalf("%s w16: %v", name, err)
		}
		if d16.Width != W16 || d32.Width != W32 {
			t.Errorf("%s: width labels wrong (%d/%d)", name, d16.Width, d32.Width)
		}
		if d16.Latency > d32.Latency {
			t.Errorf("%s: 16-bit latency %d > 32-bit %d", name, d16.Latency, d32.Latency)
		}
		if d16.Res.LUTEquivalent() > d32.Res.LUTEquivalent() {
			t.Errorf("%s: 16-bit area %.0f > 32-bit %.0f", name, d16.Res.LUTEquivalent(), d32.Res.LUTEquivalent())
		}
		if d16.Submodels != d32.Submodels {
			t.Errorf("%s: submodels %d != %d — narrowing must not change structure", name, d16.Submodels, d32.Submodels)
		}
	}
	models := trainAll(t)
	for _, name := range []string{"MLP", "SGD", "SMO"} {
		d32, _ := CompileWidth(models[name], name, Shared, W32)
		d16, _ := CompileWidth(models[name], name, Shared, W16)
		if d16.Res.LUTEquivalent() >= 0.9*d32.Res.LUTEquivalent() {
			t.Errorf("%s: 16-bit area %.0f not meaningfully under 32-bit %.0f",
				name, d16.Res.LUTEquivalent(), d32.Res.LUTEquivalent())
		}
	}
}

func TestCompileWidthRejectsUnknown(t *testing.T) {
	models := trainAll(t)
	if _, err := CompileWidth(models["OneR"], "OneR", Shared, Width(24)); err == nil {
		t.Error("unsupported width should fail")
	}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{LUTs: 100, FFs: 50, DSPs: 2, BRAMs: 1}
	b := Resources{LUTs: 10, FFs: 200, DSPs: 1, BRAMs: 0}
	a.Add(b)
	if a.LUTs != 110 || a.FFs != 250 || a.DSPs != 3 || a.BRAMs != 1 {
		t.Error("Add wrong")
	}
	m := (Resources{LUTs: 5, FFs: 500}).Max(Resources{LUTs: 50, FFs: 5})
	if m.LUTs != 50 || m.FFs != 500 {
		t.Error("Max wrong")
	}
	s := (Resources{LUTs: 100, DSPs: 3}).Scale(0.5)
	if s.LUTs != 50 || s.DSPs != 1 {
		t.Error("Scale wrong")
	}
	if (Resources{DSPs: 1}).LUTEquivalent() != 150 {
		t.Error("DSP exchange rate wrong")
	}
}

func TestCompileUnknownType(t *testing.T) {
	if _, err := Compile(fakeModel{}, "fake"); err == nil {
		t.Error("unknown model type should fail")
	}
}

type fakeModel struct{}

func (fakeModel) Distribution([]float64) []float64 { return []float64{1, 0} }

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}
