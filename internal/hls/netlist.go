package hls

import (
	"fmt"
	"strings"

	"repro/internal/mlearn"
	"repro/internal/mlearn/ensemble"
	"repro/internal/mlearn/j48"
	"repro/internal/mlearn/jrip"
	"repro/internal/mlearn/logistic"
	"repro/internal/mlearn/oner"
	"repro/internal/mlearn/reptree"
	"repro/internal/mlearn/sgd"
	"repro/internal/mlearn/smo"
)

// The netlist layer lowers a trained model into an explicit dataflow
// graph of fixed-point hardware operators. The same graph serves three
// purposes: a bit-exact reference evaluation (Eval — used by tests to
// prove the hardware matches the software model's decisions), Verilog
// emission (Verilog — a synthesizable combinational implementation),
// and honest operator counts for the cost model.
//
// Fixed-point conventions: HPC inputs are integer event counts. Tree
// and rule thresholds are half-integers (split midpoints), so inputs
// are compared pre-shifted by one bit against 2x thresholds. Linear
// model weights are scaled by 2^fxShift.

// NetOp enumerates netlist operator kinds.
type NetOp int

// Netlist operator kinds.
const (
	OpInput NetOp = iota // input port (Input = port index)
	OpConst              // integer constant (Value)
	OpLT                 // Args[0] <  Args[1]  (1-bit result)
	OpGE                 // Args[0] >= Args[1]
	OpLE                 // Args[0] <= Args[1]
	OpAnd                // bitwise AND over Args
	OpOr                 // bitwise OR over Args
	OpNot                // 1-bit negation
	OpMux                // Args[0] ? Args[1] : Args[2]
	OpAdd                // sum of Args
	OpMul                // Args[0] * Args[1]
	OpShl                // Args[0] << Value
)

// fxShift is the fixed-point fraction width for linear-model weights.
const fxShift = 12

// NetNode is one operator in the graph; Args index earlier nodes
// (the netlist is topologically ordered by construction).
type NetNode struct {
	Op    NetOp
	Args  []int
	Value int64 // OpConst payload / OpShl amount
	Input int   // OpInput port index
}

// Netlist is a combinational dataflow graph with one 1-bit output
// (malware decision).
type Netlist struct {
	Name      string
	NumInputs int
	Nodes     []NetNode
	Output    int // node index of the decision bit
}

// add appends a node and returns its index.
func (n *Netlist) add(node NetNode) int {
	n.Nodes = append(n.Nodes, node)
	return len(n.Nodes) - 1
}

func (n *Netlist) input(port int) int {
	return n.add(NetNode{Op: OpInput, Input: port})
}

func (n *Netlist) constant(v int64) int {
	return n.add(NetNode{Op: OpConst, Value: v})
}

// Eval computes the netlist over integer inputs, returning the decision
// bit. This is the bit-exact reference the Verilog corresponds to.
func (n *Netlist) Eval(inputs []int64) (int64, error) {
	if len(inputs) != n.NumInputs {
		return 0, fmt.Errorf("hls: %d inputs for %d ports", len(inputs), n.NumInputs)
	}
	vals := make([]int64, len(n.Nodes))
	for i, node := range n.Nodes {
		switch node.Op {
		case OpInput:
			vals[i] = inputs[node.Input]
		case OpConst:
			vals[i] = node.Value
		case OpLT:
			vals[i] = b2i(vals[node.Args[0]] < vals[node.Args[1]])
		case OpGE:
			vals[i] = b2i(vals[node.Args[0]] >= vals[node.Args[1]])
		case OpLE:
			vals[i] = b2i(vals[node.Args[0]] <= vals[node.Args[1]])
		case OpAnd:
			v := int64(1)
			for _, a := range node.Args {
				v &= vals[a]
			}
			vals[i] = v
		case OpOr:
			v := int64(0)
			for _, a := range node.Args {
				v |= vals[a]
			}
			vals[i] = v
		case OpNot:
			vals[i] = 1 - (vals[node.Args[0]] & 1)
		case OpMux:
			if vals[node.Args[0]] != 0 {
				vals[i] = vals[node.Args[1]]
			} else {
				vals[i] = vals[node.Args[2]]
			}
		case OpAdd:
			var v int64
			for _, a := range node.Args {
				v += vals[a]
			}
			vals[i] = v
		case OpMul:
			vals[i] = vals[node.Args[0]] * vals[node.Args[1]]
		case OpShl:
			vals[i] = vals[node.Args[0]] << uint(node.Value)
		default:
			return 0, fmt.Errorf("hls: unknown op %d", node.Op)
		}
	}
	return vals[n.Output] & 1, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// BuildNetlist lowers a trained model to a netlist. Supported model
// families: OneR, J48/REPTree trees, JRip rules, SGD/SMO/Logistic
// linear models, and AdaBoost/Bagging committees thereof. The MLP and
// BayesNet need sigmoid/probability arithmetic that a combinational
// integer netlist cannot express faithfully; Compile still costs them,
// but they cannot be emitted as Verilog.
func BuildNetlist(c mlearn.Classifier, name string, numInputs int) (*Netlist, error) {
	n := &Netlist{Name: sanitizeIdent(name), NumInputs: numInputs}
	out, err := lower(n, c)
	if err != nil {
		return nil, err
	}
	n.Output = out
	return n, nil
}

func lower(n *Netlist, c mlearn.Classifier) (int, error) {
	switch m := c.(type) {
	case *oner.Model:
		return lowerOneR(n, m), nil
	case *j48.Model:
		return lowerTree(n, m.Root), nil
	case *reptree.Model:
		return lowerTree(n, m.Root), nil
	case *jrip.Model:
		return lowerRules(n, m), nil
	case *sgd.Model:
		return lowerLinear(n, m.Scaler, m.Weights, m.Bias), nil
	case *smo.Model:
		return lowerLinear(n, m.Scaler, m.Weights, m.Bias), nil
	case *logistic.Model:
		// P >= 0.5 iff the linear margin >= 0, so the decision logic
		// is the same linear netlist.
		return lowerLinear(n, m.Scaler, m.Weights, m.Bias), nil
	case *ensemble.BoostedModel:
		return lowerCommittee(n, m.Models, m.Alphas)
	case *ensemble.BaggedModel:
		alphas := make([]float64, len(m.Models))
		for i := range alphas {
			alphas[i] = 1
		}
		return lowerCommittee(n, m.Models, alphas)
	}
	return 0, fmt.Errorf("hls: cannot lower model of type %T to a netlist", c)
}

// lowerOneR: comparator ladder with a priority mux chain, matching
// Model.predict exactly (v < Thresholds[i] selects Classes[i]).
func lowerOneR(n *Netlist, m *oner.Model) int {
	x := n.input(m.Attr)
	x2 := n.add(NetNode{Op: OpShl, Args: []int{x}, Value: 1})
	// Default: last interval's class.
	out := n.constant(int64(m.Classes[len(m.Classes)-1]))
	// Walk thresholds from last to first so the first match wins.
	for i := len(m.Thresholds) - 1; i >= 0; i-- {
		th := n.constant(int64(m.Thresholds[i] * 2)) // half-integer safe
		lt := n.add(NetNode{Op: OpLT, Args: []int{x2, th}})
		cls := n.constant(int64(m.Classes[i]))
		out = n.add(NetNode{Op: OpMux, Args: []int{lt, cls, out}})
	}
	return out
}

// lowerTree: one comparator per internal node and a mux per level.
func lowerTree(n *Netlist, t *mlearn.TreeNode) int {
	if t.Leaf {
		pred := 0
		best := -1.0
		for c, p := range t.Dist {
			if p > best {
				pred, best = c, p
			}
		}
		return n.constant(int64(pred))
	}
	x := n.input(t.Attr)
	x2 := n.add(NetNode{Op: OpShl, Args: []int{x}, Value: 1})
	th := n.constant(int64(t.Threshold * 2))
	lt := n.add(NetNode{Op: OpLT, Args: []int{x2, th}})
	l := lowerTree(n, t.Left)
	r := lowerTree(n, t.Right)
	return n.add(NetNode{Op: OpMux, Args: []int{lt, l, r}})
}

// lowerRules: condition comparators, per-rule AND trees, priority mux
// chain ending in the default class.
func lowerRules(n *Netlist, m *jrip.Model) int {
	defPred := 0
	best := -1.0
	for c, p := range m.Default {
		if p > best {
			defPred, best = c, p
		}
	}
	out := n.constant(int64(defPred))
	for i := len(m.Rules) - 1; i >= 0; i-- {
		r := &m.Rules[i]
		var condBits []int
		for _, cond := range r.Conds {
			x := n.input(cond.Attr)
			x2 := n.add(NetNode{Op: OpShl, Args: []int{x}, Value: 1})
			th := n.constant(int64(cond.Threshold * 2))
			if cond.Ge {
				condBits = append(condBits, n.add(NetNode{Op: OpGE, Args: []int{x2, th}}))
			} else {
				condBits = append(condBits, n.add(NetNode{Op: OpLE, Args: []int{x2, th}}))
			}
		}
		var match int
		if len(condBits) == 0 {
			match = n.constant(1)
		} else {
			match = n.add(NetNode{Op: OpAnd, Args: condBits})
		}
		// The software model predicts argmax of the rule's confidence
		// distribution, which flips away from r.Class when the
		// confidence dips below one half (rare, but exactness matters
		// for hardware equivalence).
		pred := r.Class
		if r.Confidence < 0.5 && m.NumClasses == 2 {
			pred = 1 - r.Class
		}
		cls := n.constant(int64(pred))
		out = n.add(NetNode{Op: OpMux, Args: []int{match, cls, out}})
	}
	return out
}

// lowerLinear: fixed-point dot product in the scaler-normalised space.
// The normalisation (x-min)/span is folded into integer weights:
// margin = bias + Σ w_j (x_j - min_j)/span_j, computed as
// Q = round(w_j / span_j * 2^fxShift), acc = Σ Q_j*(x_j - min_j),
// plus bias scaled by 2^fxShift. Decision: acc >= 0.
func lowerLinear(n *Netlist, scaler *mlearn.Scaler, weights []float64, bias float64) int {
	var terms []int
	biasAcc := bias
	for j, w := range weights {
		span := scaler.Max[j] - scaler.Min[j]
		if span <= 0 {
			// Constant feature contributed w*0.5 during training.
			biasAcc += w * 0.5
			continue
		}
		q := int64(w / span * (1 << fxShift))
		if q == 0 {
			continue
		}
		x := n.input(j)
		negMin := n.constant(int64(-scaler.Min[j]))
		diff := n.add(NetNode{Op: OpAdd, Args: []int{x, negMin}})
		// Clamp to [0, span], mirroring Scaler.Apply for inputs outside
		// the training range.
		zero := n.constant(0)
		spanC := n.constant(int64(span))
		under := n.add(NetNode{Op: OpLT, Args: []int{diff, zero}})
		low := n.add(NetNode{Op: OpMux, Args: []int{under, zero, diff}})
		over := n.add(NetNode{Op: OpGE, Args: []int{low, spanC}})
		clamped := n.add(NetNode{Op: OpMux, Args: []int{over, spanC, low}})
		qc := n.constant(q)
		terms = append(terms, n.add(NetNode{Op: OpMul, Args: []int{clamped, qc}}))
	}
	terms = append(terms, n.constant(int64(biasAcc*(1<<fxShift))))
	acc := n.add(NetNode{Op: OpAdd, Args: terms})
	zero := n.constant(0)
	return n.add(NetNode{Op: OpGE, Args: []int{acc, zero}})
}

// lowerCommittee: member decision bits weighted by integer-scaled
// alphas; malware wins when its vote total reaches half the alpha sum.
func lowerCommittee(n *Netlist, models []mlearn.Classifier, alphas []float64) (int, error) {
	const voteScale = 1024
	var voteTerms []int
	var totalAlpha int64
	for i, m := range models {
		bit, err := lower(n, m)
		if err != nil {
			return 0, err
		}
		a := int64(alphas[i] * voteScale)
		if a < 1 {
			a = 1
		}
		totalAlpha += a
		ac := n.constant(a)
		voteTerms = append(voteTerms, n.add(NetNode{Op: OpMul, Args: []int{bit, ac}}))
	}
	sum := n.add(NetNode{Op: OpAdd, Args: voteTerms})
	// malware iff its vote total strictly exceeds half the alpha mass:
	// 2*sum > total. Strict comparison matches the software argmax,
	// which breaks ties toward the benign class.
	sum2 := n.add(NetNode{Op: OpShl, Args: []int{sum}, Value: 1})
	tot := n.constant(totalAlpha)
	return n.add(NetNode{Op: OpLT, Args: []int{tot, sum2}}), nil
}

// Verilog emits a synthesizable combinational module: one 64-bit input
// per HPC, a single-bit malware output, and one continuous assignment
// per netlist node.
func (n *Netlist) Verilog() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// Generated by hls.BuildNetlist — do not edit.\n")
	fmt.Fprintf(&sb, "// Combinational malware detector: %d HPC inputs, 1 decision bit.\n", n.NumInputs)
	fmt.Fprintf(&sb, "module %s (\n", n.Name)
	for i := 0; i < n.NumInputs; i++ {
		fmt.Fprintf(&sb, "    input  signed [63:0] hpc%d,\n", i)
	}
	fmt.Fprintf(&sb, "    output malware\n);\n\n")

	for i, node := range n.Nodes {
		switch node.Op {
		case OpInput:
			fmt.Fprintf(&sb, "  wire signed [63:0] n%d = hpc%d;\n", i, node.Input)
		case OpConst:
			if node.Value < 0 {
				fmt.Fprintf(&sb, "  wire signed [63:0] n%d = -64'sd%d;\n", i, -node.Value)
			} else {
				fmt.Fprintf(&sb, "  wire signed [63:0] n%d = 64'sd%d;\n", i, node.Value)
			}
		case OpLT:
			fmt.Fprintf(&sb, "  wire signed [63:0] n%d = (n%d < n%d) ? 64'sd1 : 64'sd0;\n", i, node.Args[0], node.Args[1])
		case OpGE:
			fmt.Fprintf(&sb, "  wire signed [63:0] n%d = (n%d >= n%d) ? 64'sd1 : 64'sd0;\n", i, node.Args[0], node.Args[1])
		case OpLE:
			fmt.Fprintf(&sb, "  wire signed [63:0] n%d = (n%d <= n%d) ? 64'sd1 : 64'sd0;\n", i, node.Args[0], node.Args[1])
		case OpAnd:
			fmt.Fprintf(&sb, "  wire signed [63:0] n%d = %s;\n", i, joinOp(node.Args, " & "))
		case OpOr:
			fmt.Fprintf(&sb, "  wire signed [63:0] n%d = %s;\n", i, joinOp(node.Args, " | "))
		case OpNot:
			fmt.Fprintf(&sb, "  wire signed [63:0] n%d = n%d[0] ? 64'sd0 : 64'sd1;\n", i, node.Args[0])
		case OpMux:
			fmt.Fprintf(&sb, "  wire signed [63:0] n%d = n%d[0] ? n%d : n%d;\n", i, node.Args[0], node.Args[1], node.Args[2])
		case OpAdd:
			fmt.Fprintf(&sb, "  wire signed [63:0] n%d = %s;\n", i, joinOp(node.Args, " + "))
		case OpMul:
			fmt.Fprintf(&sb, "  wire signed [63:0] n%d = n%d * n%d;\n", i, node.Args[0], node.Args[1])
		case OpShl:
			fmt.Fprintf(&sb, "  wire signed [63:0] n%d = n%d <<< %d;\n", i, node.Args[0], node.Value)
		}
	}
	fmt.Fprintf(&sb, "\n  assign malware = n%d[0];\nendmodule\n", n.Output)
	return sb.String()
}

func joinOp(args []int, op string) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = fmt.Sprintf("n%d", a)
	}
	return strings.Join(parts, op)
}

func sanitizeIdent(s string) string {
	var sb strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				sb.WriteByte('m')
			}
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "detector"
	}
	return sb.String()
}
