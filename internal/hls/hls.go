// Package hls is the hardware-implementation cost model standing in for
// the paper's Vivado HLS → Xilinx Virtex-7 flow (§4.4, Table 3). It
// compiles *trained* models into a dataflow description of hardware
// operators (comparators, adders, multiply-accumulates, table lookups,
// sigmoid units), schedules them, and reports:
//
//   - Latency, in clock cycles at 10 ns (the paper's unit), and
//   - Area, as a percentage of an OpenSPARC-class core budget (the
//     paper's reference), from LUT/FF/DSP/BRAM utilisation.
//
// The compiler walks the real trained structures — tree nodes, rule
// conditions, CPT widths, network weights — so the qualitative content
// of Table 3 (MLP an order of magnitude bigger and slower; rule/tree
// models tiny; ensembles multiplying latency but sharing compute)
// falls out of model structure rather than being hard-coded.
package hls

import (
	"fmt"

	"repro/internal/mlearn"
	"repro/internal/mlearn/bayesnet"
	"repro/internal/mlearn/ensemble"
	"repro/internal/mlearn/j48"
	"repro/internal/mlearn/jrip"
	"repro/internal/mlearn/knn"
	"repro/internal/mlearn/logistic"
	"repro/internal/mlearn/mlp"
	"repro/internal/mlearn/oner"
	"repro/internal/mlearn/reptree"
	"repro/internal/mlearn/sgd"
	"repro/internal/mlearn/smo"
)

// Resources aggregates FPGA primitive utilisation.
type Resources struct {
	LUTs  int
	FFs   int
	DSPs  int
	BRAMs int
}

// Add accumulates other into r.
func (r *Resources) Add(other Resources) {
	r.LUTs += other.LUTs
	r.FFs += other.FFs
	r.DSPs += other.DSPs
	r.BRAMs += other.BRAMs
}

// Scale multiplies every resource count by f (rounding down, min 0).
func (r Resources) Scale(f float64) Resources {
	return Resources{
		LUTs:  int(float64(r.LUTs) * f),
		FFs:   int(float64(r.FFs) * f),
		DSPs:  int(float64(r.DSPs) * f),
		BRAMs: int(float64(r.BRAMs) * f),
	}
}

// Max returns the element-wise maximum (shared-logic area of two
// alternatives).
func (r Resources) Max(other Resources) Resources {
	m := r
	if other.LUTs > m.LUTs {
		m.LUTs = other.LUTs
	}
	if other.FFs > m.FFs {
		m.FFs = other.FFs
	}
	if other.DSPs > m.DSPs {
		m.DSPs = other.DSPs
	}
	if other.BRAMs > m.BRAMs {
		m.BRAMs = other.BRAMs
	}
	return m
}

// LUTEquivalent folds the mixed resource vector into one figure using
// typical Virtex-7 exchange rates (a DSP48 slice is worth roughly 150
// LUTs of multiplier logic; a BRAM roughly 200 LUTs of distributed
// memory; FFs pair with LUTs at about half weight).
func (r Resources) LUTEquivalent() float64 {
	return float64(r.LUTs) + 0.5*float64(r.FFs) + 150*float64(r.DSPs) + 200*float64(r.BRAMs)
}

// OpenSPARCBudget is the LUT-equivalent footprint of the reference
// OpenSPARC T1 core on a Virtex-7-class FPGA, against which the paper
// reports relative area.
const OpenSPARCBudget = 62000.0

// Operator cost table: latency in 10 ns cycles and primitive cost per
// instance, for 32-bit fixed-point datapaths.
var (
	costCmp     = opCost{lat: 1, res: Resources{LUTs: 32, FFs: 32}}
	costAdd     = opCost{lat: 1, res: Resources{LUTs: 32, FFs: 32}}
	costMul     = opCost{lat: 3, res: Resources{LUTs: 12, FFs: 48, DSPs: 1}}
	costTable   = opCost{lat: 2, res: Resources{LUTs: 24, FFs: 16, BRAMs: 1}} // CPT / constant ROM
	costSigmoid = opCost{lat: 2, res: Resources{LUTs: 96, FFs: 32}}           // piecewise-linear unit
	costMux     = opCost{lat: 1, res: Resources{LUTs: 16, FFs: 8}}
	costCtl     = opCost{lat: 2, res: Resources{LUTs: 64, FFs: 64}} // FSM / IO registration
)

type opCost struct {
	lat int
	res Resources
}

// Design is a compiled hardware implementation of one trained model.
type Design struct {
	Name    string
	Latency int // cycles @10ns to classify one input vector
	Res     Resources
	// Submodels counts base models for ensemble designs (1 otherwise).
	Submodels int
}

// AreaPercent reports the design's area relative to the OpenSPARC core
// budget, as in Table 3.
func (d *Design) AreaPercent() float64 {
	return d.Res.LUTEquivalent() / OpenSPARCBudget * 100
}

// String formats a Table 3-style row.
func (d *Design) String() string {
	return fmt.Sprintf("%-24s latency=%3d cycles  area=%5.1f%%  (LUT=%d FF=%d DSP=%d BRAM=%d)",
		d.Name, d.Latency, d.AreaPercent(), d.Res.LUTs, d.Res.FFs, d.Res.DSPs, d.Res.BRAMs)
}

// Schedule selects how ensemble members map onto hardware.
type Schedule int

const (
	// Shared runs ensemble members sequentially on one shared compute
	// engine (per-member constants in ROM): low area, latency scales
	// with the member count. This matches the paper's Table 3 numbers.
	Shared Schedule = iota
	// Parallel instantiates every member: latency of the slowest
	// member plus the vote tree, at the cost of summed area. Provided
	// for the DESIGN.md §5 ablation.
	Parallel
)

// Compile lowers a trained model into a Design using the Shared
// schedule for ensembles.
func Compile(c mlearn.Classifier, name string) (*Design, error) {
	return CompileScheduled(c, name, Shared)
}

// CompileScheduled lowers a trained model with an explicit ensemble
// schedule.
func CompileScheduled(c mlearn.Classifier, name string, sched Schedule) (*Design, error) {
	var d *Design
	switch m := c.(type) {
	case *oner.Model:
		d = compileOneR(m)
	case *j48.Model:
		d = compileTree(m.Root)
	case *reptree.Model:
		d = compileTree(m.Root)
	case *jrip.Model:
		d = compileRules(m)
	case *bayesnet.Model:
		d = compileBayes(m)
	case *sgd.Model:
		d = compileLinear(len(m.Weights))
	case *smo.Model:
		d = compileLinear(len(m.Weights))
	case *logistic.Model:
		// Linear datapath plus a sigmoid unit for the probability
		// output.
		d = compileLinear(len(m.Weights))
		d.Latency += costSigmoid.lat
		d.Res.Add(costSigmoid.res)
	case *knn.Model:
		d = compileKNN(m)
	case *mlp.Model:
		d = compileMLP(m)
	case *ensemble.BoostedModel:
		return compileEnsemble(m.Models, name, sched, true)
	case *ensemble.BaggedModel:
		return compileEnsemble(m.Models, name, sched, false)
	default:
		return nil, fmt.Errorf("hls: cannot compile model of type %T", c)
	}
	d.Name = name
	d.Submodels = 1
	// Input registration / decision FSM overhead applies once.
	d.Latency += costCtl.lat
	d.Res.Add(costCtl.res)
	return d, nil
}

// compileOneR: all interval comparators evaluate in parallel, a
// priority encoder picks the interval — single-cycle datapath, tiny
// area. This is why the paper reports OneR at 1 cycle.
func compileOneR(m *oner.Model) *Design {
	n := len(m.Thresholds)
	if n == 0 {
		n = 1
	}
	res := Resources{}
	for i := 0; i < n; i++ {
		res.Add(costCmp.res)
	}
	res.Add(costMux.res) // priority encoder / output select
	return &Design{Latency: costCmp.lat, Res: res}
}

// compileTree: one comparator per internal node (all instantiated), a
// root-to-leaf multiplexer chain. Latency follows tree depth; area
// follows node count.
func compileTree(root *mlearn.TreeNode) *Design {
	internal, leaves := root.Count()
	depth := root.Depth()
	if depth == 0 {
		depth = 1
	}
	res := Resources{}
	for i := 0; i < internal; i++ {
		res.Add(costCmp.res)
	}
	for i := 0; i < leaves; i++ {
		res.Add(Resources{LUTs: 4, FFs: 8}) // leaf constant registers
	}
	// Mux chain along the critical path.
	for i := 0; i < depth; i++ {
		res.Add(costMux.res)
	}
	return &Design{Latency: depth*costCmp.lat + 1, Res: res}
}

// compileRules: every condition across all rules gets a comparator
// (parallel), each rule ANDs its conditions, and a priority chain picks
// the first match. Latency: compare + AND-reduce + priority.
func compileRules(m *jrip.Model) *Design {
	res := Resources{}
	conds := 0
	maxConds := 1
	for _, r := range m.Rules {
		conds += len(r.Conds)
		if len(r.Conds) > maxConds {
			maxConds = len(r.Conds)
		}
	}
	if conds == 0 {
		conds = 1
	}
	for i := 0; i < conds; i++ {
		res.Add(costCmp.res)
	}
	// AND trees + priority encoder.
	res.Add(Resources{LUTs: 8 * len(m.Rules), FFs: 4 * len(m.Rules)})
	res.Add(costMux.res)
	andDepth := ceilLog2(maxConds)
	return &Design{Latency: costCmp.lat + andDepth + 1, Res: res}
}

// compileBayes: per attribute a bin-index comparator ladder feeds a CPT
// ROM; per-class log-probability adder tree reduces the lookups; a
// final comparator picks the class.
func compileBayes(m *bayesnet.Model) *Design {
	res := Resources{}
	nAttrs := len(m.CPT)
	classes := len(m.Prior)
	maxBins := 1
	for j := range m.CPT {
		bins := len(m.CPT[j][0])
		if bins > maxBins {
			maxBins = bins
		}
		// Bin ladder: bins-1 comparators.
		for b := 0; b < bins-1; b++ {
			res.Add(costCmp.res)
		}
		// CPT ROM per attribute.
		res.Add(costTable.res)
	}
	// Adder tree per class.
	adders := (nAttrs - 1) * classes
	if adders < 1 {
		adders = 1
	}
	for i := 0; i < adders; i++ {
		res.Add(costAdd.res)
	}
	res.Add(costCmp.res) // argmax
	latency := ceilLog2(maxBins) + costTable.lat + ceilLog2(nAttrs)*costAdd.lat + costCmp.lat
	return &Design{Latency: latency, Res: res}
}

// compileLinear: a dot product on a single shared MAC (one DSP), the
// standard HLS result for a WEKA "functions" model without unrolling:
// latency scales linearly with the feature count.
func compileLinear(features int) *Design {
	if features < 1 {
		features = 1
	}
	res := Resources{}
	res.Add(costMul.res) // the shared MAC
	res.Add(costAdd.res)
	res.Add(costTable.res) // weight ROM
	res.Add(costCmp.res)   // sign decision
	latency := features*(costMul.lat+costAdd.lat) + costCmp.lat
	return &Design{Latency: latency, Res: res}
}

// compileKNN: a stored-corpus design — one distance engine (shared
// MAC) streaming the training set from ROM, plus a k-entry
// insertion-sorted neighbour buffer. Latency and memory scale with the
// corpus, which is precisely the property that makes KNN unattractive
// for on-chip detection (the baseline point the paper's related work
// makes against Demme'13).
func compileKNN(m *knn.Model) *Design {
	features := 0
	if len(m.X) > 0 {
		features = len(m.X[0])
	}
	res := Resources{}
	res.Add(costMul.res) // shared distance MAC
	res.Add(costAdd.res)
	res.Add(costCmp.res) // neighbour-buffer compare
	// Training-set ROM: one BRAM per ~512 stored words.
	words := len(m.X)*features + len(m.Y)
	brams := (words + 511) / 512
	if brams < 1 {
		brams = 1
	}
	res.Add(Resources{BRAMs: brams, LUTs: 64, FFs: 96})
	latency := len(m.X)*(features*(costMul.lat+costAdd.lat)/4+costCmp.lat) + costCmp.lat
	return &Design{Latency: latency, Res: res}
}

// compileMLP: each layer is a MAC grid with modest unrolling (one MAC
// per hidden unit), plus a sigmoid unit per neuron — the big, slow
// design the paper observes (hundreds of cycles, dominant area).
func compileMLP(m *mlp.Model) *Design {
	in, hid, out := m.Inputs(), m.Hidden(), m.Outputs()
	res := Resources{}
	// One MAC + sigmoid per hidden unit, one per output unit.
	for i := 0; i < hid+out; i++ {
		res.Add(costMul.res)
		res.Add(costAdd.res)
		res.Add(costSigmoid.res)
	}
	// Weight ROMs: one per neuron.
	for i := 0; i < hid+out; i++ {
		res.Add(costTable.res)
	}
	res.Add(costCmp.res)
	// Each hidden unit consumes its inputs sequentially on its MAC;
	// layers are pipelined one after the other.
	latHidden := in*(costMul.lat+costAdd.lat) + costSigmoid.lat
	latOut := hid*(costMul.lat+costAdd.lat) + costSigmoid.lat
	return &Design{Latency: latHidden + latOut + costCmp.lat, Res: res}
}

// compileEnsemble lowers a committee. Under the Shared schedule the
// members time-multiplex one compute engine sized for the largest
// member (per-member constants live in ROMs), and each member's vote
// costs a multiply-accumulate (weighted vote for boosting, averaging
// for bagging). Under Parallel, every member is instantiated.
func compileEnsemble(models []mlearn.Classifier, name string, sched Schedule, weighted bool) (*Design, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("hls: empty ensemble")
	}
	subs := make([]*Design, 0, len(models))
	for i, m := range models {
		d, err := CompileScheduled(m, fmt.Sprintf("%s[%d]", name, i), sched)
		if err != nil {
			return nil, err
		}
		// Strip the per-design control overhead; the ensemble has one
		// shared FSM added below.
		d.Latency -= costCtl.lat
		d.Res.LUTs -= costCtl.res.LUTs
		d.Res.FFs -= costCtl.res.FFs
		subs = append(subs, d)
	}

	out := &Design{Name: name, Submodels: len(models)}
	voteOps := costAdd.lat
	voteRes := costAdd.res
	if weighted {
		voteOps += costMul.lat
		voteRes.Add(costMul.res)
		voteRes.Add(costTable.res) // alpha ROM
	}

	switch sched {
	case Shared:
		// Shared engine: area = largest member + per-member constant
		// ROMs (12% of each member's area: thresholds/weights, not
		// datapath) + vote logic.
		shared := Resources{}
		for _, s := range subs {
			shared = shared.Max(s.Res)
		}
		out.Res.Add(shared)
		for _, s := range subs {
			out.Res.Add(s.Res.Scale(0.12))
		}
		out.Res.Add(voteRes)
		total := 0
		for _, s := range subs {
			total += s.Latency + voteOps
		}
		out.Latency = total + costCmp.lat
	case Parallel:
		for _, s := range subs {
			out.Res.Add(s.Res)
		}
		out.Res.Add(voteRes.Scale(float64(len(subs))))
		maxLat := 0
		for _, s := range subs {
			if s.Latency > maxLat {
				maxLat = s.Latency
			}
		}
		out.Latency = maxLat + voteOps + ceilLog2(len(subs)) + costCmp.lat
	default:
		return nil, fmt.Errorf("hls: unknown schedule %d", sched)
	}
	out.Latency += costCtl.lat
	out.Res.Add(costCtl.res)
	return out, nil
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	l := 0
	v := 1
	for v < n {
		v <<= 1
		l++
	}
	return l
}
