// Package hls is the hardware-implementation cost model standing in for
// the paper's Vivado HLS → Xilinx Virtex-7 flow (§4.4, Table 3). It
// compiles *trained* models into a dataflow description of hardware
// operators (comparators, adders, multiply-accumulates, table lookups,
// sigmoid units), schedules them, and reports:
//
//   - Latency, in clock cycles at 10 ns (the paper's unit), and
//   - Area, as a percentage of an OpenSPARC-class core budget (the
//     paper's reference), from LUT/FF/DSP/BRAM utilisation.
//
// The compiler walks the real trained structures — tree nodes, rule
// conditions, CPT widths, network weights — so the qualitative content
// of Table 3 (MLP an order of magnitude bigger and slower; rule/tree
// models tiny; ensembles multiplying latency but sharing compute)
// falls out of model structure rather than being hard-coded.
//
// Costing is parameterised by datapath width: W32 reproduces the
// paper's single-precision-equivalent numbers, W16 costs the quantized
// inference tier (int16 thresholds and weight rows, Q15/Q16
// accumulation) where comparators and adders halve and multipliers fit
// a single DSP slice natively.
package hls

import (
	"fmt"

	"repro/internal/mlearn"
	"repro/internal/mlearn/bayesnet"
	"repro/internal/mlearn/ensemble"
	"repro/internal/mlearn/j48"
	"repro/internal/mlearn/jrip"
	"repro/internal/mlearn/knn"
	"repro/internal/mlearn/logistic"
	"repro/internal/mlearn/mlp"
	"repro/internal/mlearn/oner"
	"repro/internal/mlearn/reptree"
	"repro/internal/mlearn/sgd"
	"repro/internal/mlearn/smo"
)

// Resources aggregates FPGA primitive utilisation.
type Resources struct {
	LUTs  int
	FFs   int
	DSPs  int
	BRAMs int
}

// Add accumulates other into r.
func (r *Resources) Add(other Resources) {
	r.LUTs += other.LUTs
	r.FFs += other.FFs
	r.DSPs += other.DSPs
	r.BRAMs += other.BRAMs
}

// Scale multiplies every resource count by f (rounding down, min 0).
func (r Resources) Scale(f float64) Resources {
	return Resources{
		LUTs:  int(float64(r.LUTs) * f),
		FFs:   int(float64(r.FFs) * f),
		DSPs:  int(float64(r.DSPs) * f),
		BRAMs: int(float64(r.BRAMs) * f),
	}
}

// Max returns the element-wise maximum (shared-logic area of two
// alternatives).
func (r Resources) Max(other Resources) Resources {
	m := r
	if other.LUTs > m.LUTs {
		m.LUTs = other.LUTs
	}
	if other.FFs > m.FFs {
		m.FFs = other.FFs
	}
	if other.DSPs > m.DSPs {
		m.DSPs = other.DSPs
	}
	if other.BRAMs > m.BRAMs {
		m.BRAMs = other.BRAMs
	}
	return m
}

// LUTEquivalent folds the mixed resource vector into one figure using
// typical Virtex-7 exchange rates (a DSP48 slice is worth roughly 150
// LUTs of multiplier logic; a BRAM roughly 200 LUTs of distributed
// memory; FFs pair with LUTs at about half weight).
func (r Resources) LUTEquivalent() float64 {
	return float64(r.LUTs) + 0.5*float64(r.FFs) + 150*float64(r.DSPs) + 200*float64(r.BRAMs)
}

// OpenSPARCBudget is the LUT-equivalent footprint of the reference
// OpenSPARC T1 core on a Virtex-7-class FPGA, against which the paper
// reports relative area.
const OpenSPARCBudget = 62000.0

// Width selects the fixed-point datapath width the cost model assumes.
type Width int

const (
	// W32 is the default 32-bit fixed-point datapath — the width the
	// paper's HLS flow synthesises and the one every existing Table 3
	// figure is reported at.
	W32 Width = 32
	// W16 is the quantized tier's datapath: int16 operands with wide
	// accumulators kept inside DSP slices, as in the software tier's
	// int16 thresholds / weight rows with int64 accumulation.
	W16 Width = 16
)

type opCost struct {
	lat int
	res Resources
}

// datapath is one width's operator cost table: latency in 10 ns cycles
// and primitive cost per operator instance.
type datapath struct {
	width   Width
	cmp     opCost
	add     opCost
	mul     opCost
	table   opCost // CPT / constant ROM
	sigmoid opCost // piecewise-linear unit
	mux     opCost
	ctl     opCost // FSM / IO registration
}

// datapath32 is the paper-reference 32-bit table. datapath16 narrows
// it for the quantized tier: comparator/adder/mux LUT-FF cost halves
// with operand width, a 16x16 product fits one DSP48 natively (cutting
// a pipeline stage), ROM words halve so a table fits distributed LUTs
// more often (modelled as halved LUT/FF around the same BRAM), and the
// sigmoid becomes the Q15 interpolated lookup instead of a float
// piecewise unit. Control logic does not narrow — the FSM is
// width-independent.
var (
	datapath32 = datapath{
		width:   W32,
		cmp:     opCost{lat: 1, res: Resources{LUTs: 32, FFs: 32}},
		add:     opCost{lat: 1, res: Resources{LUTs: 32, FFs: 32}},
		mul:     opCost{lat: 3, res: Resources{LUTs: 12, FFs: 48, DSPs: 1}},
		table:   opCost{lat: 2, res: Resources{LUTs: 24, FFs: 16, BRAMs: 1}},
		sigmoid: opCost{lat: 2, res: Resources{LUTs: 96, FFs: 32}},
		mux:     opCost{lat: 1, res: Resources{LUTs: 16, FFs: 8}},
		ctl:     opCost{lat: 2, res: Resources{LUTs: 64, FFs: 64}},
	}
	datapath16 = datapath{
		width:   W16,
		cmp:     opCost{lat: 1, res: Resources{LUTs: 16, FFs: 16}},
		add:     opCost{lat: 1, res: Resources{LUTs: 16, FFs: 16}},
		mul:     opCost{lat: 2, res: Resources{LUTs: 6, FFs: 24, DSPs: 1}},
		table:   opCost{lat: 2, res: Resources{LUTs: 12, FFs: 8, BRAMs: 1}},
		sigmoid: opCost{lat: 2, res: Resources{LUTs: 48, FFs: 16}},
		mux:     opCost{lat: 1, res: Resources{LUTs: 8, FFs: 4}},
		ctl:     opCost{lat: 2, res: Resources{LUTs: 64, FFs: 64}},
	}
)

func pathFor(w Width) (*datapath, error) {
	switch w {
	case W32:
		return &datapath32, nil
	case W16:
		return &datapath16, nil
	}
	return nil, fmt.Errorf("hls: unsupported datapath width %d", int(w))
}

// Design is a compiled hardware implementation of one trained model.
type Design struct {
	Name    string
	Width   Width
	Latency int // cycles @10ns to classify one input vector
	Res     Resources
	// Submodels counts base models for ensemble designs (1 otherwise).
	Submodels int
}

// AreaPercent reports the design's area relative to the OpenSPARC core
// budget, as in Table 3.
func (d *Design) AreaPercent() float64 {
	return d.Res.LUTEquivalent() / OpenSPARCBudget * 100
}

// String formats a Table 3-style row.
func (d *Design) String() string {
	return fmt.Sprintf("%-24s latency=%3d cycles  area=%5.1f%%  (LUT=%d FF=%d DSP=%d BRAM=%d)",
		d.Name, d.Latency, d.AreaPercent(), d.Res.LUTs, d.Res.FFs, d.Res.DSPs, d.Res.BRAMs)
}

// Schedule selects how ensemble members map onto hardware.
type Schedule int

const (
	// Shared runs ensemble members sequentially on one shared compute
	// engine (per-member constants in ROM): low area, latency scales
	// with the member count. This matches the paper's Table 3 numbers.
	Shared Schedule = iota
	// Parallel instantiates every member: latency of the slowest
	// member plus the vote tree, at the cost of summed area. Provided
	// for the DESIGN.md §5 ablation.
	Parallel
)

// Compile lowers a trained model into a Design using the Shared
// schedule for ensembles and the default 32-bit datapath.
func Compile(c mlearn.Classifier, name string) (*Design, error) {
	return CompileWidth(c, name, Shared, W32)
}

// CompileScheduled lowers a trained model with an explicit ensemble
// schedule on the default 32-bit datapath.
func CompileScheduled(c mlearn.Classifier, name string, sched Schedule) (*Design, error) {
	return CompileWidth(c, name, sched, W32)
}

// CompileWidth lowers a trained model with an explicit ensemble
// schedule and datapath width. W16 costs the quantized software tier's
// arithmetic; narrowing never changes model structure, so operator
// counts (and the census cross-check) are width-invariant — only
// per-operator cost moves.
func CompileWidth(c mlearn.Classifier, name string, sched Schedule, w Width) (*Design, error) {
	dp, err := pathFor(w)
	if err != nil {
		return nil, err
	}
	return dp.compile(c, name, sched)
}

func (dp *datapath) compile(c mlearn.Classifier, name string, sched Schedule) (*Design, error) {
	var d *Design
	switch m := c.(type) {
	case *oner.Model:
		d = dp.compileOneR(m)
	case *j48.Model:
		d = dp.compileTree(m.Root)
	case *reptree.Model:
		d = dp.compileTree(m.Root)
	case *jrip.Model:
		d = dp.compileRules(m)
	case *bayesnet.Model:
		d = dp.compileBayes(m)
	case *sgd.Model:
		d = dp.compileLinear(len(m.Weights))
	case *smo.Model:
		d = dp.compileLinear(len(m.Weights))
	case *logistic.Model:
		// Linear datapath plus a sigmoid unit for the probability
		// output.
		d = dp.compileLinear(len(m.Weights))
		d.Latency += dp.sigmoid.lat
		d.Res.Add(dp.sigmoid.res)
	case *knn.Model:
		d = dp.compileKNN(m)
	case *mlp.Model:
		d = dp.compileMLP(m)
	case *ensemble.BoostedModel:
		return dp.compileEnsemble(m.Models, name, sched, true)
	case *ensemble.BaggedModel:
		return dp.compileEnsemble(m.Models, name, sched, false)
	default:
		return nil, fmt.Errorf("hls: cannot compile model of type %T", c)
	}
	d.Name = name
	d.Width = dp.width
	d.Submodels = 1
	// Input registration / decision FSM overhead applies once.
	d.Latency += dp.ctl.lat
	d.Res.Add(dp.ctl.res)
	return d, nil
}

// compileOneR: all interval comparators evaluate in parallel, a
// priority encoder picks the interval — single-cycle datapath, tiny
// area. This is why the paper reports OneR at 1 cycle.
func (dp *datapath) compileOneR(m *oner.Model) *Design {
	n := len(m.Thresholds)
	if n == 0 {
		n = 1
	}
	res := Resources{}
	for i := 0; i < n; i++ {
		res.Add(dp.cmp.res)
	}
	res.Add(dp.mux.res) // priority encoder / output select
	return &Design{Latency: dp.cmp.lat, Res: res}
}

// compileTree: one comparator per internal node (all instantiated), a
// root-to-leaf multiplexer chain. Latency follows tree depth; area
// follows node count.
func (dp *datapath) compileTree(root *mlearn.TreeNode) *Design {
	internal, leaves := root.Count()
	depth := root.Depth()
	if depth == 0 {
		depth = 1
	}
	res := Resources{}
	for i := 0; i < internal; i++ {
		res.Add(dp.cmp.res)
	}
	for i := 0; i < leaves; i++ {
		res.Add(Resources{LUTs: 4, FFs: 8}) // leaf constant registers
	}
	// Mux chain along the critical path.
	for i := 0; i < depth; i++ {
		res.Add(dp.mux.res)
	}
	return &Design{Latency: depth*dp.cmp.lat + 1, Res: res}
}

// compileRules: every condition across all rules gets a comparator
// (parallel), each rule ANDs its conditions, and a priority chain picks
// the first match. Latency: compare + AND-reduce + priority.
func (dp *datapath) compileRules(m *jrip.Model) *Design {
	res := Resources{}
	conds := 0
	maxConds := 1
	for _, r := range m.Rules {
		conds += len(r.Conds)
		if len(r.Conds) > maxConds {
			maxConds = len(r.Conds)
		}
	}
	if conds == 0 {
		conds = 1
	}
	for i := 0; i < conds; i++ {
		res.Add(dp.cmp.res)
	}
	// AND trees + priority encoder.
	res.Add(Resources{LUTs: 8 * len(m.Rules), FFs: 4 * len(m.Rules)})
	res.Add(dp.mux.res)
	andDepth := ceilLog2(maxConds)
	return &Design{Latency: dp.cmp.lat + andDepth + 1, Res: res}
}

// compileBayes: per attribute a bin-index comparator ladder feeds a CPT
// ROM; per-class log-probability adder tree reduces the lookups; a
// final comparator picks the class.
func (dp *datapath) compileBayes(m *bayesnet.Model) *Design {
	res := Resources{}
	nAttrs := len(m.CPT)
	classes := len(m.Prior)
	maxBins := 1
	for j := range m.CPT {
		bins := len(m.CPT[j][0])
		if bins > maxBins {
			maxBins = bins
		}
		// Bin ladder: bins-1 comparators.
		for b := 0; b < bins-1; b++ {
			res.Add(dp.cmp.res)
		}
		// CPT ROM per attribute.
		res.Add(dp.table.res)
	}
	// Adder tree per class.
	adders := (nAttrs - 1) * classes
	if adders < 1 {
		adders = 1
	}
	for i := 0; i < adders; i++ {
		res.Add(dp.add.res)
	}
	res.Add(dp.cmp.res) // argmax
	latency := ceilLog2(maxBins) + dp.table.lat + ceilLog2(nAttrs)*dp.add.lat + dp.cmp.lat
	return &Design{Latency: latency, Res: res}
}

// compileLinear: a dot product on a single shared MAC (one DSP), the
// standard HLS result for a WEKA "functions" model without unrolling:
// latency scales linearly with the feature count.
func (dp *datapath) compileLinear(features int) *Design {
	if features < 1 {
		features = 1
	}
	res := Resources{}
	res.Add(dp.mul.res) // the shared MAC
	res.Add(dp.add.res)
	res.Add(dp.table.res) // weight ROM
	res.Add(dp.cmp.res)   // sign decision
	latency := features*(dp.mul.lat+dp.add.lat) + dp.cmp.lat
	return &Design{Latency: latency, Res: res}
}

// compileKNN: a stored-corpus design — one distance engine (shared
// MAC) streaming the training set from ROM, plus a k-entry
// insertion-sorted neighbour buffer. Latency and memory scale with the
// corpus, which is precisely the property that makes KNN unattractive
// for on-chip detection (the baseline point the paper's related work
// makes against Demme'13).
func (dp *datapath) compileKNN(m *knn.Model) *Design {
	features := 0
	if len(m.X) > 0 {
		features = len(m.X[0])
	}
	res := Resources{}
	res.Add(dp.mul.res) // shared distance MAC
	res.Add(dp.add.res)
	res.Add(dp.cmp.res) // neighbour-buffer compare
	// Training-set ROM: one BRAM per ~512 stored words.
	words := len(m.X)*features + len(m.Y)
	brams := (words + 511) / 512
	if brams < 1 {
		brams = 1
	}
	res.Add(Resources{BRAMs: brams, LUTs: 64, FFs: 96})
	latency := len(m.X)*(features*(dp.mul.lat+dp.add.lat)/4+dp.cmp.lat) + dp.cmp.lat
	return &Design{Latency: latency, Res: res}
}

// compileMLP: each layer is a MAC grid with modest unrolling (one MAC
// per hidden unit), plus a sigmoid unit per neuron — the big, slow
// design the paper observes (hundreds of cycles, dominant area).
func (dp *datapath) compileMLP(m *mlp.Model) *Design {
	in, hid, out := m.Inputs(), m.Hidden(), m.Outputs()
	res := Resources{}
	// One MAC + sigmoid per hidden unit, one per output unit.
	for i := 0; i < hid+out; i++ {
		res.Add(dp.mul.res)
		res.Add(dp.add.res)
		res.Add(dp.sigmoid.res)
	}
	// Weight ROMs: one per neuron.
	for i := 0; i < hid+out; i++ {
		res.Add(dp.table.res)
	}
	res.Add(dp.cmp.res)
	// Each hidden unit consumes its inputs sequentially on its MAC;
	// layers are pipelined one after the other.
	latHidden := in*(dp.mul.lat+dp.add.lat) + dp.sigmoid.lat
	latOut := hid*(dp.mul.lat+dp.add.lat) + dp.sigmoid.lat
	return &Design{Latency: latHidden + latOut + dp.cmp.lat, Res: res}
}

// compileEnsemble lowers a committee. Under the Shared schedule the
// members time-multiplex one compute engine sized for the largest
// member (per-member constants live in ROMs), and each member's vote
// costs a multiply-accumulate (weighted vote for boosting, averaging
// for bagging). Under Parallel, every member is instantiated.
func (dp *datapath) compileEnsemble(models []mlearn.Classifier, name string, sched Schedule, weighted bool) (*Design, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("hls: empty ensemble")
	}
	subs := make([]*Design, 0, len(models))
	for i, m := range models {
		d, err := dp.compile(m, fmt.Sprintf("%s[%d]", name, i), sched)
		if err != nil {
			return nil, err
		}
		// Strip the per-design control overhead; the ensemble has one
		// shared FSM added below.
		d.Latency -= dp.ctl.lat
		d.Res.LUTs -= dp.ctl.res.LUTs
		d.Res.FFs -= dp.ctl.res.FFs
		subs = append(subs, d)
	}

	out := &Design{Name: name, Width: dp.width, Submodels: len(models)}
	voteOps := dp.add.lat
	voteRes := dp.add.res
	if weighted {
		voteOps += dp.mul.lat
		voteRes.Add(dp.mul.res)
		voteRes.Add(dp.table.res) // alpha ROM
	}

	switch sched {
	case Shared:
		// Shared engine: area = largest member + per-member constant
		// ROMs (12% of each member's area: thresholds/weights, not
		// datapath) + vote logic.
		shared := Resources{}
		for _, s := range subs {
			shared = shared.Max(s.Res)
		}
		out.Res.Add(shared)
		for _, s := range subs {
			out.Res.Add(s.Res.Scale(0.12))
		}
		out.Res.Add(voteRes)
		total := 0
		for _, s := range subs {
			total += s.Latency + voteOps
		}
		out.Latency = total + dp.cmp.lat
	case Parallel:
		for _, s := range subs {
			out.Res.Add(s.Res)
		}
		out.Res.Add(voteRes.Scale(float64(len(subs))))
		maxLat := 0
		for _, s := range subs {
			if s.Latency > maxLat {
				maxLat = s.Latency
			}
		}
		out.Latency = maxLat + voteOps + ceilLog2(len(subs)) + dp.cmp.lat
	default:
		return nil, fmt.Errorf("hls: unknown schedule %d", sched)
	}
	out.Latency += dp.ctl.lat
	out.Res.Add(dp.ctl.res)
	return out, nil
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	l := 0
	v := 1
	for v < n {
		v <<= 1
		l++
	}
	return l
}
