package hls

import (
	"errors"
	"testing"

	"repro/internal/mlearn"
	"repro/internal/mlearn/compiled"
	"repro/internal/mlearn/mltest"
	"repro/internal/mlearn/zoo"
)

// TestCensusMatchesCompiled is the hls-vs-compiled cross-check: both
// backends independently inventory the operators of every zoo model —
// this package by walking the trained pointer structures, the compiled
// package by counting its flattened arrays — and the counts must agree
// exactly. A lowering that drops or duplicates a node, rule condition,
// weight or table entry in either backend breaks this even when scores
// happen to agree on sampled inputs.
func TestCensusMatchesCompiled(t *testing.T) {
	train := mltest.Blobs(300, 4, 1)
	for _, name := range zoo.Names() {
		for _, v := range []zoo.Variant{zoo.General, zoo.Boosted, zoo.Bagged} {
			label := name + "/" + v.String()
			tr, err := zoo.NewVariantOpts(name, v, zoo.Options{Iterations: 5, Seed: 3})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			c, err := tr.Train(train, nil)
			if err != nil {
				t.Fatalf("%s: train: %v", label, err)
			}
			p, cerr := compiled.Compile(c)
			got, herr := CensusOf(c)
			if cerr != nil || herr != nil {
				t.Fatalf("%s: compile err %v, census err %v", label, cerr, herr)
			}
			want := p.Census()
			if got.Comparators != want.Comparators ||
				got.Leaves != want.Leaves ||
				got.MACs != want.MACs ||
				got.Sigmoids != want.Sigmoids ||
				got.TableWords != want.TableWords ||
				got.Submodels != want.Submodels {
				t.Fatalf("%s: hls census %+v != compiled census %+v", label, got, want)
			}
			if got.Comparators+got.Leaves+got.MACs+got.Sigmoids+got.TableWords == 0 {
				t.Fatalf("%s: census counted no operators at all", label)
			}
		}
	}
}

// TestCensusUnsupportedAgrees: what one backend refuses, the other must
// refuse too — KNN's stored-corpus model has no operator lowering in
// either.
func TestCensusUnsupportedAgrees(t *testing.T) {
	train := mltest.Blobs(120, 4, 1)
	km, err := zoo.MustNew("KNN", 3).Train(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []mlearn.Classifier{km, fakeModel{}} {
		if _, err := CensusOf(c); err == nil {
			t.Fatalf("hls census accepted %T", c)
		}
		if _, err := compiled.Compile(c); !errors.Is(err, compiled.ErrUnsupported) {
			t.Fatalf("compiled backend accepted %T (err %v)", c, err)
		}
	}
}
