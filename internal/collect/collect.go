// Package collect implements the paper's data-collection methodology
// end to end: every application in the corpus is executed once per
// event batch (11 batches x 4 counters = 44 events, so 11 runs per
// application), inside a fresh container that is destroyed after the
// run, sampling the four programmed counters every fixed interval. The
// per-batch interval samples are then assembled into full 44-event
// feature vectors, one per sampling interval, labelled with the
// application's class.
//
// Collection is resilient to injected (and, by construction, real)
// infrastructure faults: crashed runs are retried with bounded
// exponential backoff, partial sample streams from crashed or lossy
// runs are salvaged, and batches that stay dead after all retries are
// imputed rather than aborting the pass. A Report accounts for every
// retry, loss and imputation so experiments can condition on collection
// quality.
package collect

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/lxc"
	"repro/internal/micro"
	"repro/internal/perf"
	"repro/internal/workload"
)

// Config parameterises a collection pass.
type Config struct {
	Machine     micro.MachineConfig
	Suite       workload.SuiteConfig
	Events      []micro.EventID // defaults to the full 44-event list
	Intervals   int             // sampling intervals per run
	CycleBudget uint64          // simulated cycles per interval
	Parallelism int             // concurrent applications (0 = NumCPU)

	// Faults optionally injects infrastructure faults into every run;
	// nil means clean collection. Injection is deterministic in
	// (Faults.Seed, app, batch, attempt) and therefore independent of
	// Parallelism.
	Faults *faults.Plan
	// MaxRetries bounds the re-runs attempted per batch after a
	// crashed run (0 = DefaultMaxRetries when Faults is set).
	MaxRetries int
	// RetryBackoff is the base backoff before the first retry; it
	// doubles per attempt. Negative disables sleeping entirely (useful
	// in tests); 0 = DefaultRetryBackoff.
	RetryBackoff time.Duration

	// Live, when non-nil, receives fault accounting incrementally as
	// applications finish, so a serving process can expose collection
	// progress while the pass is still running. The final Result.Report
	// is unaffected (and stays deterministically ordered).
	Live *LiveReport
}

// DefaultMaxRetries is the per-batch retry budget used when faults are
// enabled and Config.MaxRetries is zero.
const DefaultMaxRetries = 3

// DefaultRetryBackoff is the base backoff between retry attempts.
const DefaultRetryBackoff = time.Millisecond

// Default mirrors the paper-scale corpus: 120 applications, sampled
// over 30 intervals per run.
func Default() Config {
	return Config{
		Machine:     micro.DefaultConfig(),
		Suite:       workload.DefaultSuite(),
		Intervals:   30,
		CycleBudget: perf.DefaultCycleBudget,
	}
}

// Small is a reduced configuration for unit tests: fewer apps, shorter
// runs, a scaled-down machine.
func Small() Config {
	return Config{
		Machine:     micro.FastConfig(),
		Suite:       workload.SmallSuite(),
		Intervals:   8,
		CycleBudget: 8000,
	}
}

// Report accounts for the faults a collection pass absorbed. All
// fields are zero for a clean pass.
type Report struct {
	// Runs is the total number of isolated runs attempted, retries
	// included.
	Runs int
	// Retries is the number of re-runs performed after crashes.
	Retries int
	// CrashedRuns is the number of runs that died (boot failure or
	// mid-run crash).
	CrashedRuns int
	// LostBatches is the number of (app, batch) units that stayed dead
	// after the full retry budget and were imputed.
	LostBatches int
	// SalvagedRuns is the number of exhausted batches whose partial
	// sample prefix from the last crashed attempt was still used.
	SalvagedRuns int
	// DroppedSamples is the number of per-interval readings lost
	// (dropped or crashed away) and reconstructed by carry-forward.
	DroppedSamples int
	// ImputedValues is the number of individual feature values filled
	// in for unrecoverable batches.
	ImputedValues int
	// MissingEvents names the events (attribute names) that had at
	// least one batch imputed, with the number of affected apps.
	MissingEvents map[string]int
}

// Degraded reports whether the pass absorbed any fault at all.
func (r Report) Degraded() bool {
	return r.Retries > 0 || r.CrashedRuns > 0 || r.LostBatches > 0 ||
		r.DroppedSamples > 0 || r.ImputedValues > 0
}

// String summarises the report in one line.
func (r Report) String() string {
	return fmt.Sprintf("collect: %d runs (%d retries, %d crashed), %d batches lost (%d salvaged), %d samples dropped, %d values imputed",
		r.Runs, r.Retries, r.CrashedRuns, r.LostBatches, r.SalvagedRuns, r.DroppedSamples, r.ImputedValues)
}

func (r *Report) merge(o appReport, groups []perf.Group) {
	r.Runs += o.runs
	r.Retries += o.retries
	r.CrashedRuns += o.crashed
	r.LostBatches += len(o.lostBatches)
	r.SalvagedRuns += o.salvaged
	r.DroppedSamples += o.dropped
	r.ImputedValues += o.imputed
	for _, b := range o.lostBatches {
		for _, ev := range groups[b].Events() {
			if r.MissingEvents == nil {
				r.MissingEvents = map[string]int{}
			}
			r.MissingEvents[ev.String()]++
		}
	}
}

// LiveReport is a concurrency-safe view of an in-flight collection
// pass. Workers merge each application's accounting as it completes;
// any number of readers may Snapshot concurrently (hmd-serve scrapes
// one from its /stats endpoint during startup training). Because apps
// complete in scheduling order, intermediate snapshots are not
// deterministic — only the final state is, and it equals the pass's
// Result.Report.
type LiveReport struct {
	mu   sync.Mutex
	rep  Report
	apps int
}

// Snapshot returns a copy of the accounting so far plus the number of
// applications fully collected.
func (l *LiveReport) Snapshot() (Report, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rep := l.rep
	if l.rep.MissingEvents != nil {
		rep.MissingEvents = make(map[string]int, len(l.rep.MissingEvents))
		for k, v := range l.rep.MissingEvents {
			rep.MissingEvents[k] = v
		}
	}
	return rep, l.apps
}

func (l *LiveReport) merge(o appReport, groups []perf.Group) {
	l.mu.Lock()
	l.rep.merge(o, groups)
	l.apps++
	l.mu.Unlock()
}

// Result carries the assembled dataset plus collection bookkeeping.
type Result struct {
	Data *dataset.Instances
	// RunsPerApp is the number of executions each application needed
	// (one per event batch), as dictated by the 4-register PMU.
	RunsPerApp int
	// Containers is the total number of containers created (and
	// destroyed) during the pass.
	Containers int
	// Report accounts for retries, losses and imputations; all-zero
	// for a clean pass.
	Report Report
}

// appReport is the per-application slice of the pass Report, merged in
// deterministic app order after the workers finish.
type appReport struct {
	runs, retries, crashed, salvaged, dropped, imputed int
	lostBatches                                        []int
}

// Collect runs the full collection pass and assembles the dataset.
func Collect(cfg Config) (*Result, error) {
	events := cfg.Events
	if len(events) == 0 {
		events = micro.AllEvents()
	}
	if cfg.Intervals <= 0 {
		return nil, fmt.Errorf("collect: intervals must be positive")
	}
	if cfg.CycleBudget == 0 {
		cfg.CycleBudget = perf.DefaultCycleBudget
	}
	if cfg.MaxRetries == 0 && cfg.Faults != nil && cfg.Faults.Active() {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	groups, err := perf.Batches(events)
	if err != nil {
		return nil, fmt.Errorf("collect: batching %d events: %w", len(events), err)
	}
	apps := workload.Suite(cfg.Suite)
	if len(apps) == 0 {
		return nil, fmt.Errorf("collect: empty application suite")
	}

	mgr := lxc.NewManager(cfg.Machine)

	// vectors[appIdx][interval][eventPos] assembled across batches.
	type appData struct {
		vectors [][]float64
		report  appReport
		err     error
	}
	results := make([]appData, len(apps))

	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > len(apps) {
		par = len(apps)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ai := range work {
				results[ai].vectors, results[ai].report, results[ai].err =
					collectApp(mgr, &apps[ai], groups, &cfg)
				if cfg.Live != nil && results[ai].err == nil {
					cfg.Live.merge(results[ai].report, groups)
				}
			}
		}()
	}
	for ai := range apps {
		work <- ai
	}
	close(work)
	wg.Wait()

	if err := mgr.CheckClean(); err != nil {
		return nil, fmt.Errorf("collect: %w", err)
	}

	names := make([]string, len(events))
	for i, ev := range events {
		names[i] = ev.String()
	}
	data := dataset.New(names, dataset.BinaryClassNames())
	var report Report
	for ai, app := range apps {
		if results[ai].err != nil {
			return nil, fmt.Errorf("collect: app %s: %w", app.Name, results[ai].err)
		}
		report.merge(results[ai].report, groups)
		y := 0
		if app.Class == workload.Malware {
			y = 1
		}
		for _, vec := range results[ai].vectors {
			if err := data.Add(vec, y, app.Name); err != nil {
				return nil, fmt.Errorf("collect: app %s: adding vector: %w", app.Name, err)
			}
		}
	}

	created, _ := mgr.Stats()
	return &Result{Data: data, RunsPerApp: len(groups), Containers: created, Report: report}, nil
}

// crashed reports whether err is a recoverable infrastructure crash
// (container boot failure or mid-run sampling death) rather than a
// configuration error.
func crashed(err error) bool {
	return errors.Is(err, lxc.ErrCrashed) || errors.Is(err, perf.ErrRunCrashed)
}

// collectApp performs the per-application collection: one isolated run
// per event batch (retried on crashes), then assembles full vectors by
// interval index, carrying forward dropped readings and imputing
// batches that could not be recovered.
func collectApp(mgr *lxc.Manager, app *workload.App, groups []perf.Group, cfg *Config) ([][]float64, appReport, error) {
	var rep appReport

	width := 0
	for _, g := range groups {
		width += g.Size()
	}
	vectors := make([][]float64, cfg.Intervals)
	for i := range vectors {
		vectors[i] = make([]float64, width)
	}

	off := 0
	for b, g := range groups {
		samples, brep, err := collectBatch(mgr, app, b, g, cfg)
		rep.runs += brep.runs
		rep.retries += brep.retries
		rep.crashed += brep.crashed
		rep.salvaged += brep.salvaged
		if err != nil {
			return nil, rep, fmt.Errorf("batch %d/%d: %w", b, len(groups), err)
		}

		if samples == nil {
			// The batch stayed dead through the whole retry budget:
			// impute zeros for its event columns and account for it.
			rep.lostBatches = append(rep.lostBatches, b)
			rep.imputed += cfg.Intervals * g.Size()
			off += g.Size()
			continue
		}

		// Salvage: index surviving samples by interval, then fill every
		// interval, carrying the previous reading forward over holes
		// (standard last-observation-carried-forward for sensor gaps).
		byInterval := make(map[int][]uint64, len(samples))
		for _, s := range samples {
			byInterval[s.Interval] = s.Values
		}
		prev := make([]uint64, g.Size())
		for i := 0; i < cfg.Intervals; i++ {
			vals, ok := byInterval[i]
			if !ok {
				rep.dropped++
				vals = prev
			} else {
				prev = vals
			}
			for j, v := range vals {
				vectors[i][off+j] = float64(v)
			}
		}
		off += g.Size()
	}
	return vectors, rep, nil
}

// collectBatch runs one (app, batch) unit with bounded
// retry-with-backoff. It returns the surviving samples (possibly a
// salvaged partial prefix, flagged via appReport.salvaged), or nil
// samples with a nil error when the batch is unrecoverable, or an error
// for non-crash failures.
func collectBatch(mgr *lxc.Manager, app *workload.App, b int, g perf.Group, cfg *Config) ([]perf.Sample, appReport, error) {
	var rep appReport
	var salvage []perf.Sample

	attempts := 1 + cfg.MaxRetries
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			rep.retries++
			backoff(cfg.RetryBackoff, attempt)
		}
		rep.runs++

		var inj *faults.Injector
		if cfg.Faults != nil && cfg.Faults.Active() {
			// Scope includes the attempt so retries draw a fresh — but
			// still reproducible — fault schedule.
			inj = cfg.Faults.ForRun(fmt.Sprintf("%s/b%d/a%d", app.Name, b, attempt))
		}

		// A fresh Run per attempt replays the identical instruction
		// stream, so a retry observes the same program.
		run := app.NewRun(b)
		var samples []perf.Sample
		err := mgr.RunIsolatedInjected(run.MachineSeed(), injectorOrNil(inj), func(m *micro.Machine) error {
			var serr error
			samples, serr = perf.SampleRunInjected(m, run, g, cfg.Intervals, cfg.CycleBudget, perfInjectorOrNil(inj))
			return serr
		})
		if err == nil {
			return samples, rep, nil
		}
		if !crashed(err) {
			return nil, rep, fmt.Errorf("app %s batch %d attempt %d: %w", app.Name, b, attempt, err)
		}
		rep.crashed++
		if len(samples) > len(salvage) {
			salvage = samples
		}
	}

	if len(salvage) > 0 {
		rep.salvaged = 1
		return salvage, rep, nil
	}
	return nil, rep, nil
}

// injectorOrNil converts a possibly-nil *faults.Injector to the lxc
// interface without producing a non-nil interface holding a nil
// pointer.
func injectorOrNil(in *faults.Injector) lxc.Injector {
	if in == nil {
		return nil
	}
	return in
}

func perfInjectorOrNil(in *faults.Injector) perf.Injector {
	if in == nil {
		return nil
	}
	return in
}

// backoff sleeps the bounded exponential delay before retry `attempt`
// (1-based). A negative base disables sleeping for tests.
func backoff(base time.Duration, attempt int) {
	if base <= 0 {
		return
	}
	d := base << uint(attempt-1)
	if max := 50 * time.Millisecond; d > max {
		d = max
	}
	time.Sleep(d)
}
