// Package collect implements the paper's data-collection methodology
// end to end: every application in the corpus is executed once per
// event batch (11 batches x 4 counters = 44 events, so 11 runs per
// application), inside a fresh container that is destroyed after the
// run, sampling the four programmed counters every fixed interval. The
// per-batch interval samples are then assembled into full 44-event
// feature vectors, one per sampling interval, labelled with the
// application's class.
package collect

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dataset"
	"repro/internal/lxc"
	"repro/internal/micro"
	"repro/internal/perf"
	"repro/internal/workload"
)

// Config parameterises a collection pass.
type Config struct {
	Machine     micro.MachineConfig
	Suite       workload.SuiteConfig
	Events      []micro.EventID // defaults to the full 44-event list
	Intervals   int             // sampling intervals per run
	CycleBudget uint64          // simulated cycles per interval
	Parallelism int             // concurrent applications (0 = NumCPU)
}

// Default mirrors the paper-scale corpus: 120 applications, sampled
// over 30 intervals per run.
func Default() Config {
	return Config{
		Machine:     micro.DefaultConfig(),
		Suite:       workload.DefaultSuite(),
		Intervals:   30,
		CycleBudget: perf.DefaultCycleBudget,
	}
}

// Small is a reduced configuration for unit tests: fewer apps, shorter
// runs, a scaled-down machine.
func Small() Config {
	return Config{
		Machine:     micro.FastConfig(),
		Suite:       workload.SmallSuite(),
		Intervals:   8,
		CycleBudget: 8000,
	}
}

// Result carries the assembled dataset plus collection bookkeeping.
type Result struct {
	Data *dataset.Instances
	// RunsPerApp is the number of executions each application needed
	// (one per event batch), as dictated by the 4-register PMU.
	RunsPerApp int
	// Containers is the total number of containers created (and
	// destroyed) during the pass.
	Containers int
}

// Collect runs the full collection pass and assembles the dataset.
func Collect(cfg Config) (*Result, error) {
	events := cfg.Events
	if len(events) == 0 {
		events = micro.AllEvents()
	}
	if cfg.Intervals <= 0 {
		return nil, fmt.Errorf("collect: intervals must be positive")
	}
	if cfg.CycleBudget == 0 {
		cfg.CycleBudget = perf.DefaultCycleBudget
	}
	groups, err := perf.Batches(events)
	if err != nil {
		return nil, err
	}
	apps := workload.Suite(cfg.Suite)
	if len(apps) == 0 {
		return nil, fmt.Errorf("collect: empty application suite")
	}

	mgr := lxc.NewManager(cfg.Machine)

	// vectors[appIdx][interval][eventPos] assembled across batches.
	type appData struct {
		vectors [][]float64
		err     error
	}
	results := make([]appData, len(apps))

	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > len(apps) {
		par = len(apps)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ai := range work {
				results[ai].vectors, results[ai].err =
					collectApp(mgr, &apps[ai], groups, cfg.Intervals, cfg.CycleBudget)
			}
		}()
	}
	for ai := range apps {
		work <- ai
	}
	close(work)
	wg.Wait()

	if err := mgr.CheckClean(); err != nil {
		return nil, err
	}

	names := make([]string, len(events))
	for i, ev := range events {
		names[i] = ev.String()
	}
	data := dataset.New(names, dataset.BinaryClassNames())
	for ai, app := range apps {
		if results[ai].err != nil {
			return nil, fmt.Errorf("collect: app %s: %v", app.Name, results[ai].err)
		}
		y := 0
		if app.Class == workload.Malware {
			y = 1
		}
		for _, vec := range results[ai].vectors {
			if err := data.Add(vec, y, app.Name); err != nil {
				return nil, err
			}
		}
	}

	created, _ := mgr.Stats()
	return &Result{Data: data, RunsPerApp: len(groups), Containers: created}, nil
}

// collectApp performs the per-application collection: one isolated run
// per event batch, then assembles full vectors by interval index.
func collectApp(mgr *lxc.Manager, app *workload.App, groups []perf.Group, intervals int, budget uint64) ([][]float64, error) {
	width := 0
	for _, g := range groups {
		width += g.Size()
	}
	vectors := make([][]float64, intervals)
	for i := range vectors {
		vectors[i] = make([]float64, 0, width)
	}

	for b, g := range groups {
		run := app.NewRun(b)
		var samples []perf.Sample
		err := mgr.RunIsolated(run.MachineSeed(), func(m *micro.Machine) error {
			samples = perf.SampleRun(m, run, g, intervals, budget)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if len(samples) != intervals {
			return nil, fmt.Errorf("batch %d produced %d samples, want %d", b, len(samples), intervals)
		}
		for i, s := range samples {
			for _, v := range s.Values {
				vectors[i] = append(vectors[i], float64(v))
			}
		}
	}
	return vectors, nil
}
