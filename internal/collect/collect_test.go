package collect

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/micro"
	"repro/internal/workload"
)

func TestCollectSmall(t *testing.T) {
	res, err := Collect(Small())
	if err != nil {
		t.Fatal(err)
	}
	d := res.Data
	apps := workload.Suite(workload.SmallSuite())
	wantRows := len(apps) * Small().Intervals
	if d.NumRows() != wantRows {
		t.Fatalf("rows = %d, want %d", d.NumRows(), wantRows)
	}
	if d.NumAttrs() != int(micro.NumEvents) {
		t.Fatalf("attrs = %d, want %d", d.NumAttrs(), micro.NumEvents)
	}
	if res.RunsPerApp != 11 {
		t.Errorf("RunsPerApp = %d, want 11 (44 events / 4 registers)", res.RunsPerApp)
	}
	if res.Containers != len(apps)*11 {
		t.Errorf("containers = %d, want %d", res.Containers, len(apps)*11)
	}
	counts := d.ClassCounts()
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatal("collection must produce both classes")
	}

	// Sanity: instructions column should be positive everywhere, and
	// every attribute should be non-constant somewhere across rows.
	instrCol, ok := d.AttrIndex("instructions")
	if !ok {
		t.Fatal("instructions attribute missing")
	}
	for i := range d.X {
		if d.X[i][instrCol] <= 0 {
			t.Fatalf("row %d has non-positive instruction count", i)
		}
	}
	for j := range d.Attributes {
		first := d.X[0][j]
		varies := false
		for i := range d.X {
			if d.X[i][j] != first {
				varies = true
				break
			}
		}
		if !varies {
			t.Errorf("attribute %s is constant across the whole dataset", d.Attributes[j].Name)
		}
	}
}

func TestCollectDeterminism(t *testing.T) {
	cfg := Small()
	cfg.Suite.AppsPerFamily = 1
	cfg.Intervals = 4
	a, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Data.NumRows() != b.Data.NumRows() {
		t.Fatal("row counts differ")
	}
	for i := range a.Data.X {
		for j := range a.Data.X[i] {
			if a.Data.X[i][j] != b.Data.X[i][j] {
				t.Fatalf("value (%d,%d) differs between identical passes", i, j)
			}
		}
	}
}

func TestCollectParallelMatchesSerial(t *testing.T) {
	cfg := Small()
	cfg.Suite.AppsPerFamily = 1
	cfg.Intervals = 4

	serial := cfg
	serial.Parallelism = 1
	parallel := cfg
	parallel.Parallelism = 8

	a, err := Collect(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(parallel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data.X {
		if a.Data.Groups[i] != b.Data.Groups[i] {
			t.Fatal("row order differs between serial and parallel collection")
		}
		for j := range a.Data.X[i] {
			if a.Data.X[i][j] != b.Data.X[i][j] {
				t.Fatal("values differ between serial and parallel collection")
			}
		}
	}
}

// identicalData asserts two collection results are byte-identical:
// same rows, groups, values, and fault report.
func identicalData(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Data.NumRows() != b.Data.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", a.Data.NumRows(), b.Data.NumRows())
	}
	for i := range a.Data.X {
		if a.Data.Groups[i] != b.Data.Groups[i] {
			t.Fatalf("row %d group differs: %q vs %q", i, a.Data.Groups[i], b.Data.Groups[i])
		}
		if a.Data.Y[i] != b.Data.Y[i] {
			t.Fatalf("row %d label differs", i)
		}
		for j := range a.Data.X[i] {
			if a.Data.X[i][j] != b.Data.X[i][j] {
				t.Fatalf("value (%d,%d) differs: %v vs %v", i, j, a.Data.X[i][j], b.Data.X[i][j])
			}
		}
	}
	if !reportsEqual(a.Report, b.Report) {
		t.Fatalf("reports differ:\n  %v\n  %v", a.Report, b.Report)
	}
}

func reportsEqual(a, b Report) bool {
	if a.Runs != b.Runs || a.Retries != b.Retries || a.CrashedRuns != b.CrashedRuns ||
		a.LostBatches != b.LostBatches || a.SalvagedRuns != b.SalvagedRuns ||
		a.DroppedSamples != b.DroppedSamples || a.ImputedValues != b.ImputedValues {
		return false
	}
	if len(a.MissingEvents) != len(b.MissingEvents) {
		return false
	}
	for k, v := range a.MissingEvents {
		if b.MissingEvents[k] != v {
			return false
		}
	}
	return true
}

// TestCollectParallelDeterministicUnderFaults is the concurrency
// determinism guarantee: with fault injection active, a parallel pass
// must assemble a dataset byte-identical to the serial pass for the
// same seed, because injectors are scoped per (app, batch, attempt),
// never per goroutine.
func TestCollectParallelDeterministicUnderFaults(t *testing.T) {
	cfg := Small()
	cfg.Suite.AppsPerFamily = 1
	cfg.Intervals = 6
	cfg.Faults = &faults.Plan{Seed: 42, Rate: 0.2}
	cfg.RetryBackoff = -1 // no sleeping in tests

	serial := cfg
	serial.Parallelism = 1
	parallel := cfg
	parallel.Parallelism = 8

	a, err := Collect(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(parallel)
	if err != nil {
		t.Fatal(err)
	}
	identicalData(t, a, b)
	if !a.Report.Degraded() {
		t.Fatal("rate-0.2 all-kinds plan should have degraded the pass")
	}
}

// TestCollectRetryRecoversCrashes injects only whole-run crashes and
// checks that bounded retries recover every batch: the assembled
// dataset must equal the clean dataset exactly (crashes kill runs
// before or during sampling, and a retried run replays the identical
// deterministic stream).
func TestCollectRetryRecoversCrashes(t *testing.T) {
	cfg := Small()
	cfg.Suite.AppsPerFamily = 1
	cfg.Intervals = 4
	cfg.RetryBackoff = -1

	clean, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Faults = &faults.Plan{Seed: 7, Rate: 0.4, Kinds: []faults.Kind{faults.CrashRun}}
	cfg.MaxRetries = 8
	faulty, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if faulty.Report.CrashedRuns == 0 {
		t.Fatal("rate-0.4 crash plan should have crashed at least one run")
	}
	if faulty.Report.Retries == 0 {
		t.Fatal("crashed runs should have been retried")
	}
	if faulty.Report.LostBatches != 0 {
		t.Fatalf("8 retries at rate 0.4 should recover every batch; lost %d", faulty.Report.LostBatches)
	}
	// Mid-run crashes abort sampling, so recovery must come from a
	// clean retry — and a clean retry reproduces the clean data.
	for i := range clean.Data.X {
		for j := range clean.Data.X[i] {
			if clean.Data.X[i][j] != faulty.Data.X[i][j] {
				t.Fatalf("value (%d,%d): retried collection %v != clean %v",
					i, j, faulty.Data.X[i][j], clean.Data.X[i][j])
			}
		}
	}
	if faulty.Containers <= clean.Containers {
		t.Errorf("retries should create extra containers: %d <= %d", faulty.Containers, clean.Containers)
	}
}

// TestCollectSalvagesLostBatches drives the crash rate high enough that
// some batches exhaust their retries, and checks the pass still
// completes with imputation instead of failing.
func TestCollectSalvagesLostBatches(t *testing.T) {
	cfg := Small()
	cfg.Suite.AppsPerFamily = 1
	cfg.Intervals = 4
	cfg.RetryBackoff = -1
	cfg.Faults = &faults.Plan{Seed: 3, Rate: 0.95, Kinds: []faults.Kind{faults.CrashRun}}
	cfg.MaxRetries = 1

	res, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.LostBatches == 0 {
		t.Fatal("rate-0.95 crashes with 1 retry should lose batches")
	}
	if res.Report.ImputedValues == 0 {
		t.Fatal("lost batches must be accounted as imputed values")
	}
	if len(res.Report.MissingEvents) == 0 {
		t.Fatal("lost batches must name their missing events")
	}
	apps := workload.Suite(cfg.Suite)
	if res.Data.NumRows() != len(apps)*cfg.Intervals {
		t.Fatalf("degraded pass must still emit every row: got %d", res.Data.NumRows())
	}
}

func TestCollectEventSubset(t *testing.T) {
	cfg := Small()
	cfg.Suite.AppsPerFamily = 1
	cfg.Intervals = 3
	cfg.Events = []micro.EventID{micro.EvBranchInstructions, micro.EvInstructions}
	res, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data.NumAttrs() != 2 {
		t.Fatalf("attrs = %d, want 2", res.Data.NumAttrs())
	}
	if res.RunsPerApp != 1 {
		t.Errorf("2 events fit one batch; RunsPerApp = %d", res.RunsPerApp)
	}
}

func TestCollectBadConfig(t *testing.T) {
	cfg := Small()
	cfg.Intervals = 0
	if _, err := Collect(cfg); err == nil {
		t.Error("zero intervals should fail")
	}
	cfg = Small()
	cfg.Suite.AppsPerFamily = -1 // Suite treats <=0 as default, so force empty via events
	cfg.Events = []micro.EventID{micro.EventID(999)}
	if _, err := Collect(cfg); err == nil {
		t.Error("invalid event should fail")
	}
}

// TestLiveReportConcurrentScrape runs a faulty collection pass while a
// reader hammers the live report — the -race runs of this package are
// the real assertion — and checks the final live state equals the
// pass's own report.
func TestLiveReportConcurrentScrape(t *testing.T) {
	cfg := Small()
	cfg.Faults = &faults.Plan{Seed: 11, Rate: 0.3}
	cfg.RetryBackoff = -1
	cfg.Live = &LiveReport{}

	stop := make(chan struct{})
	scraped := make(chan int)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				scraped <- n
				return
			default:
				rep, apps := cfg.Live.Snapshot()
				_ = rep.Degraded()
				_ = apps
				n++
			}
		}
	}()

	res, err := Collect(cfg)
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	if n := <-scraped; n == 0 {
		t.Fatal("scraper never ran")
	}

	final, apps := cfg.Live.Snapshot()
	if apps != len(workload.Suite(cfg.Suite)) {
		t.Fatalf("live report saw %d apps, want %d", apps, len(workload.Suite(cfg.Suite)))
	}
	// The live report accumulates the same per-app accounting the final
	// Report merges, so the totals must agree exactly.
	if final.Runs != res.Report.Runs || final.Retries != res.Report.Retries ||
		final.CrashedRuns != res.Report.CrashedRuns || final.LostBatches != res.Report.LostBatches ||
		final.DroppedSamples != res.Report.DroppedSamples || final.ImputedValues != res.Report.ImputedValues {
		t.Fatalf("live report diverges from pass report:\nlive:  %v\nfinal: %v", final, res.Report)
	}
	if len(final.MissingEvents) != len(res.Report.MissingEvents) {
		t.Fatalf("missing-event maps diverge: %v vs %v", final.MissingEvents, res.Report.MissingEvents)
	}

	// Snapshot returns a copy: mutating it must not corrupt the source.
	snap, _ := cfg.Live.Snapshot()
	for k := range snap.MissingEvents {
		snap.MissingEvents[k] = -1
	}
	again, _ := cfg.Live.Snapshot()
	for k, v := range again.MissingEvents {
		if v < 0 {
			t.Fatalf("snapshot aliases the live map (event %s)", k)
		}
	}
}
