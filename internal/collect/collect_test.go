package collect

import (
	"testing"

	"repro/internal/micro"
	"repro/internal/workload"
)

func TestCollectSmall(t *testing.T) {
	res, err := Collect(Small())
	if err != nil {
		t.Fatal(err)
	}
	d := res.Data
	apps := workload.Suite(workload.SmallSuite())
	wantRows := len(apps) * Small().Intervals
	if d.NumRows() != wantRows {
		t.Fatalf("rows = %d, want %d", d.NumRows(), wantRows)
	}
	if d.NumAttrs() != int(micro.NumEvents) {
		t.Fatalf("attrs = %d, want %d", d.NumAttrs(), micro.NumEvents)
	}
	if res.RunsPerApp != 11 {
		t.Errorf("RunsPerApp = %d, want 11 (44 events / 4 registers)", res.RunsPerApp)
	}
	if res.Containers != len(apps)*11 {
		t.Errorf("containers = %d, want %d", res.Containers, len(apps)*11)
	}
	counts := d.ClassCounts()
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatal("collection must produce both classes")
	}

	// Sanity: instructions column should be positive everywhere, and
	// every attribute should be non-constant somewhere across rows.
	instrCol, ok := d.AttrIndex("instructions")
	if !ok {
		t.Fatal("instructions attribute missing")
	}
	for i := range d.X {
		if d.X[i][instrCol] <= 0 {
			t.Fatalf("row %d has non-positive instruction count", i)
		}
	}
	for j := range d.Attributes {
		first := d.X[0][j]
		varies := false
		for i := range d.X {
			if d.X[i][j] != first {
				varies = true
				break
			}
		}
		if !varies {
			t.Errorf("attribute %s is constant across the whole dataset", d.Attributes[j].Name)
		}
	}
}

func TestCollectDeterminism(t *testing.T) {
	cfg := Small()
	cfg.Suite.AppsPerFamily = 1
	cfg.Intervals = 4
	a, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Data.NumRows() != b.Data.NumRows() {
		t.Fatal("row counts differ")
	}
	for i := range a.Data.X {
		for j := range a.Data.X[i] {
			if a.Data.X[i][j] != b.Data.X[i][j] {
				t.Fatalf("value (%d,%d) differs between identical passes", i, j)
			}
		}
	}
}

func TestCollectParallelMatchesSerial(t *testing.T) {
	cfg := Small()
	cfg.Suite.AppsPerFamily = 1
	cfg.Intervals = 4

	serial := cfg
	serial.Parallelism = 1
	parallel := cfg
	parallel.Parallelism = 8

	a, err := Collect(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(parallel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data.X {
		if a.Data.Groups[i] != b.Data.Groups[i] {
			t.Fatal("row order differs between serial and parallel collection")
		}
		for j := range a.Data.X[i] {
			if a.Data.X[i][j] != b.Data.X[i][j] {
				t.Fatal("values differ between serial and parallel collection")
			}
		}
	}
}

func TestCollectEventSubset(t *testing.T) {
	cfg := Small()
	cfg.Suite.AppsPerFamily = 1
	cfg.Intervals = 3
	cfg.Events = []micro.EventID{micro.EvBranchInstructions, micro.EvInstructions}
	res, err := Collect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data.NumAttrs() != 2 {
		t.Fatalf("attrs = %d, want 2", res.Data.NumAttrs())
	}
	if res.RunsPerApp != 1 {
		t.Errorf("2 events fit one batch; RunsPerApp = %d", res.RunsPerApp)
	}
}

func TestCollectBadConfig(t *testing.T) {
	cfg := Small()
	cfg.Intervals = 0
	if _, err := Collect(cfg); err == nil {
		t.Error("zero intervals should fail")
	}
	cfg = Small()
	cfg.Suite.AppsPerFamily = -1 // Suite treats <=0 as default, so force empty via events
	cfg.Events = []micro.EventID{micro.EventID(999)}
	if _, err := Collect(cfg); err == nil {
		t.Error("invalid event should fail")
	}
}
