package supervise

import (
	"context"
	"sync"
)

// OverflowPolicy selects what a bounded stage queue does when a
// producer outruns its consumer.
type OverflowPolicy int

const (
	// Block applies backpressure: the producer waits for space. The
	// whole pipeline then advances at the slowest stage's pace and no
	// frame is ever lost to queueing. This is the deterministic policy.
	Block OverflowPolicy = iota
	// DropOldest sheds load: the oldest queued frame is discarded (and
	// counted) to admit the new one, keeping the monitor current at the
	// cost of holes that the inference stage repairs with prior-held
	// verdicts. Which frames drop depends on scheduling, so verdict
	// *scores* are not reproducible under this policy — only stream
	// completeness is.
	DropOldest
)

// String returns the policy's flag-friendly name.
func (p OverflowPolicy) String() string {
	if p == DropOldest {
		return "drop-oldest"
	}
	return "block"
}

// queue is a bounded FIFO of frames connecting two pipeline stages. All
// methods are safe for concurrent use; blocked producers and consumers
// are released by close and by wake (which the pipeline wires to
// context cancellation).
type queue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buf      []frame
	capacity int
	policy   OverflowPolicy
	drops    int
	closed   bool
}

func newQueue(capacity int, policy OverflowPolicy) *queue {
	if capacity <= 0 {
		capacity = 1
	}
	q := &queue{capacity: capacity, policy: policy}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// put enqueues f, applying the overflow policy when full. It returns
// ctx.Err() if the context is cancelled while blocked (or on entry).
func (q *queue) put(ctx context.Context, f frame) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.policy == Block && len(q.buf) >= q.capacity && !q.closed && ctx.Err() == nil {
		q.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if q.closed {
		// Producers close their own downstream queue, so this is a
		// programming error; treat it as a lost frame rather than a
		// crash.
		return nil
	}
	if len(q.buf) >= q.capacity {
		q.buf = q.buf[1:]
		q.drops++
	}
	q.buf = append(q.buf, f)
	q.cond.Broadcast()
	return nil
}

// get dequeues the next frame, blocking until one is available. ok is
// false when the queue is closed and drained, or the context is
// cancelled.
func (q *queue) get(ctx context.Context) (f frame, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 && !q.closed && ctx.Err() == nil {
		q.cond.Wait()
	}
	if ctx.Err() != nil || len(q.buf) == 0 {
		return frame{}, false
	}
	f = q.buf[0]
	q.buf = q.buf[1:]
	q.cond.Broadcast()
	return f, true
}

// close marks the producer side finished; blocked consumers drain the
// remaining frames and then receive ok=false.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// wake releases all blocked producers and consumers so they can observe
// context cancellation.
func (q *queue) wake() {
	q.mu.Lock()
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

func (q *queue) dropped() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.drops
}
