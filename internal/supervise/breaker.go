package supervise

import (
	"sync"
	"sync/atomic"
)

// BreakerConfig parameterises the circuit breaker guarding the sample
// source. All thresholds are counted in sampling intervals — never
// wall-clock time — so breaker behaviour is deterministic per seed.
type BreakerConfig struct {
	// FailAfter is how many consecutive source failures trip the
	// breaker open (<=0 means 3).
	FailAfter int
	// Cooldown is how many intervals the breaker stays open — serving
	// fallback-prior verdicts without touching the source — before a
	// half-open probe (<=0 means 8).
	Cooldown int
}

func (c BreakerConfig) failAfter() int {
	if c.FailAfter > 0 {
		return c.FailAfter
	}
	return 3
}

func (c BreakerConfig) cooldown() int {
	if c.Cooldown > 0 {
		return c.Cooldown
	}
	return 8
}

// BreakerSnapshot is the breaker's externally visible state.
type BreakerSnapshot struct {
	State      string
	Trips      int
	Recoveries int
	// LastError describes the failure that most recently counted
	// against the breaker ("" if none yet).
	LastError string
}

type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a classic closed → open → half-open circuit breaker around
// a sample source. A flapping PMU source trips it open after FailAfter
// consecutive failures; while open the caller emits lost frames (scored
// by the FallbackChain's prior) instead of hammering the dead source;
// after Cooldown intervals a single probe read decides between recovery
// and re-opening.
//
// The supervised Pipeline owns one per source; the fleet engine owns
// one per monitored stream. All methods are safe for concurrent use,
// though Allow must be called exactly once per sampling interval — it
// is what advances the open-state cooldown.
type Breaker struct {
	mu         sync.Mutex
	cfg        BreakerConfig
	state      breakerState
	fails      int // consecutive failures while closed
	wait       int // intervals left before the half-open probe
	trips      int
	recoveries int
	lastErr    error

	// calm is true while state == closed && fails == 0 — the steady
	// state of a healthy source, where Allow and OnSuccess have nothing
	// to mutate. It lets the per-interval hot path (a fleet engine calls
	// Allow + OnSuccess once per stream per 10 ms interval) skip the
	// mutex entirely: one atomic load each. Only mutated under mu.
	calm atomic.Bool
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	b := &Breaker{cfg: cfg}
	b.calm.Store(true)
	return b
}

// Allow reports whether the source may be read this interval. Call
// exactly once per interval: an open breaker burns one cooldown
// interval per call.
func (b *Breaker) Allow() bool {
	if b.calm.Load() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed, breakerHalfOpen:
		return true
	default: // open: burn one cooldown interval
		b.wait--
		if b.wait <= 0 {
			b.state = breakerHalfOpen
			return true
		}
		return false
	}
}

// OnSuccess records a successful source read, closing a half-open
// breaker.
func (b *Breaker) OnSuccess() {
	if b.calm.Load() {
		return // closed with no failures: nothing to reset
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.state = breakerClosed
		b.recoveries++
	}
	b.fails = 0
	b.calm.Store(b.state == breakerClosed)
}

// OnFailure records a failed source read (lost samples should not be
// reported — they are not source failures).
func (b *Breaker) OnFailure(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.calm.Store(false)
	b.lastErr = err
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: straight back to open.
		b.state = breakerOpen
		b.wait = b.cfg.cooldown()
		b.trips++
	case breakerClosed:
		b.fails++
		if b.fails >= b.cfg.failAfter() {
			b.state = breakerOpen
			b.wait = b.cfg.cooldown()
			b.trips++
		}
	}
}

// LastError returns the most recent failure counted against the
// breaker, with its full wrap chain intact (errors.Is works through
// it).
func (b *Breaker) LastError() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastErr
}

// Snapshot returns the breaker's externally visible state.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BreakerSnapshot{
		State:      b.state.String(),
		Trips:      b.trips,
		Recoveries: b.recoveries,
	}
	if b.lastErr != nil {
		s.LastError = b.lastErr.Error()
	}
	return s
}
