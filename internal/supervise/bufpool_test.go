package supervise

import "testing"

func TestBufferPoolRecycles(t *testing.T) {
	p := NewBufferPool(4, 2, false)
	a := p.Get()
	if len(a) != 4 {
		t.Fatalf("got width %d, want 4", len(a))
	}
	a[0] = 42
	p.Put(a)
	b := p.Get()
	if &b[0] != &a[0] {
		t.Fatal("pool did not recycle the returned buffer")
	}
}

func TestBufferPoolDropsForeignBuffers(t *testing.T) {
	p := NewBufferPool(4, 2, false)
	p.Put(make([]uint64, 2)) // undersized: must be dropped, not pooled
	b := p.Get()
	if len(b) != 4 {
		t.Fatalf("pool issued a %d-wide buffer after a foreign Put", len(b))
	}
}

func TestBufferPoolCapacityBound(t *testing.T) {
	p := NewBufferPool(2, 1, false)
	a, b := p.Get(), p.Get()
	p.Put(a)
	p.Put(b) // pool full: dropped silently
	_ = p.Get()
	select {
	case <-p.free:
		t.Fatal("pool grew past its capacity")
	default:
	}
}

func TestBufferPoolZeroAlloc(t *testing.T) {
	p := NewBufferPool(4, 2, false)
	b := p.Get()
	p.Put(b)
	if allocs := testing.AllocsPerRun(500, func() {
		buf := p.Get()
		p.Put(buf)
	}); allocs != 0 {
		t.Fatalf("Get/Put allocates %.1f times per cycle, want 0", allocs)
	}
}

func TestBufferPoolDebugDoublePutPanics(t *testing.T) {
	p := NewBufferPool(4, 4, true)
	b := p.Get()
	p.Put(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic in debug mode")
		}
	}()
	p.Put(b)
}

func TestBufferPoolDebugForeignPutPanics(t *testing.T) {
	p := NewBufferPool(4, 4, true)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign Put did not panic in debug mode")
		}
	}()
	p.Put(make([]uint64, 4))
}

func TestBufferPoolDebugPoisons(t *testing.T) {
	p := NewBufferPool(4, 4, true)
	b := p.Get()
	b[0], b[1] = 1, 2
	p.Put(b)
	for i, v := range b {
		if v != poisonValue {
			t.Fatalf("slot %d not poisoned after Put: %#x", i, v)
		}
	}
	if n := p.Outstanding(); n != 0 {
		t.Fatalf("outstanding = %d, want 0", n)
	}
}
