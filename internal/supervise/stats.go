package supervise

import "sync"

// Stage indices used by stats and the supervisor.
const (
	stageCollector = iota
	stageReducer
	stageInferrer
	numStages
)

var stageNames = [numStages]string{"collector", "reducer", "inferrer"}

// StageStats counts one stage's supervision events.
type StageStats struct {
	// Restarts is how many times the stage was torn down and relaunched
	// after a failure.
	Restarts int
	// Panics is how many of those failures were recovered panics.
	Panics int
	// DeadlineMisses is how many watchdog deadlines the stage blew.
	DeadlineMisses int
}

// Snapshot is a point-in-time view of the pipeline's health, cumulative
// across every Run of the pipeline. It is what hmd-serve's /stats
// endpoint returns.
type Snapshot struct {
	// Runs completed plus the one in flight, if any.
	Runs int
	// Intervals is the number of sampling intervals the collector has
	// handled (reads attempted, breaker-suppressed intervals included).
	Intervals int
	// Verdicts emitted; LostVerdicts of those were emitted by the
	// prior-holding ObserveLost path (dropped samples, open breaker,
	// frames shed by backpressure, crash gaps).
	Verdicts     int
	LostVerdicts int
	// SourceFailures counts failed source reads (crashes, boot
	// failures, stalls) — the events the breaker watches.
	SourceFailures int
	// BadFrames counts frames rejected by the reducer's width check.
	BadFrames int
	// QueueDrops is the number of frames shed by drop-oldest
	// backpressure across both queues.
	QueueDrops int
	// CollectDepth/InferDepth are the current queue depths; QueueCap is
	// their shared capacity.
	CollectDepth int
	InferDepth   int
	QueueCap     int
	// Per-stage supervision counters.
	Collector StageStats
	Reducer   StageStats
	Inferrer  StageStats
	// Breaker is the collector-source circuit breaker's state.
	Breaker BreakerSnapshot
	// CheckpointsWritten/CheckpointErrors account for periodic chain-
	// state checkpoints.
	CheckpointsWritten int
	CheckpointErrors   int
	// ActiveStage names the fallback-chain stage that scored the most
	// recent verdict ("" before the first one).
	ActiveStage string
	// ChainStages is the chain's stage count; CompiledStages of those
	// score through compiled programs (the rest run interpreted), and
	// QuantizedStages through the fixed-point quantized kernels (always
	// <= CompiledStages; nonzero only when the chain runs the quantized
	// tier).
	ChainStages     int
	CompiledStages  int
	QuantizedStages int
	// Tier names the chain's inference tier ("compiled", "quantized",
	// "interpreted") so operators can confirm which lowering scored the
	// verdicts.
	Tier string
}

// stats is the pipeline's mutable counter set. A plain mutex keeps it
// trivially race-free; every bump is far off the hot path relative to
// simulated interval execution.
type stats struct {
	mu   sync.Mutex
	snap Snapshot
}

func (s *stats) bump(f func(*Snapshot)) {
	s.mu.Lock()
	f(&s.snap)
	s.mu.Unlock()
}

func (s *stats) runStarted() { s.bump(func(sn *Snapshot) { sn.Runs++ }) }
func (s *stats) interval()   { s.bump(func(sn *Snapshot) { sn.Intervals++ }) }

func (s *stats) verdict(lost bool) {
	s.bump(func(sn *Snapshot) {
		sn.Verdicts++
		if lost {
			sn.LostVerdicts++
		}
	})
}

func (s *stats) sourceFailure() { s.bump(func(sn *Snapshot) { sn.SourceFailures++ }) }
func (s *stats) badFrame()      { s.bump(func(sn *Snapshot) { sn.BadFrames++ }) }

func (s *stats) stage(idx int) *StageStats {
	switch idx {
	case stageCollector:
		return &s.snap.Collector
	case stageReducer:
		return &s.snap.Reducer
	default:
		return &s.snap.Inferrer
	}
}

func (s *stats) restart(idx int, panicked bool) {
	s.mu.Lock()
	st := s.stage(idx)
	st.Restarts++
	if panicked {
		st.Panics++
	}
	s.mu.Unlock()
}

func (s *stats) deadlineMiss(idx int) {
	s.mu.Lock()
	s.stage(idx).DeadlineMisses++
	s.mu.Unlock()
}

func (s *stats) checkpoint(err error) {
	s.bump(func(sn *Snapshot) {
		if err != nil {
			sn.CheckpointErrors++
		} else {
			sn.CheckpointsWritten++
		}
	})
}

func (s *stats) setActiveStage(name string) {
	s.bump(func(sn *Snapshot) { sn.ActiveStage = name })
}

// snapshot copies the counters; the caller overlays live queue and
// breaker state.
func (s *stats) snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}
