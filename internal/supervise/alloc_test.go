package supervise

import (
	"context"
	"testing"

	"repro/internal/core"
)

// TestSamplePathZeroAlloc gates the steady-state sample path of the
// supervised service — one PMU read through MachineSource.ReadInto plus
// one FallbackChain.Observe — at zero heap allocations per interval.
// This is the per-sample work of the collector and inferrer stages; the
// surrounding supervision machinery (watchdog contexts, queue frames)
// is control plane, not per-sample data plane.
func TestSamplePathZeroAlloc(t *testing.T) {
	chain := testChain(t, core.ChainConfig{})
	src, err := NewMachineSource(machineSourceConfig(t, chain, 1<<20, nil))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	buf := make([]uint64, len(chain.Events()))
	interval := 0
	step := func() {
		vals, err := src.ReadInto(ctx, interval, buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := chain.Observe(vals); err != nil {
			t.Fatal(err)
		}
		interval++
	}
	step() // first read boots the machine session
	if allocs := testing.AllocsPerRun(300, step); allocs != 0 {
		t.Fatalf("sample path allocates %.1f times per interval, want 0", allocs)
	}
}
