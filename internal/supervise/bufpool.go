package supervise

import (
	"fmt"
	"sync"
)

// poisonValue is what debug-mode Put smears over a recycled buffer: any
// consumer still holding the slice after returning it reads values no
// healthy counter ever produces, so use-after-put corrupts loudly
// instead of silently.
const poisonValue = 0xDEADBEEFDEADBEEF

// BufferPool recycles fixed-width []uint64 sample buffers between the
// stage that finishes with a reading and the stage that fills the next
// one: with a BufferedSource the steady-state verdict loop allocates
// nothing per interval. The supervised Pipeline runs one pool per
// pipeline; the fleet engine runs one per shard.
//
// Get and Put are safe for concurrent use and allocation-free (Get
// allocates only when the pool is dry — start-up, or buffers stranded
// in shed frames, which simply fall to the GC). Put guards the pool's
// invariants: a buffer narrower than the pool's width (a foreign or
// resliced buffer that could corrupt a later reading) is dropped, and a
// full pool drops the excess rather than growing.
//
// Debug mode (NewBufferPool with debug=true) additionally tracks
// checked-out buffers so a double Put or a Put of a buffer the pool
// never issued panics at the offending call site, and poisons every
// returned buffer so use-after-put reads are unmistakable. Debug mode
// allocates on Get — it is for tests, not the serving path.
type BufferPool struct {
	width int
	free  chan []uint64

	debug bool
	mu    sync.Mutex
	out   map[*uint64]struct{} // debug: buffers currently checked out
}

// NewBufferPool builds a pool of width-sized buffers holding at most
// capacity spares.
func NewBufferPool(width, capacity int, debug bool) *BufferPool {
	if width < 1 {
		width = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	p := &BufferPool{
		width: width,
		free:  make(chan []uint64, capacity),
		debug: debug,
	}
	if debug {
		p.out = make(map[*uint64]struct{})
	}
	return p
}

// Width returns the buffer width the pool issues.
func (p *BufferPool) Width() int { return p.width }

// Get draws a buffer from the pool, allocating only when the pool is
// dry.
func (p *BufferPool) Get() []uint64 {
	var b []uint64
	select {
	case b = <-p.free:
	default:
		b = make([]uint64, p.width)
	}
	if p.debug {
		p.mu.Lock()
		p.out[&b[0]] = struct{}{}
		p.mu.Unlock()
	}
	return b
}

// Put returns a consumed buffer to the pool. Undersized (foreign)
// buffers are dropped by the capacity check; a full pool drops the
// buffer to the GC. In debug mode a double Put or a foreign buffer
// panics, and the buffer is poisoned before being recycled.
func (p *BufferPool) Put(b []uint64) {
	if cap(b) < p.width {
		if p.debug {
			panic(fmt.Sprintf("supervise: BufferPool.Put of foreign buffer (cap %d, pool width %d)", cap(b), p.width))
		}
		return
	}
	b = b[:p.width]
	if p.debug {
		p.mu.Lock()
		if _, ok := p.out[&b[0]]; !ok {
			p.mu.Unlock()
			panic("supervise: BufferPool.Put of a buffer not checked out (double put, or foreign buffer)")
		}
		delete(p.out, &b[0])
		p.mu.Unlock()
		for i := range b {
			b[i] = poisonValue
		}
	}
	select {
	case p.free <- b:
	default:
	}
}

// Outstanding reports, in debug mode, how many buffers are currently
// checked out; -1 when the pool is not in debug mode.
func (p *BufferPool) Outstanding() int {
	if !p.debug {
		return -1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.out)
}
