package supervise

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/faults"
	"repro/internal/lxc"
	"repro/internal/micro"
	"repro/internal/perf"
	"repro/internal/source"
	"repro/internal/workload"
)

// Source is the unified sample-feeder contract, defined in
// internal/source and aliased here so the pipeline API reads naturally.
// MachineSource (below), source.Synthetic, source.Replay and the
// network ingest plane's streams all implement it.
type Source = source.Source

// BufferedSource is the allocation-free Source extension (see
// internal/source): ReadInto fills a caller-provided buffer so the
// steady-state verdict loop recycles frames through a free list.
type BufferedSource = source.BufferedSource

// ErrSampleLost marks an interval whose reading was lost (dropped by
// the sampling infrastructure) rather than failed: the collector emits
// a lost frame and the interval is scored by the chain's hold-last
// path. Lost samples do not count against the circuit breaker. It is
// the same value as source.ErrSampleLost, so errors.Is matches either
// spelling.
var ErrSampleLost = source.ErrSampleLost

// MachineSourceConfig parameterises a MachineSource.
type MachineSourceConfig struct {
	// Machine is the simulated machine geometry each (re)boot starts
	// from.
	Machine micro.MachineConfig
	// Run is the monitored program; its instruction stream replays
	// identically across reboots.
	Run *workload.Run
	// Events are the PMU events to program, in the chain's order.
	Events []micro.EventID
	// Total is the number of intervals the monitoring run covers (the
	// crash-schedule horizon).
	Total int
	// CycleBudget is the simulated cycles per interval (0 = perf
	// default).
	CycleBudget uint64
	// Plan optionally injects faults; nil or inactive means a clean
	// source. Injection is deterministic in (Plan.Seed, Scope, boot
	// attempt) — never in wall-clock time or scheduling.
	Plan *faults.Plan
	// Scope keys the fault schedule (typically the monitored app's
	// name).
	Scope string
}

// sourceSession is one boot of the monitored machine: it lives until
// the fault plan kills it.
type sourceSession struct {
	mach    *micro.Machine
	ctr     *perf.Counters
	inj     *faults.Injector
	crashAt int // absolute interval the session dies at, or -1
}

// MachineSource samples a simulated machine running a workload, with
// the full fault model threaded through: boot failures, mid-run
// crashes, dropped samples, stuck/zero/noisy/saturated counters and
// interval jitter. After a crash the next Read attempts a fresh boot —
// each attempt draws its own deterministic fault schedule, so a source
// can flap (crash, reboot, crash again) exactly as a sick collection
// box does.
type MachineSource struct {
	cfg     MachineSourceConfig
	group   perf.Group
	attempt int
	sess    *sourceSession
}

// NewMachineSource validates the config and builds the source.
func NewMachineSource(cfg MachineSourceConfig) (*MachineSource, error) {
	if cfg.Run == nil {
		return nil, errors.New("supervise: machine source needs a workload run")
	}
	if cfg.Total <= 0 {
		return nil, errors.New("supervise: machine source needs a positive interval horizon")
	}
	group, err := perf.NewGroup(cfg.Events...)
	if err != nil {
		return nil, fmt.Errorf("supervise: programming source events: %w", err)
	}
	return &MachineSource{cfg: cfg, group: group}, nil
}

// Boots returns how many boot attempts the source has made.
func (s *MachineSource) Boots() int { return s.attempt }

// Read implements Source.
func (s *MachineSource) Read(ctx context.Context, interval int) ([]uint64, error) {
	return s.ReadInto(ctx, interval, make([]uint64, s.group.Size()))
}

// ReadInto implements BufferedSource: the counter deltas land in buf
// and the fault injector corrupts them in place, so a steady-state
// collection loop samples without per-interval allocations.
func (s *MachineSource) ReadInto(ctx context.Context, interval int, buf []uint64) ([]uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.sess == nil {
		if err := s.boot(interval); err != nil {
			return nil, err
		}
	}
	sess := s.sess
	if sess.crashAt >= 0 && interval >= sess.crashAt {
		s.sess = nil
		return nil, fmt.Errorf("supervise: source %s died at interval %d: %w",
			s.cfg.Scope, interval, perf.ErrRunCrashed)
	}
	budget := s.cfg.CycleBudget
	if budget == 0 {
		budget = perf.DefaultCycleBudget
	}
	if sess.inj != nil {
		budget = sess.inj.BudgetJitter(interval, budget)
	}
	params := s.cfg.Run.IntervalParams(interval)
	sess.mach.RunCycles(&params, budget)
	vals := sess.ctr.ReadDeltaInto(buf)
	if sess.inj != nil {
		if sess.inj.DropSample(interval) {
			return nil, fmt.Errorf("%w: interval %d", ErrSampleLost, interval)
		}
		sess.inj.TransformSample(interval, vals)
	}
	return vals, nil
}

// boot provisions a fresh machine session. The fault injector is scoped
// to (plan seed, source scope, attempt number), so every reboot draws a
// fresh but reproducible schedule.
func (s *MachineSource) boot(interval int) error {
	s.attempt++
	var inj *faults.Injector
	if s.cfg.Plan != nil && s.cfg.Plan.Active() {
		inj = s.cfg.Plan.ForRun(fmt.Sprintf("%s/serve/a%d", s.cfg.Scope, s.attempt))
		if inj.BootFails() {
			return fmt.Errorf("supervise: source %s boot attempt %d: %w",
				s.cfg.Scope, s.attempt, lxc.ErrCrashed)
		}
	}
	mach := micro.NewMachine(s.cfg.Machine, s.cfg.Run.MachineSeed())
	sess := &sourceSession{mach: mach, ctr: perf.Attach(mach, s.group), inj: inj, crashAt: -1}
	if inj != nil {
		if rel := inj.CrashInterval(s.cfg.Total - interval); rel >= 0 {
			sess.crashAt = interval + rel
		}
	}
	s.sess = sess
	return nil
}
