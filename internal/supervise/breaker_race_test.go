package supervise

import (
	"errors"
	"sync"
	"testing"
)

// TestBreakerConcurrentTripProbe hammers one breaker from many
// goroutines mixing Allow / OnSuccess / OnFailure — the shape of a
// breaker shared across shard goroutines — and checks the invariants
// that must hold regardless of interleaving: no torn state (the race
// detector's job), a snapshot that is always one of the three legal
// states, and trip/recovery counters that never go backwards.
//
// Run with -race; the schedule is nondeterministic by design, so the
// assertions are invariants, not exact counts.
func TestBreakerConcurrentTripProbe(t *testing.T) {
	// FailAfter 1: with a higher threshold, concurrent OnSuccess calls
	// can keep resetting the consecutive-failure count and whether the
	// breaker ever trips becomes a scheduling coin flip.
	br := NewBreaker(BreakerConfig{FailAfter: 1, Cooldown: 3})
	boom := errors.New("probe failed")

	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if br.Allow() {
					// Alternate success and failure per worker so the
					// breaker keeps crossing closed → open → half-open.
					if (i+w)%3 == 0 {
						br.OnFailure(boom)
					} else {
						br.OnSuccess()
					}
				}
				snap := br.Snapshot()
				switch snap.State {
				case "closed", "open", "half-open":
				default:
					t.Errorf("illegal breaker state %q", snap.State)
					return
				}
				if snap.Trips < 0 || snap.Recoveries < 0 {
					t.Errorf("negative counters: %+v", snap)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if err := br.LastError(); !errors.Is(err, boom) {
		t.Fatalf("LastError lost the wrap chain: %v", err)
	}
	snap := br.Snapshot()
	if snap.Trips == 0 {
		t.Fatal("breaker never tripped under concurrent failure load")
	}
}

// TestBreakerHalfOpenSingleRecovery drives the deterministic half-open
// cycle: trip, burn the cooldown, and confirm the probe's outcome moves
// the state exactly once per cycle even when OnSuccess is reported by
// multiple goroutines at once (only the first closes the breaker; the
// rest are no-ops on an already-closed breaker).
func TestBreakerHalfOpenSingleRecovery(t *testing.T) {
	br := NewBreaker(BreakerConfig{FailAfter: 1, Cooldown: 2})
	br.OnFailure(errors.New("trip"))
	if got := br.Snapshot().State; got != "open" {
		t.Fatalf("state %q after trip", got)
	}
	if br.Allow() {
		t.Fatal("open breaker allowed a read before cooldown elapsed")
	}
	if !br.Allow() {
		t.Fatal("cooldown elapsed but no half-open probe allowed")
	}
	if got := br.Snapshot().State; got != "half-open" {
		t.Fatalf("state %q during probe", got)
	}

	// A burst of concurrent success reports must record exactly one
	// recovery for this cycle.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			br.OnSuccess()
		}()
	}
	wg.Wait()
	snap := br.Snapshot()
	if snap.State != "closed" || snap.Recoveries != 1 {
		t.Fatalf("after concurrent probe success: %+v", snap)
	}

	// And a failed probe goes straight back to open, counting one trip.
	br.OnFailure(errors.New("trip again"))
	br.Allow()
	br.Allow() // cooldown 2: second Allow flips to half-open
	var wg2 sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			br.OnFailure(errors.New("probe failed"))
		}()
	}
	wg2.Wait()
	snap = br.Snapshot()
	if snap.State != "open" {
		t.Fatalf("failed probe left state %q", snap.State)
	}
	if snap.Trips < 2 {
		t.Fatalf("trips %d, want >= 2", snap.Trips)
	}
}
