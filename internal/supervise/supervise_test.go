package supervise

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/lxc"
	"repro/internal/micro"
	"repro/internal/perf"
	"repro/internal/workload"
)

// stubModel is a fixed-score classifier: enough to drive the chain
// without training anything.
type stubModel struct{ score float64 }

func (m stubModel) Distribution(x []float64) []float64 {
	return []float64{1 - m.score, m.score}
}

func (m stubModel) DistributionInto(x []float64, out []float64) {
	out[0], out[1] = 1-m.score, m.score
}

// testChain builds a 4HPC → 2HPC → prior chain from stub models.
func testChain(t *testing.T, cfg core.ChainConfig) *core.FallbackChain {
	t.Helper()
	evs := micro.AllEvents()
	d4 := &core.Detector{BaseName: "Stub", Events: evs[:4], Model: stubModel{score: 0.8}}
	d2 := &core.Detector{BaseName: "Stub", Events: evs[:2], Model: stubModel{score: 0.6}}
	if cfg.PriorScore == 0 {
		cfg.PriorScore = 0.3
	}
	chain, err := core.NewFallbackChain([]*core.Detector{d4, d2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return chain
}

func testPipeline(t *testing.T, cfg Config) *Pipeline {
	t.Helper()
	if cfg.Chain == nil {
		cfg.Chain = testChain(t, core.ChainConfig{Window: 3})
	}
	if cfg.RestartBackoff == 0 {
		cfg.RestartBackoff = -1 // no sleeping in tests
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// funcSource adapts a function to the Source interface.
type funcSource func(ctx context.Context, interval int) ([]uint64, error)

func (f funcSource) Read(ctx context.Context, interval int) ([]uint64, error) {
	return f(ctx, interval)
}

// liveValues is a healthy 4-counter reading: distinct per interval,
// never zero.
func liveValues(i int) []uint64 {
	base := uint64(1000 + 37*i)
	return []uint64{base, base + 101, base + 211, base + 307}
}

func healthySource() Source {
	return funcSource(func(_ context.Context, i int) ([]uint64, error) {
		return liveValues(i), nil
	})
}

// requireGapFree asserts the stream has exactly one verdict per
// interval, consecutively numbered from the first.
func requireGapFree(t *testing.T, verdicts []core.Verdict, want int) {
	t.Helper()
	if len(verdicts) != want {
		t.Fatalf("got %d verdicts, want %d", len(verdicts), want)
	}
	for i := 1; i < len(verdicts); i++ {
		if verdicts[i].Interval != verdicts[i-1].Interval+1 {
			t.Fatalf("gap in verdict stream: interval %d follows %d",
				verdicts[i].Interval, verdicts[i-1].Interval)
		}
	}
}

func TestCleanRunIsGapFree(t *testing.T) {
	p := testPipeline(t, Config{})
	verdicts, err := p.Run(context.Background(), healthySource(), 50)
	if err != nil {
		t.Fatal(err)
	}
	requireGapFree(t, verdicts, 50)
	st := p.Stats()
	if st.LostVerdicts != 0 || st.SourceFailures != 0 || st.Breaker.Trips != 0 {
		t.Fatalf("clean run reported degradation: %+v", st)
	}
	if st.Collector.Restarts+st.Reducer.Restarts+st.Inferrer.Restarts != 0 {
		t.Fatalf("clean run restarted stages: %+v", st)
	}
	if st.Verdicts != 50 || st.Intervals != 50 || st.Runs != 1 {
		t.Fatalf("counters off: %+v", st)
	}
}

func TestLostSamplesAreHeldNotDropped(t *testing.T) {
	p := testPipeline(t, Config{})
	src := funcSource(func(_ context.Context, i int) ([]uint64, error) {
		if i%3 == 1 {
			return nil, fmt.Errorf("%w: interval %d", ErrSampleLost, i)
		}
		return liveValues(i), nil
	})
	verdicts, err := p.Run(context.Background(), src, 30)
	if err != nil {
		t.Fatal(err)
	}
	requireGapFree(t, verdicts, 30)
	st := p.Stats()
	if st.LostVerdicts != 10 {
		t.Fatalf("lost verdicts %d, want 10", st.LostVerdicts)
	}
	// Lost samples are not failures: the breaker must not have moved.
	if st.SourceFailures != 0 || st.Breaker.Trips != 0 {
		t.Fatalf("lost samples counted as failures: %+v", st)
	}
}

// TestBreakerTripsAndRecovers drives the source through a dead episode:
// the breaker must trip open (stopping reads), probe, and recover —
// with the verdict stream complete throughout and the crash sentinel
// surviving every layer of wrapping.
func TestBreakerTripsAndRecovers(t *testing.T) {
	p := testPipeline(t, Config{Breaker: BreakerConfig{FailAfter: 2, Cooldown: 3}})
	reads := 0
	src := funcSource(func(_ context.Context, i int) ([]uint64, error) {
		reads++
		if i >= 10 && i < 20 {
			return nil, fmt.Errorf("source: boot: %w", lxc.ErrCrashed)
		}
		return liveValues(i), nil
	})
	verdicts, err := p.Run(context.Background(), src, 40)
	if err != nil {
		t.Fatal(err)
	}
	requireGapFree(t, verdicts, 40)

	st := p.Stats()
	if st.Breaker.Trips == 0 {
		t.Fatalf("breaker never tripped: %+v", st.Breaker)
	}
	if st.Breaker.Recoveries == 0 || st.Breaker.State != "closed" {
		t.Fatalf("breaker never recovered: %+v", st.Breaker)
	}
	// The breaker must have suppressed reads while open: strictly fewer
	// source calls than intervals.
	if reads >= 40 {
		t.Fatalf("breaker did not suppress reads: %d reads for 40 intervals", reads)
	}
	// errors.Is end-to-end: the sentinel survives the source wrap and
	// the supervision layer's bookkeeping.
	if !errors.Is(p.LastSourceError(), lxc.ErrCrashed) {
		t.Fatalf("lxc.ErrCrashed lost in wrapping: %v", p.LastSourceError())
	}
}

func TestRunCrashSentinelSurvivesWrapping(t *testing.T) {
	p := testPipeline(t, Config{Breaker: BreakerConfig{FailAfter: 1, Cooldown: 2}})
	src := funcSource(func(_ context.Context, i int) ([]uint64, error) {
		if i == 5 {
			return nil, fmt.Errorf("source: interval %d: %w", i, perf.ErrRunCrashed)
		}
		return liveValues(i), nil
	})
	verdicts, err := p.Run(context.Background(), src, 12)
	if err != nil {
		t.Fatal(err)
	}
	requireGapFree(t, verdicts, 12)
	if !errors.Is(p.LastSourceError(), perf.ErrRunCrashed) {
		t.Fatalf("perf.ErrRunCrashed lost in wrapping: %v", p.LastSourceError())
	}
}

func TestPanicBecomesRestartableStageFailure(t *testing.T) {
	p := testPipeline(t, Config{})
	fired := false
	p.testReduceHook = func(f *frame) {
		if f.interval == 7 && !fired {
			fired = true
			panic("injected reducer panic")
		}
	}
	verdicts, err := p.Run(context.Background(), healthySource(), 20)
	if err != nil {
		t.Fatal(err)
	}
	// The panicking iteration consumed interval 7's frame; the stream
	// must still be complete, with that interval held by the prior path.
	requireGapFree(t, verdicts, 20)
	st := p.Stats()
	if st.Reducer.Restarts != 1 || st.Reducer.Panics != 1 {
		t.Fatalf("reducer restarts=%d panics=%d, want 1/1", st.Reducer.Restarts, st.Reducer.Panics)
	}
	if st.LostVerdicts != 1 {
		t.Fatalf("lost verdicts %d, want exactly the panicked interval", st.LostVerdicts)
	}
}

func TestRestartBudgetExhaustionFailsPipeline(t *testing.T) {
	p := testPipeline(t, Config{RestartBudget: 3})
	p.testReduceHook = func(f *frame) {
		panic("deterministic reducer bug")
	}
	verdicts, err := p.Run(context.Background(), healthySource(), 50)
	if err == nil {
		t.Fatal("pipeline should fail once the restart budget is spent")
	}
	if !errors.Is(err, ErrStagePanic) {
		t.Fatalf("budget-exhaustion error hides the root cause: %v", err)
	}
	st := p.Stats()
	if st.Reducer.Restarts != 4 { // budget 3 + the final failed attempt
		t.Fatalf("reducer restarts %d, want 4", st.Reducer.Restarts)
	}
	_ = verdicts // partial stream is fine; the error is the contract here
}

func TestWatchdogConvertsStallIntoRestart(t *testing.T) {
	p := testPipeline(t, Config{StageDeadline: 20 * time.Millisecond})
	stalled := false
	src := funcSource(func(ctx context.Context, i int) ([]uint64, error) {
		if i == 5 && !stalled {
			stalled = true
			<-ctx.Done() // wedge until the watchdog fires
			return nil, ctx.Err()
		}
		return liveValues(i), nil
	})
	verdicts, err := p.Run(context.Background(), src, 15)
	if err != nil {
		t.Fatal(err)
	}
	requireGapFree(t, verdicts, 15)
	st := p.Stats()
	if st.Collector.DeadlineMisses != 1 || st.Collector.Restarts != 1 {
		t.Fatalf("watchdog stats: %+v", st.Collector)
	}
	if st.LostVerdicts != 1 {
		t.Fatalf("stalled interval not held: %d lost", st.LostVerdicts)
	}
}

// TestDropOldestShedsLoadButStreamStaysComplete jams the inferrer so
// bounded queues overflow under the drop-oldest policy: frames must be
// shed (and counted), yet the final stream still has one verdict per
// interval.
func TestDropOldestShedsLoadButStreamStaysComplete(t *testing.T) {
	const n = 40
	collectorDone := make(chan struct{})
	release := sync.OnceFunc(func() { close(collectorDone) })
	first := true

	p := testPipeline(t, Config{
		QueueCap: 2,
		Policy:   DropOldest,
		OnVerdict: func(core.Verdict) {
			if first {
				first = false
				<-collectorDone // jam inference until collection finishes
			}
		},
	})
	src := funcSource(func(_ context.Context, i int) ([]uint64, error) {
		if i == n-1 {
			release()
		}
		return liveValues(i), nil
	})
	verdicts, err := p.Run(context.Background(), src, n)
	if err != nil {
		t.Fatal(err)
	}
	requireGapFree(t, verdicts, n)
	st := p.Stats()
	if st.QueueDrops == 0 {
		t.Fatal("expected drop-oldest to shed frames")
	}
	if st.LostVerdicts == 0 {
		t.Fatal("shed frames must surface as held verdicts")
	}
}

func TestBlockPolicyNeverDrops(t *testing.T) {
	jam := make(chan struct{})
	release := sync.OnceFunc(func() { close(jam) })
	first := true
	p := testPipeline(t, Config{
		QueueCap: 2,
		Policy:   Block,
		OnVerdict: func(core.Verdict) {
			if first {
				first = false
				<-jam
			}
		},
	})
	src := funcSource(func(_ context.Context, i int) ([]uint64, error) {
		if i == 6 { // queues are saturated by now; unjam and finish
			release()
		}
		return liveValues(i), nil
	})
	verdicts, err := p.Run(context.Background(), src, 30)
	if err != nil {
		t.Fatal(err)
	}
	requireGapFree(t, verdicts, 30)
	st := p.Stats()
	if st.QueueDrops != 0 || st.LostVerdicts != 0 {
		t.Fatalf("block policy lost frames: %+v", st)
	}
}

func TestPeriodicCheckpointAndRestore(t *testing.T) {
	store, err := core.NewCheckpointStore(t.TempDir(), "state", core.ChainStateVersion)
	if err != nil {
		t.Fatal(err)
	}
	chain := testChain(t, core.ChainConfig{Window: 3})
	p := testPipeline(t, Config{Chain: chain, Checkpoint: store, CheckpointEvery: 4})
	if _, err := p.Run(context.Background(), healthySource(), 20); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().CheckpointsWritten; got != 5 {
		t.Fatalf("checkpoints written %d, want 5", got)
	}

	// A restarted process: fresh chain, same store.
	chain2 := testChain(t, core.ChainConfig{Window: 3})
	p2 := testPipeline(t, Config{Chain: chain2, Checkpoint: store})
	gen, quarantined, err := p2.RestoreState()
	if err != nil {
		t.Fatal(err)
	}
	if gen != 0 || len(quarantined) != 0 {
		t.Fatalf("gen=%d quarantined=%v", gen, quarantined)
	}
	if st := chain2.State(); st.Interval != 20 {
		t.Fatalf("restored interval %d, want 20", st.Interval)
	}
	// The resumed stream continues the global interval numbering.
	verdicts, err := p2.Run(context.Background(), healthySource(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if verdicts[0].Interval != 20 {
		t.Fatalf("resumed stream starts at %d, want 20", verdicts[0].Interval)
	}
}

func TestRestoreStateColdStart(t *testing.T) {
	store, err := core.NewCheckpointStore(t.TempDir(), "state", core.ChainStateVersion)
	if err != nil {
		t.Fatal(err)
	}
	p := testPipeline(t, Config{Checkpoint: store})
	if _, _, err := p.RestoreState(); !errors.Is(err, core.ErrNoCheckpoint) {
		t.Fatalf("cold start should report ErrNoCheckpoint, got %v", err)
	}
}

func TestCancellationStopsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := testPipeline(t, Config{})
	src := funcSource(func(_ context.Context, i int) ([]uint64, error) {
		if i == 10 {
			cancel()
		}
		return liveValues(i), nil
	})
	_, err := p.Run(ctx, src, 1000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Cancellation is not a stage failure.
	st := p.Stats()
	if st.Collector.Restarts+st.Reducer.Restarts+st.Inferrer.Restarts != 0 {
		t.Fatalf("cancellation restarted stages: %+v", st)
	}
}

func TestStatsScrapedConcurrently(t *testing.T) {
	p := testPipeline(t, Config{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = p.Stats()
		}
	}()
	verdicts, err := p.Run(context.Background(), healthySource(), 200)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	requireGapFree(t, verdicts, 200)
}

// machineSourceConfig builds a fault-injected MachineSource over a real
// simulated workload.
func machineSourceConfig(t *testing.T, chain *core.FallbackChain, total int, plan *faults.Plan) MachineSourceConfig {
	t.Helper()
	apps := workload.Suite(workload.SuiteConfig{Seed: 0xBEEF, AppsPerFamily: 1})
	app := apps[0]
	return MachineSourceConfig{
		Machine:     micro.FastConfig(),
		Run:         app.NewRun(0),
		Events:      chain.Events(),
		Total:       total,
		CycleBudget: 4000,
		Plan:        plan,
		Scope:       app.Name,
	}
}

// TestMachineSourceDeterministic is the reproducibility contract: two
// identical supervised runs over a faulty machine source produce
// identical verdict streams and identical breaker histories.
func TestMachineSourceDeterministic(t *testing.T) {
	const n = 60
	plan := &faults.Plan{Seed: 0xC0FFEE, Rate: 0.3}
	run := func() ([]core.Verdict, Snapshot) {
		chain := testChain(t, core.ChainConfig{Window: 3})
		p := testPipeline(t, Config{Chain: chain, Breaker: BreakerConfig{FailAfter: 2, Cooldown: 3}})
		src, err := NewMachineSource(machineSourceConfig(t, chain, n, plan))
		if err != nil {
			t.Fatal(err)
		}
		verdicts, err := p.Run(context.Background(), src, n)
		if err != nil {
			t.Fatal(err)
		}
		return verdicts, p.Stats()
	}
	va, sa := run()
	vb, sb := run()
	requireGapFree(t, va, n)
	if len(va) != len(vb) {
		t.Fatalf("stream lengths differ: %d vs %d", len(va), len(vb))
	}
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("verdict %d differs across identical seeds: %+v vs %+v", i, va[i], vb[i])
		}
	}
	if sa.Breaker.Trips != sb.Breaker.Trips || sa.LostVerdicts != sb.LostVerdicts ||
		sa.SourceFailures != sb.SourceFailures {
		t.Fatalf("stats differ across identical seeds:\n%+v\n%+v", sa, sb)
	}
}

func TestMachineSourceCleanMatchesPerfSampling(t *testing.T) {
	const n = 12
	chain := testChain(t, core.ChainConfig{Window: 3})
	cfg := machineSourceConfig(t, chain, n, nil)
	src, err := NewMachineSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the perf layer's own sampling of an identically seeded
	// run. (Run carries a stateful jitter RNG, so the reference needs its
	// own instance rather than sharing cfg.Run.)
	group, err := perf.NewGroup(cfg.Events...)
	if err != nil {
		t.Fatal(err)
	}
	refRun := workload.Suite(workload.SuiteConfig{Seed: 0xBEEF, AppsPerFamily: 1})[0].NewRun(0)
	mach := micro.NewMachine(cfg.Machine, refRun.MachineSeed())
	want := perf.SampleRun(mach, refRun, group, n, cfg.CycleBudget)

	for i := 0; i < n; i++ {
		got, err := src.Read(context.Background(), i)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != want[i].Values[j] {
				t.Fatalf("interval %d counter %d: %d != perf's %d", i, j, got[j], want[i].Values[j])
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil chain accepted")
	}
	p := testPipeline(t, Config{})
	if _, err := p.Run(context.Background(), nil, 10); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := p.Run(context.Background(), healthySource(), 0); err == nil {
		t.Fatal("zero intervals accepted")
	}
	if _, err := NewMachineSource(MachineSourceConfig{}); err == nil {
		t.Fatal("empty machine source config accepted")
	}
	// Group-validation sentinel survives the supervise wrap end-to-end.
	apps := workload.Suite(workload.SuiteConfig{Seed: 1, AppsPerFamily: 1})
	_, err := NewMachineSource(MachineSourceConfig{Run: apps[0].NewRun(0), Total: 10})
	if !errors.Is(err, perf.ErrBadGroup) {
		t.Fatalf("empty event list: %v, want perf.ErrBadGroup", err)
	}
}
