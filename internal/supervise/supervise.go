// Package supervise is the always-on runtime above the detection
// substrates: it runs sample collection → feature reduction → ensemble
// inference as independently restartable stages connected by bounded
// queues, and keeps the verdict stream gap-free — exactly one verdict
// per sampling interval — no matter what fails underneath.
//
// The supervision model, stage by stage:
//
//		source ──▶ [collector] ──q1──▶ [reducer] ──q2──▶ [inferrer] ──▶ verdicts
//		             │  ▲                                   │
//		          breaker │                            chain-state
//		             ▼  │                              checkpoints
//		           fallback-prior frames
//
//	  - Bounded queues with an explicit backpressure policy: Block (lossless,
//	    deterministic) or DropOldest (load-shedding, with a drop counter; the
//	    inferrer repairs the holes).
//	  - Every stage runs under a supervisor that converts panics into
//	    restartable failures and restarts the stage with exponential backoff
//	    under a bounded restart budget; a stage that keeps dying takes the
//	    pipeline down with its root cause intact (errors.Is sees through
//	    every wrap).
//	  - The collector's source reads run under a watchdog deadline
//	    (context propagation end-to-end); a wedged source is a stage
//	    failure, not a hang.
//	  - A circuit breaker guards the source: a flapping PMU trips it open
//	    after consecutive failures, verdicts route through the
//	    FallbackChain's prior until a half-open probe succeeds.
//	  - The chain's run-time state is periodically checkpointed through the
//	    crash-safe store so a process restart resumes, not cold-starts.
//
// Everything the supervisor counts — breaker cooldowns, restart
// budgets, checkpoint cadence — is denominated in sampling intervals,
// not wall-clock time, so a seeded fault plan reproduces the same
// verdict stream on every run (under the Block policy).
package supervise

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
)

// ErrStagePanic marks a stage failure that began as a recovered panic.
var ErrStagePanic = errors.New("supervise: stage panicked")

// frame is one sampling interval's unit of work flowing between stages.
type frame struct {
	interval int
	values   []uint64
	// lost marks an interval with no usable reading (dropped sample,
	// open breaker, failed read): the inferrer scores it via the
	// chain's hold-last path so the stream stays gap-free.
	lost bool
}

// Config parameterises a supervised pipeline.
type Config struct {
	// Chain produces the verdicts; its fallback stages and prior are
	// what lost intervals and dead counters degrade to.
	Chain *core.FallbackChain
	// QueueCap bounds each inter-stage queue (<=0 means 8).
	QueueCap int
	// Policy is the backpressure policy of both queues.
	Policy OverflowPolicy
	// StageDeadline is the watchdog budget for one source read (<=0
	// means 2s; it never fires with the in-process simulated source —
	// it exists for sources that can wedge).
	StageDeadline time.Duration
	// RestartBudget is how many restarts each stage gets per Run before
	// the pipeline fails (<=0 means 5).
	RestartBudget int
	// RestartBackoff is the base delay before a stage restart, doubling
	// per consecutive restart and capped at 100ms. Zero means 1ms;
	// negative disables sleeping (tests).
	RestartBackoff time.Duration
	// Breaker parameterises the collector-source circuit breaker.
	Breaker BreakerConfig
	// Checkpoint, when set, receives periodic chain-state checkpoints
	// (payload version core.ChainStateVersion).
	Checkpoint *core.CheckpointStore
	// CheckpointEvery is the number of verdicts between state
	// checkpoints (<=0 means 16).
	CheckpointEvery int
	// OnVerdict, when set, observes every verdict as it is emitted
	// (from the inferrer goroutine).
	OnVerdict func(core.Verdict)
}

func (c Config) queueCap() int {
	if c.QueueCap > 0 {
		return c.QueueCap
	}
	return 8
}

func (c Config) stageDeadline() time.Duration {
	if c.StageDeadline > 0 {
		return c.StageDeadline
	}
	return 2 * time.Second
}

func (c Config) restartBudget() int {
	if c.RestartBudget > 0 {
		return c.RestartBudget
	}
	return 5
}

func (c Config) checkpointEvery() int {
	if c.CheckpointEvery > 0 {
		return c.CheckpointEvery
	}
	return 16
}

// Pipeline is a supervised run-time detection service. It is reusable:
// successive Runs (one per monitored program) share the chain, the
// breaker state and the cumulative stats, exactly like a long-lived
// monitor hopping between processes. Stats may be read concurrently
// with a Run; Run itself must not be called concurrently.
type Pipeline struct {
	cfg   Config
	width int
	st    *stats
	br    *Breaker

	mu     sync.Mutex
	q1, q2 *queue

	// bufs recycles frame value buffers between the inferrer (which
	// finishes with them) and the collector (which fills them via
	// BufferedSource.ReadInto): with a buffered source the steady-state
	// verdict loop allocates nothing per interval. Buffers stranded in a
	// dropped or lost frame simply fall to the GC.
	bufs *BufferPool

	// testReduceHook, when set by white-box tests, sees every non-lost
	// frame inside the reducer stage (a handy place to panic on cue).
	testReduceHook func(*frame)
}

// New validates cfg and builds a pipeline.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Chain == nil {
		return nil, errors.New("supervise: config needs a fallback chain")
	}
	width := len(cfg.Chain.Events())
	return &Pipeline{
		cfg:   cfg,
		width: width,
		st:    &stats{},
		br:    NewBreaker(cfg.Breaker),
		bufs:  NewBufferPool(width, 2*cfg.queueCap()+4, false),
	}, nil
}

// Stats returns a point-in-time snapshot of the pipeline's health,
// cumulative across runs. Safe to call concurrently with Run — this is
// what a serving process scrapes.
func (p *Pipeline) Stats() Snapshot {
	snap := p.st.snapshot()
	snap.Breaker = p.br.Snapshot()
	snap.QueueCap = p.cfg.queueCap()
	snap.ChainStages = p.cfg.Chain.Stages()
	snap.CompiledStages = p.cfg.Chain.CompiledStages()
	snap.QuantizedStages = p.cfg.Chain.QuantizedStages()
	snap.Tier = p.cfg.Chain.Tier().String()
	p.mu.Lock()
	q1, q2 := p.q1, p.q2
	p.mu.Unlock()
	if q1 != nil {
		snap.CollectDepth = q1.depth()
		snap.QueueDrops += q1.dropped()
	}
	if q2 != nil {
		snap.InferDepth = q2.depth()
		snap.QueueDrops += q2.dropped()
	}
	return snap
}

// LastSourceError returns the most recent source failure counted
// against the breaker, wrap chain intact: errors.Is(err,
// lxc.ErrCrashed) and friends work through it.
func (p *Pipeline) LastSourceError() error { return p.br.LastError() }

// SaveState checkpoints the chain's current run-time state to the
// configured store. The inferrer calls it on its periodic cadence; a
// serving process may also call it at shutdown. Must not race with an
// active Run (between runs, or from OnVerdict, is safe).
func (p *Pipeline) SaveState() error {
	if p.cfg.Checkpoint == nil {
		return errors.New("supervise: no checkpoint store configured")
	}
	st := p.cfg.Chain.State()
	return p.cfg.Checkpoint.Save(func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(st)
	})
}

// RestoreState recovers the most recent good chain-state checkpoint
// into the chain, quarantining any torn generation it encounters on the
// way. Call before the first Run of a restarted process. A store with
// no usable checkpoint returns an error wrapping core.ErrNoCheckpoint —
// the caller starts cold, which is not a failure.
func (p *Pipeline) RestoreState() (gen int, quarantined []string, err error) {
	if p.cfg.Checkpoint == nil {
		return -1, nil, core.ErrNoCheckpoint
	}
	return p.cfg.Checkpoint.Recover(func(payload []byte) error {
		var st core.ChainState
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); derr != nil {
			return derr
		}
		return p.cfg.Chain.SetState(st)
	})
}

// Run monitors one program for the given number of intervals, returning
// its verdict stream: exactly one verdict per interval, in order,
// regardless of source crashes, stage panics or shed frames. The error
// is non-nil only when supervision itself gives up (a stage exhausted
// its restart budget, or ctx was cancelled); the verdicts produced up
// to that point are still returned.
func (p *Pipeline) Run(ctx context.Context, src Source, intervals int) ([]core.Verdict, error) {
	if src == nil {
		return nil, errors.New("supervise: nil source")
	}
	if intervals <= 0 {
		return nil, errors.New("supervise: intervals must be positive")
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	q1 := newQueue(p.cfg.queueCap(), p.cfg.Policy)
	q2 := newQueue(p.cfg.queueCap(), p.cfg.Policy)
	p.mu.Lock()
	p.q1, p.q2 = q1, q2
	p.mu.Unlock()
	// Cancellation must release stages blocked on queue waits.
	stopWake := context.AfterFunc(ctx, func() { q1.wake(); q2.wake() })
	defer stopWake()

	p.st.runStarted()

	verdicts := make([]core.Verdict, 0, intervals)
	bsrc, buffered := src.(BufferedSource)

	// ---- collector ----------------------------------------------------
	// Reads the source once per interval under the watchdog deadline,
	// consulting the breaker first. Emits exactly one frame per
	// interval. nextInterval survives restarts.
	nextInterval := 0
	collect := func() error {
		for nextInterval < intervals {
			i := nextInterval
			p.st.interval()
			f := frame{interval: i}
			if !p.br.Allow() {
				f.lost = true
			} else {
				rctx, rcancel := context.WithTimeout(ctx, p.cfg.stageDeadline())
				var vals []uint64
				var err error
				if buffered {
					buf := p.bufs.Get()
					vals, err = bsrc.ReadInto(rctx, i, buf)
					if err != nil {
						p.bufs.Put(buf)
					}
				} else {
					vals, err = src.Read(rctx, i)
				}
				rcancel()
				switch {
				case err == nil:
					p.br.OnSuccess()
					f.values = vals
				case errors.Is(err, ErrSampleLost):
					f.lost = true
				case ctx.Err() != nil:
					return ctx.Err()
				case errors.Is(err, context.DeadlineExceeded):
					// Watchdog: the source wedged past the stage
					// deadline. Emit the interval as lost, then fail the
					// stage so the supervisor restarts it.
					p.st.deadlineMiss(stageCollector)
					p.st.sourceFailure()
					p.br.OnFailure(err)
					f.lost = true
					nextInterval = i + 1
					if perr := q1.put(ctx, f); perr != nil {
						return perr
					}
					return fmt.Errorf("supervise: collector: source stalled past %v at interval %d: %w",
						p.cfg.stageDeadline(), i, err)
				default:
					p.st.sourceFailure()
					p.br.OnFailure(err)
					f.lost = true
				}
			}
			if err := q1.put(ctx, f); err != nil {
				return err
			}
			nextInterval = i + 1
		}
		q1.close()
		return nil
	}

	// ---- reducer ------------------------------------------------------
	// Validates frame width against the chain's programmed events (a
	// malformed reading becomes a lost interval, not a crash downstream)
	// and forwards. Restart-safe by construction: a frame consumed by a
	// failing iteration is simply absent downstream, and the inferrer
	// repairs the hole.
	reduce := func() error {
		for {
			f, ok := q1.get(ctx)
			if !ok {
				if err := ctx.Err(); err != nil {
					return err
				}
				q2.close()
				return nil
			}
			if !f.lost && len(f.values) != p.width {
				p.st.badFrame()
				f.values, f.lost = nil, true
			}
			if !f.lost && p.testReduceHook != nil {
				p.testReduceHook(&f)
			}
			if err := q2.put(ctx, f); err != nil {
				return err
			}
		}
	}

	// ---- inferrer -----------------------------------------------------
	// Feeds the chain and emits verdicts, repairing any hole in the
	// frame sequence with the chain's hold-last path so the stream is
	// gap-free by construction. done and sinceCkpt survive restarts.
	done := 0
	sinceCkpt := 0
	emit := func(v core.Verdict, lost bool) {
		verdicts = append(verdicts, v)
		p.st.verdict(lost)
		if p.cfg.OnVerdict != nil {
			p.cfg.OnVerdict(v)
		}
		sinceCkpt++
		if p.cfg.Checkpoint != nil && sinceCkpt >= p.cfg.checkpointEvery() {
			sinceCkpt = 0
			p.st.checkpoint(p.SaveState())
		}
	}
	infer := func() error {
		for {
			f, ok := q2.get(ctx)
			if !ok {
				if err := ctx.Err(); err != nil {
					return err
				}
				// Upstream finished; repair any shed tail.
				for done < intervals {
					emit(p.cfg.Chain.ObserveLost(), true)
					done++
				}
				return nil
			}
			if f.interval < done {
				if !f.lost {
					p.bufs.Put(f.values)
				}
				continue // stale frame from a pre-restart iteration
			}
			for done < f.interval {
				emit(p.cfg.Chain.ObserveLost(), true)
				done++
			}
			var v core.Verdict
			if f.lost {
				v = p.cfg.Chain.ObserveLost()
			} else {
				var err error
				v, err = p.cfg.Chain.Observe(f.values)
				if err != nil {
					return fmt.Errorf("supervise: inference at interval %d: %w", f.interval, err)
				}
				p.bufs.Put(f.values)
			}
			done++
			emit(v, f.lost)
			p.st.setActiveStage(p.cfg.Chain.StageName(p.cfg.Chain.ActiveStage()))
		}
	}

	// ---- supervision --------------------------------------------------
	var wg sync.WaitGroup
	errs := make([]error, numStages)
	start := func(idx int, fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.supervised(ctx, idx, fn); err != nil {
				errs[idx] = err
				cancel() // take the pipeline down with the failing stage
			}
		}()
	}
	start(stageCollector, collect)
	start(stageReducer, reduce)
	start(stageInferrer, infer)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return verdicts, err
		}
	}
	if err := parent.Err(); err != nil {
		return verdicts, err
	}
	return verdicts, nil
}

// supervised runs one stage under the restart policy: panics become
// errors, every failure is restarted with exponential backoff until the
// budget is spent, and cancellation is never treated as a failure.
func (p *Pipeline) supervised(ctx context.Context, idx int, fn func() error) error {
	restarts := 0
	for {
		err := runGuarded(fn)
		if err == nil || ctx.Err() != nil {
			return nil
		}
		panicked := errors.Is(err, ErrStagePanic)
		p.st.restart(idx, panicked)
		restarts++
		if restarts > p.cfg.restartBudget() {
			return fmt.Errorf("supervise: %s stage: restart budget (%d) exhausted: %w",
				stageNames[idx], p.cfg.restartBudget(), err)
		}
		backoffSleep(p.cfg.RestartBackoff, restarts)
	}
}

// runGuarded converts a stage panic into a restartable error.
func runGuarded(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrStagePanic, r)
		}
	}()
	return fn()
}

// backoffSleep sleeps the bounded exponential restart delay. base 0
// means 1ms; negative disables sleeping entirely (tests).
func backoffSleep(base time.Duration, attempt int) {
	if base < 0 {
		return
	}
	if base == 0 {
		base = time.Millisecond
	}
	d := base << uint(attempt-1)
	if max := 100 * time.Millisecond; d > max {
		d = max
	}
	time.Sleep(d)
}
