// Package source defines the one Source interface every stream feeder
// implements — the simulated machine (supervise.MachineSource), the
// synthetic benchmark generator, replayed traces, and the network
// ingest plane — so the supervised pipeline and the fleet engine
// consume samples through a single contract regardless of where the
// counter readings come from.
//
// The contract has three tiers:
//
//   - Source: one blocking-free Read per sampling interval.
//   - BufferedSource: the allocation-free extension — ReadInto fills a
//     caller-provided buffer so the steady-state verdict loop recycles
//     sample frames through a free list instead of allocating.
//   - Queued: the push-fed extension for sources whose samples arrive
//     asynchronously (network clients). A Queued source is only
//     harvested when it has a sample pending, so a client-paced stream
//     rides the wheel-paced fleet engine without fabricating readings,
//     and the engine can tell a quiet stream from a finished one.
package source

import (
	"context"
	"errors"
)

// Source produces one interval's raw counter readings for the chain's
// programmed events. Implementations must honour ctx cancellation — the
// collector's watchdog deadline arrives through it — and are only ever
// called from one goroutine at a time.
type Source interface {
	Read(ctx context.Context, interval int) ([]uint64, error)
}

// BufferedSource is an optional Source extension for allocation-free
// collection: ReadInto fills the caller-provided buffer (cap(buf) >=
// the chain's event width) and returns it resliced, instead of
// allocating a fresh reading per interval. The pipeline detects the
// interface and recycles frame buffers through a free list; sources
// that cannot reuse buffers just implement Read.
type BufferedSource interface {
	Source
	ReadInto(ctx context.Context, interval int, buf []uint64) ([]uint64, error)
}

// Queued is the optional extension for push-fed sources: samples are
// produced by an external writer (a network client) and buffered until
// the engine pulls them. The fleet wheel consults Pending before
// harvesting — a Queued stream with nothing buffered is simply not due
// yet, rather than a failed read — and uses Closed to finish the stream
// once the writer is done and the buffer has drained. Pending and
// Closed must be safe to call concurrently with Read/ReadInto.
type Queued interface {
	Source
	// Pending reports how many samples are buffered and ready to read.
	Pending() int
	// Closed reports that no further samples will ever arrive (the
	// writer hung up); buffered samples may still be pending.
	Closed() bool
}

// ErrSampleLost marks an interval whose reading was lost (dropped by
// the sampling infrastructure) rather than failed: the collector emits
// a lost frame and the interval is scored by the chain's hold-last
// path. Lost samples do not count against the circuit breaker.
var ErrSampleLost = errors.New("supervise: sample lost")

// Synthetic is a deterministic, allocation-free sample source for
// benchmarks and engine tests: a cheap xorshift stream of plausible
// healthy counter readings (never zero, never repeating, so a fallback
// chain stays on its primary stage). The point is to make engine
// overhead — not simulated microarchitecture — dominate what a serving
// benchmark measures. Two sources built with the same seed produce the
// same reading sequence, which is what lets a fleet run be compared
// verdict-for-verdict against independent pipelines, and a network
// stream be replayed bit-identically by its client.
type Synthetic struct {
	width int
	state uint64
}

// NewSynthetic builds a source emitting width-wide readings.
func NewSynthetic(seed uint64, width int) *Synthetic {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	if width < 1 {
		width = 1
	}
	return &Synthetic{width: width, state: seed}
}

// Read implements Source.
func (s *Synthetic) Read(ctx context.Context, interval int) ([]uint64, error) {
	return s.ReadInto(ctx, interval, make([]uint64, s.width))
}

// ReadInto implements BufferedSource: the reading lands in buf with no
// allocation.
func (s *Synthetic) ReadInto(ctx context.Context, interval int, buf []uint64) ([]uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cap(buf) < s.width {
		buf = make([]uint64, s.width)
	}
	buf = buf[:s.width]
	x := s.state
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = 1_000 + x%99_991
	}
	s.state = x
	return buf, nil
}

// Replay plays back a recorded trace of counter readings, one reading
// per interval, in order. Past the end of the trace it reports
// ErrSampleLost (the recording simply stopped), which the serving
// layers score through the hold-last path. A Replay source is how an
// offline-captured incident is re-served through the exact same
// pipeline that handled it live.
type Replay struct {
	trace [][]uint64
	next  int
}

// NewReplay builds a source over the recorded trace. The trace is
// aliased, not copied; the caller must not mutate it afterwards.
func NewReplay(trace [][]uint64) *Replay {
	return &Replay{trace: trace}
}

// Len returns the trace length in intervals.
func (r *Replay) Len() int { return len(r.trace) }

// Read implements Source.
func (r *Replay) Read(ctx context.Context, interval int) ([]uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if r.next >= len(r.trace) {
		return nil, ErrSampleLost
	}
	v := r.trace[r.next]
	r.next++
	return v, nil
}

// ReadInto implements BufferedSource.
func (r *Replay) ReadInto(ctx context.Context, interval int, buf []uint64) ([]uint64, error) {
	v, err := r.Read(ctx, interval)
	if err != nil {
		return nil, err
	}
	if cap(buf) < len(v) {
		buf = make([]uint64, len(v))
	}
	buf = buf[:len(v)]
	copy(buf, v)
	return buf, nil
}
