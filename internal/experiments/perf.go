package experiments

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/mlearn/ensemble"
	"repro/internal/mlearn/persist"
	"repro/internal/mlearn/zoo"
)

// The perf experiment benchmarks the throughput engine against the
// pre-engine baseline on the same corpus and seed:
//
//   - Training: the tree-family detector grid (J48/REPTree x all HPC
//     budgets x all variants) trained with the legacy per-node-sort
//     split search vs the sorted-index engine, sequential and parallel.
//   - Determinism: the engine's sequential and parallel runs must agree
//     bit for bit — identical held-out metrics and identical serialized
//     model bytes (what a checkpoint would persist).
//   - Inference: the per-sample verdict path — the legacy shape
//     (fresh feature vector + allocating Distribution + append/trim
//     window) vs the chain's zero-allocation Observe loop.

// PerfCell is one trained detector's held-out result in the perf grid.
type PerfCell struct {
	Label string
	Acc   float64
	AUC   float64
}

// PerfTrain is the training half of the perf report.
type PerfTrain struct {
	Detectors int
	Workers   int
	// Wall-clock training time (ms) for the whole grid under each engine.
	BaselineMillis  float64 // legacy split search, sequential
	EngineSeqMillis float64 // sorted-index, Workers=1
	EngineParMillis float64 // sorted-index, Workers=GOMAXPROCS
	// SpeedupX is baseline wall time over the parallel engine's.
	SpeedupX float64
	// MetricsIdentical / ModelsIdentical compare the engine's
	// sequential vs parallel runs: held-out accuracy/AUC and the
	// persist-serialized model bytes must match exactly.
	MetricsIdentical bool
	ModelsIdentical  bool
	Cells            []PerfCell
}

// PerfCV times k-fold cross-validation sequential vs parallel on one
// representative trainer and checks the results agree exactly.
type PerfCV struct {
	Folds            int
	SeqMillis        float64
	ParMillis        float64
	ResultsIdentical bool
}

// PerfInference is the per-sample verdict-path half of the report.
type PerfInference struct {
	Samples int
	// Baseline: the pre-engine loop shape (fresh vector + allocating
	// Distribution + append/trim window).
	BaselineNsPerOp     float64
	BaselineAllocsPerOp float64
	// Fast: FallbackChain.Observe with scratch buffers threaded through.
	FastNsPerOp     float64
	FastAllocsPerOp float64
	// SpeedupX is baseline ns/op over fast ns/op; AllocReductionX is
	// baseline allocs/op over fast allocs/op (floored at 1 alloc/op so
	// a zero-allocation fast path yields a finite ratio).
	SpeedupX        float64
	AllocReductionX float64
}

// PerfReport is the full throughput-engine benchmark, serialized to
// BENCH_PERF.json by hmd-bench -exp perf.
type PerfReport struct {
	Train     PerfTrain
	CV        PerfCV
	Inference PerfInference
}

// perfGridJobs is the tree-family grid the training benchmark trains:
// the sorted-index engine only changes J48/REPTree, so the other
// classifiers would just dilute the measurement.
func perfGridJobs() []struct {
	name    string
	hpcs    int
	variant zoo.Variant
} {
	type job = struct {
		name    string
		hpcs    int
		variant zoo.Variant
	}
	var jobs []job
	for _, name := range []string{"J48", "REPTree"} {
		for _, hpcs := range HPCCounts {
			for _, v := range []zoo.Variant{zoo.General, zoo.Boosted, zoo.Bagged} {
				jobs = append(jobs, job{name, hpcs, v})
			}
		}
	}
	return jobs
}

// perfGrid trains the tree-family grid under the given engine settings,
// returning the Build wall time, the held-out metrics and the
// persist-serialized bytes of every model (evaluation and serialization
// happen outside the timed section).
func (ctx *Context) perfGrid(legacy bool, workers int) (time.Duration, []PerfCell, [][]byte, error) {
	b := ctx.Builder
	savedLegacy, savedWorkers := b.LegacySplit, b.Workers
	b.LegacySplit, b.Workers = legacy, workers
	defer func() { b.LegacySplit, b.Workers = savedLegacy, savedWorkers }()

	jobs := perfGridJobs()
	dets := make([]*core.Detector, len(jobs))
	var elapsed time.Duration
	for i, j := range jobs {
		start := time.Now()
		det, err := b.Build(j.name, j.variant, j.hpcs)
		elapsed += time.Since(start)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("perf grid %s/%s/%d: %w", j.name, j.variant, j.hpcs, err)
		}
		dets[i] = det
	}

	cells := make([]PerfCell, len(jobs))
	blobs := make([][]byte, len(jobs))
	for i, det := range dets {
		res, err := b.Evaluate(det)
		if err != nil {
			return 0, nil, nil, err
		}
		cells[i] = PerfCell{Label: det.Name(), Acc: res.Accuracy, AUC: res.AUC}
		var buf bytes.Buffer
		if err := persist.Save(&buf, det.Model); err != nil {
			return 0, nil, nil, err
		}
		blobs[i] = buf.Bytes()
	}
	return elapsed, cells, blobs, nil
}

// Perf runs the full throughput-engine benchmark on the context's
// corpus and returns the report.
func (ctx *Context) Perf() (*PerfReport, error) {
	rep := &PerfReport{}

	// ---- training grid ------------------------------------------------
	baseMs, _, _, err := ctx.perfGrid(true, 1)
	if err != nil {
		return nil, err
	}
	seqMs, seqCells, seqBlobs, err := ctx.perfGrid(false, 1)
	if err != nil {
		return nil, err
	}
	workers := runtime.GOMAXPROCS(0)
	parMs, parCells, parBlobs, err := ctx.perfGrid(false, workers)
	if err != nil {
		return nil, err
	}

	rep.Train = PerfTrain{
		Detectors:        len(seqCells),
		Workers:          workers,
		BaselineMillis:   float64(baseMs.Microseconds()) / 1e3,
		EngineSeqMillis:  float64(seqMs.Microseconds()) / 1e3,
		EngineParMillis:  float64(parMs.Microseconds()) / 1e3,
		SpeedupX:         float64(baseMs) / float64(parMs),
		MetricsIdentical: true,
		ModelsIdentical:  true,
		Cells:            parCells,
	}
	for i := range seqCells {
		if seqCells[i] != parCells[i] {
			rep.Train.MetricsIdentical = false
		}
		if !bytes.Equal(seqBlobs[i], parBlobs[i]) {
			rep.Train.ModelsIdentical = false
		}
	}

	// ---- cross-validation ---------------------------------------------
	cvData, err := ctx.Builder.Train().Select([]int{0, 1, 2, 3})
	if err != nil {
		return nil, err
	}
	cvTrainer, err := zoo.NewVariantOpts("REPTree", zoo.Boosted, zoo.Options{Seed: 7})
	if err != nil {
		return nil, err
	}
	const folds = 5
	start := time.Now()
	cvSeq, err := eval.CrossValidateWorkers(cvTrainer, cvData, folds, 7, 1)
	cvSeqDur := time.Since(start)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	cvPar, err := eval.CrossValidateWorkers(cvTrainer, cvData, folds, 7, workers)
	cvParDur := time.Since(start)
	if err != nil {
		return nil, err
	}
	rep.CV = PerfCV{
		Folds:            folds,
		SeqMillis:        float64(cvSeqDur.Microseconds()) / 1e3,
		ParMillis:        float64(cvParDur.Microseconds()) / 1e3,
		ResultsIdentical: cvResultsEqual(cvSeq, cvPar),
	}

	// ---- per-sample inference path ------------------------------------
	inf, err := ctx.perfInference()
	if err != nil {
		return nil, err
	}
	rep.Inference = *inf
	return rep, nil
}

func cvResultsEqual(a, b eval.CVResult) bool {
	if len(a.Folds) != len(b.Folds) {
		return false
	}
	for i := range a.Folds {
		if a.Folds[i] != b.Folds[i] {
			return false
		}
	}
	return true
}

// perfInference benchmarks the steady-state verdict path: the legacy
// per-sample shape vs the chain's zero-allocation Observe loop, over
// the same sample stream.
func (ctx *Context) perfInference() (*PerfInference, error) {
	chain, err := ctx.Builder.BuildChain("BayesNet", zoo.Bagged, []int{4, 2}, core.ChainConfig{})
	if err != nil {
		return nil, err
	}
	det, _, err := ctx.Detector("BayesNet", zoo.Bagged, 4)
	if err != nil {
		return nil, err
	}
	testK, err := ctx.Builder.TestFor(det)
	if err != nil {
		return nil, err
	}
	rows := testK.NumRows()
	if rows == 0 {
		return nil, fmt.Errorf("perf: empty held-out split")
	}
	if rows > 256 {
		rows = 256
	}
	stream := make([][]uint64, rows)
	for i := 0; i < rows; i++ {
		vals := make([]uint64, len(testK.X[i]))
		for j, v := range testK.X[i] {
			if v > 0 {
				vals[j] = uint64(v)
			}
		}
		stream[i] = vals
	}

	const iters = 20000
	const window = 5

	bag, ok := det.Model.(*ensemble.BaggedModel)
	if !ok {
		return nil, fmt.Errorf("perf: expected a bagged model, got %T", det.Model)
	}

	// Legacy loop shape — what the verdict path did before the
	// throughput engine: a fresh feature vector per sample, a fresh
	// vote accumulator, one allocating Distribution call per base
	// model, and an append/trim score window.
	baseline := func() {
		var hist []float64
		for n := 0; n < iters; n++ {
			values := stream[n%len(stream)]
			x := make([]float64, len(values))
			for j, v := range values {
				x[j] = float64(v)
			}
			avg := make([]float64, bag.NumClasses)
			for _, base := range bag.Models {
				d := base.Distribution(x)
				for c := 0; c < len(avg) && c < len(d); c++ {
					avg[c] += d[c]
				}
			}
			for c := range avg {
				avg[c] /= float64(len(bag.Models))
			}
			hist = append(hist, avg[1])
			if len(hist) > window {
				hist = hist[1:]
			}
			mean := 0.0
			for _, h := range hist {
				mean += h
			}
			mean /= float64(len(hist))
			_ = mean
		}
	}
	fast := func() error {
		for n := 0; n < iters; n++ {
			if _, err := chain.Observe(stream[n%len(stream)]); err != nil {
				return err
			}
		}
		return nil
	}

	// Warm up both paths (model scratch sizing, chain health state),
	// then measure time and cumulative mallocs per loop.
	baseline()
	if err := fast(); err != nil {
		return nil, err
	}
	chain.Reset()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	baseline()
	baseDur := time.Since(start)
	runtime.ReadMemStats(&after)
	baseAllocs := float64(after.Mallocs-before.Mallocs) / iters

	chain.Reset()
	runtime.GC()
	runtime.ReadMemStats(&before)
	start = time.Now()
	if err := fast(); err != nil {
		return nil, err
	}
	fastDur := time.Since(start)
	runtime.ReadMemStats(&after)
	fastAllocs := float64(after.Mallocs-before.Mallocs) / iters

	return &PerfInference{
		Samples:             iters,
		BaselineNsPerOp:     float64(baseDur.Nanoseconds()) / iters,
		BaselineAllocsPerOp: baseAllocs,
		FastNsPerOp:         float64(fastDur.Nanoseconds()) / iters,
		FastAllocsPerOp:     fastAllocs,
		SpeedupX:            float64(baseDur) / float64(fastDur),
		AllocReductionX:     baseAllocs / math.Max(fastAllocs, 1),
	}, nil
}

// RenderPerf formats the perf report for the console.
func RenderPerf(r *PerfReport) string {
	var sb strings.Builder
	sb.WriteString("Throughput engine benchmark\n")
	fmt.Fprintf(&sb, "  training grid (%d tree-family detectors, %d workers):\n",
		r.Train.Detectors, r.Train.Workers)
	fmt.Fprintf(&sb, "    legacy split search      %10.1f ms\n", r.Train.BaselineMillis)
	fmt.Fprintf(&sb, "    sorted-index, sequential %10.1f ms\n", r.Train.EngineSeqMillis)
	fmt.Fprintf(&sb, "    sorted-index, parallel   %10.1f ms   (%.2fx vs legacy)\n",
		r.Train.EngineParMillis, r.Train.SpeedupX)
	fmt.Fprintf(&sb, "    seq vs par: metrics identical=%v, model bytes identical=%v\n",
		r.Train.MetricsIdentical, r.Train.ModelsIdentical)
	fmt.Fprintf(&sb, "  %d-fold CV: seq %.1f ms, par %.1f ms, identical=%v\n",
		r.CV.Folds, r.CV.SeqMillis, r.CV.ParMillis, r.CV.ResultsIdentical)
	fmt.Fprintf(&sb, "  verdict path (%d samples):\n", r.Inference.Samples)
	fmt.Fprintf(&sb, "    legacy loop  %8.0f ns/op  %6.1f allocs/op\n",
		r.Inference.BaselineNsPerOp, r.Inference.BaselineAllocsPerOp)
	fmt.Fprintf(&sb, "    chain loop   %8.0f ns/op  %6.1f allocs/op   (%.1fx faster, %.0fx fewer allocs)\n",
		r.Inference.FastNsPerOp, r.Inference.FastAllocsPerOp,
		r.Inference.SpeedupX, r.Inference.AllocReductionX)
	return sb.String()
}
