package experiments

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fleet"
	"repro/internal/source"
	"repro/internal/mlearn/ensemble"
	"repro/internal/mlearn/persist"
	"repro/internal/mlearn/zoo"
	"repro/internal/supervise"
)

// The perf experiment benchmarks the throughput engine against the
// pre-engine baseline on the same corpus and seed:
//
//   - Training: the tree-family detector grid (J48/REPTree x all HPC
//     budgets x all variants) trained with the legacy per-node-sort
//     split search vs the sorted-index engine, sequential and parallel.
//   - Determinism: the engine's sequential and parallel runs must agree
//     bit for bit — identical held-out metrics and identical serialized
//     model bytes (what a checkpoint would persist).
//   - Inference: the per-sample verdict path — the legacy shape
//     (fresh feature vector + allocating Distribution + append/trim
//     window) vs the chain's zero-allocation Observe loop.

// PerfCell is one trained detector's held-out result in the perf grid.
type PerfCell struct {
	Label string
	Acc   float64
	AUC   float64
}

// PerfTrain is the training half of the perf report.
type PerfTrain struct {
	Detectors int
	Workers   int
	// Wall-clock training time (ms) for the whole grid under each engine.
	BaselineMillis  float64 // legacy split search, sequential
	EngineSeqMillis float64 // sorted-index, Workers=1
	EngineParMillis float64 // sorted-index, Workers=GOMAXPROCS
	// SpeedupX is baseline wall time over the parallel engine's.
	SpeedupX float64
	// MetricsIdentical / ModelsIdentical compare the engine's
	// sequential vs parallel runs: held-out accuracy/AUC and the
	// persist-serialized model bytes must match exactly.
	MetricsIdentical bool
	ModelsIdentical  bool
	Cells            []PerfCell
}

// PerfCV times k-fold cross-validation sequential vs parallel on one
// representative trainer and checks the results agree exactly.
type PerfCV struct {
	Folds            int
	SeqMillis        float64
	ParMillis        float64
	ResultsIdentical bool
}

// PerfInference is the per-sample verdict-path half of the report.
type PerfInference struct {
	Samples int
	// Baseline: the pre-engine loop shape (fresh vector + allocating
	// Distribution + append/trim window).
	BaselineNsPerOp     float64
	BaselineAllocsPerOp float64
	// Fast: FallbackChain.Observe with scratch buffers threaded through.
	FastNsPerOp     float64
	FastAllocsPerOp float64
	// SpeedupX is baseline ns/op over fast ns/op; AllocReductionX is
	// baseline allocs/op over fast allocs/op (floored at 1 alloc/op so
	// a zero-allocation fast path yields a finite ratio).
	SpeedupX        float64
	AllocReductionX float64
}

// PerfCompiledFamily is one detector family's compiled-vs-interpreted
// measurement on the batched scoring path: the same trained model
// scored through core.Batcher's compiled evaluator and through a
// Batcher pinned to the interpreted model, over identical held-out
// inputs.
type PerfCompiledFamily struct {
	Label string
	// Single-vector Score ns/op for each backend.
	SingleInterpNs   float64
	SingleCompiledNs float64
	SingleSpeedupX   float64
	// ScoreBatch ns per sample at PerfCompiled.BatchSize.
	BatchInterpNs   float64
	BatchCompiledNs float64
	BatchSpeedupX   float64
	// IntervalsPerSec is the compiled batched throughput — sampling
	// intervals (one feature vector each) classified per second.
	IntervalsPerSec float64
	// P99Micros is the p99 latency of a compiled single-vector Score
	// call (individually timed, so it includes clock-read overhead —
	// an upper bound on the true verdict latency).
	P99Micros float64
	// VerdictsIdentical: every held-out row produced bit-identical
	// scores (single and batched) and identical classes on both
	// backends.
	VerdictsIdentical bool
}

// PerfCompiledFleet compares the fleet engine's aggregate serving
// throughput with shard batchers scoring compiled vs pinned to the
// interpreted path, on the same chain and synthetic workload.
type PerfCompiledFleet struct {
	Streams   int
	Intervals int
	Shards    int
	// Aggregate intervals/sec across all streams under each backend.
	InterpIntervalsPerSec   float64
	CompiledIntervalsPerSec float64
	SpeedupX                float64
	// MaxStreams10ms derives, from measured aggregate throughput, the
	// largest stream count each backend sustains at the paper's 10 ms
	// sampling interval (100 intervals/sec per stream).
	InterpMaxStreams10ms   int
	CompiledMaxStreams10ms int
}

// PerfCompiled is the compiled-inference-backend half of the report:
// per-family kernels plus the fleet-level effect.
type PerfCompiled struct {
	BatchSize int
	Families  []PerfCompiledFamily
	Fleet     PerfCompiledFleet
}

// PerfQuantizedFamily is one family's quantized-tier measurement,
// interleaved with the compiled/interpreted reps of the same trained
// model over the same inputs.
type PerfQuantizedFamily struct {
	Label string
	// Quantized is false when the family has no quantized lowering and
	// the tier served the compiled fallback (numbers then mirror the
	// compiled column).
	Quantized bool
	// Single-vector and batched ns per sample through the quantized
	// kernels.
	SingleQuantNs float64
	BatchQuantNs  float64
	// Batched speedups against the interpreted and compiled tiers.
	QuantVsInterpX   float64
	QuantVsCompiledX float64
	IntervalsPerSec  float64
	// VerdictParity is the fraction of benchmark rows whose predicted
	// class matches the interpreted model's (the statistical-equivalence
	// gate proper runs zoo-wide in QuantEquivalence).
	VerdictParity float64
}

// PerfQuantizedFleet is the quantized tier's fleet-level measurement on
// the same chain and workload as PerfCompiledFleet.
type PerfQuantizedFleet struct {
	QuantIntervalsPerSec float64
	// VsCompiledX compares against the compiled fleet run of the same
	// report.
	VsCompiledX         float64
	QuantMaxStreams10ms int
}

// PerfQuantized is the quantized-tier section of the report.
type PerfQuantized struct {
	BatchSize int
	Families  []PerfQuantizedFamily
	Fleet     PerfQuantizedFleet
}

// PerfReport is the full throughput-engine benchmark, serialized to
// BENCH_PERF.json by hmd-bench -exp perf.
type PerfReport struct {
	Train     PerfTrain
	CV        PerfCV
	Inference PerfInference
	Compiled  PerfCompiled
	Quantized PerfQuantized
}

// perfGridJobs is the tree-family grid the training benchmark trains:
// the sorted-index engine only changes J48/REPTree, so the other
// classifiers would just dilute the measurement.
func perfGridJobs() []struct {
	name    string
	hpcs    int
	variant zoo.Variant
} {
	type job = struct {
		name    string
		hpcs    int
		variant zoo.Variant
	}
	var jobs []job
	for _, name := range []string{"J48", "REPTree"} {
		for _, hpcs := range HPCCounts {
			for _, v := range []zoo.Variant{zoo.General, zoo.Boosted, zoo.Bagged} {
				jobs = append(jobs, job{name, hpcs, v})
			}
		}
	}
	return jobs
}

// perfGrid trains the tree-family grid under the given engine settings,
// returning the Build wall time, the held-out metrics and the
// persist-serialized bytes of every model (evaluation and serialization
// happen outside the timed section).
func (ctx *Context) perfGrid(legacy bool, workers int) (time.Duration, []PerfCell, [][]byte, error) {
	b := ctx.Builder
	savedLegacy, savedWorkers := b.LegacySplit, b.Workers
	b.LegacySplit, b.Workers = legacy, workers
	defer func() { b.LegacySplit, b.Workers = savedLegacy, savedWorkers }()

	jobs := perfGridJobs()
	dets := make([]*core.Detector, len(jobs))
	var elapsed time.Duration
	for i, j := range jobs {
		start := time.Now()
		det, err := b.Build(j.name, j.variant, j.hpcs)
		elapsed += time.Since(start)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("perf grid %s/%s/%d: %w", j.name, j.variant, j.hpcs, err)
		}
		dets[i] = det
	}

	cells := make([]PerfCell, len(jobs))
	blobs := make([][]byte, len(jobs))
	for i, det := range dets {
		res, err := b.Evaluate(det)
		if err != nil {
			return 0, nil, nil, err
		}
		cells[i] = PerfCell{Label: det.Name(), Acc: res.Accuracy, AUC: res.AUC}
		var buf bytes.Buffer
		if err := persist.Save(&buf, det.Model); err != nil {
			return 0, nil, nil, err
		}
		blobs[i] = buf.Bytes()
	}
	return elapsed, cells, blobs, nil
}

// Perf runs the full throughput-engine benchmark on the context's
// corpus and returns the report.
func (ctx *Context) Perf() (*PerfReport, error) {
	rep := &PerfReport{}

	// ---- training grid ------------------------------------------------
	baseMs, _, _, err := ctx.perfGrid(true, 1)
	if err != nil {
		return nil, err
	}
	seqMs, seqCells, seqBlobs, err := ctx.perfGrid(false, 1)
	if err != nil {
		return nil, err
	}
	workers := runtime.GOMAXPROCS(0)
	parMs, parCells, parBlobs, err := ctx.perfGrid(false, workers)
	if err != nil {
		return nil, err
	}

	rep.Train = PerfTrain{
		Detectors:        len(seqCells),
		Workers:          workers,
		BaselineMillis:   float64(baseMs.Microseconds()) / 1e3,
		EngineSeqMillis:  float64(seqMs.Microseconds()) / 1e3,
		EngineParMillis:  float64(parMs.Microseconds()) / 1e3,
		SpeedupX:         float64(baseMs) / float64(parMs),
		MetricsIdentical: true,
		ModelsIdentical:  true,
		Cells:            parCells,
	}
	for i := range seqCells {
		if seqCells[i] != parCells[i] {
			rep.Train.MetricsIdentical = false
		}
		if !bytes.Equal(seqBlobs[i], parBlobs[i]) {
			rep.Train.ModelsIdentical = false
		}
	}

	// ---- cross-validation ---------------------------------------------
	cvData, err := ctx.Builder.Train().Select([]int{0, 1, 2, 3})
	if err != nil {
		return nil, err
	}
	cvTrainer, err := zoo.NewVariantOpts("REPTree", zoo.Boosted, zoo.Options{Seed: 7})
	if err != nil {
		return nil, err
	}
	const folds = 5
	start := time.Now()
	cvSeq, err := eval.CrossValidateWorkers(cvTrainer, cvData, folds, 7, 1)
	cvSeqDur := time.Since(start)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	cvPar, err := eval.CrossValidateWorkers(cvTrainer, cvData, folds, 7, workers)
	cvParDur := time.Since(start)
	if err != nil {
		return nil, err
	}
	rep.CV = PerfCV{
		Folds:            folds,
		SeqMillis:        float64(cvSeqDur.Microseconds()) / 1e3,
		ParMillis:        float64(cvParDur.Microseconds()) / 1e3,
		ResultsIdentical: cvResultsEqual(cvSeq, cvPar),
	}

	// ---- per-sample inference path ------------------------------------
	inf, err := ctx.perfInference()
	if err != nil {
		return nil, err
	}
	rep.Inference = *inf

	// ---- compiled + quantized inference backends ----------------------
	comp, quant, err := ctx.perfCompiled()
	if err != nil {
		return nil, err
	}
	rep.Compiled = *comp
	rep.Quantized = *quant
	return rep, nil
}

func cvResultsEqual(a, b eval.CVResult) bool {
	if len(a.Folds) != len(b.Folds) {
		return false
	}
	for i := range a.Folds {
		if a.Folds[i] != b.Folds[i] {
			return false
		}
	}
	return true
}

// perfInference benchmarks the steady-state verdict path: the legacy
// per-sample shape vs the chain's zero-allocation Observe loop, over
// the same sample stream.
func (ctx *Context) perfInference() (*PerfInference, error) {
	chain, err := ctx.Builder.BuildChain("BayesNet", zoo.Bagged, []int{4, 2}, core.ChainConfig{})
	if err != nil {
		return nil, err
	}
	det, _, err := ctx.Detector("BayesNet", zoo.Bagged, 4)
	if err != nil {
		return nil, err
	}
	testK, err := ctx.Builder.TestFor(det)
	if err != nil {
		return nil, err
	}
	rows := testK.NumRows()
	if rows == 0 {
		return nil, fmt.Errorf("perf: empty held-out split")
	}
	if rows > 256 {
		rows = 256
	}
	stream := make([][]uint64, rows)
	for i := 0; i < rows; i++ {
		vals := make([]uint64, len(testK.X[i]))
		for j, v := range testK.X[i] {
			if v > 0 {
				vals[j] = uint64(v)
			}
		}
		stream[i] = vals
	}

	const iters = 20000
	const window = 5

	bag, ok := det.Model.(*ensemble.BaggedModel)
	if !ok {
		return nil, fmt.Errorf("perf: expected a bagged model, got %T", det.Model)
	}

	// Legacy loop shape — what the verdict path did before the
	// throughput engine: a fresh feature vector per sample, a fresh
	// vote accumulator, one allocating Distribution call per base
	// model, and an append/trim score window.
	baseline := func() {
		var hist []float64
		for n := 0; n < iters; n++ {
			values := stream[n%len(stream)]
			x := make([]float64, len(values))
			for j, v := range values {
				x[j] = float64(v)
			}
			avg := make([]float64, bag.NumClasses)
			for _, base := range bag.Models {
				d := base.Distribution(x)
				for c := 0; c < len(avg) && c < len(d); c++ {
					avg[c] += d[c]
				}
			}
			for c := range avg {
				avg[c] /= float64(len(bag.Models))
			}
			hist = append(hist, avg[1])
			if len(hist) > window {
				hist = hist[1:]
			}
			mean := 0.0
			for _, h := range hist {
				mean += h
			}
			mean /= float64(len(hist))
			_ = mean
		}
	}
	fast := func() error {
		for n := 0; n < iters; n++ {
			if _, err := chain.Observe(stream[n%len(stream)]); err != nil {
				return err
			}
		}
		return nil
	}

	// Warm up both paths (model scratch sizing, chain health state),
	// then measure time and cumulative mallocs per loop.
	baseline()
	if err := fast(); err != nil {
		return nil, err
	}
	chain.Reset()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	baseline()
	baseDur := time.Since(start)
	runtime.ReadMemStats(&after)
	baseAllocs := float64(after.Mallocs-before.Mallocs) / iters

	chain.Reset()
	runtime.GC()
	runtime.ReadMemStats(&before)
	start = time.Now()
	if err := fast(); err != nil {
		return nil, err
	}
	fastDur := time.Since(start)
	runtime.ReadMemStats(&after)
	fastAllocs := float64(after.Mallocs-before.Mallocs) / iters

	return &PerfInference{
		Samples:             iters,
		BaselineNsPerOp:     float64(baseDur.Nanoseconds()) / iters,
		BaselineAllocsPerOp: baseAllocs,
		FastNsPerOp:         float64(fastDur.Nanoseconds()) / iters,
		FastAllocsPerOp:     fastAllocs,
		SpeedupX:            float64(baseDur) / float64(fastDur),
		AllocReductionX:     baseAllocs / math.Max(fastAllocs, 1),
	}, nil
}

// perfCompiledFamilies are the representative detectors the compiled
// benchmark measures: one boosted and one bagged tree ensemble (the
// flattened-forest kernels), the MLP (blocked batch kernel), a linear
// model (fused dot product) and BayesNet (precomputed tables).
var perfCompiledFamilies = []struct {
	name    string
	variant zoo.Variant
}{
	{"REPTree", zoo.Boosted},
	{"J48", zoo.Bagged},
	{"MLP", zoo.General},
	{"SGD", zoo.General},
	{"BayesNet", zoo.General},
}

// perfCompiled benchmarks interpreted vs compiled vs quantized scoring
// per family and at the fleet level. All three tiers interleave within
// the same rep loop so they see the same machine conditions.
func (ctx *Context) perfCompiled() (*PerfCompiled, *PerfQuantized, error) {
	const batch = 256
	rep := &PerfCompiled{BatchSize: batch}
	qrep := &PerfQuantized{BatchSize: batch}
	for _, f := range perfCompiledFamilies {
		det, _, err := ctx.Detector(f.name, f.variant, 4)
		if err != nil {
			return nil, nil, err
		}
		testK, err := ctx.Builder.TestFor(det)
		if err != nil {
			return nil, nil, err
		}
		rows := testK.NumRows()
		if rows == 0 {
			return nil, nil, fmt.Errorf("perf compiled: empty held-out split")
		}
		xs := make([][]float64, batch)
		for i := range xs {
			src := testK.X[i%rows]
			x := make([]float64, len(src))
			copy(x, src)
			xs[i] = x
		}

		cb := det.NewBatcher()
		ib := det.NewInterpretedBatcher()
		qb := det.NewTierBatcher(core.TierQuantized)
		if !cb.Compiled() {
			return nil, nil, fmt.Errorf("perf compiled: %s/%s did not compile", f.name, f.variant)
		}

		fam := PerfCompiledFamily{
			Label:             f.name + "-" + f.variant.String(),
			VerdictsIdentical: true,
		}
		qfam := PerfQuantizedFamily{Label: fam.Label, Quantized: qb.Quantized()}

		// Equivalence gates first. Compiled: every row must agree bit
		// for bit on both the single-vector and the batched path, and on
		// the predicted class. Quantized: predicted classes must agree
		// statistically (the full zoo-wide gate is QuantEquivalence).
		outC := cb.ScoreBatch(xs, make([]float64, batch))
		outI := ib.ScoreBatch(xs, make([]float64, batch))
		agree := 0
		for i, x := range xs {
			if math.Float64bits(outC[i]) != math.Float64bits(outI[i]) ||
				math.Float64bits(cb.Score(x)) != math.Float64bits(ib.Score(x)) ||
				cb.Classify(x) != ib.Classify(x) {
				fam.VerdictsIdentical = false
			}
			if qb.Classify(x) == ib.Classify(x) {
				agree++
			}
		}
		qfam.VerdictParity = float64(agree) / float64(len(xs))

		// Interleave the backends and keep each side's best repetition:
		// alternating short reps exposes all of them to the same machine
		// conditions and the minimum sheds contention spikes, which
		// otherwise dominate ratio noise on a busy host.
		const reps = 9
		const singleIters = 40000
		const batchIters = 400
		out := make([]float64, batch)
		// Warm every backend (scratch sizing, branch history) before
		// the timed reps.
		perfTimeSingle(cb, xs, singleIters/10)
		perfTimeSingle(ib, xs, singleIters/10)
		perfTimeSingle(qb, xs, singleIters/10)
		perfTimeBatch(cb, xs, out, batchIters/10)
		perfTimeBatch(ib, xs, out, batchIters/10)
		perfTimeBatch(qb, xs, out, batchIters/10)

		si, sc, sq := math.Inf(1), math.Inf(1), math.Inf(1)
		bi, bc, bq := math.Inf(1), math.Inf(1), math.Inf(1)
		for r := 0; r < reps; r++ {
			si = math.Min(si, perfTimeSingle(ib, xs, singleIters))
			sc = math.Min(sc, perfTimeSingle(cb, xs, singleIters))
			sq = math.Min(sq, perfTimeSingle(qb, xs, singleIters))
			bi = math.Min(bi, perfTimeBatch(ib, xs, out, batchIters))
			bc = math.Min(bc, perfTimeBatch(cb, xs, out, batchIters))
			bq = math.Min(bq, perfTimeBatch(qb, xs, out, batchIters))
		}
		fam.SingleInterpNs, fam.SingleCompiledNs = si, sc
		fam.BatchInterpNs, fam.BatchCompiledNs = bi, bc
		fam.SingleSpeedupX = fam.SingleInterpNs / fam.SingleCompiledNs
		fam.BatchSpeedupX = fam.BatchInterpNs / fam.BatchCompiledNs
		fam.IntervalsPerSec = 1e9 / fam.BatchCompiledNs
		qfam.SingleQuantNs, qfam.BatchQuantNs = sq, bq
		qfam.QuantVsInterpX = bi / bq
		qfam.QuantVsCompiledX = bc / bq
		qfam.IntervalsPerSec = 1e9 / bq

		// p99 of individually timed compiled single-vector calls.
		lat := make([]time.Duration, 20000)
		for n := range lat {
			start := time.Now()
			cb.Score(xs[n%len(xs)])
			lat[n] = time.Since(start)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		fam.P99Micros = float64(lat[len(lat)*99/100].Nanoseconds()) / 1e3

		rep.Families = append(rep.Families, fam)
		qrep.Families = append(qrep.Families, qfam)
	}

	fl, qfl, err := ctx.perfCompiledFleet()
	if err != nil {
		return nil, nil, err
	}
	rep.Fleet = *fl
	qrep.Fleet = *qfl
	return rep, qrep, nil
}

func perfTimeSingle(b *core.Batcher, xs [][]float64, iters int) float64 {
	sink := 0.0
	start := time.Now()
	for n := 0; n < iters; n++ {
		sink += b.Score(xs[n%len(xs)])
	}
	elapsed := time.Since(start)
	if math.IsNaN(sink) {
		panic("perf: NaN score")
	}
	return float64(elapsed.Nanoseconds()) / float64(iters)
}

func perfTimeBatch(b *core.Batcher, xs [][]float64, out []float64, iters int) float64 {
	start := time.Now()
	for n := 0; n < iters; n++ {
		b.ScoreBatch(xs, out)
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(iters*len(xs))
}

// perfCompiledFleet serves the same fixed synthetic workload through
// three fleet engines — shard batchers pinned interpreted, scoring
// compiled, and scoring quantized — and reports aggregate throughput
// plus the derived max-sustained-streams at the paper's 10 ms sampling
// interval for each tier.
func (ctx *Context) perfCompiledFleet() (*PerfCompiledFleet, *PerfQuantizedFleet, error) {
	chain, err := ctx.Builder.BuildChain("REPTree", zoo.Boosted, []int{4, 2}, core.ChainConfig{})
	if err != nil {
		return nil, nil, err
	}
	width := len(chain.Events())
	const streams = 64
	const intervals = 200
	shards := runtime.GOMAXPROCS(0)

	run := func(tier core.Tier) (float64, error) {
		e, err := fleet.New(fleet.Config{
			Chain:          chain,
			Shards:         shards,
			Policy:         supervise.Block,
			PendingBatches: 8,
			Tier:           tier,
		})
		if err != nil {
			return 0, err
		}
		for i := 0; i < streams; i++ {
			if err := e.Add(fleet.StreamConfig{
				ID:        fmt.Sprintf("s%d", i),
				Source:    source.NewSynthetic(uint64(i)+1, width),
				Intervals: intervals,
			}); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		if err := e.Run(context.Background()); err != nil {
			return 0, err
		}
		wall := time.Since(start)
		snap := e.Stats(false)
		want := int64(streams * intervals)
		if snap.Verdicts != want || snap.LostVerdicts != 0 {
			return 0, fmt.Errorf("perf compiled fleet: %d verdicts (%d lost), want %d lossless",
				snap.Verdicts, snap.LostVerdicts, want)
		}
		return float64(want) / wall.Seconds(), nil
	}

	// Warm once (replica construction paths, scheduler), then measure
	// interleaved best-of-N per backend, for the same reason as the
	// per-family reps above. The timed section of one run is only tens
	// of milliseconds, so the rep count (not the run length) is what
	// beats down scheduler noise in the tier ratios.
	if _, err := run(core.TierCompiled); err != nil {
		return nil, nil, err
	}
	var interp, comp, quant float64
	for r := 0; r < 4; r++ {
		i, err := run(core.TierInterpreted)
		if err != nil {
			return nil, nil, err
		}
		c, err := run(core.TierCompiled)
		if err != nil {
			return nil, nil, err
		}
		q, err := run(core.TierQuantized)
		if err != nil {
			return nil, nil, err
		}
		interp = math.Max(interp, i)
		comp = math.Max(comp, c)
		quant = math.Max(quant, q)
	}
	return &PerfCompiledFleet{
			Streams:                 streams,
			Intervals:               intervals,
			Shards:                  shards,
			InterpIntervalsPerSec:   interp,
			CompiledIntervalsPerSec: comp,
			SpeedupX:                comp / interp,
			InterpMaxStreams10ms:    int(interp / 100),
			CompiledMaxStreams10ms:  int(comp / 100),
		}, &PerfQuantizedFleet{
			QuantIntervalsPerSec: quant,
			VsCompiledX:          quant / comp,
			QuantMaxStreams10ms:  int(quant / 100),
		}, nil
}

// PerfOnlyResult is the single family/tier micro-run behind hmd-bench's
// -perf-only flag: one trained model, one tier, no full sweep and no
// BENCH_PERF.json rewrite.
type PerfOnlyResult struct {
	Label     string
	Tier      string
	Backend   string // the tier actually scoring, after per-model fallback
	BatchSize int
	SingleNs  float64
	// BatchNs is ns per sample at BatchSize.
	BatchNs         float64
	IntervalsPerSec float64
}

// PerfOnly benchmarks one family/tier pair named as "family:tier" (e.g.
// "mlp:quantized", "reptree-boosted:compiled"; tier defaults to
// compiled). The family matches a perf-sweep label or base name,
// case-insensitively.
func (ctx *Context) PerfOnly(spec string) (*PerfOnlyResult, error) {
	famTok, tierTok := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		famTok, tierTok = spec[:i], spec[i+1:]
	}
	tier, err := core.ParseTier(strings.ToLower(strings.TrimSpace(tierTok)))
	if err != nil {
		return nil, err
	}
	famTok = strings.ToLower(strings.TrimSpace(famTok))
	var fam *struct {
		name    string
		variant zoo.Variant
	}
	for i := range perfCompiledFamilies {
		f := &perfCompiledFamilies[i]
		label := strings.ToLower(f.name + "-" + f.variant.String())
		if famTok == strings.ToLower(f.name) || famTok == label {
			fam = f
			break
		}
	}
	if fam == nil {
		var names []string
		for _, f := range perfCompiledFamilies {
			names = append(names, strings.ToLower(f.name+"-"+f.variant.String()))
		}
		return nil, fmt.Errorf("perf-only: unknown family %q (one of: %s)", famTok, strings.Join(names, ", "))
	}

	det, _, err := ctx.Detector(fam.name, fam.variant, 4)
	if err != nil {
		return nil, err
	}
	testK, err := ctx.Builder.TestFor(det)
	if err != nil {
		return nil, err
	}
	rows := testK.NumRows()
	if rows == 0 {
		return nil, fmt.Errorf("perf-only: empty held-out split")
	}
	const batch = 256
	xs := make([][]float64, batch)
	for i := range xs {
		src := testK.X[i%rows]
		x := make([]float64, len(src))
		copy(x, src)
		xs[i] = x
	}
	b := det.NewTierBatcher(tier)

	const reps = 5
	const singleIters = 40000
	const batchIters = 400
	out := make([]float64, batch)
	perfTimeSingle(b, xs, singleIters/10)
	perfTimeBatch(b, xs, out, batchIters/10)
	sn, bn := math.Inf(1), math.Inf(1)
	for r := 0; r < reps; r++ {
		sn = math.Min(sn, perfTimeSingle(b, xs, singleIters))
		bn = math.Min(bn, perfTimeBatch(b, xs, out, batchIters))
	}
	return &PerfOnlyResult{
		Label:           fam.name + "-" + fam.variant.String(),
		Tier:            tier.String(),
		Backend:         b.Backend().String(),
		BatchSize:       batch,
		SingleNs:        sn,
		BatchNs:         bn,
		IntervalsPerSec: 1e9 / bn,
	}, nil
}

// RenderPerfOnly formats a single family/tier micro-run.
func RenderPerfOnly(r *PerfOnlyResult) string {
	return fmt.Sprintf("perf-only %s tier=%s backend=%s: single %.0f ns, batch(%d) %.1f ns/sample, %.2fM intervals/s\n",
		r.Label, r.Tier, r.Backend, r.SingleNs, r.BatchSize, r.BatchNs, r.IntervalsPerSec/1e6)
}

// RenderPerf formats the perf report for the console.
func RenderPerf(r *PerfReport) string {
	var sb strings.Builder
	sb.WriteString("Throughput engine benchmark\n")
	fmt.Fprintf(&sb, "  training grid (%d tree-family detectors, %d workers):\n",
		r.Train.Detectors, r.Train.Workers)
	fmt.Fprintf(&sb, "    legacy split search      %10.1f ms\n", r.Train.BaselineMillis)
	fmt.Fprintf(&sb, "    sorted-index, sequential %10.1f ms\n", r.Train.EngineSeqMillis)
	fmt.Fprintf(&sb, "    sorted-index, parallel   %10.1f ms   (%.2fx vs legacy)\n",
		r.Train.EngineParMillis, r.Train.SpeedupX)
	fmt.Fprintf(&sb, "    seq vs par: metrics identical=%v, model bytes identical=%v\n",
		r.Train.MetricsIdentical, r.Train.ModelsIdentical)
	fmt.Fprintf(&sb, "  %d-fold CV: seq %.1f ms, par %.1f ms, identical=%v\n",
		r.CV.Folds, r.CV.SeqMillis, r.CV.ParMillis, r.CV.ResultsIdentical)
	fmt.Fprintf(&sb, "  verdict path (%d samples):\n", r.Inference.Samples)
	fmt.Fprintf(&sb, "    legacy loop  %8.0f ns/op  %6.1f allocs/op\n",
		r.Inference.BaselineNsPerOp, r.Inference.BaselineAllocsPerOp)
	fmt.Fprintf(&sb, "    chain loop   %8.0f ns/op  %6.1f allocs/op   (%.1fx faster, %.0fx fewer allocs)\n",
		r.Inference.FastNsPerOp, r.Inference.FastAllocsPerOp,
		r.Inference.SpeedupX, r.Inference.AllocReductionX)
	fmt.Fprintf(&sb, "  compiled inference backend (batch=%d):\n", r.Compiled.BatchSize)
	for _, f := range r.Compiled.Families {
		fmt.Fprintf(&sb, "    %-16s single %6.0f -> %5.0f ns (%.2fx)  batch %6.1f -> %5.1f ns/sample (%.2fx)  %5.2fM iv/s  p99 %4.1f us  identical=%v\n",
			f.Label, f.SingleInterpNs, f.SingleCompiledNs, f.SingleSpeedupX,
			f.BatchInterpNs, f.BatchCompiledNs, f.BatchSpeedupX,
			f.IntervalsPerSec/1e6, f.P99Micros, f.VerdictsIdentical)
	}
	fl := r.Compiled.Fleet
	fmt.Fprintf(&sb, "    fleet %d streams x %d intervals, %d shards: interpreted %.0f iv/s -> compiled %.0f iv/s (%.2fx); max streams @10ms %d -> %d\n",
		fl.Streams, fl.Intervals, fl.Shards,
		fl.InterpIntervalsPerSec, fl.CompiledIntervalsPerSec, fl.SpeedupX,
		fl.InterpMaxStreams10ms, fl.CompiledMaxStreams10ms)
	fmt.Fprintf(&sb, "  quantized tier (batch=%d):\n", r.Quantized.BatchSize)
	for _, f := range r.Quantized.Families {
		tag := ""
		if !f.Quantized {
			tag = "  [compiled fallback]"
		}
		fmt.Fprintf(&sb, "    %-16s single %6.0f ns  batch %5.1f ns/sample  %.2fx vs interp, %.2fx vs compiled  %5.2fM iv/s  parity %.3f%s\n",
			f.Label, f.SingleQuantNs, f.BatchQuantNs,
			f.QuantVsInterpX, f.QuantVsCompiledX, f.IntervalsPerSec/1e6, f.VerdictParity, tag)
	}
	qf := r.Quantized.Fleet
	fmt.Fprintf(&sb, "    fleet quantized: %.0f iv/s (%.2fx vs compiled); max streams @10ms %d\n",
		qf.QuantIntervalsPerSec, qf.VsCompiledX, qf.QuantMaxStreams10ms)
	return sb.String()
}
