package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/mlearn/zoo"
)

// The quantized tier drops the compiled tier's bit-identity contract —
// fixed-point forests, integer dot products and lookup-table sigmoids
// cannot reproduce float64 verdicts bit for bit. What replaces it is a
// statistical equivalence contract, and this file is its gate:
//
//   - Verdict parity: across the whole zoo (every classifier x variant
//     at the 4-HPC run-time budget), the quantized tier must agree with
//     the interpreted models on at least 99.9% of held-out verdicts,
//     pooled over all models.
//   - Metric deltas: per quantized model, held-out accuracy and AUC may
//     move by no more than the robustness sweep's own noise band — the
//     spread between two corruption seeds at the same fault rate, i.e.
//     the measurement noise the study already tolerates.
//
// The gate runs in scripts/check.sh (TestQuantEquivalence); a kernel
// change that drifts verdicts past either bound fails CI.

// QuantParityFloor is the pooled verdict-parity bound: quantized and
// interpreted must agree on at least this fraction of zoo-wide held-out
// verdicts.
const QuantParityFloor = 0.999

// QuantNoiseFloor is the minimum metric noise band. When the two
// robustness corruption seeds happen to land very close together, the
// band would otherwise demand sub-noise agreement no quantization can
// honour; half a percentage point is below any effect the study reports.
const QuantNoiseFloor = 0.005

// QuantModelParity is one zoo model's quantized-vs-interpreted
// comparison on the held-out split.
type QuantModelParity struct {
	Label string
	// Quantized reports whether the model has a quantized lowering;
	// false means the tier serves it through the bit-identical compiled
	// fallback (parity 1 by construction — still counted in the pool,
	// because that is what a quantized fleet actually emits).
	Quantized bool
	Rows      int
	Agree     int
	Parity    float64
	// MaxScoreDelta is the largest |P(malware) quant - interp| seen.
	MaxScoreDelta float64
	// Held-out metrics under each tier and their absolute deltas.
	AccInterp, AccQuant float64
	AUCInterp, AUCQuant float64
	AccDelta, AUCDelta  float64
}

// QuantEquivalenceReport is the gate's full result.
type QuantEquivalenceReport struct {
	Models []QuantModelParity
	// Pooled verdict parity across every model's held-out rows.
	PooledRows  int
	PooledAgree int
	Parity      float64
	ParityFloor float64
	// The noise band: the largest accuracy/AUC spread between two
	// corruption seeds of the robustness sweep at the same rate,
	// floored at QuantNoiseFloor.
	NoiseAcc, NoiseAUC float64
	// The largest quantized-vs-interpreted metric deltas across models
	// (clean and corrupted held-out inputs both count).
	MaxAccDelta, MaxAUCDelta float64
	Pass                     bool
}

// quantZooJobs is the gate's model set: every zoo classifier in every
// variant at the paper's 4-HPC run-time budget.
func quantZooJobs() []struct {
	name    string
	variant zoo.Variant
} {
	type job = struct {
		name    string
		variant zoo.Variant
	}
	var jobs []job
	for _, name := range zoo.Names() {
		for _, v := range []zoo.Variant{zoo.General, zoo.Boosted, zoo.Bagged} {
			jobs = append(jobs, job{name, v})
		}
	}
	return jobs
}

// QuantEquivalence runs the statistical equivalence gate: zoo-wide
// pooled verdict parity plus per-model accuracy/AUC deltas within the
// robustness noise band, on clean and fault-corrupted held-out inputs.
func (ctx *Context) QuantEquivalence() (*QuantEquivalenceReport, error) {
	rep := &QuantEquivalenceReport{ParityFloor: QuantParityFloor}

	// Noise band: the robustness sweep's own run-to-run spread — the
	// same (detector, rate) measured under two corruption seeds. Any
	// quantization effect smaller than this is invisible to the study.
	const noiseRate = 0.05
	planA := faults.Plan{Seed: 11, Rate: noiseRate}
	planB := faults.Plan{Seed: 12, Rate: noiseRate}
	for _, v := range []zoo.Variant{zoo.General, zoo.Boosted, zoo.Bagged} {
		det, _, err := ctx.Detector("REPTree", v, 4)
		if err != nil {
			return nil, err
		}
		testK, err := ctx.Builder.TestFor(det)
		if err != nil {
			return nil, err
		}
		resA, err := eval.Measure(det.Model, planA.CorruptDataset(testK))
		if err != nil {
			return nil, err
		}
		resB, err := eval.Measure(det.Model, planB.CorruptDataset(testK))
		if err != nil {
			return nil, err
		}
		rep.NoiseAcc = math.Max(rep.NoiseAcc, math.Abs(resA.Accuracy-resB.Accuracy))
		rep.NoiseAUC = math.Max(rep.NoiseAUC, math.Abs(resA.AUC-resB.AUC))
	}
	rep.NoiseAcc = math.Max(rep.NoiseAcc, QuantNoiseFloor)
	rep.NoiseAUC = math.Max(rep.NoiseAUC, QuantNoiseFloor)

	for _, j := range quantZooJobs() {
		det, _, err := ctx.Detector(j.name, j.variant, 4)
		if err != nil {
			return nil, err
		}
		testK, err := ctx.Builder.TestFor(det)
		if err != nil {
			return nil, err
		}
		m := QuantModelParity{
			Label: j.name + "-" + j.variant.String(),
			Rows:  testK.NumRows(),
		}

		qp := det.Quantized()
		m.Quantized = qp != nil
		if qp == nil {
			// Compiled (or interpreted) fallback is bit-identical, so
			// every verdict agrees; the pool records that honestly.
			m.Agree = m.Rows
			m.Parity = 1
			resI, err := eval.Measure(det.Model, testK)
			if err != nil {
				return nil, err
			}
			m.AccInterp, m.AccQuant = resI.Accuracy, resI.Accuracy
			m.AUCInterp, m.AUCQuant = resI.AUC, resI.AUC
		} else {
			qe := qp.NewEvaluator()
			ib := det.NewInterpretedBatcher()
			m.Agree = 0
			for _, x := range testK.X {
				sq, si := qe.Score(x), ib.Score(x)
				if d := math.Abs(sq - si); d > m.MaxScoreDelta {
					m.MaxScoreDelta = d
				}
				if qe.Predict(x) == ib.Classify(x) {
					m.Agree++
				}
			}
			if m.Rows > 0 {
				m.Parity = float64(m.Agree) / float64(m.Rows)
			}
			// Metric deltas on clean and corrupted inputs: quantization
			// must stay within the noise band under the same degraded
			// conditions the robustness sweep studies.
			resI, err := eval.Measure(det.Model, testK)
			if err != nil {
				return nil, err
			}
			resQ, err := eval.Measure(qe, testK)
			if err != nil {
				return nil, err
			}
			m.AccInterp, m.AccQuant = resI.Accuracy, resQ.Accuracy
			m.AUCInterp, m.AUCQuant = resI.AUC, resQ.AUC
			m.AccDelta = math.Abs(resI.Accuracy - resQ.Accuracy)
			m.AUCDelta = math.Abs(resI.AUC - resQ.AUC)

			corrupted := planA.CorruptDataset(testK)
			cresI, err := eval.Measure(det.Model, corrupted)
			if err != nil {
				return nil, err
			}
			cresQ, err := eval.Measure(qe, corrupted)
			if err != nil {
				return nil, err
			}
			m.AccDelta = math.Max(m.AccDelta, math.Abs(cresI.Accuracy-cresQ.Accuracy))
			m.AUCDelta = math.Max(m.AUCDelta, math.Abs(cresI.AUC-cresQ.AUC))
		}

		rep.PooledRows += m.Rows
		rep.PooledAgree += m.Agree
		rep.MaxAccDelta = math.Max(rep.MaxAccDelta, m.AccDelta)
		rep.MaxAUCDelta = math.Max(rep.MaxAUCDelta, m.AUCDelta)
		rep.Models = append(rep.Models, m)
	}

	if rep.PooledRows > 0 {
		rep.Parity = float64(rep.PooledAgree) / float64(rep.PooledRows)
	}
	rep.Pass = rep.Parity >= rep.ParityFloor &&
		rep.MaxAccDelta <= rep.NoiseAcc &&
		rep.MaxAUCDelta <= rep.NoiseAUC
	return rep, nil
}

// RenderQuantEquivalence formats the gate's report for the console.
func RenderQuantEquivalence(r *QuantEquivalenceReport) string {
	var sb strings.Builder
	sb.WriteString("Quantized tier statistical equivalence\n")
	for _, m := range r.Models {
		tag := "quantized"
		if !m.Quantized {
			tag = "fallback "
		}
		fmt.Fprintf(&sb, "  %-18s %s parity %6.4f (%d/%d)  maxscoredelta %.4f  acc %.3f->%.3f  auc %.3f->%.3f\n",
			m.Label, tag, m.Parity, m.Agree, m.Rows, m.MaxScoreDelta,
			m.AccInterp, m.AccQuant, m.AUCInterp, m.AUCQuant)
	}
	fmt.Fprintf(&sb, "  pooled parity %0.5f (floor %0.4f)  max deltas acc %.4f / auc %.4f (band %.4f / %.4f)  pass=%v\n",
		r.Parity, r.ParityFloor, r.MaxAccDelta, r.MaxAUCDelta, r.NoiseAcc, r.NoiseAUC, r.Pass)
	return sb.String()
}
