package experiments

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/mlearn/zoo"
	"repro/internal/supervise"
)

// The ingest experiment drills the network front door the way chaos.go
// drills the supervised pipeline: real loopback TCP clients feed a
// trained chain through the ingest server while a seeded wire fault
// plan tears, corrupts, delays and duplicates frames, a client crashes
// and reconnects mid-stream, a quota storm hammers admission on a
// throttled tenant, and the whole fleet is drained mid-run and
// restarted from its checkpoint. The contracts asserted are the ingest
// plane's, not the model's: every stream's verdict timeline is
// gap-free across faults and the restart, verdicts are bit-identical
// to an unbroken reference chain fed the same samples, overload and
// rejection are always explicit (SHED/RETRY/DRAIN frames, exact
// accounting), and the drill reproduces deterministically per seed.

const (
	ingestDrillTenant = "drill"
	ingestStormTenant = "storm"
)

// IngestChaosConfig parameterises the ingest chaos drill.
type IngestChaosConfig struct {
	// Streams is the number of well-behaved clean clients (default 3).
	// Two misbehaving streams — a crash/reconnect client and a
	// wire-fault client — always ride along.
	Streams int
	// Intervals is the samples per stream across both processes; half
	// are served before the drain, half after the restart (default 30,
	// must be even).
	Intervals int
	// Window is the per-stream inflight cap (default 64, which keeps
	// the drill itself shed-free so timeline assertions are exact).
	Window int
	// Interval is the fleet wheel pacing (default 2ms).
	Interval time.Duration
	// Plan is the wire fault plan for the misbehaving client; Rate must
	// be positive and the truncate kind enabled (the client-crash
	// shape), or the reconnect contracts cannot be exercised.
	Plan faults.WirePlan
	// CheckpointDir hosts the drain/restart drill's fleet checkpoints.
	CheckpointDir string
	// Batch makes the clean and crash clients use the batched wire path
	// (Queue/Flush, SAMPLE_BATCH frames): the drill's contracts —
	// gap-free, bit-identical, exact accounting — must hold identically
	// under batch framing.
	Batch bool
}

func (c *IngestChaosConfig) fill() {
	if c.Streams == 0 {
		c.Streams = 3
	}
	if c.Intervals == 0 {
		c.Intervals = 30
	}
	if c.Window == 0 {
		c.Window = 64
	}
	if c.Interval == 0 {
		c.Interval = 2 * time.Millisecond
	}
}

// IngestStreamOutcome is one drilled stream's ledger.
type IngestStreamOutcome struct {
	ID   string
	Role string // "clean", "crash", "wire-fault"
	// Admitted samples entered the server ring; Echoed verdicts reached
	// the client (misbehaving clients miss echoes while detached — the
	// server-side timeline, checked via GapFree, stays complete).
	Admitted int64
	Echoed   int
	// Reattaches counts live-connection takeovers; Shed ring drops;
	// Dups idempotently dropped replays (injected duplicate frames).
	Reattaches int64
	Shed       int64
	Dups       int64
	// GapFree: the engine scored every interval exactly once and every
	// echoed verdict arrived in strictly increasing sample order (clean
	// streams must see every verdict).
	GapFree bool
	// BitIdentical: every echoed verdict matches an unbroken reference
	// chain fed the same samples — across wire faults, reconnects and
	// the checkpoint restart.
	BitIdentical bool
}

// IngestChaosResult aggregates the drill.
type IngestChaosResult struct {
	Streams []IngestStreamOutcome

	// ResumeOK: every HELLO_OK carried the server's authoritative
	// resume position (0 fresh, mid-stream after crashes, the
	// checkpointed position after the restart).
	ResumeOK bool
	// DrainRefused: an admission attempted during the drain was
	// answered with an explicit DRAIN frame.
	DrainRefused bool
	// QuotaRejections counts admission-storm dials answered with RETRY.
	QuotaRejections int

	// Aggregate server counters across both processes.
	WireErrors  int64
	Evictions   int64
	Reattaches  int64
	DupsDropped int64

	// AccountingExact: for every stream and process, accepted ==
	// attributed + shed and verdicts == attributed + held — nothing
	// lost silently.
	AccountingExact bool

	GapFree       bool
	BitIdentical  bool
	Deterministic bool // second identical pass reproduced every echoed verdict
}

// Passed reports whether every ingest contract held.
func (r IngestChaosResult) Passed() bool {
	return r.GapFree && r.BitIdentical && r.ResumeOK && r.DrainRefused &&
		r.AccountingExact && r.QuotaRejections > 0 && r.WireErrors > 0 &&
		r.Reattaches > 0 && r.Deterministic
}

// IngestChaos runs the drill on the context's trained chain.
func (ctx *Context) IngestChaos(cfg IngestChaosConfig) (IngestChaosResult, error) {
	cfg.fill()
	var res IngestChaosResult
	if !cfg.Plan.Active() {
		return res, errors.New("ingest drill: wire plan must have Rate > 0")
	}
	if !cfg.Plan.Enabled(faults.TruncateFrame) {
		return res, errors.New("ingest drill: wire plan must enable the truncate kind")
	}
	if cfg.CheckpointDir == "" {
		return res, errors.New("ingest drill: checkpoint dir required")
	}
	if cfg.Intervals%2 != 0 || cfg.Intervals < 4 {
		return res, fmt.Errorf("ingest drill: intervals %d must be even and >= 4", cfg.Intervals)
	}

	chain, err := ctx.Builder.BuildChain("REPTree", zoo.Boosted, []int{4, 2}, core.ChainConfig{})
	if err != nil {
		return res, fmt.Errorf("ingest drill: building chain: %w", err)
	}
	replicate, err := core.NewChainReplicator(chain)
	if err != nil {
		return res, fmt.Errorf("ingest drill: replicating chain: %w", err)
	}
	width := len(chain.Events())

	first, err := ingestPass(cfg, replicate, width, filepath.Join(cfg.CheckpointDir, "pass1"), &res)
	if err != nil {
		return res, err
	}
	second, err := ingestPass(cfg, replicate, width, filepath.Join(cfg.CheckpointDir, "pass2"), nil)
	if err != nil {
		return res, fmt.Errorf("ingest drill: determinism pass: %w", err)
	}
	res.Deterministic = ingestStreamsEqual(first, second)
	return res, nil
}

// ingestVals derives the deterministic counter vector for (stream,
// seq): the drill's bit-identity checks replay exactly these into a
// reference chain.
func ingestVals(sid int, seq uint32, buf []uint64) []uint64 {
	for j := range buf {
		buf[j] = uint64(seq)*uint64(7+2*j) + uint64(sid*131) + uint64(j*j) + 1
	}
	return buf
}

func ingestRole(sid, clean int) string {
	switch {
	case sid < clean:
		return "clean"
	case sid == clean:
		return "crash"
	default:
		return "wire-fault"
	}
}

// ingestUp builds one process's engine + server pair on a fresh
// loopback listener. The storm tenant is pre-throttled so the quota
// drill has a wall to run into.
func ingestUp(cfg IngestChaosConfig, replicate func() (*core.FallbackChain, error), width int,
	store *core.CheckpointStore, restore bool) (*ingest.Server, string, chan error, error) {
	eng, err := fleet.New(fleet.Config{
		NewChain:        replicate,
		Shards:          2,
		WheelSlots:      4,
		Interval:        cfg.Interval,
		Policy:          supervise.Block,
		Checkpoint:      store,
		CheckpointEvery: 4,
	})
	if err != nil {
		return nil, "", nil, fmt.Errorf("ingest drill: engine: %w", err)
	}
	if restore {
		if _, _, err := eng.RestoreState(); err != nil {
			return nil, "", nil, fmt.Errorf("ingest drill: restoring fleet state: %w", err)
		}
	}
	srv, err := ingest.NewServer(ingest.Config{
		Engine: eng,
		Width:  width,
		Window: cfg.Window,
		TenantQuotas: map[string]ingest.Quotas{
			ingestStormTenant: {MaxStreams: 1, AdmitPerSec: 1e-9, AdmitBurst: 1},
		},
	})
	if err != nil {
		return nil, "", nil, fmt.Errorf("ingest drill: server: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, fmt.Errorf("ingest drill: listen: %w", err)
	}
	go srv.Serve(ln)
	run := make(chan error, 1)
	go func() { run <- eng.Run(context.Background()) }()
	return srv, ln.Addr().String(), run, nil
}

// ingestCleanPhase plays one stream segment by the book: dial, verify
// the resume position, send [from,to), read every verdict back, and
// optionally end the stream with BYE (collecting any final echoes
// before the server's finish notice).
func ingestCleanPhase(addr, name string, sid, width int, from, to uint32, bye, batch bool) ([]ingest.Verdict, bool, error) {
	c, err := ingest.Dial(ingest.ClientConfig{
		Addr:  addr,
		Hello: ingest.Hello{Width: width, Tenant: ingestDrillTenant, Stream: name},
	})
	if err != nil {
		return nil, false, fmt.Errorf("ingest drill: dial %s: %w", name, err)
	}
	defer c.Close()
	resumeOK := uint32(c.Admitted.Resume) == from
	buf := make([]uint64, width)
	for seq := from; seq < to; seq++ {
		if batch {
			err = c.Queue(seq, ingestVals(sid, seq, buf))
		} else {
			err = c.Send(seq, ingestVals(sid, seq, buf))
		}
		if err != nil {
			return nil, resumeOK, fmt.Errorf("ingest drill: %s send %d: %w", name, seq, err)
		}
	}
	if batch {
		if err := c.Flush(); err != nil {
			return nil, resumeOK, fmt.Errorf("ingest drill: %s flush: %w", name, err)
		}
	}
	var got []ingest.Verdict
	for uint32(len(got)) < to-from {
		ev, err := c.Next()
		if err != nil {
			return got, resumeOK, fmt.Errorf("ingest drill: %s after %d/%d verdicts: %w", name, len(got), to-from, err)
		}
		if ev.Type == ingest.FrameVerdict {
			got = append(got, ev.Verdict)
		}
	}
	if bye {
		if err := c.Bye(); err != nil {
			return got, resumeOK, fmt.Errorf("ingest drill: %s BYE: %w", name, err)
		}
		for {
			ev, err := c.Next()
			if err != nil {
				return got, resumeOK, fmt.Errorf("ingest drill: %s waiting for finish: %w", name, err)
			}
			if ev.Type == ingest.FrameVerdict {
				got = append(got, ev.Verdict)
			}
			if ev.Type == ingest.FrameDrain {
				return got, resumeOK, nil
			}
		}
	}
	return got, resumeOK, nil
}

// ingestCrashPhase is the crash/reconnect client: it hangs up without
// BYE halfway through the segment, re-dials, and must be resumed at
// the server's authoritative position.
func ingestCrashPhase(addr, name string, sid, width int, from, to uint32, batch bool) ([]ingest.Verdict, bool, error) {
	mid := from + (to-from)/2
	got1, ok1, err := ingestCleanPhase(addr, name, sid, width, from, mid, false, batch)
	if err != nil {
		return got1, ok1, err
	}
	// ingestCleanPhase's deferred Close IS the crash: no BYE, socket
	// dropped with the stream mid-flight.
	got2, ok2, err := ingestCleanPhase(addr, name, sid, width, mid, to, false, batch)
	return append(got1, got2...), ok1 && ok2, err
}

// ingestFaultyPhase is the wire-fault client: it handshakes cleanly,
// arms the seeded injector, and keeps sending until the server has
// admitted the whole segment — reconnecting with a fresh fault
// schedule every time a torn frame, corruption eviction or injected
// hangup kills the connection. Verdicts echoed while attached are
// collected; those scored while detached are the server's undelivered
// count, not a timeline gap.
func ingestFaultyPhase(srv *ingest.Server, addr, name string, sid, width int, from, to uint32,
	plan faults.WirePlan, attempt *int) ([]ingest.Verdict, bool, error) {
	key := ingestDrillTenant + "/" + name
	var got []ingest.Verdict
	resumeOK := true
	buf := make([]uint64, width)
	for tries := 0; ; tries++ {
		if next, found := ingestNextSeq(srv, key); found && next >= to {
			return got, resumeOK, nil
		}
		if tries > 100 {
			return got, resumeOK, fmt.Errorf("ingest drill: %s made no admission progress in %d attempts", name, tries)
		}
		*attempt++
		c, err := ingest.Dial(ingest.ClientConfig{
			Addr:    addr,
			Timeout: 500 * time.Millisecond,
			Hello:   ingest.Hello{Width: width, Tenant: ingestDrillTenant, Stream: name},
		})
		if err != nil {
			return got, resumeOK, fmt.Errorf("ingest drill: redial %s: %w", name, err)
		}
		if tries == 0 && uint32(c.Admitted.Resume) != from {
			resumeOK = false
		}
		c.SetInjector(plan.ForConn(fmt.Sprintf("%s/a%d", key, *attempt)))
		for seq := uint32(c.Admitted.Resume); seq < to; seq++ {
			if err := c.Send(seq, ingestVals(sid, seq, buf)); err != nil {
				break // torn frame or eviction: reconnect and resume
			}
		}
		// Drain whatever the server echoed to this connection before it
		// died (or until the line goes idle).
		for {
			ev, err := c.Next()
			if err != nil {
				break
			}
			if ev.Type == ingest.FrameVerdict {
				got = append(got, ev.Verdict)
			}
		}
		c.Close()
	}
}

// ingestByeStream ends a stream over a fresh, fault-free connection —
// the wire-fault client must not have its own BYE torn off the wire.
func ingestByeStream(addr, name string, width int) ([]ingest.Verdict, error) {
	c, err := ingest.Dial(ingest.ClientConfig{
		Addr:  addr,
		Hello: ingest.Hello{Width: width, Tenant: ingestDrillTenant, Stream: name},
	})
	if err != nil {
		return nil, fmt.Errorf("ingest drill: BYE dial %s: %w", name, err)
	}
	defer c.Close()
	if err := c.Bye(); err != nil {
		return nil, fmt.Errorf("ingest drill: %s BYE: %w", name, err)
	}
	var got []ingest.Verdict
	for {
		ev, err := c.Next()
		if err != nil {
			return got, fmt.Errorf("ingest drill: %s waiting for finish: %w", name, err)
		}
		if ev.Type == ingest.FrameVerdict {
			got = append(got, ev.Verdict)
		}
		if ev.Type == ingest.FrameDrain {
			return got, nil
		}
	}
}

func ingestNextSeq(srv *ingest.Server, key string) (uint32, bool) {
	for _, ss := range srv.StatsSnapshot(true).PerStream {
		if ss.Key == key {
			return ss.NextSeq, true
		}
	}
	return 0, false
}

// ingestWaitScored blocks until every listed stream's verdict count
// reaches want — the engine has scored everything admitted so far.
func ingestWaitScored(srv *ingest.Server, keys []string, want int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		byKey := map[string]int64{}
		for _, ss := range srv.StatsSnapshot(true).PerStream {
			byKey[ss.Key] = ss.Verdicts
		}
		done := true
		for _, k := range keys {
			if byKey[k] < want {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ingest drill: streams not fully scored after %v (%v)", timeout, byKey)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// ingestPass runs the whole drill once: serve the first half of every
// stream under faults, storm a throttled tenant, drain mid-run, restart
// from the checkpoint, serve the second half, and settle the ledger.
// It returns the deterministically echoed streams (clean + crash) for
// the cross-pass comparison; res, when non-nil, receives the outcome.
func ingestPass(cfg IngestChaosConfig, replicate func() (*core.FallbackChain, error), width int,
	dir string, res *IngestChaosResult) ([][]ingest.Verdict, error) {
	store, err := core.NewCheckpointStore(dir, "fleet", fleet.StateVersion)
	if err != nil {
		return nil, fmt.Errorf("ingest drill: checkpoint store: %w", err)
	}
	n := uint32(cfg.Intervals)
	half := n / 2
	nStreams := cfg.Streams + 2
	crashID, wildID := cfg.Streams, cfg.Streams+1
	names := make([]string, nStreams)
	keys := make([]string, nStreams)
	for i := 0; i < cfg.Streams; i++ {
		names[i] = fmt.Sprintf("c%d", i)
	}
	names[crashID], names[wildID] = "crash", "wild"
	for i, nm := range names {
		keys[i] = ingestDrillTenant + "/" + nm
	}

	echoed := make([][]ingest.Verdict, nStreams)
	resumeOK := make([]bool, nStreams)
	for i := range resumeOK {
		resumeOK[i] = true
	}
	var attempt int

	// runPhase plays [from,to) for every stream concurrently against one
	// server — the cross-stream batching path, not a sequential replay.
	runPhase := func(srv *ingest.Server, addr string, from, to uint32, bye bool) error {
		var wg sync.WaitGroup
		errs := make(chan error, nStreams)
		for i := 0; i < cfg.Streams; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got, ok, err := ingestCleanPhase(addr, names[i], i, width, from, to, bye, cfg.Batch)
				echoed[i] = append(echoed[i], got...)
				if !ok {
					resumeOK[i] = false
				}
				if err != nil {
					errs <- err
				}
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var got []ingest.Verdict
			var ok bool
			var err error
			if bye {
				got, ok, err = ingestCleanPhase(addr, names[crashID], crashID, width, from, to, true, cfg.Batch)
			} else {
				got, ok, err = ingestCrashPhase(addr, names[crashID], crashID, width, from, to, cfg.Batch)
			}
			echoed[crashID] = append(echoed[crashID], got...)
			if !ok {
				resumeOK[crashID] = false
			}
			if err != nil {
				errs <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, ok, err := ingestFaultyPhase(srv, addr, names[wildID], wildID, width, from, to, cfg.Plan, &attempt)
			if err == nil && bye {
				var more []ingest.Verdict
				more, err = ingestByeStream(addr, names[wildID], width)
				got = append(got, more...)
			}
			echoed[wildID] = append(echoed[wildID], got...)
			if !ok {
				resumeOK[wildID] = false
			}
			if err != nil {
				errs <- err
			}
		}()
		wg.Wait()
		select {
		case err := <-errs:
			return err
		default:
			return nil
		}
	}

	// ---- Process 1: first half under wire faults ----
	srv1, addr1, run1, err := ingestUp(cfg, replicate, width, store, false)
	if err != nil {
		return nil, err
	}
	defer srv1.Close()
	if err := runPhase(srv1, addr1, 0, half, false); err != nil {
		return nil, err
	}

	// ---- Quota storm on the throttled tenant ----
	storm, err := ingest.Dial(ingest.ClientConfig{
		Addr:  addr1,
		Hello: ingest.Hello{Width: width, Tenant: ingestStormTenant, Stream: "s0"},
	})
	if err != nil {
		return nil, fmt.Errorf("ingest drill: storm seed stream: %w", err)
	}
	rejected := 0
	for i := 1; i <= 5; i++ {
		_, err := ingest.Dial(ingest.ClientConfig{
			Addr:  addr1,
			Hello: ingest.Hello{Width: width, Tenant: ingestStormTenant, Stream: fmt.Sprintf("s%d", i)},
		})
		var rej *ingest.RejectedError
		switch {
		case errors.As(err, &rej) && rej.Event.Type == ingest.FrameRetry:
			rejected++ // explicit RETRY with a back-off hint, never silence
		case err == nil:
			return nil, fmt.Errorf("ingest drill: storm stream s%d admitted past the quota", i)
		default:
			return nil, fmt.Errorf("ingest drill: storm dial s%d: %w", i, err)
		}
	}
	storm.Close()

	// ---- Drain mid-run: refuse new work, finish buffered work ----
	if err := ingestWaitScored(srv1, keys, int64(half), 20*time.Second); err != nil {
		return nil, err
	}
	srv1.Drain("maintenance")
	_, derr := ingest.Dial(ingest.ClientConfig{
		Addr:  addr1,
		Hello: ingest.Hello{Width: width, Tenant: ingestDrillTenant, Stream: "late"},
	})
	var rej *ingest.RejectedError
	drainRefused := errors.As(derr, &rej) && rej.Event.Type == ingest.FrameDrain
	select {
	case rerr := <-run1:
		if rerr != nil {
			return nil, fmt.Errorf("ingest drill: drained engine run: %w", rerr)
		}
	case <-time.After(20 * time.Second):
		return nil, errors.New("ingest drill: engine did not finish draining")
	}
	st1 := srv1.StatsSnapshot(true)
	srv1.Close()

	// ---- Process 2: restart from the checkpoint, second half ----
	srv2, addr2, run2, err := ingestUp(cfg, replicate, width, store, true)
	if err != nil {
		return nil, err
	}
	defer srv2.Close()
	if err := runPhase(srv2, addr2, half, n, true); err != nil {
		return nil, err
	}
	select {
	case rerr := <-run2:
		if rerr != nil {
			return nil, fmt.Errorf("ingest drill: restarted engine run: %w", rerr)
		}
	case <-time.After(20 * time.Second):
		return nil, errors.New("ingest drill: restarted engine did not finish after BYEs")
	}
	st2 := srv2.StatsSnapshot(true)

	if res == nil {
		return echoed[:wildID], nil
	}

	// ---- Settle the ledger ----
	byKey := func(st ingest.Stats) map[string]ingest.StreamStats {
		m := make(map[string]ingest.StreamStats, len(st.PerStream))
		for _, ss := range st.PerStream {
			m[ss.Key] = ss
		}
		return m
	}
	m1, m2 := byKey(st1), byKey(st2)
	res.DrainRefused = drainRefused
	res.QuotaRejections = rejected
	res.WireErrors = st1.WireErrors + st2.WireErrors
	res.Evictions = st1.ConnsEvicted + st2.ConnsEvicted
	res.Reattaches = st1.Reattaches + st2.Reattaches
	res.DupsDropped = st1.SamplesDup + st2.SamplesDup
	res.ResumeOK, res.GapFree, res.BitIdentical, res.AccountingExact = true, true, true, true

	for sid, key := range keys {
		s1, s2 := m1[key], m2[key]
		rep, err := replicate()
		if err != nil {
			return nil, fmt.Errorf("ingest drill: reference chain: %w", err)
		}
		refs := make([]ingest.Verdict, n)
		buf := make([]uint64, width)
		for seq := uint32(0); seq < n; seq++ {
			v, err := rep.Observe(ingestVals(sid, seq, buf))
			if err != nil {
				return nil, fmt.Errorf("ingest drill: reference replay: %w", err)
			}
			refs[seq] = ingest.Verdict{Seq: seq, Interval: uint32(v.Interval), Score: v.Score, Malware: v.Malware}
		}
		out := IngestStreamOutcome{
			ID:           key,
			Role:         ingestRole(sid, cfg.Streams),
			Admitted:     s1.Accepted + s2.Accepted,
			Echoed:       len(echoed[sid]),
			Reattaches:   s1.Reattaches + s2.Reattaches,
			Shed:         s1.RingShed + s2.RingShed,
			Dups:         s1.Dups + s2.Dups,
			GapFree:      s1.Verdicts+s2.Verdicts == int64(n) && s1.RingShed+s2.RingShed == 0,
			BitIdentical: true,
		}
		prev := -1
		for _, v := range echoed[sid] {
			if int(v.Seq) <= prev || v.Seq >= n {
				out.GapFree = false
			}
			prev = int(v.Seq)
			if v != refs[v.Seq] {
				out.BitIdentical = false
			}
		}
		if sid != wildID && out.Echoed != int(n) {
			// Clean and crash clients read every verdict back; only the
			// wire-fault client may miss echoes while detached.
			out.GapFree = false
		}
		for _, ss := range []ingest.StreamStats{s1, s2} {
			if ss.Accepted != ss.Attributed+ss.RingShed || ss.Verdicts != ss.Attributed+ss.Held {
				res.AccountingExact = false
			}
		}
		if !resumeOK[sid] {
			res.ResumeOK = false
		}
		res.GapFree = res.GapFree && out.GapFree
		res.BitIdentical = res.BitIdentical && out.BitIdentical
		res.Streams = append(res.Streams, out)
	}
	return echoed[:wildID], nil
}

func ingestStreamsEqual(a, b [][]ingest.Verdict) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// RenderIngestChaos formats the drill's outcome as a checklist plus the
// per-stream ledger.
func RenderIngestChaos(r IngestChaosResult) string {
	var sb strings.Builder
	sb.WriteString("Ingest chaos drill: network front door under wire faults, quota storms and drain/restart\n")
	for _, s := range r.Streams {
		fmt.Fprintf(&sb, "  %-12s %-10s admitted=%2d echoed=%2d reattach=%d shed=%d dup=%d gapfree=%-5v bitident=%v\n",
			s.ID, s.Role, s.Admitted, s.Echoed, s.Reattaches, s.Shed, s.Dups, s.GapFree, s.BitIdentical)
	}
	check := func(ok bool, format string, args ...any) {
		mark := "PASS"
		if !ok {
			mark = "FAIL"
		}
		fmt.Fprintf(&sb, "  [%s] %s\n", mark, fmt.Sprintf(format, args...))
	}
	sb.WriteString("contracts:\n")
	check(r.GapFree, "verdict timelines gap-free across faults, crashes and the restart")
	check(r.BitIdentical, "echoed verdicts bit-identical to the unbroken reference chain")
	check(r.ResumeOK, "every reconnect resumed at the server's authoritative position")
	check(r.DrainRefused, "admission during drain refused with an explicit DRAIN frame")
	check(r.QuotaRejections > 0, "quota storm rejected explicitly with RETRY (%d rejections)", r.QuotaRejections)
	check(r.WireErrors > 0 && r.Reattaches > 0, "wire damage evicted connections (%d wire errors, %d evictions), streams survived (%d reattaches)",
		r.WireErrors, r.Evictions, r.Reattaches)
	check(r.AccountingExact, "sample/verdict accounting exact on every stream (dups dropped: %d)", r.DupsDropped)
	check(r.Deterministic, "identical seeds reproduce identical echoed verdict streams")
	return sb.String()
}

// ---- Ingest throughput/overload bench ----

// IngestBenchConfig parameterises the ingest overload sweep.
type IngestBenchConfig struct {
	// Streams is the concurrent client count (default 8).
	Streams int
	// Samples per stream (default 200).
	Samples int
	// Window is the per-stream inflight cap (default 32).
	Window int
	// Interval is the fleet wheel pacing — the service rate each stream
	// is drained at (default 5ms).
	Interval time.Duration
	// Multipliers sweeps offered load as a multiple of the service
	// rate (default 0.5, 1, 2, 4): below 1 the plane must be shed-free,
	// above 1 overload must surface as explicit shed, not collapse.
	Multipliers []float64
	// Capacity adds the unpaced capacity measurement: clients blast the
	// wire as fast as it admits (shed is expected and explicit) for
	// CapacityMillis, once over the legacy single-frame protocol and
	// once batched, reporting max samples/s, syscalls/sample and p99
	// verdict latency for each.
	Capacity bool
	// CapacityMillis is the blast window per capacity point (default 600).
	CapacityMillis int
}

func (c IngestBenchConfig) streams() int {
	if c.Streams > 0 {
		return c.Streams
	}
	return 8
}

func (c IngestBenchConfig) samples() int {
	if c.Samples > 0 {
		return c.Samples
	}
	return 200
}

func (c IngestBenchConfig) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 32
}

func (c IngestBenchConfig) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 5 * time.Millisecond
}

func (c IngestBenchConfig) capacityWindow() time.Duration {
	if c.CapacityMillis > 0 {
		return time.Duration(c.CapacityMillis) * time.Millisecond
	}
	return 600 * time.Millisecond
}

func (c IngestBenchConfig) multipliers() []float64 {
	if len(c.Multipliers) > 0 {
		return c.Multipliers
	}
	return []float64{0.5, 1, 2, 4}
}

// IngestPoint is one offered-load multiplier's measurement.
type IngestPoint struct {
	Multiplier    float64
	OfferedPerSec float64
	WallMillis    float64
	Accepted      int64
	Shed          int64
	Attributed    int64
	ShedPct       float64
	SamplesPerSec float64
	VerdictsPerSec float64
	Evictions     int64
}

// CapacityPoint is one unpaced blast measurement: how fast the wire
// admits samples when clients stop pacing, and what each sample costs
// in syscalls.
type CapacityPoint struct {
	Batched           bool
	Sent              int64   // samples the clients put on the wire
	Accepted          int64   // samples the server admitted
	Shed              int64   // admitted then dropped (ring overflow, explicit)
	SendMillis        float64 // blast window wall time
	SamplesPerSec     float64 // Accepted / send window
	VerdictsPerSec    float64 // scored verdicts / total wall
	ClientWrites      int64   // client socket Write calls
	ServerWrites      int64   // server socket Write calls
	SyscallsPerSample float64 // (ClientWrites + ServerWrites) / Accepted
	SampleBatches     int64   // SAMPLE_BATCH frames the server decoded
	VerdictBatches    int64   // VERDICT_BATCH frames the server emitted
	P99LatencyMillis  float64 // p99 send->verdict echo over sampled seqs
}

// IngestCapacity pairs the batched and unbatched blast points.
type IngestCapacity struct {
	Streams        int
	DurationMillis float64
	Unbatched      CapacityPoint
	Batched        CapacityPoint
	// Speedup is batched max samples/s over unbatched — the tentpole
	// number: how much one header + one CRC per N records buys.
	Speedup float64
}

// IngestReport is the ingest overload sweep, serialized to
// BENCH_INGEST.json by hmd-bench -exp ingest.
type IngestReport struct {
	Chain          []string
	Width          int
	Streams        int
	Samples        int
	Window         int
	IntervalMillis float64
	Points         []IngestPoint
	// Capacity is present when the bench ran with -capacity.
	Capacity *IngestCapacity `json:",omitempty"`
}

// IngestBench sweeps offered load over real loopback TCP clients
// against the ingest server and reports throughput and shed behaviour.
func (ctx *Context) IngestBench(cfg IngestBenchConfig) (*IngestReport, error) {
	chain, err := ctx.Builder.BuildChain("REPTree", zoo.Boosted, []int{4, 2}, core.ChainConfig{})
	if err != nil {
		return nil, fmt.Errorf("ingest bench: building chain: %w", err)
	}
	replicate, err := core.NewChainReplicator(chain)
	if err != nil {
		return nil, fmt.Errorf("ingest bench: replicating chain: %w", err)
	}
	rep := &IngestReport{
		Width:          len(chain.Events()),
		Streams:        cfg.streams(),
		Samples:        cfg.samples(),
		Window:         cfg.window(),
		IntervalMillis: durMillis(cfg.interval()),
	}
	for s := 0; s <= chain.Stages(); s++ {
		rep.Chain = append(rep.Chain, chain.StageName(s))
	}
	for _, m := range cfg.multipliers() {
		pt, err := ingestBenchPoint(replicate, rep.Width, cfg, m)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, pt)
	}
	if cfg.Capacity {
		cap := &IngestCapacity{
			Streams:        cfg.streams(),
			DurationMillis: durMillis(cfg.capacityWindow()),
		}
		if cap.Unbatched, err = ingestCapacityPoint(replicate, rep.Width, cfg, false); err != nil {
			return nil, err
		}
		if cap.Batched, err = ingestCapacityPoint(replicate, rep.Width, cfg, true); err != nil {
			return nil, err
		}
		if cap.Unbatched.SamplesPerSec > 0 {
			cap.Speedup = cap.Batched.SamplesPerSec / cap.Unbatched.SamplesPerSec
		}
		rep.Capacity = cap
	}
	return rep, nil
}

// ingestCapacityPoint measures the wire's admission ceiling: streams()
// clients blast unpaced for the capacity window — the ring's
// drop-oldest overflow makes shed explicit instead of applying
// backpressure, so the admission rate is the wire path's, not the
// scoring wheel's. batched selects protocol v2 (Queue/Flush,
// SAMPLE_BATCH) versus a protocol-v1 handshake (single frames, the
// legacy wire format).
func ingestCapacityPoint(replicate func() (*core.FallbackChain, error), width int,
	cfg IngestBenchConfig, batched bool) (CapacityPoint, error) {
	pt := CapacityPoint{Batched: batched}
	eng, err := fleet.New(fleet.Config{
		NewChain:   replicate,
		WheelSlots: 4,
		Interval:   cfg.interval(),
		Policy:     supervise.Block,
	})
	if err != nil {
		return pt, fmt.Errorf("ingest capacity: engine: %w", err)
	}
	srv, err := ingest.NewServer(ingest.Config{Engine: eng, Width: width, Window: cfg.window()})
	if err != nil {
		return pt, fmt.Errorf("ingest capacity: server: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return pt, fmt.Errorf("ingest capacity: listen: %w", err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	run := make(chan error, 1)
	go func() { run <- eng.Run(context.Background()) }()

	var (
		sent, clientWrites atomic.Int64
		latMu              sync.Mutex
		lats               []time.Duration
	)
	start := time.Now()
	deadline := start.Add(cfg.capacityWindow())
	var sendEnd atomic.Int64 // latest sender finish, ns since start
	var wg sync.WaitGroup
	errs := make(chan error, cfg.streams())
	for i := 0; i < cfg.streams(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, w, cl, err := ingestCapacityClient(ln.Addr().String(), fmt.Sprintf("cap%d", i),
				i, width, batched, deadline, &sendEnd, start)
			sent.Add(n)
			clientWrites.Add(w)
			latMu.Lock()
			lats = append(lats, cl...)
			latMu.Unlock()
			if err != nil {
				select {
				case errs <- err:
				default:
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return pt, fmt.Errorf("ingest capacity: client: %w", err)
	default:
	}
	select {
	case rerr := <-run:
		if rerr != nil {
			return pt, fmt.Errorf("ingest capacity: engine run: %w", rerr)
		}
	case <-time.After(60 * time.Second):
		return pt, errors.New("ingest capacity: engine did not finish")
	}
	wall := time.Since(start)
	st := srv.StatsSnapshot(false)

	if st.SamplesAccepted != st.VerdictsAttributed+st.SamplesShed {
		return pt, fmt.Errorf("ingest capacity: accounting leak: accepted %d != attributed %d + shed %d",
			st.SamplesAccepted, st.VerdictsAttributed, st.SamplesShed)
	}
	pt.Sent = sent.Load()
	pt.Accepted = st.SamplesAccepted
	pt.Shed = st.SamplesShed
	sendWall := time.Duration(sendEnd.Load())
	if sendWall <= 0 {
		sendWall = wall
	}
	pt.SendMillis = durMillis(sendWall)
	pt.SamplesPerSec = float64(st.SamplesAccepted) / sendWall.Seconds()
	pt.VerdictsPerSec = float64(st.Verdicts) / wall.Seconds()
	pt.ClientWrites = clientWrites.Load()
	pt.ServerWrites = st.WriteSyscalls
	if st.SamplesAccepted > 0 {
		pt.SyscallsPerSample = float64(pt.ClientWrites+pt.ServerWrites) / float64(st.SamplesAccepted)
	}
	pt.SampleBatches = st.SampleBatches
	pt.VerdictBatches = st.VerdictBatches
	pt.P99LatencyMillis = durMillis(percentileDuration(lats, 0.99))
	return pt, nil
}

// ingestCapacityClient blasts one stream until the shared deadline,
// stamping every 64th sample so the reader goroutine can measure
// send-to-verdict latency on the survivors (under blast most samples
// are shed; the sampled survivors bound the echo path's latency).
func ingestCapacityClient(addr, name string, sid, width int, batched bool,
	deadline time.Time, sendEnd *atomic.Int64, epoch time.Time) (int64, int64, []time.Duration, error) {
	hello := ingest.Hello{Width: width, Tenant: "cap", Stream: name}
	if !batched {
		hello.Version = 1 // legacy handshake: single frames both ways
	}
	c, err := ingest.Dial(ingest.ClientConfig{Addr: addr, Timeout: 30 * time.Second, Hello: hello})
	if err != nil {
		return 0, 0, nil, err
	}
	defer c.Close()
	if c.Batching() != batched {
		return 0, 0, nil, fmt.Errorf("%s: negotiated batching %v, want %v", name, c.Batching(), batched)
	}
	var stampMu sync.Mutex
	stamps := make(map[uint32]time.Time)
	var lats []time.Duration
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			ev, err := c.Next()
			if err != nil {
				return // server finished the stream and hung up
			}
			if ev.Type != ingest.FrameVerdict {
				continue
			}
			stampMu.Lock()
			if ts, ok := stamps[ev.Verdict.Seq]; ok {
				lats = append(lats, time.Since(ts))
				delete(stamps, ev.Verdict.Seq)
			}
			stampMu.Unlock()
		}
	}()
	buf := make([]uint64, width)
	var seq uint32
	for time.Now().Before(deadline) {
		if seq&63 == 0 {
			stampMu.Lock()
			stamps[seq] = time.Now()
			stampMu.Unlock()
		}
		if batched {
			err = c.Queue(seq, ingestVals(sid, seq, buf))
		} else {
			err = c.Send(seq, ingestVals(sid, seq, buf))
		}
		if err != nil {
			return int64(seq), c.WriteCalls(), nil, fmt.Errorf("%s send %d: %w", name, seq, err)
		}
		seq++
	}
	if err := c.Flush(); err != nil {
		return int64(seq), c.WriteCalls(), nil, fmt.Errorf("%s flush: %w", name, err)
	}
	// Record when this sender stopped offering load (max across clients
	// is the blast window's true end).
	end := int64(time.Since(epoch))
	for {
		cur := sendEnd.Load()
		if end <= cur || sendEnd.CompareAndSwap(cur, end) {
			break
		}
	}
	if err := c.Bye(); err != nil {
		return int64(seq), c.WriteCalls(), nil, fmt.Errorf("%s BYE: %w", name, err)
	}
	<-done
	stampMu.Lock()
	out := append([]time.Duration(nil), lats...)
	stampMu.Unlock()
	return int64(seq), c.WriteCalls(), out, nil
}

// percentileDuration returns the p-quantile of ds (0 when empty).
func percentileDuration(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(p * float64(len(ds)-1))
	return ds[idx]
}

func ingestBenchPoint(replicate func() (*core.FallbackChain, error), width int,
	cfg IngestBenchConfig, m float64) (IngestPoint, error) {
	var pt IngestPoint
	eng, err := fleet.New(fleet.Config{
		NewChain: replicate,
		// Few slots keep the tick period comfortably above timer
		// resolution at millisecond sampling intervals; the rotation
		// period (the service rate) is unchanged.
		WheelSlots: 4,
		Interval:   cfg.interval(),
		Policy:     supervise.Block,
	})
	if err != nil {
		return pt, fmt.Errorf("ingest bench: engine: %w", err)
	}
	srv, err := ingest.NewServer(ingest.Config{Engine: eng, Width: width, Window: cfg.window()})
	if err != nil {
		return pt, fmt.Errorf("ingest bench: server: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return pt, fmt.Errorf("ingest bench: listen: %w", err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	run := make(chan error, 1)
	go func() { run <- eng.Run(context.Background()) }()

	gap := time.Duration(float64(cfg.interval()) / m)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.streams())
	for i := 0; i < cfg.streams(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ingestBenchClient(ln.Addr().String(), fmt.Sprintf("b%d", i), i, width, cfg.samples(), gap); err != nil {
				select {
				case errs <- err:
				default:
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return pt, fmt.Errorf("ingest bench: client: %w", err)
	default:
	}
	// Every client said BYE; the engine finishes all streams and exits.
	select {
	case rerr := <-run:
		if rerr != nil {
			return pt, fmt.Errorf("ingest bench: engine run: %w", rerr)
		}
	case <-time.After(60 * time.Second):
		return pt, errors.New("ingest bench: engine did not finish")
	}
	wall := time.Since(start)
	st := srv.StatsSnapshot(false)

	pt.Multiplier = m
	pt.OfferedPerSec = float64(cfg.streams()) / gap.Seconds()
	pt.WallMillis = durMillis(wall)
	pt.Accepted = st.SamplesAccepted
	pt.Shed = st.SamplesShed
	pt.Attributed = st.VerdictsAttributed
	pt.Evictions = st.ConnsEvicted
	if st.SamplesAccepted > 0 {
		pt.ShedPct = 100 * float64(st.SamplesShed) / float64(st.SamplesAccepted)
	}
	pt.SamplesPerSec = float64(st.SamplesAccepted) / wall.Seconds()
	pt.VerdictsPerSec = float64(st.Verdicts) / wall.Seconds()
	if st.SamplesAccepted != st.VerdictsAttributed+st.SamplesShed {
		return pt, fmt.Errorf("ingest bench: accounting leak at x%.1f: accepted %d != attributed %d + shed %d",
			m, st.SamplesAccepted, st.VerdictsAttributed, st.SamplesShed)
	}
	return pt, nil
}

// ingestBenchClient offers one paced stream and drains its own echo on
// a second goroutine (a client that stops reading would rightly be
// evicted as a slow reader).
func ingestBenchClient(addr, name string, sid, width, samples int, gap time.Duration) error {
	c, err := ingest.Dial(ingest.ClientConfig{
		Addr:    addr,
		Timeout: 30 * time.Second,
		Hello:   ingest.Hello{Width: width, Tenant: "bench", Stream: name},
	})
	if err != nil {
		return err
	}
	defer c.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := c.Next(); err != nil {
				return // server finished the stream and hung up
			}
		}
	}()
	buf := make([]uint64, width)
	next := time.Now()
	for seq := uint32(0); seq < uint32(samples); seq++ {
		if err := c.Send(seq, ingestVals(sid, seq, buf)); err != nil {
			return fmt.Errorf("%s send %d: %w", name, seq, err)
		}
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	if err := c.Bye(); err != nil {
		return fmt.Errorf("%s BYE: %w", name, err)
	}
	<-done
	return nil
}

// RenderIngest formats the overload sweep for the console.
func RenderIngest(r *IngestReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ingest overload sweep (%s; %d streams x %d samples, window %d, interval %.1fms)\n",
		strings.Join(r.Chain, " -> "), r.Streams, r.Samples, r.Window, r.IntervalMillis)
	sb.WriteString("  offered x   offered/s   accepted/s   verdicts/s   shed%    evictions\n")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "  %9.1f   %9.0f   %10.0f   %10.0f   %5.1f   %10d\n",
			p.Multiplier, p.OfferedPerSec, p.SamplesPerSec, p.VerdictsPerSec, p.ShedPct, p.Evictions)
	}
	if c := r.Capacity; c != nil {
		fmt.Fprintf(&sb, "Wire capacity (unpaced blast, %d streams x %.0fms):\n", c.Streams, c.DurationMillis)
		sb.WriteString("  mode        samples/s   verdicts/s   syscalls/sample   p99 ms   shed\n")
		for _, p := range []CapacityPoint{c.Unbatched, c.Batched} {
			mode := "unbatched"
			if p.Batched {
				mode = "batched"
			}
			fmt.Fprintf(&sb, "  %-9s   %9.0f   %10.0f   %15.4f   %6.2f   %d\n",
				mode, p.SamplesPerSec, p.VerdictsPerSec, p.SyscallsPerSample, p.P99LatencyMillis, p.Shed)
		}
		fmt.Fprintf(&sb, "  batched/unbatched samples/s speedup: %.1fx\n", c.Speedup)
	}
	return sb.String()
}
