package experiments

import (
	"fmt"
	"strings"

	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/mlearn/zoo"
)

// The robustness study extends the paper's reduced-HPC results along
// the axis the paper leaves implicit: how do general vs ensemble
// detectors hold up when the counter readings themselves degrade?
// Detectors are trained on clean data (deployment trains in the lab),
// then evaluated on held-out splits corrupted by a seeded fault plan at
// increasing rates, producing accuracy/AUC-vs-fault-rate curves. The
// sweep is deterministic per seed: identical plans reproduce identical
// curves.

// RobustnessPoint is one fault rate's evaluation of the three detector
// variants of a single (classifier, HPC budget) configuration.
type RobustnessPoint struct {
	Rate    float64
	General eval.Result
	Boosted eval.Result
	Bagged  eval.Result
}

// RobustnessCurve is a full sweep for one configuration.
type RobustnessCurve struct {
	Classifier string
	HPCs       int
	Kinds      []faults.Kind
	Points     []RobustnessPoint
}

// RobustnessSweep evaluates the general, boosted and bagged variants of
// baseName at the given HPC budget against test inputs corrupted at
// each fault rate. plan's Rate field is overridden per point; its Seed,
// Kinds and severity knobs are honoured. Rate 0 reproduces the clean
// Table 2 numbers exactly.
func (ctx *Context) RobustnessSweep(baseName string, hpcs int, rates []float64, plan faults.Plan) (RobustnessCurve, error) {
	curve := RobustnessCurve{Classifier: baseName, HPCs: hpcs, Kinds: plan.Kinds}

	type variantDet struct {
		variant zoo.Variant
		dst     func(*RobustnessPoint) *eval.Result
	}
	variants := []variantDet{
		{zoo.General, func(p *RobustnessPoint) *eval.Result { return &p.General }},
		{zoo.Boosted, func(p *RobustnessPoint) *eval.Result { return &p.Boosted }},
		{zoo.Bagged, func(p *RobustnessPoint) *eval.Result { return &p.Bagged }},
	}

	for _, rate := range rates {
		pt := RobustnessPoint{Rate: rate}
		p := plan
		p.Rate = rate
		for _, v := range variants {
			det, _, err := ctx.Detector(baseName, v.variant, hpcs)
			if err != nil {
				return curve, fmt.Errorf("robustness: training %s/%s/%d: %w", baseName, v.variant, hpcs, err)
			}
			testK, err := ctx.Builder.TestFor(det)
			if err != nil {
				return curve, fmt.Errorf("robustness: test split for %s: %w", det.Name(), err)
			}
			res, err := eval.Measure(det.Model, p.CorruptDataset(testK))
			if err != nil {
				return curve, fmt.Errorf("robustness: measuring %s at rate %.2f: %w", det.Name(), rate, err)
			}
			*v.dst(&pt) = res
		}
		curve.Points = append(curve.Points, pt)
	}
	return curve, nil
}

// RenderRobustness formats a robustness curve as an
// accuracy/AUC-vs-fault-rate table.
func RenderRobustness(c RobustnessCurve) string {
	var sb strings.Builder
	kinds := "all"
	if len(c.Kinds) > 0 {
		names := make([]string, len(c.Kinds))
		for i, k := range c.Kinds {
			names[i] = k.String()
		}
		kinds = strings.Join(names, ",")
	}
	fmt.Fprintf(&sb, "Robustness: %dHPC %s under HPC faults (%s), general vs ensembles\n", c.HPCs, c.Classifier, kinds)
	fmt.Fprintf(&sb, "%5s | %8s %6s | %8s %6s | %8s %6s\n",
		"rate", "gen acc", "AUC", "bst acc", "AUC", "bag acc", "AUC")
	for _, p := range c.Points {
		fmt.Fprintf(&sb, "%5.2f | %7.1f%% %6.3f | %7.1f%% %6.3f | %7.1f%% %6.3f\n",
			p.Rate,
			p.General.Accuracy*100, p.General.AUC,
			p.Boosted.Accuracy*100, p.Boosted.AUC,
			p.Bagged.Accuracy*100, p.Bagged.AUC)
	}
	return sb.String()
}
