package experiments

import (
	"strings"
	"testing"
)

// TestClusterChaos is the acceptance drill for the multi-node plane:
// three in-process serving nodes behind a coordinator, a scripted node
// crash (lease-expiry failover), a coordinator partition, and a full
// rolling upgrade — with every verdict timeline bit-identical to an
// unbroken single-node reference. scripts/check.sh runs it in -short
// mode as the smoke gate.
func TestClusterChaos(t *testing.T) {
	ctx := testContext(t)
	cfg := ClusterChaosConfig{Seed: 0xC1A0}
	if testing.Short() {
		cfg.Streams = 3
		cfg.Intervals = 24
	}
	res, err := ctx.ClusterChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BitIdentical {
		t.Error("cluster verdicts diverge from the single-node reference")
	}
	if !res.CoverageOK {
		t.Error("a stream's echo coverage exceeded the crash budget")
	}
	if res.LeaseExpiries < 2 {
		t.Errorf("lease expiries %d, want >= 2 (crash + partition)", res.LeaseExpiries)
	}
	if res.FailoverHandoffs == 0 || res.DrainHandoffs == 0 {
		t.Errorf("handoffs failover=%d drain=%d, want both > 0", res.FailoverHandoffs, res.DrainHandoffs)
	}
	if !res.EveryStreamMoved {
		t.Error("a stream never changed hands despite the rolling upgrade")
	}
	if res.RollsCompleted != res.Nodes {
		t.Errorf("rolling upgrade completed %d/%d nodes", res.RollsCompleted, res.Nodes)
	}
	if res.Redirects == 0 {
		t.Error("no client was ever redirected to a stream's owner")
	}
	if res.Reconnects < len(res.Streams)+1 {
		t.Errorf("reconnects %d, want >= %d (crash + rolling upgrade)", res.Reconnects, len(res.Streams)+1)
	}
	if !res.AccountingExact {
		t.Error("a graceful incarnation's accounting leaked")
	}
	if !res.KilledLossBounded {
		t.Error("the crashed node lost more than its in-flight window")
	}
	if !res.MembershipHealed {
		t.Error("final membership not back to full strength")
	}
	if !res.Passed() {
		t.Errorf("cluster chaos drill failed: %+v", res)
	}

	out := RenderClusterChaos(res)
	for _, want := range []string{"Cluster chaos drill", "[PASS]", "bit-identical", "rolling upgrade"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderClusterChaos output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "[FAIL]") {
		t.Errorf("RenderClusterChaos reports failures:\n%s", out)
	}
}

func TestClusterChaosRejectsBadConfigs(t *testing.T) {
	ctx := testContext(t)
	if _, err := ctx.ClusterChaos(ClusterChaosConfig{Nodes: 1}); err == nil {
		t.Error("single-node cluster accepted")
	}
	if _, err := ctx.ClusterChaos(ClusterChaosConfig{Intervals: 10}); err == nil {
		t.Error("non-quarterable interval count accepted")
	}
}

// TestClusterBenchSmoke stands up a 3-process cluster and pushes one
// windowed workload through it — the scripts/check.sh bench gate.
func TestClusterBenchSmoke(t *testing.T) {
	ctx := testContext(t)
	rep, err := ctx.ClusterBench(ClusterBenchConfig{
		NodeCounts:     []int{3},
		StreamsPerNode: 2,
		Samples:        40,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("points: %+v", rep.Points)
	}
	pt := rep.Points[0]
	if pt.Nodes != 3 || pt.Streams != 6 || pt.Samples != 40 {
		t.Fatalf("unexpected shape: %+v", pt)
	}
	if pt.IntervalsPerSec <= 0 {
		t.Fatalf("no throughput measured: %+v", pt)
	}
	out := RenderCluster(rep)
	if !strings.Contains(out, "Cluster scaling sweep") || !strings.Contains(out, "intervals/s") {
		t.Errorf("RenderCluster output malformed:\n%s", out)
	}
}

// TestClusterCapacitySmoke blasts a 2-node cluster briefly in both wire
// formats and checks the structural claims: exact settled accounting,
// batching negotiated only on the batched pass, and batch frames
// actually on the wire.
func TestClusterCapacitySmoke(t *testing.T) {
	ctx := testContext(t)
	rep, err := ctx.ClusterBench(ClusterBenchConfig{
		NodeCounts:     []int{2},
		StreamsPerNode: 2,
		Samples:        20,
		Seed:           7,
		Capacity:       true,
		CapacityMillis: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Capacity
	if c == nil {
		t.Fatal("capacity mode produced no capacity section")
	}
	if c.Nodes != 2 || c.Streams != 4 {
		t.Fatalf("unexpected shape: %+v", c)
	}
	if c.Unbatched.SampleBatches != 0 {
		t.Errorf("unbatched pass decoded batch frames: %+v", c.Unbatched)
	}
	if c.Batched.SampleBatches == 0 {
		t.Error("batched pass decoded no SAMPLE_BATCH frames")
	}
	for _, p := range []ClusterCapacityPoint{c.Unbatched, c.Batched} {
		if p.Accepted == 0 || p.SamplesPerSec <= 0 {
			t.Errorf("capacity point admitted nothing: %+v", p)
		}
	}
	out := RenderCluster(rep)
	if !strings.Contains(out, "Cluster wire capacity") || !strings.Contains(out, "speedup") {
		t.Errorf("RenderCluster missing capacity section:\n%s", out)
	}
}
