package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/source"
	"repro/internal/mlearn/zoo"
	"repro/internal/supervise"
)

// The fleet experiment benchmarks the sharded multi-stream serving
// engine against the obvious alternative — one supervised pipeline
// (three goroutines, two queues) per monitored stream — on the same
// paper-scale fallback chain (4HPC → 2HPC Boosted-REPTree → prior).
// Both sides consume identical cheap synthetic sources so the engines'
// overhead, not simulated microarchitecture, is what the curve
// measures. Both run the lossless Block policy, so every configuration
// does exactly streams x intervals verdicts of work.

// FleetBenchConfig parameterises the fleet benchmark.
type FleetBenchConfig struct {
	// StreamCounts is the sweep (default 16, 64, 256, 512, 1024).
	StreamCounts []int
	// Intervals per stream (default 200).
	Intervals int
	// Shards is the fleet worker pool (default GOMAXPROCS).
	Shards int
	// BaselineMax caps the stream count the per-pipeline baseline is
	// run at — N pipelines is 3N goroutines and N model replicas
	// (default 256, where the headline comparison sits).
	BaselineMax int
}

func (c FleetBenchConfig) streamCounts() []int {
	if len(c.StreamCounts) > 0 {
		return c.StreamCounts
	}
	return []int{16, 64, 256, 512, 1024}
}

func (c FleetBenchConfig) intervals() int {
	if c.Intervals > 0 {
		return c.Intervals
	}
	return 200
}

func (c FleetBenchConfig) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return runtime.GOMAXPROCS(0)
}

func (c FleetBenchConfig) baselineMax() int {
	if c.BaselineMax > 0 {
		return c.BaselineMax
	}
	return 256
}

// FleetPoint is one stream count's measurement.
type FleetPoint struct {
	Streams int
	// Fleet engine, unpaced Block run: wall time, throughput, and the
	// worst shard's harvest-to-verdict latency percentiles.
	FleetWallMillis      float64
	FleetIntervalsPerSec float64
	FleetP50Micros       float64
	FleetP99Micros       float64
	// Sustains10ms: the engine clears 100 intervals/sec/stream — every
	// stream can be served at the paper's 10 ms sampling interval.
	Sustains10ms bool
	// Per-pipeline baseline (zero when skipped above BaselineMax).
	BaselineWallMillis      float64
	BaselineIntervalsPerSec float64
	// SpeedupX is fleet throughput over baseline throughput.
	SpeedupX float64
}

// FleetReport is the fleet-serving benchmark, serialized to
// BENCH_FLEET.json by hmd-bench -exp fleet.
type FleetReport struct {
	// Chain names the fallback stages both engines serve.
	Chain     []string
	Shards    int
	Intervals int
	Points    []FleetPoint
}

// Fleet runs the multi-stream serving benchmark on the context's
// trained chain and returns the report.
func (ctx *Context) Fleet(cfg FleetBenchConfig) (*FleetReport, error) {
	chain, err := ctx.Builder.BuildChain("REPTree", zoo.Boosted, []int{4, 2}, core.ChainConfig{})
	if err != nil {
		return nil, err
	}
	width := len(chain.Events())
	replicate, err := core.NewChainReplicator(chain)
	if err != nil {
		return nil, err
	}

	rep := &FleetReport{Shards: cfg.shards(), Intervals: cfg.intervals()}
	for s := 0; s <= chain.Stages(); s++ {
		rep.Chain = append(rep.Chain, chain.StageName(s))
	}

	for _, n := range cfg.streamCounts() {
		pt := FleetPoint{Streams: n}

		e, err := fleet.New(fleet.Config{
			Chain:          chain,
			Shards:         cfg.shards(),
			Policy:         supervise.Block,
			PendingBatches: 8,
		})
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if err := e.Add(fleet.StreamConfig{
				ID:        fmt.Sprintf("s%d", i),
				Source:    source.NewSynthetic(uint64(i)+1, width),
				Intervals: cfg.intervals(),
			}); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		if err := e.Run(context.Background()); err != nil {
			return nil, err
		}
		wall := time.Since(start)
		snap := e.Stats(false)
		want := int64(n * cfg.intervals())
		if snap.Verdicts != want || snap.LostVerdicts != 0 {
			return nil, fmt.Errorf("fleet bench at %d streams: %d verdicts (%d lost), want %d lossless",
				n, snap.Verdicts, snap.LostVerdicts, want)
		}
		pt.FleetWallMillis = durMillis(wall)
		pt.FleetIntervalsPerSec = float64(want) / wall.Seconds()
		for _, sh := range snap.Shards {
			if sh.P50LatencyMicros > pt.FleetP50Micros {
				pt.FleetP50Micros = sh.P50LatencyMicros
			}
			if sh.P99LatencyMicros > pt.FleetP99Micros {
				pt.FleetP99Micros = sh.P99LatencyMicros
			}
		}
		pt.Sustains10ms = pt.FleetIntervalsPerSec >= float64(100*n)

		if n <= cfg.baselineMax() {
			baseWall, err := pipelineBaseline(replicate, n, cfg.intervals(), width)
			if err != nil {
				return nil, err
			}
			pt.BaselineWallMillis = durMillis(baseWall)
			pt.BaselineIntervalsPerSec = float64(want) / baseWall.Seconds()
			pt.SpeedupX = pt.FleetIntervalsPerSec / pt.BaselineIntervalsPerSec
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// pipelineBaseline serves the same workload as one supervised pipeline
// per stream: n pipelines, each with its own chain replica and three
// stage goroutines, all running concurrently. Replica construction
// happens outside the timed section.
func pipelineBaseline(replicate func() (*core.FallbackChain, error), n, intervals, width int) (time.Duration, error) {
	pipes := make([]*supervise.Pipeline, n)
	srcs := make([]supervise.Source, n)
	for i := range pipes {
		ch, err := replicate()
		if err != nil {
			return 0, err
		}
		p, err := supervise.New(supervise.Config{
			Chain:          ch,
			Policy:         supervise.Block,
			RestartBackoff: -1,
		})
		if err != nil {
			return 0, err
		}
		pipes[i] = p
		srcs[i] = source.NewSynthetic(uint64(i)+1, width)
	}

	errs := make(chan error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range pipes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			verdicts, err := pipes[i].Run(context.Background(), srcs[i], intervals)
			if err == nil && len(verdicts) != intervals {
				err = fmt.Errorf("pipeline %d: %d verdicts, want %d", i, len(verdicts), intervals)
			}
			if err != nil {
				select {
				case errs <- err:
				default:
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return elapsed, nil
}

func durMillis(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1e3
}

// RenderFleet formats the fleet report for the console.
func RenderFleet(r *FleetReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fleet serving benchmark (%s; %d shards, %d intervals/stream)\n",
		strings.Join(r.Chain, " -> "), r.Shards, r.Intervals)
	sb.WriteString("  streams   fleet iv/s   p50 us   p99 us   10ms?   baseline iv/s   speedup\n")
	for _, p := range r.Points {
		sustains := "no"
		if p.Sustains10ms {
			sustains = "yes"
		}
		if p.BaselineIntervalsPerSec > 0 {
			fmt.Fprintf(&sb, "  %7d   %10.0f   %6.0f   %6.0f   %5s   %13.0f   %6.2fx\n",
				p.Streams, p.FleetIntervalsPerSec, p.FleetP50Micros, p.FleetP99Micros,
				sustains, p.BaselineIntervalsPerSec, p.SpeedupX)
		} else {
			fmt.Fprintf(&sb, "  %7d   %10.0f   %6.0f   %6.0f   %5s   %13s   %7s\n",
				p.Streams, p.FleetIntervalsPerSec, p.FleetP50Micros, p.FleetP99Micros,
				sustains, "-", "-")
		}
	}
	return sb.String()
}
