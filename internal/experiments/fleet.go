package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/mlearn/zoo"
	"repro/internal/source"
	"repro/internal/supervise"
)

// The fleet experiment benchmarks the sharded multi-stream serving
// engine against the obvious alternative — one supervised pipeline
// (three goroutines, two queues) per monitored stream — on the same
// paper-scale fallback chain (4HPC → 2HPC Boosted-REPTree → prior).
// Both sides consume identical cheap synthetic sources so the engines'
// overhead, not simulated microarchitecture, is what the curve
// measures. Both run the lossless Block policy, so every configuration
// does exactly streams x intervals verdicts of work.

// FleetBenchConfig parameterises the fleet benchmark.
type FleetBenchConfig struct {
	// StreamCounts is the sweep (default 16, 64, 256, 512, 1024).
	StreamCounts []int
	// Intervals per stream (default 200).
	Intervals int
	// Shards is the fleet worker pool (default GOMAXPROCS).
	Shards int
	// BaselineMax caps the stream count the per-pipeline baseline is
	// run at — N pipelines is 3N goroutines and N model replicas
	// (default 256, where the headline comparison sits).
	BaselineMax int
	// DensityCounts is the stream-density sweep on the MLP-heavy chain,
	// compiled vs quantized (default 1024, 2048, 4096, 8192). Empty
	// slice means the default; set SkipDensity to omit the sweep.
	DensityCounts []int
	// SkipDensity omits the density sweep entirely.
	SkipDensity bool
}

func (c FleetBenchConfig) streamCounts() []int {
	if len(c.StreamCounts) > 0 {
		return c.StreamCounts
	}
	return []int{16, 64, 256, 512, 1024}
}

func (c FleetBenchConfig) densityCounts() []int {
	if len(c.DensityCounts) > 0 {
		return c.DensityCounts
	}
	return []int{1024, 2048, 4096, 8192}
}

func (c FleetBenchConfig) intervals() int {
	if c.Intervals > 0 {
		return c.Intervals
	}
	return 200
}

func (c FleetBenchConfig) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return runtime.GOMAXPROCS(0)
}

func (c FleetBenchConfig) baselineMax() int {
	if c.BaselineMax > 0 {
		return c.BaselineMax
	}
	return 256
}

// FleetPoint is one stream count's measurement.
type FleetPoint struct {
	Streams int
	// Fleet engine, unpaced Block run: wall time, throughput, and the
	// worst shard's harvest-to-verdict latency percentiles.
	FleetWallMillis      float64
	FleetIntervalsPerSec float64
	FleetP50Micros       float64
	FleetP99Micros       float64
	FleetP999Micros      float64
	// Sustains10ms: the engine clears 100 intervals/sec/stream — every
	// stream can be served at the paper's 10 ms sampling interval.
	Sustains10ms bool
	// Per-pipeline baseline (zero when skipped above BaselineMax).
	BaselineWallMillis      float64
	BaselineIntervalsPerSec float64
	// SpeedupX is fleet throughput over baseline throughput.
	SpeedupX float64
}

// DensityPoint is one stream count's measurement in the density sweep:
// the same workload served once through the compiled tier and once
// through the quantized tier, on the MLP-heavy chain where fixed-point
// inference has the most to win.
type DensityPoint struct {
	Streams                  int
	CompiledIntervalsPerSec  float64
	CompiledP999Micros       float64
	QuantizedIntervalsPerSec float64
	QuantizedP999Micros      float64
	// QuantSpeedupX is quantized over compiled fleet throughput — the
	// fleet-level win from the fixed-point tier.
	QuantSpeedupX float64
	// MaxStreams10ms is how many 10 ms streams the better tier's
	// throughput covers (intervals/sec ÷ 100) — the node's density
	// ceiling at this batch mix.
	MaxStreams10ms int
}

// FleetReport is the fleet-serving benchmark, serialized to
// BENCH_FLEET.json by hmd-bench -exp fleet.
type FleetReport struct {
	// Chain names the fallback stages both engines serve.
	Chain     []string
	Shards    int
	Intervals int
	Points    []FleetPoint
	// DensityChain/Density are the stream-density sweep: compiled vs
	// quantized on an MLP-heavy chain (absent with SkipDensity).
	DensityChain []string       `json:",omitempty"`
	Density      []DensityPoint `json:",omitempty"`
}

// Fleet runs the multi-stream serving benchmark on the context's
// trained chain and returns the report.
func (ctx *Context) Fleet(cfg FleetBenchConfig) (*FleetReport, error) {
	chain, err := ctx.Builder.BuildChain("REPTree", zoo.Boosted, []int{4, 2}, core.ChainConfig{})
	if err != nil {
		return nil, err
	}
	width := len(chain.Events())
	replicate, err := core.NewChainReplicator(chain)
	if err != nil {
		return nil, err
	}

	rep := &FleetReport{Shards: cfg.shards(), Intervals: cfg.intervals()}
	for s := 0; s <= chain.Stages(); s++ {
		rep.Chain = append(rep.Chain, chain.StageName(s))
	}

	for _, n := range cfg.streamCounts() {
		pt := FleetPoint{Streams: n}

		ivPerSec, wall, snap, err := fleetRun(chain, core.TierCompiled, n, cfg.intervals(), cfg.shards())
		if err != nil {
			return nil, err
		}
		pt.FleetWallMillis = durMillis(wall)
		pt.FleetIntervalsPerSec = ivPerSec
		for _, sh := range snap.Shards {
			if sh.P50LatencyMicros > pt.FleetP50Micros {
				pt.FleetP50Micros = sh.P50LatencyMicros
			}
			if sh.P99LatencyMicros > pt.FleetP99Micros {
				pt.FleetP99Micros = sh.P99LatencyMicros
			}
			if sh.P999LatencyMicros > pt.FleetP999Micros {
				pt.FleetP999Micros = sh.P999LatencyMicros
			}
		}
		pt.Sustains10ms = pt.FleetIntervalsPerSec >= float64(100*n)

		if n <= cfg.baselineMax() {
			want := int64(n * cfg.intervals())
			baseWall, err := pipelineBaseline(replicate, n, cfg.intervals(), width)
			if err != nil {
				return nil, err
			}
			pt.BaselineWallMillis = durMillis(baseWall)
			pt.BaselineIntervalsPerSec = float64(want) / baseWall.Seconds()
			pt.SpeedupX = pt.FleetIntervalsPerSec / pt.BaselineIntervalsPerSec
		}
		rep.Points = append(rep.Points, pt)
	}

	if !cfg.SkipDensity {
		// Density sweep: how many 10 ms streams one node covers, and
		// what the quantized tier buys at fleet level. The chain is
		// MLP-heavy — dense matrix work per score — because that is
		// where fixed-point inference pays; tree forests are already
		// branch-bound and quantize to roughly the same cost.
		mlp, err := ctx.Builder.BuildChain("MLP", zoo.General, []int{4, 2}, core.ChainConfig{})
		if err != nil {
			return nil, err
		}
		for s := 0; s <= mlp.Stages(); s++ {
			rep.DensityChain = append(rep.DensityChain, mlp.StageName(s))
		}
		for _, n := range cfg.densityCounts() {
			dp := DensityPoint{Streams: n}
			comp, _, csnap, err := fleetRun(mlp, core.TierCompiled, n, cfg.intervals(), cfg.shards())
			if err != nil {
				return nil, err
			}
			quant, _, qsnap, err := fleetRun(mlp, core.TierQuantized, n, cfg.intervals(), cfg.shards())
			if err != nil {
				return nil, err
			}
			dp.CompiledIntervalsPerSec = comp
			dp.QuantizedIntervalsPerSec = quant
			for _, sh := range csnap.Shards {
				if sh.P999LatencyMicros > dp.CompiledP999Micros {
					dp.CompiledP999Micros = sh.P999LatencyMicros
				}
			}
			for _, sh := range qsnap.Shards {
				if sh.P999LatencyMicros > dp.QuantizedP999Micros {
					dp.QuantizedP999Micros = sh.P999LatencyMicros
				}
			}
			dp.QuantSpeedupX = quant / comp
			best := comp
			if quant > best {
				best = quant
			}
			dp.MaxStreams10ms = int(best / 100)
			rep.Density = append(rep.Density, dp)
		}
	}
	return rep, nil
}

// fleetRun serves n synthetic streams x intervals verdicts through one
// fleet engine at the given tier (unpaced, lossless Block) and returns
// the throughput, wall time and final snapshot.
func fleetRun(chain *core.FallbackChain, tier core.Tier, n, intervals, shards int) (ivPerSec float64, wall time.Duration, snap fleet.Snapshot, err error) {
	e, err := fleet.New(fleet.Config{
		Chain:          chain,
		Shards:         shards,
		Policy:         supervise.Block,
		PendingBatches: 8,
		Tier:           tier,
	})
	if err != nil {
		return 0, 0, snap, err
	}
	width := len(chain.Events())
	for i := 0; i < n; i++ {
		if err := e.Add(fleet.StreamConfig{
			ID:        fmt.Sprintf("s%d", i),
			Source:    source.NewSynthetic(uint64(i)+1, width),
			Intervals: intervals,
		}); err != nil {
			return 0, 0, snap, err
		}
	}
	start := time.Now()
	if err := e.Run(context.Background()); err != nil {
		return 0, 0, snap, err
	}
	wall = time.Since(start)
	snap = e.Stats(false)
	want := int64(n * intervals)
	if snap.Verdicts != want || snap.LostVerdicts != 0 {
		return 0, 0, snap, fmt.Errorf("fleet bench at %d streams (%s): %d verdicts (%d lost), want %d lossless",
			n, tier, snap.Verdicts, snap.LostVerdicts, want)
	}
	return float64(want) / wall.Seconds(), wall, snap, nil
}

// pipelineBaseline serves the same workload as one supervised pipeline
// per stream: n pipelines, each with its own chain replica and three
// stage goroutines, all running concurrently. Replica construction
// happens outside the timed section.
func pipelineBaseline(replicate func() (*core.FallbackChain, error), n, intervals, width int) (time.Duration, error) {
	pipes := make([]*supervise.Pipeline, n)
	srcs := make([]supervise.Source, n)
	for i := range pipes {
		ch, err := replicate()
		if err != nil {
			return 0, err
		}
		p, err := supervise.New(supervise.Config{
			Chain:          ch,
			Policy:         supervise.Block,
			RestartBackoff: -1,
		})
		if err != nil {
			return 0, err
		}
		pipes[i] = p
		srcs[i] = source.NewSynthetic(uint64(i)+1, width)
	}

	errs := make(chan error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range pipes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			verdicts, err := pipes[i].Run(context.Background(), srcs[i], intervals)
			if err == nil && len(verdicts) != intervals {
				err = fmt.Errorf("pipeline %d: %d verdicts, want %d", i, len(verdicts), intervals)
			}
			if err != nil {
				select {
				case errs <- err:
				default:
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return elapsed, nil
}

func durMillis(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1e3
}

// RenderFleet formats the fleet report for the console.
func RenderFleet(r *FleetReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fleet serving benchmark (%s; %d shards, %d intervals/stream)\n",
		strings.Join(r.Chain, " -> "), r.Shards, r.Intervals)
	sb.WriteString("  streams   fleet iv/s   p50 us   p99 us   p999 us   10ms?   baseline iv/s   speedup\n")
	for _, p := range r.Points {
		sustains := "no"
		if p.Sustains10ms {
			sustains = "yes"
		}
		if p.BaselineIntervalsPerSec > 0 {
			fmt.Fprintf(&sb, "  %7d   %10.0f   %6.0f   %6.0f   %7.0f   %5s   %13.0f   %6.2fx\n",
				p.Streams, p.FleetIntervalsPerSec, p.FleetP50Micros, p.FleetP99Micros,
				p.FleetP999Micros, sustains, p.BaselineIntervalsPerSec, p.SpeedupX)
		} else {
			fmt.Fprintf(&sb, "  %7d   %10.0f   %6.0f   %6.0f   %7.0f   %5s   %13s   %7s\n",
				p.Streams, p.FleetIntervalsPerSec, p.FleetP50Micros, p.FleetP99Micros,
				p.FleetP999Micros, sustains, "-", "-")
		}
	}
	if len(r.Density) > 0 {
		fmt.Fprintf(&sb, "Stream-density sweep (%s; compiled vs quantized)\n",
			strings.Join(r.DensityChain, " -> "))
		sb.WriteString("  streams   compiled iv/s   quant iv/s   quant win   p999 c/q us   max 10ms streams\n")
		for _, p := range r.Density {
			fmt.Fprintf(&sb, "  %7d   %13.0f   %10.0f   %8.2fx   %5.0f/%-5.0f   %16d\n",
				p.Streams, p.CompiledIntervalsPerSec, p.QuantizedIntervalsPerSec,
				p.QuantSpeedupX, p.CompiledP999Micros, p.QuantizedP999Micros, p.MaxStreams10ms)
		}
	}
	return sb.String()
}
