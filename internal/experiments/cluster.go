package experiments

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/mlearn/zoo"
	"repro/internal/supervise"
)

// The cluster experiment drills the multi-node control plane the way
// ingest.go drills the single-node front door: a coordinator places
// real streams across several in-process serving nodes, a scripted
// fault schedule kills one node outright (lease-expiry failover),
// partitions another from the coordinator (expiry + rejoin while its
// data plane keeps serving), slows heartbeats on the rest, and finally
// every node is drained and replaced in turn — a rolling upgrade. The
// contracts are the cluster plane's: clients land on the owner via
// REDIRECT, reconnects resume from the server-authoritative position,
// every ownership move is recorded in the handoff audit trail, verdict
// timelines stay bit-identical to an unbroken single-node reference
// across every migration, and accounting on gracefully stopped nodes
// is exact (a crashed node may lose only its bounded in-flight work).

const clusterDrillTenant = "drill"

// ClusterChaosConfig parameterises the cluster chaos drill.
type ClusterChaosConfig struct {
	// Nodes is the cluster size (default 3, minimum 2). One node is
	// scheduled to crash, one to partition; the rest get slow
	// heartbeats.
	Nodes int
	// Streams is the client stream count (default 4). The drill may
	// add streams until placement spans at least two nodes, so the
	// initial REDIRECT contract is deterministic.
	Streams int
	// Intervals is the samples per stream, served in four quarters
	// between fault phases (default 48, must be a multiple of 4).
	Intervals int
	// HeartbeatEvery is the agents' lease cadence (default 75ms).
	HeartbeatEvery time.Duration
	// LeaseTTL is the coordinator's failure-detection horizon
	// (default 300ms — four heartbeats of silence).
	LeaseTTL time.Duration
	// Interval is the fleet wheel pacing on every node (default 2ms).
	Interval time.Duration
	// Seed drives the fault schedules and backoff jitter.
	Seed uint64
}

func (c *ClusterChaosConfig) fill() {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.Streams == 0 {
		c.Streams = 4
	}
	if c.Intervals == 0 {
		c.Intervals = 48
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 75 * time.Millisecond
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = 300 * time.Millisecond
	}
	if c.Interval == 0 {
		c.Interval = 2 * time.Millisecond
	}
}

// ClusterStreamOutcome is one drilled stream's ledger.
type ClusterStreamOutcome struct {
	Key   string
	Owner string // initial placement
	// Echoed is the distinct intervals the client read back; Missing
	// the intervals never echoed (a crash may eat the echo of work the
	// fanned-in snapshot already covered — bounded, never silent on the
	// server side).
	Echoed  int
	Missing int
	// Reconnects counts re-dials after the initial admission.
	Reconnects int
	// BitIdentical: every echoed verdict matches the unbroken
	// single-node reference chain fed the same samples.
	BitIdentical bool
}

// ClusterChaosResult aggregates the drill.
type ClusterChaosResult struct {
	Nodes     int
	Intervals int
	// KillNode crashed mid-run; PartitionNode lost its control link.
	KillNode      string
	PartitionNode string

	Streams []ClusterStreamOutcome

	// Client-side journey counters, summed over every dial.
	Redirects  int
	Retries    int
	Rotations  int
	Reconnects int

	// Coordinator counters at settle time.
	Joins         int64
	LeaseExpiries int64
	StatesStored  int64
	Installs      int64

	// Handoff audit trail: total moves, split by reason, and whether
	// every stream shows up in at least one move (the rolling upgrade
	// guarantees it).
	Handoffs         int
	FailoverHandoffs int
	DrainHandoffs    int
	EveryStreamMoved bool

	// RollsCompleted counts drain->replace cycles (one per node).
	RollsCompleted int

	// CoverageOK: every stream echoed all but at most two intervals
	// (the crash budget); BitIdentical covers every echoed verdict.
	CoverageOK   bool
	BitIdentical bool
	// AccountingExact: every gracefully stopped or still-live node
	// settled accepted == attributed + shed and verdicts == attributed
	// + held. KilledLossBounded: the crashed incarnation lost at most
	// one in-flight sample per stream.
	AccountingExact   bool
	KilledLossBounded bool
	// MembershipHealed: the final membership is back to full strength.
	MembershipHealed bool
}

// Passed reports whether every cluster contract held.
func (r ClusterChaosResult) Passed() bool {
	return r.BitIdentical && r.CoverageOK && r.AccountingExact &&
		r.KilledLossBounded && r.MembershipHealed &&
		r.Redirects > 0 && r.Reconnects >= len(r.Streams)+1 &&
		r.FailoverHandoffs > 0 && r.DrainHandoffs > 0 &&
		r.EveryStreamMoved && r.RollsCompleted == r.Nodes &&
		r.LeaseExpiries >= 2
}

// clusterVals derives the deterministic counter vector for (stream,
// seq); the bit-identity check replays exactly these into a reference
// chain.
func clusterVals(sid int, seq uint32, buf []uint64) []uint64 {
	for j := range buf {
		buf[j] = uint64(seq)*uint64(5+3*j) + uint64(sid*97) + uint64(j) + 1
	}
	return buf
}

func clusterWait(what string, timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("cluster drill: timed out waiting for %s", what)
}

// clusterHarness owns the coordinator and the node slots. Slots are
// stable across replacement: a rolled node's successor keeps its slot
// (and its member ID — the upgraded box comes back under the same
// name).
type clusterHarness struct {
	cfg       ClusterChaosConfig
	coord     *cluster.Coordinator
	coordAddr string
	replicate func() (*core.FallbackChain, error)
	width     int

	mu    sync.Mutex
	ids   []string
	nodes []*cluster.Node
}

func (h *clusterHarness) start(slot int, plan faults.NodePlan) error {
	nd, err := cluster.StartNode(cluster.NodeConfig{
		ID:          h.ids[slot],
		Coordinator: h.coordAddr,
		Fleet: fleet.Config{
			NewChain:   h.replicate,
			Shards:     2,
			WheelSlots: 4,
			Interval:   h.cfg.Interval,
			Policy:     supervise.Block,
		},
		Width:          h.width,
		HeartbeatEvery: h.cfg.HeartbeatEvery,
		// Fan in states every heartbeat: the failover contract wants
		// fresh snapshots stored before the scripted crash lands.
		StatesEvery: 1,
		Plan:        plan,
		Seed:        h.cfg.Seed + uint64(slot),
	})
	if err != nil {
		return fmt.Errorf("cluster drill: node %s: %w", h.ids[slot], err)
	}
	h.mu.Lock()
	h.nodes[slot] = nd
	h.mu.Unlock()
	return nil
}

func (h *clusterHarness) node(slot int) *cluster.Node {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nodes[slot]
}

// bootstrap lists every slot's current listener — dead ones included,
// deliberately: the dialer must rotate past a crashed node on its own.
func (h *clusterHarness) bootstrap() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for _, nd := range h.nodes {
		if nd != nil {
			out = append(out, nd.Addr())
		}
	}
	return out
}

func (h *clusterHarness) close() {
	h.mu.Lock()
	nodes := append([]*cluster.Node(nil), h.nodes...)
	h.mu.Unlock()
	for _, nd := range nodes {
		if nd != nil {
			nd.Close()
		}
	}
	h.coord.Close()
}

// clusterStream is one lock-step client: a single sample in flight,
// reconnecting through cluster.Dial whenever its serving node dies,
// drains or redirects, always resuming from the server-authoritative
// position. Echoes are deduplicated first-wins per interval, so
// replays after a stale resume are harmless.
type clusterStream struct {
	sid  int
	name string
	key  string

	seq        uint32
	c          *ingest.Client
	got        map[uint32]ingest.Verdict
	dials      int
	reconnects int
	stats      cluster.DialStats
}

func (s *clusterStream) drop() {
	if s.c != nil {
		s.c.Close()
		s.c = nil
	}
}

// advance pumps the stream to interval `to`, surviving any number of
// node deaths and drains along the way.
func (s *clusterStream) advance(h *clusterHarness, to uint32, buf []uint64) error {
	redials := 0
	for s.seq < to {
		if s.c == nil {
			if redials++; redials > 50 {
				return fmt.Errorf("cluster drill: %s: no progress after %d redials", s.key, redials)
			}
			c, st, err := cluster.Dial(cluster.DialConfig{
				Bootstrap: h.bootstrap,
				Hello:     ingest.Hello{Width: h.width, Tenant: clusterDrillTenant, Stream: s.name},
				Timeout:   2 * time.Second,
				Seed:      h.cfg.Seed + uint64(s.sid)*0x9E37,
			})
			if err != nil {
				return fmt.Errorf("cluster drill: %s: %w", s.key, err)
			}
			s.c = c
			s.stats.Redirects += st.Redirects
			s.stats.Retries += st.Retries
			s.stats.Rotations += st.Rotations
			if s.dials++; s.dials > 1 {
				s.reconnects++
			}
			// Server-authoritative resume: whatever state made it to the
			// new owner. Staler than our position just means more
			// replay; the dedup keeps the first echo of each interval.
			s.seq = uint32(s.c.Admitted.Resume)
			continue
		}
		if err := s.c.Send(s.seq, clusterVals(s.sid, s.seq, buf)); err != nil {
			s.drop()
			continue
		}
		for {
			ev, err := s.c.Next()
			if err != nil {
				s.drop()
				break
			}
			switch ev.Type {
			case ingest.FrameVerdict:
				if _, dup := s.got[ev.Verdict.Interval]; !dup {
					s.got[ev.Verdict.Interval] = ev.Verdict
				}
				if ev.Verdict.Seq >= s.seq {
					s.seq = ev.Verdict.Seq + 1
				}
			case ingest.FrameDrain, ingest.FrameError:
				// Finished-by-drain or a protocol rejection: reconnect
				// and let placement steer us to the new owner.
				s.drop()
			}
			if s.c == nil || s.seq >= to {
				break
			}
			if ev.Type == ingest.FrameVerdict && ev.Verdict.Seq+1 >= s.seq {
				break // lock-step echo landed; send the next sample
			}
		}
	}
	return nil
}

// clusterQuarter pumps every stream to `to` concurrently.
func clusterQuarter(h *clusterHarness, streams []*clusterStream, to uint32) error {
	var wg sync.WaitGroup
	errs := make(chan error, len(streams))
	for _, s := range streams {
		wg.Add(1)
		go func(s *clusterStream) {
			defer wg.Done()
			buf := make([]uint64, h.width)
			if err := s.advance(h, to, buf); err != nil {
				errs <- err
			}
		}(s)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// clusterAccounting checks one incarnation's ledger. slack is the
// tolerated accepted-but-never-scored gap: zero for graceful stops,
// one in-flight sample per stream for a crash.
func clusterAccounting(st ingest.NodeStats, slack uint64) bool {
	scored := st.Attributed + st.Shed
	if st.Accepted < scored || st.Accepted-scored > slack {
		return false
	}
	return st.Verdicts >= st.Attributed && st.Verdicts-st.Attributed <= st.Held+slack
}

// ClusterChaos runs the multi-node drill on the context's trained
// chain.
func (ctx *Context) ClusterChaos(cfg ClusterChaosConfig) (ClusterChaosResult, error) {
	cfg.fill()
	var res ClusterChaosResult
	if cfg.Nodes < 2 {
		return res, fmt.Errorf("cluster drill: %d nodes, need at least 2", cfg.Nodes)
	}
	if cfg.Intervals%4 != 0 || cfg.Intervals < 8 {
		return res, fmt.Errorf("cluster drill: intervals %d must be a multiple of 4 and >= 8", cfg.Intervals)
	}
	res.Nodes, res.Intervals = cfg.Nodes, cfg.Intervals

	chain, err := ctx.Builder.BuildChain("REPTree", zoo.Boosted, []int{4, 2}, core.ChainConfig{})
	if err != nil {
		return res, fmt.Errorf("cluster drill: building chain: %w", err)
	}
	replicate, err := core.NewChainReplicator(chain)
	if err != nil {
		return res, fmt.Errorf("cluster drill: replicating chain: %w", err)
	}

	h := &clusterHarness{
		cfg:       cfg,
		replicate: replicate,
		width:     len(chain.Events()),
		nodes:     make([]*cluster.Node, cfg.Nodes),
	}
	members := make([]ingest.Member, cfg.Nodes)
	for i := range members {
		h.ids = append(h.ids, fmt.Sprintf("n%d", i))
		members[i] = ingest.Member{ID: h.ids[i], Weight: 1}
	}

	// Placement is a pure function of the member IDs, so the fault
	// schedule is cast before anything starts: the stream s0 owner is
	// scheduled to crash, the next distinct node to partition, the rest
	// to drag their heartbeats.
	ring := cluster.BuildRing(1, members, 0)
	streams := make([]*clusterStream, 0, cfg.Streams)
	owners := map[string]string{}
	for i := 0; len(streams) < cfg.Streams || len(distinct(owners)) < 2; i++ {
		if i >= cfg.Streams+16 {
			return res, errors.New("cluster drill: degenerate placement, all streams on one node")
		}
		name := fmt.Sprintf("s%d", i)
		key := clusterDrillTenant + "/" + name
		o, _ := ring.Owner(key)
		owners[key] = o.ID
		streams = append(streams, &clusterStream{
			sid: i, name: name, key: key, got: map[uint32]ingest.Verdict{},
		})
	}
	killID := owners[streams[0].key]
	partitionID := ""
	for _, id := range h.ids {
		if id != killID {
			partitionID = id
			break
		}
	}
	res.KillNode, res.PartitionNode = killID, partitionID

	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{LeaseTTL: cfg.LeaseTTL})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, fmt.Errorf("cluster drill: coordinator listen: %w", err)
	}
	go coord.Serve(ln)
	h.coord, h.coordAddr = coord, ln.Addr().String()
	defer h.close()

	// Scripted schedules, all on the heartbeat clock: the crash lands
	// after the first quarter has been served and fanned in, the
	// partition well after the failover cycle, and the slow-heartbeat
	// background noise must never push a healthy node past the TTL.
	killSlot, partitionSlot := 0, 0
	for i, id := range h.ids {
		var plan faults.NodePlan
		switch id {
		case killID:
			plan = faults.NodePlan{Seed: cfg.Seed, KillAfter: 24}
			killSlot = i
		case partitionID:
			plan = faults.NodePlan{Seed: cfg.Seed, PartitionAfter: 64, PartitionFor: 6}
			partitionSlot = i
		default:
			plan = faults.NodePlan{
				Seed: cfg.Seed, Rate: 0.05,
				Kinds:    []faults.NodeKind{faults.SlowHeartbeat},
				MaxDelay: cfg.HeartbeatEvery / 4,
			}
		}
		if err := h.start(i, plan); err != nil {
			return res, err
		}
	}
	if err := clusterWait("initial membership", 15*time.Second, func() bool {
		return coord.Stats().Placed == cfg.Nodes
	}); err != nil {
		return res, err
	}
	// Ring views ride lease replies: wait until every node agrees with
	// the full-membership placement, or early dials would be admitted
	// locally under a stale one-member ring instead of redirected.
	if err := clusterWait("ring convergence", 15*time.Second, func() bool {
		for i := range h.ids {
			nd := h.node(i)
			for _, s := range streams {
				if _, local := nd.Agent().Placement(s.key); local != (h.ids[i] == owners[s.key]) {
					return false
				}
			}
		}
		return true
	}); err != nil {
		return res, err
	}

	n := uint32(cfg.Intervals)
	q := n / 4

	// ---- Quarter 1: steady state; every stream lands on its owner ----
	if err := clusterQuarter(h, streams, q); err != nil {
		return res, err
	}
	// Every stream's state must be fanned in before the crash — that
	// snapshot is what the failover installs on the survivor.
	if err := clusterWait("state fan-in", 15*time.Second, func() bool {
		return coord.Stats().StatesStored >= int64(len(streams))
	}); err != nil {
		return res, err
	}

	// ---- Crash: the s0 owner's schedule kills it ----
	if err := clusterWait("scheduled node kill", 20*time.Second, func() bool {
		return h.node(killSlot).Killed()
	}); err != nil {
		return res, err
	}
	if err := clusterWait("lease-expiry failover", 15*time.Second, func() bool {
		s := coord.Stats()
		return s.LeaseExpiries >= 1 && s.Placed == cfg.Nodes-1
	}); err != nil {
		return res, err
	}

	// ---- Quarter 2: clients of the dead node reconnect and resume ----
	if err := clusterQuarter(h, streams, 2*q); err != nil {
		return res, err
	}
	killedStats := h.node(killSlot).Server().NodeStatsSnapshot()

	// The crashed box comes back under the same identity, empty — its
	// streams stay where they failed over to until the rolling upgrade.
	if err := h.start(killSlot, faults.NodePlan{}); err != nil {
		return res, err
	}
	if err := clusterWait("crashed node rejoined", 15*time.Second, func() bool {
		return coord.Stats().Placed == cfg.Nodes
	}); err != nil {
		return res, err
	}

	// ---- Partition: the control link goes silent, the data plane
	// keeps serving, the lease expires, the node rejoins on heal ----
	if err := clusterWait("partition cycle (expiry + rejoin)", 30*time.Second, func() bool {
		return h.node(partitionSlot).Agent().Stats().Joins >= 2 &&
			coord.Stats().LeaseExpiries >= 2
	}); err != nil {
		return res, err
	}
	if err := clusterWait("membership healed after partition", 15*time.Second, func() bool {
		return coord.Stats().Placed == cfg.Nodes
	}); err != nil {
		return res, err
	}

	// ---- Quarter 3 ----
	if err := clusterQuarter(h, streams, 3*q); err != nil {
		return res, err
	}

	// ---- Rolling upgrade: drain every node, replace it in place ----
	var graceful []ingest.NodeStats
	for slot := range h.ids {
		id := h.ids[slot]
		if err := coord.DrainNode(id); err != nil {
			return res, fmt.Errorf("cluster drill: drain %s: %w", id, err)
		}
		old := h.node(slot)
		if err := old.Wait(20 * time.Second); err != nil {
			return res, fmt.Errorf("cluster drill: drained node %s: %w", id, err)
		}
		graceful = append(graceful, old.Server().NodeStatsSnapshot())
		if err := h.start(slot, faults.NodePlan{}); err != nil {
			return res, err
		}
		if err := clusterWait("replacement "+id+" joined", 15*time.Second, func() bool {
			return coord.Stats().Placed == cfg.Nodes
		}); err != nil {
			return res, err
		}
		res.RollsCompleted++
	}

	// ---- Quarter 4: the upgraded cluster finishes every timeline ----
	if err := clusterQuarter(h, streams, n); err != nil {
		return res, err
	}
	for _, s := range streams {
		s.drop()
	}

	// ---- Settle the ledger ----
	res.AccountingExact = true
	for slot := range h.ids {
		nd := h.node(slot)
		st := nd.Server().NodeStatsSnapshot()
		if err := clusterWait("accounting settled", 10*time.Second, func() bool {
			st = nd.Server().NodeStatsSnapshot()
			return clusterAccounting(st, 0)
		}); err != nil {
			res.AccountingExact = false
		}
	}
	for _, st := range graceful {
		if !clusterAccounting(st, 0) {
			res.AccountingExact = false
		}
	}
	// The crash may strand at most one in-flight sample per stream —
	// accepted, never scored, and replayed by the client elsewhere.
	res.KilledLossBounded = clusterAccounting(killedStats, uint64(len(streams)))

	stats := coord.Stats()
	res.Joins, res.LeaseExpiries = stats.Joins, stats.LeaseExpiries
	res.StatesStored, res.Installs = stats.StatesStored, stats.Installs
	res.MembershipHealed = stats.Placed == cfg.Nodes && stats.Members == cfg.Nodes

	moved := map[string]bool{}
	for _, ho := range coord.Handoffs() {
		res.Handoffs++
		moved[ho.Stream] = true
		switch ho.Reason {
		case "failover":
			res.FailoverHandoffs++
		case "drain":
			res.DrainHandoffs++
		}
	}
	res.EveryStreamMoved = true
	for _, s := range streams {
		if !moved[s.key] {
			res.EveryStreamMoved = false
		}
	}

	res.CoverageOK, res.BitIdentical = true, true
	for _, s := range streams {
		ref, err := replicate()
		if err != nil {
			return res, fmt.Errorf("cluster drill: reference chain: %w", err)
		}
		out := ClusterStreamOutcome{
			Key: s.key, Owner: owners[s.key],
			Echoed: len(s.got), Reconnects: s.reconnects, BitIdentical: true,
		}
		buf := make([]uint64, h.width)
		for seq := uint32(0); seq < n; seq++ {
			want, err := ref.Observe(clusterVals(s.sid, seq, buf))
			if err != nil {
				return res, fmt.Errorf("cluster drill: reference replay: %w", err)
			}
			g, ok := s.got[seq]
			if !ok {
				out.Missing++
				continue
			}
			if g.Score != want.Score || g.Malware != want.Malware {
				out.BitIdentical = false
			}
		}
		// A crash can eat the echo of work the snapshot already
		// covered; everything else re-echoes on replay.
		if out.Missing > 2 {
			res.CoverageOK = false
		}
		res.BitIdentical = res.BitIdentical && out.BitIdentical
		res.Redirects += s.stats.Redirects
		res.Retries += s.stats.Retries
		res.Rotations += s.stats.Rotations
		res.Reconnects += s.reconnects
		res.Streams = append(res.Streams, out)
	}
	return res, nil
}

func distinct(m map[string]string) map[string]bool {
	out := map[string]bool{}
	for _, v := range m {
		out[v] = true
	}
	return out
}

// RenderClusterChaos formats the drill's outcome as a checklist plus
// the per-stream ledger.
func RenderClusterChaos(r ClusterChaosResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cluster chaos drill: %d nodes, %d streams x %d intervals (kill=%s partition=%s)\n",
		r.Nodes, len(r.Streams), r.Intervals, r.KillNode, r.PartitionNode)
	for _, s := range r.Streams {
		fmt.Fprintf(&sb, "  %-10s owner=%-4s echoed=%2d missing=%d reconnects=%d bitident=%v\n",
			s.Key, s.Owner, s.Echoed, s.Missing, s.Reconnects, s.BitIdentical)
	}
	check := func(ok bool, format string, args ...any) {
		mark := "PASS"
		if !ok {
			mark = "FAIL"
		}
		fmt.Fprintf(&sb, "  [%s] %s\n", mark, fmt.Sprintf(format, args...))
	}
	sb.WriteString("contracts:\n")
	check(r.BitIdentical, "every echoed verdict bit-identical to the unbroken single-node reference")
	check(r.CoverageOK, "per-stream echo coverage within the crash budget (<= 2 missing)")
	check(r.LeaseExpiries >= 2 && r.FailoverHandoffs > 0,
		"node death and partition detected by lease expiry (%d expiries, %d failover handoffs)",
		r.LeaseExpiries, r.FailoverHandoffs)
	check(r.RollsCompleted == r.Nodes && r.DrainHandoffs > 0,
		"rolling upgrade drained and replaced every node (%d/%d, %d drain handoffs)",
		r.RollsCompleted, r.Nodes, r.DrainHandoffs)
	check(r.EveryStreamMoved, "every stream changed hands at least once (%d handoffs total)", r.Handoffs)
	check(r.Redirects > 0 && r.Reconnects >= len(r.Streams)+1,
		"clients steered to owners and resumed across moves (%d redirects, %d reconnects, %d rotations)",
		r.Redirects, r.Reconnects, r.Rotations)
	check(r.AccountingExact, "accounting exact on every graceful incarnation")
	check(r.KilledLossBounded, "crashed node lost at most its in-flight window")
	check(r.MembershipHealed, "final membership back to full strength (%d joins)", r.Joins)
	return sb.String()
}

// ---- Cluster scaling bench ----

// ClusterBenchConfig parameterises the node-count scaling sweep.
type ClusterBenchConfig struct {
	// NodeCounts sweeps cluster sizes (default 2, 3, 4, 6, 8).
	NodeCounts []int
	// StreamsPerNode scales offered streams with the cluster (default 4).
	StreamsPerNode int
	// Samples per stream (default 150).
	Samples int
	// Interval is the per-node wheel pacing — each stream's service
	// rate (default 1ms).
	Interval time.Duration
	// Seed drives dial jitter.
	Seed uint64
	// Capacity adds the unpaced wire-capacity measurement against the
	// smallest swept cluster: cluster-dialled clients blast batched vs
	// unbatched (protocol v1) and the report records the aggregate
	// admission rate and syscall cost of each.
	Capacity bool
	// CapacityMillis is the blast window per capacity point (default 600).
	CapacityMillis int
}

func (c ClusterBenchConfig) nodeCounts() []int {
	if len(c.NodeCounts) > 0 {
		return c.NodeCounts
	}
	return []int{2, 3, 4, 6, 8}
}

func (c ClusterBenchConfig) streamsPerNode() int {
	if c.StreamsPerNode > 0 {
		return c.StreamsPerNode
	}
	return 4
}

func (c ClusterBenchConfig) samples() int {
	if c.Samples > 0 {
		return c.Samples
	}
	return 150
}

func (c ClusterBenchConfig) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return time.Millisecond
}

func (c ClusterBenchConfig) capacityWindow() time.Duration {
	if c.CapacityMillis > 0 {
		return time.Duration(c.CapacityMillis) * time.Millisecond
	}
	return 600 * time.Millisecond
}

// ClusterPoint is one cluster size's measurement.
type ClusterPoint struct {
	Nodes           int
	Streams         int
	Samples         int
	WallMillis      float64
	IntervalsPerSec float64
	PerNodePerSec   float64
	Redirects       int
	Rotations       int
}

// ClusterCapacityPoint is one unpaced blast through cluster-aware
// dials, aggregated across every node's ingest server.
type ClusterCapacityPoint struct {
	Batched           bool
	Sent              int64
	Accepted          int64
	Shed              int64
	SamplesPerSec     float64 // accepted / send window
	VerdictsPerSec    float64
	ClientWrites      int64
	ServerWrites      int64
	SyscallsPerSample float64
	SampleBatches     int64
	VerdictBatches    int64
}

// ClusterCapacity pairs the batched and unbatched blast points for the
// smallest swept cluster size.
type ClusterCapacity struct {
	Nodes          int
	Streams        int
	DurationMillis float64
	Unbatched      ClusterCapacityPoint
	Batched        ClusterCapacityPoint
	Speedup        float64
}

// ClusterReport is the scaling sweep, serialized to BENCH_CLUSTER.json
// by hmd-bench -exp cluster.
type ClusterReport struct {
	Chain          []string
	Width          int
	StreamsPerNode int
	Samples        int
	IntervalMillis float64
	Points         []ClusterPoint
	// Capacity is present when the bench ran with -capacity.
	Capacity *ClusterCapacity `json:",omitempty"`
}

// ClusterBench sweeps cluster sizes: each point stands up a coordinator
// plus k serving nodes, offers k*StreamsPerNode windowed streams
// through cluster-aware dials, and measures the aggregate scored
// interval rate. Placement spreads streams by consistent hashing, so
// throughput should scale close to linearly with node count until the
// host itself saturates.
func (ctx *Context) ClusterBench(cfg ClusterBenchConfig) (*ClusterReport, error) {
	chain, err := ctx.Builder.BuildChain("REPTree", zoo.Boosted, []int{4, 2}, core.ChainConfig{})
	if err != nil {
		return nil, fmt.Errorf("cluster bench: building chain: %w", err)
	}
	replicate, err := core.NewChainReplicator(chain)
	if err != nil {
		return nil, fmt.Errorf("cluster bench: replicating chain: %w", err)
	}
	rep := &ClusterReport{
		Width:          len(chain.Events()),
		StreamsPerNode: cfg.streamsPerNode(),
		Samples:        cfg.samples(),
		IntervalMillis: durMillis(cfg.interval()),
	}
	for s := 0; s <= chain.Stages(); s++ {
		rep.Chain = append(rep.Chain, chain.StageName(s))
	}
	for _, k := range cfg.nodeCounts() {
		pt, err := clusterBenchPoint(cfg, replicate, rep.Width, k)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, pt)
	}
	if cfg.Capacity {
		cap, err := clusterCapacity(cfg, replicate, rep.Width)
		if err != nil {
			return nil, err
		}
		rep.Capacity = cap
	}
	return rep, nil
}

// clusterCapacity blasts two freshly built clusters of identical
// topology — protocol v1 then batched — so the two points compare wire
// formats alone. Each pass stands up its own coordinator and nodes: a
// fleet engine drains itself once every stream it ever admitted
// finishes, so reusing nodes across passes would hand the second pass
// dead engines that admit samples but never score them.
func clusterCapacity(cfg ClusterBenchConfig, replicate func() (*core.FallbackChain, error),
	width int) (*ClusterCapacity, error) {
	k := cfg.nodeCounts()[0]
	cap := &ClusterCapacity{
		Nodes:          k,
		Streams:        k * cfg.streamsPerNode(),
		DurationMillis: durMillis(cfg.capacityWindow()),
	}
	var err error
	if cap.Unbatched, err = clusterCapacityRun(cfg, replicate, width, k, cap.Streams, false); err != nil {
		return nil, err
	}
	if cap.Batched, err = clusterCapacityRun(cfg, replicate, width, k, cap.Streams, true); err != nil {
		return nil, err
	}
	if cap.Unbatched.SamplesPerSec > 0 {
		cap.Speedup = cap.Batched.SamplesPerSec / cap.Unbatched.SamplesPerSec
	}
	return cap, nil
}

// clusterNodeTotals sums the wire counters across every node's server.
func clusterNodeTotals(nodes []*cluster.Node) ingest.Stats {
	var sum ingest.Stats
	for _, nd := range nodes {
		st := nd.Server().StatsSnapshot(false)
		sum.SamplesAccepted += st.SamplesAccepted
		sum.SamplesShed += st.SamplesShed
		sum.Verdicts += st.Verdicts
		sum.VerdictsAttributed += st.VerdictsAttributed
		sum.WriteSyscalls += st.WriteSyscalls
		sum.SampleBatches += st.SampleBatches
		sum.VerdictBatches += st.VerdictBatches
	}
	return sum
}

// clusterCapacityRun stands up one fresh cluster, dials every stream,
// then blasts them all until the window closes. The dial barrier
// matters: a stream is registered with a node's fleet engine at HELLO,
// and an engine whose every admitted stream has finished drains itself
// — so every dial must land before any stream can BYE, or a straggler
// could be admitted by a node whose engine already exited.
func clusterCapacityRun(cfg ClusterBenchConfig, replicate func() (*core.FallbackChain, error),
	width, k, nStreams int, batched bool) (ClusterCapacityPoint, error) {
	pt := ClusterCapacityPoint{Batched: batched}
	mode := "u"
	if batched {
		mode = "b"
	}
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{LeaseTTL: 2 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return pt, fmt.Errorf("cluster capacity: coordinator listen: %w", err)
	}
	go coord.Serve(ln)
	defer coord.Close()
	nodes := make([]*cluster.Node, k)
	defer func() {
		for _, nd := range nodes {
			if nd != nil {
				nd.Close()
			}
		}
	}()
	for i := range nodes {
		nd, err := cluster.StartNode(cluster.NodeConfig{
			ID:          fmt.Sprintf("cap%s%d", mode, i),
			Coordinator: ln.Addr().String(),
			Fleet: fleet.Config{
				NewChain:   replicate,
				Shards:     2,
				WheelSlots: 4,
				Interval:   cfg.interval(),
				Policy:     supervise.Block,
			},
			Width:          width,
			HeartbeatEvery: 250 * time.Millisecond,
			StatesEvery:    -1,
			Seed:           cfg.Seed + uint64(i),
		})
		if err != nil {
			return pt, fmt.Errorf("cluster capacity: node cap%s%d: %w", mode, i, err)
		}
		nodes[i] = nd
	}
	if err := clusterWait("capacity membership", 15*time.Second, func() bool {
		if coord.Stats().Placed != k {
			return false
		}
		// The first joiner routes by a one-member ring until its next
		// heartbeat; wait for every node's view to converge so no blast
		// stream is admitted by a non-owner.
		v := coord.Stats().RingVersion
		for _, nd := range nodes {
			if nd.Agent().Stats().RingVersion != v {
				return false
			}
		}
		return true
	}); err != nil {
		return pt, err
	}
	bootstrap := func() []string {
		out := make([]string, 0, k)
		for _, nd := range nodes {
			out = append(out, nd.Addr())
		}
		return out
	}
	before := clusterNodeTotals(nodes)
	var (
		dialWG, wg sync.WaitGroup
		blastGo    = make(chan struct{})
		deadline   time.Time // written before close(blastGo)
		mu         sync.Mutex
		sendWall   time.Duration
	)
	errs := make(chan error, nStreams)
	dialWG.Add(nStreams)
	for i := 0; i < nStreams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := clusterCapacityDial(bootstrap, cfg.Seed, width, i, mode, batched)
			dialWG.Done()
			if err != nil {
				select {
				case errs <- err:
				default:
				}
				<-blastGo
				return
			}
			defer c.Close()
			<-blastGo
			sent, writes, sdur, err := clusterCapacityBlast(c, width, i, mode, batched, deadline)
			mu.Lock()
			pt.Sent += sent
			pt.ClientWrites += writes
			if sdur > sendWall {
				sendWall = sdur
			}
			mu.Unlock()
			if err != nil {
				select {
				case errs <- err:
				default:
				}
			}
		}(i)
	}
	dialWG.Wait()
	start := time.Now()
	deadline = start.Add(cfg.capacityWindow())
	close(blastGo)
	wg.Wait()
	select {
	case err := <-errs:
		return pt, fmt.Errorf("cluster capacity: %w", err)
	default:
	}
	// Streams said BYE; wait for each node to settle its ledger before
	// diffing counters (accepted == attributed + shed, nothing silent).
	if err := clusterWait("capacity settle", 30*time.Second, func() bool {
		d := clusterNodeTotals(nodes)
		return d.SamplesAccepted-before.SamplesAccepted ==
			(d.VerdictsAttributed-before.VerdictsAttributed)+(d.SamplesShed-before.SamplesShed)
	}); err != nil {
		d := clusterNodeTotals(nodes)
		detail := ""
		for _, nd := range nodes {
			for _, ss := range nd.Server().StatsSnapshot(true).PerStream {
				detail += fmt.Sprintf(" [%s acc=%d att=%d shed=%d pend=%d held=%d verd=%d next=%d]",
					ss.Key, ss.Accepted, ss.Attributed, ss.RingShed, ss.Pending, ss.Held, ss.Verdicts, ss.NextSeq)
			}
		}
		return pt, fmt.Errorf("%w (accepted %d, attributed %d, shed %d)%s", err,
			d.SamplesAccepted-before.SamplesAccepted,
			d.VerdictsAttributed-before.VerdictsAttributed,
			d.SamplesShed-before.SamplesShed, detail)
	}
	wall := time.Since(start)
	after := clusterNodeTotals(nodes)
	pt.Accepted = after.SamplesAccepted - before.SamplesAccepted
	pt.Shed = after.SamplesShed - before.SamplesShed
	pt.ServerWrites = after.WriteSyscalls - before.WriteSyscalls
	pt.SampleBatches = after.SampleBatches - before.SampleBatches
	pt.VerdictBatches = after.VerdictBatches - before.VerdictBatches
	if sendWall <= 0 {
		sendWall = wall
	}
	pt.SamplesPerSec = float64(pt.Accepted) / sendWall.Seconds()
	pt.VerdictsPerSec = float64(after.Verdicts-before.Verdicts) / wall.Seconds()
	if pt.Accepted > 0 {
		pt.SyscallsPerSample = float64(pt.ClientWrites+pt.ServerWrites) / float64(pt.Accepted)
	}
	return pt, nil
}

// clusterCapacityDial lands one capacity stream on its owner and checks
// the negotiated wire format.
func clusterCapacityDial(bootstrap func() []string, seed uint64, width, sid int,
	mode string, batched bool) (*ingest.Client, error) {
	hello := ingest.Hello{Width: width, Tenant: "cap", Stream: fmt.Sprintf("%s%d", mode, sid)}
	if !batched {
		hello.Version = 1
	}
	c, st, err := cluster.Dial(cluster.DialConfig{
		Bootstrap: bootstrap,
		Hello:     hello,
		Timeout:   30 * time.Second,
		Seed:      seed + uint64(sid),
	})
	if err != nil {
		return nil, err
	}
	if st.Batching != batched {
		c.Close()
		return nil, fmt.Errorf("%s%d: negotiated batching %v, want %v", mode, sid, st.Batching, batched)
	}
	return c, nil
}

// clusterCapacityBlast pushes one dialled stream flat-out until the
// deadline, then BYEs and drains to the finish notice.
func clusterCapacityBlast(c *ingest.Client, width, sid int,
	mode string, batched bool, deadline time.Time) (int64, int64, time.Duration, error) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := c.Next(); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	buf := make([]uint64, width)
	var seq uint32
	var err error
	for time.Now().Before(deadline) {
		if batched {
			err = c.Queue(seq, clusterVals(sid, seq, buf))
		} else {
			err = c.Send(seq, clusterVals(sid, seq, buf))
		}
		if err != nil {
			return int64(seq), c.WriteCalls(), 0, fmt.Errorf("%s%d send %d: %w", mode, sid, seq, err)
		}
		seq++
	}
	if err := c.Flush(); err != nil {
		return int64(seq), c.WriteCalls(), 0, fmt.Errorf("%s%d flush: %w", mode, sid, err)
	}
	sdur := time.Since(start)
	if err := c.Bye(); err != nil {
		return int64(seq), c.WriteCalls(), sdur, fmt.Errorf("%s%d BYE: %w", mode, sid, err)
	}
	<-done
	return int64(seq), c.WriteCalls(), sdur, nil
}

func clusterBenchPoint(cfg ClusterBenchConfig, replicate func() (*core.FallbackChain, error),
	width, k int) (ClusterPoint, error) {
	var pt ClusterPoint
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{LeaseTTL: 2 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return pt, fmt.Errorf("cluster bench: coordinator listen: %w", err)
	}
	go coord.Serve(ln)
	defer coord.Close()

	nodes := make([]*cluster.Node, k)
	defer func() {
		for _, nd := range nodes {
			if nd != nil {
				nd.Close()
			}
		}
	}()
	for i := range nodes {
		nd, err := cluster.StartNode(cluster.NodeConfig{
			ID:          fmt.Sprintf("b%d", i),
			Coordinator: ln.Addr().String(),
			Fleet: fleet.Config{
				NewChain:   replicate,
				Shards:     2,
				WheelSlots: 4,
				Interval:   cfg.interval(),
				Policy:     supervise.Block,
			},
			Width:          width,
			HeartbeatEvery: 250 * time.Millisecond,
			// The bench measures the data plane; no periodic fan-in.
			StatesEvery: -1,
			Seed:        cfg.Seed + uint64(i),
		})
		if err != nil {
			return pt, fmt.Errorf("cluster bench: node b%d: %w", i, err)
		}
		nodes[i] = nd
	}
	if err := clusterWait("bench membership", 15*time.Second, func() bool {
		return coord.Stats().Placed == k
	}); err != nil {
		return pt, err
	}
	bootstrap := func() []string {
		out := make([]string, 0, k)
		for _, nd := range nodes {
			out = append(out, nd.Addr())
		}
		return out
	}

	nStreams := k * cfg.streamsPerNode()
	samples := cfg.samples()
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, nStreams)
	var mu sync.Mutex
	for i := 0; i < nStreams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := clusterBenchStream(bootstrap, cfg.Seed, width, i, samples)
			mu.Lock()
			pt.Redirects += st.Redirects
			pt.Rotations += st.Rotations
			mu.Unlock()
			if err != nil {
				select {
				case errs <- err:
				default:
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return pt, fmt.Errorf("cluster bench: %w", err)
	default:
	}
	wall := time.Since(start)

	pt.Nodes, pt.Streams, pt.Samples = k, nStreams, samples
	pt.WallMillis = durMillis(wall)
	pt.IntervalsPerSec = float64(nStreams*samples) / wall.Seconds()
	pt.PerNodePerSec = pt.IntervalsPerSec / float64(k)
	return pt, nil
}

// clusterBenchStream offers one windowed stream: it keeps the inflight
// window full and self-clocks on verdict echoes, so nothing is shed and
// every sample is scored exactly once.
func clusterBenchStream(bootstrap func() []string, seed uint64, width, sid, samples int) (cluster.DialStats, error) {
	c, st, err := cluster.Dial(cluster.DialConfig{
		Bootstrap: bootstrap,
		Hello:     ingest.Hello{Width: width, Tenant: "bench", Stream: fmt.Sprintf("s%d", sid)},
		Timeout:   30 * time.Second,
		Seed:      seed + uint64(sid),
	})
	if err != nil {
		return st, err
	}
	defer c.Close()
	window := c.Admitted.Window
	if window < 1 {
		window = 1
	}
	buf := make([]uint64, width)
	sent, echoed, inflight := 0, 0, 0
	for echoed < samples {
		if sent < samples && inflight < window {
			if err := c.Send(uint32(sent), clusterVals(sid, uint32(sent), buf)); err != nil {
				return st, fmt.Errorf("s%d send %d: %w", sid, sent, err)
			}
			sent++
			inflight++
			continue
		}
		ev, err := c.Next()
		if err != nil {
			return st, fmt.Errorf("s%d after %d echoes: %w", sid, echoed, err)
		}
		if ev.Type == ingest.FrameVerdict {
			echoed++
			inflight--
		}
	}
	if err := c.Bye(); err != nil {
		return st, fmt.Errorf("s%d BYE: %w", sid, err)
	}
	for {
		ev, err := c.Next()
		if err != nil {
			return st, fmt.Errorf("s%d waiting for finish: %w", sid, err)
		}
		if ev.Type == ingest.FrameDrain {
			return st, nil
		}
	}
}

// RenderCluster formats the scaling sweep for the console.
func RenderCluster(r *ClusterReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cluster scaling sweep (%s; %d streams/node x %d samples, interval %.1fms)\n",
		strings.Join(r.Chain, " -> "), r.StreamsPerNode, r.Samples, r.IntervalMillis)
	sb.WriteString("  nodes   streams   intervals/s   per-node/s   redirects   wall ms\n")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "  %5d   %7d   %11.0f   %10.0f   %9d   %7.0f\n",
			p.Nodes, p.Streams, p.IntervalsPerSec, p.PerNodePerSec, p.Redirects, p.WallMillis)
	}
	if c := r.Capacity; c != nil {
		fmt.Fprintf(&sb, "Cluster wire capacity (%d nodes, %d streams x %.0fms blast):\n",
			c.Nodes, c.Streams, c.DurationMillis)
		sb.WriteString("  mode        samples/s   verdicts/s   syscalls/sample   shed\n")
		for _, p := range []ClusterCapacityPoint{c.Unbatched, c.Batched} {
			mode := "unbatched"
			if p.Batched {
				mode = "batched"
			}
			fmt.Fprintf(&sb, "  %-9s   %9.0f   %10.0f   %15.4f   %d\n",
				mode, p.SamplesPerSec, p.VerdictsPerSec, p.SyscallsPerSample, p.Shed)
		}
		fmt.Fprintf(&sb, "  batched/unbatched samples/s speedup: %.1fx\n", c.Speedup)
	}
	return sb.String()
}
