package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/micro"
	"repro/internal/mlearn/zoo"
	"repro/internal/workload"
)

// The extension studies go beyond the paper's evaluation: the
// specialized-detector organisation its related work advocates
// (Khasawneh et al. [11]) and a mimicry-evasion robustness sweep (the
// open question the paper's conclusion raises).

// OrgRow compares detector organisations for one configuration.
type OrgRow struct {
	Classifier  string
	HPCs        int
	Mono        eval.Result // one general detector, benign vs all malware
	Specialized eval.Result // per-family specialists, max-score combined
}

// SpecializedComparison contrasts the monolithic and specialized
// organisations across classifiers at a fixed HPC budget.
func (ctx *Context) SpecializedComparison(hpcs int) ([]OrgRow, error) {
	var rows []OrgRow
	for _, name := range []string{"J48", "JRip", "REPTree", "BayesNet"} {
		mono, spec, err := ctx.Builder.CompareOrganisations(name, zoo.General, hpcs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, OrgRow{Classifier: name, HPCs: hpcs, Mono: mono, Specialized: spec})
	}
	return rows, nil
}

// RenderOrgRows formats the organisation comparison.
func RenderOrgRows(rows []OrgRow) string {
	var sb strings.Builder
	sb.WriteString("Extension: monolithic vs specialized (per-family) detectors\n")
	fmt.Fprintf(&sb, "%-10s %4s | %8s %6s | %8s %6s\n",
		"Classifier", "HPCs", "mono acc", "AUC", "spec acc", "AUC")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %4d | %7.1f%% %6.3f | %7.1f%% %6.3f\n",
			r.Classifier, r.HPCs,
			r.Mono.Accuracy*100, r.Mono.AUC,
			r.Specialized.Accuracy*100, r.Specialized.AUC)
	}
	return sb.String()
}

// EvasionPoint is one step of the mimicry sweep.
type EvasionPoint struct {
	Alpha    float64 // evasion strength (0 = plain malware, 1 = full mimicry)
	FlagRate float64 // fraction of monitored intervals flagged
	// MeanDelay is the mean detection delay in intervals over detected
	// apps (-1 if nothing was detected).
	MeanDelay float64
}

// EvasionSweep deploys a trained run-time monitor against increasingly
// evasive malware and measures how the flag rate and detection delay
// degrade.
func (ctx *Context) EvasionSweep(baseName string, variant zoo.Variant, hpcs int, alphas []float64) ([]EvasionPoint, error) {
	det, _, err := ctx.Detector(baseName, variant, hpcs)
	if err != nil {
		return nil, err
	}
	mon, err := core.NewMonitor(det, 5, 0.5)
	if err != nil {
		return nil, err
	}

	var out []EvasionPoint
	const intervals = 20
	for _, alpha := range alphas {
		apps := workload.EvasiveSuite(alpha, 3, 0xE7A)
		flagged, total := 0, 0
		delaySum, detected := 0, 0
		for _, app := range apps {
			run := app.NewRun(0)
			mach := micro.NewMachine(micro.DefaultConfig(), run.MachineSeed())
			mon.Reset()
			verdicts, err := mon.Watch(mach, run, intervals, 0)
			if err != nil {
				return nil, err
			}
			for _, v := range verdicts[5:] {
				total++
				if v.Malware {
					flagged++
				}
			}
			if d := core.DetectionDelay(verdicts, 3); d >= 0 {
				delaySum += d
				detected++
			}
		}
		p := EvasionPoint{Alpha: alpha, FlagRate: float64(flagged) / float64(total), MeanDelay: -1}
		if detected > 0 {
			p.MeanDelay = float64(delaySum) / float64(detected)
		}
		out = append(out, p)
	}
	return out, nil
}

// RenderEvasion formats the evasion sweep.
func RenderEvasion(detName string, pts []EvasionPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension: mimicry evasion sweep (%s, sustained-3 delay)\n", detName)
	for _, p := range pts {
		delay := "never"
		if p.MeanDelay >= 0 {
			delay = fmt.Sprintf("%.1f intervals", p.MeanDelay)
		}
		fmt.Fprintf(&sb, "  alpha=%.2f  flag rate %5.1f%%  mean detection delay %s\n",
			p.Alpha, p.FlagRate*100, delay)
	}
	return sb.String()
}
