package experiments

import (
	"strings"
	"testing"
)

// TestQuantEquivalence is the quantized tier's CI gate: zoo-wide pooled
// verdict parity at least QuantParityFloor, and per-model accuracy/AUC
// deltas within the robustness sweep's noise band. A quantized-kernel
// change that drifts verdicts past either bound fails here.
func TestQuantEquivalence(t *testing.T) {
	ctx := testContext(t)
	rep, err := ctx.QuantEquivalence()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderQuantEquivalence(rep)
	t.Log("\n" + out)

	if len(rep.Models) == 0 {
		t.Fatal("no models in equivalence report")
	}
	quantized := 0
	for _, m := range rep.Models {
		if m.Quantized {
			quantized++
		}
		if m.Rows == 0 {
			t.Errorf("%s: empty held-out split", m.Label)
		}
		if !m.Quantized && m.Parity != 1 {
			t.Errorf("%s: fallback model must have parity 1, got %v", m.Label, m.Parity)
		}
	}
	// The zoo is 8 classifiers x 3 variants; only OneR and JRip (6
	// models) lack a quantized lowering.
	if want := len(rep.Models) - 6; quantized != want {
		t.Errorf("quantized models = %d, want %d", quantized, want)
	}

	if rep.Parity < rep.ParityFloor {
		t.Errorf("pooled verdict parity %.5f below floor %.4f", rep.Parity, rep.ParityFloor)
	}
	if rep.MaxAccDelta > rep.NoiseAcc {
		t.Errorf("max accuracy delta %.4f exceeds noise band %.4f", rep.MaxAccDelta, rep.NoiseAcc)
	}
	if rep.MaxAUCDelta > rep.NoiseAUC {
		t.Errorf("max AUC delta %.4f exceeds noise band %.4f", rep.MaxAUCDelta, rep.NoiseAUC)
	}
	if !rep.Pass {
		t.Error("equivalence gate reports Pass=false")
	}
	if !strings.Contains(out, "pooled parity") {
		t.Error("render output missing pooled parity line")
	}
}

// TestPerfOnly exercises the single family/tier micro-run used by
// hmd-bench -perf-only, across a quantized, a fallback, and a compiled
// target.
func TestPerfOnly(t *testing.T) {
	ctx := testContext(t)
	for _, spec := range []string{"mlp:quantized", "reptree-boosted:quantized", "sgd"} {
		r, err := ctx.PerfOnly(spec)
		if err != nil {
			t.Fatalf("PerfOnly(%q): %v", spec, err)
		}
		if r.SingleNs <= 0 || r.BatchNs <= 0 || r.IntervalsPerSec <= 0 {
			t.Errorf("PerfOnly(%q): non-positive timing %+v", spec, r)
		}
		if out := RenderPerfOnly(r); !strings.Contains(out, r.Label) {
			t.Errorf("render missing label: %q", out)
		}
	}
	if _, err := ctx.PerfOnly("nosuch:quantized"); err == nil {
		t.Error("unknown family must error")
	}
	if _, err := ctx.PerfOnly("mlp:nosuchtier"); err == nil {
		t.Error("unknown tier must error")
	}
}
