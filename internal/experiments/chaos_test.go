package experiments

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/supervise"
)

func chaosConfig(t *testing.T) ChaosConfig {
	t.Helper()
	return ChaosConfig{
		Apps:      4,
		Intervals: 40,
		Plan:      faults.Plan{Seed: 0xCA05, Rate: 0.3},
		Breaker:   supervise.BreakerConfig{FailAfter: 1, Cooldown: 3},

		CheckpointDir: t.TempDir(),
	}
}

// TestChaos is the acceptance drill for the supervised service: seeded
// crashes at a double-digit rate, a torn model checkpoint, and every
// service contract asserted. scripts/check.sh runs it in -short mode as
// the smoke gate.
func TestChaos(t *testing.T) {
	ctx := testContext(t)
	cfg := chaosConfig(t)
	if testing.Short() {
		cfg.Apps = 2
	}
	res, err := ctx.Chaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GapFree {
		t.Error("verdict stream has gaps under fault injection")
	}
	for _, a := range res.Apps {
		if a.Verdicts != cfg.Intervals {
			t.Errorf("%s: %d verdicts, want %d", a.App, a.Verdicts, cfg.Intervals)
		}
	}
	if !res.TornQuarantined || res.RecoveredGen != 1 {
		t.Errorf("torn checkpoint handling: quarantined=%v gen=%d, want true/1",
			res.TornQuarantined, res.RecoveredGen)
	}
	if !res.RecoveredIntact {
		t.Error("recovered chain does not match the checkpointed one")
	}
	if res.Trips == 0 || res.Recoveries == 0 {
		t.Errorf("breaker trips=%d recoveries=%d, want both > 0", res.Trips, res.Recoveries)
	}
	if res.SourceBoots <= len(res.Apps) {
		t.Errorf("source boots=%d for %d apps: no crash forced a reboot", res.SourceBoots, len(res.Apps))
	}
	if !res.Deterministic {
		t.Error("identical seeds did not reproduce identical verdict streams")
	}
	if !res.Passed() {
		t.Errorf("chaos drill failed: %+v", res)
	}

	out := RenderChaos(res)
	for _, want := range []string{"Chaos drill", "[PASS]", "gap-free", "quarantined"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderChaos output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "[FAIL]") {
		t.Errorf("RenderChaos reports failures:\n%s", out)
	}
}

func TestChaosRejectsInertPlans(t *testing.T) {
	ctx := testContext(t)
	cfg := chaosConfig(t)
	cfg.Plan.Rate = 0
	if _, err := ctx.Chaos(cfg); err == nil {
		t.Error("inactive plan accepted")
	}
	cfg = chaosConfig(t)
	cfg.Plan.Kinds = []faults.Kind{faults.DropSample}
	if _, err := ctx.Chaos(cfg); err == nil {
		t.Error("crash-free plan accepted")
	}
	cfg = chaosConfig(t)
	cfg.CheckpointDir = ""
	if _, err := ctx.Chaos(cfg); err == nil {
		t.Error("missing checkpoint dir accepted")
	}
}
