package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/micro"
	"repro/internal/mlearn/zoo"
	"repro/internal/supervise"
	"repro/internal/workload"
)

// The chaos experiment is the end-to-end drill for the supervised
// run-time service: a trained fallback chain is checkpointed, a torn
// checkpoint (the kill -9 case) is recovered from, and the supervised
// pipeline then monitors a schedule of unseen applications while a
// seeded fault plan crashes the source, drops samples and corrupts
// counters. The experiment asserts the service's contracts rather than
// its accuracy: the verdict stream stays gap-free, the circuit breaker
// trips and recovers, the torn checkpoint is quarantined (never
// loaded), and the whole exercise reproduces bit-identically per seed.

// ChaosConfig parameterises the chaos drill.
type ChaosConfig struct {
	// Classifier/Variant/Counts/Window define the fallback chain
	// (defaults: REPTree, General, [4,2], window 5).
	Classifier string
	Variant    zoo.Variant
	Counts     []int
	Window     int
	// Apps is the number of unseen applications monitored (default 6).
	Apps int
	// Intervals per application (default 40).
	Intervals int
	// Plan is the fault plan; Rate must be positive so the drill
	// actually exercises crash paths.
	Plan faults.Plan
	// Breaker configures the source circuit breaker (defaults apply).
	Breaker supervise.BreakerConfig
	// CheckpointDir hosts the checkpoint-recovery drill's files.
	CheckpointDir string
}

func (c *ChaosConfig) fill() {
	if c.Classifier == "" {
		c.Classifier = "REPTree"
	}
	if len(c.Counts) == 0 {
		c.Counts = []int{4, 2}
	}
	if c.Window == 0 {
		c.Window = 5
	}
	if c.Apps == 0 {
		c.Apps = 6
	}
	if c.Intervals == 0 {
		c.Intervals = 40
	}
	// The drill's contract is that the breaker trips and recovers, so
	// default it to the most sensitive setting: any source failure opens
	// the circuit, a short cooldown later the probe reboots the source.
	if c.Breaker.FailAfter == 0 {
		c.Breaker.FailAfter = 1
	}
	if c.Breaker.Cooldown == 0 {
		c.Breaker.Cooldown = 4
	}
}

// ChaosApp is one monitored application's outcome under chaos.
type ChaosApp struct {
	App     string
	Class   workload.Class
	Flagged bool
	// Verdicts is the stream length; GapFree reports whether it covers
	// every interval consecutively.
	Verdicts int
	GapFree  bool
	// Lost counts verdicts held by the prior path (crashes, open
	// breaker, dropped samples).
	Lost int
	// Boots is how many times the source (re)booted; Trips how often
	// the breaker opened while monitoring this app.
	Boots int
	Trips int
	// Timeline is the per-interval verdict strip ('.' benign, '!'
	// flagged, one char per interval).
	Timeline string
}

// ChaosResult aggregates the drill.
type ChaosResult struct {
	Apps []ChaosApp

	// Checkpoint drill outcomes.
	TornQuarantined bool // the torn newest generation was quarantined
	RecoveredGen    int  // generation actually loaded
	RecoveredIntact bool // recovered chain matches the original's shape

	// Service contract outcomes, aggregated over all apps.
	GapFree       bool
	Trips         int
	Recoveries    int
	SourceBoots   int
	LostVerdicts  int
	Restarts      int
	Deterministic bool // second identical pass reproduced every verdict
}

// Passed reports whether every chaos contract held.
func (r ChaosResult) Passed() bool {
	return r.GapFree && r.TornQuarantined && r.RecoveredIntact &&
		r.Trips > 0 && r.Recoveries > 0 && r.Deterministic
}

// Chaos runs the drill. The plan must be active (Rate > 0) and include
// the crash kind, otherwise the breaker contract cannot be exercised.
func (ctx *Context) Chaos(cfg ChaosConfig) (ChaosResult, error) {
	cfg.fill()
	var res ChaosResult
	if !cfg.Plan.Active() {
		return res, errors.New("chaos: fault plan must have Rate > 0")
	}
	if !cfg.Plan.Enabled(faults.CrashRun) {
		return res, errors.New("chaos: fault plan must enable the crash kind")
	}
	if cfg.CheckpointDir == "" {
		return res, errors.New("chaos: checkpoint dir required")
	}

	chain, err := ctx.Builder.BuildChain(cfg.Classifier, cfg.Variant, cfg.Counts, core.ChainConfig{Window: cfg.Window})
	if err != nil {
		return res, fmt.Errorf("chaos: building chain: %w", err)
	}

	// ---- Checkpoint drill: save, tear, recover ----
	recovered, err := checkpointDrill(cfg.CheckpointDir, chain, &res)
	if err != nil {
		return res, err
	}

	// ---- Supervised monitoring under faults, twice for determinism ----
	schedule := chaosSchedule(cfg.Apps)
	first, err := chaosPass(recovered, cfg, schedule, &res)
	if err != nil {
		return res, err
	}
	second, err := chaosPass(recovered, cfg, schedule, nil)
	if err != nil {
		return res, fmt.Errorf("chaos: determinism pass: %w", err)
	}
	res.Deterministic = streamsEqual(first, second)
	return res, nil
}

// checkpointDrill saves the chain twice, tears the newest generation in
// place (what a kill -9 against a sector-torn disk leaves behind) and
// recovers: the torn file must be quarantined and the older generation
// loaded.
func checkpointDrill(dir string, chain *core.FallbackChain, res *ChaosResult) (*core.FallbackChain, error) {
	store, err := core.NewCheckpointStore(dir, "model", core.ChainModelVersion)
	if err != nil {
		return nil, fmt.Errorf("chaos: checkpoint store: %w", err)
	}
	save := func() error {
		return store.Save(func(w io.Writer) error { return core.SaveChain(w, chain) })
	}
	if err := save(); err != nil {
		return nil, fmt.Errorf("chaos: first checkpoint: %w", err)
	}
	if err := save(); err != nil {
		return nil, fmt.Errorf("chaos: second checkpoint: %w", err)
	}
	newest := store.Path(0)
	info, err := os.Stat(newest)
	if err != nil {
		return nil, fmt.Errorf("chaos: stating checkpoint: %w", err)
	}
	if err := os.Truncate(newest, info.Size()/2); err != nil {
		return nil, fmt.Errorf("chaos: tearing checkpoint: %w", err)
	}

	var recovered *core.FallbackChain
	gen, quarantined, err := store.Recover(func(payload []byte) error {
		c, err := core.LoadChain(bytes.NewReader(payload))
		if err != nil {
			return err
		}
		recovered = c
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: recovering checkpoint: %w", err)
	}
	res.RecoveredGen = gen
	res.TornQuarantined = gen == 1 && len(quarantined) == 1
	res.RecoveredIntact = chainsMatch(chain, recovered)
	return recovered, nil
}

func chainsMatch(a, b *core.FallbackChain) bool {
	if a.Stages() != b.Stages() {
		return false
	}
	for i := 0; i < a.Stages(); i++ {
		if a.StageName(i) != b.StageName(i) {
			return false
		}
	}
	ae, be := a.Events(), b.Events()
	if len(ae) != len(be) {
		return false
	}
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}

// chaosSchedule interleaves benign and malware apps from the unseen
// suite (a different seed universe than the training corpus).
func chaosSchedule(n int) []workload.App {
	unseen := workload.Suite(workload.SuiteConfig{Seed: 0xBEEF, AppsPerFamily: 1})
	benign, malware := workload.Split(unseen)
	var schedule []workload.App
	for i := 0; i < n; i++ {
		if i%2 == 0 && i/2 < len(benign) {
			schedule = append(schedule, benign[i/2])
		} else if i/2 < len(malware) {
			schedule = append(schedule, malware[i/2])
		}
	}
	return schedule
}

// chaosPass monitors the whole schedule once through the supervised
// pipeline, returning the concatenated verdict streams. When res is
// non-nil the pass also records per-app and aggregate outcomes.
func chaosPass(chain *core.FallbackChain, cfg ChaosConfig, schedule []workload.App, res *ChaosResult) ([][]core.Verdict, error) {
	var streams [][]core.Verdict
	if res != nil {
		res.GapFree = true
	}
	for _, app := range schedule {
		chain.Reset()
		p, err := supervise.New(supervise.Config{
			Chain:          chain,
			Policy:         supervise.Block, // the deterministic policy
			Breaker:        cfg.Breaker,
			RestartBackoff: -1,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: pipeline for %s: %w", app.Name, err)
		}
		src, err := supervise.NewMachineSource(supervise.MachineSourceConfig{
			Machine: micro.FastConfig(),
			Run:     app.NewRun(0),
			Events:  chain.Events(),
			Total:   cfg.Intervals,
			Plan:    &cfg.Plan,
			Scope:   app.Name,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: source for %s: %w", app.Name, err)
		}
		verdicts, err := p.Run(context.Background(), src, cfg.Intervals)
		if err != nil {
			return nil, fmt.Errorf("chaos: monitoring %s: %w", app.Name, err)
		}
		streams = append(streams, verdicts)
		if res == nil {
			continue
		}
		st := p.Stats()
		gapFree := len(verdicts) == cfg.Intervals
		flags := 0
		var timeline strings.Builder
		for i, v := range verdicts {
			if gapFree && v.Interval != i {
				gapFree = false
			}
			if v.Malware {
				flags++
				timeline.WriteByte('!')
			} else {
				timeline.WriteByte('.')
			}
		}
		res.Apps = append(res.Apps, ChaosApp{
			App:      app.Name,
			Class:    app.Class,
			Flagged:  flags > len(verdicts)/3,
			Verdicts: len(verdicts),
			GapFree:  gapFree,
			Lost:     st.LostVerdicts,
			Boots:    src.Boots(),
			Trips:    st.Breaker.Trips,
			Timeline: timeline.String(),
		})
		res.GapFree = res.GapFree && gapFree
		res.Trips += st.Breaker.Trips
		res.Recoveries += st.Breaker.Recoveries
		res.SourceBoots += src.Boots()
		res.LostVerdicts += st.LostVerdicts
		res.Restarts += st.Collector.Restarts + st.Reducer.Restarts + st.Inferrer.Restarts
	}
	return streams, nil
}

func streamsEqual(a, b [][]core.Verdict) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// RenderChaos formats the drill's outcome as a checklist plus the
// per-app monitoring log.
func RenderChaos(r ChaosResult) string {
	var sb strings.Builder
	sb.WriteString("Chaos drill: supervised service under fault injection\n")
	for _, a := range r.Apps {
		verdict := "BENIGN "
		if a.Flagged {
			verdict = "MALWARE"
		}
		fmt.Fprintf(&sb, "  %-22s truth=%-8s verdict=%s boots=%d trips=%d lost=%2d [%s]\n",
			a.App, a.Class, verdict, a.Boots, a.Trips, a.Lost, a.Timeline)
	}
	check := func(ok bool, format string, args ...any) {
		mark := "PASS"
		if !ok {
			mark = "FAIL"
		}
		fmt.Fprintf(&sb, "  [%s] %s\n", mark, fmt.Sprintf(format, args...))
	}
	sb.WriteString("contracts:\n")
	check(r.GapFree, "verdict stream gap-free across crashes and restarts")
	check(r.TornQuarantined, "torn checkpoint quarantined, generation %d recovered", r.RecoveredGen)
	check(r.RecoveredIntact, "recovered model matches the checkpointed chain")
	check(r.Trips > 0 && r.Recoveries > 0, "breaker tripped (%d) and recovered (%d)", r.Trips, r.Recoveries)
	check(r.Deterministic, "identical seeds reproduce identical verdict streams")
	fmt.Fprintf(&sb, "  source boots=%d, prior-held verdicts=%d, stage restarts=%d\n",
		r.SourceBoots, r.LostVerdicts, r.Restarts)
	return sb.String()
}
