package experiments

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/mlearn/zoo"
)

// TestRobustnessSweepDeterministic is the acceptance check for the
// robustness study: two sweeps with the same seeded plan must reproduce
// identical curves.
func TestRobustnessSweepDeterministic(t *testing.T) {
	ctx := testContext(t)
	rates := []float64{0, 0.2, 0.5}
	plan := faults.Plan{Seed: 0xF417}

	a, err := ctx.RobustnessSweep("REPTree", 2, rates, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.RobustnessSweep("REPTree", 2, rates, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(rates) || len(b.Points) != len(rates) {
		t.Fatalf("point counts: %d, %d, want %d", len(a.Points), len(b.Points), len(rates))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("rate %.2f: curves differ across identical seeds:\n  %+v\n  %+v",
				rates[i], a.Points[i], b.Points[i])
		}
	}
}

// TestRobustnessRateZeroMatchesCleanEval checks that the sweep's 0-rate
// point equals the ordinary held-out evaluation (the study is anchored
// to the paper's clean numbers).
func TestRobustnessRateZeroMatchesCleanEval(t *testing.T) {
	ctx := testContext(t)
	curve, err := ctx.RobustnessSweep("REPTree", 2, []float64{0}, faults.Plan{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	_, clean, err := ctx.Detector("REPTree", zoo.General, 2)
	if err != nil {
		t.Fatal(err)
	}
	if curve.Points[0].General != clean {
		t.Fatalf("rate-0 point %+v != clean evaluation %+v", curve.Points[0].General, clean)
	}
}

// TestRobustnessDegradesWithRate asserts the basic sanity of the curve:
// heavy corruption cannot beat clean inputs for the general detector.
func TestRobustnessDegradesWithRate(t *testing.T) {
	ctx := testContext(t)
	curve, err := ctx.RobustnessSweep("REPTree", 2, []float64{0, 0.8}, faults.Plan{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	clean, dirty := curve.Points[0], curve.Points[1]
	if dirty.General.Accuracy > clean.General.Accuracy+0.02 {
		t.Errorf("rate-0.8 general accuracy %.3f implausibly above clean %.3f",
			dirty.General.Accuracy, clean.General.Accuracy)
	}

	out := RenderRobustness(curve)
	if !strings.Contains(out, "Robustness") || !strings.Contains(out, "0.80") {
		t.Errorf("render missing expected content:\n%s", out)
	}
}
