// Package experiments regenerates every table and figure of the
// paper's evaluation (§4): Table 1 (feature ranking), Figure 3
// (accuracy grid), Table 2 (AUC grid), Figure 4 (ROC curves), Figure 5
// (ACC×AUC grid) and Table 3 (hardware latency/area). The cmd/hmd-bench
// tool and the repository's benchmark suite are thin wrappers around
// this package.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/hls"
	"repro/internal/mlearn/zoo"
)

// HPCCounts are the paper's counter budgets, largest first.
var HPCCounts = []int{16, 8, 4, 2}

// Context carries the collected corpus, the split/ranking state and a
// cache of trained detectors; building it performs the full collection
// pass (the expensive part, ~15 s at paper scale).
type Context struct {
	Data    *dataset.Instances
	Builder *core.Builder

	mu    sync.Mutex
	cache map[string]gridEntry
}

type gridEntry struct {
	det *core.Detector
	res eval.Result
}

// NewContext collects a corpus with cfg and prepares the 70/30
// app-level split and feature ranking.
func NewContext(cfg collect.Config, seed uint64) (*Context, error) {
	res, err := collect.Collect(cfg)
	if err != nil {
		return nil, err
	}
	b, err := core.NewBuilder(res.Data, 0.7, seed)
	if err != nil {
		return nil, err
	}
	return &Context{Data: res.Data, Builder: b, cache: map[string]gridEntry{}}, nil
}

// Detector trains (or returns the cached) detector for the given
// configuration and its held-out evaluation.
func (ctx *Context) Detector(name string, variant zoo.Variant, hpcs int) (*core.Detector, eval.Result, error) {
	key := fmt.Sprintf("%s/%s/%d", name, variant, hpcs)
	ctx.mu.Lock()
	if e, ok := ctx.cache[key]; ok {
		ctx.mu.Unlock()
		return e.det, e.res, nil
	}
	ctx.mu.Unlock()

	det, err := ctx.Builder.Build(name, variant, hpcs)
	if err != nil {
		return nil, eval.Result{}, err
	}
	res, err := ctx.Builder.Evaluate(det)
	if err != nil {
		return nil, eval.Result{}, err
	}
	ctx.mu.Lock()
	ctx.cache[key] = gridEntry{det: det, res: res}
	ctx.mu.Unlock()
	return det, res, nil
}

// ---- Table 1 ----

// Table1Row is one ranked hardware performance counter.
type Table1Row struct {
	Rank  int
	Event string
	Score float64
}

// Table1 ranks all events on the training split and returns the top-k
// (the paper lists 16).
func (ctx *Context) Table1(k int) ([]Table1Row, error) {
	ranked, err := features.RankCorrelation(ctx.Builder.Train())
	if err != nil {
		return nil, err
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	rows := make([]Table1Row, k)
	for i := 0; i < k; i++ {
		rows[i] = Table1Row{Rank: i + 1, Event: ranked[i].Name, Score: ranked[i].Score}
	}
	return rows, nil
}

// ---- Figures 3 & 5, Table 2 (the detector grid) ----

// GridCell is one (classifier, HPC count, variant) evaluation.
type GridCell struct {
	Classifier string
	HPCs       int
	Variant    zoo.Variant
	Result     eval.Result
}

// Label returns the paper-style detector label of the cell.
func (g GridCell) Label() string {
	if g.Variant == zoo.General {
		return fmt.Sprintf("%dHPC-%s", g.HPCs, g.Classifier)
	}
	return fmt.Sprintf("%dHPC-%s-%s", g.HPCs, g.Variant, g.Classifier)
}

// Grid trains and evaluates every combination the paper studies:
// 8 classifiers × 4 HPC budgets × 3 variants = 96 detectors. Training
// runs in parallel; results are cached on the context, so Figure 3,
// Table 2 and Figure 5 share one grid.
func (ctx *Context) Grid() ([]GridCell, error) {
	type job struct {
		name    string
		hpcs    int
		variant zoo.Variant
	}
	var jobs []job
	for _, name := range zoo.Names() {
		for _, hpcs := range HPCCounts {
			for _, v := range []zoo.Variant{zoo.General, zoo.Boosted, zoo.Bagged} {
				jobs = append(jobs, job{name, hpcs, v})
			}
		}
	}
	cells := make([]GridCell, len(jobs))
	errs := make([]error, len(jobs))

	par := runtime.NumCPU()
	if par > len(jobs) {
		par = len(jobs)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				j := jobs[i]
				_, res, err := ctx.Detector(j.name, j.variant, j.hpcs)
				if err != nil {
					errs[i] = err
					continue
				}
				cells[i] = GridCell{Classifier: j.name, HPCs: j.hpcs, Variant: j.variant, Result: res}
			}
		}()
	}
	for i := range jobs {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cells, nil
}

// Figure3 returns the accuracy grid (the paper plots accuracy per
// classifier for 16/8/4/2 HPC general models plus the boosted and
// bagged reduced models).
func (ctx *Context) Figure3() ([]GridCell, error) { return ctx.Grid() }

// Figure5 returns the same grid; consumers read
// Result.Performance() (ACC×AUC).
func (ctx *Context) Figure5() ([]GridCell, error) { return ctx.Grid() }

// Table2Row mirrors the paper's Table 2 columns for one classifier.
type Table2Row struct {
	Classifier string
	AUC16      float64 // 16HPC general
	AUC8       float64 // 8HPC general
	AUC4       float64 // 4HPC general
	AUC4Boost  float64 // 4HPC-Boosted
	AUC4Bag    float64 // 4HPC-Bagging
	AUC2       float64 // 2HPC general
	AUC2Boost  float64 // 2HPC-Boosted
	AUC2Bag    float64 // 2HPC-Bagging
}

// Table2 assembles the AUC table from the grid.
func (ctx *Context) Table2() ([]Table2Row, error) {
	cells, err := ctx.Grid()
	if err != nil {
		return nil, err
	}
	idx := map[string]eval.Result{}
	for _, c := range cells {
		idx[c.Label()] = c.Result
	}
	var rows []Table2Row
	for _, name := range zoo.Names() {
		rows = append(rows, Table2Row{
			Classifier: name,
			AUC16:      idx[fmt.Sprintf("16HPC-%s", name)].AUC,
			AUC8:       idx[fmt.Sprintf("8HPC-%s", name)].AUC,
			AUC4:       idx[fmt.Sprintf("4HPC-%s", name)].AUC,
			AUC4Boost:  idx[fmt.Sprintf("4HPC-Boosted-%s", name)].AUC,
			AUC4Bag:    idx[fmt.Sprintf("4HPC-Bagging-%s", name)].AUC,
			AUC2:       idx[fmt.Sprintf("2HPC-%s", name)].AUC,
			AUC2Boost:  idx[fmt.Sprintf("2HPC-Boosted-%s", name)].AUC,
			AUC2Bag:    idx[fmt.Sprintf("2HPC-Bagging-%s", name)].AUC,
		})
	}
	return rows, nil
}

// ---- Figure 4 ----

// NamedROC is a labelled ROC curve.
type NamedROC struct {
	Label string
	ROC   *eval.ROC
}

// Figure4a returns the ROC curves for the 4HPC-Bagging detectors of
// BayesNet, JRip, MLP and OneR (paper Figure 4-a).
func (ctx *Context) Figure4a() ([]NamedROC, error) {
	var out []NamedROC
	for _, name := range []string{"BayesNet", "JRip", "MLP", "OneR"} {
		det, _, err := ctx.Detector(name, zoo.Bagged, 4)
		if err != nil {
			return nil, err
		}
		roc, err := ctx.Builder.ROC(det)
		if err != nil {
			return nil, err
		}
		out = append(out, NamedROC{Label: det.Name(), ROC: roc})
	}
	return out, nil
}

// Figure4b returns the ROC curves comparing 8HPC general vs
// 2HPC-Boosted for JRip and OneR (paper Figure 4-b).
func (ctx *Context) Figure4b() ([]NamedROC, error) {
	var out []NamedROC
	for _, name := range []string{"JRip", "OneR"} {
		for _, cfg := range []struct {
			v    zoo.Variant
			hpcs int
		}{{zoo.General, 8}, {zoo.Boosted, 2}} {
			det, _, err := ctx.Detector(name, cfg.v, cfg.hpcs)
			if err != nil {
				return nil, err
			}
			roc, err := ctx.Builder.ROC(det)
			if err != nil {
				return nil, err
			}
			out = append(out, NamedROC{Label: det.Name(), ROC: roc})
		}
	}
	return out, nil
}

// ---- Table 3 ----

// Table3Row is the hardware cost of one classifier under the paper's
// three implementation configurations.
type Table3Row struct {
	Classifier string
	// 8HPC general implementation.
	LatGeneral8 int
	AreaGen8    float64
	// 4HPC AdaBoost implementation.
	LatBoost4 int
	AreaB4    float64
	// 2HPC AdaBoost implementation.
	LatBoost2 int
	AreaB2    float64
}

// Table3 compiles the trained models to hardware and reports latency
// (cycles @10 ns) and area (% of the OpenSPARC budget).
func (ctx *Context) Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, name := range zoo.Names() {
		row := Table3Row{Classifier: name}

		detG, _, err := ctx.Detector(name, zoo.General, 8)
		if err != nil {
			return nil, err
		}
		dg, err := hls.Compile(detG.Model, detG.Name())
		if err != nil {
			return nil, err
		}
		row.LatGeneral8, row.AreaGen8 = dg.Latency, dg.AreaPercent()

		det4, _, err := ctx.Detector(name, zoo.Boosted, 4)
		if err != nil {
			return nil, err
		}
		d4, err := hls.Compile(det4.Model, det4.Name())
		if err != nil {
			return nil, err
		}
		row.LatBoost4, row.AreaB4 = d4.Latency, d4.AreaPercent()

		det2, _, err := ctx.Detector(name, zoo.Boosted, 2)
		if err != nil {
			return nil, err
		}
		d2, err := hls.Compile(det2.Model, det2.Name())
		if err != nil {
			return nil, err
		}
		row.LatBoost2, row.AreaB2 = d2.Latency, d2.AreaPercent()

		rows = append(rows, row)
	}
	return rows, nil
}

// ---- Rendering ----

// RenderTable1 formats Table 1 rows.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: hardware performance counters in order of importance\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%2d. %-28s score=%.4f\n", r.Rank, r.Event, r.Score)
	}
	return sb.String()
}

// RenderGrid formats Figure 3/5 cells as one row per detector with the
// chosen metric ("acc" or "perf").
func RenderGrid(cells []GridCell, metric string) string {
	sorted := append([]GridCell(nil), cells...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Classifier != sorted[b].Classifier {
			return sorted[a].Classifier < sorted[b].Classifier
		}
		if sorted[a].HPCs != sorted[b].HPCs {
			return sorted[a].HPCs > sorted[b].HPCs
		}
		return sorted[a].Variant < sorted[b].Variant
	})
	var sb strings.Builder
	title := "Figure 3: accuracy (%)"
	if metric == "perf" {
		title = "Figure 5: performance ACC*AUC (%)"
	}
	sb.WriteString(title + "\n")
	for _, c := range sorted {
		v := c.Result.Accuracy
		if metric == "perf" {
			v = c.Result.Performance()
		}
		fmt.Fprintf(&sb, "%-28s %6.2f\n", c.Label(), v*100)
	}
	return sb.String()
}

// RenderTable2 formats the AUC table.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: AUC values for general and ensemble detectors\n")
	fmt.Fprintf(&sb, "%-10s %6s %6s %6s %9s %8s %6s %9s %8s\n",
		"Classifier", "16HPC", "8HPC", "4HPC", "4HPC-Bst", "4HPC-Bag", "2HPC", "2HPC-Bst", "2HPC-Bag")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %6.2f %6.2f %6.2f %9.2f %8.2f %6.2f %9.2f %8.2f\n",
			r.Classifier, r.AUC16, r.AUC8, r.AUC4, r.AUC4Boost, r.AUC4Bag, r.AUC2, r.AUC2Boost, r.AUC2Bag)
	}
	return sb.String()
}

// RenderROCs formats ROC curves as a compact point series (the paper
// plots these; here each curve is downsampled to at most 12 points).
func RenderROCs(title string, curves []NamedROC) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	for _, c := range curves {
		fmt.Fprintf(&sb, "%-26s AUC=%.3f  ", c.Label, c.ROC.AUC())
		pts := c.ROC.Points
		step := 1
		if len(pts) > 12 {
			step = len(pts) / 12
		}
		for i := 0; i < len(pts); i += step {
			fmt.Fprintf(&sb, "(%.2f,%.2f) ", pts[i].FPR, pts[i].TPR)
		}
		last := pts[len(pts)-1]
		fmt.Fprintf(&sb, "(%.2f,%.2f)\n", last.FPR, last.TPR)
	}
	return sb.String()
}

// RenderTable3 formats the hardware table.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: hardware implementation results (latency cycles @10ns, area % of OpenSPARC)\n")
	fmt.Fprintf(&sb, "%-10s | %9s %7s | %9s %7s | %9s %7s\n",
		"Classifier", "8HPC lat", "area%", "4HPC-B lat", "area%", "2HPC-B lat", "area%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s | %9d %7.1f | %9d %7.1f | %9d %7.1f\n",
			r.Classifier, r.LatGeneral8, r.AreaGen8, r.LatBoost4, r.AreaB4, r.LatBoost2, r.AreaB2)
	}
	return sb.String()
}
