package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/collect"
	"repro/internal/mlearn/zoo"
)

var (
	ctxOnce sync.Once
	ctxVal  *Context
	ctxErr  error
)

// testContext builds one reduced-scale context shared by all tests in
// this package (48 apps, 10 intervals — enough signal for structural
// assertions without paper-scale runtimes).
func testContext(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() {
		cfg := collect.Default()
		cfg.Suite.AppsPerFamily = 4
		cfg.Intervals = 10
		ctxVal, ctxErr = NewContext(cfg, 1)
	})
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return ctxVal
}

func TestTable1Structure(t *testing.T) {
	ctx := testContext(t)
	rows, err := ctx.Table1(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("got %d rows, want 16", len(rows))
	}
	for i, r := range rows {
		if r.Rank != i+1 {
			t.Errorf("row %d has rank %d", i, r.Rank)
		}
		if i > 0 && r.Score > rows[i-1].Score {
			t.Error("scores must be non-increasing")
		}
		if r.Event == "" {
			t.Error("empty event name")
		}
	}
	// The top-ranked event should carry clearly more class signal than
	// the 16th.
	if rows[0].Score < 1.3*rows[15].Score {
		t.Errorf("weak ranking: top=%.3f vs 16th=%.3f", rows[0].Score, rows[15].Score)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, rows[0].Event) {
		t.Error("render missing content")
	}
}

func TestDetectorCaching(t *testing.T) {
	ctx := testContext(t)
	d1, r1, err := ctx.Detector("OneR", zoo.General, 2)
	if err != nil {
		t.Fatal(err)
	}
	d2, r2, err := ctx.Detector("OneR", zoo.General, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("second call should return the cached detector")
	}
	if r1 != r2 {
		t.Error("cached result should be identical")
	}
}

func TestGridShape(t *testing.T) {
	ctx := testContext(t)
	cells, err := ctx.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8*4*3 {
		t.Fatalf("grid has %d cells, want 96", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Label()] {
			t.Fatalf("duplicate cell %s", c.Label())
		}
		seen[c.Label()] = true
		if c.Result.Accuracy <= 0.4 || c.Result.Accuracy > 1 {
			t.Errorf("%s: accuracy %.3f out of plausible range", c.Label(), c.Result.Accuracy)
		}
		if c.Result.AUC < 0.3 || c.Result.AUC > 1 {
			t.Errorf("%s: AUC %.3f out of plausible range", c.Label(), c.Result.AUC)
		}
	}
	// OneR must be invariant to the HPC budget as long as its one
	// chosen feature is in every budget — the paper's signature
	// observation (it only ever uses the top-ranked counter).
	var oneR []GridCell
	for _, c := range cells {
		if c.Classifier == "OneR" && c.Variant == zoo.General {
			oneR = append(oneR, c)
		}
	}
	if len(oneR) != 4 {
		t.Fatalf("OneR rows = %d", len(oneR))
	}
	// OneR uses a single attribute, so its accuracy is (nearly) flat
	// across HPC budgets — exactly flat whenever its preferred
	// attribute survives the cut, and within a few points otherwise.
	for _, c := range oneR[1:] {
		diff := c.Result.Accuracy - oneR[0].Result.Accuracy
		if diff < -0.06 || diff > 0.06 {
			t.Errorf("OneR accuracy should be nearly flat across HPC budgets: %v vs %v",
				c.Result.Accuracy, oneR[0].Result.Accuracy)
		}
	}
	if out := RenderGrid(cells, "acc"); !strings.Contains(out, "16HPC-J48") {
		t.Error("grid render missing rows")
	}
	if out := RenderGrid(cells, "perf"); !strings.Contains(out, "Figure 5") {
		t.Error("perf render missing title")
	}
}

func TestTable2Columns(t *testing.T) {
	ctx := testContext(t)
	rows, err := ctx.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		for _, v := range []float64{r.AUC16, r.AUC8, r.AUC4, r.AUC4Boost, r.AUC4Bag, r.AUC2, r.AUC2Boost, r.AUC2Bag} {
			if v <= 0 || v > 1 {
				t.Errorf("%s: AUC %v out of range", r.Classifier, v)
			}
		}
	}
	if out := RenderTable2(rows); !strings.Contains(out, "Table 2") {
		t.Error("render missing title")
	}
}

func TestFigure4Curves(t *testing.T) {
	ctx := testContext(t)
	a, err := ctx.Figure4a()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 4 {
		t.Fatalf("figure 4a has %d curves, want 4", len(a))
	}
	for _, c := range a {
		if !strings.Contains(c.Label, "4HPC-Bagging") {
			t.Errorf("unexpected curve %s", c.Label)
		}
		if len(c.ROC.Points) < 2 {
			t.Errorf("%s: degenerate ROC", c.Label)
		}
	}
	b, err := ctx.Figure4b()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 4 {
		t.Fatalf("figure 4b has %d curves, want 4 (2 classifiers x 2 configs)", len(b))
	}
	if out := RenderROCs("Figure 4a", a); !strings.Contains(out, "AUC=") {
		t.Error("ROC render missing AUC")
	}
}

func TestTable3Hardware(t *testing.T) {
	ctx := testContext(t)
	rows, err := ctx.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	var oneR, mlp Table3Row
	for _, r := range rows {
		if r.LatGeneral8 <= 0 || r.LatBoost4 <= 0 || r.LatBoost2 <= 0 {
			t.Errorf("%s: non-positive latency", r.Classifier)
		}
		if r.AreaGen8 <= 0 || r.AreaB4 <= 0 || r.AreaB2 <= 0 {
			t.Errorf("%s: non-positive area", r.Classifier)
		}
		// Boosted committees on a shared engine are slower than the
		// single 8HPC model for every classifier, as in Table 3.
		if r.LatBoost4 <= r.LatGeneral8 && r.Classifier != "MLP" {
			t.Errorf("%s: boosted latency %d <= general %d", r.Classifier, r.LatBoost4, r.LatGeneral8)
		}
		switch r.Classifier {
		case "OneR":
			oneR = r
		case "MLP":
			mlp = r
		}
	}
	// Table 3's qualitative anchors: OneR is the cheapest general
	// design; MLP the most expensive.
	if oneR.LatGeneral8 >= mlp.LatGeneral8 {
		t.Error("OneR should be faster than MLP")
	}
	if oneR.AreaGen8 >= mlp.AreaGen8 {
		t.Error("OneR should be smaller than MLP")
	}
	if out := RenderTable3(rows); !strings.Contains(out, "Table 3") {
		t.Error("render missing title")
	}
}

func TestSpecializedComparison(t *testing.T) {
	ctx := testContext(t)
	rows, err := ctx.SpecializedComparison(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		for _, v := range []float64{r.Mono.Accuracy, r.Specialized.Accuracy} {
			if v < 0.4 || v > 1 {
				t.Errorf("%s: accuracy %v implausible", r.Classifier, v)
			}
		}
	}
	if out := RenderOrgRows(rows); !strings.Contains(out, "specialized") {
		t.Error("render missing title")
	}
}

func TestEvasionSweep(t *testing.T) {
	ctx := testContext(t)
	pts, err := ctx.EvasionSweep("J48", zoo.General, 4, []float64{0, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[1].FlagRate >= pts[0].FlagRate {
		t.Errorf("evasion should reduce flag rate: %.2f -> %.2f", pts[0].FlagRate, pts[1].FlagRate)
	}
	if out := RenderEvasion("4HPC-J48", pts); !strings.Contains(out, "alpha=0.90") {
		t.Error("render missing sweep points")
	}
}
