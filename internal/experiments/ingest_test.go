package experiments

import (
	"strings"
	"testing"

	"repro/internal/faults"
)

func ingestChaosConfig(t *testing.T) IngestChaosConfig {
	t.Helper()
	return IngestChaosConfig{
		Streams:       3,
		Intervals:     30,
		Plan:          faults.WirePlan{Seed: 0x16E57, Rate: 0.25},
		CheckpointDir: t.TempDir(),
	}
}

// TestIngestChaos is the acceptance drill for the network front door:
// real loopback clients, seeded wire damage, a crashing client, a quota
// storm, and a mid-run drain/restart. scripts/check.sh runs it in
// -short mode as the smoke gate.
func TestIngestChaos(t *testing.T) {
	ctx := testContext(t)
	cfg := ingestChaosConfig(t)
	if testing.Short() {
		cfg.Streams = 2
		cfg.Intervals = 20
	}
	res, err := ctx.IngestChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GapFree {
		t.Error("verdict timelines have gaps under wire faults")
	}
	if !res.BitIdentical {
		t.Error("echoed verdicts diverge from the reference chain")
	}
	if !res.ResumeOK {
		t.Error("a reconnect was not resumed at the server's position")
	}
	if !res.DrainRefused {
		t.Error("admission during drain was not refused with DRAIN")
	}
	if !res.AccountingExact {
		t.Error("sample/verdict accounting leaked")
	}
	if res.QuotaRejections == 0 {
		t.Error("quota storm produced no RETRY rejections")
	}
	if res.WireErrors == 0 || res.Reattaches == 0 {
		t.Errorf("wire errors=%d reattaches=%d, want both > 0", res.WireErrors, res.Reattaches)
	}
	if !res.Deterministic {
		t.Error("identical seeds did not reproduce identical echoed verdicts")
	}
	if !res.Passed() {
		t.Errorf("ingest chaos drill failed: %+v", res)
	}

	out := RenderIngestChaos(res)
	for _, want := range []string{"Ingest chaos drill", "[PASS]", "gap-free", "DRAIN"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderIngestChaos output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "[FAIL]") {
		t.Errorf("RenderIngestChaos reports failures:\n%s", out)
	}
}

func TestIngestChaosRejectsInertPlans(t *testing.T) {
	ctx := testContext(t)
	cfg := ingestChaosConfig(t)
	cfg.Plan.Rate = 0
	if _, err := ctx.IngestChaos(cfg); err == nil {
		t.Error("inactive wire plan accepted")
	}
	cfg = ingestChaosConfig(t)
	cfg.Plan.Kinds = []faults.WireKind{faults.DelayFrame}
	if _, err := ctx.IngestChaos(cfg); err == nil {
		t.Error("truncate-free wire plan accepted")
	}
	cfg = ingestChaosConfig(t)
	cfg.CheckpointDir = ""
	if _, err := ctx.IngestChaos(cfg); err == nil {
		t.Error("missing checkpoint dir accepted")
	}
	cfg = ingestChaosConfig(t)
	cfg.Intervals = 7
	if _, err := ctx.IngestChaos(cfg); err == nil {
		t.Error("odd interval count accepted")
	}
}

// TestIngestBenchSmoke runs a tiny overload point end to end: the sweep
// must keep exact accounting and actually shed when offered load is 4x
// the service rate with a small window.
func TestIngestBenchSmoke(t *testing.T) {
	ctx := testContext(t)
	rep, err := ctx.IngestBench(IngestBenchConfig{
		Streams:     2,
		Samples:     20,
		Window:      4,
		Multipliers: []float64{0.5, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points: %d", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Accepted != int64(rep.Streams*rep.Samples) {
			t.Errorf("x%.1f: accepted %d, want %d", p.Multiplier, p.Accepted, rep.Streams*rep.Samples)
		}
		if p.Accepted != p.Attributed+p.Shed {
			t.Errorf("x%.1f: accounting leak: %d != %d + %d", p.Multiplier, p.Accepted, p.Attributed, p.Shed)
		}
	}
	if rep.Points[0].Shed != 0 {
		t.Errorf("underload point shed %d samples", rep.Points[0].Shed)
	}
	out := RenderIngest(rep)
	if !strings.Contains(out, "Ingest overload sweep") {
		t.Errorf("RenderIngest output:\n%s", out)
	}
}

// TestIngestChaosBatched reruns the chaos drill with the clean and
// crash clients on the batched wire path (SAMPLE_BATCH framing): every
// service contract — gap-free timelines, bit-identical verdicts, exact
// accounting, deterministic replay — must hold unchanged, and batch
// corruption from the wire plan must be caught by the CRC and recovered
// exactly like single-frame loss.
func TestIngestChaosBatched(t *testing.T) {
	ctx := testContext(t)
	cfg := ingestChaosConfig(t)
	cfg.Batch = true
	if testing.Short() {
		cfg.Streams = 2
		cfg.Intervals = 20
	}
	res, err := ctx.IngestChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Errorf("batched ingest chaos drill failed: %+v", res)
	}
}

// TestIngestCapacitySmoke runs a short unpaced blast in both wire
// formats: the structural claims (accounting exact, batching actually
// negotiated and used, fewer client writes than samples) must hold even
// at smoke scale. The speedup magnitude is asserted by the committed
// BENCH_INGEST.json, not here — a loaded CI box is no place for a
// throughput floor.
func TestIngestCapacitySmoke(t *testing.T) {
	ctx := testContext(t)
	rep, err := ctx.IngestBench(IngestBenchConfig{
		Streams:        2,
		Samples:        10,
		Window:         8,
		Multipliers:    []float64{1},
		Capacity:       true,
		CapacityMillis: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Capacity
	if c == nil {
		t.Fatal("capacity mode produced no capacity section")
	}
	if c.Unbatched.SampleBatches != 0 || c.Unbatched.VerdictBatches != 0 {
		t.Errorf("unbatched point saw batch frames: %+v", c.Unbatched)
	}
	if c.Batched.SampleBatches == 0 {
		t.Error("batched point decoded no SAMPLE_BATCH frames")
	}
	if c.Batched.ClientWrites >= c.Batched.Sent {
		t.Errorf("batched blast: %d writes for %d samples — no syscall amortization",
			c.Batched.ClientWrites, c.Batched.Sent)
	}
	for _, p := range []CapacityPoint{c.Unbatched, c.Batched} {
		if p.Accepted == 0 || p.SamplesPerSec <= 0 {
			t.Errorf("capacity point admitted nothing: %+v", p)
		}
	}
	out := RenderIngest(rep)
	if !strings.Contains(out, "Wire capacity") || !strings.Contains(out, "speedup") {
		t.Errorf("RenderIngest missing capacity section:\n%s", out)
	}
}
