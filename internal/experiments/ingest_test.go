package experiments

import (
	"strings"
	"testing"

	"repro/internal/faults"
)

func ingestChaosConfig(t *testing.T) IngestChaosConfig {
	t.Helper()
	return IngestChaosConfig{
		Streams:       3,
		Intervals:     30,
		Plan:          faults.WirePlan{Seed: 0x16E57, Rate: 0.25},
		CheckpointDir: t.TempDir(),
	}
}

// TestIngestChaos is the acceptance drill for the network front door:
// real loopback clients, seeded wire damage, a crashing client, a quota
// storm, and a mid-run drain/restart. scripts/check.sh runs it in
// -short mode as the smoke gate.
func TestIngestChaos(t *testing.T) {
	ctx := testContext(t)
	cfg := ingestChaosConfig(t)
	if testing.Short() {
		cfg.Streams = 2
		cfg.Intervals = 20
	}
	res, err := ctx.IngestChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GapFree {
		t.Error("verdict timelines have gaps under wire faults")
	}
	if !res.BitIdentical {
		t.Error("echoed verdicts diverge from the reference chain")
	}
	if !res.ResumeOK {
		t.Error("a reconnect was not resumed at the server's position")
	}
	if !res.DrainRefused {
		t.Error("admission during drain was not refused with DRAIN")
	}
	if !res.AccountingExact {
		t.Error("sample/verdict accounting leaked")
	}
	if res.QuotaRejections == 0 {
		t.Error("quota storm produced no RETRY rejections")
	}
	if res.WireErrors == 0 || res.Reattaches == 0 {
		t.Errorf("wire errors=%d reattaches=%d, want both > 0", res.WireErrors, res.Reattaches)
	}
	if !res.Deterministic {
		t.Error("identical seeds did not reproduce identical echoed verdicts")
	}
	if !res.Passed() {
		t.Errorf("ingest chaos drill failed: %+v", res)
	}

	out := RenderIngestChaos(res)
	for _, want := range []string{"Ingest chaos drill", "[PASS]", "gap-free", "DRAIN"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderIngestChaos output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "[FAIL]") {
		t.Errorf("RenderIngestChaos reports failures:\n%s", out)
	}
}

func TestIngestChaosRejectsInertPlans(t *testing.T) {
	ctx := testContext(t)
	cfg := ingestChaosConfig(t)
	cfg.Plan.Rate = 0
	if _, err := ctx.IngestChaos(cfg); err == nil {
		t.Error("inactive wire plan accepted")
	}
	cfg = ingestChaosConfig(t)
	cfg.Plan.Kinds = []faults.WireKind{faults.DelayFrame}
	if _, err := ctx.IngestChaos(cfg); err == nil {
		t.Error("truncate-free wire plan accepted")
	}
	cfg = ingestChaosConfig(t)
	cfg.CheckpointDir = ""
	if _, err := ctx.IngestChaos(cfg); err == nil {
		t.Error("missing checkpoint dir accepted")
	}
	cfg = ingestChaosConfig(t)
	cfg.Intervals = 7
	if _, err := ctx.IngestChaos(cfg); err == nil {
		t.Error("odd interval count accepted")
	}
}

// TestIngestBenchSmoke runs a tiny overload point end to end: the sweep
// must keep exact accounting and actually shed when offered load is 4x
// the service rate with a small window.
func TestIngestBenchSmoke(t *testing.T) {
	ctx := testContext(t)
	rep, err := ctx.IngestBench(IngestBenchConfig{
		Streams:     2,
		Samples:     20,
		Window:      4,
		Multipliers: []float64{0.5, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points: %d", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Accepted != int64(rep.Streams*rep.Samples) {
			t.Errorf("x%.1f: accepted %d, want %d", p.Multiplier, p.Accepted, rep.Streams*rep.Samples)
		}
		if p.Accepted != p.Attributed+p.Shed {
			t.Errorf("x%.1f: accounting leak: %d != %d + %d", p.Multiplier, p.Accepted, p.Attributed, p.Shed)
		}
	}
	if rep.Points[0].Shed != 0 {
		t.Errorf("underload point shed %d samples", rep.Points[0].Shed)
	}
	out := RenderIngest(rep)
	if !strings.Contains(out, "Ingest overload sweep") {
		t.Errorf("RenderIngest output:\n%s", out)
	}
}
