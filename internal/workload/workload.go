// Package workload provides the application behaviour library that
// stands in for the paper's corpus of more than 100 benign and malware
// programs (MiBench, Linux system programs, browsers, editors, word
// processors on the benign side; VirusTotal Linux ELF, python, perl and
// bash malware on the other).
//
// Each App owns a family-specific base behaviour (instruction mix, code
// and data footprints, branch predictability, NUMA spread) plus a phase
// schedule and per-interval jitter. A Run binds an App to one execution:
// the paper's methodology executes every application eleven times (11
// batches x 4 counters) and destroys the container in between, so each
// Run gets its own derived seed, giving realistic run-to-run variation
// while the App-level phase structure stays aligned across runs.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/micro"
)

// Class labels an application as benign or malware. It is the target
// variable of the detectors.
type Class int

const (
	// Benign marks ordinary applications.
	Benign Class = iota
	// Malware marks malicious applications.
	Malware
)

// String returns "benign" or "malware".
func (c Class) String() string {
	if c == Malware {
		return "malware"
	}
	return "benign"
}

// Range is a closed interval parameters are drawn from.
type Range struct{ Lo, Hi float64 }

// draw picks a uniform value in the range.
func (r Range) draw(rng *micro.RNG) float64 {
	if r.Hi <= r.Lo {
		return r.Lo
	}
	return r.Lo + (r.Hi-r.Lo)*rng.Float64()
}

// Family describes a behavioural family of applications; individual
// apps draw their base parameters from the family's ranges.
type Family struct {
	Name  string
	Class Class
	About string // one-line description of the behaviour modelled

	Load, Store, Branch   Range // instruction mix fractions
	CodeKB, HotCodeKB     Range // code footprints (KiB)
	HotCodeFrac           Range
	DataKB, HotDataKB     Range // data footprints (KiB)
	HotDataFrac, Stride   Range
	TakenFrac, BranchBias Range
	RemoteFrac            Range
	BaseIPC, UopsPerInstr Range
	PhasePeriod           Range // intervals between phase switches
	PhaseDepth            Range // relative parameter swing between phases
	JitterFrac            Range // per-interval multiplicative noise scale
}

// App is one concrete application: a named draw from a family.
type App struct {
	Name   string
	Family string
	Class  Class
	Seed   uint64

	Base        micro.StreamParams
	PhasePeriod int     // intervals per phase
	PhaseDepth  float64 // fraction by which phase B perturbs phase A
	JitterFrac  float64 // sigma of per-interval lognormal-ish jitter
}

// Instantiate draws one App from the family. The app index feeds the
// seed so a family yields distinct but reproducible members.
func (f *Family) Instantiate(index int, suiteSeed uint64) App {
	rng := micro.NewRNG(suiteSeed ^ hash64(f.Name) ^ (uint64(index)+1)*0x9e3779b97f4a7c15)
	base := micro.StreamParams{
		LoadFrac:     f.Load.draw(rng),
		StoreFrac:    f.Store.draw(rng),
		BranchFrac:   f.Branch.draw(rng),
		CodeBytes:    int(f.CodeKB.draw(rng) * 1024),
		HotCodeBytes: int(f.HotCodeKB.draw(rng) * 1024),
		HotCodeFrac:  f.HotCodeFrac.draw(rng),
		DataBytes:    int(f.DataKB.draw(rng) * 1024),
		HotDataBytes: int(f.HotDataKB.draw(rng) * 1024),
		HotDataFrac:  f.HotDataFrac.draw(rng),
		StrideFrac:   f.Stride.draw(rng),
		TakenFrac:    f.TakenFrac.draw(rng),
		BranchBias:   f.BranchBias.draw(rng),
		RemoteFrac:   f.RemoteFrac.draw(rng),
		BaseIPC:      f.BaseIPC.draw(rng),
		UopsPerInstr: f.UopsPerInstr.draw(rng),
	}
	if base.HotCodeBytes > base.CodeBytes {
		base.HotCodeBytes = base.CodeBytes
	}
	if base.HotDataBytes > base.DataBytes {
		base.HotDataBytes = base.DataBytes
	}
	base.Validate()
	return App{
		Name:        fmt.Sprintf("%s-%02d", f.Name, index),
		Family:      f.Name,
		Class:       f.Class,
		Seed:        rng.Uint64(),
		Base:        base,
		PhasePeriod: int(f.PhasePeriod.draw(rng)),
		PhaseDepth:  f.PhaseDepth.draw(rng),
		JitterFrac:  f.JitterFrac.draw(rng),
	}
}

// Run binds an App to one execution. runIndex distinguishes the eleven
// collection runs of the same application; the derived seed gives each
// run independent jitter while the phase schedule (a function of the
// App seed and interval index only) stays aligned across runs.
type Run struct {
	app     *App
	runSeed uint64
	jitter  *micro.RNG
}

// NewRun creates the runIndex-th execution of the application.
func (a *App) NewRun(runIndex int) *Run {
	seed := a.Seed ^ (uint64(runIndex)+0x51)*0xd1b54a32d192ed03
	return &Run{
		app:     a,
		runSeed: seed,
		jitter:  micro.NewRNG(seed ^ 0xabcdef),
	}
}

// MachineSeed returns the seed the simulated machine should use for
// this run, so different runs traverse different micro-architectural
// paths just as real re-executions do.
func (r *Run) MachineSeed() uint64 { return r.runSeed }

// App returns the application this run executes.
func (r *Run) App() *App { return r.app }

// IntervalParams produces the stream parameters for sampling interval i
// of this run: the app base, perturbed by the current phase, with
// per-interval jitter applied.
func (r *Run) IntervalParams(i int) micro.StreamParams {
	p := r.app.Base

	// Phase schedule: alternating A/B phases keyed off the app seed so
	// all runs of the same app see the same schedule.
	if r.app.PhasePeriod > 0 && r.app.PhaseDepth > 0 {
		phase := (i / r.app.PhasePeriod) % 2
		if phase == 1 {
			d := r.app.PhaseDepth
			p.LoadFrac = clamp01(p.LoadFrac * (1 + d))
			p.StoreFrac = clamp01(p.StoreFrac * (1 - d/2))
			p.HotDataFrac = clamp01(p.HotDataFrac * (1 - d/2))
			p.StrideFrac = clamp01(p.StrideFrac * (1 + d/2))
		}
	}

	// Per-interval jitter: multiplicative wobble on the behavioural
	// fractions, modelling OS noise, input dependence and measurement
	// skid.
	j := r.app.JitterFrac
	if j > 0 {
		p.LoadFrac = clamp01(p.LoadFrac * wobble(r.jitter, j))
		p.StoreFrac = clamp01(p.StoreFrac * wobble(r.jitter, j))
		p.BranchFrac = clamp01(p.BranchFrac * wobble(r.jitter, j))
		p.HotDataFrac = clamp01(p.HotDataFrac * wobble(r.jitter, j))
		p.StrideFrac = clamp01(p.StrideFrac * wobble(r.jitter, j))
		p.BranchBias = clampRange(p.BranchBias*wobble(r.jitter, j/2), 0.5, 1.0)
		p.RemoteFrac = clamp01(p.RemoteFrac * wobble(r.jitter, j))
	}

	// Renormalise the mix if jitter pushed the fractions above 1.
	if s := p.LoadFrac + p.StoreFrac + p.BranchFrac; s > 0.95 {
		p.LoadFrac *= 0.95 / s
		p.StoreFrac *= 0.95 / s
		p.BranchFrac *= 0.95 / s
	}
	return p
}

func wobble(rng *micro.RNG, sigma float64) float64 {
	w := 1 + sigma*rng.Norm()
	if w < 0.2 {
		w = 0.2
	}
	return w
}

func clamp01(v float64) float64 { return clampRange(v, 0, 1) }

func clampRange(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func hash64(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// SuiteConfig sizes the generated corpus.
type SuiteConfig struct {
	Seed          uint64
	AppsPerFamily int // members drawn from each family
}

// DefaultSuite mirrors the paper's ">100 applications" corpus: 7 benign
// families and 5 malware families, 10 members each (120 apps).
func DefaultSuite() SuiteConfig { return SuiteConfig{Seed: 0xDAC2018, AppsPerFamily: 10} }

// SmallSuite is a reduced corpus for unit tests.
func SmallSuite() SuiteConfig { return SuiteConfig{Seed: 0xDAC2018, AppsPerFamily: 3} }

// Suite instantiates the full corpus: every family in Families(), with
// cfg.AppsPerFamily members each, sorted by name for determinism.
func Suite(cfg SuiteConfig) []App {
	if cfg.AppsPerFamily <= 0 {
		cfg.AppsPerFamily = 10
	}
	var apps []App
	for _, f := range Families() {
		for i := 0; i < cfg.AppsPerFamily; i++ {
			apps = append(apps, f.Instantiate(i, cfg.Seed))
		}
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i].Name < apps[j].Name })
	return apps
}

// Split partitions apps by class.
func Split(apps []App) (benign, malware []App) {
	for _, a := range apps {
		if a.Class == Malware {
			malware = append(malware, a)
		} else {
			benign = append(benign, a)
		}
	}
	return benign, malware
}
