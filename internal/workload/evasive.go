package workload

// Evasion modelling: a mimicry attacker reshapes a malware payload's
// micro-architectural profile toward benign behaviour (padding with
// benign-like computation, throttling probe loops) at the cost of
// efficiency. Blend interpolates a malware family's behavioural ranges
// toward a benign cover family; EvasiveSuite builds a corpus of such
// families at a given evasion strength. These families are NOT part of
// the default training corpus — they exist to measure how detection
// degrades under evasion, the robustness question the paper's
// conclusion raises for future architectures.

// lerp interpolates a range field: alpha=0 keeps m, alpha=1 becomes b
// (endpoints are exact, not subject to rounding).
func lerp(m, b Range, alpha float64) Range {
	if alpha <= 0 {
		return m
	}
	if alpha >= 1 {
		return b
	}
	return Range{
		Lo: m.Lo + (b.Lo-m.Lo)*alpha,
		Hi: m.Hi + (b.Hi-m.Hi)*alpha,
	}
}

// Blend returns a new malware family whose behaviour ranges are moved
// alpha of the way toward the cover family's (0 = unchanged malware,
// 1 = indistinguishable from the cover). The class stays Malware — the
// payload still acts; it just hides.
func Blend(mal, cover Family, alpha float64) Family {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	out := mal
	out.Name = mal.Name + "-evasive"
	out.About = mal.About + " (mimicking " + cover.Name + ")"
	out.Load = lerp(mal.Load, cover.Load, alpha)
	out.Store = lerp(mal.Store, cover.Store, alpha)
	out.Branch = lerp(mal.Branch, cover.Branch, alpha)
	out.CodeKB = lerp(mal.CodeKB, cover.CodeKB, alpha)
	out.HotCodeKB = lerp(mal.HotCodeKB, cover.HotCodeKB, alpha)
	out.HotCodeFrac = lerp(mal.HotCodeFrac, cover.HotCodeFrac, alpha)
	out.DataKB = lerp(mal.DataKB, cover.DataKB, alpha)
	out.HotDataKB = lerp(mal.HotDataKB, cover.HotDataKB, alpha)
	out.HotDataFrac = lerp(mal.HotDataFrac, cover.HotDataFrac, alpha)
	out.Stride = lerp(mal.Stride, cover.Stride, alpha)
	out.TakenFrac = lerp(mal.TakenFrac, cover.TakenFrac, alpha)
	out.BranchBias = lerp(mal.BranchBias, cover.BranchBias, alpha)
	out.RemoteFrac = lerp(mal.RemoteFrac, cover.RemoteFrac, alpha)
	out.BaseIPC = lerp(mal.BaseIPC, cover.BaseIPC, alpha)
	out.UopsPerInstr = lerp(mal.UopsPerInstr, cover.UopsPerInstr, alpha)
	return out
}

// EvasiveSuite instantiates every malware family blended alpha of the
// way toward a representative benign cover (sysutil — the closest
// benign behaviour), membersPerFamily members each.
func EvasiveSuite(alpha float64, membersPerFamily int, seed uint64) []App {
	cover, _ := FamilyByName("sysutil")
	if membersPerFamily <= 0 {
		membersPerFamily = 3
	}
	var apps []App
	for _, f := range Families() {
		if f.Class != Malware {
			continue
		}
		ev := Blend(f, cover, alpha)
		for i := 0; i < membersPerFamily; i++ {
			apps = append(apps, ev.Instantiate(i, seed))
		}
	}
	return apps
}
