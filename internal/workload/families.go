package workload

// Families returns the behavioural family library. Benign families
// mirror the paper's corpus (MiBench kernels and streaming codecs,
// Linux system utilities, a browser, a text editor, a word processor,
// a compressor); malware families mirror the four malware types the
// paper collects from VirusTotal (Linux ELFs, python, perl and bash
// scripts), modelled by their dominant micro-architectural signatures:
//
//   - elf-spinprobe: resident ELF implants that poll and probe in tight,
//     branchy loops (C&C beaconing, keylogging hooks).
//   - elf-scanner: ELF payloads sweeping large spans of memory/files
//     (ransomware enumeration, credential scraping) — LLC/remote-node
//     pressure with streaming access.
//   - script-python / script-perl: interpreter dispatch loops — large
//     cold code footprints, indirect low-bias branches, i-side TLB and
//     cache pressure.
//   - script-bash: process spawners — cold-start behaviour on both the
//     instruction and data sides.
//
// The class-conditional ranges overlap deliberately: the paper's
// detectors work on noisy 10 ms interval vectors, and the entire result
// (weak few-HPC general classifiers, ensemble recovery) depends on the
// classes not being trivially separable by any single feature.
func Families() []Family {
	return []Family{
		// ---- Benign ----
		{
			Name: "mibench-kernel", Class: Benign,
			About: "MiBench-style compute kernels (qsort, susan, dijkstra, patricia)",
			Load:  Range{0.20, 0.28}, Store: Range{0.07, 0.12}, Branch: Range{0.08, 0.14},
			CodeKB: Range{8, 32}, HotCodeKB: Range{1, 4}, HotCodeFrac: Range{0.88, 0.97},
			DataKB: Range{64, 512}, HotDataKB: Range{8, 32}, HotDataFrac: Range{0.85, 0.95},
			Stride: Range{0.35, 0.60}, TakenFrac: Range{0.55, 0.65}, BranchBias: Range{0.90, 0.97},
			RemoteFrac: Range{0, 0.05}, BaseIPC: Range{1.9, 2.5}, UopsPerInstr: Range{1.1, 1.3},
			PhasePeriod: Range{6, 12}, PhaseDepth: Range{0.08, 0.2}, JitterFrac: Range{0.05, 0.10},
		},
		{
			Name: "mibench-stream", Class: Benign,
			About: "MiBench streaming codecs (adpcm, crc32, fft, gsm)",
			Load:  Range{0.24, 0.32}, Store: Range{0.10, 0.15}, Branch: Range{0.06, 0.10},
			CodeKB: Range{8, 24}, HotCodeKB: Range{1, 3}, HotCodeFrac: Range{0.9, 0.98},
			DataKB: Range{1024, 4096}, HotDataKB: Range{64, 256}, HotDataFrac: Range{0.5, 0.7},
			Stride: Range{0.60, 0.85}, TakenFrac: Range{0.5, 0.6}, BranchBias: Range{0.92, 0.98},
			RemoteFrac: Range{0, 0.08}, BaseIPC: Range{1.8, 2.4}, UopsPerInstr: Range{1.1, 1.3},
			PhasePeriod: Range{8, 14}, PhaseDepth: Range{0.05, 0.15}, JitterFrac: Range{0.04, 0.08},
		},
		{
			Name: "sysutil", Class: Benign,
			About: "Linux system programs (ls, ps, grep, find)",
			Load:  Range{0.20, 0.26}, Store: Range{0.09, 0.14}, Branch: Range{0.11, 0.16},
			CodeKB: Range{32, 128}, HotCodeKB: Range{4, 16}, HotCodeFrac: Range{0.7, 0.85},
			DataKB: Range{128, 512}, HotDataKB: Range{16, 64}, HotDataFrac: Range{0.7, 0.85},
			Stride: Range{0.30, 0.55}, TakenFrac: Range{0.55, 0.68}, BranchBias: Range{0.89, 0.96},
			RemoteFrac: Range{0, 0.08}, BaseIPC: Range{1.7, 2.2}, UopsPerInstr: Range{1.15, 1.35},
			PhasePeriod: Range{4, 9}, PhaseDepth: Range{0.1, 0.25}, JitterFrac: Range{0.06, 0.11},
		},
		{
			Name: "browser", Class: Benign,
			About: "web browser rendering/scripting mix",
			Load:  Range{0.22, 0.28}, Store: Range{0.11, 0.16}, Branch: Range{0.11, 0.15},
			CodeKB: Range{256, 1024}, HotCodeKB: Range{16, 64}, HotCodeFrac: Range{0.6, 0.8},
			DataKB: Range{2048, 8192}, HotDataKB: Range{128, 512}, HotDataFrac: Range{0.6, 0.8},
			Stride: Range{0.30, 0.50}, TakenFrac: Range{0.55, 0.65}, BranchBias: Range{0.88, 0.95},
			RemoteFrac: Range{0.05, 0.15}, BaseIPC: Range{1.6, 2.1}, UopsPerInstr: Range{1.2, 1.4},
			PhasePeriod: Range{3, 8}, PhaseDepth: Range{0.15, 0.3}, JitterFrac: Range{0.07, 0.12},
		},
		{
			Name: "editor", Class: Benign,
			About: "text editor (vim/emacs-like) interactive behaviour",
			Load:  Range{0.19, 0.25}, Store: Range{0.09, 0.13}, Branch: Range{0.10, 0.14},
			CodeKB: Range{128, 512}, HotCodeKB: Range{8, 32}, HotCodeFrac: Range{0.72, 0.88},
			DataKB: Range{512, 2048}, HotDataKB: Range{64, 256}, HotDataFrac: Range{0.75, 0.9},
			Stride: Range{0.30, 0.55}, TakenFrac: Range{0.55, 0.65}, BranchBias: Range{0.89, 0.96},
			RemoteFrac: Range{0, 0.08}, BaseIPC: Range{1.7, 2.2}, UopsPerInstr: Range{1.1, 1.3},
			PhasePeriod: Range{5, 10}, PhaseDepth: Range{0.08, 0.2}, JitterFrac: Range{0.06, 0.11},
		},
		{
			Name: "wordproc", Class: Benign,
			About: "word processor document pipeline",
			Load:  Range{0.21, 0.27}, Store: Range{0.10, 0.15}, Branch: Range{0.09, 0.13},
			CodeKB: Range{256, 768}, HotCodeKB: Range{16, 48}, HotCodeFrac: Range{0.65, 0.82},
			DataKB: Range{1024, 4096}, HotDataKB: Range{96, 384}, HotDataFrac: Range{0.68, 0.85},
			Stride: Range{0.35, 0.60}, TakenFrac: Range{0.52, 0.64}, BranchBias: Range{0.88, 0.95},
			RemoteFrac: Range{0.02, 0.1}, BaseIPC: Range{1.6, 2.1}, UopsPerInstr: Range{1.15, 1.35},
			PhasePeriod: Range{5, 11}, PhaseDepth: Range{0.1, 0.22}, JitterFrac: Range{0.06, 0.11},
		},
		{
			Name: "compress", Class: Benign,
			About: "compression/decompression pipeline (gzip-like)",
			Load:  Range{0.24, 0.30}, Store: Range{0.12, 0.18}, Branch: Range{0.07, 0.11},
			CodeKB: Range{16, 48}, HotCodeKB: Range{2, 6}, HotCodeFrac: Range{0.88, 0.97},
			DataKB: Range{1024, 4096}, HotDataKB: Range{32, 128}, HotDataFrac: Range{0.55, 0.75},
			Stride: Range{0.50, 0.75}, TakenFrac: Range{0.5, 0.62}, BranchBias: Range{0.90, 0.97},
			RemoteFrac: Range{0, 0.06}, BaseIPC: Range{1.8, 2.4}, UopsPerInstr: Range{1.1, 1.3},
			PhasePeriod: Range{7, 13}, PhaseDepth: Range{0.06, 0.16}, JitterFrac: Range{0.04, 0.08},
		},

		// ---- Malware ----
		{
			Name: "elf-spinprobe", Class: Malware,
			About: "resident ELF implant: tight polling/probing loops",
			Load:  Range{0.17, 0.23}, Store: Range{0.05, 0.09}, Branch: Range{0.26, 0.34},
			CodeKB: Range{4, 16}, HotCodeKB: Range{0.5, 2}, HotCodeFrac: Range{0.9, 0.97},
			DataKB: Range{32, 128}, HotDataKB: Range{4, 16}, HotDataFrac: Range{0.82, 0.93},
			Stride: Range{0.25, 0.45}, TakenFrac: Range{0.6, 0.75}, BranchBias: Range{0.80, 0.90},
			RemoteFrac: Range{0, 0.06}, BaseIPC: Range{1.8, 2.4}, UopsPerInstr: Range{1.1, 1.3},
			PhasePeriod: Range{4, 9}, PhaseDepth: Range{0.1, 0.25}, JitterFrac: Range{0.06, 0.12},
		},
		{
			Name: "elf-scanner", Class: Malware,
			About: "ELF payload sweeping memory/files (ransomware enumeration)",
			Load:  Range{0.27, 0.34}, Store: Range{0.13, 0.19}, Branch: Range{0.21, 0.27},
			CodeKB: Range{16, 64}, HotCodeKB: Range{2, 8}, HotCodeFrac: Range{0.8, 0.92},
			DataKB: Range{2048, 8192}, HotDataKB: Range{2048, 8192}, HotDataFrac: Range{0.3, 0.5},
			Stride: Range{0.55, 0.80}, TakenFrac: Range{0.55, 0.68}, BranchBias: Range{0.84, 0.92},
			RemoteFrac: Range{0.1, 0.25}, BaseIPC: Range{1.5, 2.0}, UopsPerInstr: Range{1.15, 1.35},
			PhasePeriod: Range{5, 10}, PhaseDepth: Range{0.12, 0.28}, JitterFrac: Range{0.07, 0.13},
		},
		{
			Name: "script-python", Class: Malware,
			About: "python script malware: interpreter dispatch, cold i-side",
			Load:  Range{0.23, 0.29}, Store: Range{0.10, 0.14}, Branch: Range{0.24, 0.31},
			CodeKB: Range{256, 1024}, HotCodeKB: Range{256, 1024}, HotCodeFrac: Range{0.6, 0.8},
			DataKB: Range{1024, 4096}, HotDataKB: Range{128, 384}, HotDataFrac: Range{0.6, 0.75},
			Stride: Range{0.25, 0.45}, TakenFrac: Range{0.55, 0.7}, BranchBias: Range{0.80, 0.89},
			RemoteFrac: Range{0.03, 0.12}, BaseIPC: Range{1.5, 2.0}, UopsPerInstr: Range{1.25, 1.45},
			PhasePeriod: Range{4, 9}, PhaseDepth: Range{0.12, 0.26}, JitterFrac: Range{0.07, 0.12},
		},
		{
			Name: "script-perl", Class: Malware,
			About: "perl script malware: regex-heavy interpreter loops",
			Load:  Range{0.22, 0.28}, Store: Range{0.09, 0.13}, Branch: Range{0.23, 0.29},
			CodeKB: Range{256, 1024}, HotCodeKB: Range{32, 96}, HotCodeFrac: Range{0.62, 0.8},
			DataKB: Range{512, 2048}, HotDataKB: Range{64, 256}, HotDataFrac: Range{0.62, 0.78},
			Stride: Range{0.25, 0.45}, TakenFrac: Range{0.56, 0.7}, BranchBias: Range{0.81, 0.90},
			RemoteFrac: Range{0.02, 0.1}, BaseIPC: Range{1.5, 2.0}, UopsPerInstr: Range{1.2, 1.4},
			PhasePeriod: Range{5, 10}, PhaseDepth: Range{0.1, 0.24}, JitterFrac: Range{0.06, 0.12},
		},
		{
			Name: "script-bash", Class: Malware,
			About: "bash script malware: process spawning, cold-start churn",
			Load:  Range{0.20, 0.26}, Store: Range{0.11, 0.16}, Branch: Range{0.22, 0.28},
			CodeKB: Range{64, 256}, HotCodeKB: Range{8, 32}, HotCodeFrac: Range{0.5, 0.68},
			DataKB: Range{256, 1024}, HotDataKB: Range{32, 128}, HotDataFrac: Range{0.4, 0.6},
			Stride: Range{0.25, 0.45}, TakenFrac: Range{0.55, 0.7}, BranchBias: Range{0.82, 0.90},
			RemoteFrac: Range{0.02, 0.12}, BaseIPC: Range{1.5, 2.0}, UopsPerInstr: Range{1.2, 1.4},
			PhasePeriod: Range{3, 7}, PhaseDepth: Range{0.15, 0.3}, JitterFrac: Range{0.07, 0.13},
		},
	}
}

// FamilyByName returns the named family.
func FamilyByName(name string) (Family, bool) {
	for _, f := range Families() {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}
