package workload

import (
	"strings"
	"testing"

	"repro/internal/micro"
)

func TestSuiteComposition(t *testing.T) {
	apps := Suite(DefaultSuite())
	if len(apps) < 100 {
		t.Fatalf("suite has %d apps, paper uses >100", len(apps))
	}
	benign, malware := Split(apps)
	if len(benign) == 0 || len(malware) == 0 {
		t.Fatal("suite must contain both classes")
	}
	ratio := float64(len(benign)) / float64(len(malware))
	if ratio < 1.0 || ratio > 2.0 {
		t.Errorf("benign/malware ratio = %.2f, want between 1 and 2", ratio)
	}
	// Names must be unique.
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a.Name] {
			t.Fatalf("duplicate app name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestSuiteDeterminism(t *testing.T) {
	a := Suite(DefaultSuite())
	b := Suite(DefaultSuite())
	if len(a) != len(b) {
		t.Fatal("suite size differs between calls")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Seed != b[i].Seed || a[i].Base != b[i].Base {
			t.Fatalf("app %d differs between identical suite builds", i)
		}
	}
	c := Suite(SuiteConfig{Seed: 99, AppsPerFamily: 10})
	diff := false
	for i := range a {
		if a[i].Base != c[i].Base {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different suite seeds should produce different parameter draws")
	}
}

func TestInstantiateValidParams(t *testing.T) {
	for _, f := range Families() {
		for i := 0; i < 20; i++ {
			app := f.Instantiate(i, 0xDAC2018)
			app.Base.Validate() // panics on invalid
			if app.Class != f.Class {
				t.Errorf("%s: class mismatch", app.Name)
			}
			if !strings.HasPrefix(app.Name, f.Name) {
				t.Errorf("app name %q missing family prefix %q", app.Name, f.Name)
			}
			if app.PhasePeriod <= 0 {
				t.Errorf("%s: non-positive phase period", app.Name)
			}
		}
	}
}

func TestFamilyMembersDiffer(t *testing.T) {
	f := Families()[0]
	a := f.Instantiate(0, 1)
	b := f.Instantiate(1, 1)
	if a.Base == b.Base {
		t.Error("two members of a family should draw different base parameters")
	}
}

func TestRunIntervalParamsValid(t *testing.T) {
	apps := Suite(SmallSuite())
	for _, app := range apps {
		run := app.NewRun(0)
		for i := 0; i < 30; i++ {
			p := run.IntervalParams(i)
			p.Validate() // must never emit invalid params, even with jitter
		}
	}
}

func TestRunToRunVariation(t *testing.T) {
	app := Families()[0].Instantiate(0, 7)
	r0 := app.NewRun(0)
	r1 := app.NewRun(1)
	if r0.MachineSeed() == r1.MachineSeed() {
		t.Error("distinct runs must have distinct machine seeds")
	}
	same := true
	for i := 0; i < 5; i++ {
		if r0.IntervalParams(i) != r1.IntervalParams(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("distinct runs should jitter differently")
	}
	// But re-creating the same run index reproduces exactly.
	ra := app.NewRun(3)
	rb := app.NewRun(3)
	for i := 0; i < 5; i++ {
		if ra.IntervalParams(i) != rb.IntervalParams(i) {
			t.Fatal("same run index must reproduce identical parameters")
		}
	}
}

func TestPhaseScheduleAlternates(t *testing.T) {
	app := App{
		Name: "t", Class: Benign, Seed: 1,
		Base: micro.StreamParams{
			LoadFrac: 0.2, StoreFrac: 0.1, BranchFrac: 0.1,
			CodeBytes: 4096, HotCodeBytes: 1024, HotCodeFrac: 0.9,
			DataBytes: 65536, HotDataBytes: 8192, HotDataFrac: 0.8,
			StrideFrac: 0.5, TakenFrac: 0.6, BranchBias: 0.95,
			BaseIPC: 2, UopsPerInstr: 1.2,
		},
		PhasePeriod: 5, PhaseDepth: 0.3, JitterFrac: 0, // no jitter: pure phases
	}
	r := app.NewRun(0)
	p0 := r.IntervalParams(0) // phase A
	p5 := r.IntervalParams(5) // phase B
	if p0.LoadFrac == p5.LoadFrac {
		t.Error("phase B should perturb the load fraction")
	}
	p10 := r.IntervalParams(10) // back to phase A
	if p10.LoadFrac != p0.LoadFrac {
		t.Error("phase schedule should return to phase A")
	}
}

func TestClassBranchSeparation(t *testing.T) {
	// The corpus-level design premise: malware has a systematically
	// higher branch fraction than benign code (probing loops,
	// interpreter dispatch), though with overlap. Verify the means are
	// separated at the suite level.
	apps := Suite(DefaultSuite())
	var bSum, mSum float64
	var bN, mN int
	for _, a := range apps {
		if a.Class == Malware {
			mSum += a.Base.BranchFrac
			mN++
		} else {
			bSum += a.Base.BranchFrac
			bN++
		}
	}
	bMean, mMean := bSum/float64(bN), mSum/float64(mN)
	if mMean < bMean+0.04 {
		t.Errorf("malware branch mean %.3f not clearly above benign %.3f", mMean, bMean)
	}
}

func TestFamilyByName(t *testing.T) {
	f, ok := FamilyByName("elf-scanner")
	if !ok || f.Class != Malware {
		t.Fatal("elf-scanner should resolve to a malware family")
	}
	if _, ok := FamilyByName("nope"); ok {
		t.Fatal("unknown family should not resolve")
	}
}

func TestClassString(t *testing.T) {
	if Benign.String() != "benign" || Malware.String() != "malware" {
		t.Error("class names wrong")
	}
}

func TestBlendInterpolates(t *testing.T) {
	mal, _ := FamilyByName("elf-spinprobe")
	cover, _ := FamilyByName("sysutil")

	unchanged := Blend(mal, cover, 0)
	if unchanged.Branch != mal.Branch || unchanged.BranchBias != mal.BranchBias {
		t.Error("alpha=0 should keep the malware profile")
	}
	full := Blend(mal, cover, 1)
	if full.Branch != cover.Branch {
		t.Error("alpha=1 should adopt the cover profile")
	}
	half := Blend(mal, cover, 0.5)
	wantLo := (mal.Branch.Lo + cover.Branch.Lo) / 2
	if half.Branch.Lo < wantLo-1e-9 || half.Branch.Lo > wantLo+1e-9 {
		t.Errorf("alpha=0.5 branch lo = %v, want %v", half.Branch.Lo, wantLo)
	}
	if full.Class != Malware {
		t.Error("blended family must stay malware")
	}
	// Clamping.
	if Blend(mal, cover, -1).Branch != mal.Branch {
		t.Error("alpha < 0 should clamp to 0")
	}
	if Blend(mal, cover, 2).Branch != cover.Branch {
		t.Error("alpha > 1 should clamp to 1")
	}
}

func TestEvasiveSuite(t *testing.T) {
	apps := EvasiveSuite(0.5, 2, 99)
	if len(apps) != 10 { // 5 malware families x 2 members
		t.Fatalf("evasive suite has %d apps, want 10", len(apps))
	}
	for _, a := range apps {
		if a.Class != Malware {
			t.Fatalf("%s: evasive app must be malware", a.Name)
		}
		if !strings.Contains(a.Name, "evasive") {
			t.Errorf("%s: name should mark evasion", a.Name)
		}
		a.Base.Validate()
	}
	// Evasive apps at alpha=1 should have benign-like branch fractions.
	full := EvasiveSuite(1, 1, 99)
	cover, _ := FamilyByName("sysutil")
	for _, a := range full {
		if a.Base.BranchFrac < cover.Branch.Lo-1e-9 || a.Base.BranchFrac > cover.Branch.Hi+1e-9 {
			t.Errorf("%s: branch fraction %v outside cover range at alpha=1", a.Name, a.Base.BranchFrac)
		}
	}
}
