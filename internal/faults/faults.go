// Package faults is a composable, deterministic fault-injection layer
// for the run-time detection pipeline. It models the failure modes real
// PMU-based collection infrastructure exhibits — dropped sampling
// intervals, stuck or zeroed counter registers, multiplexing scaling
// noise, counter saturation, interval-length jitter, and whole-run
// container crashes — so that the collection and detection layers can
// be exercised, and hardened, against degraded inputs.
//
// Everything is driven by a seeded Plan. An injector derived from a
// plan is a pure function of (plan seed, scope string), never of
// wall-clock time or goroutine scheduling, so fault sequences reproduce
// exactly across runs and are independent of collection parallelism.
package faults

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dataset"
	"repro/internal/micro"
)

// Kind identifies one fault class the plan can inject.
type Kind uint8

const (
	// DropSample loses a whole sampling interval (the perf ring buffer
	// overflowed, the reader was descheduled, ...).
	DropSample Kind = iota
	// StuckCounter freezes a counter register: it repeats its previous
	// delta for a short episode, as a wedged PMC does.
	StuckCounter
	// ZeroCounter reads a counter as zero for a short episode (the
	// event was descheduled from the register).
	ZeroCounter
	// MultiplexNoise applies multiplicative scaling error to every
	// counter of an interval — the estimate error time-multiplexed
	// perf sessions suffer.
	MultiplexNoise
	// Saturation clamps counter deltas at a cap, modelling a narrow
	// counter pegging at full scale within an interval.
	Saturation
	// IntervalJitter stretches or shrinks an interval's cycle budget
	// (timer interrupt skid), changing how much execution a sample
	// covers.
	IntervalJitter
	// CrashRun kills a whole run: either the container fails to boot or
	// the collection session dies partway through the interval stream.
	CrashRun

	numKinds
)

var kindNames = [numKinds]string{
	"drop", "stuck", "zero", "noise", "saturate", "jitter", "crash",
}

// String returns the kind's flag-friendly name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// AllKinds returns every fault kind.
func AllKinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParseKinds parses a comma-separated kind list ("drop,stuck,crash").
// The empty string and "all" mean every kind.
func ParseKinds(s string) ([]Kind, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" || s == "all" {
		return AllKinds(), nil
	}
	var out []Kind
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		found := false
		for i, name := range kindNames {
			if tok == name {
				out = append(out, Kind(i))
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("faults: unknown kind %q (known: %s)", tok, strings.Join(kindNames[:], ","))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faults: no kinds in %q", s)
	}
	return out, nil
}

// Plan is a seeded description of which faults to inject and how hard.
// The zero value (rate 0) injects nothing. Plans are value types: copy
// and tweak freely.
type Plan struct {
	// Seed drives every random draw; identical (Seed, scope) pairs
	// reproduce identical fault sequences.
	Seed uint64
	// Rate is the base probability of each fault opportunity firing
	// (per interval, per counter, or per run, depending on the kind).
	Rate float64
	// Kinds enables a subset of fault classes; empty means all.
	Kinds []Kind

	// NoiseSigma is the relative std-dev of multiplexing scaling error
	// (default 0.15).
	NoiseSigma float64
	// SaturationCap is the delta value counters peg at when Saturation
	// fires (default 1<<12).
	SaturationCap uint64
	// JitterFrac is the maximum relative interval-budget perturbation
	// (default 0.3).
	JitterFrac float64
	// EpisodeLen is the mean length, in intervals, of stuck/zero
	// episodes (default 3).
	EpisodeLen int
}

// Enabled reports whether the plan injects kind k at all.
func (p Plan) Enabled(k Kind) bool {
	if p.Rate <= 0 {
		return false
	}
	if len(p.Kinds) == 0 {
		return true
	}
	for _, pk := range p.Kinds {
		if pk == k {
			return true
		}
	}
	return false
}

// Active reports whether the plan injects anything.
func (p Plan) Active() bool { return p.Rate > 0 }

func (p Plan) noiseSigma() float64 {
	if p.NoiseSigma > 0 {
		return p.NoiseSigma
	}
	return 0.15
}

func (p Plan) saturationCap() uint64 {
	if p.SaturationCap > 0 {
		return p.SaturationCap
	}
	return 1 << 12
}

func (p Plan) jitterFrac() float64 {
	if p.JitterFrac > 0 {
		return p.JitterFrac
	}
	return 0.3
}

func (p Plan) episodeLen() int {
	if p.EpisodeLen > 0 {
		return p.EpisodeLen
	}
	return 3
}

// hash64 is FNV-1a; it decorrelates scope strings into seed material.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ForRun derives the injector for one scoped unit of work (one
// container run, one monitored application, ...). The scope string —
// e.g. "appname/b3/a0" for batch 3, attempt 0 — is the only input
// besides the plan seed, which is what makes injection deterministic
// under any degree of collection concurrency and gives retries fresh,
// reproducible fault draws.
func (p Plan) ForRun(scope string) *Injector {
	return &Injector{
		plan: p,
		rng:  micro.NewRNG(p.Seed ^ hash64(scope) ^ 0x5DEECE66D),
	}
}

// Injector applies one run's fault schedule. It is stateful (stuck and
// zero episodes span intervals) and must not be shared across
// goroutines; derive one per run via Plan.ForRun.
type Injector struct {
	plan Plan
	rng  *micro.RNG

	stuckLeft []int // remaining stuck intervals per counter
	stuckVal  []uint64
	zeroLeft  []int
}

// Plan returns the plan the injector was derived from.
func (in *Injector) Plan() Plan { return in.plan }

// BootFails reports whether the container for this run fails to start.
// It satisfies lxc.Injector. One draw per injector: a run either boots
// or it does not.
func (in *Injector) BootFails() bool {
	if !in.plan.Enabled(CrashRun) {
		return false
	}
	// Half of the crash budget lands at boot, half mid-run (see
	// CrashInterval); splitting the draw keeps the overall crash
	// probability at Rate.
	return in.rng.Bernoulli(in.plan.Rate / 2)
}

// CrashInterval returns the sampling interval at which the run dies, or
// -1 if it survives. It satisfies part of perf.Injector. Call once per
// run, after BootFails.
func (in *Injector) CrashInterval(intervals int) int {
	if !in.plan.Enabled(CrashRun) || intervals <= 0 {
		return -1
	}
	if !in.rng.Bernoulli(in.plan.Rate / 2) {
		return -1
	}
	return in.rng.Intn(intervals)
}

// BudgetJitter perturbs the cycle budget of one interval.
func (in *Injector) BudgetJitter(interval int, budget uint64) uint64 {
	if !in.plan.Enabled(IntervalJitter) || !in.rng.Bernoulli(in.plan.Rate) {
		return budget
	}
	f := 1 + in.plan.jitterFrac()*(2*in.rng.Float64()-1)
	j := uint64(float64(budget) * f)
	if j == 0 {
		j = 1
	}
	return j
}

// DropSample reports whether interval i's reading is lost entirely.
func (in *Injector) DropSample(interval int) bool {
	return in.plan.Enabled(DropSample) && in.rng.Bernoulli(in.plan.Rate)
}

func (in *Injector) ensureState(n int) {
	if len(in.stuckLeft) >= n {
		return
	}
	in.stuckLeft = append(in.stuckLeft, make([]int, n-len(in.stuckLeft))...)
	in.stuckVal = append(in.stuckVal, make([]uint64, n-len(in.stuckVal))...)
	in.zeroLeft = append(in.zeroLeft, make([]int, n-len(in.zeroLeft))...)
}

func (in *Injector) episode() int {
	return 1 + in.rng.Intn(2*in.plan.episodeLen())
}

// TransformSample corrupts one interval's counter deltas in place:
// stuck and zero episodes, multiplexing noise, and saturation.
func (in *Injector) TransformSample(interval int, values []uint64) {
	if !in.plan.Active() {
		return
	}
	in.ensureState(len(values))

	if in.plan.Enabled(StuckCounter) {
		for c := range values {
			if in.stuckLeft[c] > 0 {
				in.stuckLeft[c]--
				values[c] = in.stuckVal[c]
			} else if in.rng.Bernoulli(in.plan.Rate) {
				in.stuckLeft[c] = in.episode()
				in.stuckVal[c] = values[c]
			}
		}
	}
	if in.plan.Enabled(ZeroCounter) {
		for c := range values {
			if in.zeroLeft[c] > 0 {
				in.zeroLeft[c]--
				values[c] = 0
			} else if in.rng.Bernoulli(in.plan.Rate) {
				in.zeroLeft[c] = in.episode()
				values[c] = 0
			}
		}
	}
	if in.plan.Enabled(MultiplexNoise) && in.rng.Bernoulli(in.plan.Rate) {
		sigma := in.plan.noiseSigma()
		for c := range values {
			f := 1 + sigma*in.rng.Norm()
			if f < 0 {
				f = 0
			}
			values[c] = uint64(float64(values[c]) * f)
		}
	}
	if in.plan.Enabled(Saturation) && in.rng.Bernoulli(in.plan.Rate) {
		cap := in.plan.saturationCap()
		for c := range values {
			if values[c] > cap {
				values[c] = cap
			}
		}
	}
}

// TransformVector corrupts one already-assembled float feature vector
// in place, mirroring TransformSample for offline datasets: stuck
// (repeat previous row's value), zero, multiplexing noise, saturation.
// Used by the robustness experiments to evaluate trained detectors on
// degraded test splits.
func (in *Injector) TransformVector(row int, x []float64) {
	if !in.plan.Active() {
		return
	}
	in.ensureState(len(x))

	if in.plan.Enabled(StuckCounter) {
		for c := range x {
			if in.stuckLeft[c] > 0 {
				in.stuckLeft[c]--
				x[c] = math.Float64frombits(in.stuckVal[c])
			} else if in.rng.Bernoulli(in.plan.Rate) {
				in.stuckLeft[c] = in.episode()
				in.stuckVal[c] = math.Float64bits(x[c])
			}
		}
	}
	if in.plan.Enabled(ZeroCounter) {
		for c := range x {
			if in.zeroLeft[c] > 0 {
				in.zeroLeft[c]--
				x[c] = 0
			} else if in.rng.Bernoulli(in.plan.Rate) {
				in.zeroLeft[c] = in.episode()
				x[c] = 0
			}
		}
	}
	if in.plan.Enabled(MultiplexNoise) && in.rng.Bernoulli(in.plan.Rate) {
		sigma := in.plan.noiseSigma()
		for c := range x {
			f := 1 + sigma*in.rng.Norm()
			if f < 0 {
				f = 0
			}
			x[c] *= f
		}
	}
	if in.plan.Enabled(Saturation) && in.rng.Bernoulli(in.plan.Rate) {
		cap := float64(in.plan.saturationCap())
		for c := range x {
			if x[c] > cap {
				x[c] = cap
			}
		}
	}
}

// CorruptDataset returns a fault-injected copy of d: feature values
// perturbed row by row, labels and metadata untouched. DropSample and
// CrashRun do not apply to an assembled dataset and are ignored. The
// result is deterministic for a given (plan, dataset).
func (p Plan) CorruptDataset(d *dataset.Instances) *dataset.Instances {
	out := d.Clone()
	if !p.Active() {
		return out
	}
	in := p.ForRun("dataset")
	for i := range out.X {
		in.TransformVector(i, out.X[i])
	}
	return out
}
