package faults

import (
	"testing"
	"time"
)

func TestParseNodeKinds(t *testing.T) {
	all, err := ParseNodeKinds("all")
	if err != nil || len(all) != int(numNodeKinds) {
		t.Fatalf("all: %v %v", all, err)
	}
	got, err := ParseNodeKinds(" kill , partition ")
	if err != nil || len(got) != 2 || got[0] != KillNode || got[1] != PartitionNode {
		t.Fatalf("kill,partition: %v %v", got, err)
	}
	if _, err := ParseNodeKinds("reboot"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, k := range AllNodeKinds() {
		rt, err := ParseNodeKinds(k.String())
		if err != nil || len(rt) != 1 || rt[0] != k {
			t.Fatalf("round-trip %v: %v %v", k, rt, err)
		}
	}
}

// TestNodePlanScriptedWindows pins the scripted failures: a kill
// window is permanent once open, a partition window drops exactly its
// configured width, and both outrank probabilistic draws.
func TestNodePlanScriptedWindows(t *testing.T) {
	kill := NodePlan{Seed: 1, Rate: 1, KillAfter: 5}.ForNode("n0")
	for n := 0; n < 5; n++ {
		if f := kill.Heartbeat(n); f.Kill {
			t.Fatalf("heartbeat %d killed before the window", n)
		}
	}
	for n := 5; n < 8; n++ {
		f := kill.Heartbeat(n)
		if !f.Kill || f.Kind != KillNode || !f.Injected {
			t.Fatalf("heartbeat %d: %+v, want kill", n, f)
		}
	}
	if kill.Killed != 3 {
		t.Fatalf("killed counter %d", kill.Killed)
	}

	part := NodePlan{Seed: 1, PartitionAfter: 3, PartitionFor: 4}.ForNode("n1")
	for n := 0; n < 12; n++ {
		f := part.Heartbeat(n)
		inWindow := n >= 3 && n < 7
		if f.Drop != inWindow {
			t.Fatalf("heartbeat %d: drop=%v, window=%v", n, f.Drop, inWindow)
		}
		if inWindow && (f.Kind != PartitionNode || !f.Injected) {
			t.Fatalf("heartbeat %d: %+v", n, f)
		}
	}
	if part.Dropped != 4 {
		t.Fatalf("dropped counter %d", part.Dropped)
	}

	// Rate 1 with only slowbeat enabled: every unscripted heartbeat
	// delays, but KillNode never fires probabilistically.
	slow := NodePlan{Seed: 9, Rate: 1, Kinds: []NodeKind{SlowHeartbeat, KillNode}, MaxDelay: 20 * time.Millisecond}.ForNode("n2")
	for n := 0; n < 16; n++ {
		f := slow.Heartbeat(n)
		if f.Kill || f.Drop {
			t.Fatalf("heartbeat %d: %+v, want delay only", n, f)
		}
		if f.Kind != SlowHeartbeat || !f.Injected || f.Delay < 0 || f.Delay > 20*time.Millisecond {
			t.Fatalf("heartbeat %d: %+v", n, f)
		}
	}
	if slow.Delayed != 16 {
		t.Fatalf("delayed counter %d", slow.Delayed)
	}
}

// TestNodeInjectorDeterministicPerNode: the decision for (plan, node,
// n) is pure — identical across injectors and call orders — while
// distinct nodes draw distinct schedules from one shared plan.
func TestNodeInjectorDeterministicPerNode(t *testing.T) {
	plan := NodePlan{Seed: 0xD00D, Rate: 0.4}
	a, b := plan.ForNode("n0"), plan.ForNode("n0")
	// Different call orders, same decisions.
	order := []int{7, 2, 11, 2, 0, 31}
	for _, n := range order {
		fa, fb := a.Heartbeat(n), b.Heartbeat(n)
		if fa != fb {
			t.Fatalf("heartbeat %d: %+v vs %+v", n, fa, fb)
		}
		if fresh := plan.ForNode("n0").Heartbeat(n); fresh != fa {
			t.Fatalf("heartbeat %d not pure: %+v vs %+v", n, fresh, fa)
		}
	}
	// Distinct nodes must not fail in lockstep.
	c := plan.ForNode("n1")
	same := 0
	for n := 0; n < 64; n++ {
		if plan.ForNode("n0").Heartbeat(n) == c.Heartbeat(n) {
			same++
		}
	}
	if same == 64 {
		t.Fatal("two nodes drew identical schedules")
	}

	if f := (NodePlan{}).ForNode("n0").Heartbeat(3); f.Injected {
		t.Fatalf("zero plan injected %+v", f)
	}
	if (NodePlan{}).Active() {
		t.Fatal("zero plan active")
	}
	if !(NodePlan{KillAfter: 1}).Active() || !(NodePlan{PartitionAfter: 1}).Active() {
		t.Fatal("scripted-only plan inactive")
	}
	if (NodePlan{Rate: 0.5}).Enabled(KillNode) != true {
		t.Fatal("empty kinds should enable all")
	}
}
