package faults

// Wire faults extend the injection layer from the sampling
// infrastructure to the network ingest plane: the failure modes a
// misbehaving or dying *client* inflicts on the server's framing layer.
// Where the sample-level kinds corrupt counter values, wire kinds
// corrupt the byte stream itself — truncated frames from a process
// killed mid-write, bit-flipped payloads from broken middleboxes,
// duplicated frames from naive retry loops, and long stalls between
// bytes (the slowloris shape). A WireInjector is applied on the sending
// side of a connection (drill clients, test proxies); the ingest server
// is the system under test and must survive whatever comes out.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/micro"
)

// WireKind identifies one wire-level fault class.
type WireKind uint8

const (
	// TruncateFrame cuts an outgoing frame short and hangs up: what a
	// client crash mid-write leaves on the server's socket.
	TruncateFrame WireKind = iota
	// CorruptFrame flips bytes in an outgoing frame's payload. The
	// frame arrives whole but fails its checksum (or desyncs the
	// framing if the header was hit).
	CorruptFrame
	// DelayFrame stalls before sending a frame — enough, at the
	// injector's configured maximum, to trip a deadline-aware reader.
	DelayFrame
	// DupFrame sends a frame twice, modelling a retry layer that never
	// learned the first copy arrived.
	DupFrame

	numWireKinds
)

var wireKindNames = [numWireKinds]string{"truncate", "corrupt", "delay", "dup"}

// String returns the kind's flag-friendly name.
func (k WireKind) String() string {
	if int(k) < len(wireKindNames) {
		return wireKindNames[k]
	}
	return fmt.Sprintf("WireKind(%d)", int(k))
}

// AllWireKinds returns every wire fault kind.
func AllWireKinds() []WireKind {
	out := make([]WireKind, numWireKinds)
	for i := range out {
		out[i] = WireKind(i)
	}
	return out
}

// ParseWireKinds parses a comma-separated wire kind list
// ("truncate,corrupt"). The empty string and "all" mean every kind.
func ParseWireKinds(s string) ([]WireKind, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" || s == "all" {
		return AllWireKinds(), nil
	}
	var out []WireKind
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		found := false
		for i, name := range wireKindNames {
			if tok == name {
				out = append(out, WireKind(i))
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("faults: unknown wire kind %q (known: %s)", tok, strings.Join(wireKindNames[:], ","))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faults: no wire kinds in %q", s)
	}
	return out, nil
}

// WirePlan is a seeded description of which wire faults to inject and
// how hard, mirroring Plan for the byte-stream layer. The zero value
// (rate 0) injects nothing.
type WirePlan struct {
	// Seed drives every draw; identical (Seed, scope) pairs reproduce
	// identical fault sequences.
	Seed uint64
	// Rate is the per-frame probability of each enabled kind firing.
	Rate float64
	// Kinds enables a subset of wire fault classes; empty means all.
	Kinds []WireKind

	// MaxDelay bounds DelayFrame stalls (default 50ms). Set it above
	// the receiver's read deadline to exercise slowloris eviction, or
	// below to exercise mere jitter tolerance.
	MaxDelay time.Duration
	// MaxFlips bounds how many bytes CorruptFrame flips (default 3).
	MaxFlips int
}

// WireActive reports whether the plan injects anything.
func (p WirePlan) Active() bool { return p.Rate > 0 }

// Enabled reports whether the plan injects kind k at all.
func (p WirePlan) Enabled(k WireKind) bool {
	if p.Rate <= 0 {
		return false
	}
	if len(p.Kinds) == 0 {
		return true
	}
	for _, pk := range p.Kinds {
		if pk == k {
			return true
		}
	}
	return false
}

func (p WirePlan) maxDelay() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return 50 * time.Millisecond
}

func (p WirePlan) maxFlips() int {
	if p.MaxFlips > 0 {
		return p.MaxFlips
	}
	return 3
}

// ForConn derives the injector for one connection. The scope string —
// e.g. "tenant/stream/c2" for the stream's third connection attempt —
// is the only input besides the plan seed, so wire fault sequences
// reproduce exactly across runs and reconnects draw fresh,
// deterministic schedules.
func (p WirePlan) ForConn(scope string) *WireInjector {
	return &WireInjector{
		plan: p,
		rng:  micro.NewRNG(p.Seed ^ hash64(scope) ^ 0xA5A5F00DF00D),
	}
}

// WireFault is the decision an injector makes about one outgoing frame.
type WireFault struct {
	// Frames replaces the original frame bytes on the wire: the
	// original (possibly duplicated), a truncated prefix, or a
	// corrupted copy. Slices may alias the injector's scratch; consume
	// before the next Apply.
	Frames [][]byte
	// Delay is how long to stall before writing Frames.
	Delay time.Duration
	// CloseAfter tells the sender to hang up after writing Frames —
	// set with TruncateFrame, because a torn frame desyncs the framing
	// layer and a real crashed client never sends another byte.
	CloseAfter bool
	// Kind is the fault that fired (meaningful when Injected).
	Kind WireKind
	// Injected reports whether any fault fired for this frame.
	Injected bool
}

// WireInjector applies one connection's wire fault schedule. It is
// stateful (the corruption scratch buffer is reused) and must not be
// shared across goroutines; derive one per connection via
// WirePlan.ForConn.
type WireInjector struct {
	plan    WirePlan
	rng     *micro.RNG
	scratch []byte

	// Counters for drill accounting (reads are only meaningful after
	// the connection's writer has stopped).
	Truncated int
	Corrupted int
	Delayed   int
	Duped     int
}

// Plan returns the plan the injector was derived from.
func (in *WireInjector) Plan() WirePlan { return in.plan }

// Apply decides the fate of one outgoing frame. The returned
// WireFault's Frames always holds what should actually be written (the
// untouched frame when nothing fired). At most one kind fires per
// frame; the draw order (truncate, corrupt, delay, dup) is fixed so
// sequences are reproducible.
func (in *WireInjector) Apply(frame []byte) WireFault {
	f := WireFault{Frames: [][]byte{frame}}
	if !in.plan.Active() || len(frame) == 0 {
		return f
	}
	switch {
	case in.plan.Enabled(TruncateFrame) && in.rng.Bernoulli(in.plan.Rate):
		cut := 1 + in.rng.Intn(len(frame))
		if cut >= len(frame) {
			cut = len(frame) - 1
		}
		if cut < 1 {
			cut = 1
		}
		f.Frames = [][]byte{frame[:cut]}
		f.CloseAfter = true
		f.Kind, f.Injected = TruncateFrame, true
		in.Truncated++
	case in.plan.Enabled(CorruptFrame) && in.rng.Bernoulli(in.plan.Rate):
		in.scratch = append(in.scratch[:0], frame...)
		flips := 1 + in.rng.Intn(in.plan.maxFlips())
		for i := 0; i < flips; i++ {
			pos := in.rng.Intn(len(in.scratch))
			in.scratch[pos] ^= byte(1 + in.rng.Intn(255))
		}
		f.Frames = [][]byte{in.scratch}
		f.Kind, f.Injected = CorruptFrame, true
		in.Corrupted++
	case in.plan.Enabled(DelayFrame) && in.rng.Bernoulli(in.plan.Rate):
		f.Delay = time.Duration(1 + in.rng.Intn(int(in.plan.maxDelay())))
		f.Kind, f.Injected = DelayFrame, true
		in.Delayed++
	case in.plan.Enabled(DupFrame) && in.rng.Bernoulli(in.plan.Rate):
		f.Frames = [][]byte{frame, frame}
		f.Kind, f.Injected = DupFrame, true
		in.Duped++
	}
	return f
}
