package faults

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/micro"
	"repro/internal/perf"
	"repro/internal/workload"
)

// testApp returns an application to sample plus a full 4-counter
// group. Callers must create a fresh Run per sampling pass: Run carries
// jitter RNG state that advances as intervals are generated.
func testApp(t *testing.T) (workload.App, perf.Group) {
	t.Helper()
	apps := workload.Suite(workload.SmallSuite())
	if len(apps) == 0 {
		t.Fatal("empty suite")
	}
	g, err := perf.NewGroup(micro.AllEvents()[:perf.NumCounters]...)
	if err != nil {
		t.Fatal(err)
	}
	return apps[0], g
}

// TestRateZeroIsIdentity is the satellite property test: for any seeded
// plan with rate 0, injected sampling output equals uninjected output
// exactly — same intervals, same values, same instruction counts.
func TestRateZeroIsIdentity(t *testing.T) {
	app, g := testApp(t)
	const intervals = 10
	for seed := uint64(0); seed < 25; seed++ {
		plan := Plan{Seed: seed*0x9E3779B9 + 1, Rate: 0}

		clean := perf.SampleRun(micro.NewMachine(micro.FastConfig(), 11), app.NewRun(0), g, intervals, 4000)
		injected, err := perf.SampleRunInjected(micro.NewMachine(micro.FastConfig(), 11), app.NewRun(0), g, intervals, 4000, plan.ForRun("prop"))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(clean) != len(injected) {
			t.Fatalf("seed %d: %d samples vs %d", seed, len(injected), len(clean))
		}
		for i := range clean {
			if clean[i].Interval != injected[i].Interval || clean[i].Instructions != injected[i].Instructions {
				t.Fatalf("seed %d interval %d: metadata differs", seed, i)
			}
			for j := range clean[i].Values {
				if clean[i].Values[j] != injected[i].Values[j] {
					t.Fatalf("seed %d: value (%d,%d) differs: %d vs %d",
						seed, i, j, injected[i].Values[j], clean[i].Values[j])
				}
			}
		}
	}
}

// TestInjectorDeterministicPerScope asserts that identical (seed,
// scope) pairs reproduce identical fault schedules and that different
// scopes de-correlate.
func TestInjectorDeterministicPerScope(t *testing.T) {
	app, g := testApp(t)
	plan := Plan{Seed: 99, Rate: 0.3}
	const intervals = 12

	sample := func(scope string) ([]perf.Sample, error) {
		return perf.SampleRunInjected(micro.NewMachine(micro.FastConfig(), 5), app.NewRun(0), g, intervals, 4000, plan.ForRun(scope))
	}
	a, errA := sample("app/b0/a0")
	b, errB := sample("app/b0/a0")
	if (errA == nil) != (errB == nil) {
		t.Fatal("crash outcome differs for identical scopes")
	}
	if len(a) != len(b) {
		t.Fatalf("sample counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Interval != b[i].Interval {
			t.Fatal("surviving intervals differ for identical scopes")
		}
		for j := range a[i].Values {
			if a[i].Values[j] != b[i].Values[j] {
				t.Fatal("values differ for identical scopes")
			}
		}
	}

	// Different scope should (at rate 0.3 across 12 intervals x 4
	// counters of opportunity) produce a different schedule.
	c, _ := sample("app/b0/a1")
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Interval != c[i].Interval {
				same = false
				break
			}
			for j := range a[i].Values {
				if a[i].Values[j] != c[i].Values[j] {
					same = false
					break
				}
			}
		}
	}
	if same {
		t.Fatal("distinct scopes produced identical fault schedules")
	}
}

func TestCrashKindsOnly(t *testing.T) {
	plan := Plan{Seed: 5, Rate: 1, Kinds: []Kind{CrashRun}}
	boots, mids := 0, 0
	for i := 0; i < 64; i++ {
		in := plan.ForRun(string(rune('a' + i)))
		if in.BootFails() {
			boots++
		} else if in.CrashInterval(10) >= 0 {
			mids++
		}
	}
	if boots == 0 || mids == 0 {
		t.Fatalf("rate-1 crash plan should produce both boot (%d) and mid-run (%d) crashes", boots, mids)
	}
	// Crash-only plans must not touch values.
	in := plan.ForRun("x")
	vals := []uint64{1, 2, 3, 4}
	in.TransformSample(0, vals)
	if vals[0] != 1 || vals[3] != 4 {
		t.Fatal("crash-only plan corrupted counter values")
	}
	if in.DropSample(0) {
		t.Fatal("crash-only plan dropped a sample")
	}
}

func TestStuckAndZeroEpisodes(t *testing.T) {
	plan := Plan{Seed: 8, Rate: 1, Kinds: []Kind{StuckCounter}}
	in := plan.ForRun("s")
	first := []uint64{10, 20, 30, 40}
	in.TransformSample(0, first)
	next := []uint64{11, 21, 31, 41}
	in.TransformSample(1, next)
	for c := range next {
		if next[c] != first[c] {
			t.Fatalf("counter %d not stuck: %d != %d", c, next[c], first[c])
		}
	}

	plan.Kinds = []Kind{ZeroCounter}
	in = plan.ForRun("z")
	vals := []uint64{10, 20, 30, 40}
	in.TransformSample(0, vals)
	for c, v := range vals {
		if v != 0 {
			t.Fatalf("counter %d not zeroed: %d", c, v)
		}
	}
}

func TestSaturationClamps(t *testing.T) {
	plan := Plan{Seed: 1, Rate: 1, Kinds: []Kind{Saturation}, SaturationCap: 100}
	in := plan.ForRun("sat")
	vals := []uint64{50, 150, 1000, 99}
	in.TransformSample(0, vals)
	want := []uint64{50, 100, 100, 99}
	for c := range vals {
		if vals[c] != want[c] {
			t.Fatalf("counter %d: %d, want %d", c, vals[c], want[c])
		}
	}
}

func TestParseKinds(t *testing.T) {
	all, err := ParseKinds("all")
	if err != nil || len(all) != int(numKinds) {
		t.Fatalf("ParseKinds(all) = %v, %v", all, err)
	}
	ks, err := ParseKinds("drop, crash")
	if err != nil || len(ks) != 2 || ks[0] != DropSample || ks[1] != CrashRun {
		t.Fatalf("ParseKinds(drop,crash) = %v, %v", ks, err)
	}
	if _, err := ParseKinds("bogus"); err == nil {
		t.Fatal("unknown kind should fail")
	}
	for _, k := range AllKinds() {
		if _, err := ParseKinds(k.String()); err != nil {
			t.Fatalf("round-trip %v: %v", k, err)
		}
	}
}

func TestCorruptDatasetDeterministic(t *testing.T) {
	d := dataset.New([]string{"a", "b"}, dataset.BinaryClassNames())
	rng := micro.NewRNG(17)
	for i := 0; i < 40; i++ {
		if err := d.Add([]float64{rng.Float64() * 1000, rng.Float64() * 1000}, i%2, "g"); err != nil {
			t.Fatal(err)
		}
	}

	zero := Plan{Seed: 4, Rate: 0}.CorruptDataset(d)
	for i := range d.X {
		for j := range d.X[i] {
			if zero.X[i][j] != d.X[i][j] {
				t.Fatal("rate-0 corruption must be the identity")
			}
		}
	}

	plan := Plan{Seed: 4, Rate: 0.5}
	a := plan.CorruptDataset(d)
	b := plan.CorruptDataset(d)
	changed := false
	for i := range a.X {
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("corruption not deterministic")
			}
			if a.X[i][j] != d.X[i][j] {
				changed = true
			}
		}
		if a.Y[i] != d.Y[i] {
			t.Fatal("corruption must not touch labels")
		}
	}
	if !changed {
		t.Fatal("rate-0.5 corruption changed nothing")
	}
}

// TestCrashErrorIdentity makes sure the sentinel errors survive the
// wrapping applied by the perf layer, which the collect retry logic
// depends on.
func TestCrashErrorIdentity(t *testing.T) {
	app, g := testApp(t)
	plan := Plan{Seed: 2, Rate: 1, Kinds: []Kind{CrashRun}}
	sawCrash := false
	for i := 0; i < 24 && !sawCrash; i++ {
		in := plan.ForRun(string(rune('k' + i)))
		if in.BootFails() {
			continue // boot crashes are lxc's concern
		}
		_, err := perf.SampleRunInjected(micro.NewMachine(micro.FastConfig(), 3), app.NewRun(0), g, 10, 4000, in)
		if err != nil {
			if !errors.Is(err, perf.ErrRunCrashed) {
				t.Fatalf("crash error does not wrap ErrRunCrashed: %v", err)
			}
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Fatal("rate-1 mid-run crash plan never crashed")
	}
}
