package faults

// Node faults extend the injection layer from connections to cluster
// members: the failure modes a whole serving process inflicts on the
// coordinator's lease table. Where wire kinds mangle one connection's
// byte stream, node kinds act at heartbeat granularity — a process
// killed outright, a network partition that swallows every heartbeat
// for a stretch, a GC-stalled or overloaded node whose heartbeats
// arrive late. A NodeInjector is consulted by the node agent before
// each heartbeat; the coordinator is the system under test and must
// detect, expire, and fail over whatever the schedule produces.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/micro"
)

// NodeKind identifies one node-level fault class.
type NodeKind uint8

const (
	// KillNode stops the process abruptly: no BYE, no final state
	// fan-in, streams stranded until the lease expires. Fires only
	// through the deterministic KillAfter window — a probabilistic
	// kill would make drill accounting unrepeatable.
	KillNode NodeKind = iota
	// PartitionNode swallows heartbeats (and blocks re-dials) while
	// the node itself keeps serving: the asymmetric failure where the
	// coordinator declares a node dead that never stopped working.
	PartitionNode
	// SlowHeartbeat delays a heartbeat — enough, at the plan's
	// configured maximum, to flirt with the lease TTL without
	// crossing it.
	SlowHeartbeat

	numNodeKinds
)

var nodeKindNames = [numNodeKinds]string{"kill", "partition", "slowbeat"}

// String returns the kind's flag-friendly name.
func (k NodeKind) String() string {
	if int(k) < len(nodeKindNames) {
		return nodeKindNames[k]
	}
	return fmt.Sprintf("NodeKind(%d)", int(k))
}

// AllNodeKinds returns every node fault kind.
func AllNodeKinds() []NodeKind {
	out := make([]NodeKind, numNodeKinds)
	for i := range out {
		out[i] = NodeKind(i)
	}
	return out
}

// ParseNodeKinds parses a comma-separated node kind list
// ("kill,partition"). The empty string and "all" mean every kind.
func ParseNodeKinds(s string) ([]NodeKind, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" || s == "all" {
		return AllNodeKinds(), nil
	}
	var out []NodeKind
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		found := false
		for i, name := range nodeKindNames {
			if tok == name {
				out = append(out, NodeKind(i))
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("faults: unknown node kind %q (known: %s)", tok, strings.Join(nodeKindNames[:], ","))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faults: no node kinds in %q", s)
	}
	return out, nil
}

// NodePlan is a seeded description of how one cluster member
// misbehaves, mirroring WirePlan one layer up. The probabilistic knobs
// (Rate over Kinds) add background jitter; the deterministic windows
// (KillAfter, PartitionAfter/PartitionFor) script the headline failures
// so a drill can point each one at a chosen victim and assert the
// exact recovery. The zero value injects nothing.
type NodePlan struct {
	// Seed drives every probabilistic draw; identical (Seed, node,
	// heartbeat) triples reproduce identical decisions.
	Seed uint64
	// Rate is the per-heartbeat probability of each enabled
	// probabilistic kind firing (KillNode never fires from Rate).
	Rate float64
	// Kinds enables a subset of fault classes; empty means all.
	Kinds []NodeKind

	// KillAfter, when > 0, kills the node at heartbeat index KillAfter
	// (0-based): every Heartbeat(n) with n >= KillAfter says Kill.
	KillAfter int
	// PartitionAfter, when > 0, opens a partition window at heartbeat
	// index PartitionAfter lasting PartitionFor heartbeats: every
	// heartbeat inside [PartitionAfter, PartitionAfter+PartitionFor)
	// is dropped, re-dials included.
	PartitionAfter int
	// PartitionFor is the scripted partition's width in heartbeats
	// (default 4 when PartitionAfter is set).
	PartitionFor int
	// MaxDelay bounds SlowHeartbeat stalls (default 150ms). Set it
	// near the lease TTL to exercise near-miss renewals, or above it
	// to force spurious expiries.
	MaxDelay time.Duration
}

// Active reports whether the plan injects anything.
func (p NodePlan) Active() bool {
	return p.Rate > 0 || p.KillAfter > 0 || p.PartitionAfter > 0
}

// Enabled reports whether the plan injects kind k probabilistically.
func (p NodePlan) Enabled(k NodeKind) bool {
	if p.Rate <= 0 {
		return false
	}
	if len(p.Kinds) == 0 {
		return true
	}
	for _, pk := range p.Kinds {
		if pk == k {
			return true
		}
	}
	return false
}

func (p NodePlan) partitionFor() int {
	if p.PartitionFor > 0 {
		return p.PartitionFor
	}
	return 4
}

func (p NodePlan) maxDelay() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return 150 * time.Millisecond
}

// ForNode derives the injector for one cluster member. The node ID is
// the only input besides the plan seed, so every node draws its own
// reproducible schedule from a shared plan.
func (p NodePlan) ForNode(id string) *NodeInjector {
	return &NodeInjector{
		plan: p,
		base: p.Seed ^ hash64(id) ^ 0xC10D5EA5C10D,
	}
}

// NodeFault is the decision an injector makes about one heartbeat.
type NodeFault struct {
	// Kill tells the agent to die in place of this heartbeat: stop
	// serving, close nothing gracefully, send no BYE.
	Kill bool
	// Drop tells the agent to skip this heartbeat entirely — and not
	// to re-dial if disconnected — as if the network ate it.
	Drop bool
	// Delay is how long to stall before sending this heartbeat.
	Delay time.Duration
	// Kind is the fault that fired (meaningful when Injected).
	Kind NodeKind
	// Injected reports whether any fault fired for this heartbeat.
	Injected bool
}

// NodeInjector applies one member's node fault schedule. The decision
// for heartbeat n is a pure function of (plan, node, n) — independent
// of call order, so an agent that restarts its loop re-derives the
// same schedule — while the counters accumulate for drill accounting
// and must only be read after the agent has stopped.
type NodeInjector struct {
	plan NodePlan
	base uint64

	// Counters for drill accounting.
	Killed  int
	Dropped int
	Delayed int
}

// Plan returns the plan the injector was derived from.
func (in *NodeInjector) Plan() NodePlan { return in.plan }

// Heartbeat decides the fate of heartbeat n (0-based). At most one
// kind fires per heartbeat; scripted windows outrank probabilistic
// draws and the draw order (partition, slowbeat) is fixed so sequences
// are reproducible.
func (in *NodeInjector) Heartbeat(n int) NodeFault {
	var f NodeFault
	p := in.plan
	if !p.Active() {
		return f
	}
	if p.KillAfter > 0 && n >= p.KillAfter {
		in.Killed++
		return NodeFault{Kill: true, Kind: KillNode, Injected: true}
	}
	if p.PartitionAfter > 0 && n >= p.PartitionAfter && n < p.PartitionAfter+p.partitionFor() {
		in.Dropped++
		return NodeFault{Drop: true, Kind: PartitionNode, Injected: true}
	}
	rng := micro.NewRNG(in.base ^ (uint64(n)+1)*0x9E3779B97F4A7C15)
	switch {
	case p.Enabled(PartitionNode) && rng.Bernoulli(p.Rate):
		in.Dropped++
		return NodeFault{Drop: true, Kind: PartitionNode, Injected: true}
	case p.Enabled(SlowHeartbeat) && rng.Bernoulli(p.Rate):
		in.Delayed++
		d := time.Duration(rng.Float64() * float64(p.maxDelay()))
		return NodeFault{Delay: d, Kind: SlowHeartbeat, Injected: true}
	}
	return f
}
