package faults

import (
	"bytes"
	"testing"
	"time"
)

func TestWireInjectorDeterministic(t *testing.T) {
	plan := WirePlan{Seed: 42, Rate: 0.5}
	frame := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	record := func() []WireFault {
		in := plan.ForConn("t0/s0/c1")
		out := make([]WireFault, 0, 64)
		for i := 0; i < 64; i++ {
			f := in.Apply(frame)
			// Deep-copy Frames: they may alias injector scratch.
			cp := WireFault{Delay: f.Delay, CloseAfter: f.CloseAfter, Kind: f.Kind, Injected: f.Injected}
			for _, fr := range f.Frames {
				cp.Frames = append(cp.Frames, append([]byte(nil), fr...))
			}
			out = append(out, cp)
		}
		return out
	}
	a, b := record(), record()
	for i := range a {
		if a[i].Injected != b[i].Injected || a[i].Kind != b[i].Kind ||
			a[i].Delay != b[i].Delay || a[i].CloseAfter != b[i].CloseAfter ||
			len(a[i].Frames) != len(b[i].Frames) {
			t.Fatalf("frame %d: fault decision diverged: %+v vs %+v", i, a[i], b[i])
		}
		for j := range a[i].Frames {
			if !bytes.Equal(a[i].Frames[j], b[i].Frames[j]) {
				t.Fatalf("frame %d copy %d: bytes diverged", i, j)
			}
		}
	}

	other := plan.ForConn("t0/s0/c2")
	diverged := false
	ref := plan.ForConn("t0/s0/c1")
	for i := 0; i < 64; i++ {
		x, y := ref.Apply(frame), other.Apply(frame)
		if x.Injected != y.Injected || x.Kind != y.Kind {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different scopes should draw different wire fault schedules")
	}
}

func TestWireInjectorKinds(t *testing.T) {
	frame := make([]byte, 32)
	for i := range frame {
		frame[i] = byte(i)
	}

	t.Run("truncate", func(t *testing.T) {
		in := WirePlan{Seed: 1, Rate: 1, Kinds: []WireKind{TruncateFrame}}.ForConn("x")
		f := in.Apply(frame)
		if !f.Injected || f.Kind != TruncateFrame || !f.CloseAfter {
			t.Fatalf("want truncate+close, got %+v", f)
		}
		if len(f.Frames) != 1 || len(f.Frames[0]) >= len(frame) || len(f.Frames[0]) < 1 {
			t.Fatalf("truncated frame should be a strict non-empty prefix, got %d bytes", len(f.Frames[0]))
		}
		if !bytes.Equal(f.Frames[0], frame[:len(f.Frames[0])]) {
			t.Fatal("truncation must be a prefix, not a rewrite")
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		in := WirePlan{Seed: 1, Rate: 1, Kinds: []WireKind{CorruptFrame}}.ForConn("x")
		f := in.Apply(frame)
		if !f.Injected || f.Kind != CorruptFrame || f.CloseAfter {
			t.Fatalf("want corrupt without close, got %+v", f)
		}
		if len(f.Frames[0]) != len(frame) {
			t.Fatalf("corruption must preserve length: %d vs %d", len(f.Frames[0]), len(frame))
		}
		if bytes.Equal(f.Frames[0], frame) {
			t.Fatal("corrupted frame should differ from the original")
		}
	})

	t.Run("delay", func(t *testing.T) {
		in := WirePlan{Seed: 1, Rate: 1, Kinds: []WireKind{DelayFrame}, MaxDelay: 5 * time.Millisecond}.ForConn("x")
		f := in.Apply(frame)
		if !f.Injected || f.Kind != DelayFrame || f.Delay <= 0 || f.Delay > 5*time.Millisecond {
			t.Fatalf("want bounded delay, got %+v", f)
		}
		if !bytes.Equal(f.Frames[0], frame) {
			t.Fatal("delay must not alter the frame")
		}
	})

	t.Run("dup", func(t *testing.T) {
		in := WirePlan{Seed: 1, Rate: 1, Kinds: []WireKind{DupFrame}}.ForConn("x")
		f := in.Apply(frame)
		if !f.Injected || f.Kind != DupFrame || len(f.Frames) != 2 {
			t.Fatalf("want duplicated frame, got %+v", f)
		}
		if !bytes.Equal(f.Frames[0], frame) || !bytes.Equal(f.Frames[1], frame) {
			t.Fatal("duplicates must be byte-identical to the original")
		}
	})

	t.Run("inactive", func(t *testing.T) {
		in := WirePlan{}.ForConn("x")
		f := in.Apply(frame)
		if f.Injected || len(f.Frames) != 1 || !bytes.Equal(f.Frames[0], frame) {
			t.Fatalf("inactive plan must pass frames through untouched, got %+v", f)
		}
	})
}

func TestParseWireKinds(t *testing.T) {
	all, err := ParseWireKinds("all")
	if err != nil || len(all) != int(numWireKinds) {
		t.Fatalf("all: %v %v", all, err)
	}
	got, err := ParseWireKinds("truncate, dup")
	if err != nil || len(got) != 2 || got[0] != TruncateFrame || got[1] != DupFrame {
		t.Fatalf("truncate,dup: %v %v", got, err)
	}
	if _, err := ParseWireKinds("bogus"); err == nil {
		t.Fatal("unknown kind must error")
	}
}
