// Package features implements the paper's feature-reduction stage:
// Correlation Attribute Evaluation (WEKA's CorrelationAttributeEval)
// scores every hardware event by the absolute Pearson correlation
// between its per-interval counts and the binary class, ranks the
// events, and selects the top-k (16, 8, 4 or 2) as detector inputs.
//
// Alternative rankers (variance, random) are provided for the ablation
// study in DESIGN.md §5.
package features

import (
	"errors"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/micro"
)

// Ranked is one attribute with its score, ordered best-first.
type Ranked struct {
	Index int     // column in the source dataset
	Name  string  // attribute name
	Score float64 // ranking score (higher is better)
}

// CorrelationScores returns |Pearson r(attribute, class)| per attribute.
// The class is encoded 0/1 (benign/malware); a constant attribute or a
// single-class dataset scores zero.
func CorrelationScores(d *dataset.Instances) ([]float64, error) {
	n := d.NumRows()
	if n < 2 {
		return nil, errors.New("features: need at least two rows")
	}
	scores := make([]float64, d.NumAttrs())

	var meanY, varY float64
	for _, y := range d.Y {
		meanY += float64(y)
	}
	meanY /= float64(n)
	for _, y := range d.Y {
		dy := float64(y) - meanY
		varY += dy * dy
	}
	if varY == 0 {
		return scores, nil
	}

	for j := 0; j < d.NumAttrs(); j++ {
		var meanX float64
		for i := 0; i < n; i++ {
			meanX += d.X[i][j]
		}
		meanX /= float64(n)
		var cov, varX float64
		for i := 0; i < n; i++ {
			dx := d.X[i][j] - meanX
			cov += dx * (float64(d.Y[i]) - meanY)
			varX += dx * dx
		}
		if varX == 0 {
			continue
		}
		scores[j] = math.Abs(cov / math.Sqrt(varX*varY))
	}
	return scores, nil
}

// VarianceScores ranks attributes by their normalised variance
// (coefficient-of-variation squared), a class-blind baseline ranker.
func VarianceScores(d *dataset.Instances) ([]float64, error) {
	n := d.NumRows()
	if n < 2 {
		return nil, errors.New("features: need at least two rows")
	}
	scores := make([]float64, d.NumAttrs())
	for j := 0; j < d.NumAttrs(); j++ {
		var mean float64
		for i := 0; i < n; i++ {
			mean += d.X[i][j]
		}
		mean /= float64(n)
		var v float64
		for i := 0; i < n; i++ {
			dx := d.X[i][j] - mean
			v += dx * dx
		}
		v /= float64(n)
		if mean != 0 {
			scores[j] = v / (mean * mean)
		}
	}
	return scores, nil
}

// rank orders attributes by score descending, breaking ties by column
// index for determinism.
func rank(d *dataset.Instances, scores []float64) []Ranked {
	out := make([]Ranked, d.NumAttrs())
	for j := range out {
		out[j] = Ranked{Index: j, Name: d.Attributes[j].Name, Score: scores[j]}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// RankCorrelation returns all attributes ordered by correlation score,
// best first — the paper's Table 1 when applied to the full training
// set with k=16.
func RankCorrelation(d *dataset.Instances) ([]Ranked, error) {
	scores, err := CorrelationScores(d)
	if err != nil {
		return nil, err
	}
	return rank(d, scores), nil
}

// RankVariance returns all attributes ordered by the variance ranker.
func RankVariance(d *dataset.Instances) ([]Ranked, error) {
	scores, err := VarianceScores(d)
	if err != nil {
		return nil, err
	}
	return rank(d, scores), nil
}

// TopK returns the best-k column indices under the correlation ranker,
// in rank order. Selecting the top 16 reproduces the paper's reduced
// feature set; nested prefixes (8, 4, 2) give the smaller HPC budgets.
func TopK(d *dataset.Instances, k int) ([]int, error) {
	if k <= 0 || k > d.NumAttrs() {
		return nil, errors.New("features: k out of range")
	}
	ranked, err := RankCorrelation(d)
	if err != nil {
		return nil, err
	}
	cols := make([]int, k)
	for i := 0; i < k; i++ {
		cols[i] = ranked[i].Index
	}
	return cols, nil
}

// RandomK returns k distinct random column indices (ablation baseline).
func RandomK(d *dataset.Instances, k int, seed uint64) ([]int, error) {
	if k <= 0 || k > d.NumAttrs() {
		return nil, errors.New("features: k out of range")
	}
	perm := make([]int, d.NumAttrs())
	for i := range perm {
		perm[i] = i
	}
	rng := micro.NewRNG(seed)
	for i := len(perm) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:k], nil
}

// Reduce selects the top-k correlation-ranked attributes and returns
// the projected dataset together with the chosen columns. The columns
// are computed on d itself, which should be the training split (scoring
// on test data would leak labels).
func Reduce(d *dataset.Instances, k int) (*dataset.Instances, []int, error) {
	cols, err := TopK(d, k)
	if err != nil {
		return nil, nil, err
	}
	red, err := d.Select(cols)
	if err != nil {
		return nil, nil, err
	}
	return red, cols, nil
}
