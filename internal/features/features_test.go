package features

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/micro"
)

// synth builds a dataset where attribute 0 is perfectly correlated with
// the class, attribute 1 is anti-correlated, attribute 2 is noise and
// attribute 3 is constant.
func synth(t *testing.T) *dataset.Instances {
	t.Helper()
	d := dataset.New([]string{"pos", "neg", "noise", "flat"}, dataset.BinaryClassNames())
	rng := micro.NewRNG(1)
	for i := 0; i < 200; i++ {
		y := i % 2
		x := []float64{
			float64(y),
			float64(1 - y),
			rng.Float64(),
			3.14,
		}
		group := "benign-app"
		if y == 1 {
			group = "mal-app"
		}
		if err := d.Add(x, y, group); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestCorrelationScores(t *testing.T) {
	d := synth(t)
	scores, err := CorrelationScores(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scores[0]-1) > 1e-9 {
		t.Errorf("perfectly correlated attr scored %.4f, want 1", scores[0])
	}
	if math.Abs(scores[1]-1) > 1e-9 {
		t.Errorf("anti-correlated attr scored %.4f, want 1 (absolute value)", scores[1])
	}
	if scores[2] > 0.3 {
		t.Errorf("noise attr scored %.4f, want near 0", scores[2])
	}
	if scores[3] != 0 {
		t.Errorf("constant attr scored %.4f, want exactly 0", scores[3])
	}
}

func TestCorrelationEdgeCases(t *testing.T) {
	d := dataset.New([]string{"a"}, dataset.BinaryClassNames())
	_ = d.Add([]float64{1}, 0, "g")
	if _, err := CorrelationScores(d); err == nil {
		t.Error("single row should fail")
	}
	// Single-class dataset: zero scores, no error.
	_ = d.Add([]float64{2}, 0, "g")
	scores, err := CorrelationScores(d)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] != 0 {
		t.Error("single-class dataset should score 0")
	}
}

func TestRankCorrelationOrder(t *testing.T) {
	d := synth(t)
	ranked, err := RankCorrelation(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 4 {
		t.Fatalf("ranked %d attrs, want 4", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatal("ranking not descending")
		}
	}
	// The two perfect attrs must head the list; flat must be last.
	if ranked[0].Name == "noise" || ranked[0].Name == "flat" {
		t.Errorf("top-ranked = %q, want pos or neg", ranked[0].Name)
	}
	if ranked[3].Name != "flat" {
		t.Errorf("bottom-ranked = %q, want flat", ranked[3].Name)
	}
}

func TestTopKAndReduce(t *testing.T) {
	d := synth(t)
	cols, err := TopK(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 {
		t.Fatal("wrong k")
	}
	for _, c := range cols {
		if c != 0 && c != 1 {
			t.Errorf("top-2 includes column %d, want {0,1}", c)
		}
	}
	red, cols2, err := Reduce(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if red.NumAttrs() != 2 || red.NumRows() != d.NumRows() {
		t.Fatal("reduced shape wrong")
	}
	if len(cols2) != 2 {
		t.Fatal("reduce column list wrong")
	}

	if _, err := TopK(d, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := TopK(d, 99); err == nil {
		t.Error("k too large should fail")
	}
}

func TestTopKNestedPrefix(t *testing.T) {
	// The paper's 16/8/4/2 HPC budgets are nested prefixes of one
	// ranking; verify TopK(k) is a prefix of TopK(k+1).
	d := synth(t)
	k3, _ := TopK(d, 3)
	k2, _ := TopK(d, 2)
	for i := range k2 {
		if k2[i] != k3[i] {
			t.Fatal("TopK results are not nested prefixes")
		}
	}
}

func TestVarianceScores(t *testing.T) {
	d := synth(t)
	scores, err := VarianceScores(d)
	if err != nil {
		t.Fatal(err)
	}
	if scores[3] > 1e-18 {
		t.Errorf("constant attr variance score = %g, want ~0", scores[3])
	}
	if scores[0] == 0 {
		t.Error("varying attr should have positive variance score")
	}
	ranked, err := RankVariance(d)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[len(ranked)-1].Name != "flat" {
		t.Error("flat should rank last under variance")
	}
}

func TestRandomK(t *testing.T) {
	d := synth(t)
	cols, err := RandomK(d, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range cols {
		if c < 0 || c >= d.NumAttrs() || seen[c] {
			t.Fatal("RandomK returned invalid or duplicate column")
		}
		seen[c] = true
	}
	cols2, _ := RandomK(d, 3, 5)
	for i := range cols {
		if cols[i] != cols2[i] {
			t.Fatal("RandomK not deterministic for equal seeds")
		}
	}
	if _, err := RandomK(d, 0, 1); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	// Two identical attributes must rank by column index.
	d := dataset.New([]string{"a", "b"}, dataset.BinaryClassNames())
	for i := 0; i < 50; i++ {
		y := i % 2
		_ = d.Add([]float64{float64(y), float64(y)}, y, map[int]string{0: "g0", 1: "g1"}[y])
	}
	ranked, err := RankCorrelation(d)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Index != 0 || ranked[1].Index != 1 {
		t.Error("ties must break by column index")
	}
}
