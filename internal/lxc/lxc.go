// Package lxc models the isolation discipline of the paper's data
// collection: every application executes inside a Linux container that
// is destroyed after the run, so malware cannot contaminate the
// environment observed by subsequent runs.
//
// In this reproduction a "container" owns a freshly-reset simulated
// machine. The Manager enforces the paper's lifecycle: a container is
// created per run, used once, and destroyed; using a destroyed
// container is an error, and the manager tracks outstanding containers
// so leaks are detectable in tests.
package lxc

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/micro"
)

// ErrDestroyed is returned when a destroyed container is used.
var ErrDestroyed = errors.New("lxc: container already destroyed")

// ErrCrashed marks a container run killed by fault injection before
// the workload could execute. Callers distinguish it (and
// perf.ErrRunCrashed) from real configuration errors to decide whether
// a retry is worthwhile.
var ErrCrashed = errors.New("lxc: container crashed")

// ErrLeaked marks a violated destroy-after-run discipline; CheckClean
// wraps it so callers can match the condition without parsing the
// leaked-container listing.
var ErrLeaked = errors.New("lxc: containers leaked")

// Injector is the fault hook consulted by RunIsolatedInjected; the
// faults package provides the production implementation.
type Injector interface {
	// BootFails reports whether this run's container dies at start-up.
	BootFails() bool
}

// Container is one isolated execution environment.
type Container struct {
	id        int
	mgr       *Manager
	machine   *micro.Machine
	destroyed bool
	used      bool
}

// Manager creates and tracks containers.
type Manager struct {
	mu        sync.Mutex
	cfg       micro.MachineConfig
	nextID    int
	active    map[int]*Container
	created   int
	destroyed int
}

// NewManager builds a manager whose containers run the given machine
// geometry.
func NewManager(cfg micro.MachineConfig) *Manager {
	return &Manager{cfg: cfg, active: map[int]*Container{}}
}

// Create provisions a fresh container whose machine starts from a clean
// micro-architectural state seeded with seed.
func (m *Manager) Create(seed uint64) *Container {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	c := &Container{id: m.nextID, mgr: m, machine: micro.NewMachine(m.cfg, seed)}
	m.active[c.id] = c
	m.created++
	return c
}

// Machine returns the container's machine, or an error if the container
// has been destroyed.
func (c *Container) Machine() (*micro.Machine, error) {
	if c.destroyed {
		return nil, ErrDestroyed
	}
	c.used = true
	return c.machine, nil
}

// ID returns the container's identifier.
func (c *Container) ID() int { return c.id }

// Destroy tears the container down. Idempotent.
func (c *Container) Destroy() {
	if c.destroyed {
		return
	}
	c.destroyed = true
	c.machine = nil
	c.mgr.mu.Lock()
	delete(c.mgr.active, c.id)
	c.mgr.destroyed++
	c.mgr.mu.Unlock()
}

// RunIsolated provisions a container, hands its machine to fn, and
// destroys the container afterwards regardless of fn's outcome. This is
// the paper's per-run discipline in one call.
func (m *Manager) RunIsolated(seed uint64, fn func(*micro.Machine) error) error {
	return m.RunIsolatedInjected(seed, nil, fn)
}

// RunIsolatedInjected is RunIsolated with an optional fault injector:
// the container may fail at boot (returning an error wrapping
// ErrCrashed) before fn ever runs. The container is destroyed on every
// path, so crashed runs cannot leak. A nil injector behaves exactly
// like RunIsolated.
func (m *Manager) RunIsolatedInjected(seed uint64, inj Injector, fn func(*micro.Machine) error) error {
	c := m.Create(seed)
	defer c.Destroy()
	if inj != nil && inj.BootFails() {
		return fmt.Errorf("lxc: container %d failed to start: %w", c.id, ErrCrashed)
	}
	mach, err := c.Machine()
	if err != nil {
		return fmt.Errorf("lxc: container %d: %w", c.id, err)
	}
	return fn(mach)
}

// Active returns the number of live containers (should be zero between
// collection passes).
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// Stats returns the total containers created and destroyed.
func (m *Manager) Stats() (created, destroyed int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.created, m.destroyed
}

// CheckClean returns an error naming any leaked containers; call it
// after a collection pass to verify the destroy-after-run discipline.
func (m *Manager) CheckClean() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.active) == 0 {
		return nil
	}
	ids := make([]int, 0, len(m.active))
	for id := range m.active {
		ids = append(ids, id)
	}
	return fmt.Errorf("%w: %d container(s): %v", ErrLeaked, len(ids), ids)
}
