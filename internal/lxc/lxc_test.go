package lxc

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/micro"
)

func TestContainerLifecycle(t *testing.T) {
	mgr := NewManager(micro.FastConfig())
	c := mgr.Create(1)
	m, err := c.Machine()
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("nil machine from live container")
	}
	if mgr.Active() != 1 {
		t.Errorf("Active() = %d, want 1", mgr.Active())
	}
	c.Destroy()
	if mgr.Active() != 0 {
		t.Errorf("Active() after destroy = %d, want 0", mgr.Active())
	}
	if _, err := c.Machine(); !errors.Is(err, ErrDestroyed) {
		t.Errorf("using destroyed container: err = %v, want ErrDestroyed", err)
	}
	c.Destroy() // idempotent
	created, destroyed := mgr.Stats()
	if created != 1 || destroyed != 1 {
		t.Errorf("stats = (%d,%d), want (1,1)", created, destroyed)
	}
}

func TestRunIsolatedDestroysOnError(t *testing.T) {
	mgr := NewManager(micro.FastConfig())
	wantErr := errors.New("boom")
	err := mgr.RunIsolated(1, func(m *micro.Machine) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want boom", err)
	}
	if mgr.Active() != 0 {
		t.Error("container leaked after error")
	}
	if err := mgr.CheckClean(); err != nil {
		t.Errorf("CheckClean: %v", err)
	}
}

func TestFreshStatePerContainer(t *testing.T) {
	// The contamination guard: two containers with the same seed must
	// observe identical machine behaviour — no state carries over.
	mgr := NewManager(micro.FastConfig())
	p := micro.StreamParams{
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.1,
		CodeBytes: 8 << 10, HotCodeBytes: 1 << 10, HotCodeFrac: 0.9,
		DataBytes: 64 << 10, HotDataBytes: 8 << 10, HotDataFrac: 0.9,
		StrideFrac: 0.4, TakenFrac: 0.6, BranchBias: 0.95,
		BaseIPC: 2, UopsPerInstr: 1.2,
	}
	var first, second micro.CounterBlock
	run := func(out *micro.CounterBlock) {
		if err := mgr.RunIsolated(42, func(m *micro.Machine) error {
			m.Run(&p, 3000)
			*out = m.Counters()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	run(&first)
	// Pollute with a different, malware-ish run in between.
	_ = mgr.RunIsolated(999, func(m *micro.Machine) error {
		q := p
		q.BranchFrac = 0.3
		q.LoadFrac = 0.2
		m.Run(&q, 5000)
		return nil
	})
	run(&second)
	if first != second {
		t.Fatal("container state contaminated across runs")
	}
}

func TestCheckCleanReportsLeaks(t *testing.T) {
	mgr := NewManager(micro.FastConfig())
	c := mgr.Create(1)
	if err := mgr.CheckClean(); !errors.Is(err, ErrLeaked) {
		t.Fatalf("CheckClean: %v, want ErrLeaked", err)
	}
	c.Destroy()
	if err := mgr.CheckClean(); err != nil {
		t.Fatalf("CheckClean after destroy: %v", err)
	}
}

func TestManagerConcurrentUse(t *testing.T) {
	mgr := NewManager(micro.FastConfig())
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			_ = mgr.RunIsolated(seed, func(m *micro.Machine) error { return nil })
		}(uint64(i))
	}
	wg.Wait()
	created, destroyed := mgr.Stats()
	if created != 16 || destroyed != 16 {
		t.Errorf("stats = (%d,%d), want (16,16)", created, destroyed)
	}
	if mgr.Active() != 0 {
		t.Error("containers leaked under concurrency")
	}
}

func TestContainerIDsUnique(t *testing.T) {
	mgr := NewManager(micro.FastConfig())
	a, b := mgr.Create(1), mgr.Create(1)
	if a.ID() == b.ID() {
		t.Error("container IDs must be unique")
	}
	a.Destroy()
	b.Destroy()
}

// bootKiller is a test Injector that fails the first n boots.
type bootKiller struct{ left int }

func (b *bootKiller) BootFails() bool {
	if b.left > 0 {
		b.left--
		return true
	}
	return false
}

func TestRunIsolatedInjectedBootCrash(t *testing.T) {
	mgr := NewManager(micro.FastConfig())
	inj := &bootKiller{left: 1}

	ran := false
	err := mgr.RunIsolatedInjected(1, inj, func(m *micro.Machine) error {
		ran = true
		return nil
	})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("boot crash err = %v, want ErrCrashed", err)
	}
	if ran {
		t.Fatal("fn ran despite boot crash")
	}
	if mgr.Active() != 0 {
		t.Fatal("crashed container leaked")
	}

	// Second attempt boots fine (the injector's crash budget is spent).
	if err := mgr.RunIsolatedInjected(1, inj, func(m *micro.Machine) error { return nil }); err != nil {
		t.Fatalf("retry after boot crash: %v", err)
	}
	if err := mgr.CheckClean(); err != nil {
		t.Fatal(err)
	}
}

func TestRunIsolatedInjectedNilInjector(t *testing.T) {
	mgr := NewManager(micro.FastConfig())
	if err := mgr.RunIsolatedInjected(1, nil, func(m *micro.Machine) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
