package dataset

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/micro"
)

// randSet builds a dataset from fuzz parameters, returning nil when the
// parameters don't describe a usable set.
func randSet(rows, attrs uint8, seed uint64) *Instances {
	nr := int(rows%40) + 4
	na := int(attrs%6) + 1
	names := make([]string, na)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	d := New(names, BinaryClassNames())
	rng := micro.NewRNG(seed | 1)
	for i := 0; i < nr; i++ {
		y := i % 2
		x := make([]float64, na)
		for j := range x {
			x[j] = rng.Float64() * 100
		}
		g := "b0"
		if y == 1 {
			g = "m0"
		}
		if i%4 >= 2 { // two groups per class
			g += "x"
		}
		_ = d.Add(x, y, g)
	}
	return d
}

// TestPropertySelectPreservesRows: any column selection keeps row
// count, labels and groups intact, and values match the source.
func TestPropertySelectPreservesRows(t *testing.T) {
	f := func(rows, attrs uint8, seed uint64, colPick uint8) bool {
		d := randSet(rows, attrs, seed)
		col := int(colPick) % d.NumAttrs()
		s, err := d.Select([]int{col})
		if err != nil {
			return false
		}
		if s.NumRows() != d.NumRows() || s.NumAttrs() != 1 {
			return false
		}
		for i := range d.X {
			if s.X[i][0] != d.X[i][col] || s.Y[i] != d.Y[i] || s.Groups[i] != d.Groups[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertySplitPartition: SplitByGroup partitions rows exactly and
// never shares a group between sides.
func TestPropertySplitPartition(t *testing.T) {
	f := func(rows uint8, seed uint64) bool {
		d := randSet(rows, 2, seed)
		train, test, err := d.SplitByGroup(0.5, seed)
		if err != nil {
			return false
		}
		if train.NumRows()+test.NumRows() != d.NumRows() {
			return false
		}
		inTrain := map[string]bool{}
		for _, g := range train.Groups {
			inTrain[g] = true
		}
		for _, g := range test.Groups {
			if inTrain[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyShufflePreservesMultiset: shuffling never loses or
// duplicates rows.
func TestPropertyShufflePreservesMultiset(t *testing.T) {
	f := func(rows uint8, seed, shufSeed uint64) bool {
		d := randSet(rows, 3, seed)
		sumBefore := 0.0
		for i := range d.X {
			sumBefore += d.X[i][0] + float64(d.Y[i])
		}
		d.Shuffle(shufSeed)
		sumAfter := 0.0
		for i := range d.X {
			sumAfter += d.X[i][0] + float64(d.Y[i])
		}
		diff := sumBefore - sumAfter
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFoldsPartition: SplitFolds always partitions the rows
// with balanced fold sizes.
func TestPropertyFoldsPartition(t *testing.T) {
	f := func(rows uint8, k uint8, seed uint64) bool {
		d := randSet(rows, 2, seed)
		folds := d.SplitFolds(int(k%5)+2, seed)
		total, minSz, maxSz := 0, 1<<30, 0
		for _, fd := range folds {
			total += fd.NumRows()
			if fd.NumRows() < minSz {
				minSz = fd.NumRows()
			}
			if fd.NumRows() > maxSz {
				maxSz = fd.NumRows()
			}
		}
		return total == d.NumRows() && maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyARFFRoundTrip: serialisation round-trips arbitrary
// datasets exactly (values are finite decimals from Float64, which
// strconv formats losslessly).
func TestPropertyARFFRoundTrip(t *testing.T) {
	f := func(rows, attrs uint8, seed uint64) bool {
		d := randSet(rows, attrs, seed)
		var buf bytes.Buffer
		if err := d.WriteARFF(&buf, "prop"); err != nil {
			return false
		}
		got, err := ReadARFF(&buf)
		if err != nil {
			return false
		}
		if got.NumRows() != d.NumRows() || got.NumAttrs() != d.NumAttrs() {
			return false
		}
		for i := range d.X {
			if got.Y[i] != d.Y[i] || got.Groups[i] != d.Groups[i] {
				return false
			}
			for j := range d.X[i] {
				if got.X[i][j] != d.X[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
