package dataset

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// AttrSummary holds descriptive statistics for one attribute.
type AttrSummary struct {
	Name   string
	Min    float64
	Max    float64
	Mean   float64
	Std    float64
	Median float64
	// ClassMeans holds the per-class attribute means (index = class).
	ClassMeans []float64
}

// Describe computes per-attribute descriptive statistics, the
// data-quality view an analyst inspects before training.
func (d *Instances) Describe() []AttrSummary {
	n := d.NumRows()
	out := make([]AttrSummary, d.NumAttrs())
	for j := range out {
		s := AttrSummary{
			Name:       d.Attributes[j].Name,
			Min:        math.Inf(1),
			Max:        math.Inf(-1),
			ClassMeans: make([]float64, d.NumClasses()),
		}
		if n == 0 {
			s.Min, s.Max = 0, 0
			out[j] = s
			continue
		}
		classN := make([]int, d.NumClasses())
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			v := d.X[i][j]
			vals[i] = v
			s.Mean += v
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
			s.ClassMeans[d.Y[i]] += v
			classN[d.Y[i]]++
		}
		s.Mean /= float64(n)
		for c := range s.ClassMeans {
			if classN[c] > 0 {
				s.ClassMeans[c] /= float64(classN[c])
			}
		}
		for i := 0; i < n; i++ {
			dv := vals[i] - s.Mean
			s.Std += dv * dv
		}
		s.Std = math.Sqrt(s.Std / float64(n))
		sort.Float64s(vals)
		if n%2 == 1 {
			s.Median = vals[n/2]
		} else {
			s.Median = (vals[n/2-1] + vals[n/2]) / 2
		}
		out[j] = s
	}
	return out
}

// WriteSummary renders Describe as an aligned text table.
func (d *Instances) WriteSummary(w io.Writer) error {
	counts := d.ClassCounts()
	if _, err := fmt.Fprintf(w, "%d rows, %d attributes, classes:", d.NumRows(), d.NumAttrs()); err != nil {
		return err
	}
	for c, name := range d.ClassNames {
		fmt.Fprintf(w, " %s=%d", name, counts[c])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-28s %12s %12s %12s %12s %12s\n", "attribute", "min", "median", "mean", "max", "std")
	for _, s := range d.Describe() {
		fmt.Fprintf(w, "%-28s %12.1f %12.1f %12.1f %12.1f %12.1f\n",
			s.Name, s.Min, s.Median, s.Mean, s.Max, s.Std)
	}
	return nil
}
