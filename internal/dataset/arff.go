package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteARFF serialises the dataset in WEKA's ARFF format. The source
// application of each row is carried in an initial string attribute
// named "app" so that a round-trip preserves group structure; the class
// is the final nominal attribute, as WEKA expects.
func (d *Instances) WriteARFF(w io.Writer, relation string) error {
	bw := bufio.NewWriter(w)
	if relation == "" {
		relation = "hpc-malware"
	}
	fmt.Fprintf(bw, "@relation %s\n\n", relation)
	fmt.Fprintf(bw, "@attribute app string\n")
	for _, a := range d.Attributes {
		fmt.Fprintf(bw, "@attribute %s numeric\n", a.Name)
	}
	fmt.Fprintf(bw, "@attribute class {%s}\n\n", strings.Join(d.ClassNames, ","))
	fmt.Fprintln(bw, "@data")
	for i, row := range d.X {
		fmt.Fprintf(bw, "'%s'", d.Groups[i])
		for _, v := range row {
			fmt.Fprintf(bw, ",%s", strconv.FormatFloat(v, 'g', -1, 64))
		}
		fmt.Fprintf(bw, ",%s\n", d.ClassNames[d.Y[i]])
	}
	return bw.Flush()
}

// ReadARFF parses a dataset previously produced by WriteARFF (a strict
// subset of ARFF: one string "app" attribute, numeric features, and a
// final nominal class attribute).
func ReadARFF(r io.Reader) (*Instances, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var attrNames []string
	var classNames []string
	sawApp := false
	inData := false
	var d *Instances

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		lower := strings.ToLower(line)
		switch {
		case strings.HasPrefix(lower, "@relation"):
			// Ignored.
		case strings.HasPrefix(lower, "@attribute"):
			if inData {
				return nil, fmt.Errorf("dataset: line %d: attribute after @data", lineNo)
			}
			rest := strings.TrimSpace(line[len("@attribute"):])
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				return nil, fmt.Errorf("dataset: line %d: malformed attribute", lineNo)
			}
			name := fields[0]
			spec := strings.TrimSpace(rest[len(name):])
			switch {
			case strings.EqualFold(spec, "string"):
				if name != "app" {
					return nil, fmt.Errorf("dataset: line %d: unexpected string attribute %q", lineNo, name)
				}
				sawApp = true
			case strings.EqualFold(spec, "numeric"):
				attrNames = append(attrNames, name)
			case strings.HasPrefix(spec, "{") && strings.HasSuffix(spec, "}"):
				if name != "class" {
					return nil, fmt.Errorf("dataset: line %d: nominal attribute %q is not the class", lineNo, name)
				}
				inner := spec[1 : len(spec)-1]
				for _, c := range strings.Split(inner, ",") {
					classNames = append(classNames, strings.TrimSpace(c))
				}
			default:
				return nil, fmt.Errorf("dataset: line %d: unsupported attribute type %q", lineNo, spec)
			}
		case strings.HasPrefix(lower, "@data"):
			if len(classNames) == 0 {
				return nil, fmt.Errorf("dataset: line %d: @data before class attribute", lineNo)
			}
			d = New(attrNames, classNames)
			inData = true
		default:
			if !inData {
				return nil, fmt.Errorf("dataset: line %d: data before @data", lineNo)
			}
			if err := parseARFFRow(d, line, sawApp); err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if d == nil {
		return nil, fmt.Errorf("dataset: no @data section")
	}
	return d, nil
}

func parseARFFRow(d *Instances, line string, sawApp bool) error {
	parts := splitARFF(line)
	want := len(d.Attributes) + 1
	if sawApp {
		want++
	}
	if len(parts) != want {
		return fmt.Errorf("row has %d fields, want %d", len(parts), want)
	}
	group := ""
	if sawApp {
		group = strings.Trim(parts[0], "'\"")
		parts = parts[1:]
	}
	x := make([]float64, len(d.Attributes))
	for i := 0; i < len(d.Attributes); i++ {
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
		if err != nil {
			return fmt.Errorf("bad numeric value %q", parts[i])
		}
		x[i] = v
	}
	cls := strings.TrimSpace(parts[len(parts)-1])
	y := -1
	for ci, cn := range d.ClassNames {
		if cn == cls {
			y = ci
			break
		}
	}
	if y < 0 {
		return fmt.Errorf("unknown class %q", cls)
	}
	return d.Add(x, y, group)
}

// splitARFF splits a data row on commas, honouring single-quoted
// fields (app names may contain commas in principle).
func splitARFF(line string) []string {
	var parts []string
	var cur strings.Builder
	quoted := false
	for _, r := range line {
		switch {
		case r == '\'':
			quoted = !quoted
			cur.WriteRune(r)
		case r == ',' && !quoted:
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	parts = append(parts, cur.String())
	return parts
}

// WriteCSV serialises the dataset as CSV with a header row:
// app,<attr...>,class.
func (d *Instances) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(d.Attributes)+2)
	header = append(header, "app")
	for _, a := range d.Attributes {
		header = append(header, a.Name)
	}
	header = append(header, "class")
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i, row := range d.X {
		rec[0] = d.Groups[i]
		for j, v := range row {
			rec[j+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[len(rec)-1] = d.ClassNames[d.Y[i]]
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously produced by WriteCSV. Class names
// are taken in order of first appearance unless classNames is supplied.
func ReadCSV(r io.Reader, classNames []string) (*Instances, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %v", err)
	}
	if len(header) < 3 || header[0] != "app" || header[len(header)-1] != "class" {
		return nil, fmt.Errorf("dataset: CSV header must be app,<attrs...>,class")
	}
	attrs := header[1 : len(header)-1]

	// First pass: read all records and establish the class vocabulary
	// (order of first appearance when not supplied explicitly).
	var records [][]string
	known := append([]string(nil), classNames...)
	classIdx := map[string]int{}
	for i, c := range known {
		classIdx[c] = i
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		cls := rec[len(rec)-1]
		if _, ok := classIdx[cls]; !ok {
			if len(classNames) > 0 {
				return nil, fmt.Errorf("dataset: row %d: unknown class %q", len(records)+1, cls)
			}
			classIdx[cls] = len(known)
			known = append(known, cls)
		}
		records = append(records, rec)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: empty CSV")
	}

	d := New(attrs, known)
	for rowNo, rec := range records {
		x := make([]float64, len(attrs))
		for i := range attrs {
			v, err := strconv.ParseFloat(rec[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d: bad value %q", rowNo+1, rec[i+1])
			}
			x[i] = v
		}
		if err := d.Add(x, classIdx[rec[len(rec)-1]], rec[0]); err != nil {
			return nil, err
		}
	}
	return d, nil
}
