package dataset

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// tiny builds a small two-class dataset with group structure.
func tiny(t *testing.T) *Instances {
	t.Helper()
	d := New([]string{"f1", "f2", "f3"}, BinaryClassNames())
	apps := []struct {
		name string
		y    int
	}{
		{"benign-a", 0}, {"benign-b", 0}, {"benign-c", 0}, {"benign-d", 0}, {"benign-e", 0},
		{"mal-a", 1}, {"mal-b", 1}, {"mal-c", 1}, {"mal-d", 1}, {"mal-e", 1},
	}
	for ai, app := range apps {
		for s := 0; s < 4; s++ {
			x := []float64{float64(ai), float64(s), float64(ai*10 + s)}
			if err := d.Add(x, app.y, app.name); err != nil {
				t.Fatal(err)
			}
		}
	}
	return d
}

func TestAddValidation(t *testing.T) {
	d := New([]string{"a"}, BinaryClassNames())
	if err := d.Add([]float64{1, 2}, 0, "g"); err == nil {
		t.Error("wrong row width should fail")
	}
	if err := d.Add([]float64{1}, 5, "g"); err == nil {
		t.Error("bad class index should fail")
	}
	if err := d.Add([]float64{1}, 1, "g"); err != nil {
		t.Errorf("valid add failed: %v", err)
	}
}

func TestSelect(t *testing.T) {
	d := tiny(t)
	s, err := d.Select([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumAttrs() != 2 || s.Attributes[0].Name != "f3" || s.Attributes[1].Name != "f1" {
		t.Fatal("selected schema wrong")
	}
	if s.NumRows() != d.NumRows() {
		t.Fatal("row count changed")
	}
	if s.X[5][0] != d.X[5][2] || s.X[5][1] != d.X[5][0] {
		t.Fatal("selected values wrong")
	}
	if _, err := d.Select([]int{9}); err == nil {
		t.Error("out-of-range column should fail")
	}

	byName, err := d.SelectNames([]string{"f2"})
	if err != nil || byName.Attributes[0].Name != "f2" {
		t.Fatal("SelectNames failed")
	}
	if _, err := d.SelectNames([]string{"zzz"}); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := tiny(t)
	c := d.Clone()
	c.X[0][0] = 999
	c.Y[0] = 1
	if d.X[0][0] == 999 || d.Y[0] == 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestSplitByGroupProtocol(t *testing.T) {
	d := tiny(t)
	train, test, err := d.SplitByGroup(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumRows()+test.NumRows() != d.NumRows() {
		t.Fatal("split lost rows")
	}
	// No group may appear on both sides.
	trainGroups := map[string]bool{}
	for _, g := range train.Groups {
		trainGroups[g] = true
	}
	for _, g := range test.Groups {
		if trainGroups[g] {
			t.Fatalf("group %q appears in both train and test", g)
		}
	}
	// Stratified: both sides contain both classes.
	for name, part := range map[string]*Instances{"train": train, "test": test} {
		counts := part.ClassCounts()
		if counts[0] == 0 || counts[1] == 0 {
			t.Errorf("%s split missing a class: %v", name, counts)
		}
	}
	// 70% of 5 groups per class = 3.5 -> 4 train, 1 test (x4 samples).
	if len(train.Groups) <= len(test.Groups) {
		t.Error("train split should be larger")
	}
}

func TestSplitByGroupDeterminism(t *testing.T) {
	d := tiny(t)
	tr1, te1, _ := d.SplitByGroup(0.7, 9)
	tr2, te2, _ := d.SplitByGroup(0.7, 9)
	if tr1.NumRows() != tr2.NumRows() || te1.NumRows() != te2.NumRows() {
		t.Fatal("same seed produced different splits")
	}
	for i := range tr1.Groups {
		if tr1.Groups[i] != tr2.Groups[i] {
			t.Fatal("same seed produced different group assignment")
		}
	}
}

func TestSplitByGroupErrors(t *testing.T) {
	d := tiny(t)
	if _, _, err := d.SplitByGroup(0, 1); err == nil {
		t.Error("trainFrac 0 should fail")
	}
	if _, _, err := d.SplitByGroup(1, 1); err == nil {
		t.Error("trainFrac 1 should fail")
	}
	bad := New([]string{"a"}, BinaryClassNames())
	_ = bad.Add([]float64{1}, 0, "")
	if _, _, err := bad.SplitByGroup(0.7, 1); err == nil {
		t.Error("missing group labels should fail")
	}
	mixed := New([]string{"a"}, BinaryClassNames())
	_ = mixed.Add([]float64{1}, 0, "g")
	_ = mixed.Add([]float64{2}, 1, "g")
	if _, _, err := mixed.SplitByGroup(0.7, 1); err == nil {
		t.Error("class-impure group should fail")
	}
}

func TestSplitFolds(t *testing.T) {
	d := tiny(t)
	folds := d.SplitFolds(3, 5)
	if len(folds) != 3 {
		t.Fatalf("got %d folds", len(folds))
	}
	total := 0
	for _, f := range folds {
		total += f.NumRows()
	}
	if total != d.NumRows() {
		t.Fatal("folds lost rows")
	}
	// Sizes within 1 of each other.
	if diff := folds[0].NumRows() - folds[2].NumRows(); diff < 0 || diff > 1 {
		t.Errorf("unbalanced folds: %d vs %d", folds[0].NumRows(), folds[2].NumRows())
	}
	one := d.SplitFolds(1, 5)
	if len(one) != 1 || one[0].NumRows() != d.NumRows() {
		t.Error("k=1 should return a full copy")
	}
}

func TestMerge(t *testing.T) {
	d := tiny(t)
	a := d.Clone()
	b := d.Clone()
	m, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 2*d.NumRows() {
		t.Fatal("merge row count wrong")
	}
	bad := New([]string{"x", "y"}, BinaryClassNames())
	if _, err := a.Merge(bad); err == nil {
		t.Error("schema mismatch should fail")
	}
}

func TestShuffleKeepsAlignment(t *testing.T) {
	d := tiny(t)
	// Build an oracle: feature f1 encodes the app index, which maps to
	// the class; shuffling must keep x/y/group rows aligned.
	d.Shuffle(77)
	for i := range d.X {
		ai := int(d.X[i][0])
		wantMal := ai >= 5
		if (d.Y[i] == 1) != wantMal {
			t.Fatal("shuffle misaligned X and Y")
		}
		if wantMal && !strings.HasPrefix(d.Groups[i], "mal") {
			t.Fatal("shuffle misaligned groups")
		}
	}
}

func TestARFFRoundTrip(t *testing.T) {
	d := tiny(t)
	var buf bytes.Buffer
	if err := d.WriteARFF(&buf, "unit-test"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadARFF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualData(t, d, got)
}

func TestARFFParseErrors(t *testing.T) {
	cases := map[string]string{
		"no data":        "@relation r\n@attribute a numeric\n@attribute class {x,y}\n",
		"data early":     "@relation r\n1,x\n",
		"bad attr":       "@relation r\n@attribute broken\n",
		"bad class name": "@relation r\n@attribute a numeric\n@attribute notclass {x,y}\n@data\n1,x\n",
		"bad value":      "@relation r\n@attribute a numeric\n@attribute class {x,y}\n@data\nfoo,x\n",
		"bad class":      "@relation r\n@attribute a numeric\n@attribute class {x,y}\n@data\n1,z\n",
		"short row":      "@relation r\n@attribute a numeric\n@attribute b numeric\n@attribute class {x,y}\n@data\n1,x\n",
	}
	for name, text := range cases {
		if _, err := ReadARFF(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := tiny(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, BinaryClassNames())
	if err != nil {
		t.Fatal(err)
	}
	assertEqualData(t, d, got)

	// Implicit class vocabulary (order of first appearance).
	var buf2 bytes.Buffer
	_ = d.WriteCSV(&buf2)
	got2, err := ReadCSV(&buf2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got2.NumRows() != d.NumRows() {
		t.Fatal("implicit-class CSV read lost rows")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("x,y\n"), nil); err == nil {
		t.Error("bad header should fail")
	}
	if _, err := ReadCSV(strings.NewReader("app,a,class\n"), nil); err == nil {
		t.Error("empty body should fail")
	}
	if _, err := ReadCSV(strings.NewReader("app,a,class\ng,zz,benign\n"), nil); err == nil {
		t.Error("bad numeric should fail")
	}
	if _, err := ReadCSV(strings.NewReader("app,a,class\ng,1,weird\n"), BinaryClassNames()); err == nil {
		t.Error("unknown class with explicit vocabulary should fail")
	}
}

func assertEqualData(t *testing.T, want, got *Instances) {
	t.Helper()
	if got.NumRows() != want.NumRows() || got.NumAttrs() != want.NumAttrs() {
		t.Fatalf("shape mismatch: got %dx%d want %dx%d",
			got.NumRows(), got.NumAttrs(), want.NumRows(), want.NumAttrs())
	}
	for i := range want.Attributes {
		if got.Attributes[i].Name != want.Attributes[i].Name {
			t.Fatalf("attribute %d name %q != %q", i, got.Attributes[i].Name, want.Attributes[i].Name)
		}
	}
	for i := range want.X {
		if got.Y[i] != want.Y[i] || got.Groups[i] != want.Groups[i] {
			t.Fatalf("row %d label/group mismatch", i)
		}
		for j := range want.X[i] {
			if got.X[i][j] != want.X[i][j] {
				t.Fatalf("row %d col %d: %v != %v", i, j, got.X[i][j], want.X[i][j])
			}
		}
	}
}

func TestClassCountsAndIndex(t *testing.T) {
	d := tiny(t)
	counts := d.ClassCounts()
	if counts[0] != 20 || counts[1] != 20 {
		t.Errorf("counts = %v, want [20 20]", counts)
	}
	if i, ok := d.AttrIndex("f2"); !ok || i != 1 {
		t.Error("AttrIndex failed")
	}
	if _, ok := d.AttrIndex("nope"); ok {
		t.Error("AttrIndex should miss")
	}
	if d.NumClasses() != 2 {
		t.Error("NumClasses wrong")
	}
}

func TestLargeGroupSplitRatio(t *testing.T) {
	// With 20 groups per class the 70/30 split should be close to 70%.
	d := New([]string{"v"}, BinaryClassNames())
	for c := 0; c < 2; c++ {
		for g := 0; g < 20; g++ {
			name := fmt.Sprintf("c%dg%02d", c, g)
			for s := 0; s < 3; s++ {
				_ = d.Add([]float64{float64(s)}, c, name)
			}
		}
	}
	train, test, err := d.SplitByGroup(0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(train.NumRows()) / float64(train.NumRows()+test.NumRows())
	if frac < 0.65 || frac > 0.75 {
		t.Errorf("train fraction = %.3f, want approx 0.70", frac)
	}
	_ = test
}
