package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestDescribe(t *testing.T) {
	d := New([]string{"v"}, BinaryClassNames())
	for i, v := range []float64{1, 2, 3, 4, 5} {
		y := 0
		if v >= 4 {
			y = 1
		}
		g := "b"
		if y == 1 {
			g = "m"
		}
		_ = d.Add([]float64{v}, y, g)
		_ = i
	}
	s := d.Describe()[0]
	if s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("min/median/max = %v/%v/%v", s.Min, s.Median, s.Max)
	}
	if math.Abs(s.Mean-3) > 1e-12 {
		t.Errorf("mean = %v", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("std = %v, want sqrt(2)", s.Std)
	}
	if math.Abs(s.ClassMeans[0]-2) > 1e-12 || math.Abs(s.ClassMeans[1]-4.5) > 1e-12 {
		t.Errorf("class means = %v", s.ClassMeans)
	}
}

func TestDescribeEvenMedian(t *testing.T) {
	d := New([]string{"v"}, BinaryClassNames())
	for _, v := range []float64{1, 2, 3, 4} {
		_ = d.Add([]float64{v}, 0, "b")
	}
	if m := d.Describe()[0].Median; m != 2.5 {
		t.Errorf("even-count median = %v, want 2.5", m)
	}
}

func TestDescribeEmpty(t *testing.T) {
	d := New([]string{"v"}, BinaryClassNames())
	s := d.Describe()[0]
	if s.Min != 0 || s.Max != 0 {
		t.Error("empty dataset should describe as zeros")
	}
}

func TestWriteSummary(t *testing.T) {
	d := New([]string{"alpha", "beta"}, BinaryClassNames())
	_ = d.Add([]float64{1, 10}, 0, "b")
	_ = d.Add([]float64{3, 30}, 1, "m")
	var buf bytes.Buffer
	if err := d.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"2 rows", "alpha", "beta", "benign=1", "malware=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}
