// Package dataset holds labelled feature-vector collections and the
// split/serialisation machinery the detection pipeline is built on.
//
// An Instances value is the Go analogue of a WEKA dataset: a list of
// named numeric attributes, rows of feature values, a nominal class per
// row, and — important for the paper's methodology — the application
// each row was sampled from, so the 70/30 train/test split can be made
// at application level ("known" vs "unknown" programs) rather than
// sample level.
package dataset

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/micro"
)

// Attribute is one named numeric feature.
type Attribute struct {
	Name string
}

// Instances is a labelled dataset.
type Instances struct {
	Attributes []Attribute
	ClassNames []string // class index -> name, e.g. ["benign", "malware"]

	X      [][]float64 // rows of feature values
	Y      []int       // class index per row
	Groups []string    // source application per row ("" if unknown)
}

// New creates an empty dataset with the given attribute and class names.
func New(attrNames, classNames []string) *Instances {
	attrs := make([]Attribute, len(attrNames))
	for i, n := range attrNames {
		attrs[i] = Attribute{Name: n}
	}
	return &Instances{
		Attributes: attrs,
		ClassNames: append([]string(nil), classNames...),
	}
}

// NewWithCapacity is New with row storage preallocated for rows
// instances, for callers (cross-validation fold building, resampling)
// that know the final size up front.
func NewWithCapacity(attrNames, classNames []string, rows int) *Instances {
	d := New(attrNames, classNames)
	d.X = make([][]float64, 0, rows)
	d.Y = make([]int, 0, rows)
	d.Groups = make([]string, 0, rows)
	return d
}

// AddShared appends one labelled row without validation or copying: the
// dataset aliases x. For internal fold/partition building from rows
// already validated by an Instances — callers must not mutate x
// afterwards.
func (d *Instances) AddShared(x []float64, y int, group string) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
	d.Groups = append(d.Groups, group)
}

// BinaryClassNames is the paper's class vocabulary.
func BinaryClassNames() []string { return []string{"benign", "malware"} }

// Add appends one labelled row. The row length must match the attribute
// count and the class index must be valid.
func (d *Instances) Add(x []float64, y int, group string) error {
	if len(x) != len(d.Attributes) {
		return fmt.Errorf("dataset: row has %d values, want %d", len(x), len(d.Attributes))
	}
	if y < 0 || y >= len(d.ClassNames) {
		return fmt.Errorf("dataset: class index %d out of range", y)
	}
	d.X = append(d.X, append([]float64(nil), x...))
	d.Y = append(d.Y, y)
	d.Groups = append(d.Groups, group)
	return nil
}

// NumRows returns the number of instances.
func (d *Instances) NumRows() int { return len(d.X) }

// NumAttrs returns the number of feature attributes.
func (d *Instances) NumAttrs() int { return len(d.Attributes) }

// NumClasses returns the number of classes.
func (d *Instances) NumClasses() int { return len(d.ClassNames) }

// ClassCounts returns the number of rows per class.
func (d *Instances) ClassCounts() []int {
	counts := make([]int, len(d.ClassNames))
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// AttrIndex returns the index of the named attribute.
func (d *Instances) AttrIndex(name string) (int, bool) {
	for i, a := range d.Attributes {
		if a.Name == name {
			return i, true
		}
	}
	return -1, false
}

// Select returns a new dataset containing only the given attribute
// columns (in the given order). Rows, labels and groups are copied.
func (d *Instances) Select(cols []int) (*Instances, error) {
	for _, c := range cols {
		if c < 0 || c >= len(d.Attributes) {
			return nil, fmt.Errorf("dataset: column %d out of range", c)
		}
	}
	out := &Instances{
		Attributes: make([]Attribute, len(cols)),
		ClassNames: append([]string(nil), d.ClassNames...),
		X:          make([][]float64, len(d.X)),
		Y:          append([]int(nil), d.Y...),
		Groups:     append([]string(nil), d.Groups...),
	}
	for i, c := range cols {
		out.Attributes[i] = d.Attributes[c]
	}
	for r, row := range d.X {
		nr := make([]float64, len(cols))
		for i, c := range cols {
			nr[i] = row[c]
		}
		out.X[r] = nr
	}
	return out, nil
}

// SelectNames is Select keyed by attribute names.
func (d *Instances) SelectNames(names []string) (*Instances, error) {
	cols := make([]int, len(names))
	for i, n := range names {
		c, ok := d.AttrIndex(n)
		if !ok {
			return nil, fmt.Errorf("dataset: unknown attribute %q", n)
		}
		cols[i] = c
	}
	return d.Select(cols)
}

// Clone deep-copies the dataset.
func (d *Instances) Clone() *Instances {
	cols := make([]int, len(d.Attributes))
	for i := range cols {
		cols[i] = i
	}
	c, _ := d.Select(cols)
	return c
}

// Shuffle permutes rows deterministically with the given seed.
func (d *Instances) Shuffle(seed uint64) {
	rng := micro.NewRNG(seed)
	n := len(d.X)
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
		d.Groups[i], d.Groups[j] = d.Groups[j], d.Groups[i]
	}
}

// SplitByGroup partitions rows into train and test sets at the group
// (application) level, stratified by class: trainFrac of each class's
// groups go to training, the rest to test. This reproduces the paper's
// "70% benign + 70% malware applications for training (known
// applications), 30%+30% for testing (unknown applications)" protocol —
// no application contributes samples to both sides.
func (d *Instances) SplitByGroup(trainFrac float64, seed uint64) (train, test *Instances, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, errors.New("dataset: trainFrac must be in (0,1)")
	}
	// Map each group to its class (groups must be class-pure).
	groupClass := map[string]int{}
	for i, g := range d.Groups {
		if g == "" {
			return nil, nil, errors.New("dataset: SplitByGroup requires group labels on every row")
		}
		if prev, ok := groupClass[g]; ok && prev != d.Y[i] {
			return nil, nil, fmt.Errorf("dataset: group %q contains multiple classes", g)
		}
		groupClass[g] = d.Y[i]
	}

	// Deterministic per-class shuffle of group names.
	byClass := make(map[int][]string)
	for g, c := range groupClass {
		byClass[c] = append(byClass[c], g)
	}
	inTrain := map[string]bool{}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	rng := micro.NewRNG(seed)
	for _, c := range classes {
		groups := byClass[c]
		sort.Strings(groups)
		for i := len(groups) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			groups[i], groups[j] = groups[j], groups[i]
		}
		nTrain := int(float64(len(groups))*trainFrac + 0.5)
		if nTrain == 0 {
			nTrain = 1
		}
		if nTrain >= len(groups) && len(groups) > 1 {
			nTrain = len(groups) - 1
		}
		for i, g := range groups {
			if i < nTrain {
				inTrain[g] = true
			}
		}
	}

	train = New(attrNames(d), d.ClassNames)
	test = New(attrNames(d), d.ClassNames)
	for i := range d.X {
		target := test
		if inTrain[d.Groups[i]] {
			target = train
		}
		if err := target.Add(d.X[i], d.Y[i], d.Groups[i]); err != nil {
			return nil, nil, err
		}
	}
	return train, test, nil
}

// SplitFolds partitions rows into k row-level folds (round-robin after
// a deterministic shuffle), used internally by classifiers that need
// grow/prune splits.
func (d *Instances) SplitFolds(k int, seed uint64) []*Instances {
	if k <= 1 {
		return []*Instances{d.Clone()}
	}
	idx := make([]int, len(d.X))
	for i := range idx {
		idx[i] = i
	}
	rng := micro.NewRNG(seed)
	for i := len(idx) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
	folds := make([]*Instances, k)
	for f := range folds {
		folds[f] = New(attrNames(d), d.ClassNames)
	}
	for pos, i := range idx {
		f := folds[pos%k]
		_ = f.Add(d.X[i], d.Y[i], d.Groups[i])
	}
	return folds
}

// Merge appends all rows of other (same schema) to a copy of d.
func (d *Instances) Merge(other *Instances) (*Instances, error) {
	if len(other.Attributes) != len(d.Attributes) {
		return nil, errors.New("dataset: schema mismatch in Merge")
	}
	out := d.Clone()
	for i := range other.X {
		if err := out.Add(other.X[i], other.Y[i], other.Groups[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func attrNames(d *Instances) []string {
	names := make([]string, len(d.Attributes))
	for i, a := range d.Attributes {
		names[i] = a.Name
	}
	return names
}
