// Package eval implements the paper's evaluation metrics: detection
// accuracy (§4.1), ROC curves and AUC for classification robustness
// (§4.2), and the combined ACC×AUC performance metric (§4.3).
package eval

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/mlearn"
)

// Confusion is a binary confusion matrix (class 1 = malware =
// positive).
type Confusion struct {
	TP, FP, TN, FN int
}

// Accuracy returns (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Precision returns TP/(TP+FP).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns the true-positive rate TP/(TP+FN).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR returns the false-positive rate FP/(FP+TN).
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String formats the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d", c.TP, c.FP, c.TN, c.FN)
}

// Evaluate runs c over every row of test and returns the confusion
// matrix.
func Evaluate(c mlearn.Classifier, test *dataset.Instances) (Confusion, error) {
	if test.NumClasses() != 2 {
		return Confusion{}, errors.New("eval: binary classification only")
	}
	var cm Confusion
	scratch := make([]float64, test.NumClasses())
	for i := range test.X {
		pred := mlearn.PredictWith(c, test.X[i], scratch)
		switch {
		case pred == 1 && test.Y[i] == 1:
			cm.TP++
		case pred == 1 && test.Y[i] == 0:
			cm.FP++
		case pred == 0 && test.Y[i] == 0:
			cm.TN++
		default:
			cm.FN++
		}
	}
	return cm, nil
}

// Accuracy is a convenience wrapper returning only the accuracy.
func Accuracy(c mlearn.Classifier, test *dataset.Instances) (float64, error) {
	cm, err := Evaluate(c, test)
	if err != nil {
		return 0, err
	}
	return cm.Accuracy(), nil
}

// ROCPoint is one operating point of a classifier.
type ROCPoint struct {
	FPR, TPR  float64
	Threshold float64
}

// ROC holds a full receiver-operating-characteristic curve.
type ROC struct {
	Points []ROCPoint // ordered from (0,0) to (1,1)
}

// BuildROC scores every test row with P(malware) and sweeps the
// decision threshold, producing one point per distinct score plus the
// two trivial endpoints.
func BuildROC(c mlearn.Classifier, test *dataset.Instances) (*ROC, error) {
	if test.NumClasses() != 2 {
		return nil, errors.New("eval: binary classification only")
	}
	type scored struct {
		s   float64
		pos bool
	}
	items := make([]scored, 0, test.NumRows())
	nPos, nNeg := 0, 0
	scratch := make([]float64, test.NumClasses())
	for i := range test.X {
		pos := test.Y[i] == 1
		if pos {
			nPos++
		} else {
			nNeg++
		}
		items = append(items, scored{s: mlearn.ScoreWith(c, test.X[i], scratch), pos: pos})
	}
	if nPos == 0 || nNeg == 0 {
		return nil, errors.New("eval: ROC needs both classes in the test set")
	}
	sort.Slice(items, func(a, b int) bool { return items[a].s > items[b].s })

	roc := &ROC{}
	roc.Points = append(roc.Points, ROCPoint{FPR: 0, TPR: 0, Threshold: items[0].s + 1})
	tp, fp := 0, 0
	for i := 0; i < len(items); {
		// Consume all items sharing this score (one threshold step).
		s := items[i].s
		for i < len(items) && items[i].s == s {
			if items[i].pos {
				tp++
			} else {
				fp++
			}
			i++
		}
		roc.Points = append(roc.Points, ROCPoint{
			FPR:       float64(fp) / float64(nNeg),
			TPR:       float64(tp) / float64(nPos),
			Threshold: s,
		})
	}
	return roc, nil
}

// AUC returns the area under the curve by trapezoidal integration.
func (r *ROC) AUC() float64 {
	area := 0.0
	for i := 1; i < len(r.Points); i++ {
		a, b := r.Points[i-1], r.Points[i]
		area += (b.FPR - a.FPR) * (a.TPR + b.TPR) / 2
	}
	return area
}

// AUC computes the area under the ROC curve of c on test directly.
func AUC(c mlearn.Classifier, test *dataset.Instances) (float64, error) {
	roc, err := BuildROC(c, test)
	if err != nil {
		return 0, err
	}
	return roc.AUC(), nil
}

// Result bundles the paper's three headline metrics for one detector.
type Result struct {
	Accuracy float64
	AUC      float64
}

// Performance returns the paper's ACC*AUC metric (both in [0,1];
// reported as a percentage in Figure 5).
func (r Result) Performance() float64 { return r.Accuracy * r.AUC }

// Measure computes accuracy and AUC in one pass over the test set.
func Measure(c mlearn.Classifier, test *dataset.Instances) (Result, error) {
	acc, err := Accuracy(c, test)
	if err != nil {
		return Result{}, err
	}
	auc, err := AUC(c, test)
	if err != nil {
		return Result{}, err
	}
	return Result{Accuracy: acc, AUC: auc}, nil
}
